#!/usr/bin/env sh
# Static self-analysis: clang-tidy over the library sources with the
# checked-in .clang-tidy profile (bugprone/performance/concurrency as
# errors). CI runs this as the `static-analysis` job; locally it needs a
# configured build tree for compile_commands.json:
#
#   cmake -B build -S . && tools/run_clang_tidy.sh build
#
# Exits 0 with a notice when clang-tidy is not installed, so the script
# is safe to call from environments without LLVM tooling.
set -eu

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found in PATH; skipping" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found;" \
       "configure with cmake -B $BUILD_DIR -S . first" >&2
  exit 1
fi

# Library sources only: tests and benches expand gtest/google-benchmark
# macros whose generated code is not ours to fix.
FILES=$(find src tools -name '*.cpp' | sort)

echo "run_clang_tidy: checking $(echo "$FILES" | wc -l) files"
# shellcheck disable=SC2086 # word splitting over the file list is intended
echo "$FILES" | xargs -P "$(nproc 2>/dev/null || echo 4)" -n 8 \
  clang-tidy -p "$BUILD_DIR" --quiet
echo "run_clang_tidy: clean"
