//===- npralc.cpp - NPRAL command-line driver ------------------------------===//
//
// The downstream-user entry point: assemble a multi-threaded NPRAL assembly
// file, run the paper's inter-thread register allocator, and emit the
// allocated program, analysis reports, or a simulation run.
//
//   npralc analyze  file.s             per-thread analysis + bounds report
//   npralc alloc    file.s [-nreg N]   allocate and print physical assembly
//   npralc run      file.s [-nreg N] [-iters K] [-memlat L]
//                                      allocate, simulate, report cycles
//   npralc baseline file.s [-regs K]   fixed-partition spilling allocation
//   npralc sra      file.s [-nthd N] [-nreg R]
//                                      symmetric allocation: N copies of the
//                                      (single) thread on one engine
//   npralc lint     file.s [--json] [--after-alloc] [--physical]
//                          [--only checks] [-nreg N] [--Werror]
//                                      run every registered checker, report
//                                      all findings (text or JSON)
//   npralc verify   files... [--jobs N] [--json] [--Werror] [-nreg N]
//                            [--allow-spill] [--max-spills K] [--paired]
//                            [--pgo-static] [--profile f]
//                                      allocate each file, then prove the
//                                      physical output equivalent to the
//                                      virtual input (translation
//                                      validation); --paired checks a
//                                      hand-written physical half instead
//   npralc profile  file.s [-iters K] [-memlat L] [-o out.npprof]
//                                      simulate the virtual program and
//                                      collect an execution profile
//   npralc batch    files... [--jobs N] [--cache] [--stats] [--json]
//                            [-nreg N] [--profile f] [--pgo-static]
//                                      allocate and verify many programs
//                                      across a thread pool
//   npralc trace-validate t.json       strictly parse and validate a Chrome
//                                      trace-event JSON file
//
// `alloc` and `batch` accept --profile <f.npprof> (collected by `profile`)
// or --pgo-static to weight move costs by block execution frequency.
// `alloc --explain` prints the allocator's decision log: one record per
// Fig. 8 reduction step with every thread's move-cost bid.
//
// Every subcommand accepts --trace-out <f.json> (record spans and events
// while the command runs, write Chrome trace-event JSON on exit) and
// --metrics (dump the global metrics registry to stderr on exit).
//
// Threads may declare entry-live registers; `run` seeds them with zero (use
// the C++ API for richer setups — see examples/).
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/BoundsEstimator.h"
#include "alloc/InterAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/LiveRangeRenaming.h"
#include "asmparse/AsmParser.h"
#include "baseline/ChaitinAllocator.h"
#include "driver/AnalysisCache.h"
#include "driver/BatchPipeline.h"
#include "driver/VerifyPipeline.h"
#include "grid/GridHarness.h"
#include "harden/FaultInjector.h"
#include "harden/SpillFallback.h"
#include "ir/IRPrinter.h"
#include "lint/Lint.h"
#include "lint/TranslationValidator.h"
#include "profile/ExecutionProfile.h"
#include "profile/ProfileCollector.h"
#include "profile/StaticFrequencyEstimator.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "sim/Simulator.h"
#include "support/DiagnosticEngine.h"
#include "support/StringUtils.h"
#include "support/TableFormatter.h"
#include "support/ThreadPool.h"
#include "trace/CycleTrace.h"
#include "trace/DecisionLog.h"
#include "trace/MetricsRegistry.h"
#include "trace/Telemetry.h"
#include "trace/TraceEngine.h"
#include "trace/TraceReport.h"
#include "trace/TraceValidator.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

int usage() {
  std::cerr
      << "usage: npralc <subcommand> <file.s> [options]\n"
         "\n"
         "subcommands:\n"
         "  analyze  file.s\n"
         "      per-thread analysis (live ranges, NSRs, pressure) and the\n"
         "      MinR/MinPR/MaxR/MaxPR register bounds; no options\n"
         "  alloc    file.s [-nreg N] [--explain] [--profile f]\n"
         "           [--pgo-static] [--allow-spill] [--max-spills K]\n"
         "           [--validate]\n"
         "      run the inter-thread allocator and print the physical\n"
         "      assembly plus the per-thread PR/SR split\n"
         "        -nreg N       register file size (default 128)\n"
         "        --explain     print the allocation decision log: one\n"
         "                      record per reduction step with every\n"
         "                      thread's move-cost bid, plus rebalance\n"
         "                      and intra-thread events\n"
         "        --profile f   weight move costs by the execution counts\n"
         "                      in f (a .npprof from `npralc profile`);\n"
         "                      threads are matched by position and must\n"
         "                      hash to the profiled code\n"
         "        --pgo-static  weight move costs by 10^loop-depth instead\n"
         "                      of a collected profile\n"
         "        --allow-spill degrade gracefully when the budget is\n"
         "                      infeasible: demote the cheapest live ranges\n"
         "                      to scratch memory and retry (feasible\n"
         "                      inputs produce bit-identical output)\n"
         "        --max-spills K  live ranges the fallback may demote\n"
         "                      (default 64)\n"
         "        --validate    prove the physical output equivalent to\n"
         "                      the virtual input (translation validation)\n"
         "                      and cross-check the allocation decision\n"
         "                      log; a refuted run fails with a witness\n"
         "  run      file.s [-nreg N] [-iters K] [-memlat L]\n"
         "           [--trace-cycles f.json] [--sample-cycles N]\n"
         "      allocate, then simulate on the cycle-level engine\n"
         "        -nreg N    register file size (default 128)\n"
         "        -iters K   loop iterations to simulate (default 10)\n"
         "        -memlat L  memory latency in cycles (default 40)\n"
         "        --trace-cycles f.json  write a virtual-time Chrome\n"
         "                   trace (ts = simulated cycles) with per-thread\n"
         "                   state slices and telemetry counters\n"
         "        --sample-cycles N  telemetry sampling period (default\n"
         "                   64)\n"
         "  baseline file.s [-regs K]\n"
         "      fixed-partition Chaitin/Briggs allocation with spill code\n"
         "        -regs K    per-thread partition size (default 32)\n"
         "  sra      file.s [-nthd N] [-nreg R]\n"
         "      symmetric allocation: N copies of the (single) thread\n"
         "        -nthd N    thread count (default 4)\n"
         "        -nreg R    register file size (default 128)\n"
         "  grid     scenario [--engines N] [--placement P] [-nreg N]\n"
         "           [-iters K] [-memlat L] [--hoplat H] [--credits C]\n"
         "           [--json]\n"
         "      multi-micro-engine run: place the scenario's thread pool\n"
         "      across N engines, allocate each engine independently, and\n"
         "      simulate the grid in lockstep over the modeled\n"
         "      interconnect (docs/grid.md). scenario is s1, s2, s3 (the\n"
         "      Table-3 mixes, template replicated per engine) or 'mixed'\n"
         "      (all three templates interleaved)\n"
         "        --engines N   micro-engines in the grid (default 4)\n"
         "        --placement P thread placement policy: roundrobin,\n"
         "                      bounds, or search (default bounds)\n"
         "        -nreg N       per-engine register file size (default\n"
         "                      128)\n"
         "        -iters K      target iterations per thread (default 50)\n"
         "        -memlat L     memory latency in cycles (default 40)\n"
         "        --hoplat H    interconnect per-hop latency (default 4)\n"
         "        --credits C   per-thread work-token window (default 4)\n"
         "        --json        emit the report as JSON\n"
         "        --trace-cycles f.json\n"
         "                      write a virtual-time Chrome trace: ts is\n"
         "                      simulated cycles, with per-thread state\n"
         "                      slices, telemetry counter tracks, and\n"
         "                      work-dispatch flow arrows\n"
         "        --sample-cycles N\n"
         "                      telemetry sampling period in cycles for\n"
         "                      --trace-cycles (default 64)\n"
         "  lint     file.s [--json] [--after-alloc] [--physical]\n"
         "           [--only checks] [-nreg N] [--Werror]\n"
         "      run the static-analysis checkers and report every finding\n"
         "        --json          emit diagnostics as JSON\n"
         "        --after-alloc   allocate first, lint the physical result\n"
         "        --physical      treat registers named p<N> as a\n"
         "                        hand-crafted physical allocation\n"
         "        --only checks   comma-separated checker names to run\n"
         "        -nreg N         register file size for --after-alloc\n"
         "        --Werror        exit nonzero on warnings, not just errors\n"
         "  verify   files... [--jobs N] [--json] [--Werror] [-nreg N]\n"
         "           [--allow-spill] [--max-spills K] [--pgo-static]\n"
         "           [--profile f] [--paired]\n"
         "      allocate each file and statically prove the physical\n"
         "      output computes exactly what the virtual input computes\n"
         "      (translation validation); a mismatch is reported as a\n"
         "      diagnostic with a witness path\n"
         "        --jobs N      worker threads (default 1); the report is\n"
         "                      byte-identical for any worker count\n"
         "        --json        emit the report as JSON\n"
         "        --Werror      exit nonzero on warnings, not just\n"
         "                      rejections\n"
         "        -nreg N       register file size (default 128)\n"
         "        --allow-spill prove spill-degraded outputs against the\n"
         "                      pre-spill reference\n"
         "        --max-spills K  spill cap for --allow-spill (default 64)\n"
         "        --pgo-static  static PGO weights during allocation\n"
         "        --profile f   collected-profile weights (hash-matched)\n"
         "        --paired      each file carries virtual threads followed\n"
         "                      by an equal number of hand-written physical\n"
         "                      (p<N>-named) threads; check those instead\n"
         "                      of allocating\n"
         "  profile  file.s [-iters K] [-memlat L] [-o out.npprof]\n"
         "      simulate the virtual (pre-allocation) program and collect\n"
         "      per-block execution and context-switch counts\n"
         "        -iters K   loop iterations to simulate (default 10)\n"
         "        -memlat L  memory latency in cycles (default 40)\n"
         "        -o file    write the profile to file (default: stdout)\n"
         "  batch    files... [--jobs N] [--cache] [--stats] [--json]\n"
         "           [-nreg N] [--profile f] [--pgo-static] [--allow-spill]\n"
         "           [--max-spills K] [--retry-degraded] [--deadline-ms D]\n"
         "           [--fault-inject spec] [--validate]\n"
         "      run the full pipeline (parse, analyze, allocate, verify)\n"
         "      over many files on a thread pool; one result row per file\n"
         "        --jobs N      worker threads (default: hw concurrency)\n"
         "        --cache       memoise per-thread analyses by content hash\n"
         "        --stats       report per-stage wall clock and cache hits\n"
         "        --json        emit the --stats report as JSON\n"
         "        -nreg N       register file size (default 128)\n"
         "        --profile f   apply f's execution counts to any thread\n"
         "                      whose code hash matches (profile as a\n"
         "                      database; unmatched threads stay unit)\n"
         "        --pgo-static  10^loop-depth weights for unmatched threads\n"
         "        --allow-spill spill-based graceful degradation for\n"
         "                      infeasible budgets (see alloc)\n"
         "        --max-spills K  per-job spill cap (default 64)\n"
         "        --retry-degraded  retry an infeasible job once in\n"
         "                      degraded (spill-permitted) mode; the first\n"
         "                      attempt stays strict\n"
         "        --deadline-ms D  per-job allocation deadline; an expired\n"
         "                      deadline fails only that job\n"
         "        --fault-inject <sites>@<rate>#<seed>\n"
         "                      deterministic fault injection at the named\n"
         "                      stage probes (parse,analysis,cache,alloc or\n"
         "                      'all'); rate in percent, e.g. all@50#7. Also\n"
         "                      honours NPRAL_FAULT_INJECT in the\n"
         "                      environment. Injected faults fail the job,\n"
         "                      never the batch\n"
         "        --validate    translation-validate every successful\n"
         "                      allocation; a refuted job fails in stage\n"
         "                      'validate' and --stats grows a validate\n"
         "                      line\n"
         "        --cache-bytes B  bound the analysis cache to B bytes with\n"
         "                      LRU eviction (implies --cache); 0 =\n"
         "                      unbounded (default)\n"
         "  serve    --socket PATH [--workers N] [--queue-cap N]\n"
         "           [--max-conns N] [--max-request-bytes B]\n"
         "           [--deadline-ms D] [--cache-bytes B]\n"
         "           [--retry-after-ms M] [--fault-inject spec]\n"
         "      allocation-as-a-service daemon on a Unix socket\n"
         "      (docs/serve.md): bounded admission queue with load\n"
         "      shedding, per-request watchdog deadlines and fault\n"
         "      isolation, a shared LRU-bounded analysis cache, and\n"
         "      graceful drain on SIGTERM/SIGINT (in-flight requests\n"
         "      finish, queued ones answer 'cancelled', exit 0)\n"
         "        --workers N   request executors (default: hw concurrency)\n"
         "        --queue-cap N admission queue bound (default 64); a full\n"
         "                      queue sheds with 'unavailable' + retry hint\n"
         "        --max-conns N concurrent connections (default 64)\n"
         "        --max-request-bytes B  reject larger frames (default 4M)\n"
         "        --deadline-ms D  default per-request deadline\n"
         "        --cache-bytes B  analysis-cache budget (default 64M)\n"
         "        --retry-after-ms M  backoff hint in shed responses\n"
         "  client   --socket PATH [file.s] [-nreg N] [--allow-spill]\n"
         "           [--max-spills K] [--validate] [--deadline-ms D]\n"
         "           [--profile-hash H] [--health] [--fetch-metrics]\n"
         "      send one request to a running serve daemon; prints the\n"
         "      allocated physical assembly (byte-identical to `alloc`'s\n"
         "      print section) on stdout, a summary on stderr\n"
         "        --health        fetch the daemon's health lines instead\n"
         "        --fetch-metrics fetch the daemon's metrics JSON instead\n"
         "        --profile-hash H  opaque cache-partition tag\n"
         "  trace-validate file.json\n"
         "      strictly parse and validate a Chrome trace-event JSON\n"
         "      file (phases, per-track span balance, timestamp order,\n"
         "      counter monotonicity, flow pairing)\n"
         "  report   file.json [--html out.html]\n"
         "      summarise a trace file: per-track state breakdown bars,\n"
         "      counter sparklines, and flow latency percentiles; --html\n"
         "      writes a self-contained page instead of text\n"
         "\n"
         "global options (accepted by every subcommand):\n"
         "  --trace-out f.json  record spans and instant events while the\n"
         "                      command runs; write Chrome trace-event\n"
         "                      JSON on exit (open in Perfetto or\n"
         "                      chrome://tracing)\n"
         "  --metrics           dump the metrics registry to stderr on\n"
         "                      exit (one line per instrument)\n"
         "\n"
         "      checkers:\n";
  for (const CheckerInfo &C : getCheckerRegistry())
    std::cerr << "        " << C.Name << ": " << C.Description << "\n";
  std::cerr << "\nexit status: 0 ok, 1 findings/errors, 2 bad usage\n";
  return 2;
}

ErrorOr<MultiThreadProgram> loadFile(const std::string &Path,
                                     bool Rename = true) {
  std::ifstream In(Path);
  if (!In)
    return Status::error("cannot open '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Buf.str());
  if (!MTP.ok())
    return MTP.status();
  if (Rename)
    for (Program &T : MTP->Threads)
      T = renameLiveRanges(T);
  return MTP;
}

int cmdAnalyze(const MultiThreadProgram &MTP) {
  TableFormatter Table({"Thread", "#Instr", "#CTX", "#LiveRanges", "#NSR",
                        "RegPmax", "RegPCSBmax", "MaxR", "MaxPR"});
  for (const Program &T : MTP.Threads) {
    ThreadAnalysis TA = analyzeThread(T);
    RegBounds B = estimateRegBounds(TA);
    Table.row()
        .cell(T.Name)
        .cell(T.countInstructions())
        .cell(T.countCtxInstructions())
        .cell(TA.getNumLiveRanges())
        .cell(TA.NSRs.getNumNSRs())
        .cell(TA.getRegPmax())
        .cell(TA.getRegPCSBmax())
        .cell(B.MaxR)
        .cell(B.MaxPR);
  }
  Table.print(std::cout);
  return 0;
}

/// Read and parse a .npprof file; exits through the caller on failure.
std::optional<ExecutionProfile> loadProfile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "error: cannot open profile '" << Path << "'\n";
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  std::optional<ExecutionProfile> Prof = ExecutionProfile::parse(Buf.str(),
                                                                 Error);
  if (!Prof)
    std::cerr << "error: malformed profile '" << Path << "': " << Error
              << "\n";
  return Prof;
}

int cmdAlloc(const MultiThreadProgram &MTP, int Nreg, bool Print,
             const ExecutionProfile *Prof, bool StaticPGO, bool Explain,
             bool AllowSpill, int MaxSpills, bool Validate) {
  // Resolve per-thread cost models. A collected profile matches threads by
  // position and must hash to the code it was collected on — silently
  // applying stale counts would skew every weighted decision.
  const bool PGO = Prof != nullptr || StaticPGO;
  std::vector<CostModel> Models;
  if (Prof) {
    if (Prof->getNumThreads() != MTP.getNumThreads()) {
      std::cerr << "error: profile has " << Prof->getNumThreads()
                << " threads, program has " << MTP.getNumThreads() << "\n";
      return 1;
    }
    for (int T = 0; T < MTP.getNumThreads(); ++T) {
      const Program &P = MTP.Threads[static_cast<size_t>(T)];
      const uint64_t Hash = fnv1aHash(programToString(P));
      if (Prof->Threads[static_cast<size_t>(T)].CodeHash != Hash) {
        std::cerr << "error: profile is stale: thread '" << P.Name
                  << "' does not match the profiled code\n";
        return 1;
      }
      Models.push_back(Prof->costModel(T, P.getNumBlocks()));
    }
  } else if (StaticPGO) {
    for (const Program &P : MTP.Threads)
      Models.push_back(estimateCostModel(P));
  }

  AllocationDecisionLog Log;
  InterThreadResult R;
  SpillFallbackResult SF;
  // --validate cross-checks the decision log against the result, so it
  // needs the log collected even without --explain. The log is purely
  // observational: collecting it never changes the allocation.
  const bool WantLog = Explain || (Validate && !AllowSpill);
  if (AllowSpill) {
    SpillFallbackOptions SOpts;
    SOpts.MaxSpills = MaxSpills;
    SF = allocateWithSpillFallback(MTP, Nreg, {}, Models,
                                   Explain ? &Log : nullptr,
                                   InterAllocLimits(), SOpts);
    R = std::move(SF.Inter);
  } else {
    R = allocateInterThread(MTP, Nreg, {}, Models, WantLog ? &Log : nullptr);
  }
  if (Explain) {
    Log.renderExplain(std::cout);
    std::cout << "\n";
  }
  if (!R.Success) {
    std::cerr << "allocation failed: " << R.FailReason << "\n";
    return 1;
  }
  if (Status S = verifyAllocationSafety(R.Physical); !S.ok()) {
    std::cerr << "internal error, unsafe allocation: " << S.str() << "\n";
    return 1;
  }
  // Translation validation: prove the physical output equivalent to the
  // (renamed) virtual input, and cross-check the decision log against the
  // reported result. Spill-degraded outputs are proved against the same
  // pre-spill reference; the log cross-check only applies to the strict
  // path, where the log describes the final (only) allocation attempt.
  if (Validate) {
    DiagnosticEngine Engine;
    ValidationResult V = validateTranslation(MTP, R.Physical, Engine,
                                             &MetricsRegistry::global());
    int LogMismatches = 0;
    if (!AllowSpill)
      LogMismatches =
          crossCheckDecisionLog(Log, R, Engine, &MetricsRegistry::global());
    if (!V.Proved || LogMismatches > 0) {
      Engine.sortByPosition();
      Engine.renderText(std::cerr);
      std::cerr << "translation validation FAILED\n";
      return 1;
    }
    std::cout << "validated: " << V.ThreadsProved << " thread(s) proved, "
              << V.InstructionsMatched << " instruction(s) matched, "
              << V.CopiesInterpreted << " copies interpreted\n";
  }
  // The default table is byte-stable against pre-PGO builds; the weighted
  // column only appears when a PGO flag is active.
  std::vector<std::string> Cols{"Thread", "PR", "SR", "PrivateBase", "Moves",
                                "Strategy"};
  if (PGO)
    Cols.push_back("WMoves");
  TableFormatter Table(Cols);
  for (size_t T = 0; T < R.Threads.size(); ++T) {
    Table.row()
        .cell(MTP.Threads[T].Name)
        .cell(R.Threads[T].PR)
        .cell(R.Threads[T].SR)
        .cell(R.Threads[T].PrivateBase)
        .cell(R.Threads[T].MoveCost)
        .cell(R.Threads[T].Strategy);
    if (PGO)
      Table.cell(static_cast<int64_t>(R.Threads[T].WeightedCost));
  }
  Table.print(std::cout);
  std::cout << "SGR=" << R.SGR << " at p" << R.SharedBase << "; "
            << R.RegistersUsed << "/" << Nreg << " registers used\n";
  if (SF.UsedSpilling)
    std::cout << "degraded: spilled " << SF.SpilledRanges
              << " live range(s) to scratch memory (" << SF.SpillLoads
              << " loads, " << SF.SpillStores << " stores, "
              << SF.Attempts << " attempts)\n";
  if (PGO)
    std::cout << "weighted move cost: " << R.TotalWeightedCost << " ("
              << (Prof ? "collected profile" : "static estimate") << ")\n";
  if (Print) {
    std::cout << "\n";
    for (const Program &T : R.Physical.Threads) {
      printProgram(std::cout, T);
      std::cout << "\n";
    }
  }
  return 0;
}

int cmdProfile(const MultiThreadProgram &MTP, int Iters, int MemLat,
               const std::string &OutPath) {
  // Simulate the virtual program: in reference mode every thread has a
  // private register file, so no allocation is needed and the recorded
  // block IDs are the ones the allocators operate on.
  ProfileCollector Collector(MTP);
  SimConfig Config;
  Config.MemLatency = MemLat;
  Config.TargetIterations = Iters;
  Simulator Sim(MTP, Config);
  Sim.setObserver(&Collector);
  for (int T = 0; T < MTP.getNumThreads(); ++T) {
    const Program &P = MTP.Threads[static_cast<size_t>(T)];
    Sim.setEntryValues(T, std::vector<uint32_t>(P.EntryLiveRegs.size(), 0));
  }
  SimResult Run = Sim.run();
  if (!Run.Completed) {
    std::cerr << "simulation failed: " << Run.FailReason << "\n";
    return 1;
  }
  const std::string Text = Collector.getProfile().print();
  if (OutPath.empty()) {
    std::cout << Text;
    return 0;
  }
  std::ofstream Out(OutPath);
  if (!Out) {
    std::cerr << "error: cannot write '" << OutPath << "'\n";
    return 1;
  }
  Out << Text;
  std::cerr << "wrote " << OutPath << " (" << MTP.getNumThreads()
            << " threads, " << Run.TotalCycles << " cycles simulated)\n";
  return 0;
}

int cmdRun(const MultiThreadProgram &MTP, int Nreg, int Iters, int MemLat,
           const std::string &TraceCycles, int SampleCycles) {
  InterThreadResult R = allocateInterThread(MTP, Nreg);
  if (!R.Success) {
    std::cerr << "allocation failed: " << R.FailReason << "\n";
    return 1;
  }
  SimConfig Config;
  Config.MemLatency = MemLat;
  Config.TargetIterations = Iters;
  Simulator Sim(R.Physical, Config);
  // Virtual-time trace: ts is simulated cycles, so the file is a pure
  // function of the program and config (docs/observability.md).
  CycleTrace CT;
  std::optional<TelemetrySampler> Sampler;
  if (!TraceCycles.empty()) {
    Sim.setCycleTrace(&CT, /*Pid=*/1);
    Sampler.emplace(SampleCycles > 0 ? SampleCycles : 64, &CT, nullptr);
    Sim.setSampler(&*Sampler, "sim.");
  }
  for (int T = 0; T < R.Physical.getNumThreads(); ++T) {
    const Program &P = R.Physical.Threads[static_cast<size_t>(T)];
    Sim.setEntryValues(
        T, std::vector<uint32_t>(P.EntryLiveRegs.size(), 0));
  }
  SimResult Run = Sim.run();
  if (!TraceCycles.empty()) {
    if (Status S = CT.writeFile(TraceCycles); !S.ok()) {
      std::cerr << "error: " << S.str() << "\n";
      return 1;
    }
    std::cerr << "wrote " << TraceCycles << " (" << CT.eventCount()
              << " cycle-domain events)\n";
  }
  if (!Run.Completed) {
    std::cerr << "simulation failed: " << Run.FailReason << "\n";
    return 1;
  }
  TableFormatter Table({"Thread", "Iters", "Instrs", "CtxEvents", "MemOps",
                        "Cyc/iter"});
  for (size_t T = 0; T < Run.Threads.size(); ++T) {
    const ThreadStats &TS = Run.Threads[T];
    Table.row()
        .cell(MTP.Threads[T].Name)
        .cell(TS.Iterations)
        .cell(TS.InstrsExecuted)
        .cell(TS.CtxEvents)
        .cell(TS.MemOps);
    if (TS.CyclesAtTarget >= 0)
      Table.cell(TS.cyclesPerIteration(Iters), 1);
    else
      Table.cell("-"); // thread halted before reaching the target
  }
  Table.print(std::cout);
  std::cout << "total cycles: " << Run.TotalCycles << "\n";
  return 0;
}

int cmdBaseline(const MultiThreadProgram &MTP, int RegsPerThread) {
  TableFormatter Table({"Thread", "Colors", "Spilled", "SpillOps", "Rounds"});
  std::vector<Program> Allocated;
  int64_t SpillBase = 0xF000;
  for (const Program &T : MTP.Threads) {
    ChaitinConfig Config;
    Config.NumColors = RegsPerThread;
    Config.SpillBase = SpillBase;
    SpillBase += 0x100;
    ChaitinResult R = runChaitinAllocator(T, Config);
    if (!R.Success) {
      std::cerr << "baseline failed on '" << T.Name << "': " << R.FailReason
                << "\n";
      return 1;
    }
    Table.row()
        .cell(T.Name)
        .cell(R.ColorsUsed)
        .cell(R.SpilledRanges)
        .cell(R.SpillLoads + R.SpillStores)
        .cell(R.Rounds);
    Allocated.push_back(R.Allocated);
  }
  Table.print(std::cout);
  return 0;
}

int cmdSra(const MultiThreadProgram &MTP, int Nthd, int Nreg) {
  if (MTP.Threads.size() != 1) {
    std::cerr << "sra expects exactly one thread in the file\n";
    return 1;
  }
  SRAResult R = solveSRA(MTP.Threads[0], Nthd, Nreg,
                         /*RequireZeroCost=*/false);
  if (!R.Success) {
    std::cerr << "infeasible: " << R.FailReason << "\n";
    return 1;
  }
  std::cout << Nthd << " identical threads in " << Nreg << " registers: PR="
            << R.PR << " SR=" << R.SR << " total=" << R.TotalRegisters
            << " moves/thread=" << R.MoveCost << "\n";
  return 0;
}

int cmdLint(MultiThreadProgram MTP, bool Json, bool AfterAlloc, bool Physical,
            const std::string &Only, int Nreg, bool Werror) {
  if (Physical) {
    if (Status S = mapNamedPhysicalRegisters(MTP); !S.ok()) {
      std::cerr << "error: " << S.str() << "\n";
      return 1;
    }
  }
  if (AfterAlloc) {
    for (Program &T : MTP.Threads)
      T = renameLiveRanges(T);
    InterThreadResult R = allocateInterThread(MTP, Nreg);
    if (!R.Success) {
      std::cerr << "allocation failed: " << R.FailReason << "\n";
      return 1;
    }
    MTP = std::move(R.Physical);
  }

  LintOptions Opts;
  if (!Only.empty()) {
    size_t Pos = 0;
    while (Pos <= Only.size()) {
      size_t Comma = Only.find(',', Pos);
      std::string Name = Only.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      if (!Name.empty()) {
        if (!findChecker(Name)) {
          std::cerr << "error: unknown checker '" << Name << "'\n";
          return usage();
        }
        Opts.OnlyChecks.push_back(std::move(Name));
      }
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
  }

  DiagnosticEngine Engine;
  runAllCheckers(MTP, Engine, Opts);
  Engine.sortBySeverity();
  if (Json)
    Engine.renderJSON(std::cout);
  else
    Engine.renderText(std::cout);
  if (Engine.hasErrors())
    return 1;
  return Werror && Engine.warningCount() > 0 ? 1 : 0;
}

int cmdVerify(const std::vector<std::string> &Files, int Jobs, bool Json,
              bool Werror, int Nreg, bool AllowSpill, int MaxSpills,
              bool StaticPGO, const std::string &ProfilePath, bool Paired) {
  if (Files.empty()) {
    std::cerr << "verify: no input files\n";
    return usage();
  }
  std::optional<ExecutionProfile> Prof;
  if (!ProfilePath.empty()) {
    Prof = loadProfile(ProfilePath);
    if (!Prof)
      return 1;
  }
  VerifyOptions Opts;
  Opts.Nreg = Nreg;
  Opts.Jobs = Jobs > 0 ? Jobs : 1;
  Opts.AllowSpill = AllowSpill;
  Opts.MaxSpills = MaxSpills;
  Opts.StaticPGO = StaticPGO;
  Opts.Profile = Prof ? &*Prof : nullptr;
  Opts.Paired = Paired;
  VerifyResult R = runVerify(Files, Opts);
  if (Json)
    R.renderJSON(std::cout);
  else
    R.renderText(std::cout);
  if (!R.allProved())
    return 1;
  return Werror && R.warningCount() > 0 ? 1 : 0;
}

int cmdBatch(const std::vector<std::string> &Files, int Jobs, bool UseCache,
             bool Stats, bool Json, int Nreg,
             const std::string &ProfilePath, bool StaticPGO, bool AllowSpill,
             int MaxSpills, bool RetryDegraded, int DeadlineMs,
             const std::string &FaultSpec, bool Validate,
             int64_t CacheBytes) {
  if (Files.empty()) {
    std::cerr << "batch: no input files\n";
    return usage();
  }
  std::optional<ExecutionProfile> Prof;
  if (!ProfilePath.empty()) {
    Prof = loadProfile(ProfilePath);
    if (!Prof)
      return 1;
  }
  std::vector<BatchJob> Inputs;
  Inputs.reserve(Files.size());
  for (const std::string &F : Files) {
    BatchJob Job;
    Job.Path = F;
    Inputs.push_back(std::move(Job));
  }
  BatchOptions Opts;
  Opts.Nreg = Nreg;
  Opts.Jobs = Jobs > 0 ? Jobs : ThreadPool::hardwareConcurrency();
  // A byte budget only makes sense with the cache on, so it implies it.
  Opts.UseCache = UseCache || CacheBytes > 0;
  Opts.CacheBytes = CacheBytes;
  Opts.Profile = Prof ? &*Prof : nullptr;
  Opts.StaticPGO = StaticPGO;
  Opts.AllowSpill = AllowSpill;
  Opts.MaxSpills = MaxSpills;
  Opts.RetryDegraded = RetryDegraded;
  Opts.DeadlineMs = DeadlineMs;
  Opts.Validate = Validate;
  if (!FaultSpec.empty()) {
    ErrorOr<FaultInjector> FI = FaultInjector::parse(FaultSpec);
    if (!FI.ok()) {
      std::cerr << "error: bad --fault-inject spec: " << FI.status().str()
                << "\n";
      return usage();
    }
    Opts.Faults = FI.take();
  } else {
    Opts.Faults = FaultInjector::fromEnv();
  }
  const bool PGO = Opts.Profile != nullptr || StaticPGO;
  BatchResult Batch = runBatch(Inputs, Opts);

  std::vector<std::string> Cols{"File", "Threads", "Status", "Regs", "SGR",
                                "Moves"};
  if (PGO) {
    Cols.push_back("WMoves");
    Cols.push_back("Profiled");
  }
  TableFormatter Table(Cols);
  for (const BatchJobResult &R : Batch.Results) {
    Table.row().cell(R.Name).cell(R.NumThreads);
    if (R.Success) {
      Table.cell("ok").cell(R.RegistersUsed).cell(R.SGR).cell(
          R.TotalMoveCost);
      if (PGO)
        Table.cell(R.TotalWeightedCost).cell(R.ProfiledThreads);
    } else {
      Table.cell("FAIL").cell("-").cell("-").cell("-");
      if (PGO)
        Table.cell("-").cell("-");
    }
  }
  Table.print(std::cout);
  // The failed[] report: one line per failed job with the stage and the
  // status-code classification of its failure.
  for (const BatchJobResult *R : Batch.failed())
    std::cerr << R->Name << ": [" << R->FailStage << "/"
              << statusCodeName(R->FailCode) << "] " << R->FailReason << "\n";
  if (Stats) {
    if (Json)
      Batch.Stats.renderJSON(std::cout);
    else
      Batch.Stats.renderText(std::cout);
  }
  return Batch.allSucceeded() ? 0 : 1;
}

int cmdServe(ServeOptions Opts) {
  Server S(std::move(Opts));
  S.installSignalHandlers();
  if (Status St = S.start(); !St.ok()) {
    std::cerr << "serve: " << St.str() << "\n";
    return 1;
  }
  // The readiness line supervisors and the CI e2e job wait for.
  std::cerr << "serving on " << S.options().SocketPath << "\n";
  const int Ret = S.wait();
  const ServeStats &St = S.stats();
  std::cerr << "drained: " << St.Requests.load() << " request(s), "
            << St.Ok.load() << " ok, " << St.Failed.load() << " failed, "
            << St.Shed.load() << " shed, " << St.Cancelled.load()
            << " cancelled\n";
  return Ret;
}

int cmdClient(const std::string &SocketPath, const std::string &File,
              bool Health, bool FetchMetrics, AllocRequest Req) {
  ErrorOr<ServeClient> C = ServeClient::connectTo(SocketPath);
  if (!C.ok()) {
    std::cerr << "client: " << C.status().str() << "\n";
    return 1;
  }
  ErrorOr<ServeResponse> R = Status::error("no request");
  if (Health) {
    R = C->health();
  } else if (FetchMetrics) {
    R = C->metrics();
  } else {
    std::ifstream In(File);
    if (!In) {
      std::cerr << "client: cannot open '" << File << "'\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Req.Assembly = Buf.str();
    R = C->alloc(Req);
  }
  if (!R.ok()) {
    std::cerr << "client: " << R.status().str() << "\n";
    return 1;
  }
  if (!R->Ok) {
    std::cerr << "error: [" << R->Stage << "/" << R->Code << "] "
              << R->Message;
    if (R->RetryAfterMs > 0)
      std::cerr << " (retry after " << R->RetryAfterMs << " ms)";
    std::cerr << "\n";
    return 1;
  }
  if (!Health && !FetchMetrics) {
    std::cerr << "ok: registers-used=" << R->RegistersUsed
              << " sgr=" << R->SGR << " moves=" << R->TotalMoveCost
              << " spilled-ranges=" << R->SpilledRanges
              << " degraded=" << (R->Degraded ? 1 : 0)
              << " validated=" << (R->Validated ? 1 : 0) << "\n";
  }
  // The body — physical assembly for alloc, key=value lines for health,
  // metrics JSON for metrics — goes to stdout, pipeable and diffable.
  std::cout << R->Body;
  return 0;
}

int cmdGrid(const std::string &ScenarioName, int Engines,
            const std::string &PolicyName, int Nreg, int Iters, int MemLat,
            int HopLat, int Credits, bool Json,
            const std::string &TraceCycles, int SampleCycles) {
  GridOptions Opts;
  if (Engines < 1 || Engines > 16) {
    std::cerr << "grid: --engines must be in [1, 16]\n";
    return usage();
  }
  Opts.NumEngines = Engines;
  if (!parsePlacementPolicy(PolicyName, Opts.Policy)) {
    std::cerr << "grid: unknown placement policy '" << PolicyName << "'\n";
    return usage();
  }
  Opts.Nreg = Nreg;
  Opts.HopLatency = HopLat;
  Opts.InitialCredits = Credits;
  Opts.Sim = defaultExperimentConfig();
  Opts.Sim.TargetIterations = Iters;
  Opts.Sim.MemLatency = MemLat;
  // Virtual-time tracing: thread-state slices per engine, telemetry
  // counters on the configured period, flow arrows for work dispatches.
  CycleTrace CT;
  if (!TraceCycles.empty()) {
    Opts.Trace = &CT;
    Opts.SampleCycles = SampleCycles > 0 ? SampleCycles : 64;
  }

  std::vector<std::string> Pool;
  if (!buildGridPool(ScenarioName, Engines, Pool)) {
    std::cerr << "grid: unknown scenario '" << ScenarioName
              << "' (want s1, s2, s3 or mixed)\n";
    return usage();
  }
  GridReport Report = runKernelPoolGrid(ScenarioName, Pool, Opts);
  if (!TraceCycles.empty() && Report.Success) {
    if (Status S = CT.writeFile(TraceCycles); !S.ok()) {
      std::cerr << "error: " << S.str() << "\n";
      return 1;
    }
    std::cerr << "wrote " << TraceCycles << " (" << CT.eventCount()
              << " cycle-domain events)\n";
  }
  if (!Report.Success) {
    std::cerr << "grid run failed: " << Report.FailReason << "\n";
    return 1;
  }

  if (Json) {
    std::ostringstream OS;
    OS << "{\n  \"name\": \"" << Report.Name << "\",\n"
       << "  \"engines\": " << Report.NumEngines << ",\n"
       << "  \"placement\": \"" << Report.Policy << "\",\n"
       << "  \"placement_cost\": " << Report.Placement.Cost << ",\n"
       << "  \"placement_swaps\": " << Report.Placement.SwapsApplied << ",\n"
       << "  \"iterations\": " << Report.TotalIterations << ",\n"
       << "  \"max_engine_cycles\": " << Report.MaxEngineCycles << ",\n"
       << "  \"iterations_per_kilocycle\": "
       << Report.IterationsPerKilocycle << ",\n"
       << "  \"interconnect_stall_cycles\": "
       << Report.TotalInterconnectStall << ",\n"
       << "  \"messages_sent\": " << Report.MessagesSent << ",\n"
       << "  \"messages_delivered\": " << Report.MessagesDelivered << ",\n"
       << "  \"credits_returned\": " << Report.CreditsReturned << ",\n"
       << "  \"per_engine\": [";
    for (size_t E = 0; E < Report.Engines.size(); ++E) {
      const GridEngineReport &ER = Report.Engines[E];
      OS << (E ? ",\n    {" : "\n    {") << "\"kernels\": [";
      for (size_t K = 0; K < ER.Kernels.size(); ++K)
        OS << (K ? ", \"" : "\"") << ER.Kernels[K] << "\"";
      OS << "], \"registers_used\": " << ER.RegistersUsed
         << ", \"spilled_ranges\": " << ER.SpilledRanges
         << ", \"cycles\": " << ER.Result.TotalCycles
         << ", \"iterations\": " << ER.Iterations
         << ", \"interconnect_stall_cycles\": "
         << ER.InterconnectStallCycles << "}";
    }
    OS << "\n  ]\n}\n";
    std::cout << OS.str();
    return 0;
  }

  std::cout << "grid: " << Report.Name << "  engines=" << Report.NumEngines
            << "  placement=" << Report.Policy << "  nreg=" << Nreg
            << "  hoplat=" << HopLat << "  credits=" << Credits << "\n";
  TableFormatter Table({"Engine", "Kernels", "Regs", "Cycles", "Iters",
                        "IcStall"});
  for (size_t E = 0; E < Report.Engines.size(); ++E) {
    const GridEngineReport &ER = Report.Engines[E];
    std::string Kernels;
    for (size_t K = 0; K < ER.Kernels.size(); ++K)
      Kernels += (K ? "," : "") + ER.Kernels[K];
    Table.row()
        .cell(static_cast<int>(E))
        .cell(Kernels)
        .cell(ER.RegistersUsed)
        .cell(ER.Result.TotalCycles)
        .cell(ER.Iterations)
        .cell(ER.InterconnectStallCycles);
  }
  Table.print(std::cout);
  std::cout << "aggregate: " << Report.TotalIterations << " iterations, max "
            << "engine cycles " << Report.MaxEngineCycles << " -> "
            << Report.IterationsPerKilocycle << " iters/kcycle\n"
            << "interconnect: " << Report.MessagesSent << " sent, "
            << Report.MessagesDelivered << " delivered, "
            << Report.CreditsReturned << " credits returned, "
            << Report.TotalInterconnectStall << " stall cycles\n"
            << "placement: cost " << Report.Placement.Cost << ", "
            << Report.Placement.SwapsApplied << " swaps\n";
  return 0;
}

int cmdTraceValidate(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "error: cannot open '" << Path << "'\n";
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  const std::string Text = Buf.str();
  ErrorOr<std::vector<ParsedTraceEvent>> Events = parseChromeTrace(Text);
  if (!Events.ok()) {
    std::cerr << Path << ": " << Events.status().str() << "\n";
    return 1;
  }
  if (Status S = validateChromeTrace(Text); !S.ok()) {
    std::cerr << Path << ": " << S.str() << "\n";
    return 1;
  }
  std::cout << Path << ": valid chrome trace, " << Events->size()
            << " events\n";
  return 0;
}

int cmdReport(const std::string &Path, const std::string &HtmlOut) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "error: cannot open '" << Path << "'\n";
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  // The report trusts its input's structure, so run the strict validator
  // first — a malformed trace is a hard error, not a partial summary.
  ErrorOr<std::vector<ParsedTraceEvent>> Events = parseChromeTrace(Buf.str());
  if (!Events.ok()) {
    std::cerr << Path << ": " << Events.status().str() << "\n";
    return 1;
  }
  const TraceReport Report = TraceReport::build(*Events);
  if (HtmlOut.empty()) {
    Report.renderText(std::cout);
    return 0;
  }
  std::ofstream Out(HtmlOut, std::ios::binary);
  if (!Out) {
    std::cerr << "error: cannot write '" << HtmlOut << "'\n";
    return 1;
  }
  Report.renderHTML(Out);
  Out.flush();
  if (!Out) {
    std::cerr << "error: failed writing '" << HtmlOut << "'\n";
    return 1;
  }
  std::cerr << "wrote " << HtmlOut << "\n";
  return 0;
}

int dispatch(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Cmd = argv[1];

  if (Cmd == "trace-validate")
    return cmdTraceValidate(argv[2]);

  if (Cmd == "report") {
    std::string HtmlOut;
    for (int I = 3; I < argc; ++I) {
      std::string Opt = argv[I];
      if (Opt == "--html" && I + 1 < argc)
        HtmlOut = argv[++I];
      else
        return usage();
    }
    return cmdReport(argv[2], HtmlOut);
  }

  if (Cmd == "grid") {
    std::string ScenarioName = argv[2];
    std::string Policy = "bounds";
    int Engines = 4, Nreg = 128, Iters = 50, MemLat = 40, HopLat = 4;
    int Credits = 4, SampleCycles = 0;
    bool Json = false;
    std::string TraceCycles;
    for (int I = 3; I < argc; ++I) {
      std::string Opt = argv[I];
      if (Opt == "--json") {
        Json = true;
        continue;
      }
      if (I + 1 >= argc)
        return usage();
      std::string Value = argv[++I];
      if (Opt == "--engines")
        Engines = std::atoi(Value.c_str());
      else if (Opt == "--placement")
        Policy = Value;
      else if (Opt == "-nreg")
        Nreg = std::atoi(Value.c_str());
      else if (Opt == "-iters")
        Iters = std::atoi(Value.c_str());
      else if (Opt == "-memlat")
        MemLat = std::atoi(Value.c_str());
      else if (Opt == "--hoplat")
        HopLat = std::atoi(Value.c_str());
      else if (Opt == "--credits")
        Credits = std::atoi(Value.c_str());
      else if (Opt == "--trace-cycles")
        TraceCycles = Value;
      else if (Opt == "--sample-cycles")
        SampleCycles = std::atoi(Value.c_str());
      else
        return usage();
    }
    return cmdGrid(ScenarioName, Engines, Policy, Nreg, Iters, MemLat,
                   HopLat, Credits, Json, TraceCycles, SampleCycles);
  }

  if (Cmd == "serve") {
    ServeOptions Opts;
    for (int I = 2; I < argc; ++I) {
      std::string Opt = argv[I];
      if (I + 1 >= argc)
        return usage();
      std::string Value = argv[++I];
      if (Opt == "--socket")
        Opts.SocketPath = Value;
      else if (Opt == "--workers")
        Opts.Workers = std::atoi(Value.c_str());
      else if (Opt == "--queue-cap")
        Opts.QueueCapacity = std::atoi(Value.c_str());
      else if (Opt == "--max-conns")
        Opts.MaxConnections = std::atoi(Value.c_str());
      else if (Opt == "--max-request-bytes")
        Opts.MaxRequestBytes =
            static_cast<uint32_t>(std::atoll(Value.c_str()));
      else if (Opt == "--deadline-ms")
        Opts.DefaultDeadlineMs = std::atoi(Value.c_str());
      else if (Opt == "--cache-bytes")
        Opts.CacheBytes = std::atoll(Value.c_str());
      else if (Opt == "--retry-after-ms")
        Opts.RetryAfterMs = std::atoi(Value.c_str());
      else if (Opt == "--fault-inject") {
        ErrorOr<FaultInjector> FI = FaultInjector::parse(Value);
        if (!FI.ok()) {
          std::cerr << "error: bad --fault-inject spec: " << FI.status().str()
                    << "\n";
          return usage();
        }
        Opts.Faults = FI.take();
      } else
        return usage();
    }
    if (Opts.SocketPath.empty()) {
      std::cerr << "serve: --socket is required\n";
      return usage();
    }
    if (!Opts.Faults.enabled())
      Opts.Faults = FaultInjector::fromEnv();
    return cmdServe(std::move(Opts));
  }

  if (Cmd == "client") {
    std::string SocketPath, File;
    bool Health = false, FetchMetrics = false;
    AllocRequest Req;
    for (int I = 2; I < argc; ++I) {
      std::string Opt = argv[I];
      if (Opt == "--health") {
        Health = true;
      } else if (Opt == "--fetch-metrics") {
        FetchMetrics = true;
      } else if (Opt == "--allow-spill") {
        Req.AllowSpill = true;
      } else if (Opt == "--validate") {
        Req.Validate = true;
      } else if (Opt == "--socket" || Opt == "-nreg" ||
                 Opt == "--max-spills" || Opt == "--deadline-ms" ||
                 Opt == "--profile-hash") {
        if (I + 1 >= argc)
          return usage();
        std::string Value = argv[++I];
        if (Opt == "--socket")
          SocketPath = Value;
        else if (Opt == "-nreg")
          Req.Nreg = std::atoi(Value.c_str());
        else if (Opt == "--max-spills")
          Req.MaxSpills = std::atoi(Value.c_str());
        else if (Opt == "--deadline-ms")
          Req.DeadlineMs = std::atoi(Value.c_str());
        else
          Req.ProfileHash =
              static_cast<uint64_t>(std::strtoull(Value.c_str(), nullptr, 10));
      } else if (!Opt.empty() && Opt[0] == '-') {
        return usage();
      } else {
        File = std::move(Opt);
      }
    }
    if (SocketPath.empty()) {
      std::cerr << "client: --socket is required\n";
      return usage();
    }
    if (!Health && !FetchMetrics && File.empty()) {
      std::cerr << "client: need a file.s (or --health / --fetch-metrics)\n";
      return usage();
    }
    return cmdClient(SocketPath, File, Health, FetchMetrics, std::move(Req));
  }

  if (Cmd == "batch") {
    std::vector<std::string> Files;
    int Jobs = 0, Nreg = 128, MaxSpills = 64, DeadlineMs = 0;
    int64_t CacheBytes = 0;
    bool UseCache = false, Stats = false, Json = false, StaticPGO = false;
    bool AllowSpill = false, RetryDegraded = false, Validate = false;
    std::string ProfilePath, FaultSpec;
    for (int I = 2; I < argc; ++I) {
      std::string Opt = argv[I];
      if (Opt == "--cache") {
        UseCache = true;
      } else if (Opt == "--stats") {
        Stats = true;
      } else if (Opt == "--json") {
        Json = true;
      } else if (Opt == "--pgo-static") {
        StaticPGO = true;
      } else if (Opt == "--allow-spill") {
        AllowSpill = true;
      } else if (Opt == "--retry-degraded") {
        RetryDegraded = true;
      } else if (Opt == "--validate") {
        Validate = true;
      } else if (Opt == "--profile") {
        if (I + 1 >= argc)
          return usage();
        ProfilePath = argv[++I];
      } else if (Opt == "--fault-inject") {
        if (I + 1 >= argc)
          return usage();
        FaultSpec = argv[++I];
      } else if (Opt == "--cache-bytes") {
        if (I + 1 >= argc)
          return usage();
        CacheBytes = std::atoll(argv[++I]);
      } else if (Opt == "--jobs" || Opt == "-nreg" || Opt == "--max-spills" ||
                 Opt == "--deadline-ms") {
        if (I + 1 >= argc)
          return usage();
        int Value = std::atoi(argv[++I]);
        if (Opt == "--jobs")
          Jobs = Value;
        else if (Opt == "-nreg")
          Nreg = Value;
        else if (Opt == "--max-spills")
          MaxSpills = Value;
        else
          DeadlineMs = Value;
      } else if (!Opt.empty() && Opt[0] == '-') {
        return usage();
      } else {
        Files.push_back(std::move(Opt));
      }
    }
    return cmdBatch(Files, Jobs, UseCache, Stats, Json, Nreg, ProfilePath,
                    StaticPGO, AllowSpill, MaxSpills, RetryDegraded,
                    DeadlineMs, FaultSpec, Validate, CacheBytes);
  }

  if (Cmd == "verify") {
    std::vector<std::string> Files;
    int Jobs = 1, Nreg = 128, MaxSpills = 64;
    bool Json = false, Werror = false, AllowSpill = false, StaticPGO = false;
    bool Paired = false;
    std::string ProfilePath;
    for (int I = 2; I < argc; ++I) {
      std::string Opt = argv[I];
      if (Opt == "--json") {
        Json = true;
      } else if (Opt == "--Werror") {
        Werror = true;
      } else if (Opt == "--allow-spill") {
        AllowSpill = true;
      } else if (Opt == "--pgo-static") {
        StaticPGO = true;
      } else if (Opt == "--paired") {
        Paired = true;
      } else if (Opt == "--profile") {
        if (I + 1 >= argc)
          return usage();
        ProfilePath = argv[++I];
      } else if (Opt == "--jobs" || Opt == "-nreg" || Opt == "--max-spills") {
        if (I + 1 >= argc)
          return usage();
        int Value = std::atoi(argv[++I]);
        if (Opt == "--jobs")
          Jobs = Value;
        else if (Opt == "-nreg")
          Nreg = Value;
        else
          MaxSpills = Value;
      } else if (!Opt.empty() && Opt[0] == '-') {
        return usage();
      } else {
        Files.push_back(std::move(Opt));
      }
    }
    return cmdVerify(Files, Jobs, Json, Werror, Nreg, AllowSpill, MaxSpills,
                     StaticPGO, ProfilePath, Paired);
  }

  std::string Path = argv[2];
  int Nreg = 128, RegsPerThread = 32, Iters = 10, MemLat = 40, Nthd = 4;
  int MaxSpills = 64, SampleCycles = 0;
  std::string TraceCycles;
  bool Json = false, AfterAlloc = false, Physical = false, StaticPGO = false;
  bool Explain = false, AllowSpill = false, Validate = false, Werror = false;
  std::string Only, ProfilePath, OutPath;
  for (int I = 3; I < argc; ++I) {
    std::string Opt = argv[I];
    if (Opt == "--json") {
      Json = true;
      continue;
    }
    if (Opt == "--explain") {
      Explain = true;
      continue;
    }
    if (Opt == "--allow-spill") {
      AllowSpill = true;
      continue;
    }
    if (Opt == "--validate") {
      Validate = true;
      continue;
    }
    if (Opt == "--Werror") {
      Werror = true;
      continue;
    }
    if (Opt == "--after-alloc") {
      AfterAlloc = true;
      continue;
    }
    if (Opt == "--physical") {
      Physical = true;
      continue;
    }
    if (Opt == "--pgo-static") {
      StaticPGO = true;
      continue;
    }
    if (I + 1 >= argc)
      return usage();
    std::string Value = argv[++I];
    if (Opt == "--only")
      Only = Value;
    else if (Opt == "--profile")
      ProfilePath = Value;
    else if (Opt == "-o")
      OutPath = Value;
    else if (Opt == "-nreg")
      Nreg = std::atoi(Value.c_str());
    else if (Opt == "--max-spills")
      MaxSpills = std::atoi(Value.c_str());
    else if (Opt == "-regs")
      RegsPerThread = std::atoi(Value.c_str());
    else if (Opt == "-iters")
      Iters = std::atoi(Value.c_str());
    else if (Opt == "-memlat")
      MemLat = std::atoi(Value.c_str());
    else if (Opt == "-nthd")
      Nthd = std::atoi(Value.c_str());
    else if (Opt == "--trace-cycles")
      TraceCycles = Value;
    else if (Opt == "--sample-cycles")
      SampleCycles = std::atoi(Value.c_str());
    else
      return usage();
  }

  // Lint inspects the program as written (no live-range renaming), so
  // diagnostics point at the user's own register names; the allocation
  // subcommands rename first like the full pipeline does.
  ErrorOr<MultiThreadProgram> MTP = loadFile(Path, /*Rename=*/Cmd != "lint");
  if (!MTP.ok()) {
    std::cerr << "error: " << MTP.status().str() << "\n";
    return 1;
  }

  if (Cmd == "analyze")
    return cmdAnalyze(*MTP);
  if (Cmd == "alloc") {
    std::optional<ExecutionProfile> Prof;
    if (!ProfilePath.empty()) {
      Prof = loadProfile(ProfilePath);
      if (!Prof)
        return 1;
    }
    return cmdAlloc(*MTP, Nreg, /*Print=*/!Explain, Prof ? &*Prof : nullptr,
                    StaticPGO, Explain, AllowSpill, MaxSpills, Validate);
  }
  if (Cmd == "profile")
    return cmdProfile(*MTP, Iters, MemLat, OutPath);
  if (Cmd == "run")
    return cmdRun(*MTP, Nreg, Iters, MemLat, TraceCycles, SampleCycles);
  if (Cmd == "baseline")
    return cmdBaseline(*MTP, RegsPerThread);
  if (Cmd == "sra")
    return cmdSra(*MTP, Nthd, Nreg);
  if (Cmd == "lint")
    return cmdLint(MTP.take(), Json, AfterAlloc, Physical, Only, Nreg, Werror);
  return usage();
}

} // namespace

int main(int argc, char **argv) {
  // Strip the global observability flags before subcommand parsing so every
  // subcommand accepts them without threading two extra options through
  // each per-command argument loop.
  std::string TraceOut;
  bool Metrics = false;
  std::vector<char *> Args;
  Args.reserve(static_cast<size_t>(argc));
  for (int I = 0; I < argc; ++I) {
    std::string_view Opt = argv[I];
    if (Opt == "--trace-out") {
      if (I + 1 >= argc)
        return usage();
      TraceOut = argv[++I];
    } else if (Opt == "--metrics") {
      Metrics = true;
    } else {
      Args.push_back(argv[I]);
    }
  }
  if (!TraceOut.empty())
    TraceEngine::global().setEnabled(true);

  int Ret = dispatch(static_cast<int>(Args.size()), Args.data());

  if (!TraceOut.empty()) {
    TraceEngine &TE = TraceEngine::global();
    TE.setEnabled(false);
    if (Status S = TE.writeFile(TraceOut); !S.ok()) {
      std::cerr << "error: " << S.str() << "\n";
      Ret = Ret ? Ret : 1;
    } else {
      std::cerr << "wrote " << TraceOut << " (" << TE.eventCount()
                << " trace events)\n";
    }
  }
  if (Metrics)
    MetricsRegistry::global().renderText(std::cerr);
  return Ret;
}
