; A xor-folding checksum next to a byte-swapper: the CRC thread folds the
; running value with shifted copies of each word (xor-heavy straight-line
; code), the swapper rotates halves with shifts and or. Exercises the
; validator's algebraic xor interpretation on *matched* instructions, not
; just on allocator-inserted swap idioms.
;
;   npralc alloc  examples/asm/crc_fold.s -nreg 10
;   npralc verify examples/asm/crc_fold.s -nreg 10
.thread crc_fold
.entrylive src, dst
main:
    imm  crc, 0
    imm  n, 8
word:
    load w, [src+0]
    xor  crc, crc, w
    shli hi, crc, 5
    xor  crc, crc, hi
    shri lo, crc, 3
    xor  crc, crc, lo
    addi src, src, 1
    subi n, n, 1
    bnz  n, word
    store [dst+0], crc
    loopend
    halt

.thread byteswap
.entrylive src, dst
main:
    imm  n, 8
swap:
    load w, [src+4]
    shli up, w, 16
    shri dn, w, 16
    or   w, up, dn
    store [dst+4], w
    addi src, src, 1
    addi dst, dst, 1
    subi n, n, 1
    bnz  n, swap
    loopend
    halt
