; A grab-bag of the defects npral-lint detects, for demos and CLI tests:
;
;   maybe-uninit      'x' is only initialized on the fall-through path of
;                     the bnz, so the read in 'join' may see garbage
;   dead-store        't' is written and never read (also a dead-range)
;   unreachable-block 'orphan' has no predecessor
;   redundant-move    'mov y, y' copies a register onto itself
;   over-private      'acc' in thread 'accum' crosses the load CSB but all
;                     its references sit inside one NSR; excluding that NSR
;                     (paper §7.1) frees a private register for one move
;
; Run: npralc lint examples/asm/lint_buggy.s
.thread worker
.entrylive buf
main:
    imm  c, 1
    imm  t, 5              ; dead store: t is never read
    bnz  c, join           ; taking the branch skips the init of x
init:
    imm  x, 42
join:
    add  y, x, x           ; maybe-uninitialized read of x
    mov  y, y              ; redundant self-move
    store [buf+0], y
    halt
orphan:
    imm  z, 1              ; unreachable: nothing branches here
    add  z, z, z
    halt

.thread accum
.entrylive buf
main:
    imm  acc, 1
    load w, [buf+0]        ; CSB: acc is live across
    add  acc, acc, w
    add  acc, acc, acc
    store [buf+0], acc
    halt
