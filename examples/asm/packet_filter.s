; A two-thread packet filter: the classifier walks a descriptor ring and
; forwards or drops by port number (diamond CFG inside the loop), while a
; statistics thread tallies how often the engine yielded. The classifier's
; cursor and accept counter are live across the load CSBs, so they must
; end up private under the paper's safety rule.
;
;   npralc alloc  examples/asm/packet_filter.s -nreg 8
;   npralc verify examples/asm/packet_filter.s -nreg 8
.thread classifier
.entrylive ring, outq
main:
    imm  accept, 0
    imm  n, 8
pkt:
    load port, [ring+0]        ; CSB: ring, accept, n live across
    imm  allow, 80
    beq  port, allow, fwd
    imm  zero, 0
    store [outq+1], zero       ; drop lane: write a zero marker
    br   next
fwd:
    addi accept, accept, 1
    store [outq+0], port
next:
    addi ring, ring, 1
    subi n, n, 1
    bnz  n, pkt
    store [outq+2], accept
    loopend
    halt

.thread yield_stats
.entrylive statp
main:
    imm  yields, 0
    imm  rounds, 6
spin:
    ctx                        ; voluntary yield: yields/rounds live across
    addi yields, yields, 1
    subi rounds, rounds, 1
    bnz  rounds, spin
    store [statp+0], yields
    loopend
    halt
