; Absolute-addressed scratch mailboxes: each thread owns a fixed scratch
; word (loada/storea, the same opcodes spill code uses) and posts its
; running total there every iteration. The addresses appear in the
; *source*, so the translation validator must match them as original
; instructions and not mistake them for allocator spill traffic.
;
;   npralc alloc  examples/asm/scratch_mailbox.s -nreg 8
;   npralc verify examples/asm/scratch_mailbox.s -nreg 8
.thread poster_a
.entrylive src
main:
    imm  total, 0
    imm  n, 4
step:
    load v, [src+0]
    add  total, total, v
    storea 0x400, total        ; mailbox A: absolute scratch word
    addi src, src, 1
    subi n, n, 1
    bnz  n, step
    loopend
    halt

.thread poster_b
.entrylive src
main:
    imm  total, 0
    imm  n, 4
step:
    load v, [src+8]
    add  total, total, v
    storea 0x401, total        ; mailbox B
    addi src, src, 1
    subi n, n, 1
    bnz  n, step
    loopend
    halt

.thread reader
main:
    imm  rounds, 3
poll:
    ctx
    loada a, 0x400
    loada b, 0x401
    add  sum, a, b
    storea 0x402, sum          ; combined mailbox
    subi rounds, rounds, 1
    bnz  rounds, poll
    loopend
    halt
