; A deliberately MISCOMPILED translation, as a paired fixture for
; `npralc verify --paired`: the first half of the threads is the virtual
; input, the second half the claimed physical output (p<N> names). The
; "allocator" here swapped the operands of the subtraction — sub is not
; commutative, so the physical thread computes b - a instead of a - b.
; The translation validator must reject this with an operand-value
; mismatch witness at the `sub`.
.thread diff
.entrylive a, b
main:
    sub  d, a, b
    store [d+0], d
    loopend
    halt

.thread diff.phys
.entrylive p0, p1
main:
    sub  p2, p1, p0        ; BUG: operands swapped (b - a, not a - b)
    store [p2+0], p2
    loopend
    halt
