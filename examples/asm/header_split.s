; Header/payload split with a reassembly checker: thread one copies a
; fixed-size header into one region and the payload into another; thread
; two recomputes the split lengths and cross-checks the totals. High
; simultaneous pressure inside the copy loops, low pressure at the CSBs —
; the profile of code the paper's splitting transformations reward.
;
;   npralc alloc  examples/asm/header_split.s -nreg 10
;   npralc verify examples/asm/header_split.s -nreg 10
.thread splitter
.entrylive pkt, hdrq, payq
main:
    imm  hl, 3                 ; header words
    imm  pl, 5                 ; payload words
hdr:
    load w, [pkt+0]
    store [hdrq+0], w
    addi pkt, pkt, 1
    addi hdrq, hdrq, 1
    subi hl, hl, 1
    bnz  hl, hdr
pay:
    load w, [pkt+0]
    store [payq+0], w
    addi pkt, pkt, 1
    addi payq, payq, 1
    subi pl, pl, 1
    bnz  pl, pay
    loopend
    halt

.thread length_check
.entrylive statp
main:
    imm  hl, 3
    imm  pl, 5
    add  total, hl, pl
    shli bytes, total, 2
    ctx                        ; total/bytes live across the yield
    store [statp+0], total
    store [statp+1], bytes
    loopend
    halt
