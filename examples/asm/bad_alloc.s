; A deliberately BAD register allocation, written with physical register
; names (p<N>) so that `npralc lint examples/asm/bad_alloc.s --physical`
; reinterprets it as a post-allocation program.
;
; Thread 'alpha' keeps p1 and p2 live across its two load CSBs, which by
; the paper's safety rule (property 5) makes both registers private to
; alpha. Thread 'beta' nevertheless clobbers p1 and p2, so the
; cross-thread-race checker must report TWO distinct violations in one
; run — one per clobbered register.
.thread alpha
.entrylive p0
main:
    imm  p1, 1
    imm  p2, 2
    load p3, [p0+0]        ; CSB: p1 and p2 are live across this switch
    add  p1, p1, p3
    load p4, [p0+1]        ; CSB: p1 and p2 are live across again
    add  p2, p2, p4
    add  p1, p1, p2
    store [p0+0], p1
    halt

.thread beta
.entrylive p6
main:
    imm  p1, 7             ; clobbers alpha's private p1
    imm  p2, 9             ; clobbers alpha's private p2
    add  p5, p1, p2
    store [p6+0], p5
    halt
