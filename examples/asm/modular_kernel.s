; A modular kernel written with assembler functions: the machine has no
; call stack, so `call` expands the body inline at each site (shared
; register names, macro style) — after expansion the allocator sees one
; CFG, which is how the paper's inter-procedural NSR construction plays
; out here.
;
;   npralc analyze examples/asm/modular_kernel.s
;   npralc run     examples/asm/modular_kernel.s -iters 4
.func csum_step
body:
    load  w, [cur+0]
    add   sum, sum, w
    shri  f, sum, 16
    andi  sum, sum, 0xFFFF
    add   sum, sum, f
    addi  cur, cur, 1
    ret

.func emit
body:
    not   res, sum
    andi  res, res, 0xFFFF
    store [outp+0], res
    addi  outp, outp, 1
    ret

.thread checksum
main:
    imm   cur, 0x1000
    imm   outp, 0x2000
loop:
    imm   sum, 0
    call  csum_step
    call  csum_step
    call  csum_step
    call  csum_step
    call  emit
    ctx
    loopend
    br    loop
