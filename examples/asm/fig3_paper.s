; The paper's Figure 3 example (Zhuang & Pande, PLDI'04): two threads where
; registers can be shared because b, c and d are dead at every context
; switch, while a must stay private to thread 1.
;
;   npralc analyze examples/asm/fig3_paper.s
;   npralc alloc   examples/asm/fig3_paper.s -nreg 4
;
; The allocator finds PR=1 for thread 1 (just `a`), PR=0 for thread 2, and
; shares the rest — the paper's "from four registers down to three" (and
; with live range splitting, Fig. 3c reaches two).
.thread fig3_thread1
main:
    imm  a, 1            ; 1. a=
    ctx                  ; 2. ctx_switch   (a live across -> private)
    bz   a, l1           ; 3. if( ) br L1
    imm  b, 2            ; 4. b=
    add  t, a, b         ; 5. =a+b
    imm  c, 3            ; 6. c=
    br   l2              ; 7. br L2
l1:
    imm  c, 4            ; 8. c=
    add  t, a, c         ; 9. =a+c
    imm  b, 5            ; 10. b=
l2:
    add  u, b, c         ; 11. =b+c
    store [u+0], u       ; 12. load/store (context switch)
    loopend
    halt

.thread fig3_thread2
main:
    ctx                  ; 1. ctx_switch
    imm  d, 7            ; 2. d=
    addi e, d, 1         ; 3. =d+
    store [e+0], e
    loopend
    halt
