; Hash-table probe with a bounded reprobe loop: compute a mask-and-shift
; hash, walk up to three probe slots, and fall out to an overflow bucket.
; Nested control flow (loop inside loop, early exit) gives the validator's
; fixpoint real joins to stabilise.
;
;   npralc alloc  examples/asm/hash_probe.s -nreg 9
;   npralc verify examples/asm/hash_probe.s -nreg 9
.thread hash_probe
.entrylive keys, table, outp
main:
    imm  n, 6
key:
    load k, [keys+0]
    muli h, k, 31
    andi h, h, 7
    add  slot, table, h
    imm  tries, 3
probe:
    load cur, [slot+0]
    beq  cur, k, hit
    addi slot, slot, 1
    subi tries, tries, 1
    bnz  tries, probe
    imm  miss, 0
    store [outp+1], miss       ; overflow bucket
    br   next
hit:
    store [outp+0], k
next:
    addi keys, keys, 1
    subi n, n, 1
    bnz  n, key
    loopend
    halt

.thread occupancy
.entrylive table, statp
main:
    imm  used, 0
    imm  i, 8
scan:
    load e, [table+0]
    bz   e, skip
    addi used, used, 1
skip:
    addi table, table, 1
    subi i, i, 1
    bnz  i, scan
    store [statp+0], used
    loopend
    halt
