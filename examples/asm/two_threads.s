; Two threads sharing one micro-engine: a checksum worker whose state is
; live across context switches and a counter thread whose values are not.
.thread checksum
.entrylive buf, out
main:
    imm  sum, 0
    imm  cnt, 8
loop:
    load w, [buf+0]
    add  sum, sum, w
    addi buf, buf, 1
    subi cnt, cnt, 1
    bnz  cnt, loop
    store [out+0], sum
    loopend
    halt

.thread counter
main:
    imm  n, 16
loop:
    ctx
    subi n, n, 1
    bnz  n, loop
    imm  addr, 0x300
    store [addr+0], n
    loopend
    halt
