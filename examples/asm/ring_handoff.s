; Producer/consumer hand-off over a signal channel: the producer fills a
; ring slot then posts channel 1; the consumer blocks on the channel before
; reading. Both `signal` and `wait` yield the CPU, so every loop-carried
; register crosses a CSB every iteration — a worst case for shared
; registers and a good stress for the allocator's private budgeting.
;
;   npralc run   examples/asm/ring_handoff.s -iters 4
;   npralc alloc examples/asm/ring_handoff.s -nreg 8
.thread producer
.entrylive ring
main:
    imm  val, 0x11
    imm  n, 4
fill:
    store [ring+0], val
    addi ring, ring, 1
    addi val, val, 2
    signal 1                   ; CSB: ring, val, n live across
    subi n, n, 1
    bnz  n, fill
    loopend
    halt

.thread consumer
.entrylive ring, outp
main:
    imm  sum, 0
    imm  n, 4
drain:
    wait 1                     ; CSB: blocks until the producer posts
    load v, [ring+0]
    add  sum, sum, v
    addi ring, ring, 1
    subi n, n, 1
    bnz  n, drain
    store [outp+0], sum
    loopend
    halt
