; Four symmetric counter threads — the paper's Nthd=4 configuration in
; miniature. Every thread keeps its own stride accumulator live across a
; voluntary yield, so each needs one private register while the scratch
; values can share; a stress for the Fig. 8 reduction with many threads.
;
;   npralc alloc examples/asm/quad_counters.s -nreg 8
;   npralc batch examples/asm/quad_counters.s --jobs 2
.thread lane0
.entrylive outp
main:
    imm  acc, 0
    imm  n, 4
tick:
    ctx
    addi acc, acc, 1
    subi n, n, 1
    bnz  n, tick
    store [outp+0], acc
    loopend
    halt

.thread lane1
.entrylive outp
main:
    imm  acc, 0
    imm  n, 4
tick:
    ctx
    addi acc, acc, 2
    subi n, n, 1
    bnz  n, tick
    store [outp+1], acc
    loopend
    halt

.thread lane2
.entrylive outp
main:
    imm  acc, 0
    imm  n, 4
tick:
    ctx
    addi acc, acc, 3
    subi n, n, 1
    bnz  n, tick
    store [outp+2], acc
    loopend
    halt

.thread lane3
.entrylive outp
main:
    imm  acc, 0
    imm  n, 4
tick:
    ctx
    addi acc, acc, 4
    subi n, n, 1
    bnz  n, tick
    store [outp+3], acc
    loopend
    halt
