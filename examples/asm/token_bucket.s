; Token-bucket rate limiter: the refill thread adds tokens (saturating at
; the burst size) on every yield; the shaper spends one token per packet
; and diverts to a drop queue when the bucket in scratch memory is empty.
; The bucket lives at an absolute scratch word both threads touch.
;
;   npralc alloc  examples/asm/token_bucket.s -nreg 8
;   npralc verify examples/asm/token_bucket.s -nreg 8
.thread refill
main:
    imm  burst, 4
    imm  rounds, 6
tick:
    ctx
    loada t, 0x500
    addi t, t, 2
    blt  t, burst, ok
    mov  t, burst              ; saturate at the burst size
ok:
    storea 0x500, t
    subi rounds, rounds, 1
    bnz  rounds, tick
    loopend
    halt

.thread shaper
.entrylive inq, outq, dropq
main:
    imm  n, 6
pkt:
    load p, [inq+0]
    loada t, 0x500
    bz   t, drop
    subi t, t, 1
    storea 0x500, t
    store [outq+0], p
    br   next
drop:
    store [dropq+0], p
next:
    addi inq, inq, 1
    subi n, n, 1
    bnz  n, pkt
    loopend
    halt
