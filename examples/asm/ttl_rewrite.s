; IPv4-style TTL rewrite: load the TTL field, decrement, drop the packet
; when it hits zero, otherwise patch the header and fix the checksum by
; incremental update. A second thread ages a table entry every other
; engine yield. Both threads keep several values across CSBs.
;
;   npralc alloc  examples/asm/ttl_rewrite.s -nreg 8
;   npralc verify examples/asm/ttl_rewrite.s -nreg 8
.thread ttl_rewrite
.entrylive hdr, dropq
main:
    imm  n, 8
pkt:
    load ttl, [hdr+0]
    subi ttl, ttl, 1
    bz   ttl, drop
    store [hdr+0], ttl
    load csum, [hdr+1]
    addi csum, csum, 1         ; incremental checksum fix-up
    store [hdr+1], csum
    br   next
drop:
    imm  one, 1
    store [dropq+0], one
next:
    addi hdr, hdr, 2
    subi n, n, 1
    bnz  n, pkt
    loopend
    halt

.thread table_ager
.entrylive tbl
main:
    imm  rounds, 4
age:
    ctx
    load e, [tbl+0]
    shri e, e, 1               ; halve the activity counter
    store [tbl+0], e
    subi rounds, rounds, 1
    bnz  rounds, age
    loopend
    halt
