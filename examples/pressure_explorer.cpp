//===- pressure_explorer.cpp - Explore a kernel's register structure ------===//
//
// A compiler-writer's tool: feed it a benchmark name (or run it over all of
// them) and it prints the full register-allocation profile the paper's
// analysis produces — NSR structure, boundary vs internal live ranges, the
// four bounds, and the move-cost curve as the register budget shrinks from
// MaxR to MinR. The curve makes Lemma 1 tangible: cost 0 at the top,
// growing as live ranges get split toward the lower bound.
//
// Run: ./build/examples/pressure_explorer [kernel]
//
//===----------------------------------------------------------------------===//

#include "alloc/IntraAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <iostream>

using namespace npral;

static void explore(const std::string &Name) {
  ErrorOr<Workload> W = buildWorkload(Name, 0);
  if (!W.ok()) {
    std::cerr << "error: " << W.status().str() << "\n";
    return;
  }
  const Program &P = W->Code;
  ThreadAnalysis TA = analyzeThread(P);

  std::cout << "=== " << Name << " ===\n";
  std::cout << "  instructions:      " << P.countInstructions() << " ("
            << P.countCtxInstructions() << " cause context switches)\n";
  std::cout << "  live ranges:       " << TA.getNumLiveRanges() << " ("
            << TA.BoundaryNodes.count() << " boundary, "
            << TA.InternalNodes.count() << " internal)\n";
  std::cout << "  NSRs:              " << TA.NSRs.getNumNSRs() << ", "
            << TA.NSRs.getCSBs().size() << " context switch boundaries\n";
  std::cout << "  GIG:               " << TA.GIG.getNumEdges()
            << " edges;  BIG: " << TA.BIG.getNumEdges() << " edges\n";

  IntraThreadAllocator Intra(P);
  std::cout << "  bounds:            MinPR=" << Intra.getMinPR()
            << " MaxPR=" << Intra.getMaxPR() << "  MinR=" << Intra.getMinR()
            << " MaxR=" << Intra.getMaxR() << "\n\n";

  // Move-cost curve: shrink R from MaxR down to MinR, keeping PR at the
  // smallest feasible value for each R.
  TableFormatter Curve({"R", "PR", "SR", "Moves", "Strategy"});
  for (int R = Intra.getMaxR(); R >= Intra.getMinR(); --R) {
    int PR = std::max(Intra.getMinPR(), std::min(Intra.getMaxPR(), R));
    // Give the boundary part as little as legally possible so the shared
    // pool absorbs the rest.
    while (PR > Intra.getMinPR() && Intra.allocate(PR - 1, R - PR + 1).Feasible)
      --PR;
    const IntraResult &A = Intra.allocate(PR, R - PR);
    Curve.row().cell(R).cell(PR).cell(R - PR);
    if (A.Feasible)
      Curve.cell(A.MoveCost).cell(A.Strategy);
    else
      Curve.cell("-").cell("infeasible");
  }
  Curve.print(std::cout);
  std::cout << "\n";
}

int main(int argc, char **argv) {
  if (argc > 1) {
    explore(argv[1]);
    return 0;
  }
  std::cout << "Register-pressure profile of every benchmark kernel.\n"
            << "(pass a kernel name to explore just one)\n\n";
  for (const std::string &Name : getWorkloadNames())
    explore(Name);
  return 0;
}
