//===- producer_consumer.cpp - Synchronised threads on one engine ---------===//
//
// The paper notes that thread communication "rarely happens, however, our
// current solutions still work under such circumstances" (§2) and lists
// exploiting synchronisation knowledge as future work. This example builds
// a classic bounded hand-off between a parser thread and a compressor
// thread using the signal/wait channel extension, allocates the pair with
// the inter-thread allocator, and shows that the synchronising instructions
// are simply additional context-switch boundaries: values live across a
// `wait` end up in private registers, everything else can share.
//
// Run: ./build/examples/producer_consumer
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "asmparse/AsmParser.h"
#include "sim/Simulator.h"

#include <iostream>

using namespace npral;

int main() {
  const char *Asm = R"(
.thread parser
.entrylive in
main:
    imm  ring, 0x400
    imm  n, 6
loop:
    load hdr, [in+0]            ; read a packet header
    andi typ, hdr, 7
    shri len, hdr, 8
    andi len, len, 255
    add  desc, typ, len         ; descriptor = type + length summary
    shli desc, desc, 4
    or   desc, desc, typ
    store [ring+0], desc        ; publish into the ring
    signal 1                    ; tell the compressor a slot is ready
    wait   2                    ; wait for the slot to drain
    addi in, in, 1
    addi ring, ring, 1
    subi n, n, 1
    bnz  n, loop
    loopend
    halt

.thread compressor
.entrylive out
main:
    imm  ring, 0x400
    imm  n, 6
loop:
    wait 1                      ; block until the parser publishes
    load d, [ring+0]
    muli x, d, 0x101            ; toy "compression" transform
    shri y, x, 3
    xor  x, x, y
    store [out+0], x
    signal 2                    ; slot drained
    addi ring, ring, 1
    addi out, out, 1
    subi n, n, 1
    bnz  n, loop
    loopend
    halt
)";

  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Asm);
  if (!MTP.ok()) {
    std::cerr << "parse error: " << MTP.status().str() << "\n";
    return 1;
  }

  // Show that signal/wait are context switch boundaries like any other.
  for (const Program &T : MTP->Threads) {
    ThreadAnalysis TA = analyzeThread(T);
    std::cout << T.Name << ": " << TA.NSRs.getCSBs().size()
              << " context-switch boundaries, boundary pressure "
              << TA.getRegPCSBmax() << ", total pressure " << TA.getRegPmax()
              << "\n";
  }

  InterThreadResult R = allocateInterThread(*MTP, 24);
  if (!R.Success) {
    std::cerr << "allocation failed: " << R.FailReason << "\n";
    return 1;
  }
  if (Status S = verifyAllocationSafety(R.Physical); !S.ok()) {
    std::cerr << "unsafe: " << S.str() << "\n";
    return 1;
  }
  std::cout << "\nallocated: ";
  for (size_t T = 0; T < R.Threads.size(); ++T)
    std::cout << MTP->Threads[T].Name << " PR=" << R.Threads[T].PR
              << " SR=" << R.Threads[T].SR << "  ";
  std::cout << "(SGR=" << R.SGR << ", " << R.RegistersUsed
            << "/24 registers)\n\n";

  Simulator Sim(R.Physical, SimConfig());
  Sim.writeMemory(0x100, {0x0105, 0x0207, 0x0303, 0x0401, 0x0502, 0x0606});
  Sim.setEntryValues(0, {0x100});
  Sim.setEntryValues(1, {0x300});
  SimResult Run = Sim.run();
  if (!Run.Completed) {
    std::cerr << "simulation failed: " << Run.FailReason << "\n";
    return 1;
  }
  std::cout << "pipeline finished in " << Run.TotalCycles
            << " cycles; compressed stream:";
  for (int I = 0; I < 6; ++I)
    std::cout << " 0x" << std::hex
              << Sim.readMemoryWord(0x300 + static_cast<uint32_t>(I))
              << std::dec;
  std::cout << "\n";
  return 0;
}
