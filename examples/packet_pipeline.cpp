//===- packet_pipeline.cpp - A realistic micro-engine deployment ----------===//
//
// The scenario from the paper's introduction: one micro-engine runs a mixed
// packet-processing module — receive parsing, MD5 content authentication
// (performance critical), and a 2D FIR post-filter — and the operator wants
// the critical thread to go fast without starving the others.
//
// This example builds the 4-thread scenario from the benchmark suite,
// allocates it twice (fixed 32-register partitions with spilling vs. the
// paper's shared-register allocation), simulates both deployments and
// prints a side-by-side comparison.
//
// Run: ./build/examples/packet_pipeline
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "support/TableFormatter.h"
#include "workloads/Harness.h"

#include <iostream>

using namespace npral;

int main() {
  Scenario S{"pipeline", {"l2l3fwd_rx", "md5", "md5", "fir2dim"}, {1, 2}};
  std::vector<Workload> Workloads = buildScenarioWorkloads(S);
  MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);

  std::cout << "Deploying 4 threads on one micro-engine (128 GPRs, memory "
               "latency 40):\n";
  for (size_t T = 0; T < Workloads.size(); ++T)
    std::cout << "  thread " << T << ": " << Workloads[T].Name << " ("
              << Workloads[T].Code.countInstructions() << " instructions)\n";
  std::cout << "\n";

  // Production-style baseline: fixed partitions, spill on overflow.
  BaselineAllocationOutcome Baseline = allocateScenarioBaseline(Workloads, 32);
  if (!Baseline.Success) {
    std::cerr << "baseline failed: " << Baseline.FailReason << "\n";
    return 1;
  }

  // Paper allocator: balance across threads, share what is safely shareable.
  InterThreadResult Sharing = allocateInterThread(Virtual, 128);
  if (!Sharing.Success) {
    std::cerr << "sharing allocation failed: " << Sharing.FailReason << "\n";
    return 1;
  }
  if (Status St = verifyAllocationSafety(Sharing.Physical); !St.ok()) {
    std::cerr << "unsafe allocation: " << St.str() << "\n";
    return 1;
  }

  SimConfig Config = defaultExperimentConfig();
  ScenarioRun Spill =
      simulateWithWorkloads(Workloads, Baseline.Physical, Config);
  ScenarioRun Share =
      simulateWithWorkloads(Workloads, Sharing.Physical, Config);
  if (!Spill.Success || !Share.Success) {
    std::cerr << "simulation failed\n";
    return 1;
  }

  TableFormatter Table({"Thd", "Kernel", "Spilled ops", "PR", "SR",
                        "Cyc/iter (spill)", "Cyc/iter (share)", "Change"});
  for (size_t T = 0; T < Workloads.size(); ++T) {
    const ChaitinResult &CR = Baseline.PerThread[T];
    double A = Spill.Threads[T].CyclesPerIter;
    double B = Share.Threads[T].CyclesPerIter;
    Table.row()
        .cell(T)
        .cell(Workloads[T].Name)
        .cell(CR.SpillLoads + CR.SpillStores)
        .cell(Sharing.Threads[T].PR)
        .cell(Sharing.Threads[T].SR)
        .cell(A, 1)
        .cell(B, 1)
        .percentCell(A > 0 ? (A - B) / A : 0);
  }
  Table.print(std::cout);
  std::cout << "\nShared window: " << Sharing.SGR << " registers; total "
            << Sharing.RegistersUsed << "/128 in use.\n"
            << "Positive change = the thread runs faster under register "
               "sharing.\n";
  return 0;
}
