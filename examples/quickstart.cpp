//===- quickstart.cpp - NPRAL in five minutes ------------------------------===//
//
// Allocate registers for two threads sharing one IXP-style micro-engine:
//
//   1. write the threads in NPRAL assembly,
//   2. run the inter-thread register allocator,
//   3. inspect the private/shared split it chose,
//   4. verify cross-thread safety,
//   5. simulate the allocated program.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "asmparse/AsmParser.h"
#include "ir/IRPrinter.h"
#include "sim/Simulator.h"

#include <iostream>

using namespace npral;

int main() {
  // Two threads: a checksum worker whose accumulator lives across context
  // switches (it needs a private register) and a scaling worker whose
  // values are all dead at every switch (they can live in shared
  // registers).
  const char *Asm = R"(
.thread checksum
.entrylive buf, out
main:
    imm  sum, 0
    imm  cnt, 8
loop:
    load w, [buf+0]         ; context switch: sum/cnt/buf/out live across
    add  sum, sum, w
    addi buf, buf, 1
    subi cnt, cnt, 1
    bnz  cnt, loop
    store [out+0], sum
    loopend
    halt

.thread scale
.entrylive src, dst
main:
    imm  cnt, 8
loop:
    load v, [src+0]         ; v is dead at every other context switch
    muli t, v, 3
    addi t, t, 1
    store [dst+0], t
    addi src, src, 1
    addi dst, dst, 1
    subi cnt, cnt, 1
    bnz  cnt, loop
    loopend
    halt
)";

  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Asm);
  if (!MTP.ok()) {
    std::cerr << "parse error: " << MTP.status().str() << "\n";
    return 1;
  }

  // Allocate the pair onto a 16-register file.
  const int Nreg = 16;
  InterThreadResult R = allocateInterThread(*MTP, Nreg);
  if (!R.Success) {
    std::cerr << "allocation failed: " << R.FailReason << "\n";
    return 1;
  }

  std::cout << "Allocated " << MTP->Threads.size() << " threads onto " << Nreg
            << " registers:\n";
  for (size_t T = 0; T < R.Threads.size(); ++T) {
    const ThreadAllocation &TA = R.Threads[T];
    std::cout << "  " << MTP->Threads[T].Name << ": PR=" << TA.PR
              << " private (p" << TA.PrivateBase << "..p"
              << TA.PrivateBase + TA.PR - 1 << "), SR=" << TA.SR
              << " shared, " << TA.MoveCost << " moves ("
              << TA.Strategy << ")\n";
  }
  std::cout << "  shared window: " << R.SGR << " registers from p"
            << R.SharedBase << "; total used " << R.RegistersUsed << "/"
            << Nreg << "\n\n";

  if (Status S = verifyAllocationSafety(R.Physical); !S.ok()) {
    std::cerr << "safety violation: " << S.str() << "\n";
    return 1;
  }
  std::cout << "Safety check passed: no register that crosses one thread's "
               "context switch\nis touched by the other thread.\n\n";

  // Simulate: each thread reads 8 words and writes results.
  SimConfig Config;
  Config.TargetIterations = 1;
  Config.HaltAtTarget = true;
  Simulator Sim(R.Physical, Config);
  Sim.writeMemory(0x100, {1, 2, 3, 4, 5, 6, 7, 8});    // checksum input
  Sim.writeMemory(0x200, {10, 20, 30, 40, 50, 60, 70, 80}); // scale input
  Sim.setEntryValues(0, {0x100, 0x180});
  Sim.setEntryValues(1, {0x200, 0x280});
  SimResult Run = Sim.run();
  if (!Run.Completed) {
    std::cerr << "simulation failed: " << Run.FailReason << "\n";
    return 1;
  }

  std::cout << "Simulation finished in " << Run.TotalCycles << " cycles.\n";
  std::cout << "  checksum result: " << Sim.readMemoryWord(0x180)
            << " (expected 36)\n";
  std::cout << "  scale results:   ";
  for (int I = 0; I < 8; ++I)
    std::cout << Sim.readMemoryWord(0x280 + static_cast<uint32_t>(I)) << " ";
  std::cout << "\n\nFirst thread, allocated form:\n\n";
  printProgram(std::cout, R.Physical.Threads[0]);
  return 0;
}
