//===- ChannelTest.cpp - signal/wait thread communication -----------------===//
//
// The paper's model note (§2, item 4): "Thread communication or
// synchronization rarely happens, however, our current solutions still
// work under such circumstances." These tests cover the signal/wait
// substrate and that claim: synchronising instructions are context-switch
// boundaries like any other, so the allocator treats them soundly.
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "sim/Simulator.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

const char *ProducerConsumerAsm = R"(
.thread producer
main:
    imm  addr, 0x400
    imm  n, 5
    imm  v, 100
loop:
    store [addr+0], v
    signal 1
    wait   2
    addi v, v, 1
    addi addr, addr, 1
    subi n, n, 1
    bnz  n, loop
    loopend
    halt
.thread consumer
main:
    imm  src, 0x400
    imm  dst, 0x500
    imm  n, 5
loop:
    wait 1
    load w, [src+0]
    muli w, w, 2
    store [dst+0], w
    signal 2
    addi src, src, 1
    addi dst, dst, 1
    subi n, n, 1
    bnz  n, loop
    loopend
    halt
)";

} // namespace

TEST(ChannelTest, SignalWaitParseAndPrint) {
  Program P = parseOrDie(R"(
.thread t
main:
    signal 3
    wait   3
    halt
)");
  EXPECT_EQ(P.block(0).Instrs[0].Op, Opcode::Signal);
  EXPECT_EQ(P.block(0).Instrs[0].Imm, 3);
  EXPECT_TRUE(P.block(0).Instrs[0].causesCtxSwitch());
  EXPECT_TRUE(P.block(0).Instrs[1].causesCtxSwitch());
}

TEST(ChannelTest, ProducerConsumerOrdering) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(ProducerConsumerAsm);
  ASSERT_TRUE(MTP.ok()) << MTP.status().str();
  Simulator Sim(*MTP, SimConfig());
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  // Strict alternation: every produced value is doubled exactly once.
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Sim.readMemoryWord(0x500 + static_cast<uint32_t>(I)),
              2u * (100u + static_cast<uint32_t>(I)));
}

TEST(ChannelTest, WaitBlocksUntilSignal) {
  // The consumer-side wait must actually stall: with a long producer delay
  // the consumer's completion time tracks the producer.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread slowpoke
main:
    imm  a, 0x100
    load b, [a+0]
    load b, [a+1]
    load b, [a+2]
    signal 0
    halt
.thread eager
main:
    wait 0
    imm  addr, 0x300
    imm  one, 1
    store [addr+0], one
    halt
)");
  ASSERT_TRUE(MTP.ok());
  SimConfig Config;
  Config.MemLatency = 100;
  Simulator Sim(*MTP, Config);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  // Three sequential 100-cycle loads gate the signal.
  EXPECT_GT(R.TotalCycles, 300);
  EXPECT_EQ(Sim.readMemoryWord(0x300), 1u);
}

TEST(ChannelTest, DeadlockIsDetected) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread a
main:
    wait 0
    halt
.thread b
main:
    wait 1
    halt
)");
  ASSERT_TRUE(MTP.ok());
  Simulator Sim(*MTP, SimConfig());
  SimResult R = Sim.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.FailReason.find("deadlock"), std::string::npos);
}

TEST(ChannelTest, ChannelOutOfRangeFails) {
  Program P = parseOrDie(".thread t\nmain:\n  signal 99\n  halt\n");
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  Simulator Sim(MTP, SimConfig());
  SimResult R = Sim.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.FailReason.find("out of range"), std::string::npos);
}

TEST(ChannelTest, TokensAccumulate) {
  // Two signals before any wait: both waits then proceed without blocking.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread poster
main:
    signal 4
    signal 4
    halt
.thread taker
main:
    ctx
    ctx
    wait 4
    wait 4
    imm  addr, 0x310
    imm  two, 2
    store [addr+0], two
    halt
)");
  ASSERT_TRUE(MTP.ok());
  Simulator Sim(*MTP, SimConfig());
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  EXPECT_EQ(Sim.readMemoryWord(0x310), 2u);
}

TEST(ChannelTest, SyncInstructionsAreCSBs) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    signal 0
    imm  b, 2
    wait 0
    add  c, a, b
    store [c+0], c
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  // a crosses the signal; a and b cross the wait.
  ASSERT_EQ(TA.NSRs.getCSBs().size(), 3u);
  EXPECT_EQ(TA.NSRs.getCSBs()[0].LiveAcross.count(), 1);
  EXPECT_EQ(TA.NSRs.getCSBs()[1].LiveAcross.count(), 2);
}

TEST(ChannelTest, AllocatorHandlesCommunicatingThreads) {
  // The paper's claim: the allocator works unchanged with thread
  // communication. Allocate the producer/consumer pair, verify safety and
  // behaviour.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(ProducerConsumerAsm);
  ASSERT_TRUE(MTP.ok());

  // Reference run.
  Simulator Ref(*MTP, SimConfig());
  ASSERT_TRUE(Ref.run().Completed);
  uint64_t Expected = Ref.hashMemoryRange(0x500, 8);

  InterThreadResult R = allocateInterThread(*MTP, 16);
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_TRUE(verifyAllocationSafety(R.Physical).ok());

  Simulator Sim(R.Physical, SimConfig());
  SimResult Run = Sim.run();
  ASSERT_TRUE(Run.Completed) << Run.FailReason;
  EXPECT_EQ(Sim.hashMemoryRange(0x500, 8), Expected);
}
