//===- DeterminismTest.cpp - Run-to-run simulator determinism -------------===//
//
// The simulator must be a pure function of (program, entry state, config):
// two runs of the identical setup produce identical cycle counts, thread
// stats, context-switch traces and memory images — and allocations produced
// by the batch driver at different worker counts drive it to the identical
// outcome, so `--jobs N` can never change an experiment's numbers.
//
//===----------------------------------------------------------------------===//

#include "alloc/InterAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "driver/BatchPipeline.h"
#include "grid/EngineGrid.h"
#include "sim/Simulator.h"
#include "workloads/ProgramGenerator.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace npral;

namespace {

/// A 3-thread virtual MTP over disjoint memory regions.
MultiThreadProgram makeVirtualMTP(uint64_t Seed) {
  MultiThreadProgram MTP;
  for (int T = 0; T < 3; ++T) {
    GeneratorConfig Config;
    Config.TargetInstructions = 80;
    Config.CtxRatePerMille = 180;
    Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
    Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
    Program P = generateRandomProgram(Seed * 10 + static_cast<uint64_t>(T),
                                      Config);
    P.Name = "det" + std::to_string(T);
    MTP.Threads.push_back(std::move(P));
  }
  return MTP;
}

struct RunSnapshot {
  SimResult Result;
  uint64_t OutHash = 0;
};

RunSnapshot runOnce(const MultiThreadProgram &MTP) {
  SimConfig Config;
  Config.RecordCtxTrace = true;
  Simulator Sim(MTP, Config);
  RunSnapshot Snap;
  Snap.Result = Sim.run();
  Snap.OutHash = Sim.hashMemoryRange(0x5000, 0x400);
  return Snap;
}

void expectIdentical(const RunSnapshot &A, const RunSnapshot &B) {
  ASSERT_TRUE(A.Result.Completed) << A.Result.FailReason;
  ASSERT_TRUE(B.Result.Completed) << B.Result.FailReason;
  EXPECT_EQ(A.Result.TotalCycles, B.Result.TotalCycles);
  EXPECT_EQ(A.Result.IdleCycles, B.Result.IdleCycles);
  EXPECT_EQ(A.OutHash, B.OutHash);
  ASSERT_EQ(A.Result.Threads.size(), B.Result.Threads.size());
  for (size_t T = 0; T < A.Result.Threads.size(); ++T) {
    EXPECT_EQ(A.Result.Threads[T].Iterations, B.Result.Threads[T].Iterations);
    EXPECT_EQ(A.Result.Threads[T].InstrsExecuted,
              B.Result.Threads[T].InstrsExecuted);
    EXPECT_EQ(A.Result.Threads[T].CtxEvents, B.Result.Threads[T].CtxEvents);
    EXPECT_EQ(A.Result.Threads[T].MemOps, B.Result.Threads[T].MemOps);
  }
  // The context-switch traces match event for event.
  ASSERT_EQ(A.Result.CtxTrace.size(), B.Result.CtxTrace.size());
  for (size_t I = 0; I < A.Result.CtxTrace.size(); ++I)
    EXPECT_TRUE(A.Result.CtxTrace[I] == B.Result.CtxTrace[I])
        << "trace diverges at event " << I << ": cycle "
        << A.Result.CtxTrace[I].Cycle << "/t" << A.Result.CtxTrace[I].Thread
        << " vs cycle " << B.Result.CtxTrace[I].Cycle << "/t"
        << B.Result.CtxTrace[I].Thread;
}

} // namespace

class SimDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimDeterminismTest, VirtualRunsAreBitIdentical) {
  MultiThreadProgram MTP = makeVirtualMTP(GetParam());
  RunSnapshot A = runOnce(MTP);
  RunSnapshot B = runOnce(MTP);
  expectIdentical(A, B);
  EXPECT_FALSE(A.Result.CtxTrace.empty());
}

TEST_P(SimDeterminismTest, AllocatedRunsAreBitIdentical) {
  MultiThreadProgram Virtual = makeVirtualMTP(GetParam());
  MultiThreadProgram Renamed;
  for (const Program &P : Virtual.Threads)
    Renamed.Threads.push_back(renameLiveRanges(P));
  InterThreadResult R = allocateInterThread(Renamed, 128);
  ASSERT_TRUE(R.Success) << R.FailReason;

  RunSnapshot A = runOnce(R.Physical);
  RunSnapshot B = runOnce(R.Physical);
  expectIdentical(A, B);
}

TEST_P(SimDeterminismTest, BatchWorkerCountDoesNotPerturbSimulation) {
  // The same corpus through the batch driver at --jobs 1 and --jobs 4 must
  // yield physical programs whose simulations are indistinguishable.
  std::vector<BatchJob> Jobs;
  for (uint64_t I = 0; I < 3; ++I) {
    BatchJob Job;
    Job.Name = "det" + std::to_string(I);
    Job.Program = makeVirtualMTP(GetParam() * 100 + I);
    Jobs.push_back(std::move(Job));
  }

  BatchOptions Serial;
  Serial.Jobs = 1;
  Serial.KeepPhysical = true;
  BatchOptions Parallel;
  Parallel.Jobs = 4;
  Parallel.KeepPhysical = true;
  Parallel.UseCache = true;

  BatchResult A = runBatch(Jobs, Serial);
  BatchResult B = runBatch(Jobs, Parallel);
  ASSERT_TRUE(A.allSucceeded());
  ASSERT_TRUE(B.allSucceeded());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    RunSnapshot SerialRun = runOnce(A.Results[I].Physical);
    RunSnapshot ParallelRun = runOnce(B.Results[I].Physical);
    expectIdentical(SerialRun, ParallelRun);
  }
}

namespace {

/// One lockstep grid run over three generated-program engines: per-engine
/// results plus the interconnect counters, everything a rerun must
/// reproduce bit for bit.
GridRunResult runGridOnce(uint64_t Seed) {
  EngineGrid Grid(/*HopLatency=*/4, /*InitialCredits=*/2);
  for (int E = 0; E < 3; ++E) {
    SimConfig Config;
    Config.RecordCtxTrace = true;
    Grid.addEngine(makeVirtualMTP(Seed * 3 + static_cast<uint64_t>(E)),
                   Config);
  }
  return Grid.run();
}

} // namespace

TEST_P(SimDeterminismTest, GridLockstepRunsAreBitIdentical) {
  // The grid adds message delivery and credit flow on top of the
  // simulator; none of it may introduce run-to-run variance.
  GridRunResult A = runGridOnce(GetParam());
  GridRunResult B = runGridOnce(GetParam());
  ASSERT_TRUE(A.Completed) << A.FailReason;
  ASSERT_TRUE(B.Completed) << B.FailReason;
  EXPECT_EQ(A.MaxEngineCycles, B.MaxEngineCycles);
  EXPECT_EQ(A.MessagesSent, B.MessagesSent);
  EXPECT_EQ(A.MessagesDelivered, B.MessagesDelivered);
  EXPECT_EQ(A.CreditsReturned, B.CreditsReturned);
  ASSERT_EQ(A.Engines.size(), B.Engines.size());
  for (size_t E = 0; E < A.Engines.size(); ++E) {
    RunSnapshot SA{A.Engines[E], 0};
    RunSnapshot SB{B.Engines[E], 0};
    expectIdentical(SA, SB);
    EXPECT_EQ(A.Engines[E].Threads.size(), 3u);
  }
  // Generated programs halt after their single iteration, so the reply
  // dispatches land on halted threads and flow back as credits.
  EXPECT_GT(A.MessagesSent, 0);
  EXPECT_GT(A.CreditsReturned, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminismTest,
                         ::testing::Range<uint64_t>(1, 7));
