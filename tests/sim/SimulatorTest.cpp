//===- SimulatorTest.cpp - Micro-engine semantics and timing --------------===//

#include "sim/Simulator.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

MultiThreadProgram singleThread(const Program &P) {
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  return MTP;
}

} // namespace

TEST(SimulatorTest, AluSemantics) {
  Program P = parseOrDie(R"(
.thread alu
main:
    imm  o, 0x3000
    imm  a, 10
    imm  b, 3
    add  r0, a, b
    sub  r1, a, b
    and  r2, a, b
    or   r3, a, b
    xor  r4, a, b
    shl  r5, a, b
    shr  r6, a, b
    mul  r7, a, b
    not  r8, a
    neg  r9, a
    store [o+0], r0
    store [o+1], r1
    store [o+2], r2
    store [o+3], r3
    store [o+4], r4
    store [o+5], r5
    store [o+6], r6
    store [o+7], r7
    store [o+8], r8
    store [o+9], r9
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  Simulator Sim(MTP, SimConfig());
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  EXPECT_EQ(Sim.readMemoryWord(0x3000), 13u);
  EXPECT_EQ(Sim.readMemoryWord(0x3001), 7u);
  EXPECT_EQ(Sim.readMemoryWord(0x3002), 2u);
  EXPECT_EQ(Sim.readMemoryWord(0x3003), 11u);
  EXPECT_EQ(Sim.readMemoryWord(0x3004), 9u);
  EXPECT_EQ(Sim.readMemoryWord(0x3005), 80u);
  EXPECT_EQ(Sim.readMemoryWord(0x3006), 1u);
  EXPECT_EQ(Sim.readMemoryWord(0x3007), 30u);
  EXPECT_EQ(Sim.readMemoryWord(0x3008), ~10u);
  EXPECT_EQ(Sim.readMemoryWord(0x3009), 0u - 10u);
}

TEST(SimulatorTest, ImmediateForms) {
  Program P = parseOrDie(R"(
.thread immf
main:
    imm  o, 0x3000
    imm  a, 9
    addi r0, a, 5
    subi r1, a, 2
    andi r2, a, 8
    ori  r3, a, 4
    xori r4, a, 1
    shli r5, a, 2
    shri r6, a, 1
    muli r7, a, 7
    store [o+0], r0
    store [o+1], r1
    store [o+2], r2
    store [o+3], r3
    store [o+4], r4
    store [o+5], r5
    store [o+6], r6
    store [o+7], r7
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x3000), 14u);
  EXPECT_EQ(Sim.readMemoryWord(0x3001), 7u);
  EXPECT_EQ(Sim.readMemoryWord(0x3002), 8u);
  EXPECT_EQ(Sim.readMemoryWord(0x3003), 13u);
  EXPECT_EQ(Sim.readMemoryWord(0x3004), 8u);
  EXPECT_EQ(Sim.readMemoryWord(0x3005), 36u);
  EXPECT_EQ(Sim.readMemoryWord(0x3006), 4u);
  EXPECT_EQ(Sim.readMemoryWord(0x3007), 63u);
}

TEST(SimulatorTest, BranchSemantics) {
  Program P = parseOrDie(R"(
.thread br
main:
    imm  o, 0x3000
    imm  a, 5
    imm  b, 5
    imm  r, 0
    bne  a, b, skip1
    ori  r, r, 1
skip1:
    beq  a, b, take1
    br   skip2
take1:
    ori  r, r, 2
skip2:
    imm  c, 0xFFFFFFFF
    blt  c, a, take2
    br   skip3
take2:
    ori  r, r, 4
skip3:
    bge  a, b, take3
    br   done
take3:
    ori  r, r, 8
done:
    store [o+0], r
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  // bne not taken (so the ori after it runs: bit 0), beq taken (bit 1),
  // blt signed (-1 < 5) taken (bit 2), bge taken (bit 3).
  EXPECT_EQ(Sim.readMemoryWord(0x3000), 1u + 2u + 4u + 8u);
}

TEST(SimulatorTest, LoadWritesAtResume) {
  // The load destination keeps its old value until the thread resumes;
  // another thread that runs in between sees memory already written at
  // issue time for stores.
  Program P = parseOrDie(R"(
.thread t
main:
    imm  addr, 0x100
    imm  v, 7
    store [addr+0], v
    load w, [addr+0]
    store [addr+1], w
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x101), 7u);
}

TEST(SimulatorTest, MemoryLatencyCharged) {
  Program P = parseOrDie(R"(
.thread lat
main:
    imm  a, 0x100
    load b, [a+0]
    store [a+1], b
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  SimConfig Fast;
  Fast.MemLatency = 5;
  SimConfig Slow;
  Slow.MemLatency = 50;
  Simulator S1(MTP, Fast), S2(MTP, Slow);
  SimResult R1 = S1.run(), R2 = S2.run();
  ASSERT_TRUE(R1.Completed);
  ASSERT_TRUE(R2.Completed);
  EXPECT_EQ(R2.TotalCycles - R1.TotalCycles, 2 * 45)
      << "two memory ops, 45 extra cycles each";
}

TEST(SimulatorTest, LatencyHiddenByOtherThread) {
  // One memory-heavy thread plus one ALU thread: the ALU thread fills the
  // memory stalls, so total cycles grow far less than the sum.
  const char *MemAsm = R"(
.thread mem
main:
    imm  a, 0x100
    imm  n, 10
loop:
    load b, [a+0]
    subi n, n, 1
    bnz  n, loop
    halt
)";
  const char *AluAsm = R"(
.thread alu
main:
    imm  x, 0
    imm  n, 150
loop:
    addi x, x, 1
    subi n, n, 1
    bnz  n, loop
    halt
)";
  ErrorOr<MultiThreadProgram> Both =
      parseAssembly(std::string(MemAsm) + AluAsm);
  ASSERT_TRUE(Both.ok());
  MultiThreadProgram MemOnly;
  MemOnly.Threads.push_back(Both->Threads[0]);
  MultiThreadProgram AluOnly;
  AluOnly.Threads.push_back(Both->Threads[1]);

  SimConfig Config;
  Config.MemLatency = 40;
  Simulator SMem(MemOnly, Config), SAlu(AluOnly, Config), SBoth(*Both, Config);
  int64_t MemCycles = SMem.run().TotalCycles;
  int64_t AluCycles = SAlu.run().TotalCycles;
  int64_t BothCycles = SBoth.run().TotalCycles;
  EXPECT_LT(BothCycles, MemCycles + AluCycles)
      << "multithreading must hide memory latency";
  EXPECT_GE(BothCycles, std::max(MemCycles, AluCycles));
}

TEST(SimulatorTest, RoundRobinIsFair) {
  // Two identical ctx-yielding threads must make interleaved progress.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread a
main:
    imm  n, 20
loop:
    ctx
    subi n, n, 1
    bnz  n, loop
    loopend
    halt
.thread b
main:
    imm  n, 20
loop:
    ctx
    subi n, n, 1
    bnz  n, loop
    loopend
    halt
)");
  ASSERT_TRUE(MTP.ok());
  Simulator Sim(*MTP, SimConfig());
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Threads[0].Iterations, 1);
  EXPECT_EQ(R.Threads[1].Iterations, 1);
  EXPECT_NEAR(static_cast<double>(R.Threads[0].InstrsExecuted),
              static_cast<double>(R.Threads[1].InstrsExecuted), 4.0);
}

TEST(SimulatorTest, TargetIterationsStopsRun) {
  Program P = parseOrDie(R"(
.thread loopy
main:
    imm  x, 1
top:
    addi x, x, 1
    loopend
    br   top
)");
  MultiThreadProgram MTP = singleThread(P);
  SimConfig Config;
  Config.TargetIterations = 5;
  Simulator Sim(MTP, Config);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed);
  EXPECT_GE(R.Threads[0].Iterations, 5);
  EXPECT_GT(R.Threads[0].CyclesAtTarget, 0);
}

TEST(SimulatorTest, HaltAtTargetFreezesIterations) {
  Program P = parseOrDie(R"(
.thread loopy
main:
    imm  x, 1
top:
    addi x, x, 1
    loopend
    br   top
)");
  MultiThreadProgram MTP = singleThread(P);
  SimConfig Config;
  Config.TargetIterations = 5;
  Config.HaltAtTarget = true;
  Simulator Sim(MTP, Config);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Threads[0].Iterations, 5);
  EXPECT_TRUE(R.Threads[0].Halted);
}

TEST(SimulatorTest, CycleBudgetEnforced) {
  Program P = parseOrDie(R"(
.thread forever
main:
    imm x, 1
top:
    addi x, x, 1
    br   top
)");
  MultiThreadProgram MTP = singleThread(P);
  SimConfig Config;
  Config.MaxCycles = 1000;
  Simulator Sim(MTP, Config);
  SimResult R = Sim.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.FailReason.find("budget"), std::string::npos);
}

TEST(SimulatorTest, OutOfRangeMemoryFails) {
  Program P = parseOrDie(R"(
.thread oob
main:
    imm  a, 0xFFFFFF
    muli a, a, 4096
    load b, [a+0]
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  Simulator Sim(MTP, SimConfig());
  SimResult R = Sim.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.FailReason.find("out of range"), std::string::npos);
}

TEST(SimulatorTest, EntryValuesSeedRegisters) {
  Program P = parseOrDie(R"(
.thread seeded
.entrylive base, off
main:
    add  a, base, off
    store [a+0], a
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  Simulator Sim(MTP, SimConfig());
  Sim.setEntryValues(0, {0x200, 0x20});
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x220), 0x220u);
}

TEST(SimulatorTest, HashIsStableAndSensitive) {
  Program P = makeTinyProgram();
  MultiThreadProgram MTP = singleThread(P);
  Simulator S1(MTP, SimConfig()), S2(MTP, SimConfig());
  ASSERT_TRUE(S1.run().Completed);
  ASSERT_TRUE(S2.run().Completed);
  EXPECT_EQ(S1.hashMemoryRange(0x2000, 8), S2.hashMemoryRange(0x2000, 8));
  EXPECT_NE(S1.hashMemoryRange(0x2000, 8), S1.hashMemoryRange(0x2001, 8));
}

TEST(SimulatorTest, IdleCyclesTrackMemoryStalls) {
  // A single memory-bound thread leaves the CPU idle during every load;
  // utilisation must be well below 1 and idle + busy == total.
  Program P = parseOrDie(R"(
.thread membound
main:
    imm  a, 0x100
    imm  n, 10
loop:
    load b, [a+0]
    subi n, n, 1
    bnz  n, loop
    halt
)");
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  SimConfig Config;
  Config.MemLatency = 50;
  Simulator Sim(MTP, Config);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed);
  EXPECT_GT(R.IdleCycles, 10 * 40) << "ten 50-cycle stalls, mostly idle";
  EXPECT_LT(R.cpuUtilisation(), 0.3);
  EXPECT_GE(R.IdleCycles, 0);
  EXPECT_LE(R.IdleCycles, R.TotalCycles);
}

TEST(SimulatorTest, SecondThreadRaisesUtilisation) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread membound
main:
    imm  a, 0x100
    imm  n, 10
loop:
    load b, [a+0]
    subi n, n, 1
    bnz  n, loop
    halt
.thread alu
main:
    imm  x, 0
    imm  n, 200
loop:
    addi x, x, 1
    subi n, n, 1
    bnz  n, loop
    halt
)");
  ASSERT_TRUE(MTP.ok());
  MultiThreadProgram MemOnly;
  MemOnly.Threads.push_back(MTP->Threads[0]);
  SimConfig Config;
  Config.MemLatency = 50;
  Simulator SAlone(MemOnly, Config), SBoth(*MTP, Config);
  SimResult Alone = SAlone.run();
  SimResult Both = SBoth.run();
  ASSERT_TRUE(Alone.Completed && Both.Completed);
  EXPECT_GT(Both.cpuUtilisation(), Alone.cpuUtilisation())
      << "the ALU thread fills the memory thread's stalls";
}

TEST(SimulatorTest, SharedFileVisibleAcrossThreads) {
  // Two physical threads share one register file; thread two reads what
  // thread one left in a shared register after a yield (values dead across
  // the CSB from thread one's perspective, so this is exactly the sharing
  // the paper allows).
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread w
main:
    imm  a, 0x42
    ctx
    imm  b, 0
    store [b+0], b
    halt
.thread r
main:
    ctx
    store [a+4], a
    halt
)");
  ASSERT_TRUE(MTP.ok());
  // Hand-assign: both threads' register ids already overlap (a=0 in both).
  for (Program &T : MTP->Threads) {
    T.IsPhysical = true;
    T.NumRegs = 4;
  }
  Simulator Sim(*MTP, SimConfig());
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  // Thread r stored p0's content (0x42 written by thread w) at 0x42+4.
  EXPECT_EQ(Sim.readMemoryWord(0x46), 0x42u);
}

TEST(SimulatorTest, CycleBreakdownSumsToTotalSingleThread) {
  Program P = parseOrDie(R"(
.thread solo
main:
    imm  a, 0x100
    load b, [a+0]
    store [a+1], b
    halt
)");
  MultiThreadProgram MTP = singleThread(P);
  SimConfig Config;
  Config.MemLatency = 25;
  Simulator Sim(MTP, Config);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  ASSERT_EQ(R.Threads.size(), 1u);
  const ThreadStats &TS = R.Threads[0];
  EXPECT_EQ(TS.accountedCycles(), R.TotalCycles);
  // Alone on the engine: no switch penalties, no waiting for the CPU.
  EXPECT_EQ(TS.SwitchPenaltyCycles, 0);
  EXPECT_EQ(TS.ReadyWaitCycles, 0);
  EXPECT_EQ(TS.ChannelWaitCycles, 0);
  // Two memory ops of latency 25 each, minus the cycles the thread would
  // have been charged anyway — the stall bucket must dominate.
  EXPECT_GE(TS.MemStallCycles, 2 * (25 - 1));
  EXPECT_GT(TS.RunCycles, 0);
}

TEST(SimulatorTest, CycleBreakdownSumsToTotalMultiThread) {
  // Memory-heavy + ALU thread: every cycle of the run lands in exactly one
  // bucket of each thread, and the buckets tell the hiding story — the ALU
  // thread runs while the memory thread stalls.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread mem
main:
    imm  a, 0x100
    imm  n, 8
loop:
    load b, [a+0]
    subi n, n, 1
    bnz  n, loop
    halt

.thread alu
main:
    imm  x, 0
    imm  n, 120
loop:
    addi x, x, 1
    subi n, n, 1
    bnz  n, loop
    halt
)");
  ASSERT_TRUE(MTP.ok()) << MTP.status().str();
  SimConfig Config;
  Config.MemLatency = 40;
  Simulator Sim(*MTP, Config);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  ASSERT_EQ(R.Threads.size(), 2u);
  for (const ThreadStats &TS : R.Threads) {
    EXPECT_EQ(TS.accountedCycles(), R.TotalCycles);
    EXPECT_GE(TS.RunCycles, 0);
    EXPECT_GE(TS.SwitchPenaltyCycles, 0);
    EXPECT_GE(TS.MemStallCycles, 0);
    EXPECT_GE(TS.ChannelWaitCycles, 0);
    EXPECT_GE(TS.ReadyWaitCycles, 0);
    EXPECT_GE(TS.HaltedCycles, 0);
  }
  const ThreadStats &Mem = R.Threads[0];
  const ThreadStats &Alu = R.Threads[1];
  EXPECT_GT(Mem.MemStallCycles, 0);
  EXPECT_GT(Alu.RunCycles, 0);
  // At most one thread occupies the CPU at a time, so run + penalty
  // cycles across threads can never exceed the wall clock.
  EXPECT_LE(Mem.RunCycles + Mem.SwitchPenaltyCycles + Alu.RunCycles +
                Alu.SwitchPenaltyCycles,
            R.TotalCycles);
}

TEST(SimulatorTest, CycleBreakdownCoversCtxAndHalt) {
  // Thread a halts quickly and then accrues HaltedCycles while b keeps
  // yielding through ctx instructions.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread a
main:
    imm  x, 1
    halt

.thread b
main:
    imm  n, 6
loop:
    ctx
    subi n, n, 1
    bnz  n, loop
    halt
)");
  ASSERT_TRUE(MTP.ok()) << MTP.status().str();
  Simulator Sim(*MTP, SimConfig());
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Completed) << R.FailReason;
  ASSERT_EQ(R.Threads.size(), 2u);
  EXPECT_EQ(R.Threads[0].accountedCycles(), R.TotalCycles);
  EXPECT_EQ(R.Threads[1].accountedCycles(), R.TotalCycles);
  EXPECT_GT(R.Threads[0].HaltedCycles, 0)
      << "thread a halted first and must be billed halted cycles";
  EXPECT_GT(R.Threads[1].RunCycles, R.Threads[0].RunCycles);
}
