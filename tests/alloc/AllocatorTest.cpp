//===- AllocatorTest.cpp - Split transforms, intra/inter allocators -------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/FragmentAllocator.h"
#include "alloc/InterAllocator.h"
#include "alloc/IntraAllocator.h"
#include "alloc/SplitTransforms.h"
#include "analysis/LiveRangeRenaming.h"
#include "ir/IRVerifier.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

Reg regByName(const Program &P, const std::string &Name) {
  for (Reg R = 0; R < P.NumRegs; ++R)
    if (P.getRegName(R) == Name)
      return R;
  return NoReg;
}

/// Check a color program against its limits: every referenced register ID
/// is < R, and every value live across a CSB sits in a color < PR.
void expectColorProgramValid(const Program &CP, int PR, int R) {
  ASSERT_TRUE(verifyProgram(CP).ok());
  EXPECT_EQ(CP.NumRegs, R);
  LivenessInfo LI = computeLiveness(CP);
  EXPECT_TRUE(checkNoUseOfUndef(CP, LI).ok());
  NSRInfo N = computeNSRs(CP, LI);
  for (const CSB &Boundary : N.getCSBs())
    Boundary.LiveAcross.forEach([&](int Color) {
      EXPECT_LT(Color, PR) << "crossing value in a shared color";
    });
}

/// Run the original and an allocated rewrite and compare output hashes.
void expectSameBehaviour(const Program &Original, const Program &Rewritten,
                         const std::vector<uint32_t> &EntryValues,
                         const std::vector<uint32_t> &MemInit) {
  auto R1 = runSingle(Original, EntryValues, 0x2000, 64, MemInit);
  auto R2 = runSingle(Rewritten, EntryValues, 0x2000, 64, MemInit);
  ASSERT_TRUE(R1.Result.Completed) << R1.Result.FailReason;
  ASSERT_TRUE(R2.Result.Completed) << R2.Result.FailReason;
  EXPECT_EQ(R1.OutputHash, R2.OutputHash);
}

const char *BoundaryHeavyAsm = R"(
.thread bheavy
.entrylive buf
main:
    imm  outp, 0x2000
    imm  s, 0
    imm  n, 4
loop:
    load w, [buf+0]
    imm  t1, 3
    mul  t2, w, t1
    add  s, s, t2
    addi buf, buf, 1
    subi n, n, 1
    bnz  n, loop
    store [outp+0], s
    ctx
    loopend
    halt
)";


const char *Fig9FatAsm = R"(
.thread fig9fat
.entrylive sel
main:
    imm  a, 1
    imm  b, 2
    imm  c, 3
    bz   sel, p23
p1:
    ctx
    imm  u1, 10
    imm  u2, 11
    imm  u3, 12
    imm  u4, 13
    add  v, u1, u2
    add  v, v, u3
    add  v, v, u4
    add  v, v, b
    store [a+0], v
    halt
p23:
    andi t, sel, 1
    bz   t, p3
p2:
    ctx
    imm  u1, 20
    imm  u2, 21
    imm  u3, 22
    imm  u4, 23
    add  v, u1, u2
    add  v, v, u3
    add  v, v, u4
    add  v, v, c
    store [b+0], v
    halt
p3:
    ctx
    imm  u1, 30
    imm  u2, 31
    imm  u3, 32
    imm  u4, 33
    add  v, u1, u2
    add  v, v, u3
    add  v, v, u4
    add  v, v, a
    store [c+0], v
    halt
)";

} // namespace

TEST(SplitTransformsTest, ExcludeNSRPreservesBehaviour) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  ThreadAnalysis TA = analyzeThread(P);
  Reg S = regByName(P, "s");
  ASSERT_TRUE(TA.BoundaryNodes.test(S));
  // Exclude s from the NSR where it is defined/used most.
  int TargetNSR = TA.NSRs.instrPreNSR(0, 1);
  Program Q = P;
  Reg Fresh = excludeNSR(Q, TA, S, TargetNSR);
  ASSERT_NE(Fresh, NoReg);
  ASSERT_TRUE(verifyProgram(Q).ok());
  EXPECT_GT(Q.countMoves(), P.countMoves());
  expectSameBehaviour(P, Q, {0x1000}, {2, 4, 6, 8});
}

TEST(SplitTransformsTest, ExcludeNSRNoReferenceIsNoop) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  ThreadAnalysis TA = analyzeThread(P);
  Reg S = regByName(P, "s");
  // Find an NSR where s is not referenced: the trailing region after ctx.
  int After = -1;
  for (int K = 0; K < TA.NSRs.getNumNSRs(); ++K) {
    bool Referenced = false;
    for (int B = 0; B < P.getNumBlocks(); ++B) {
      const BasicBlock &BB = P.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
        const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
        if ((Inst.usesReg(S) && TA.NSRs.instrPreNSR(B, I) == K) ||
            (Inst.Def == S && TA.NSRs.instrPostNSR(B, I) == K))
          Referenced = true;
      }
    }
    if (!Referenced) {
      After = K;
      break;
    }
  }
  ASSERT_GE(After, 0);
  Program Q = P;
  EXPECT_EQ(excludeNSR(Q, TA, S, After), NoReg);
  EXPECT_EQ(Q.countInstructions(), P.countInstructions());
}

TEST(SplitTransformsTest, SplitInBlockPreservesBehaviour) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  ThreadAnalysis TA = analyzeThread(P);
  Reg Buf = regByName(P, "buf");
  // Split buf inside the loop block.
  int LoopBlock = -1;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    if (P.blockName(B) == "loop")
      LoopBlock = B;
  ASSERT_GE(LoopBlock, 0);
  Program Q = P;
  Reg Fresh = splitInBlock(Q, TA, Buf, LoopBlock);
  ASSERT_NE(Fresh, NoReg);
  ASSERT_TRUE(verifyProgram(Q).ok());
  expectSameBehaviour(P, Q, {0x1000}, {2, 4, 6, 8});
}

TEST(FragmentAllocatorTest, ReachesLowerBounds) {
  Program P = renameLiveRanges(parseOrDie(BoundaryHeavyAsm));
  ThreadAnalysis TA = analyzeThread(P);
  int MinPR = TA.getRegPCSBmax();
  int MinR = TA.getRegPmax();
  ColorAllocation A = allocateByFragments(P, TA, MinPR, MinR - MinPR);
  ASSERT_TRUE(A.Feasible) << A.FailReason;
  expectColorProgramValid(A.ColorProgram, MinPR, MinR);
  expectSameBehaviour(P, A.ColorProgram, {0x1000}, {2, 4, 6, 8});
}

TEST(FragmentAllocatorTest, RejectsBelowBounds) {
  Program P = renameLiveRanges(parseOrDie(BoundaryHeavyAsm));
  ThreadAnalysis TA = analyzeThread(P);
  ColorAllocation A =
      allocateByFragments(P, TA, TA.getRegPCSBmax() - 1, TA.getRegPmax());
  EXPECT_FALSE(A.Feasible);
  ColorAllocation B = allocateByFragments(P, TA, TA.getRegPCSBmax(),
                                          TA.getRegPmax() -
                                              TA.getRegPCSBmax() - 1);
  EXPECT_FALSE(B.Feasible);
}

TEST(FragmentAllocatorTest, BranchyProgramWithJunctionFixups) {
  Program P = renameLiveRanges(parseOrDie(R"(
.thread branchy
.entrylive buf
main:
    imm  outp, 0x2000
    imm  s, 0
    imm  n, 6
loop:
    load w, [buf+0]
    andi t, w, 1
    bz   t, even
    add  s, s, w
    ctx
    br   next
even:
    imm  u, 100
    sub  s, u, s
next:
    addi buf, buf, 1
    subi n, n, 1
    bnz  n, loop
    store [outp+0], s
    loopend
    halt
)"));
  ThreadAnalysis TA = analyzeThread(P);
  ColorAllocation A = allocateByFragments(P, TA, TA.getRegPCSBmax(),
                                          TA.getRegPmax() -
                                              TA.getRegPCSBmax());
  ASSERT_TRUE(A.Feasible) << A.FailReason;
  expectColorProgramValid(A.ColorProgram, TA.getRegPCSBmax(),
                          TA.getRegPmax());
  expectSameBehaviour(P, A.ColorProgram, {0x1000}, {1, 2, 3, 4, 5, 6});
}

TEST(IntraAllocatorTest, ZeroCostAtUpperBounds) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  IntraThreadAllocator Intra(P);
  const IntraResult &R = Intra.allocate(Intra.getMaxPR(),
                                        Intra.getMaxR() - Intra.getMaxPR());
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.MoveCost, 0);
  expectColorProgramValid(R.ColorProgram, Intra.getMaxPR(), Intra.getMaxR());
}

TEST(IntraAllocatorTest, LowerBoundReachableWithMoves) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  IntraThreadAllocator Intra(P);
  const IntraResult &R =
      Intra.allocate(Intra.getMinPR(), Intra.getMinR() - Intra.getMinPR());
  ASSERT_TRUE(R.Feasible) << R.FailReason;
  expectColorProgramValid(R.ColorProgram, Intra.getMinPR(), Intra.getMinR());
  expectSameBehaviour(Intra.getProgram(), R.ColorProgram, {0x1000},
                      {2, 4, 6, 8});
}

TEST(IntraAllocatorTest, InfeasibleBelowLowerBounds) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  IntraThreadAllocator Intra(P);
  EXPECT_FALSE(Intra.allocate(Intra.getMinPR() - 1, 64).Feasible);
  EXPECT_FALSE(Intra.allocate(Intra.getMinPR(), -1).Feasible);
}

TEST(IntraAllocatorTest, CostDecreasesWithBudget) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  IntraThreadAllocator Intra(P);
  const IntraResult &Tight =
      Intra.allocate(Intra.getMinPR(), Intra.getMinR() - Intra.getMinPR());
  const IntraResult &Loose = Intra.allocate(Intra.getMaxPR(),
                                            Intra.getMaxR() -
                                                Intra.getMaxPR());
  ASSERT_TRUE(Tight.Feasible);
  ASSERT_TRUE(Loose.Feasible);
  EXPECT_GE(Tight.MoveCost, Loose.MoveCost);
}

TEST(IntraAllocatorTest, PaperFigure9SplitsToTwoPrivate) {
  // Fig. 9: MaxPR = 3, but live range splitting reaches MinPR = 2.
  Program P = parseOrDie(R"(
.thread fig9
.entrylive sel
main:
    imm  a, 1
    imm  b, 2
    imm  c, 3
    bz   sel, p23
p1:
    ctx
    store [a+0], b
    halt
p23:
    andi t, sel, 1
    bz   t, p3
p2:
    ctx
    store [b+0], c
    halt
p3:
    ctx
    store [c+0], a
    halt
)");
  IntraThreadAllocator Intra(P);
  EXPECT_EQ(Intra.getMinPR(), 2);
  EXPECT_EQ(Intra.getMaxPR(), 3);
  const IntraResult &R = Intra.allocate(2, Intra.getMinR() - 2);
  ASSERT_TRUE(R.Feasible) << R.FailReason;
  EXPECT_GT(R.MoveCost, 0) << "reaching MinPR needs at least one move";
  expectColorProgramValid(R.ColorProgram, 2, Intra.getMinR());
}

TEST(InterAllocatorTest, TwoThreadSharingFromPaperFigure3) {
  // Paper Fig. 3: thread 1 needs 3 registers alone; thread 2 needs 1; with
  // sharing the pair fits in fewer than 4 total because b/c/d are dead at
  // every context switch.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread fig3t1
main:
    imm  a, 1
    ctx
    bz   a, l1
    imm  b, 2
    add  t, a, b
    imm  c, 3
    br   l2
l1:
    imm  c, 4
    add  t, a, c
    imm  b, 5
l2:
    add  u, b, c
    store [u+0], u
    loopend
    halt
.thread fig3t2
main:
    ctx
    imm  d, 7
    addi e, d, 1
    store [e+0], e
    loopend
    halt
)");
  ASSERT_TRUE(MTP.ok());
  InterThreadResult R = allocateInterThread(*MTP, /*Nreg=*/8);
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_TRUE(verifyAllocationSafety(R.Physical).ok());
  // Thread 2 holds nothing across its ctx: all its registers shareable.
  EXPECT_EQ(R.Threads[1].PR, 0);
  EXPECT_GE(R.SGR, 1);
  // Total register use beats the no-sharing sum.
  int NoSharing = R.Threads[0].PR + R.Threads[0].SR + R.Threads[1].PR +
                  R.Threads[1].SR;
  EXPECT_LE(R.RegistersUsed, NoSharing + R.SGR);
}

TEST(InterAllocatorTest, ReductionLoopFitsTightBudget) {
  // Four copies of the Fig. 9 thread (which has real slack between its
  // lower and upper bounds) forced into a register file smaller than the
  // sum of upper bounds: the Fig. 8 loop must reduce, inserting moves.
  MultiThreadProgram MTP;
  for (int T = 0; T < 4; ++T) {
    Program P = parseOrDie(Fig9FatAsm);
    P.Name += std::to_string(T);
    MTP.Threads.push_back(P);
  }
  IntraThreadAllocator Probe(MTP.Threads[0]);
  int Upper = 4 * Probe.getMaxPR() + (Probe.getMaxR() - Probe.getMaxPR());
  int Lower = 4 * Probe.getMinPR() + (Probe.getMinR() - Probe.getMinPR());
  ASSERT_LT(Lower, Upper);
  // One unit below the no-move requirement: the Fig. 8 loop must take at
  // least one reduction step. (The loop only ever reduces PR or SR, so very
  // tight budgets below the reachable frontier may legitimately fail; this
  // budget is chosen to be reachable.)
  int Nreg = Upper - 1;
  InterThreadResult R = allocateInterThread(MTP, Nreg);
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_LE(R.RegistersUsed, Nreg);
  EXPECT_TRUE(verifyAllocationSafety(R.Physical).ok());
}

TEST(InterAllocatorTest, FailsWhenTrulyInfeasible) {
  MultiThreadProgram MTP;
  for (int T = 0; T < 4; ++T)
    MTP.Threads.push_back(parseOrDie(BoundaryHeavyAsm));
  IntraThreadAllocator Probe(MTP.Threads[0]);
  int Impossible = 4 * Probe.getMinPR() - 1;
  InterThreadResult R = allocateInterThread(MTP, Impossible);
  EXPECT_FALSE(R.Success);
}

TEST(SRATest, SymmetricSolutionWithinBudget) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  SRAResult R = solveSRA(P, 4, 64, /*RequireZeroCost=*/true);
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_LE(4 * R.PR + R.SR, 64);
  EXPECT_EQ(R.MoveCost, 0);
  EXPECT_EQ(R.TotalRegisters, 4 * R.PR + R.SR);
}

TEST(SRATest, AllowingMovesNeverIncreasesRegisters) {
  Program P = parseOrDie(BoundaryHeavyAsm);
  SRAResult ZeroCost = solveSRA(P, 4, 64, /*RequireZeroCost=*/true);
  SRAResult WithMoves = solveSRA(P, 4, 64, /*RequireZeroCost=*/false);
  ASSERT_TRUE(ZeroCost.Success);
  ASSERT_TRUE(WithMoves.Success);
  EXPECT_LE(WithMoves.TotalRegisters, ZeroCost.TotalRegisters);
}

TEST(SafetyVerifierTest, DetectsCrossThreadClobber) {
  // Build two one-register physical threads that both use p0 while thread
  // one holds it across a ctx: must be rejected.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread one
main:
    imm  a, 1
    ctx
    store [a+0], a
    halt
.thread two
main:
    imm  a, 2
    store [a+1], a
    halt
)");
  ASSERT_TRUE(MTP.ok());
  for (Program &T : MTP->Threads) {
    T.IsPhysical = true;
    T.NumRegs = 4;
  }
  Status S = verifyAllocationSafety(*MTP);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.str().find("live across"), std::string::npos);
}

TEST(SafetyVerifierTest, AcceptsDisjointThreads) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread one
main:
    imm  a, 1
    ctx
    store [a+0], a
    halt
.thread two
main:
    imm  b, 2
    store [b+1], b
    halt
)");
  ASSERT_TRUE(MTP.ok());
  // Manually map: thread one -> p0, thread two -> p1.
  MTP->Threads[0].IsPhysical = true;
  MTP->Threads[0].NumRegs = 4;
  MTP->Threads[1].IsPhysical = true;
  MTP->Threads[1].NumRegs = 4;
  for (BasicBlock &BB : MTP->Threads[1].Blocks)
    for (Instruction &I : BB.Instrs) {
      if (I.Def == 0)
        I.Def = 1;
      if (I.Use1 == 0)
        I.Use1 = 1;
      if (I.Use2 == 0)
        I.Use2 = 1;
    }
  AllocationSafetyStats Stats;
  Status S = verifyAllocationSafety(*MTP, &Stats);
  EXPECT_TRUE(S.ok()) << S.str();
  EXPECT_EQ(Stats.PrivateRegCount[0], 1);
  EXPECT_EQ(Stats.SharedRegCount, 0);
}
