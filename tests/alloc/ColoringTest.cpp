//===- ColoringTest.cpp - Coloring utilities and bounds estimation --------===//

#include "alloc/BoundsEstimator.h"
#include "alloc/ColoringUtils.h"
#include "workloads/Workload.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

/// Every pair of adjacent nodes must have distinct colors.
void expectProperColoring(const InterferenceGraph &IG, const Coloring &C) {
  for (int A = 0; A < IG.getNumNodes(); ++A) {
    if (C[static_cast<size_t>(A)] == NoColor)
      continue;
    IG.neighbors(A).forEach([&](int B) {
      if (C[static_cast<size_t>(B)] != NoColor) {
        EXPECT_NE(C[static_cast<size_t>(A)], C[static_cast<size_t>(B)])
            << "edge (" << A << "," << B << ") monochrome";
      }
    });
  }
}

InterferenceGraph makeClique(int N) {
  InterferenceGraph G(N);
  for (int A = 0; A < N; ++A)
    for (int B = A + 1; B < N; ++B)
      G.addEdge(A, B);
  G.freeze();
  return G;
}

BitVector allNodes(int N) {
  BitVector BV(N);
  for (int I = 0; I < N; ++I)
    BV.set(I);
  return BV;
}

} // namespace

TEST(ColorMinimallyTest, CliqueNeedsNColors) {
  InterferenceGraph G = makeClique(5);
  Coloring C;
  EXPECT_EQ(colorMinimally(G, allNodes(5), C), 5);
  expectProperColoring(G, C);
}

TEST(ColorMinimallyTest, PathNeedsTwoColors) {
  InterferenceGraph G(6);
  for (int I = 0; I + 1 < 6; ++I)
    G.addEdge(I, I + 1);
  G.freeze();
  Coloring C;
  EXPECT_EQ(colorMinimally(G, allNodes(6), C), 2);
  expectProperColoring(G, C);
}

TEST(ColorMinimallyTest, CycleEvenOdd) {
  // Even cycle 2-colorable, odd cycle needs 3.
  for (int N : {6, 7}) {
    InterferenceGraph G(N);
    for (int I = 0; I < N; ++I)
      G.addEdge(I, (I + 1) % N);
    G.freeze();
    Coloring C;
    int Used = colorMinimally(G, allNodes(N), C);
    EXPECT_EQ(Used, N % 2 == 0 ? 2 : 3) << "cycle of length " << N;
    expectProperColoring(G, C);
  }
}

TEST(ColorMinimallyTest, RespectsPrecoloredNeighbors) {
  InterferenceGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.freeze();
  Coloring C(3, NoColor);
  C[0] = 0;
  C[2] = 0;
  BitVector Members(3);
  Members.set(1);
  colorMinimally(G, Members, C);
  EXPECT_NE(C[1], 0);
}

TEST(NeighborColorCountTest, CountsDistinctColors) {
  InterferenceGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(0, 3);
  G.freeze();
  Coloring C = {NoColor, 1, 1, 2};
  EXPECT_EQ(neighborColorCount(G, C, 0), 2);
}

TEST(PickFreeColorTest, BandsAndPreference) {
  InterferenceGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.freeze();
  Coloring C = {NoColor, 0, 2};
  EXPECT_EQ(pickFreeColor(G, C, 0, 0, 4), 1);
  EXPECT_EQ(pickFreeColor(G, C, 0, 0, 4, /*PreferFrom=*/3), 3);
  EXPECT_EQ(pickFreeColor(G, C, 0, 0, 1), NoColor) << "band [0,1) blocked";
}

TEST(ColorConstrainedTest, BoundaryBandRespected) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    imm b, 2
    ctx
    add c, a, b
    imm d, 4
    add c, c, d
    store [c+0], c
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  // a and b cross the ctx -> boundary; PR must cover both.
  ConstrainedColoringResult R = colorConstrained(TA, /*PR=*/2, /*R=*/4);
  ASSERT_TRUE(R.Success);
  TA.BoundaryNodes.forEach([&](int Node) {
    EXPECT_LT(R.Colors[static_cast<size_t>(Node)], 2);
  });
  expectProperColoring(TA.GIG, R.Colors);
}

TEST(ColorConstrainedTest, FailsWhenBandTooSmall) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    imm b, 2
    imm c, 3
    ctx
    add d, a, b
    add d, d, c
    store [d+0], d
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  // Three values cross the ctx; PR=2 cannot work without moves.
  ConstrainedColoringResult R = colorConstrained(TA, /*PR=*/2, /*R=*/6);
  EXPECT_FALSE(R.Success);
  EXPECT_GE(R.FailedNode, 0);
}

TEST(BoundsEstimatorTest, StraightLineBounds) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    imm b, 2
    add c, a, b
    store [c+0], c
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  RegBounds B = estimateRegBounds(TA);
  EXPECT_EQ(B.MinR, TA.getRegPmax());
  EXPECT_EQ(B.MinPR, TA.getRegPCSBmax());
  EXPECT_GE(B.MaxR, B.MinR);
  EXPECT_GE(B.MaxPR, B.MinPR);
  expectProperColoring(TA.GIG, B.Colors);
}

TEST(BoundsEstimatorTest, BoundsColoringRespectsBands) {
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    imm  s, 0
    imm  n, 4
loop:
    load w, [buf+0]
    imm  t1, 7
    mul  t2, w, t1
    add  s, s, t2
    addi buf, buf, 1
    subi n, n, 1
    bnz  n, loop
    store [buf+1], s
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  RegBounds B = estimateRegBounds(TA);
  expectProperColoring(TA.GIG, B.Colors);
  TA.BoundaryNodes.forEach([&](int Node) {
    EXPECT_LT(B.Colors[static_cast<size_t>(Node)], B.MaxPR);
  });
  TA.ReferencedNodes.forEach([&](int Node) {
    EXPECT_LT(B.Colors[static_cast<size_t>(Node)], B.MaxR);
  });
}

TEST(BoundsEstimatorTest, PaperFigure9GapBetweenMinAndMax) {
  // Paper Fig. 9: A, B, C pairwise boundary-interfere across three
  // different CSBs (one per branch path) — each CSB crosses only two of
  // them, so MinPR = 2, but without moves the BIG is a triangle and forces
  // MaxPR = 3.
  Program P = parseOrDie(R"(
.thread fig9
.entrylive sel
main:
    imm  a, 1
    imm  b, 2
    imm  c, 3
    bz   sel, p23
p1:
    ctx
    store [a+0], b
    halt
p23:
    andi t, sel, 1
    bz   t, p3
p2:
    ctx
    store [b+0], c
    halt
p3:
    ctx
    store [c+0], a
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  RegBounds B = estimateRegBounds(TA);
  EXPECT_EQ(B.MinPR, 2);
  EXPECT_EQ(B.MaxPR, 3);
}

TEST(BoundsEstimatorTest, AllBenchmarksSatisfyInvariants) {
  for (const std::string &Name : getWorkloadNames()) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ThreadAnalysis TA = analyzeThread(W->Code);
    RegBounds B = estimateRegBounds(TA);
    EXPECT_LE(B.MinPR, B.MaxPR) << Name;
    EXPECT_LE(B.MinR, B.MaxR) << Name;
    EXPECT_LE(B.MinPR, B.MinR) << Name;
    EXPECT_LE(B.MaxPR, B.MaxR) << Name;
    expectProperColoring(TA.GIG, B.Colors);
  }
}
