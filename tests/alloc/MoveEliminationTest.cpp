//===- MoveEliminationTest.cpp - Eliminate_unnecessary_move ---------------===//

#include "alloc/MoveElimination.h"

#include "ir/IRVerifier.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

TEST(MoveEliminationTest, RemovesSelfMove) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    mov  a, a
    store [a+0], a
    halt
)");
  EXPECT_EQ(eliminateRedundantMoves(P), 1);
  EXPECT_EQ(P.countMoves(), 0);
  EXPECT_TRUE(verifyProgram(P).ok());
}

TEST(MoveEliminationTest, RemovesDeadMove) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    store [a+0], a
    halt
)");
  EXPECT_EQ(eliminateRedundantMoves(P), 1);
  EXPECT_EQ(P.countMoves(), 0);
}

TEST(MoveEliminationTest, RemovesReestablishedCopy) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    add  c, b, b
    mov  b, a
    store [c+0], b
    halt
)");
  // The second mov re-establishes b == a with neither redefined.
  EXPECT_EQ(eliminateRedundantMoves(P), 1);
  EXPECT_EQ(P.countMoves(), 1);
}

TEST(MoveEliminationTest, RemovesReverseCopy) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    mov  a, b
    store [a+0], b
    halt
)");
  // mov a, b after mov b, a is a no-op.
  EXPECT_EQ(eliminateRedundantMoves(P), 1);
}

TEST(MoveEliminationTest, KeepsNeededMove) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    imm  a, 2
    add  c, a, b
    store [c+0], c
    halt
)");
  EXPECT_EQ(eliminateRedundantMoves(P), 0);
  EXPECT_EQ(P.countMoves(), 1);
}

TEST(MoveEliminationTest, FactsDieAtDefinition) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    add  t, b, b
    imm  b, 5
    add  t, t, b
    mov  b, a
    add  t, t, b
    store [t+0], t
    halt
)");
  // Every mov's destination is read before being clobbered, and the second
  // mov b, a is NOT redundant: b was overwritten in between.
  EXPECT_EQ(eliminateRedundantMoves(P), 0);
  EXPECT_EQ(P.countMoves(), 2);
}

TEST(MoveEliminationTest, FactsDieAtContextSwitch) {
  // Copy facts must not survive a CSB — in a shared register another
  // thread may have rewritten the source while we were switched out. The
  // two programs differ only in the ctx between the copies: without it the
  // re-established copy is redundant, with it the copy must stay.
  const char *WithCtx = R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    add  t, b, b
    ctx
    mov  b, a
    add  c, a, b
    add  c, c, t
    store [c+0], c
    halt
)";
  const char *WithoutCtx = R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    add  t, b, b
    mov  b, a
    add  c, a, b
    add  c, c, t
    store [c+0], c
    halt
)";
  Program P1 = parseOrDie(WithCtx);
  EXPECT_EQ(eliminateRedundantMoves(P1), 0)
      << "the post-ctx mov must be treated as required";
  Program P2 = parseOrDie(WithoutCtx);
  EXPECT_EQ(eliminateRedundantMoves(P2), 1)
      << "without the ctx the second copy is redundant";
}

TEST(MoveEliminationTest, CascadingDeadMoves) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    mov  b, a
    mov  c, b
    store [a+0], a
    halt
)");
  // c is dead; once mov c,b is gone, b is dead too.
  EXPECT_EQ(eliminateRedundantMoves(P), 2);
  EXPECT_EQ(P.countMoves(), 0);
}

TEST(MoveEliminationTest, BehaviourPreservedOnBranchyProgram) {
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    imm  s, 0
    imm  n, 4
loop:
    load w, [buf+0]
    mov  v, w
    mov  v, w
    add  s, s, v
    mov  dead, s
    addi buf, buf, 1
    subi n, n, 1
    bnz  n, loop
    store [buf+10], s
    halt
)");
  Program Q = P;
  int Removed = eliminateRedundantMoves(Q);
  EXPECT_GE(Removed, 2);
  ASSERT_TRUE(verifyProgram(Q).ok());
  std::vector<uint32_t> Data = {3, 5, 7, 9};
  auto A = runSingle(P, {0x1000}, 0x1000, 32, Data);
  auto B = runSingle(Q, {0x1000}, 0x1000, 32, Data);
  ASSERT_TRUE(A.Result.Completed && B.Result.Completed);
  EXPECT_EQ(A.OutputHash, B.OutputHash);
}
