//===- InterAllocatorEdgeTest.cpp - Fig. 8 loop and SGR sweep edges -------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "ir/IRPrinter.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

/// Thread whose optimum at tight budgets needs trading private for shared
/// registers in every thread at once — the pure-reduction loop plateaus
/// and the SGR sweep must finish the job (see DESIGN.md extensions).
const char *PlateauAsm = R"(
.thread plateau
.entrylive sel
main:
    imm  a, 1
    imm  b, 2
    imm  c, 3
    bz   sel, p23
p1:
    ctx
    imm  u1, 10
    imm  u2, 11
    imm  u3, 12
    imm  u4, 13
    add  v, u1, u2
    add  v, v, u3
    add  v, v, u4
    add  v, v, b
    store [a+0], v
    halt
p23:
    andi t, sel, 1
    bz   t, p3
p2:
    ctx
    imm  u1, 20
    imm  u2, 21
    imm  u3, 22
    imm  u4, 23
    add  v, u1, u2
    add  v, v, u3
    add  v, v, u4
    add  v, v, c
    store [b+0], v
    halt
p3:
    ctx
    imm  u1, 30
    imm  u2, 31
    imm  u3, 32
    imm  u4, 33
    add  v, u1, u2
    add  v, v, u3
    add  v, v, u4
    add  v, v, a
    store [c+0], v
    halt
)";

MultiThreadProgram fourCopies(const char *Asm) {
  MultiThreadProgram MTP;
  for (int T = 0; T < 4; ++T) {
    Program P = parseOrDie(Asm);
    P.Name += std::to_string(T);
    MTP.Threads.push_back(P);
  }
  return MTP;
}

} // namespace

TEST(InterAllocatorEdgeTest, SweepFrontierIsExact) {
  // Walk Nreg downward: every success must verify and fit; the first
  // failure must be below the provable lower bound Sum(MinPR) + min SGR.
  MultiThreadProgram MTP = fourCopies(PlateauAsm);
  IntraThreadAllocator Probe(MTP.Threads[0]);
  int Lower = 4 * Probe.getMinPR() + (Probe.getMinR() - Probe.getMinPR());
  int Upper = 4 * Probe.getMaxPR() + (Probe.getMaxR() - Probe.getMaxPR());

  bool SeenFailure = false;
  for (int Nreg = Upper + 2; Nreg >= Lower - 2; --Nreg) {
    InterThreadResult R = allocateInterThread(MTP, Nreg);
    if (R.Success) {
      EXPECT_FALSE(SeenFailure)
          << "feasibility must be monotone in Nreg (failed above " << Nreg
          << ")";
      EXPECT_LE(R.RegistersUsed, Nreg);
      EXPECT_TRUE(verifyAllocationSafety(R.Physical).ok());
    } else {
      SeenFailure = true;
      EXPECT_LT(Nreg, Lower) << "must stay feasible down to the bound";
    }
  }
  EXPECT_TRUE(SeenFailure) << "below the bound the allocator must refuse";
}

TEST(InterAllocatorEdgeTest, MoveCostGrowsMonotonically) {
  MultiThreadProgram MTP = fourCopies(PlateauAsm);
  IntraThreadAllocator Probe(MTP.Threads[0]);
  int Lower = 4 * Probe.getMinPR() + (Probe.getMinR() - Probe.getMinPR());
  int Upper = 4 * Probe.getMaxPR() + (Probe.getMaxR() - Probe.getMaxPR());

  int PrevCost = -1;
  for (int Nreg = Lower; Nreg <= Upper; ++Nreg) {
    InterThreadResult R = allocateInterThread(MTP, Nreg);
    ASSERT_TRUE(R.Success) << "Nreg=" << Nreg;
    if (PrevCost >= 0)
      EXPECT_LE(R.TotalMoveCost, PrevCost + 12)
          << "cost should broadly fall as registers are added (Nreg="
          << Nreg << ")";
    PrevCost = R.TotalMoveCost;
  }
  // At the top of the range no moves are needed at all.
  EXPECT_EQ(allocateInterThread(MTP, Upper).TotalMoveCost, 0);
}

TEST(InterAllocatorEdgeTest, SingleThreadDegeneratesToIntra) {
  MultiThreadProgram MTP;
  MTP.Threads.push_back(parseOrDie(PlateauAsm));
  IntraThreadAllocator Probe(MTP.Threads[0]);
  InterThreadResult R =
      allocateInterThread(MTP, Probe.getMaxR());
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_EQ(R.RegistersUsed, Probe.getMaxR());
  EXPECT_EQ(R.TotalMoveCost, 0);
}

TEST(InterAllocatorEdgeTest, PhysicalProgramPrintRoundTrips) {
  // Physical programs print and reparse like any other program.
  MultiThreadProgram MTP = fourCopies(PlateauAsm);
  InterThreadResult R = allocateInterThread(MTP, 64);
  ASSERT_TRUE(R.Success);
  for (const Program &T : R.Physical.Threads) {
    std::string Printed = programToString(T);
    Program Reparsed = parseOrDie(Printed);
    EXPECT_EQ(Reparsed.countInstructions(), T.countInstructions());
    EXPECT_EQ(Reparsed.getNumBlocks(), T.getNumBlocks());
  }
}

TEST(InterAllocatorEdgeTest, ZeroAndOneRegisterFiles) {
  MultiThreadProgram MTP;
  MTP.Threads.push_back(parseOrDie(PlateauAsm));
  EXPECT_FALSE(allocateInterThread(MTP, 0).Success);
  EXPECT_FALSE(allocateInterThread(MTP, 1).Success);
}

TEST(InterAllocatorEdgeTest, PrivateRangesAreDisjointAcrossThreads) {
  MultiThreadProgram MTP = fourCopies(PlateauAsm);
  InterThreadResult R = allocateInterThread(MTP, 64);
  ASSERT_TRUE(R.Success);
  int Expected = 0;
  for (const ThreadAllocation &T : R.Threads) {
    EXPECT_EQ(T.PrivateBase, Expected);
    Expected += T.PR;
  }
  EXPECT_EQ(R.SharedBase, Expected);
}
