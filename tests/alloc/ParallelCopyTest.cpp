//===- ParallelCopyTest.cpp - Copy sequentialisation ----------------------===//
//
// Exhaustive checks of the parallel-copy lowering, including an interpreter
// that executes the emitted movs/xors over an array and verifies the result
// matches the parallel semantics — for hand-picked shapes and for random
// partial permutations.
//
//===----------------------------------------------------------------------===//

#include "alloc/ParallelCopy.h"

#include "support/Random.h"

#include "gtest/gtest.h"

#include <numeric>
#include <vector>

using namespace npral;

namespace {

/// Execute the emitted instruction list over a register array.
std::vector<uint32_t> execute(const std::vector<Instruction> &Instrs,
                              std::vector<uint32_t> Regs) {
  for (const Instruction &I : Instrs) {
    switch (I.Op) {
    case Opcode::Mov:
      Regs[static_cast<size_t>(I.Def)] = Regs[static_cast<size_t>(I.Use1)];
      break;
    case Opcode::Xor:
      Regs[static_cast<size_t>(I.Def)] =
          Regs[static_cast<size_t>(I.Use1)] ^ Regs[static_cast<size_t>(I.Use2)];
      break;
    default:
      ADD_FAILURE() << "unexpected opcode in lowered copy";
    }
  }
  return Regs;
}

/// Check that lowering \p Copies with \p Scratch implements the parallel
/// semantics over \p NumRegs registers holding distinct initial values.
void checkLowering(const std::vector<Copy> &Copies, int Scratch, int NumRegs) {
  std::vector<uint32_t> Init(static_cast<size_t>(NumRegs));
  std::iota(Init.begin(), Init.end(), 100);

  std::vector<uint32_t> Expected = Init;
  for (const Copy &C : Copies)
    Expected[static_cast<size_t>(C.To)] = Init[static_cast<size_t>(C.From)];

  std::vector<Instruction> Out;
  appendParallelCopy(Out, Copies, Scratch);
  std::vector<uint32_t> Got = execute(Out, Init);

  // Every target must hold its source's original value. Colors that are
  // neither targets nor the scratch must be untouched.
  std::vector<char> IsTarget(static_cast<size_t>(NumRegs), 0);
  for (const Copy &C : Copies)
    IsTarget[static_cast<size_t>(C.To)] = 1;
  for (int R = 0; R < NumRegs; ++R) {
    if (IsTarget[static_cast<size_t>(R)]) {
      EXPECT_EQ(Got[static_cast<size_t>(R)], Expected[static_cast<size_t>(R)])
          << "target color " << R;
    } else if (R != Scratch) {
      EXPECT_EQ(Got[static_cast<size_t>(R)], Init[static_cast<size_t>(R)])
          << "non-target color " << R << " was clobbered";
    }
  }
}

} // namespace

TEST(ParallelCopyTest, EmptyAndNoop) {
  std::vector<Instruction> Out;
  EXPECT_EQ(appendParallelCopy(Out, {}, -1), 0);
  EXPECT_EQ(appendParallelCopy(Out, {{2, 2}, {5, 5}}, -1), 0);
  EXPECT_TRUE(Out.empty());
}

TEST(ParallelCopyTest, SingleMove) {
  checkLowering({{0, 1}}, -1, 4);
}

TEST(ParallelCopyTest, ChainUsesRightOrder) {
  // 0->1->2: must emit 2:=1 before 1:=0.
  std::vector<Instruction> Out;
  int N = appendParallelCopy(Out, {{0, 1}, {1, 2}}, -1);
  EXPECT_EQ(N, 2);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Def, 2);
  EXPECT_EQ(Out[1].Def, 1);
  checkLowering({{0, 1}, {1, 2}}, -1, 4);
}

TEST(ParallelCopyTest, TwoCycleWithScratch) {
  std::vector<Instruction> Out;
  int N = appendParallelCopy(Out, {{0, 1}, {1, 0}}, 3);
  EXPECT_EQ(N, 3) << "scratch break: 3 movs";
  for (const Instruction &I : Out)
    EXPECT_EQ(I.Op, Opcode::Mov);
  checkLowering({{0, 1}, {1, 0}}, 3, 4);
}

TEST(ParallelCopyTest, TwoCycleWithoutScratch) {
  std::vector<Instruction> Out;
  int N = appendParallelCopy(Out, {{0, 1}, {1, 0}}, -1);
  EXPECT_EQ(N, 3) << "one xor swap";
  for (const Instruction &I : Out)
    EXPECT_EQ(I.Op, Opcode::Xor);
  checkLowering({{0, 1}, {1, 0}}, -1, 2);
}

TEST(ParallelCopyTest, ThreeCycleBothWays) {
  std::vector<Copy> Cycle = {{0, 1}, {1, 2}, {2, 0}};
  checkLowering(Cycle, 5, 6);
  checkLowering(Cycle, -1, 3);
}

TEST(ParallelCopyTest, CycleWithAttachedChain) {
  // 3 -> 0, plus cycle 0 -> 1 -> 0... that would give color 0 two sources;
  // instead: chain into the cycle's entry is not a permutation. Use a valid
  // mix: cycle {0,1} and independent chain 2 -> 3 -> 4.
  std::vector<Copy> Mix = {{0, 1}, {1, 0}, {2, 3}, {3, 4}};
  checkLowering(Mix, -1, 6);
  checkLowering(Mix, 5, 6);
}

TEST(ParallelCopyTest, TwoDisjointCyclesNoScratch) {
  std::vector<Copy> Two = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  checkLowering(Two, -1, 4);
}

TEST(ParallelCopyTest, RandomPartialPermutations) {
  Rng R(2026);
  for (int Trial = 0; Trial < 200; ++Trial) {
    const int NumRegs = 10;
    // Random partial permutation: a random subset of a random permutation.
    std::vector<int> Perm(NumRegs);
    std::iota(Perm.begin(), Perm.end(), 0);
    for (int I = NumRegs - 1; I > 0; --I)
      std::swap(Perm[static_cast<size_t>(I)],
                Perm[static_cast<size_t>(R.nextBelow(
                    static_cast<uint64_t>(I) + 1))]);
    std::vector<Copy> Copies;
    for (int I = 0; I < NumRegs; ++I)
      if (R.nextChance(2, 3))
        Copies.push_back({I, Perm[static_cast<size_t>(I)]});

    // Pick a scratch that is neither a source nor a target (or none).
    int Scratch = -1;
    for (int C = 0; C < NumRegs && Scratch < 0; ++C) {
      bool Used = false;
      for (const Copy &Cp : Copies)
        if (Cp.From == C || Cp.To == C)
          Used = true;
      if (!Used && R.nextChance(1, 2))
        Scratch = C;
    }
    checkLowering(Copies, Scratch, NumRegs);
    checkLowering(Copies, -1, NumRegs);
  }
}
