//===- CostHintTest.cpp - Cost hints vs moves actually inserted -----------===//
//
// The allocator's pricing is only as sound as its cost hints. Two
// properties over every workload kernel:
//
//  * estimateExcludeNSRMoves(P, TA, V, NSR) equals the number of `mov`s
//    excludeNSR actually inserts for the same (V, NSR) — for every pair
//    where the hint says the transform is not a no-op;
//
//  * ColorAllocation::MoveCost from the fragment allocator equals the
//    number of mov/xor ops the allocation actually added to the program
//    (relocations, xor swaps, and edge-fix parallel copies included), and
//    WeightedCost == MoveCost under the unit model.
//
//===----------------------------------------------------------------------===//

#include "alloc/FragmentAllocator.h"
#include "alloc/IntraAllocator.h"
#include "alloc/SplitTransforms.h"
#include "analysis/InterferenceGraph.h"
#include "workloads/Workload.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

/// Count mov and xor instructions (the only op kinds any splitting or
/// fragment transform inserts).
int countMoveOps(const Program &P) {
  int N = 0;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    for (const Instruction &I : P.block(B).Instrs)
      if (I.Op == Opcode::Mov || I.Op == Opcode::Xor)
        ++N;
  return N;
}

} // namespace

TEST(CostHintTest, ExcludeNSRHintMatchesInsertedMoves) {
  int PairsChecked = 0;
  for (const std::string &Name : getWorkloadNames()) {
    ErrorOr<Workload> W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok()) << W.status().str();
    const Program &P = W->Code;
    ThreadAnalysis TA = analyzeThread(P);

    for (int NSR = 0; NSR < TA.NSRs.getNumNSRs(); ++NSR) {
      for (Reg V = 0; V < P.NumRegs; ++V) {
        const int Hint = estimateExcludeNSRMoves(P, TA, V, NSR);
        // Unit-model weighted hint must agree exactly.
        EXPECT_EQ(estimateExcludeNSRMovesWeighted(P, TA, V, NSR, CostModel()),
                  Hint)
            << Name << " V=" << V << " NSR=" << NSR;
        if (Hint < 0)
          continue;

        Program Copy = P;
        ThreadAnalysis CopyTA = analyzeThread(Copy);
        const int Before = countMoveOps(Copy);
        Reg Fresh = excludeNSR(Copy, CopyTA, V, NSR);
        ASSERT_NE(Fresh, NoReg)
            << Name << ": hint " << Hint << " but excludeNSR was a no-op"
            << " (V=" << V << " NSR=" << NSR << ")";
        EXPECT_EQ(countMoveOps(Copy) - Before, Hint)
            << Name << " V=" << V << " NSR=" << NSR;
        ++PairsChecked;
      }
    }
  }
  // The property must have had real coverage, not vacuous passes.
  EXPECT_GT(PairsChecked, 100);
}

TEST(CostHintTest, FragmentMoveCostMatchesInsertedOps) {
  int Checked = 0;
  for (const std::string &Name : getWorkloadNames()) {
    ErrorOr<Workload> W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok()) << W.status().str();
    const Program &P = W->Code;
    ThreadAnalysis TA = analyzeThread(P);
    IntraThreadAllocator Intra(P);

    // The minimal numbers force maximal splitting; a mid-range point
    // exercises the partially-constrained paths too.
    const int MinPR = Intra.getMinPR();
    const int MinR = Intra.getMinR();
    const int MaxPR = Intra.getBounds().MaxPR;
    const int MidPR = MinPR + (MaxPR - MinPR) / 2;
    for (int PR : {MinPR, MidPR}) {
      const int SR = std::max(0, MinR - PR);
      ColorAllocation A = allocateByFragments(P, TA, PR, SR);
      if (!A.Feasible)
        continue;
      EXPECT_EQ(A.MoveCost, countMoveOps(A.ColorProgram) - countMoveOps(P))
          << Name << " PR=" << PR << " SR=" << SR;
      // Unit model: the weighted cost is the raw op count.
      EXPECT_EQ(A.WeightedCost, A.MoveCost) << Name;
      EXPECT_TRUE(A.OutputWeights.empty()) << Name;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 10);
}

TEST(CostHintTest, FragmentWeightedCostPricesBlocksByWeight) {
  // A hand-built check that WeightedCost really prices by block weight:
  // compare unit and weighted runs of the same kernel; the weighted cost
  // must equal the sum over inserted ops of their block's weight, which we
  // bound via the op count times the max weight.
  ErrorOr<Workload> W = buildWorkload("drr", 0);
  ASSERT_TRUE(W.ok());
  const Program &P = W->Code;
  ThreadAnalysis TA = analyzeThread(P);
  IntraThreadAllocator Intra(P);
  const int PR = Intra.getMinPR();
  const int SR = std::max(0, Intra.getMinR() - PR);

  ColorAllocation Unit = allocateByFragments(P, TA, PR, SR);
  ASSERT_TRUE(Unit.Feasible);

  CostModel CM;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    CM.setBlockWeight(B, 7);
  ColorAllocation Weighted = allocateByFragments(P, TA, PR, SR, CM);
  ASSERT_TRUE(Weighted.Feasible);

  // Uniform weight w: same placement decisions, cost scales by exactly w.
  EXPECT_EQ(Weighted.MoveCost, Unit.MoveCost);
  EXPECT_EQ(Weighted.WeightedCost, 7 * Unit.WeightedCost);
  EXPECT_FALSE(Weighted.OutputWeights.empty());
}
