//===- WorkloadTest.cpp - Benchmark kernels and generator -----------------===//

#include "workloads/Harness.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Workload.h"

#include "analysis/InterferenceGraph.h"
#include "ir/IRVerifier.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

TEST(WorkloadTest, RegistryListsElevenBenchmarks) {
  EXPECT_EQ(getWorkloadNames().size(), 11u);
}

TEST(WorkloadTest, UnknownNameRejected) {
  EXPECT_FALSE(buildWorkload("nonesuch", 0).ok());
  EXPECT_FALSE(buildWorkload("md5", 7).ok());
}

class WorkloadParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadParamTest, BuildsAndVerifies) {
  auto W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok()) << W.status().str();
  EXPECT_TRUE(verifyProgram(W->Code).ok());
  LivenessInfo LI = computeLiveness(W->Code);
  EXPECT_TRUE(checkNoUseOfUndef(W->Code, LI).ok());
  EXPECT_EQ(W->Code.EntryLiveRegs.size(), W->EntryValues.size());
  EXPECT_GT(W->OutputLen, 0u);
}

TEST_P(WorkloadParamTest, RunsStandalone) {
  auto W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok());
  std::vector<Workload> Ws = {W.take()};
  MultiThreadProgram MTP = toMultiThreadProgram(Ws, GetParam());
  SimConfig Config = equivalenceConfig();
  Config.TargetIterations = 3;
  ScenarioRun Run = simulateWithWorkloads(Ws, MTP, Config);
  ASSERT_TRUE(Run.Success) << Run.FailReason;
  EXPECT_GE(Run.Threads[0].Iterations, 3);
  EXPECT_GT(Run.Threads[0].MemOps, 0);
}

TEST_P(WorkloadParamTest, DeterministicAcrossRuns) {
  auto W1 = buildWorkload(GetParam(), 0);
  auto W2 = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W1.ok() && W2.ok());
  std::vector<Workload> A = {W1.take()}, B = {W2.take()};
  SimConfig Config = equivalenceConfig();
  Config.TargetIterations = 2;
  ScenarioRun R1 =
      simulateWithWorkloads(A, toMultiThreadProgram(A, "a"), Config);
  ScenarioRun R2 =
      simulateWithWorkloads(B, toMultiThreadProgram(B, "b"), Config);
  ASSERT_TRUE(R1.Success && R2.Success);
  EXPECT_EQ(R1.Threads[0].OutputHash, R2.Threads[0].OutputHash);
}

TEST_P(WorkloadParamTest, SlotsUseDisjointMemory) {
  auto W0 = buildWorkload(GetParam(), 0);
  auto W3 = buildWorkload(GetParam(), 3);
  ASSERT_TRUE(W0.ok() && W3.ok());
  EXPECT_NE(W0->OutputBase, W3->OutputBase);
  EXPECT_NE(W0->SpillBase, W3->SpillBase);
}

TEST_P(WorkloadParamTest, WebRenamed) {
  // Workloads come pre-renamed: analyzeThread must not fault and every
  // internal node has exactly one home NSR.
  auto W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok());
  ThreadAnalysis TA = analyzeThread(W->Code);
  TA.InternalNodes.forEach([&](int Node) {
    EXPECT_GE(TA.HomeNSR[static_cast<size_t>(Node)], 0);
  });
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadParamTest,
                         ::testing::ValuesIn(getWorkloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadSignatureTest, CriticalKernelsExceedFixedPartition) {
  // md5 and wraps must exceed the 32-register fixed partition so the
  // spilling baseline suffers (the premise of Table 3).
  for (const char *Name : {"md5", "wraps_rx", "wraps_tx"}) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ThreadAnalysis TA = analyzeThread(W->Code);
    EXPECT_GT(TA.getRegPmax(), 32) << Name;
  }
}

TEST(WorkloadSignatureTest, CompanionKernelsFitFixedPartition) {
  for (const char *Name : {"frag", "crc", "url", "l2l3fwd_rx", "l2l3fwd_tx",
                           "fir2dim", "drr"}) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ThreadAnalysis TA = analyzeThread(W->Code);
    EXPECT_LE(TA.getRegPmax(), 32) << Name;
  }
}

TEST(WorkloadSignatureTest, SRAFeasibleForAllBenchmarksAt128) {
  // Figure 14's premise: four identical threads of every benchmark fit in
  // the 128-register file using sharing.
  for (const std::string &Name : getWorkloadNames()) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ThreadAnalysis TA = analyzeThread(W->Code);
    EXPECT_LE(4 * TA.getRegPCSBmax() +
                  (TA.getRegPmax() - TA.getRegPCSBmax()),
              128)
        << Name << " cannot fit 4x in 128 registers even at the bounds";
  }
}

TEST(ScenarioTest, ThreeAraScenariosDefined) {
  const auto &Scenarios = getAraScenarios();
  ASSERT_EQ(Scenarios.size(), 3u);
  for (const Scenario &S : Scenarios) {
    std::vector<Workload> Ws = buildScenarioWorkloads(S);
    EXPECT_EQ(Ws.size(), 4u);
    EXPECT_FALSE(S.CriticalThreads.empty());
  }
}

TEST(GeneratorTest, ProducesVerifiedTerminatingPrograms) {
  GeneratorConfig Config;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Program P = generateRandomProgram(Seed, Config);
    ASSERT_TRUE(verifyProgram(P).ok()) << "seed " << Seed;
    LivenessInfo LI = computeLiveness(P);
    EXPECT_TRUE(checkNoUseOfUndef(P, LI).ok()) << "seed " << Seed;
    auto Run = runSingle(P, {}, Config.OutBase, Config.OutLen, {},
                         Config.MemBase);
    EXPECT_TRUE(Run.Result.Completed)
        << "seed " << Seed << ": " << Run.Result.FailReason;
    EXPECT_GE(Run.Result.Threads[0].Iterations, 1) << "seed " << Seed;
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratorConfig Config;
  Program A = generateRandomProgram(42, Config);
  Program B = generateRandomProgram(42, Config);
  EXPECT_EQ(A.countInstructions(), B.countInstructions());
  EXPECT_EQ(A.NumRegs, B.NumRegs);
  Program C = generateRandomProgram(43, Config);
  EXPECT_TRUE(A.countInstructions() != C.countInstructions() ||
              A.getNumBlocks() != C.getNumBlocks() ||
              A.NumRegs != C.NumRegs);
}

TEST(GeneratorTest, CtxRateRoughlyHonoured) {
  GeneratorConfig Config;
  Config.TargetInstructions = 400;
  Config.CtxRatePerMille = 150;
  Program P = generateRandomProgram(7, Config);
  double Rate = static_cast<double>(P.countCtxInstructions()) /
                P.countInstructions();
  EXPECT_GT(Rate, 0.02);
  EXPECT_LT(Rate, 0.40);
}
