//===- WorkloadTest.cpp - Benchmark kernels and generator -----------------===//

#include "workloads/Harness.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/Workload.h"

#include "analysis/InterferenceGraph.h"
#include "analysis/LiveRangeRenaming.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

TEST(WorkloadTest, RegistryListsElevenBenchmarks) {
  EXPECT_EQ(getWorkloadNames().size(), 11u);
}

TEST(WorkloadTest, UnknownNameRejected) {
  EXPECT_FALSE(buildWorkload("nonesuch", 0).ok());
  EXPECT_FALSE(buildWorkload("md5", 7).ok());
}

class WorkloadParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadParamTest, BuildsAndVerifies) {
  auto W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok()) << W.status().str();
  EXPECT_TRUE(verifyProgram(W->Code).ok());
  LivenessInfo LI = computeLiveness(W->Code);
  EXPECT_TRUE(checkNoUseOfUndef(W->Code, LI).ok());
  EXPECT_EQ(W->Code.EntryLiveRegs.size(), W->EntryValues.size());
  EXPECT_GT(W->OutputLen, 0u);
}

TEST_P(WorkloadParamTest, RunsStandalone) {
  auto W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok());
  std::vector<Workload> Ws = {W.take()};
  MultiThreadProgram MTP = toMultiThreadProgram(Ws, GetParam());
  SimConfig Config = equivalenceConfig();
  Config.TargetIterations = 3;
  ScenarioRun Run = simulateWithWorkloads(Ws, MTP, Config);
  ASSERT_TRUE(Run.Success) << Run.FailReason;
  EXPECT_GE(Run.Threads[0].Iterations, 3);
  EXPECT_GT(Run.Threads[0].MemOps, 0);
}

TEST_P(WorkloadParamTest, DeterministicAcrossRuns) {
  auto W1 = buildWorkload(GetParam(), 0);
  auto W2 = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W1.ok() && W2.ok());
  std::vector<Workload> A = {W1.take()}, B = {W2.take()};
  SimConfig Config = equivalenceConfig();
  Config.TargetIterations = 2;
  ScenarioRun R1 =
      simulateWithWorkloads(A, toMultiThreadProgram(A, "a"), Config);
  ScenarioRun R2 =
      simulateWithWorkloads(B, toMultiThreadProgram(B, "b"), Config);
  ASSERT_TRUE(R1.Success && R2.Success);
  EXPECT_EQ(R1.Threads[0].OutputHash, R2.Threads[0].OutputHash);
}

TEST_P(WorkloadParamTest, SlotsUseDisjointMemory) {
  auto W0 = buildWorkload(GetParam(), 0);
  auto W3 = buildWorkload(GetParam(), 3);
  ASSERT_TRUE(W0.ok() && W3.ok());
  EXPECT_NE(W0->OutputBase, W3->OutputBase);
  EXPECT_NE(W0->SpillBase, W3->SpillBase);
}

TEST_P(WorkloadParamTest, WebRenamed) {
  // Workloads come pre-renamed: analyzeThread must not fault and every
  // internal node has exactly one home NSR.
  auto W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok());
  ThreadAnalysis TA = analyzeThread(W->Code);
  TA.InternalNodes.forEach([&](int Node) {
    EXPECT_GE(TA.HomeNSR[static_cast<size_t>(Node)], 0);
  });
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadParamTest,
                         ::testing::ValuesIn(getWorkloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadSignatureTest, CriticalKernelsExceedFixedPartition) {
  // md5 and wraps must exceed the 32-register fixed partition so the
  // spilling baseline suffers (the premise of Table 3).
  for (const char *Name : {"md5", "wraps_rx", "wraps_tx"}) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ThreadAnalysis TA = analyzeThread(W->Code);
    EXPECT_GT(TA.getRegPmax(), 32) << Name;
  }
}

TEST(WorkloadSignatureTest, CompanionKernelsFitFixedPartition) {
  for (const char *Name : {"frag", "crc", "url", "l2l3fwd_rx", "l2l3fwd_tx",
                           "fir2dim", "drr"}) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ThreadAnalysis TA = analyzeThread(W->Code);
    EXPECT_LE(TA.getRegPmax(), 32) << Name;
  }
}

TEST(WorkloadSignatureTest, SRAFeasibleForAllBenchmarksAt128) {
  // Figure 14's premise: four identical threads of every benchmark fit in
  // the 128-register file using sharing.
  for (const std::string &Name : getWorkloadNames()) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ThreadAnalysis TA = analyzeThread(W->Code);
    EXPECT_LE(4 * TA.getRegPCSBmax() +
                  (TA.getRegPmax() - TA.getRegPCSBmax()),
              128)
        << Name << " cannot fit 4x in 128 registers even at the bounds";
  }
}

TEST(ScenarioTest, ThreeAraScenariosDefined) {
  const auto &Scenarios = getAraScenarios();
  ASSERT_EQ(Scenarios.size(), 3u);
  for (const Scenario &S : Scenarios) {
    std::vector<Workload> Ws = buildScenarioWorkloads(S);
    EXPECT_EQ(Ws.size(), 4u);
    EXPECT_FALSE(S.CriticalThreads.empty());
  }
}

TEST(GeneratorTest, ProducesVerifiedTerminatingPrograms) {
  GeneratorConfig Config;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Program P = generateRandomProgram(Seed, Config);
    ASSERT_TRUE(verifyProgram(P).ok()) << "seed " << Seed;
    LivenessInfo LI = computeLiveness(P);
    EXPECT_TRUE(checkNoUseOfUndef(P, LI).ok()) << "seed " << Seed;
    auto Run = runSingle(P, {}, Config.OutBase, Config.OutLen, {},
                         Config.MemBase);
    EXPECT_TRUE(Run.Result.Completed)
        << "seed " << Seed << ": " << Run.Result.FailReason;
    EXPECT_GE(Run.Result.Threads[0].Iterations, 1) << "seed " << Seed;
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratorConfig Config;
  Program A = generateRandomProgram(42, Config);
  Program B = generateRandomProgram(42, Config);
  EXPECT_EQ(A.countInstructions(), B.countInstructions());
  EXPECT_EQ(A.NumRegs, B.NumRegs);
  Program C = generateRandomProgram(43, Config);
  EXPECT_TRUE(A.countInstructions() != C.countInstructions() ||
              A.getNumBlocks() != C.getNumBlocks() ||
              A.NumRegs != C.NumRegs);
}

TEST(GeneratorTest, CtxRateRoughlyHonoured) {
  GeneratorConfig Config;
  Config.TargetInstructions = 400;
  Config.CtxRatePerMille = 150;
  Program P = generateRandomProgram(7, Config);
  double Rate = static_cast<double>(P.countCtxInstructions()) /
                P.countInstructions();
  EXPECT_GT(Rate, 0.02);
  EXPECT_LT(Rate, 0.40);
}

TEST(GeneratorTest, PressureTargetForcesDenseMultiWordRows) {
  // The knob exists to push analysis into multi-word live sets and >32-
  // degree interference rows; check the distribution actually lands there.
  GeneratorConfig Config;
  Config.TargetInstructions = 120;
  Config.PressureTarget = 48;
  int SeedsWithDenseRow = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Program P = generateRandomProgram(Seed, Config);
    ASSERT_TRUE(verifyProgram(P).ok()) << "seed " << Seed;
    // All pool registers stay live to the store trail, so peak pressure
    // must clear the target (pool + pointers), i.e. live sets span >1 word.
    ThreadAnalysis TA = analyzeThread(P);
    EXPECT_GE(TA.getRegPmax(), Config.PressureTarget) << "seed " << Seed;
    int MaxDegree = 0;
    for (int N = 0; N < P.NumRegs; ++N)
      MaxDegree = std::max(MaxDegree, TA.GIG.degree(N));
    if (MaxDegree > 32)
      ++SeedsWithDenseRow;
  }
  EXPECT_EQ(SeedsWithDenseRow, 10);
}

TEST(GeneratorTest, PressureTargetZeroKeepsSeedStream) {
  // Default knob values must not perturb existing seed streams — the
  // pre-rewrite allocator goldens depend on that.
  GeneratorConfig Plain;
  GeneratorConfig Explicit;
  Explicit.PressureTarget = 0;
  Explicit.MaxLoopNest = -1;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Program A = generateRandomProgram(Seed, Plain);
    Program B = generateRandomProgram(Seed, Explicit);
    EXPECT_EQ(programToString(A), programToString(B)) << "seed " << Seed;
  }
}

TEST(GeneratorTest, GenericKindKeepsSeedStream) {
  // Kind is another default-inert knob: an explicit Generic must be
  // byte-identical to the pre-knob stream.
  GeneratorConfig Plain;
  GeneratorConfig Explicit;
  Explicit.Kind = ProgramKind::Generic;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Program A = generateRandomProgram(Seed, Plain);
    Program B = generateRandomProgram(Seed, Explicit);
    EXPECT_EQ(programToString(A), programToString(B)) << "seed " << Seed;
  }
}

namespace {

double ctxFraction(ProgramKind Kind, uint64_t Seed) {
  GeneratorConfig Config;
  Config.Kind = Kind;
  Config.TargetInstructions = 400;
  Program P = generateRandomProgram(Seed, Config);
  EXPECT_TRUE(verifyProgram(P).ok());
  return static_cast<double>(P.countCtxInstructions()) /
         static_cast<double>(P.countInstructions());
}

int countOpcode(const Program &P, Opcode Op) {
  int N = 0;
  for (const BasicBlock &B : P.Blocks)
    for (const Instruction &I : B.Instrs)
      if (I.Op == Op)
        ++N;
  return N;
}

} // namespace

TEST(GeneratorTest, KindSkewsCtxDistribution) {
  // Forward emulates memory-bound forwarding kernels (ctx rate up),
  // Crypto compute-bound rounds (ctx rate down); measured over seeds, the
  // ordering Forward > Generic > Crypto must hold in aggregate.
  double FwdSum = 0, GenSum = 0, CrySum = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    FwdSum += ctxFraction(ProgramKind::Forward, Seed);
    GenSum += ctxFraction(ProgramKind::Generic, Seed);
    CrySum += ctxFraction(ProgramKind::Crypto, Seed);
  }
  EXPECT_GT(FwdSum, GenSum * 1.5);
  EXPECT_LT(CrySum, GenSum * 0.8);
}

TEST(GeneratorTest, ChecksumKindFoldsWithXorShift) {
  // The checksum opcode tables drop Mul entirely and lean on xor/shift.
  GeneratorConfig Config;
  Config.Kind = ProgramKind::Checksum;
  Config.TargetInstructions = 400;
  int Xors = 0, Muls = 0, GenericXors = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Program P = generateRandomProgram(Seed, Config);
    ASSERT_TRUE(verifyProgram(P).ok()) << "seed " << Seed;
    Xors += countOpcode(P, Opcode::Xor) + countOpcode(P, Opcode::XorI);
    Muls += countOpcode(P, Opcode::Mul) + countOpcode(P, Opcode::MulI);
    GeneratorConfig Generic;
    Generic.TargetInstructions = 400;
    Program G = generateRandomProgram(Seed, Generic);
    GenericXors += countOpcode(G, Opcode::Xor) + countOpcode(G, Opcode::XorI);
  }
  EXPECT_EQ(Muls, 0);
  EXPECT_GT(Xors, GenericXors * 2);
}

TEST(GeneratorTest, SchedKindIsBranchHeavy) {
  // More if/loop bands per dice roll -> more basic blocks per instruction.
  double SchedBlocks = 0, GenericBlocks = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    GeneratorConfig Sched;
    Sched.Kind = ProgramKind::Sched;
    Sched.TargetInstructions = 300;
    Program S = generateRandomProgram(Seed, Sched);
    ASSERT_TRUE(verifyProgram(S).ok()) << "seed " << Seed;
    SchedBlocks += static_cast<double>(S.getNumBlocks()) /
                   static_cast<double>(S.countInstructions());
    GeneratorConfig Generic;
    Generic.TargetInstructions = 300;
    Program G = generateRandomProgram(Seed, Generic);
    GenericBlocks += static_cast<double>(G.getNumBlocks()) /
                     static_cast<double>(G.countInstructions());
  }
  EXPECT_GT(SchedBlocks, GenericBlocks * 1.3);
}

TEST(GeneratorTest, CryptoKindWidensThePool) {
  // The crypto pool carries eight extra long-lived round-state registers,
  // which shows up directly in sustained pressure.
  GeneratorConfig Crypto;
  Crypto.Kind = ProgramKind::Crypto;
  GeneratorConfig Generic;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Program C = generateRandomProgram(Seed, Crypto);
    Program G = generateRandomProgram(Seed, Generic);
    ThreadAnalysis CA = analyzeThread(renameLiveRanges(C));
    ThreadAnalysis GA = analyzeThread(renameLiveRanges(G));
    EXPECT_GT(CA.getRegPmax(), GA.getRegPmax()) << "seed " << Seed;
  }
}

namespace {

/// DFS three-color cycle detection over Program::successors.
bool hasCycle(const Program &P) {
  enum { White, Grey, Black };
  std::vector<char> Color(static_cast<size_t>(P.getNumBlocks()), White);
  std::vector<std::pair<int, size_t>> Stack;
  std::vector<std::vector<int>> Succs(static_cast<size_t>(P.getNumBlocks()));
  for (int B = 0; B < P.getNumBlocks(); ++B)
    Succs[static_cast<size_t>(B)] = P.successors(B);
  for (int Start = 0; Start < P.getNumBlocks(); ++Start) {
    if (Color[static_cast<size_t>(Start)] != White)
      continue;
    Color[static_cast<size_t>(Start)] = Grey;
    Stack.push_back({Start, 0});
    while (!Stack.empty()) {
      auto &[B, Next] = Stack.back();
      if (Next < Succs[static_cast<size_t>(B)].size()) {
        int S = Succs[static_cast<size_t>(B)][Next++];
        if (Color[static_cast<size_t>(S)] == Grey)
          return true;
        if (Color[static_cast<size_t>(S)] == White) {
          Color[static_cast<size_t>(S)] = Grey;
          Stack.push_back({S, 0});
        }
      } else {
        Color[static_cast<size_t>(B)] = Black;
        Stack.pop_back();
      }
    }
  }
  return false;
}

} // namespace

TEST(GeneratorTest, MaxLoopNestZeroGeneratesAcyclicBodies) {
  GeneratorConfig Config;
  Config.TargetInstructions = 150;
  Config.MaxLoopNest = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Program P = generateRandomProgram(Seed, Config);
    ASSERT_TRUE(verifyProgram(P).ok()) << "seed " << Seed;
    EXPECT_FALSE(hasCycle(P)) << "seed " << Seed;
  }
}

TEST(GeneratorTest, MaxLoopNestOneStillLoops) {
  // The cap bounds nesting, not loop count: depth-1 loops stay available.
  GeneratorConfig Config;
  Config.TargetInstructions = 300;
  Config.MaxLoopNest = 1;
  int SeedsWithLoop = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed)
    if (hasCycle(generateRandomProgram(Seed, Config)))
      ++SeedsWithLoop;
  EXPECT_GT(SeedsWithLoop, 5);
}
