//===- DiagnosticEngineTest.cpp - DiagnosticEngine unit tests -------------===//

#include "support/DiagnosticEngine.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace npral;

namespace {

Diagnostic makeDiag(Severity Sev, const std::string &Check,
                    const std::string &Message) {
  Diagnostic D;
  D.Sev = Sev;
  D.Check = Check;
  D.Message = Message;
  return D;
}

TEST(DiagnosticEngineTest, StartsEmpty) {
  DiagnosticEngine Engine;
  EXPECT_TRUE(Engine.empty());
  EXPECT_EQ(Engine.size(), 0);
  EXPECT_FALSE(Engine.hasErrors());
  EXPECT_EQ(Engine.firstError(), nullptr);
}

TEST(DiagnosticEngineTest, CountsBySeverity) {
  DiagnosticEngine Engine;
  Engine.report(makeDiag(Severity::Warning, "dead-store", "w1"));
  Engine.report(makeDiag(Severity::Error, "cross-thread-race", "e1"));
  Engine.report(makeDiag(Severity::Note, "over-private", "n1"));
  Engine.report(makeDiag(Severity::Error, "cross-thread-race", "e2"));

  EXPECT_EQ(Engine.size(), 4);
  EXPECT_EQ(Engine.errorCount(), 2);
  EXPECT_EQ(Engine.warningCount(), 1);
  EXPECT_EQ(Engine.noteCount(), 1);
  EXPECT_TRUE(Engine.hasErrors());
  ASSERT_NE(Engine.firstError(), nullptr);
  EXPECT_EQ(Engine.firstError()->Message, "e1");
}

TEST(DiagnosticEngineTest, FluentReportFillsOptionalFields) {
  DiagnosticEngine Engine;
  Diagnostic &D = Engine.report(Severity::Error, "alloc-safety", "boom");
  D.Thread = "alpha";
  D.Block = 2;
  D.Instr = 5;
  D.Witness = "load p3, [p0+0]";

  ASSERT_EQ(Engine.size(), 1);
  EXPECT_EQ(Engine.diagnostics()[0].Thread, "alpha");
  EXPECT_EQ(Engine.diagnostics()[0].Block, 2);
  EXPECT_EQ(Engine.diagnostics()[0].Instr, 5);
  EXPECT_EQ(Engine.diagnostics()[0].Witness, "load p3, [p0+0]");
}

TEST(DiagnosticEngineTest, SortPutsErrorsFirstAndIsStable) {
  DiagnosticEngine Engine;
  Engine.report(makeDiag(Severity::Note, "over-private", "n1"));
  Engine.report(makeDiag(Severity::Warning, "dead-store", "w1"));
  Engine.report(makeDiag(Severity::Error, "cross-thread-race", "e1"));
  Engine.report(makeDiag(Severity::Error, "cross-thread-race", "e2"));
  Engine.sortBySeverity();

  ASSERT_EQ(Engine.size(), 4);
  EXPECT_EQ(Engine.diagnostics()[0].Message, "e1");
  EXPECT_EQ(Engine.diagnostics()[1].Message, "e2");
  EXPECT_EQ(Engine.diagnostics()[2].Message, "w1");
  EXPECT_EQ(Engine.diagnostics()[3].Message, "n1");
}

TEST(DiagnosticEngineTest, SortByPositionOrdersByThreadBlockInstrStably) {
  auto at = [](const std::string &Thread, int Block, int Instr, Severity Sev,
               const std::string &Message) {
    Diagnostic D;
    D.Sev = Sev;
    D.Check = "translation-validation";
    D.Thread = Thread;
    D.Block = Block;
    D.Instr = Instr;
    D.Message = Message;
    return D;
  };
  DiagnosticEngine Engine;
  // Emission order scrambled across threads/blocks, plus two findings at
  // the same point whose relative order must survive (stability).
  Engine.report(at("beta", 1, 0, Severity::Warning, "b-1-0"));
  Engine.report(at("alpha", 2, 3, Severity::Error, "a-2-3"));
  Engine.report(at("alpha", 0, 5, Severity::Note, "a-0-5-first"));
  Engine.report(at("alpha", 0, 5, Severity::Error, "a-0-5-second"));
  Engine.report(at("alpha", 0, 1, Severity::Warning, "a-0-1"));
  Engine.sortByPosition();

  ASSERT_EQ(Engine.size(), 5);
  EXPECT_EQ(Engine.diagnostics()[0].Message, "a-0-1");
  EXPECT_EQ(Engine.diagnostics()[1].Message, "a-0-5-first");
  EXPECT_EQ(Engine.diagnostics()[2].Message, "a-0-5-second");
  EXPECT_EQ(Engine.diagnostics()[3].Message, "a-2-3");
  EXPECT_EQ(Engine.diagnostics()[4].Message, "b-1-0");
}

TEST(DiagnosticEngineTest, TextRenderingIncludesPositionsAndSummary) {
  DiagnosticEngine Engine;
  Diagnostic &D = Engine.report(Severity::Warning, "dead-store",
                                "value of 'x' defined here is never used");
  D.Thread = "worker";
  D.Block = 1;
  D.Instr = 3;
  D.Witness = "imm x, 5";

  std::ostringstream OS;
  Engine.renderText(OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("thread 'worker'"), std::string::npos) << Text;
  EXPECT_NE(Text.find("block 1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("instr 3"), std::string::npos) << Text;
  EXPECT_NE(Text.find("[dead-store]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("witness: imm x, 5"), std::string::npos) << Text;
  EXPECT_NE(Text.find("0 error(s), 1 warning(s), 0 note(s)"),
            std::string::npos)
      << Text;
}

TEST(DiagnosticEngineTest, SeverityNamesRoundTrip) {
  for (Severity Sev :
       {Severity::Note, Severity::Warning, Severity::Error}) {
    Severity Parsed;
    ASSERT_TRUE(parseSeverityName(getSeverityName(Sev), Parsed));
    EXPECT_EQ(Parsed, Sev);
  }
  Severity Unused;
  EXPECT_FALSE(parseSeverityName("fatal", Unused));
}

TEST(DiagnosticEngineTest, JSONRoundTripPreservesEveryField) {
  DiagnosticEngine Engine;
  Diagnostic D;
  D.Sev = Severity::Error;
  D.Check = "cross-thread-race";
  D.Thread = "alpha";
  D.Block = 0;
  D.Instr = 2;
  D.Message = "register p1 is live across 2 CSB(s)";
  D.Witness = "CSB 'load p3, [p0+0]'";
  D.Loc.Line = 7;
  D.Loc.Column = 4;
  Engine.report(D);
  Engine.report(makeDiag(Severity::Note, "over-private", "hint"));

  std::ostringstream OS;
  Engine.renderJSON(OS);
  ErrorOr<std::vector<Diagnostic>> Parsed = parseDiagnosticsJSON(OS.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().str();
  ASSERT_EQ(Parsed->size(), 2u);

  const Diagnostic &R = (*Parsed)[0];
  EXPECT_EQ(R.Sev, Severity::Error);
  EXPECT_EQ(R.Check, "cross-thread-race");
  EXPECT_EQ(R.Thread, "alpha");
  EXPECT_EQ(R.Block, 0);
  EXPECT_EQ(R.Instr, 2);
  EXPECT_EQ(R.Message, "register p1 is live across 2 CSB(s)");
  EXPECT_EQ(R.Witness, "CSB 'load p3, [p0+0]'");
  EXPECT_EQ(R.Loc.Line, 7);
  EXPECT_EQ(R.Loc.Column, 4);
  EXPECT_EQ((*Parsed)[1].Sev, Severity::Note);
  EXPECT_EQ((*Parsed)[1].Message, "hint");
}

TEST(DiagnosticEngineTest, JSONEscapesSpecialCharacters) {
  DiagnosticEngine Engine;
  Diagnostic D = makeDiag(Severity::Warning, "structure",
                          "quote \" backslash \\ newline \n tab \t bell \x07");
  D.Witness = "mixed: \"x\\y\"\r\n";
  Engine.report(D);

  std::ostringstream OS;
  Engine.renderJSON(OS);
  ErrorOr<std::vector<Diagnostic>> Parsed = parseDiagnosticsJSON(OS.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().str();
  ASSERT_EQ(Parsed->size(), 1u);
  EXPECT_EQ((*Parsed)[0].Message, D.Message);
  EXPECT_EQ((*Parsed)[0].Witness, D.Witness);
}

TEST(DiagnosticEngineTest, JSONParserRejectsMalformedInput) {
  EXPECT_FALSE(parseDiagnosticsJSON("").ok());
  EXPECT_FALSE(parseDiagnosticsJSON("{").ok());
  EXPECT_FALSE(parseDiagnosticsJSON("[]").ok());
  EXPECT_FALSE(parseDiagnosticsJSON("{\"diagnostics\": 3}").ok());
  EXPECT_FALSE(
      parseDiagnosticsJSON("{\"diagnostics\": [{\"severity\": \"bogus\"}]}")
          .ok());
  // Trailing garbage after a well-formed object.
  DiagnosticEngine Engine;
  Engine.report(makeDiag(Severity::Note, "c", "m"));
  std::ostringstream OS;
  Engine.renderJSON(OS);
  EXPECT_FALSE(parseDiagnosticsJSON(OS.str() + "x").ok());
}

} // namespace
