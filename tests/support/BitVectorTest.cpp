//===- BitVectorTest.cpp --------------------------------------------------===//

#include "support/BitVector.h"

#include "gtest/gtest.h"

#include <vector>

using namespace npral;

TEST(BitVectorTest, EmptyVector) {
  BitVector BV;
  EXPECT_EQ(BV.size(), 0);
  EXPECT_EQ(BV.count(), 0);
  EXPECT_TRUE(BV.none());
  EXPECT_FALSE(BV.any());
}

TEST(BitVectorTest, SetResetTest) {
  BitVector BV(130);
  EXPECT_FALSE(BV.test(0));
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 3);
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2);
}

TEST(BitVectorTest, ClearZeroesEverything) {
  BitVector BV(70);
  BV.set(3);
  BV.set(69);
  BV.clear();
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.size(), 70);
}

TEST(BitVectorTest, UnionReportsChange) {
  BitVector A(100), B(100);
  A.set(1);
  B.set(1);
  EXPECT_FALSE(A.unionWith(B));
  B.set(99);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(99));
}

TEST(BitVectorTest, IntersectAndSubtract) {
  BitVector A(64), B(64);
  A.set(1);
  A.set(2);
  A.set(3);
  B.set(2);
  B.set(3);
  B.set(4);
  BitVector I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.toVector(), (std::vector<int>{2, 3}));
  BitVector S = A;
  S.subtract(B);
  EXPECT_EQ(S.toVector(), (std::vector<int>{1}));
}

TEST(BitVectorTest, Intersects) {
  BitVector A(128), B(128);
  A.set(100);
  B.set(101);
  EXPECT_FALSE(A.intersects(B));
  B.set(100);
  EXPECT_TRUE(A.intersects(B));
}

TEST(BitVectorTest, ForEachAscending) {
  BitVector BV(200);
  BV.set(5);
  BV.set(63);
  BV.set(64);
  BV.set(199);
  std::vector<int> Seen;
  BV.forEach([&](int I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<int>{5, 63, 64, 199}));
}

TEST(BitVectorTest, ResizePreservesBits) {
  BitVector BV(10);
  BV.set(3);
  BV.set(9);
  BV.resize(100);
  EXPECT_TRUE(BV.test(3));
  EXPECT_TRUE(BV.test(9));
  EXPECT_EQ(BV.count(), 2);
  BV.set(99);
  BV.resize(10);
  EXPECT_EQ(BV.count(), 2) << "bits beyond the new size must be dropped";
}

TEST(BitVectorTest, EqualityIncludesSize) {
  BitVector A(10), B(10);
  EXPECT_TRUE(A == B);
  A.set(4);
  EXPECT_FALSE(A == B);
  B.set(4);
  EXPECT_TRUE(A == B);
}
