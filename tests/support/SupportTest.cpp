//===- SupportTest.cpp - Diagnostics, Rng, strings, tables ----------------===//

#include "support/Diagnostics.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "support/TableFormatter.h"

#include "gtest/gtest.h"

#include <set>
#include <sstream>

using namespace npral;

TEST(StatusTest, SuccessByDefault) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.str(), "success");
}

TEST(StatusTest, ErrorCarriesMessageAndLoc) {
  Status S = Status::error("bad thing", SourceLoc{3, 7});
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.message(), "bad thing");
  EXPECT_EQ(S.str(), "line 3, column 7: bad thing");
}

TEST(ErrorOrTest, ValueAndError) {
  ErrorOr<int> V(42);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
  ErrorOr<int> E(Status::error("nope"));
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.status().message(), "nope");
}

TEST(RngTest, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 50; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng R(99);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(11);
  std::set<int64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtilsTest, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringUtilsTest, ParseIntegerDecimal) {
  EXPECT_EQ(parseInteger("42"), 42);
  EXPECT_EQ(parseInteger("-17"), -17);
  EXPECT_EQ(parseInteger("+5"), 5);
  EXPECT_EQ(parseInteger(" 10 "), 10);
}

TEST(StringUtilsTest, ParseIntegerHex) {
  EXPECT_EQ(parseInteger("0xFF"), 255);
  EXPECT_EQ(parseInteger("0xdeadBEEF"), 0xdeadbeefLL);
  EXPECT_EQ(parseInteger("-0x10"), -16);
}

TEST(StringUtilsTest, ParseIntegerRejectsGarbage) {
  EXPECT_FALSE(parseInteger("abc").has_value());
  EXPECT_FALSE(parseInteger("12x").has_value());
  EXPECT_FALSE(parseInteger("").has_value());
  EXPECT_FALSE(parseInteger("-").has_value());
  EXPECT_FALSE(parseInteger("0x").has_value());
}

TEST(StringUtilsTest, IsIdentifier) {
  EXPECT_TRUE(isIdentifier("abc"));
  EXPECT_TRUE(isIdentifier("_a1"));
  EXPECT_TRUE(isIdentifier(".thread"));
  EXPECT_FALSE(isIdentifier("1abc"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("a b"));
}

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 3, "z"), "x=3 y=z");
  EXPECT_EQ(formatString("plain"), "plain");
}

TEST(TableFormatterTest, AlignsColumns) {
  TableFormatter T({"Name", "N"});
  T.row().cell("a").cell(1);
  T.row().cell("bbbb").cell(22);
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Name  N"), std::string::npos);
  EXPECT_NE(Out.find("bbbb  22"), std::string::npos);
}

TEST(TableFormatterTest, CsvOutput) {
  TableFormatter T({"A", "B"});
  T.row().cell(1).cell(2.5, 1);
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "A,B\n1,2.5\n");
}

TEST(TableFormatterTest, PercentCell) {
  TableFormatter T({"P"});
  T.row().percentCell(0.183);
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "P\n+18.3%\n");
}
