//===- RepresentationPropertyTest.cpp - Dense-representation invariants ---===//
//
// Property tests for the three data structures the word-parallel rewrite
// introduced: flat BitVectors (exercised at word-boundary sizes), the
// frozen triangular-bit-matrix + CSR interference graph, and the per-
// program string arena. Each is checked against a naive model or a
// determinism contract (same input => same ids, serial == parallel).
//
//===----------------------------------------------------------------------===//

#include "analysis/InterferenceGraph.h"
#include "asmparse/AsmParser.h"
#include "driver/BatchPipeline.h"
#include "ir/IRPrinter.h"
#include "support/Arena.h"
#include "support/BitVector.h"
#include "support/Random.h"
#include "workloads/ProgramGenerator.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

// Word-boundary sizes: one bit under/at/over a word, and the two-word edge.
const int kSizes[] = {31, 32, 33, 64, 65};

} // namespace

TEST(BitVectorPropertyTest, AlgebraMatchesBoolModelAtWordBoundaries) {
  Rng R(0xB17B17u);
  for (int Size : kSizes) {
    for (int Round = 0; Round < 200; ++Round) {
      std::vector<char> MA(static_cast<size_t>(Size), 0);
      std::vector<char> MB(static_cast<size_t>(Size), 0);
      BitVector A(Size), B(Size);
      for (int I = 0; I < Size; ++I) {
        if (R.nextBelow(2)) {
          MA[static_cast<size_t>(I)] = 1;
          A.set(I);
        }
        if (R.nextBelow(2)) {
          MB[static_cast<size_t>(I)] = 1;
          B.set(I);
        }
      }

      // Membership and count.
      int Pop = 0;
      for (int I = 0; I < Size; ++I) {
        EXPECT_EQ(A.test(I), static_cast<bool>(MA[static_cast<size_t>(I)]))
            << "size " << Size << " bit " << I;
        Pop += MA[static_cast<size_t>(I)];
      }
      EXPECT_EQ(A.count(), Pop) << "size " << Size;

      // findFirst and ascending forEach.
      int First = -1;
      std::vector<int> Visited;
      A.forEach([&](int I) { Visited.push_back(I); });
      for (int I = 0; I < Size && First < 0; ++I)
        if (MA[static_cast<size_t>(I)])
          First = I;
      if (First >= 0) {
        EXPECT_EQ(A.findFirst(), First);
        EXPECT_EQ(Visited.front(), First);
      } else {
        EXPECT_TRUE(A.none());
      }
      EXPECT_TRUE(std::is_sorted(Visited.begin(), Visited.end()));
      EXPECT_EQ(static_cast<int>(Visited.size()), Pop);

      // Union / intersection / subtraction against the model.
      BitVector U = A, X = A, S = A;
      U.unionWith(B);
      X.intersectWith(B);
      S.subtract(B);
      for (int I = 0; I < Size; ++I) {
        const bool BA = MA[static_cast<size_t>(I)];
        const bool BB = MB[static_cast<size_t>(I)];
        EXPECT_EQ(U.test(I), BA || BB) << "size " << Size << " bit " << I;
        EXPECT_EQ(X.test(I), BA && BB) << "size " << Size << " bit " << I;
        EXPECT_EQ(S.test(I), BA && !BB) << "size " << Size << " bit " << I;
      }

      // The tail word must stay zero-padded past size(): word-parallel
      // loops (pressure counts, crossing-set intersections) trust it.
      const uint64_t *W = U.words();
      if (Size % 64 != 0) {
        const uint64_t TailMask = ~((uint64_t(1) << (Size % 64)) - 1);
        EXPECT_EQ(W[U.numWords() - 1] & TailMask, 0u) << "size " << Size;
      }

      // Span round-trip is lossless.
      EXPECT_TRUE(BitVector(A.span()) == A);
    }
  }
}

TEST(InterferenceGraphPropertyTest, FrozenGraphMatchesEdgeSetModel) {
  Rng R(0x6E4Au);
  for (int Round = 0; Round < 120; ++Round) {
    const int N = 2 + static_cast<int>(R.nextBelow(97)); // up to 99 nodes
    InterferenceGraph G;
    G.reset(N);
    std::set<std::pair<int, int>> Model;
    auto modelEdge = [&](int A, int B) {
      if (A != B)
        Model.insert({std::min(A, B), std::max(A, B)});
    };

    // Mix all three construction paths: single edges, cliques, row marks.
    const int Ops = 4 + static_cast<int>(R.nextBelow(24));
    for (int Op = 0; Op < Ops; ++Op) {
      switch (R.nextBelow(3)) {
      case 0: {
        int A = static_cast<int>(R.nextBelow(static_cast<uint64_t>(N)));
        int B = static_cast<int>(R.nextBelow(static_cast<uint64_t>(N)));
        G.addEdge(A, B);
        modelEdge(A, B);
        break;
      }
      case 1: {
        BitVector Clique(N);
        std::vector<int> Members;
        for (int M = 0; M < N; ++M)
          if (R.nextBelow(8) == 0) {
            Clique.set(M);
            Members.push_back(M);
          }
        G.addClique(Clique);
        for (size_t A = 0; A < Members.size(); ++A)
          for (size_t B = A + 1; B < Members.size(); ++B)
            modelEdge(Members[A], Members[B]);
        break;
      }
      default: {
        int Def = static_cast<int>(R.nextBelow(static_cast<uint64_t>(N)));
        BitVector Row(N);
        for (int M = 0; M < N; ++M)
          if (R.nextBelow(6) == 0)
            Row.set(M);
        G.markRow(Def, Row.span());
        Row.forEach([&](int M) { modelEdge(Def, M); });
        break;
      }
      }
    }
    G.freeze();

    // Edge count, symmetry, degree/adjacency consistency.
    EXPECT_EQ(G.getNumEdges(), static_cast<int>(Model.size()));
    int DegreeSum = 0;
    for (int A = 0; A < N; ++A) {
      EXPECT_FALSE(G.hasEdge(A, A)) << "self edge at " << A;
      std::vector<int> Nbs;
      G.neighbors(A).forEach([&](int B) { Nbs.push_back(B); });
      EXPECT_TRUE(std::is_sorted(Nbs.begin(), Nbs.end())) << "node " << A;
      EXPECT_EQ(G.degree(A), static_cast<int>(Nbs.size())) << "node " << A;
      DegreeSum += G.degree(A);
      for (int B : Nbs) {
        EXPECT_TRUE(G.hasEdge(A, B)) << A << "-" << B;
        EXPECT_TRUE(G.hasEdge(B, A)) << A << "-" << B << " (symmetry)";
      }
      for (int B = 0; B < N; ++B)
        EXPECT_EQ(G.hasEdge(A, B), Model.count({std::min(A, B),
                                                std::max(A, B)}) > 0)
            << A << "-" << B;
    }
    EXPECT_EQ(DegreeSum, 2 * G.getNumEdges());
  }
}

TEST(ArenaPropertyTest, InterningIsDeterministicAndDeduplicating) {
  StringInterner S1, S2;
  std::vector<std::string> Names;
  Rng R(0xA12EA5u);
  for (int I = 0; I < 500; ++I)
    Names.push_back("sym" + std::to_string(R.nextBelow(120)) + "." +
                    std::to_string(I % 7));
  std::vector<int32_t> Ids1, Ids2;
  for (const std::string &N : Names)
    Ids1.push_back(S1.intern(N));
  for (const std::string &N : Names)
    Ids2.push_back(S2.intern(N));

  // Same intern sequence => same dense ids, independent of instance.
  EXPECT_EQ(Ids1, Ids2);
  // Dedup: re-interning returns the original id, and ids resolve back.
  for (size_t I = 0; I < Names.size(); ++I) {
    EXPECT_EQ(S1.intern(Names[I]), Ids1[I]) << Names[I];
    EXPECT_EQ(S1.view(Ids1[I]), Names[I]);
  }
  // Ids are dense in first-intern order.
  std::set<int32_t> Unique(Ids1.begin(), Ids1.end());
  EXPECT_EQ(static_cast<int32_t>(Unique.size()), S1.size());
  EXPECT_EQ(*Unique.rbegin(), S1.size() - 1);
}

TEST(ArenaPropertyTest, SameProgramTextInternsSameIds) {
  // Parse the same program text twice: block name ids and register name
  // ids must come out identical (this is what lets the flat content
  // encoding ignore the arena entirely). Use the first examples/asm
  // fixture's first thread so the text carries real user labels.
  std::vector<std::string> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(NPRAL_EXAMPLES_ASM_DIR))
    if (Entry.path().extension() == ".s")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  ASSERT_FALSE(Paths.empty());
  std::ifstream In(Paths.front());
  std::ostringstream OS;
  OS << In.rdbuf();
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(OS.str());
  ASSERT_TRUE(MTP.ok()) << Paths.front();
  ASSERT_FALSE((*MTP).Threads.empty());
  const std::string Text = programToString((*MTP).Threads.front());
  ErrorOr<Program> A = parseSingleProgram(Text);
  ErrorOr<Program> B = parseSingleProgram(Text);
  ASSERT_TRUE(A.ok() && B.ok());
  ASSERT_EQ((*A).getNumBlocks(), (*B).getNumBlocks());
  for (int Blk = 0; Blk < (*A).getNumBlocks(); ++Blk) {
    EXPECT_EQ((*A).block(Blk).NameId, (*B).block(Blk).NameId) << Blk;
    EXPECT_EQ((*A).blockName(Blk), (*B).blockName(Blk)) << Blk;
  }
  EXPECT_EQ((*A).RegNameIds, (*B).RegNameIds);
  ASSERT_EQ((*A).NumRegs, (*B).NumRegs);
  for (Reg R = 0; R < (*A).NumRegs; ++R)
    EXPECT_EQ((*A).getRegName(R), (*B).getRegName(R)) << "r" << R;
}

TEST(ArenaPropertyTest, BatchOutputsStableAcrossWorkerCounts) {
  // --jobs 1 vs --jobs 4 over identical in-memory inputs: the per-program
  // arenas make analysis state thread-private, so outputs must be byte
  // stable regardless of scheduling.
  std::vector<BatchJob> Jobs;
  for (int J = 0; J < 8; ++J) {
    BatchJob Job;
    Job.Name = "job" + std::to_string(J);
    for (int T = 0; T < 2; ++T) {
      GeneratorConfig Config;
      Config.TargetInstructions = 50;
      Config.CtxRatePerMille = 150;
      Program P = generateRandomProgram(
          static_cast<uint64_t>(J) * 977u + static_cast<uint64_t>(T), Config);
      P.Name = "t" + std::to_string(T);
      Job.Program.Threads.push_back(std::move(P));
    }
    Job.Program.Name = Job.Name;
    Jobs.push_back(std::move(Job));
  }

  auto runWith = [&](int Workers) {
    BatchOptions Opts;
    Opts.Jobs = Workers;
    Opts.KeepPhysical = true;
    return runBatch(Jobs, Opts);
  };
  BatchResult Serial = runWith(1);
  BatchResult Parallel = runWith(4);
  ASSERT_EQ(Serial.Results.size(), Parallel.Results.size());
  for (size_t I = 0; I < Serial.Results.size(); ++I) {
    const BatchJobResult &S = Serial.Results[I];
    const BatchJobResult &P = Parallel.Results[I];
    EXPECT_EQ(S.Name, P.Name);
    ASSERT_EQ(S.Success, P.Success) << S.Name;
    ASSERT_EQ(S.Physical.Threads.size(), P.Physical.Threads.size()) << S.Name;
    for (size_t T = 0; T < S.Physical.Threads.size(); ++T)
      EXPECT_EQ(programToString(S.Physical.Threads[T]),
                programToString(P.Physical.Threads[T]))
          << S.Name << " thread " << T;
  }
}
