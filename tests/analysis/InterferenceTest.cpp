//===- InterferenceTest.cpp - GIG / BIG / IIG construction ----------------===//

#include "analysis/InterferenceGraph.h"
#include "analysis/LiveRangeRenaming.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {
Reg regByName(const Program &P, const std::string &Name) {
  for (Reg R = 0; R < P.NumRegs; ++R)
    if (P.getRegName(R) == Name)
      return R;
  return NoReg;
}
} // namespace

TEST(InterferenceGraphTest, BasicEdges) {
  InterferenceGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 1); // duplicate ignored
  G.addEdge(3, 3); // self loop ignored
  G.freeze();
  EXPECT_TRUE(G.isFrozen());
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_TRUE(G.hasEdge(1, 0));
  EXPECT_FALSE(G.hasEdge(0, 2));
  EXPECT_EQ(G.degree(1), 2);
  EXPECT_EQ(G.getNumEdges(), 2);
  EXPECT_EQ(G.degree(3), 0);
}

TEST(InterferenceGraphTest, CliqueAndRowBuildMatchExplicitEdges) {
  // Word-parallel construction (markRow / addClique) must produce the same
  // frozen graph as explicit addEdge calls.
  InterferenceGraph ByEdges(5);
  for (int A : {0, 2, 4})
    for (int B : {0, 2, 4})
      ByEdges.addEdge(A, B);
  ByEdges.addEdge(1, 3);
  ByEdges.freeze();

  InterferenceGraph ByRows(5);
  BitVector Clique(5);
  Clique.set(0);
  Clique.set(2);
  Clique.set(4);
  ByRows.addClique(Clique); // self-loops stripped at freeze()
  BitVector Row(5);
  Row.set(3);
  ByRows.markRow(1, Row); // one-directional; symmetrized at freeze()
  ByRows.freeze();

  EXPECT_EQ(ByRows.getNumEdges(), ByEdges.getNumEdges());
  for (int A = 0; A < 5; ++A) {
    EXPECT_EQ(ByRows.degree(A), ByEdges.degree(A)) << "node " << A;
    for (int B = 0; B < 5; ++B)
      EXPECT_EQ(ByRows.hasEdge(A, B), ByEdges.hasEdge(A, B))
          << "edge (" << A << "," << B << ")";
  }
  // Neighbor lists are ascending.
  int Prev = -1;
  ByRows.neighbors(0).forEach([&](int Nb) {
    EXPECT_GT(Nb, Prev);
    Prev = Nb;
  });
}

TEST(InterferenceGraphTest, SmallestLastOrderCoversMembers) {
  InterferenceGraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.freeze();
  BitVector Members(5);
  Members.set(0);
  Members.set(1);
  Members.set(2);
  Members.set(4);
  std::vector<int> Order = G.smallestLastOrder(Members);
  EXPECT_EQ(Order.size(), 4u);
}

TEST(AnalyzeThreadTest, CoLiveValuesInterfere) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    imm b, 2
    add c, a, b
    store [c+0], c
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  Reg A = regByName(P, "a"), B = regByName(P, "b"), C = regByName(P, "c");
  EXPECT_TRUE(TA.GIG.hasEdge(A, B));
  EXPECT_FALSE(TA.GIG.hasEdge(A, C)) << "a dies when c is defined";
}

TEST(AnalyzeThreadTest, EntryLiveRegistersInterfere) {
  Program P = parseOrDie(R"(
.thread t
.entrylive x, y
main:
    add z, x, y
    store [z+0], z
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  EXPECT_TRUE(TA.GIG.hasEdge(regByName(P, "x"), regByName(P, "y")));
}

TEST(AnalyzeThreadTest, BoundaryVsInternalClassification) {
  // Paper Fig. 3 thread 1: a boundary; b, c internal.
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    ctx
    imm b, 2
    imm c, 3
    add d, b, c
    add d, d, a
    store [d+0], d
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  Reg A = regByName(P, "a"), B = regByName(P, "b"), C = regByName(P, "c");
  EXPECT_TRUE(TA.BoundaryNodes.test(A));
  EXPECT_FALSE(TA.BoundaryNodes.test(B));
  EXPECT_TRUE(TA.InternalNodes.test(B));
  EXPECT_TRUE(TA.InternalNodes.test(C));
  // b and c internal-interfere but never cross the same CSB: GIG edge, no
  // BIG edge.
  EXPECT_TRUE(TA.GIG.hasEdge(B, C));
  EXPECT_FALSE(TA.BIG.hasEdge(B, C));
}

TEST(AnalyzeThreadTest, BIGEdgesOnlyForSameCSB) {
  // x crosses the first ctx, y crosses the second; they never cross the
  // same boundary, so no BIG edge — but they are co-live in between, so a
  // GIG edge exists. This is the key distinction the paper's shared
  // registers exploit.
  Program P = parseOrDie(R"(
.thread t
main:
    imm x, 1
    ctx
    imm y, 2
    add z, x, y
    ctx
    store [y+0], y
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  Reg X = regByName(P, "x"), Y = regByName(P, "y");
  EXPECT_TRUE(TA.BoundaryNodes.test(X));
  EXPECT_TRUE(TA.BoundaryNodes.test(Y));
  EXPECT_TRUE(TA.GIG.hasEdge(X, Y));
  EXPECT_FALSE(TA.BIG.hasEdge(X, Y));
}

TEST(AnalyzeThreadTest, IIGMembersPartitionInternals) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm t1, 1
    store [t1+0], t1
    imm t2, 2
    store [t2+0], t2
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  Reg T1 = regByName(P, "t1"), T2 = regByName(P, "t2");
  ASSERT_TRUE(TA.InternalNodes.test(T1));
  ASSERT_TRUE(TA.InternalNodes.test(T2));
  int H1 = TA.HomeNSR[static_cast<size_t>(T1)];
  int H2 = TA.HomeNSR[static_cast<size_t>(T2)];
  EXPECT_NE(H1, H2) << "separated by the first store's CSB";
  EXPECT_TRUE(TA.IIGMembers[static_cast<size_t>(H1)].test(T1));
  EXPECT_TRUE(TA.IIGMembers[static_cast<size_t>(H2)].test(T2));
}

TEST(AnalyzeThreadTest, PaperFigure5Structure) {
  // Paper Fig. 4/5: sum, buf, len boundary and pairwise interfering (a
  // clique on the BIG); tmp-style values internal.
  Program P = parseOrDie(R"(
.thread frag5
.entrylive buf, len
main:
    imm  sum, 0
loop:
    bz   len, out
    load tmp1, [buf+0]
    add  sum, sum, tmp1
    addi buf, buf, 1
    subi len, len, 1
    ctx
    br   loop
out:
    load tmp2, [buf+0]
    andi tmp2, tmp2, 0xFFFF
    add  sum, sum, tmp2
    store [buf+1], sum
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  Reg Sum = regByName(P, "sum"), Buf = regByName(P, "buf"),
      Len = regByName(P, "len"), T1 = regByName(P, "tmp1"),
      T2 = regByName(P, "tmp2");
  EXPECT_TRUE(TA.BoundaryNodes.test(Sum));
  EXPECT_TRUE(TA.BoundaryNodes.test(Buf));
  EXPECT_TRUE(TA.BoundaryNodes.test(Len));
  EXPECT_TRUE(TA.InternalNodes.test(T1));
  EXPECT_TRUE(TA.InternalNodes.test(T2));
  EXPECT_TRUE(TA.BIG.hasEdge(Sum, Buf));
  EXPECT_TRUE(TA.BIG.hasEdge(Sum, Len));
  EXPECT_TRUE(TA.BIG.hasEdge(Buf, Len));
  // tmp1 and tmp2 live in different NSRs: no interference.
  EXPECT_FALSE(TA.GIG.hasEdge(T1, T2));
}

TEST(RenamingTest, SplitsDisjointRanges) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  t, 1
    store [t+0], t
    imm  t, 2
    store [t+1], t
    halt
)");
  Program R = renameLiveRanges(P);
  // Two disjoint webs of t must become two registers.
  EXPECT_EQ(R.NumRegs, 2);
  // Behaviour preserved.
  auto Run1 = runSingle(P, {}, 0, 16);
  auto Run2 = runSingle(R, {}, 0, 16);
  ASSERT_TRUE(Run1.Result.Completed);
  ASSERT_TRUE(Run2.Result.Completed);
  EXPECT_EQ(Run1.OutputHash, Run2.OutputHash);
}

TEST(RenamingTest, IdempotentOnCleanPrograms) {
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    imm  s, 0
    load w, [buf+0]
    add  s, s, w
    store [buf+1], s
    halt
)");
  Program R1 = renameLiveRanges(P);
  Program R2 = renameLiveRanges(R1);
  EXPECT_EQ(R1.NumRegs, R2.NumRegs);
}

TEST(RenamingTest, LoopCarriedWebStaysOneRegister) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  s, 0
    imm  n, 4
loop:
    add  s, s, n
    subi n, n, 1
    bnz  n, loop
    store [s+0], s
    halt
)");
  Program R = renameLiveRanges(P);
  EXPECT_EQ(R.NumRegs, P.NumRegs) << "connected webs must not split";
}

TEST(RenamingTest, EntryLiveKeepsIdentityAndOrder) {
  Program P = parseOrDie(R"(
.thread t
.entrylive buf, len
main:
    add x, buf, len
    imm buf, 0
    store [x+0], buf
    halt
)");
  std::vector<Reg> Before = P.EntryLiveRegs;
  Program R = renameLiveRanges(P);
  ASSERT_EQ(R.EntryLiveRegs.size(), Before.size());
  // The entry components keep the original registers.
  EXPECT_EQ(R.EntryLiveRegs, Before);
  // But the redefinition of buf (a second web) got a fresh register.
  EXPECT_GT(R.NumRegs, P.NumRegs - 1);
}

TEST(RenamingTest, BenchmarkBehaviourPreserved) {
  // The renaming pass must not change observable behaviour on a branchy
  // program with loops.
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    imm  s, 0
    imm  n, 6
loop:
    load w, [buf+0]
    andi t, w, 1
    bz   t, even
    add  s, s, w
    br   next
even:
    sub  s, s, w
next:
    addi buf, buf, 1
    subi n, n, 1
    bnz  n, loop
    store [buf+10], s
    halt
)");
  Program R = renameLiveRanges(P);
  std::vector<uint32_t> Data = {5, 10, 15, 20, 25, 30};
  auto Run1 = runSingle(P, {0x1000}, 0x1000, 32, Data);
  auto Run2 = runSingle(R, {0x1000}, 0x1000, 32, Data);
  ASSERT_TRUE(Run1.Result.Completed);
  ASSERT_TRUE(Run2.Result.Completed);
  EXPECT_EQ(Run1.OutputHash, Run2.OutputHash);
}
