//===- LivenessTest.cpp ---------------------------------------------------===//

#include "analysis/Liveness.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

/// Find the single register with debug name \p Name.
Reg regByName(const Program &P, const std::string &Name) {
  for (Reg R = 0; R < P.NumRegs; ++R)
    if (P.getRegName(R) == Name)
      return R;
  ADD_FAILURE() << "no register named " << Name;
  return NoReg;
}

} // namespace

TEST(LivenessTest, StraightLine) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    imm  b, 2
    add  c, a, b
    addi d, c, 1
    store [d+0], c
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  Reg A = regByName(P, "a"), C = regByName(P, "c");
  // a live after its def, dead after the add.
  EXPECT_TRUE(LI.instrLiveOut(0, 0).test(A));
  EXPECT_FALSE(LI.instrLiveOut(0, 2).test(A));
  // c live until the store.
  EXPECT_TRUE(LI.instrLiveOut(0, 3).test(C));
  EXPECT_FALSE(LI.instrLiveOut(0, 4).test(C));
}

TEST(LivenessTest, LoopCarriedValue) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  s, 0
    imm  n, 4
loop:
    add  s, s, n
    subi n, n, 1
    bnz  n, loop
    store [s+0], s
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  Reg S = regByName(P, "s");
  // s is live-in at the loop header from both entry and back edge.
  int LoopBlock = -1;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    if (P.blockName(B) == "loop")
      LoopBlock = B;
  ASSERT_GE(LoopBlock, 0);
  EXPECT_TRUE(LI.blockLiveIn(LoopBlock).test(S));
  EXPECT_TRUE(LI.blockLiveOut(LoopBlock).test(S));
}

TEST(LivenessTest, BranchMergesLiveness) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    imm  b, 2
    bz   a, other
    store [b+0], a
    halt
other:
    store [b+1], b
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  Reg A = regByName(P, "a"), B = regByName(P, "b");
  // Both a and b live across the branch (each used on some path).
  EXPECT_TRUE(LI.blockLiveOut(0).test(A) || LI.instrLiveOut(0, 2).test(A));
  EXPECT_TRUE(LI.instrLiveOut(0, 1).test(B));
}

TEST(LivenessTest, RegPmaxCountsCoLiveValues) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    imm b, 2
    imm c, 3
    add d, a, b
    add d, d, c
    store [d+0], d
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  // Peak: a, b, c live simultaneously. d is born exactly as a and b die, so
  // it can reuse one of their registers — the pressure stays 3.
  EXPECT_EQ(LI.getRegPmax(), 3);
}

TEST(LivenessTest, DeadDefStillOccupiesAtDef) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    imm dead, 9
    store [a+0], a
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  EXPECT_EQ(LI.getRegPmax(), 2) << "dead def co-occupies with a";
}

TEST(LivenessTest, UndefUseDetected) {
  Program P = parseOrDie(R"(
.thread t
main:
    add b, a, a
    store [b+0], b
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  Status S = checkNoUseOfUndef(P, LI);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.str().find("a"), std::string::npos);
}

TEST(LivenessTest, EntryLiveCoversEntryUses) {
  Program P = parseOrDie(R"(
.thread t
.entrylive a
main:
    add b, a, a
    store [b+0], b
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  EXPECT_TRUE(checkNoUseOfUndef(P, LI).ok());
}

TEST(LivenessTest, EverReferencedTracksUsage) {
  Program P;
  P.addBlock();
  Reg Used = P.addReg("used");
  Reg Unused = P.addReg("unused");
  (void)Unused;
  P.block(0).Instrs.push_back(Instruction::makeImm(Used, 1));
  P.block(0).Instrs.push_back(Instruction::makeHalt());
  LivenessInfo LI = computeLiveness(P);
  EXPECT_TRUE(LI.isEverReferenced(Used));
  EXPECT_FALSE(LI.isEverReferenced(Unused));
}
