//===- NSRTest.cpp - Non-switch regions and CSBs ---------------------------===//
//
// Includes a reconstruction of the paper's running example: Figure 3's two
// threads and Figure 4's frag checksum CFG.
//
//===----------------------------------------------------------------------===//

#include "analysis/NSR.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {
Reg regByName(const Program &P, const std::string &Name) {
  for (Reg R = 0; R < P.NumRegs; ++R)
    if (P.getRegName(R) == Name)
      return R;
  return NoReg;
}
} // namespace

TEST(NSRTest, NoCtxMeansOneNSR) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    bz  a, done
    addi a, a, 1
done:
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  EXPECT_EQ(N.getNumNSRs(), 1);
  EXPECT_TRUE(N.getCSBs().empty());
  EXPECT_EQ(N.getRegPCSBmax(), 0);
}

TEST(NSRTest, CtxSplitsBlockIntoTwoRegions) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    ctx
    store [a+0], a
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  // ctx and store are both boundaries: 3 regions (before ctx, between,
  // after store).
  EXPECT_EQ(N.getNumNSRs(), 3);
  ASSERT_EQ(N.getCSBs().size(), 2u);
  const CSB &First = N.getCSBs()[0];
  EXPECT_NE(First.PreNSR, First.PostNSR);
  // a crosses the ctx.
  EXPECT_TRUE(First.LiveAcross.test(regByName(P, "a")));
}

TEST(NSRTest, LoadDefNotLiveAcrossItsOwnBoundary) {
  // Transfer-register semantics (paper §3.2): the destination of a memory
  // read is not live across the read.
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    load v, [buf+0]
    store [buf+1], v
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  ASSERT_EQ(N.getCSBs().size(), 2u);
  Reg V = regByName(P, "v");
  EXPECT_FALSE(N.getCSBs()[0].LiveAcross.test(V))
      << "load destination must not cross its own CSB";
  EXPECT_TRUE(N.getCSBs()[0].LiveAcross.test(regByName(P, "buf")));
}

TEST(NSRTest, RegionsMergeAcrossCFGEdges) {
  // The region after the ctx in 'then' and the region in 'join' connect via
  // the CFG edge, forming one NSR (maximal connected subgraph).
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    bz  a, join
    ctx
    addi a, a, 1
join:
    store [a+0], a
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  // Regions: [entry..ctx) plus join reachable without ctx from entry — so
  // the pre-ctx region and join connect via the bz edge: one region; the
  // post-ctx region merges with join too, making them the SAME region.
  // Final region after the store is separate.
  EXPECT_EQ(N.getNumNSRs(), 2);
}

TEST(NSRTest, PaperFigure3Thread1) {
  // Paper Fig. 3, thread 1: a is live across a ctx_switch (boundary), b and
  // c live only between switches (internal). RegPCSBmax = 1 (only a
  // crosses), RegPmax = 2 via (a,b) or (a,c).
  Program P = parseOrDie(R"(
.thread fig3t1
main:
    imm  a, 1
    ctx
    bz   a, l1
    imm  b, 2
    add  t, a, b
    imm  c, 3
    br   l2
l1:
    imm  c, 4
    add  t, a, c
    imm  b, 5
l2:
    add  u, b, c
    store [u+0], u
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  // Two CSBs: the ctx and the final store.
  ASSERT_EQ(N.getCSBs().size(), 2u);
  const CSB &Ctx = N.getCSBs()[0];
  Reg A = regByName(P, "a");
  EXPECT_TRUE(Ctx.LiveAcross.test(A));
  EXPECT_EQ(Ctx.LiveAcross.count(), 1) << "only a crosses the ctx_switch";
}

TEST(NSRTest, RegPCSBmaxIsMaxCrossingCount) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm a, 1
    imm b, 2
    imm c, 3
    ctx
    add d, a, b
    add d, d, c
    ctx
    store [d+0], d
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  EXPECT_EQ(N.getRegPCSBmax(), 3) << "a, b, c cross the first ctx";
}

TEST(NSRTest, InstrPrePostNSRDifferOnlyAtBoundaries) {
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    imm  a, 1
    load b, [buf+0]
    add  c, a, b
    store [buf+1], c
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  EXPECT_EQ(N.instrPreNSR(0, 0), N.instrPostNSR(0, 0)) << "imm";
  EXPECT_NE(N.instrPreNSR(0, 1), N.instrPostNSR(0, 1)) << "load";
  EXPECT_EQ(N.instrPreNSR(0, 2), N.instrPostNSR(0, 2)) << "add";
  EXPECT_NE(N.instrPreNSR(0, 3), N.instrPostNSR(0, 3)) << "store";
}

TEST(NSRTest, SizesSumToInstructionCount) {
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    imm  s, 0
    imm  n, 3
loop:
    load w, [buf+0]
    add  s, s, w
    ctx
    subi n, n, 1
    bnz  n, loop
    store [buf+5], s
    halt
)");
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);
  int Total = 0;
  for (int Size : N.getNSRSizes())
    Total += Size;
  EXPECT_EQ(Total, P.countInstructions());
}
