//===- AnalysisDifferentialTest.cpp - Old-vs-new analysis equality --------===//
//
// The lockdown layer for the word-parallel/arena rewrite: every analysis
// result the allocator consumes — live sets, interference edges, NSR/CSB
// crossing sets, Fig. 7 bounds, renamed programs — must be *equal*, not
// just equivalent, between the frozen pre-rewrite reference implementation
// (ReferenceAnalysis.cpp) and the production stack. Runs over every fixture
// in examples/asm plus a few thousand generated programs spanning one-word
// and multi-word register files.
//
//===----------------------------------------------------------------------===//

#include "ReferenceAnalysis.h"

#include "alloc/BoundsEstimator.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/LiveRangeRenaming.h"
#include "analysis/Liveness.h"
#include "analysis/NSR.h"
#include "asmparse/AsmParser.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "workloads/ProgramGenerator.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// Renders a BitVector as its set-bit list, so a mismatch prints as a
/// readable diff instead of two opaque objects.
std::string bits(const BitVector &V) {
  std::string S = "{";
  V.forEach([&](int B) {
    if (S.size() > 1)
      S += ",";
    S += std::to_string(B);
  });
  return S + "}";
}

#define EXPECT_BITS_EQ(Prod, Ref, Where)                                       \
  EXPECT_TRUE((Prod) == (Ref)) << Where << ": got " << bits(Prod)              \
                               << " want " << bits(Ref)

/// Full-stack comparison on one (renamed, analyzable) program.
void expectSameAnalysis(const Program &P, const std::string &Where) {
  const ThreadAnalysis TA = analyzeThread(P);
  const refimpl::RefThreadAnalysis RT = refimpl::analyzeThread(P);
  const int N = P.NumRegs;

  // Live sets, per block and per instruction.
  ASSERT_EQ(P.getNumBlocks(), static_cast<int>(RT.Liveness.BlockLiveIn.size()))
      << Where;
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    EXPECT_BITS_EQ(TA.Liveness.blockLiveIn(B), RT.Liveness.blockLiveIn(B),
                   Where + " live-in b" + std::to_string(B));
    EXPECT_BITS_EQ(TA.Liveness.blockLiveOut(B), RT.Liveness.blockLiveOut(B),
                   Where + " live-out b" + std::to_string(B));
    const int Sz = static_cast<int>(P.block(B).Instrs.size());
    for (int I = 0; I < Sz; ++I)
      EXPECT_BITS_EQ(BitVector(TA.Liveness.instrLiveOut(B, I)),
                     RT.Liveness.instrLiveOut(B, I),
                     Where + " instr-live-out b" + std::to_string(B) + " i" + std::to_string(I));
  }
  EXPECT_EQ(TA.Liveness.getRegPmax(), RT.Liveness.RegPmax) << Where;
  for (Reg R = 0; R < N; ++R)
    EXPECT_EQ(TA.Liveness.isEverReferenced(R), RT.Liveness.isEverReferenced(R))
        << Where << " referenced r" << R;

  // NSR decomposition and CSB crossing sets.
  ASSERT_EQ(TA.NSRs.getNumNSRs(), RT.NSRs.NumNSRs) << Where;
  ASSERT_EQ(TA.NSRs.getCSBs().size(), RT.NSRs.CSBs.size()) << Where;
  for (size_t C = 0; C < RT.NSRs.CSBs.size(); ++C) {
    const CSB &PC = TA.NSRs.getCSBs()[C];
    const refimpl::RefCSB &RC = RT.NSRs.CSBs[C];
    EXPECT_EQ(PC.Block, RC.Block) << Where << " csb " << C;
    EXPECT_EQ(PC.InstrIndex, RC.InstrIndex) << Where << " csb " << C;
    EXPECT_EQ(PC.PreNSR, RC.PreNSR) << Where << " csb " << C;
    EXPECT_EQ(PC.PostNSR, RC.PostNSR) << Where << " csb " << C;
    EXPECT_BITS_EQ(PC.LiveAcross, RC.LiveAcross,
                   Where + " crossing set of csb " + std::to_string(C));
  }
  for (int B = 0; B < P.getNumBlocks(); ++B)
    for (int I = 0; I <= static_cast<int>(P.block(B).Instrs.size()); ++I)
      EXPECT_EQ(TA.NSRs.pointNSR(B, I), RT.NSRs.pointNSR(B, I))
          << Where << " point-NSR b" << B << " i" << I;
  EXPECT_EQ(TA.getRegPCSBmax(), RT.NSRs.RegPCSBmax) << Where;

  // Interference graphs: exact edge sets, both views.
  auto expectSameGraph = [&](const InterferenceGraph &PG,
                             const refimpl::RefInterferenceGraph &RG,
                             const char *Tag) {
    ASSERT_EQ(PG.getNumNodes(), RG.getNumNodes()) << Where << " " << Tag;
    EXPECT_EQ(PG.getNumEdges(), RG.getNumEdges()) << Where << " " << Tag;
    for (int A = 0; A < N; ++A) {
      EXPECT_EQ(PG.degree(A), RG.degree(A))
          << Where << " " << Tag << " degree of " << A;
      for (int B = A + 1; B < N; ++B)
        EXPECT_EQ(PG.hasEdge(A, B), RG.hasEdge(A, B))
            << Where << " " << Tag << " edge " << A << "-" << B;
    }
  };
  expectSameGraph(TA.GIG, RT.GIG, "GIG");
  expectSameGraph(TA.BIG, RT.BIG, "BIG");

  // Node classification feeding the Fig. 8 loop.
  EXPECT_BITS_EQ(TA.BoundaryNodes, RT.BoundaryNodes, Where + " boundary");
  EXPECT_BITS_EQ(TA.InternalNodes, RT.InternalNodes, Where + " internal");
  EXPECT_BITS_EQ(TA.ReferencedNodes, RT.ReferencedNodes, Where + " refd");
  EXPECT_EQ(TA.HomeNSR, RT.HomeNSR) << Where;
  ASSERT_EQ(TA.IIGMembers.size(), RT.IIGMembers.size()) << Where;
  for (size_t S = 0; S < RT.IIGMembers.size(); ++S)
    EXPECT_BITS_EQ(TA.IIGMembers[S], RT.IIGMembers[S],
                   Where + " IIG " + std::to_string(S) + " members");

  // Fig. 7 bounds, including the witness coloring (bit-identity, not just
  // equal bounds).
  const RegBounds PB = estimateRegBounds(TA);
  const refimpl::RefRegBounds RB = refimpl::estimateRegBounds(RT);
  EXPECT_EQ(PB.MinPR, RB.MinPR) << Where;
  EXPECT_EQ(PB.MaxPR, RB.MaxPR) << Where;
  EXPECT_EQ(PB.MinR, RB.MinR) << Where;
  EXPECT_EQ(PB.MaxR, RB.MaxR) << Where;
  EXPECT_EQ(PB.Colors, RB.Colors) << Where;
}

/// Renaming first (its output is what the analyses run on), then the
/// analysis stack on the renamed program.
void expectSamePipeline(const Program &P, const std::string &Where) {
  const Program Prod = renameLiveRanges(P);
  const Program Ref = refimpl::renameLiveRanges(P);
  ASSERT_EQ(programToString(Prod), programToString(Ref))
      << Where << ": renamed programs diverge";
  expectSameAnalysis(Prod, Where);
}

} // namespace

TEST(AnalysisDifferentialTest, ExampleFixtures) {
  std::vector<std::string> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(NPRAL_EXAMPLES_ASM_DIR))
    if (Entry.path().extension() == ".s")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  ASSERT_FALSE(Paths.empty());

  for (const std::string &Path : Paths) {
    ErrorOr<MultiThreadProgram> MTP = parseAssembly(readFile(Path));
    ASSERT_TRUE(MTP.ok()) << Path << ": " << MTP.status().message();
    for (const Program &P : (*MTP).Threads) {
      // Fixtures must be analyzable to be comparable; a fixture that fails
      // verification would silently shrink the oracle's coverage.
      ASSERT_TRUE(verifyProgram(P).ok()) << Path << " thread " << P.Name;
      expectSamePipeline(P, Path + " thread " + P.Name);
    }
  }
}

TEST(AnalysisDifferentialTest, GeneratedPrograms) {
  // 2000+ seeds. Sizes and CSB densities vary with the seed; register-file
  // shape is exercised from "fits in half a word" to "multi-word rows" (the
  // generator's long-lived count plus renaming drives NumRegs well past 64
  // at the dense end).
  constexpr int NumSeeds = 2048;
  for (int Seed = 0; Seed < NumSeeds; ++Seed) {
    GeneratorConfig Config;
    Config.TargetInstructions = 30 + (Seed % 5) * 25; // 30..130
    Config.CtxRatePerMille = 40 + (Seed % 7) * 60;    // 40..400
    Config.NumLongLived = 3 + (Seed % 11);            // 3..13
    Config.MaxDepth = 2 + (Seed % 3);
    const Program P =
        generateRandomProgram(0xD1FFu * static_cast<uint64_t>(Seed) + 17u,
                              Config);
    expectSamePipeline(P, "seed " + std::to_string(Seed));
  }
}
