//===- ReferenceAnalysis.cpp - Frozen pre-rewrite analysis oracle ---------===//
//
// Verbatim snapshot of src/analysis/{Liveness,NSR,InterferenceGraph,
// LiveRangeRenaming} and src/alloc/{ColoringUtils,BoundsEstimator} as of the
// commit preceding the word-parallel rewrite, with only mechanical renames
// (npral:: -> npral::refimpl::) and the block-level liveness fixpoint
// re-expressed as a naive round-robin iteration so the oracle does not link
// against the production dataflow solver. Do not "improve" this file: its
// value is that it stays behind while the production path moves.
//
//===----------------------------------------------------------------------===//

#include "ReferenceAnalysis.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace npral;
using namespace npral::refimpl;

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

RefLivenessInfo npral::refimpl::computeLiveness(const Program &P) {
  RefLivenessInfo LI;
  const int NumBlocks = P.getNumBlocks();
  const int NumRegs = P.NumRegs;

  LI.BlockLiveIn.assign(static_cast<size_t>(NumBlocks), BitVector(NumRegs));
  LI.BlockLiveOut.assign(static_cast<size_t>(NumBlocks), BitVector(NumRegs));
  LI.InstrLiveOut.resize(static_cast<size_t>(NumBlocks));
  LI.EverReferenced.assign(static_cast<size_t>(NumRegs), 0);

  // Per-block Gen (upward-exposed uses) and Kill (defs).
  std::vector<BitVector> Gen(static_cast<size_t>(NumBlocks),
                             BitVector(NumRegs));
  std::vector<BitVector> Kill(static_cast<size_t>(NumBlocks),
                              BitVector(NumRegs));
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (const Instruction &I : BB.Instrs) {
      std::array<Reg, 2> Uses;
      int N = I.getUses(Uses);
      for (int U = 0; U < N; ++U)
        if (!Kill[static_cast<size_t>(B)].test(Uses[static_cast<size_t>(U)]))
          Gen[static_cast<size_t>(B)].set(Uses[static_cast<size_t>(U)]);
      if (I.Def != NoReg)
        Kill[static_cast<size_t>(B)].set(I.Def);
    }
  }

  // Naive round-robin backward fixpoint. The liveness lattice has a unique
  // least fixpoint, so this matches any correct solver bit-for-bit.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B = NumBlocks - 1; B >= 0; --B) {
      BitVector Out(NumRegs);
      for (int S : P.successors(B))
        Out.unionWith(LI.BlockLiveIn[static_cast<size_t>(S)]);
      BitVector In = Out;
      In.subtract(Kill[static_cast<size_t>(B)]);
      In.unionWith(Gen[static_cast<size_t>(B)]);
      if (!(Out == LI.BlockLiveOut[static_cast<size_t>(B)]) ||
          !(In == LI.BlockLiveIn[static_cast<size_t>(B)])) {
        LI.BlockLiveOut[static_cast<size_t>(B)] = std::move(Out);
        LI.BlockLiveIn[static_cast<size_t>(B)] = std::move(In);
        Changed = true;
      }
    }
  }

  for (int B = 0; B < NumBlocks; ++B)
    for (const Instruction &I : P.block(B).Instrs) {
      std::array<Reg, 2> Uses;
      int N = I.getUses(Uses);
      for (int U = 0; U < N; ++U)
        LI.EverReferenced[static_cast<size_t>(Uses[static_cast<size_t>(U)])] =
            1;
      if (I.Def != NoReg)
        LI.EverReferenced[static_cast<size_t>(I.Def)] = 1;
    }

  // Per-instruction live-out by a backward scan of each block, and pressure.
  LI.RegPmax = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    const int N = static_cast<int>(BB.Instrs.size());
    LI.InstrLiveOut[static_cast<size_t>(B)].assign(static_cast<size_t>(N),
                                                   BitVector(NumRegs));
    BitVector Live = LI.BlockLiveOut[static_cast<size_t>(B)];
    for (int I = N - 1; I >= 0; --I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      LI.InstrLiveOut[static_cast<size_t>(B)][static_cast<size_t>(I)] = Live;

      int OutCount = Live.count();
      if (Inst.Def != NoReg && !Live.test(Inst.Def))
        ++OutCount;
      LI.RegPmax = std::max(LI.RegPmax, OutCount);

      if (Inst.Def != NoReg)
        Live.reset(Inst.Def);
      std::array<Reg, 2> Uses;
      int NU = Inst.getUses(Uses);
      for (int U = 0; U < NU; ++U)
        Live.set(Uses[static_cast<size_t>(U)]);
      LI.RegPmax = std::max(LI.RegPmax, Live.count());
    }
  }
  return LI;
}

//===----------------------------------------------------------------------===//
// NSR
//===----------------------------------------------------------------------===//

namespace {

class RefUnionFind {
public:
  explicit RefUnionFind(int N) : Parent(static_cast<size_t>(N)) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  int find(int X) {
    while (Parent[static_cast<size_t>(X)] != X) {
      Parent[static_cast<size_t>(X)] =
          Parent[static_cast<size_t>(Parent[static_cast<size_t>(X)])];
      X = Parent[static_cast<size_t>(X)];
    }
    return X;
  }

  void unite(int A, int B) {
    A = find(A);
    B = find(B);
    if (A != B)
      Parent[static_cast<size_t>(A)] = B;
  }

private:
  std::vector<int> Parent;
};

} // namespace

RefNSRInfo npral::refimpl::computeNSRs(const Program &P,
                                       const RefLivenessInfo &LI) {
  RefNSRInfo Info;
  const int NumBlocks = P.getNumBlocks();

  Info.PointBase.resize(static_cast<size_t>(NumBlocks));
  int TotalPoints = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    Info.PointBase[static_cast<size_t>(B)] = TotalPoints;
    TotalPoints += static_cast<int>(P.block(B).Instrs.size()) + 1;
  }

  RefUnionFind UF(TotalPoints);
  auto pointId = [&](int B, int I) {
    return Info.PointBase[static_cast<size_t>(B)] + I;
  };

  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I)
      if (!BB.Instrs[static_cast<size_t>(I)].causesCtxSwitch())
        UF.unite(pointId(B, I), pointId(B, I + 1));
  }
  for (int B = 0; B < NumBlocks; ++B)
    for (int S : P.successors(B))
      UF.unite(pointId(B, static_cast<int>(P.block(B).Instrs.size())),
               pointId(S, 0));

  Info.PointNSR.assign(static_cast<size_t>(TotalPoints), -1);
  std::vector<int> RootToNSR(static_cast<size_t>(TotalPoints), -1);
  int NextNSR = 0;
  for (int Pt = 0; Pt < TotalPoints; ++Pt) {
    int Root = UF.find(Pt);
    if (RootToNSR[static_cast<size_t>(Root)] < 0)
      RootToNSR[static_cast<size_t>(Root)] = NextNSR++;
    Info.PointNSR[static_cast<size_t>(Pt)] =
        RootToNSR[static_cast<size_t>(Root)];
  }
  Info.NumNSRs = NextNSR;

  Info.NSRSizes.assign(static_cast<size_t>(NextNSR), 0);
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I)
      ++Info.NSRSizes[static_cast<size_t>(Info.pointNSR(B, I))];
  }

  Info.RegPCSBmax = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      if (!Inst.causesCtxSwitch())
        continue;
      RefCSB Boundary;
      Boundary.Block = B;
      Boundary.InstrIndex = I;
      Boundary.PreNSR = Info.pointNSR(B, I);
      Boundary.PostNSR = Info.pointNSR(B, I + 1);
      Boundary.LiveAcross = LI.instrLiveOut(B, I);
      if (Inst.Def != NoReg)
        Boundary.LiveAcross.reset(Inst.Def);
      Info.RegPCSBmax =
          std::max(Info.RegPCSBmax, Boundary.LiveAcross.count());
      Info.CSBs.push_back(std::move(Boundary));
    }
  }
  return Info;
}

//===----------------------------------------------------------------------===//
// Interference graph + thread analysis
//===----------------------------------------------------------------------===//

std::vector<int>
RefInterferenceGraph::smallestLastOrder(const BitVector &Members) const {
  const int N = getNumNodes();
  std::vector<int> ResidualDeg(static_cast<size_t>(N), 0);
  std::vector<char> InGraph(static_cast<size_t>(N), 0);
  std::vector<int> MemberList;
  Members.forEach([&](int M) {
    InGraph[static_cast<size_t>(M)] = 1;
    MemberList.push_back(M);
  });
  for (int M : MemberList) {
    int D = 0;
    neighbors(M).forEach([&](int Nb) {
      if (InGraph[static_cast<size_t>(Nb)])
        ++D;
    });
    ResidualDeg[static_cast<size_t>(M)] = D;
  }

  std::vector<int> Removal;
  Removal.reserve(MemberList.size());
  std::vector<char> Removed(static_cast<size_t>(N), 0);
  for (size_t Step = 0; Step < MemberList.size(); ++Step) {
    int Best = -1;
    for (int M : MemberList) {
      if (Removed[static_cast<size_t>(M)])
        continue;
      if (Best < 0 || ResidualDeg[static_cast<size_t>(M)] <
                          ResidualDeg[static_cast<size_t>(Best)])
        Best = M;
    }
    assert(Best >= 0 && "no removable node");
    Removed[static_cast<size_t>(Best)] = 1;
    Removal.push_back(Best);
    neighbors(Best).forEach([&](int Nb) {
      if (InGraph[static_cast<size_t>(Nb)] && !Removed[static_cast<size_t>(Nb)])
        --ResidualDeg[static_cast<size_t>(Nb)];
    });
  }
  std::reverse(Removal.begin(), Removal.end());
  return Removal;
}

RefThreadAnalysis npral::refimpl::analyzeThread(const Program &P) {
  RefThreadAnalysis TA;
  TA.Liveness = computeLiveness(P);
  TA.NSRs = computeNSRs(P, TA.Liveness);

  const int NumRegs = P.NumRegs;
  TA.GIG.reset(NumRegs);
  TA.BIG.reset(NumRegs);
  TA.BoundaryNodes.resize(NumRegs);
  TA.InternalNodes.resize(NumRegs);
  TA.ReferencedNodes.resize(NumRegs);
  TA.HomeNSR.assign(static_cast<size_t>(NumRegs), -1);

  for (Reg R = 0; R < NumRegs; ++R)
    if (TA.Liveness.isEverReferenced(R))
      TA.ReferencedNodes.set(R);

  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      if (Inst.Def == NoReg)
        continue;
      TA.Liveness.instrLiveOut(B, I).forEach([&](int Live) {
        TA.GIG.addEdge(Inst.Def, Live);
      });
    }
  }
  {
    const BitVector &EntryLive = TA.Liveness.blockLiveIn(P.getEntryBlock());
    std::vector<int> EntryRegs = EntryLive.toVector();
    for (size_t A = 0; A < EntryRegs.size(); ++A)
      for (size_t B2 = A + 1; B2 < EntryRegs.size(); ++B2)
        TA.GIG.addEdge(EntryRegs[A], EntryRegs[B2]);
  }

  for (const RefCSB &Boundary : TA.NSRs.CSBs) {
    std::vector<int> Crossing = Boundary.LiveAcross.toVector();
    for (int R : Crossing)
      TA.BoundaryNodes.set(R);
    for (size_t A = 0; A < Crossing.size(); ++A)
      for (size_t B2 = A + 1; B2 < Crossing.size(); ++B2)
        TA.BIG.addEdge(Crossing[A], Crossing[B2]);
  }

  TA.InternalNodes = TA.ReferencedNodes;
  TA.InternalNodes.subtract(TA.BoundaryNodes);

  TA.IIGMembers.assign(static_cast<size_t>(TA.NSRs.NumNSRs),
                       BitVector(NumRegs));
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      auto touch = [&](Reg R, int NSR) {
        if (R == NoReg || !TA.InternalNodes.test(R))
          return;
        int &Home = TA.HomeNSR[static_cast<size_t>(R)];
        assert((Home == -1 || Home == NSR) &&
               "internal live range spans multiple NSRs");
        Home = NSR;
        TA.IIGMembers[static_cast<size_t>(NSR)].set(R);
      };
      touch(Inst.Def, TA.NSRs.instrPostNSR(B, I));
      touch(Inst.Use1, TA.NSRs.instrPreNSR(B, I));
      touch(Inst.Use2, TA.NSRs.instrPreNSR(B, I));
    }
  }
  TA.Liveness.blockLiveIn(P.getEntryBlock()).forEach([&](int R) {
    if (!TA.InternalNodes.test(R))
      return;
    int &Home = TA.HomeNSR[static_cast<size_t>(R)];
    int EntryNSR = TA.NSRs.pointNSR(P.getEntryBlock(), 0);
    assert((Home == -1 || Home == EntryNSR) &&
           "internal live range spans multiple NSRs");
    Home = EntryNSR;
    TA.IIGMembers[static_cast<size_t>(EntryNSR)].set(R);
  });

  return TA;
}

//===----------------------------------------------------------------------===//
// Coloring helpers + bounds estimation
//===----------------------------------------------------------------------===//

namespace {

constexpr int RefNoColor = -1;
using RefColoring = std::vector<int>;

int refColorMinimally(const RefInterferenceGraph &IG, const BitVector &Members,
                      RefColoring &Colors) {
  if (Colors.size() != static_cast<size_t>(IG.getNumNodes()))
    Colors.assign(static_cast<size_t>(IG.getNumNodes()), RefNoColor);

  int MaxUsed = -1;
  for (int Node : IG.smallestLastOrder(Members)) {
    std::vector<char> Used;
    IG.neighbors(Node).forEach([&](int Nb) {
      int C = Colors[static_cast<size_t>(Nb)];
      if (C < 0)
        return;
      if (C >= static_cast<int>(Used.size()))
        Used.resize(static_cast<size_t>(C) + 1, 0);
      Used[static_cast<size_t>(C)] = 1;
    });
    int C = 0;
    while (C < static_cast<int>(Used.size()) && Used[static_cast<size_t>(C)])
      ++C;
    Colors[static_cast<size_t>(Node)] = C;
    MaxUsed = std::max(MaxUsed, C);
  }
  return MaxUsed + 1;
}

int refPickFreeColor(const RefInterferenceGraph &IG, const RefColoring &Colors,
                     int Node, int Lo, int Hi, int PreferFrom = -1) {
  if (Lo >= Hi)
    return RefNoColor;
  BitVector Used(Hi);
  IG.neighbors(Node).forEach([&](int Nb) {
    int C = Colors[static_cast<size_t>(Nb)];
    if (C >= 0 && C < Hi)
      Used.set(C);
  });
  auto scan = [&](int Begin, int End) -> int {
    for (int C = Begin; C < End; ++C)
      if (!Used.test(C))
        return C;
    return RefNoColor;
  };
  if (PreferFrom >= Lo && PreferFrom < Hi) {
    int C = scan(PreferFrom, Hi);
    if (C != RefNoColor)
      return C;
    return scan(Lo, PreferFrom);
  }
  return scan(Lo, Hi);
}

bool refRecolorViaNeighbor(const RefInterferenceGraph &IG, RefColoring &Colors,
                           int Node, int Lo, int Hi,
                           const std::vector<int> &BandLo,
                           const std::vector<int> &BandHi) {
  for (int C = Lo; C < Hi; ++C) {
    int Blocker = -1;
    int NumBlockers = 0;
    IG.neighbors(Node).forEach([&](int Nb) {
      if (Colors[static_cast<size_t>(Nb)] == C) {
        Blocker = Nb;
        ++NumBlockers;
      }
    });
    if (NumBlockers != 1)
      continue;
    int NbLo = BandLo[static_cast<size_t>(Blocker)];
    int NbHi = BandHi[static_cast<size_t>(Blocker)];
    int OldColor = Colors[static_cast<size_t>(Blocker)];
    Colors[static_cast<size_t>(Blocker)] = RefNoColor;
    int NewColor = refPickFreeColor(IG, Colors, Blocker, NbLo, NbHi);
    if (NewColor == RefNoColor || NewColor == C) {
      Colors[static_cast<size_t>(Blocker)] = OldColor;
      continue;
    }
    Colors[static_cast<size_t>(Blocker)] = NewColor;
    Colors[static_cast<size_t>(Node)] = C;
    return true;
  }
  return false;
}

} // namespace

RefRegBounds npral::refimpl::estimateRegBounds(const RefThreadAnalysis &TA) {
  RefRegBounds Bounds;
  Bounds.MinR = TA.getRegPmax();
  Bounds.MinPR = TA.getRegPCSBmax();

  const RefInterferenceGraph &GIG = TA.GIG;
  const int N = GIG.getNumNodes();
  RefColoring Colors(static_cast<size_t>(N), RefNoColor);

  RefColoring BIGColors(static_cast<size_t>(N), RefNoColor);
  int PR = refColorMinimally(TA.BIG, TA.BoundaryNodes, BIGColors);
  TA.BoundaryNodes.forEach([&](int Node) {
    Colors[static_cast<size_t>(Node)] = BIGColors[static_cast<size_t>(Node)];
  });

  int R = PR;
  for (const BitVector &Members : TA.IIGMembers) {
    if (Members.none())
      continue;
    RefColoring IIGColors(static_cast<size_t>(N), RefNoColor);
    int Used = refColorMinimally(GIG, Members, IIGColors);
    R = std::max(R, Used);
    Members.forEach([&](int Node) {
      Colors[static_cast<size_t>(Node)] = IIGColors[static_cast<size_t>(Node)];
    });
  }

  std::vector<int> BandLo(static_cast<size_t>(N), 0);
  std::vector<int> BandHi(static_cast<size_t>(N), 0);
  auto refreshBands = [&]() {
    for (int Node = 0; Node < N; ++Node)
      BandHi[static_cast<size_t>(Node)] =
          TA.BoundaryNodes.test(Node) ? PR : R;
  };
  refreshBands();

  auto findConflictEdge = [&](int &OutA, int &OutB) -> bool {
    for (int A = 0; A < N; ++A) {
      int CA = Colors[static_cast<size_t>(A)];
      if (CA == RefNoColor)
        continue;
      bool Found = false;
      GIG.neighbors(A).forEach([&](int B) {
        if (!Found && B > A && Colors[static_cast<size_t>(B)] == CA) {
          OutA = A;
          OutB = B;
          Found = true;
        }
      });
      if (Found)
        return true;
    }
    return false;
  };

  int ConflictA, ConflictB;
  while (findConflictEdge(ConflictA, ConflictB)) {
    auto tryRecolor = [&](int Node) -> bool {
      int Lo = BandLo[static_cast<size_t>(Node)];
      int Hi = BandHi[static_cast<size_t>(Node)];
      int Old = Colors[static_cast<size_t>(Node)];
      Colors[static_cast<size_t>(Node)] = RefNoColor;
      int C = refPickFreeColor(GIG, Colors, Node, Lo, Hi);
      if (C != RefNoColor) {
        Colors[static_cast<size_t>(Node)] = C;
        return true;
      }
      Colors[static_cast<size_t>(Node)] = Old;
      return false;
    };

    int First = TA.BoundaryNodes.test(ConflictB) ? ConflictA : ConflictB;
    int Second = First == ConflictA ? ConflictB : ConflictA;
    if (tryRecolor(First) || tryRecolor(Second))
      continue;
    if (refRecolorViaNeighbor(GIG, Colors, First,
                              BandLo[static_cast<size_t>(First)],
                              BandHi[static_cast<size_t>(First)], BandLo,
                              BandHi))
      continue;
    if (refRecolorViaNeighbor(GIG, Colors, Second,
                              BandLo[static_cast<size_t>(Second)],
                              BandHi[static_cast<size_t>(Second)], BandLo,
                              BandHi))
      continue;

    bool FirstBoundary = TA.BoundaryNodes.test(First);
    if (!FirstBoundary) {
      ++R;
      Colors[static_cast<size_t>(First)] = R - 1;
    } else {
      assert(TA.BoundaryNodes.test(Second) && "expected boundary conflict");
      ++PR;
      R = std::max(R, PR);
      Colors[static_cast<size_t>(First)] = PR - 1;
    }
    refreshBands();
  }

  Bounds.MaxPR = PR;
  Bounds.MaxR = std::max(R, PR);
  Bounds.Colors = std::move(Colors);

  assert(Bounds.MaxPR >= Bounds.MinPR && "MaxPR below MinPR");
  assert(Bounds.MaxR >= Bounds.MinR && "MaxR below MinR");
  return Bounds;
}

//===----------------------------------------------------------------------===//
// Live-range renaming
//===----------------------------------------------------------------------===//

namespace {

/// Union-find over program points (same layout as NSR construction: block b
/// contributes size(b)+1 points).
class RefPointUnionFind {
public:
  RefPointUnionFind(const Program &P) {
    PointBase.resize(static_cast<size_t>(P.getNumBlocks()));
    int Total = 0;
    for (int B = 0; B < P.getNumBlocks(); ++B) {
      PointBase[static_cast<size_t>(B)] = Total;
      Total += static_cast<int>(P.block(B).Instrs.size()) + 1;
    }
    Parent.resize(static_cast<size_t>(Total));
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  int pointId(int B, int I) const {
    return PointBase[static_cast<size_t>(B)] + I;
  }

  int find(int X) {
    while (Parent[static_cast<size_t>(X)] != X) {
      Parent[static_cast<size_t>(X)] =
          Parent[static_cast<size_t>(Parent[static_cast<size_t>(X)])];
      X = Parent[static_cast<size_t>(X)];
    }
    return X;
  }

  void unite(int A, int B) {
    A = find(A);
    B = find(B);
    if (A != B)
      Parent[static_cast<size_t>(A)] = B;
  }

private:
  std::vector<int> PointBase;
  std::vector<int> Parent;
};

} // namespace

Program npral::refimpl::renameLiveRanges(const Program &P) {
  Program Out = P;
  RefLivenessInfo LI = computeLiveness(Out);

  auto liveAt = [&](Reg R, int B, int I) {
    const BasicBlock &BB = Out.block(B);
    if (I == static_cast<int>(BB.Instrs.size()))
      return LI.blockLiveOut(B).test(R);
    if (I == 0)
      return LI.blockLiveIn(B).test(R);
    return LI.instrLiveOut(B, I - 1).test(R);
  };

  const int OrigRegs = P.NumRegs;

  for (Reg R = 0; R < OrigRegs; ++R) {
    RefPointUnionFind UF(Out);
    for (int B = 0; B < Out.getNumBlocks(); ++B) {
      const BasicBlock &BB = Out.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I)
        if (liveAt(R, B, I) && liveAt(R, B, I + 1))
          UF.unite(UF.pointId(B, I), UF.pointId(B, I + 1));
      int EndPoint = static_cast<int>(BB.Instrs.size());
      for (int S : Out.successors(B))
        if (liveAt(R, B, EndPoint) && liveAt(R, S, 0))
          UF.unite(UF.pointId(B, EndPoint), UF.pointId(S, 0));
    }

    std::vector<int> RootToReg;
    std::vector<int> Roots;
    bool KeepOriginalUsed = false;
    auto regForRoot = [&](int Root) -> Reg {
      for (size_t K = 0; K < Roots.size(); ++K)
        if (Roots[K] == Root)
          return RootToReg[K];
      Reg Fresh;
      if (!KeepOriginalUsed) {
        Fresh = R;
        KeepOriginalUsed = true;
      } else {
        Fresh = Out.addReg(Out.getRegName(R) + ".w" +
                           std::to_string(Roots.size()));
      }
      Roots.push_back(Root);
      RootToReg.push_back(Fresh);
      return Fresh;
    };

    if (LI.blockLiveIn(Out.getEntryBlock()).test(R))
      (void)regForRoot(UF.find(UF.pointId(Out.getEntryBlock(), 0)));

    for (int B = 0; B < Out.getNumBlocks(); ++B) {
      BasicBlock &BB = Out.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
        Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
        if (Inst.Use1 == R || Inst.Use2 == R) {
          assert(liveAt(R, B, I) && "use of dead register");
          Reg NewReg = regForRoot(UF.find(UF.pointId(B, I)));
          if (Inst.Use1 == R)
            Inst.Use1 = NewReg;
          if (Inst.Use2 == R)
            Inst.Use2 = NewReg;
        }
        if (Inst.Def == R) {
          Reg NewReg;
          if (liveAt(R, B, I + 1)) {
            NewReg = regForRoot(UF.find(UF.pointId(B, I + 1)));
          } else if (!KeepOriginalUsed) {
            NewReg = R;
            KeepOriginalUsed = true;
          } else {
            NewReg = Out.addReg(Out.getRegName(R) + ".dead");
          }
          Inst.Def = NewReg;
        }
      }
    }
  }

  return Out;
}
