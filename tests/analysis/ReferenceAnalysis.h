//===- ReferenceAnalysis.h - Frozen pre-rewrite analysis oracle -*- C++ -*-===//
///
/// \file
/// A verbatim snapshot of the analysis stack as it existed before the
/// word-parallel/arena rewrite (PR 7), kept alive as a differential oracle.
/// Everything here is deliberately self-contained: it has its own naive
/// liveness fixpoint, its own edge-set interference graph, its own
/// union-find NSR construction and its own greedy coloring helpers, so a
/// bug introduced into the production path cannot silently infect the
/// reference it is being compared against.
///
/// Only `tests/analysis/AnalysisDifferentialTest.cpp` should include this.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TESTS_ANALYSIS_REFERENCEANALYSIS_H
#define NPRAL_TESTS_ANALYSIS_REFERENCEANALYSIS_H

#include "ir/Program.h"
#include "support/BitVector.h"

#include <string>
#include <vector>

namespace npral {
namespace refimpl {

/// Snapshot of LivenessInfo: per-block live-in/out plus per-instruction
/// live-out as one heap BitVector per instruction (the representation the
/// rewrite replaced with a flat word pool).
struct RefLivenessInfo {
  std::vector<BitVector> BlockLiveIn;
  std::vector<BitVector> BlockLiveOut;
  std::vector<std::vector<BitVector>> InstrLiveOut;
  std::vector<char> EverReferenced;
  int RegPmax = 0;

  const BitVector &blockLiveIn(int B) const {
    return BlockLiveIn[static_cast<size_t>(B)];
  }
  const BitVector &blockLiveOut(int B) const {
    return BlockLiveOut[static_cast<size_t>(B)];
  }
  const BitVector &instrLiveOut(int B, int I) const {
    return InstrLiveOut[static_cast<size_t>(B)][static_cast<size_t>(I)];
  }
  bool isEverReferenced(Reg R) const {
    return EverReferenced[static_cast<size_t>(R)];
  }
};

/// Naive round-robin backward liveness fixpoint (not the worklist solver —
/// the oracle must not share the production solver).
RefLivenessInfo computeLiveness(const Program &P);

/// Snapshot of the CSB record.
struct RefCSB {
  int Block = NoBlock;
  int InstrIndex = 0;
  int PreNSR = -1;
  int PostNSR = -1;
  BitVector LiveAcross;
};

/// Snapshot of NSRInfo.
struct RefNSRInfo {
  int NumNSRs = 0;
  std::vector<RefCSB> CSBs;
  std::vector<int> PointBase;
  std::vector<int> PointNSR;
  std::vector<int> NSRSizes;
  int RegPCSBmax = 0;

  int pointNSR(int B, int I) const {
    return PointNSR[static_cast<size_t>(PointBase[static_cast<size_t>(B)] +
                                        I)];
  }
  int instrPreNSR(int B, int I) const { return pointNSR(B, I); }
  int instrPostNSR(int B, int I) const { return pointNSR(B, I + 1); }
};

RefNSRInfo computeNSRs(const Program &P, const RefLivenessInfo &LI);

/// Snapshot of the square bit-matrix interference graph with per-edge
/// test-and-set insertion.
class RefInterferenceGraph {
public:
  RefInterferenceGraph() = default;

  void reset(int NumNodes) {
    Adj.assign(static_cast<size_t>(NumNodes), BitVector(NumNodes));
    NumEdges = 0;
  }

  int getNumNodes() const { return static_cast<int>(Adj.size()); }

  void addEdge(int A, int B) {
    if (A == B)
      return;
    if (Adj[static_cast<size_t>(A)].test(B))
      return;
    Adj[static_cast<size_t>(A)].set(B);
    Adj[static_cast<size_t>(B)].set(A);
    ++NumEdges;
  }

  bool hasEdge(int A, int B) const {
    return Adj[static_cast<size_t>(A)].test(B);
  }
  int degree(int N) const { return Adj[static_cast<size_t>(N)].count(); }
  const BitVector &neighbors(int N) const {
    return Adj[static_cast<size_t>(N)];
  }
  int getNumEdges() const { return NumEdges; }

  std::vector<int> smallestLastOrder(const BitVector &Members) const;

private:
  std::vector<BitVector> Adj;
  int NumEdges = 0;
};

/// Snapshot of ThreadAnalysis.
struct RefThreadAnalysis {
  RefLivenessInfo Liveness;
  RefNSRInfo NSRs;
  RefInterferenceGraph GIG;
  RefInterferenceGraph BIG;
  BitVector BoundaryNodes;
  BitVector InternalNodes;
  std::vector<int> HomeNSR;
  std::vector<BitVector> IIGMembers;
  BitVector ReferencedNodes;

  int getRegPmax() const { return Liveness.RegPmax; }
  int getRegPCSBmax() const { return NSRs.RegPCSBmax; }
};

RefThreadAnalysis analyzeThread(const Program &P);

/// Snapshot of the Fig. 7 bounds estimation (with the coloring helpers it
/// rode on).
struct RefRegBounds {
  int MinPR = 0;
  int MaxPR = 0;
  int MinR = 0;
  int MaxR = 0;
  std::vector<int> Colors;
};

RefRegBounds estimateRegBounds(const RefThreadAnalysis &TA);

/// Snapshot of the per-original-register union-find live-range renaming.
Program renameLiveRanges(const Program &P);

} // namespace refimpl
} // namespace npral

#endif // NPRAL_TESTS_ANALYSIS_REFERENCEANALYSIS_H
