//===- TraceEngineTest.cpp - Tracing, export, and strict validation -------===//

#include "trace/TraceEngine.h"
#include "trace/TraceValidator.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

using namespace npral;

namespace {

/// The engine is process-global; every test starts from a clean, disabled
/// generation so earlier tests cannot leak events into later ones.
class TraceEngineTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceEngine::global().setEnabled(false);
    TraceEngine::global().clear();
  }
  void TearDown() override {
    TraceEngine::global().setEnabled(false);
    TraceEngine::global().clear();
  }

  static std::string exportAll() {
    std::ostringstream OS;
    TraceEngine::global().exportJSON(OS);
    return OS.str();
  }
};

} // namespace

TEST_F(TraceEngineTest, DisabledRecordsNothing) {
  ASSERT_FALSE(TraceEngine::global().isEnabled());
  {
    NPRAL_TRACE_SPAN("cat", "span");
    NPRAL_TRACE_INSTANT("cat", "hit");
  }
  EXPECT_EQ(TraceEngine::global().eventCount(), 0);
  // The empty export is still a valid (empty) trace document.
  EXPECT_TRUE(validateChromeTrace(exportAll()).ok());
}

TEST_F(TraceEngineTest, SpanAndInstantRoundTrip) {
  TraceEngine::global().setEnabled(true);
  {
    NPRAL_TRACE_SPAN_ARGS("alloc", "work", {"key", "value"});
    NPRAL_TRACE_INSTANT("alloc", "tick", {{"n", "1"}});
  }
  TraceEngine::global().setEnabled(false);
  EXPECT_EQ(TraceEngine::global().eventCount(), 3);

  const std::string JSON = exportAll();
  ASSERT_TRUE(validateChromeTrace(JSON).ok())
      << validateChromeTrace(JSON).str() << "\n"
      << JSON;
  ErrorOr<std::vector<ParsedTraceEvent>> Events = parseChromeTrace(JSON);
  ASSERT_TRUE(Events.ok()) << Events.status().str();
  ASSERT_EQ(Events->size(), 3u);

  // Per-buffer append order: B, i, E — all on one track.
  EXPECT_EQ((*Events)[0].Ph, 'B');
  EXPECT_EQ((*Events)[0].Name, "work");
  EXPECT_EQ((*Events)[0].Cat, "alloc");
  ASSERT_EQ((*Events)[0].Args.size(), 1u);
  EXPECT_EQ((*Events)[0].Args[0].first, "key");
  EXPECT_EQ((*Events)[0].Args[0].second, "value");
  EXPECT_EQ((*Events)[1].Ph, 'i');
  EXPECT_EQ((*Events)[1].Name, "tick");
  EXPECT_EQ((*Events)[2].Ph, 'E');
  EXPECT_EQ((*Events)[2].Name, "work");
  EXPECT_EQ((*Events)[0].Tid, (*Events)[2].Tid);
  EXPECT_LE((*Events)[0].Ts, (*Events)[2].Ts);
}

TEST_F(TraceEngineTest, ArgsAreNotEvaluatedWhenDisabled) {
  int Evaluations = 0;
  auto Expensive = [&Evaluations]() {
    ++Evaluations;
    return std::string("x");
  };
  {
    NPRAL_TRACE_SPAN_ARGS("cat", "span", {"k", Expensive()});
    NPRAL_TRACE_INSTANT("cat", "i", {{"k", Expensive()}});
  }
  EXPECT_EQ(Evaluations, 0);
  TraceEngine::global().setEnabled(true);
  {
    NPRAL_TRACE_SPAN_ARGS("cat", "span", {"k", Expensive()});
  }
  EXPECT_EQ(Evaluations, 1);
}

TEST_F(TraceEngineTest, ClearStartsANewGeneration) {
  TraceEngine::global().setEnabled(true);
  NPRAL_TRACE_INSTANT("cat", "before");
  EXPECT_EQ(TraceEngine::global().eventCount(), 1);
  TraceEngine::global().clear();
  EXPECT_EQ(TraceEngine::global().eventCount(), 0);
  NPRAL_TRACE_INSTANT("cat", "after");
  EXPECT_EQ(TraceEngine::global().eventCount(), 1);
  ErrorOr<std::vector<ParsedTraceEvent>> Events =
      parseChromeTrace(exportAll());
  ASSERT_TRUE(Events.ok());
  ASSERT_EQ(Events->size(), 1u);
  EXPECT_EQ((*Events)[0].Name, "after");
}

TEST_F(TraceEngineTest, SpanOpenAcrossClearDropsItsEnd) {
  // A span that saw clear() must not emit a dangling 'E' into the new
  // generation — that would unbalance every later export.
  TraceEngine::global().setEnabled(true);
  {
    TraceSpan Span("cat", "stale");
    TraceEngine::global().clear();
    NPRAL_TRACE_INSTANT("cat", "fresh");
  }
  const std::string JSON = exportAll();
  EXPECT_TRUE(validateChromeTrace(JSON).ok())
      << validateChromeTrace(JSON).str();
  ErrorOr<std::vector<ParsedTraceEvent>> Events = parseChromeTrace(JSON);
  ASSERT_TRUE(Events.ok());
  ASSERT_EQ(Events->size(), 1u);
  EXPECT_EQ((*Events)[0].Name, "fresh");
}

TEST_F(TraceEngineTest, ConcurrentThreadsStayBalanced) {
  // Each OS thread writes its own buffer; the export must be a valid trace
  // with balanced spans per track. Run under TSan in CI.
  constexpr int NumThreads = 8;
  constexpr int SpansPerThread = 200;
  TraceEngine::global().setEnabled(true);
  std::vector<std::thread> Workers;
  for (int W = 0; W < NumThreads; ++W)
    Workers.emplace_back([] {
      for (int I = 0; I < SpansPerThread; ++I) {
        NPRAL_TRACE_SPAN("worker", "unit");
        NPRAL_TRACE_INSTANT("worker", "tick");
      }
    });
  for (std::thread &W : Workers)
    W.join();
  TraceEngine::global().setEnabled(false);

  EXPECT_EQ(TraceEngine::global().eventCount(),
            static_cast<int64_t>(NumThreads) * SpansPerThread * 3);
  const std::string JSON = exportAll();
  Status S = validateChromeTrace(JSON);
  EXPECT_TRUE(S.ok()) << S.str();
}

TEST_F(TraceEngineTest, ContentKeyIgnoresTimestampAndTrack) {
  ParsedTraceEvent A, B;
  A.Ph = B.Ph = 'i';
  A.Name = B.Name = "tick";
  A.Cat = B.Cat = "cat";
  A.Args = {{"b", "2"}, {"a", "1"}};
  B.Args = {{"a", "1"}, {"b", "2"}}; // sorted inside contentKey
  A.Ts = 1.0;
  B.Ts = 99.0;
  A.Tid = 1;
  B.Tid = 7;
  EXPECT_EQ(A.contentKey(), B.contentKey());
  B.Args = {{"a", "1"}, {"b", "3"}};
  EXPECT_NE(A.contentKey(), B.contentKey());
}

//===----------------------------------------------------------------------===//
// Strict validator: accepted forms.
//===----------------------------------------------------------------------===//

TEST(TraceValidatorTest, AcceptsMinimalForms) {
  EXPECT_TRUE(validateChromeTrace("[]").ok());
  EXPECT_TRUE(validateChromeTrace("{\"traceEvents\": []}").ok());
  EXPECT_TRUE(validateChromeTrace(
                  "{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["
                  "{\"ph\": \"i\", \"name\": \"a\", \"ts\": 1.5, "
                  "\"pid\": 1, \"tid\": 2}]}")
                  .ok());
  // Balanced B/E pair with an X event on another track.
  Status S = validateChromeTrace(
      "[{\"ph\": \"B\", \"name\": \"s\", \"ts\": 0, \"pid\": 1, \"tid\": 1},"
      " {\"ph\": \"E\", \"name\": \"s\", \"ts\": 2, \"pid\": 1, \"tid\": 1},"
      " {\"ph\": \"X\", \"name\": \"x\", \"ts\": 0, \"dur\": 5, \"pid\": 1, "
      "\"tid\": 2}]");
  EXPECT_TRUE(S.ok()) << S.str();
}

//===----------------------------------------------------------------------===//
// Strict validator: every rejection the tracer must never trigger.
//===----------------------------------------------------------------------===//

namespace {

void expectInvalid(const std::string &JSON) {
  EXPECT_FALSE(validateChromeTrace(JSON).ok()) << "accepted: " << JSON;
}

} // namespace

TEST(TraceValidatorTest, RejectsMalformedJSON) {
  expectInvalid("");
  expectInvalid("hello");
  expectInvalid("[");
  expectInvalid("[] trailing");
  expectInvalid("{\"traceEvents\": [],}");
  // Duplicate traceEvents keys would silently drop half the trace.
  expectInvalid("{\"traceEvents\": [], \"traceEvents\": []}");
}

TEST(TraceValidatorTest, RejectsMissingOrBadFields) {
  // Missing ph / name / ts / pid / tid, one at a time.
  expectInvalid("[{\"name\": \"a\", \"ts\": 0, \"pid\": 1, \"tid\": 1}]");
  expectInvalid("[{\"ph\": \"i\", \"ts\": 0, \"pid\": 1, \"tid\": 1}]");
  expectInvalid("[{\"ph\": \"i\", \"name\": \"a\", \"pid\": 1, \"tid\": 1}]");
  expectInvalid("[{\"ph\": \"i\", \"name\": \"a\", \"ts\": 0, \"tid\": 1}]");
  expectInvalid("[{\"ph\": \"i\", \"name\": \"a\", \"ts\": 0, \"pid\": 1}]");
  // Unknown and malformed phases.
  expectInvalid(
      "[{\"ph\": \"Q\", \"name\": \"a\", \"ts\": 0, \"pid\": 1, \"tid\": 1}]");
  expectInvalid(
      "[{\"ph\": \"BE\", \"name\": \"a\", \"ts\": 0, \"pid\": 1, "
      "\"tid\": 1}]");
  // pid/tid must be integers.
  expectInvalid("[{\"ph\": \"i\", \"name\": \"a\", \"ts\": 0, \"pid\": 1.5, "
                "\"tid\": 1}]");
}

TEST(TraceValidatorTest, RejectsUnbalancedSpans) {
  // E without a matching B.
  expectInvalid(
      "[{\"ph\": \"E\", \"name\": \"s\", \"ts\": 0, \"pid\": 1, \"tid\": 1}]");
  // B left open at end of trace.
  expectInvalid(
      "[{\"ph\": \"B\", \"name\": \"s\", \"ts\": 0, \"pid\": 1, \"tid\": 1}]");
  // E closing a span of a different name.
  expectInvalid(
      "[{\"ph\": \"B\", \"name\": \"s\", \"ts\": 0, \"pid\": 1, \"tid\": 1},"
      " {\"ph\": \"E\", \"name\": \"t\", \"ts\": 1, \"pid\": 1, \"tid\": 1}]");
  // Balanced overall but crossing tracks: each tid must balance on its own.
  expectInvalid(
      "[{\"ph\": \"B\", \"name\": \"s\", \"ts\": 0, \"pid\": 1, \"tid\": 1},"
      " {\"ph\": \"E\", \"name\": \"s\", \"ts\": 1, \"pid\": 1, \"tid\": 2}]");
}

TEST(TraceValidatorTest, RejectsBackwardsTimestamps) {
  expectInvalid(
      "[{\"ph\": \"i\", \"name\": \"a\", \"ts\": 5, \"pid\": 1, \"tid\": 1},"
      " {\"ph\": \"i\", \"name\": \"b\", \"ts\": 4, \"pid\": 1, \"tid\": 1}]");
  // Different tracks have independent clocks — this one is fine.
  EXPECT_TRUE(
      validateChromeTrace(
          "[{\"ph\": \"i\", \"name\": \"a\", \"ts\": 5, \"pid\": 1, "
          "\"tid\": 1},"
          " {\"ph\": \"i\", \"name\": \"b\", \"ts\": 4, \"pid\": 1, "
          "\"tid\": 2}]")
          .ok());
}
