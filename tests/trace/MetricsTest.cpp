//===- MetricsTest.cpp - MetricsRegistry and PipelineStats adapters -------===//

#include "trace/MetricsRegistry.h"

#include "driver/BatchPipeline.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

#include <sstream>
#include <thread>
#include <vector>

using namespace npral;
using namespace npral::test;

namespace {

std::string renderText(const MetricsRegistry &MR) {
  std::ostringstream OS;
  MR.renderText(OS);
  return OS.str();
}

} // namespace

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry MR;
  EXPECT_TRUE(MR.empty());
  MR.counter("c").add(5);
  MR.counter("c").increment();
  MR.gauge("g").set(7);
  MR.gauge("g").set(3);
  MR.histogram("h").observe(10);
  MR.histogram("h").observe(2);
  EXPECT_FALSE(MR.empty());
  EXPECT_EQ(MR.counterValue("c"), 6);
  EXPECT_EQ(MR.gaugeValue("g"), 3);
  EXPECT_EQ(MR.histogram("h").count(), 2);
  EXPECT_EQ(MR.histogram("h").sum(), 12);
  EXPECT_EQ(MR.histogram("h").min(), 2);
  EXPECT_EQ(MR.histogram("h").max(), 10);
  // Snapshot reads of absent instruments are 0, and do not register them.
  EXPECT_EQ(MR.counterValue("absent"), 0);
  EXPECT_EQ(MR.gaugeValue("absent"), 0);
}

TEST(MetricsTest, ReferencesStayValidAcrossInserts) {
  MetricsRegistry MR;
  Counter &C = MR.counter("stable");
  // Force rebalancing pressure on the underlying container.
  for (int I = 0; I < 200; ++I)
    MR.counter("filler." + std::to_string(I)).increment();
  C.add(41);
  C.increment();
  EXPECT_EQ(MR.counterValue("stable"), 42);
}

TEST(MetricsTest, RenderTextIsSortedAndStable) {
  MetricsRegistry MR;
  MR.counter("z.last").add(1);
  MR.gauge("a.first").set(2);
  MR.histogram("m.middle").observe(4);
  EXPECT_EQ(renderText(MR),
            "a.first gauge 2\n"
            "m.middle histogram count=1 sum=4 min=4 max=4 p50=4 p95=4 p99=4\n"
            "z.last counter 1\n");
}

TEST(MetricsTest, PercentilesAreClampedAndDeterministic) {
  Histogram H;
  EXPECT_EQ(H.percentile(50), 0); // empty
  H.observe(4);
  // A single-valued distribution reports that value exactly at every Q —
  // the interpolated estimate is clamped to [min, max].
  EXPECT_EQ(H.percentile(0), 4);
  EXPECT_EQ(H.percentile(50), 4);
  EXPECT_EQ(H.percentile(95), 4);
  EXPECT_EQ(H.percentile(99), 4);
  EXPECT_EQ(H.percentile(100), 4);

  Histogram Wide;
  for (int I = 1; I <= 1000; ++I)
    Wide.observe(I);
  // Bucketed estimates: within a factor of two of the exact rank value,
  // monotone in Q, and clamped to the observed range.
  const int64_t P50 = Wide.percentile(50);
  const int64_t P95 = Wide.percentile(95);
  const int64_t P99 = Wide.percentile(99);
  EXPECT_GE(P50, 250);
  EXPECT_LE(P50, 1000);
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P99);
  EXPECT_LE(P99, 1000);
  EXPECT_GE(Wide.percentile(0), 1);
}

TEST(MetricsTest, RenderJSONAgreesWithText) {
  MetricsRegistry MR;
  MR.counter("c").add(3);
  MR.gauge("g").set(-2);
  std::ostringstream OS;
  MR.renderJSON(OS);
  const std::string JSON = OS.str();
  EXPECT_NE(JSON.find("\"metrics\""), std::string::npos);
  EXPECT_NE(JSON.find("\"c\""), std::string::npos);
  EXPECT_NE(JSON.find("\"g\""), std::string::npos);
  // Stable order: "c" renders before "g".
  EXPECT_LT(JSON.find("\"c\""), JSON.find("\"g\""));
}

TEST(MetricsTest, HistogramBucketsArePowersOfTwo) {
  Histogram H;
  H.observe(0); // bucket 0
  H.observe(1); // bucket 1
  H.observe(2); // bucket 2
  H.observe(3); // bucket 2
  H.observe(4); // bucket 3
  EXPECT_EQ(H.bucketCount(0), 1);
  EXPECT_EQ(H.bucketCount(1), 1);
  EXPECT_EQ(H.bucketCount(2), 2);
  EXPECT_EQ(H.bucketCount(3), 1);
  EXPECT_EQ(H.count(), 5);
  EXPECT_EQ(H.sum(), 10);
  EXPECT_EQ(H.min(), 0);
  EXPECT_EQ(H.max(), 4);
}

TEST(MetricsTest, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry A, B;
  A.counter("c").add(10);
  B.counter("c").add(5);
  A.gauge("g").set(1);
  B.gauge("g").set(9);
  A.histogram("h").observe(1);
  B.histogram("h").observe(100);
  B.counter("only.b").add(2);
  A.merge(B);
  EXPECT_EQ(A.counterValue("c"), 15);
  EXPECT_EQ(A.gaugeValue("g"), 9);
  EXPECT_EQ(A.histogram("h").count(), 2);
  EXPECT_EQ(A.histogram("h").sum(), 101);
  EXPECT_EQ(A.histogram("h").min(), 1);
  EXPECT_EQ(A.histogram("h").max(), 100);
  EXPECT_EQ(A.counterValue("only.b"), 2);
}

TEST(MetricsTest, ConcurrentUpdatesAreExact) {
  MetricsRegistry MR;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Workers;
  for (int W = 0; W < NumThreads; ++W)
    Workers.emplace_back([&MR] {
      for (int I = 0; I < PerThread; ++I) {
        MR.counter("contended").increment();
        MR.histogram("dist").observe(I);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(MR.counterValue("contended"),
            static_cast<int64_t>(NumThreads) * PerThread);
  EXPECT_EQ(MR.histogram("dist").count(),
            static_cast<int64_t>(NumThreads) * PerThread);
  EXPECT_EQ(MR.histogram("dist").min(), 0);
  EXPECT_EQ(MR.histogram("dist").max(), PerThread - 1);
}

//===----------------------------------------------------------------------===//
// PipelineStats on the registry: round trip and byte-stable renderers.
//===----------------------------------------------------------------------===//

namespace {

PipelineStats sampleStats() {
  PipelineStats S;
  S.Programs = 4;
  S.Succeeded = 3;
  S.Failed = 1;
  S.Jobs = 2;
  S.CacheEnabled = true;
  S.CacheHits = 3;
  S.CacheMisses = 1;
  S.ParseNs = 1'500'000;
  S.AnalysisNs = 2'250'000;
  S.BoundsNs = 0;
  S.AllocNs = 500'000;
  S.VerifyNs = 250'000;
  S.WallNs = 8'000'000;
  return S;
}

} // namespace

TEST(PipelineStatsTest, RegistryRoundTripIsLossless) {
  const PipelineStats S = sampleStats();
  MetricsRegistry MR;
  S.toRegistry(MR);
  const PipelineStats R = PipelineStats::fromRegistry(MR);
  EXPECT_EQ(R.Programs, S.Programs);
  EXPECT_EQ(R.Succeeded, S.Succeeded);
  EXPECT_EQ(R.Failed, S.Failed);
  EXPECT_EQ(R.Jobs, S.Jobs);
  EXPECT_EQ(R.CacheEnabled, S.CacheEnabled);
  EXPECT_EQ(R.CacheHits, S.CacheHits);
  EXPECT_EQ(R.CacheMisses, S.CacheMisses);
  EXPECT_EQ(R.ParseNs, S.ParseNs);
  EXPECT_EQ(R.AnalysisNs, S.AnalysisNs);
  EXPECT_EQ(R.BoundsNs, S.BoundsNs);
  EXPECT_EQ(R.AllocNs, S.AllocNs);
  EXPECT_EQ(R.VerifyNs, S.VerifyNs);
  EXPECT_EQ(R.WallNs, S.WallNs);
  // And the renderers agree byte for byte after the round trip.
  std::ostringstream A, B;
  S.renderText(A);
  R.renderText(B);
  EXPECT_EQ(A.str(), B.str());
}

TEST(PipelineStatsTest, RenderTextGolden) {
  // Pinned byte-for-byte: the registry migration must not perturb the
  // pre-existing --stats output.
  std::ostringstream OS;
  sampleStats().renderText(OS);
  EXPECT_EQ(OS.str(),
            "batch: 4 programs, 3 ok, 1 failed, jobs=2\n"
            "stages (ms): parse 1.50  analysis 2.25  bounds 0.00  "
            "alloc 0.50  verify 0.25\n"
            "cache: 3 hits, 1 misses (75.0% hit rate)\n"
            "wall: 8.00 ms (500.0 programs/s)\n");
}

TEST(PipelineStatsTest, RenderTextGoldenCacheDisabled) {
  PipelineStats S = sampleStats();
  S.CacheEnabled = false;
  std::ostringstream OS;
  S.renderText(OS);
  EXPECT_NE(OS.str().find("cache: disabled\n"), std::string::npos);
}

TEST(PipelineStatsTest, RenderJSONGolden) {
  std::ostringstream OS;
  sampleStats().renderJSON(OS);
  EXPECT_EQ(OS.str(),
            "{\n"
            "  \"programs\": 4,\n"
            "  \"succeeded\": 3,\n"
            "  \"failed\": 1,\n"
            "  \"jobs\": 2,\n"
            "  \"cache\": {\"enabled\": true, \"hits\": 3, \"misses\": 1, "
            "\"hit_rate\": 0.7500},\n"
            "  \"stages_ns\": {\"parse\": 1500000, \"analysis\": 2250000, "
            "\"bounds\": 0, \"alloc\": 500000, \"verify\": 250000},\n"
            "  \"wall_ns\": 8000000,\n"
            "  \"throughput_programs_per_sec\": 500.00\n"
            "}\n");
}

TEST(PipelineStatsTest, RegistryKeySetIsGoldenPinned) {
  // The full batch.* instrument name set, pinned: dashboards and the serve
  // daemon's metrics endpoint key on these names, so adding a field to
  // PipelineStats must extend this golden deliberately. renderText's
  // lexicographic order makes the pin byte-stable.
  MetricsRegistry MR;
  sampleStats().toRegistry(MR);
  std::ostringstream OS;
  MR.renderText(OS);
  EXPECT_EQ(OS.str(),
            "batch.cache.enabled gauge 1\n"
            "batch.cache.hits counter 3\n"
            "batch.cache.misses counter 1\n"
            "batch.deadline_exceeded counter 0\n"
            "batch.degraded counter 0\n"
            "batch.failed counter 1\n"
            "batch.faults_injected counter 0\n"
            "batch.jobs gauge 2\n"
            "batch.programs counter 4\n"
            "batch.retried counter 0\n"
            "batch.stage.alloc_ns counter 500000\n"
            "batch.stage.analysis_ns counter 2250000\n"
            "batch.stage.bounds_ns counter 0\n"
            "batch.stage.parse_ns counter 1500000\n"
            "batch.stage.validate_ns counter 0\n"
            "batch.stage.verify_ns counter 250000\n"
            "batch.succeeded counter 3\n"
            "batch.validate_failed counter 0\n"
            "batch.validated counter 0\n"
            "batch.wall_ns counter 8000000\n");
}

TEST(PipelineStatsTest, RunBatchFeedsTheGlobalRegistry) {
  MetricsRegistry::global().clear();
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread t0
main:
    imm  a, 1
    add  b, a, a
    halt

.thread t1
main:
    imm  x, 2
    ctx
    addi y, x, 1
    halt
)");
  ASSERT_TRUE(MTP.ok()) << MTP.status().str();
  std::vector<BatchJob> Jobs(3);
  for (BatchJob &J : Jobs)
    J.Program = *MTP;
  Jobs[0].Name = "j0";
  Jobs[1].Name = "j1";
  Jobs[2].Name = "j2";
  BatchOptions Opts;
  Opts.Jobs = 2;
  BatchResult R = runBatch(Jobs, Opts);
  EXPECT_EQ(R.Stats.Programs, 3);
  EXPECT_EQ(R.Stats.Succeeded, 3);
  // The per-run registry is the source of truth and merges into the global
  // one; the struct must agree with the global counters it came from.
  EXPECT_EQ(MetricsRegistry::global().counterValue("batch.programs"), 3);
  EXPECT_EQ(MetricsRegistry::global().counterValue("batch.succeeded"), 3);
  EXPECT_EQ(MetricsRegistry::global().gaugeValue("batch.jobs"), 2);
  EXPECT_EQ(MetricsRegistry::global().histogram("batch.job_wall_ns").count(),
            3);
  MetricsRegistry::global().clear();
}
