//===- TraceDeterminismTest.cpp - Same event multiset for any job count ---===//
///
/// Trace event *content* (phase, category, name, args) must depend only on
/// the work performed, never on worker scheduling: a batch run traced with
/// --jobs 1 and with --jobs N produces the same event multiset, differing
/// only in timestamps and track assignment. The analysis cache is left
/// disabled here — with a shared cache, which thread sees the hit is
/// scheduling-dependent by design.
///
//===----------------------------------------------------------------------===//

#include "trace/TraceEngine.h"
#include "trace/TraceValidator.h"

#include "driver/BatchPipeline.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

std::vector<BatchJob> exampleJobs() {
  const char *Files[] = {"fig3_paper.s", "two_threads.s", "modular_kernel.s",
                         "bad_alloc.s", "lint_buggy.s",
                         // Repeats: multiset counts must also match.
                         "fig3_paper.s", "two_threads.s"};
  std::vector<BatchJob> Jobs;
  for (const char *F : Files) {
    BatchJob J;
    J.Path = std::string(NPRAL_EXAMPLES_ASM_DIR) + "/" + F;
    J.Name = F;
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}

/// Run the batch traced and return the event-content multiset. The
/// "runBatch" span is excluded: its args deliberately record the worker
/// count, which is exactly what differs between the two runs.
std::map<std::string, int> tracedRun(int Jobs) {
  TraceEngine &TE = TraceEngine::global();
  TE.setEnabled(false);
  TE.clear();
  TE.setEnabled(true);

  BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.UseCache = false;
  BatchResult R = runBatch(exampleJobs(), Opts);
  EXPECT_EQ(R.Stats.Programs, 7);

  TE.setEnabled(false);
  std::ostringstream OS;
  TE.exportJSON(OS);
  const std::string JSON = OS.str();
  TE.clear();

  Status Valid = validateChromeTrace(JSON);
  EXPECT_TRUE(Valid.ok()) << Valid.str();
  ErrorOr<std::vector<ParsedTraceEvent>> Events = parseChromeTrace(JSON);
  EXPECT_TRUE(Events.ok()) << Events.status().str();
  std::map<std::string, int> Multiset;
  if (Events.ok())
    for (const ParsedTraceEvent &E : *Events)
      if (E.Name != "runBatch")
        ++Multiset[E.contentKey()];
  return Multiset;
}

} // namespace

TEST(TraceDeterminismTest, JobCountDoesNotChangeEventContent) {
  const std::map<std::string, int> Sequential = tracedRun(1);
  EXPECT_FALSE(Sequential.empty());
  for (int Jobs : {2, 4, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    const std::map<std::string, int> Parallel = tracedRun(Jobs);
    EXPECT_EQ(Parallel, Sequential);
  }
}

TEST(TraceDeterminismTest, RepeatedRunsAreIdentical) {
  const std::map<std::string, int> First = tracedRun(4);
  const std::map<std::string, int> Second = tracedRun(4);
  EXPECT_EQ(First, Second);
}
