//===- DecisionLogTest.cpp - Decision log vs the allocator's real choices -===//
///
/// The log must be a faithful transcript of the Fig. 8 greedy reduction,
/// not a reconstruction: one record per step, the chosen delta equal to
/// the minimum over the recorded bids, and budget snapshots that replay
/// exactly from the initial bounds. Checked structurally over a grid of
/// (example program, register file size) configurations.
///
//===----------------------------------------------------------------------===//

#include "trace/DecisionLog.h"

#include "alloc/InterAllocator.h"
#include "analysis/LiveRangeRenaming.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

using namespace npral;

namespace {

MultiThreadProgram loadExample(const std::string &File) {
  const std::string Path = std::string(NPRAL_EXAMPLES_ASM_DIR) + "/" + File;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Buf.str());
  EXPECT_TRUE(MTP.ok()) << MTP.status().str();
  for (Program &T : MTP->Threads)
    T = renameLiveRanges(T);
  return MTP.take();
}

/// sum(PR) + max(SR): the quantity the Fig. 8 loop drives down to Nreg.
int requirementOf(const std::vector<int> &PR, const std::vector<int> &SR) {
  int Sum = 0, MaxSR = 0;
  for (int P : PR)
    Sum += P;
  for (int S : SR)
    MaxSR = std::max(MaxSR, S);
  return Sum + MaxSR;
}

/// Structural invariants that must hold for any program and any Nreg.
void checkLogInvariants(const MultiThreadProgram &MTP, int Nreg,
                        const AllocationDecisionLog &Log,
                        const InterThreadResult &R) {
  SCOPED_TRACE("Nreg=" + std::to_string(Nreg));
  EXPECT_EQ(Log.Nthd, MTP.getNumThreads());
  EXPECT_EQ(Log.Nreg, Nreg);
  EXPECT_EQ(Log.Success, R.Success);
  ASSERT_EQ(Log.InitialPR.size(), MTP.Threads.size());
  ASSERT_EQ(Log.InitialSR.size(), MTP.Threads.size());

  // Replay the budgets alongside the steps.
  std::vector<int> PR = Log.InitialPR;
  std::vector<int> SR = Log.InitialSR;
  int Index = 0;
  for (const ReductionStep &Step : Log.Reductions) {
    SCOPED_TRACE("step " + std::to_string(Step.StepIndex));
    // One record per step, in order.
    EXPECT_EQ(Step.StepIndex, ++Index);
    EXPECT_EQ(Step.RequirementBefore, requirementOf(PR, SR));
    EXPECT_GT(Step.RequirementBefore, Nreg);

    if (Step.Chosen == ReductionStep::ChoseSweepFallback) {
      // The sweep bypasses the bid market entirely.
      EXPECT_EQ(Step.ChosenDelta, 0);
    } else {
      // The chosen delta is the greedy argmin over every bid the
      // allocator actually priced this step.
      ASSERT_FALSE(Step.Bids.empty());
      int64_t MinDelta = Step.Bids.front().Delta;
      for (const ReductionBid &Bid : Step.Bids)
        MinDelta = std::min(MinDelta, Bid.Delta);
      EXPECT_EQ(Step.ChosenDelta, MinDelta);

      if (Step.Chosen == ReductionStep::ChosePR) {
        // The victim must be a PR bid at the winning price.
        ASSERT_GE(Step.VictimThread, 0);
        ASSERT_LT(Step.VictimThread, Log.Nthd);
        bool Found = false;
        for (const ReductionBid &Bid : Step.Bids)
          Found |= Bid.K == ReductionBid::ReducePR &&
                   Bid.Thread == Step.VictimThread &&
                   Bid.Delta == Step.ChosenDelta;
        EXPECT_TRUE(Found);
        EXPECT_EQ(Step.PRAfter[static_cast<size_t>(Step.VictimThread)],
                  PR[static_cast<size_t>(Step.VictimThread)] - 1);
      } else { // ChoseSharedRegs
        EXPECT_EQ(Step.VictimThread, -1);
        // The collective SR bid must exist, at the winning price, and it
        // only wins on a strict improvement over every PR bid.
        bool Found = false;
        for (const ReductionBid &Bid : Step.Bids) {
          if (Bid.K == ReductionBid::ReduceSharedRegs) {
            Found = true;
            EXPECT_EQ(Bid.Delta, Step.ChosenDelta);
          } else {
            EXPECT_GT(Bid.Delta, Step.ChosenDelta);
          }
        }
        EXPECT_TRUE(Found);
      }
      // Non-sweep steps shed exactly one register of requirement.
      EXPECT_EQ(Step.RequirementAfter, Step.RequirementBefore - 1);
    }

    ASSERT_EQ(Step.PRAfter.size(), PR.size());
    ASSERT_EQ(Step.SRAfter.size(), SR.size());
    EXPECT_EQ(Step.RequirementAfter,
              requirementOf(Step.PRAfter, Step.SRAfter));
    PR = Step.PRAfter;
    SR = Step.SRAfter;
  }

  if (R.Success) {
    // The final snapshot must match what the allocator actually returned.
    ASSERT_EQ(Log.FinalPR.size(), R.Threads.size());
    for (size_t T = 0; T < R.Threads.size(); ++T) {
      EXPECT_EQ(Log.FinalPR[T], R.Threads[T].PR);
      EXPECT_EQ(Log.FinalSR[T], R.Threads[T].SR);
    }
    EXPECT_EQ(Log.SGR, R.SGR);
    EXPECT_EQ(Log.RegistersUsed, R.RegistersUsed);
    EXPECT_EQ(Log.TotalWeightedCost, R.TotalWeightedCost);
  } else {
    EXPECT_EQ(Log.FailReason, R.FailReason);
  }

  for (const IntraEvent &E : Log.IntraEvents) {
    EXPECT_GE(E.Thread, 0);
    EXPECT_LT(E.Thread, Log.Nthd);
    EXPECT_FALSE(E.Detail.empty());
  }
}

/// Run with and without the log; results must be identical (the log is an
/// observer, never an actor) and the log must satisfy every invariant.
void runGrid(const std::string &File, const std::vector<int> &Nregs) {
  const MultiThreadProgram MTP = loadExample(File);
  for (int Nreg : Nregs) {
    SCOPED_TRACE(File + " Nreg=" + std::to_string(Nreg));
    AllocationDecisionLog Log;
    InterThreadResult WithLog =
        allocateInterThread(MTP, Nreg, {}, {}, &Log);
    InterThreadResult Plain = allocateInterThread(MTP, Nreg);
    EXPECT_EQ(WithLog.Success, Plain.Success);
    if (WithLog.Success && Plain.Success) {
      ASSERT_EQ(WithLog.Threads.size(), Plain.Threads.size());
      for (size_t T = 0; T < Plain.Threads.size(); ++T) {
        EXPECT_EQ(WithLog.Threads[T].PR, Plain.Threads[T].PR);
        EXPECT_EQ(WithLog.Threads[T].SR, Plain.Threads[T].SR);
        EXPECT_EQ(WithLog.Threads[T].MoveCost, Plain.Threads[T].MoveCost);
      }
      EXPECT_EQ(WithLog.SGR, Plain.SGR);
      EXPECT_EQ(WithLog.RegistersUsed, Plain.RegistersUsed);
    }
    checkLogInvariants(MTP, Nreg, Log, WithLog);
  }
}

} // namespace

TEST(DecisionLogTest, Fig3PaperGrid) {
  runGrid("fig3_paper.s", {2, 3, 4, 8, 128});
}

TEST(DecisionLogTest, TwoThreadsGrid) {
  runGrid("two_threads.s", {3, 4, 5, 6, 8, 128});
}

TEST(DecisionLogTest, ModularKernelGrid) {
  runGrid("modular_kernel.s", {2, 3, 4, 6, 128});
}

TEST(DecisionLogTest, BadAllocGrid) {
  runGrid("bad_alloc.s", {2, 3, 4, 6, 8, 128});
}

TEST(DecisionLogTest, ReductionStepsAreRecordedWhenConstrained) {
  // fig3_paper at Nreg=2 is known to need at least one reduction step
  // (the move-free bounds need 3 registers).
  const MultiThreadProgram MTP = loadExample("fig3_paper.s");
  AllocationDecisionLog Log;
  InterThreadResult R = allocateInterThread(MTP, 2, {}, {}, &Log);
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_FALSE(Log.Reductions.empty());
  EXPECT_EQ(Log.Reductions.front().RequirementBefore,
            requirementOf(Log.InitialPR, Log.InitialSR));
}

TEST(DecisionLogTest, RenderExplainIsDeterministic) {
  const MultiThreadProgram MTP = loadExample("fig3_paper.s");
  std::string First;
  for (int Round = 0; Round < 2; ++Round) {
    AllocationDecisionLog Log;
    allocateInterThread(MTP, 2, {}, {}, &Log);
    std::ostringstream OS;
    Log.renderExplain(OS);
    if (Round == 0)
      First = OS.str();
    else
      EXPECT_EQ(OS.str(), First);
  }
  EXPECT_NE(First.find("allocation explain: 2 threads, Nreg=2"),
            std::string::npos);
  EXPECT_NE(First.find("step 1:"), std::string::npos);
  EXPECT_NE(First.find("final:"), std::string::npos);
}

TEST(DecisionLogTest, FailureIsLogged) {
  // One thread alone needing more registers than exist: the allocator
  // must fail and the log must say so.
  const MultiThreadProgram MTP = loadExample("two_threads.s");
  AllocationDecisionLog Log;
  InterThreadResult R = allocateInterThread(MTP, 1, {}, {}, &Log);
  ASSERT_FALSE(R.Success);
  EXPECT_FALSE(Log.Success);
  EXPECT_EQ(Log.FailReason, R.FailReason);
  std::ostringstream OS;
  Log.renderExplain(OS);
  EXPECT_NE(OS.str().find("failed:"), std::string::npos);
}
