//===- CycleTraceTest.cpp - Virtual-time telemetry contracts --------------===//
//
// The cycle-domain trace layer's contracts: slices coalesce and partition
// each thread's timeline exactly into the simulator's seven cycle buckets;
// exports are byte-identical regardless of which host thread ran the
// simulation; grid traces validate strictly (counters, flows included) and
// are deterministic per engine count; the telemetry ring and sampler fire
// on the period grid; and the validator's new counter/flow semantics accept
// what the emitter writes while still rejecting malformed traces with
// line/offset/key context.
//
//===----------------------------------------------------------------------===//

#include "trace/CycleTrace.h"

#include "grid/GridHarness.h"
#include "sim/Simulator.h"
#include "support/ThreadPool.h"
#include "trace/Telemetry.h"
#include "trace/TraceReport.h"
#include "trace/TraceValidator.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;
using namespace npral::test;

namespace {

std::string exportToString(const CycleTrace &CT) {
  std::ostringstream OS;
  CT.exportJSON(OS);
  return OS.str();
}

MultiThreadProgram twoThreadMix() {
  MultiThreadProgram MTP;
  MTP.Threads.push_back(parseOrDie(R"(
.thread worker0
main:
    imm  o, 0x1000
top:
    load r0, [o+0]
    addi r1, r0, 1
    store [o+1], r1
    loopend
    br   top
)"));
  MTP.Threads.push_back(parseOrDie(R"(
.thread worker1
main:
    imm  o, 0x2000
top:
    load r0, [o+0]
    muli r1, r0, 3
    store [o+1], r1
    loopend
    br   top
)"));
  return MTP;
}

/// Run the mix with a fresh trace and sampler; returns the exported JSON.
std::string runTracedSim(int64_t SamplePeriod, SimResult *OutResult = nullptr,
                         CycleTrace *OutTrace = nullptr,
                         TelemetryRing *Ring = nullptr) {
  MultiThreadProgram MTP = twoThreadMix();
  SimConfig Config;
  Config.TargetIterations = 8;
  Config.MemLatency = 20;
  Simulator Sim(MTP, Config);
  CycleTrace CT;
  Sim.setCycleTrace(&CT, /*Pid=*/1);
  std::optional<TelemetrySampler> Sampler;
  if (SamplePeriod > 0) {
    Sampler.emplace(SamplePeriod, &CT, Ring);
    Sim.setSampler(&*Sampler, "sim.");
  }
  SimResult R = Sim.run();
  EXPECT_TRUE(R.Completed) << R.FailReason;
  if (OutResult)
    *OutResult = R;
  if (OutTrace)
    *OutTrace = CT;
  return exportToString(CT);
}

std::string runTracedGrid(int Engines, CycleTrace *OutTrace = nullptr) {
  GridOptions Opts;
  Opts.NumEngines = Engines;
  Opts.Sim = defaultExperimentConfig();
  Opts.Sim.TargetIterations = 10;
  CycleTrace CT;
  Opts.Trace = &CT;
  Opts.SampleCycles = 64;
  std::vector<std::string> Pool;
  EXPECT_TRUE(buildGridPool("s1", Engines, Pool));
  GridReport Report = runKernelPoolGrid("s1", Pool, Opts);
  EXPECT_TRUE(Report.Success) << Report.FailReason;
  if (OutTrace)
    *OutTrace = CT;
  return exportToString(CT);
}

} // namespace

TEST(CycleTraceTest, SlicesCoalesceAndTotalsAccumulate) {
  CycleTrace CT;
  // Two adjacent Run intervals coalesce into one slice; the MemStall break
  // flushes it.
  CT.extendPhase(1, 0, ThreadPhase::Run, 0, 5);
  CT.extendPhase(1, 0, ThreadPhase::Run, 5, 9);
  CT.extendPhase(1, 0, ThreadPhase::MemStall, 9, 20);
  CT.extendPhase(1, 0, ThreadPhase::Run, 20, 22);
  CT.closeTrack(1);
  EXPECT_EQ(CT.eventCount(), 3);
  EXPECT_EQ(CT.phaseCycles(1, 0, ThreadPhase::Run), 11);
  EXPECT_EQ(CT.phaseCycles(1, 0, ThreadPhase::MemStall), 11);
  const std::vector<CycleEvent> &E = CT.events();
  EXPECT_EQ(E[0].Name, "Run");
  EXPECT_EQ(E[0].Ts, 0);
  EXPECT_EQ(E[0].Dur, 9);
  EXPECT_EQ(E[1].Name, "MemStall");
  EXPECT_EQ(E[2].Dur, 2);
  // Empty intervals are ignored.
  CT.extendPhase(1, 0, ThreadPhase::Run, 30, 30);
  EXPECT_EQ(CT.phaseCycles(1, 0, ThreadPhase::Run), 11);
}

TEST(CycleTraceTest, PlainRunSlicesPartitionTheSevenBuckets) {
  SimResult R;
  CycleTrace CT;
  runTracedSim(/*SamplePeriod=*/0, &R, &CT);
  ASSERT_EQ(R.Threads.size(), 2u);
  for (size_t T = 0; T < R.Threads.size(); ++T) {
    const ThreadStats &TS = R.Threads[T];
    const int64_t Tid = static_cast<int64_t>(T);
    // Slice emission mirrors the bucket accounting branch for branch, so
    // each per-phase total equals its bucket exactly — not just the sum.
    EXPECT_EQ(CT.phaseCycles(1, Tid, ThreadPhase::Run), TS.RunCycles);
    EXPECT_EQ(CT.phaseCycles(1, Tid, ThreadPhase::SwitchPenalty),
              TS.SwitchPenaltyCycles);
    EXPECT_EQ(CT.phaseCycles(1, Tid, ThreadPhase::MemStall),
              TS.MemStallCycles);
    EXPECT_EQ(CT.phaseCycles(1, Tid, ThreadPhase::ChannelWait),
              TS.ChannelWaitCycles);
    EXPECT_EQ(CT.phaseCycles(1, Tid, ThreadPhase::InterconnectStall),
              TS.InterconnectStallCycles);
    EXPECT_EQ(CT.phaseCycles(1, Tid, ThreadPhase::ReadyWait),
              TS.ReadyWaitCycles);
    EXPECT_EQ(CT.phaseCycles(1, Tid, ThreadPhase::Halted), TS.HaltedCycles);
    int64_t SliceSum = 0;
    for (int P = 0; P < NumThreadPhases; ++P)
      SliceSum += CT.phaseCycles(1, Tid, static_cast<ThreadPhase>(P));
    EXPECT_EQ(SliceSum, R.TotalCycles);
    EXPECT_EQ(SliceSum, TS.accountedCycles());
  }
}

TEST(CycleTraceTest, ExportIsByteIdenticalAcrossHostThreads) {
  // Virtual time owes nothing to the host scheduler: the same simulation
  // run from pooled worker threads exports the same bytes as inline runs.
  const std::string Reference = runTracedSim(/*SamplePeriod=*/32);
  EXPECT_EQ(runTracedSim(32), Reference);

  constexpr int NumWorkers = 4;
  std::vector<std::string> FromWorkers(NumWorkers);
  {
    ThreadPool Pool(NumWorkers);
    for (int I = 0; I < NumWorkers; ++I)
      Pool.submit([&FromWorkers, I] { FromWorkers[static_cast<size_t>(I)] =
                                          runTracedSim(32); });
    Pool.wait();
  }
  for (const std::string &S : FromWorkers)
    EXPECT_EQ(S, Reference);

  // And the trace passes the strict validator.
  EXPECT_TRUE(validateChromeTrace(Reference).ok());
}

TEST(CycleTraceTest, GridTraceValidatesAndIsDeterministicPerEngineCount) {
  std::string Previous;
  for (int Engines : {1, 2, 4}) {
    const std::string A = runTracedGrid(Engines);
    const std::string B = runTracedGrid(Engines);
    EXPECT_EQ(A, B) << "engine count " << Engines;
    Status V = validateChromeTrace(A);
    EXPECT_TRUE(V.ok()) << "engines=" << Engines << ": " << V.str();
    // More engines change the trace (different placement, real fabric).
    EXPECT_NE(A, Previous);
    Previous = A;
  }
}

TEST(CycleTraceTest, MultiEngineGridEmitsCountersAndMatchedFlows) {
  const std::string JSON = runTracedGrid(4);
  ErrorOr<std::vector<ParsedTraceEvent>> Events = parseChromeTrace(JSON);
  ASSERT_TRUE(Events.ok()) << Events.status().str();
  int Counters = 0, Starts = 0, Finishes = 0, Slices = 0;
  bool SawFabric = false, SawOccupancy = false, SawInFlight = false;
  for (const ParsedTraceEvent &E : *Events) {
    switch (E.Ph) {
    case 'C':
      ++Counters;
      if (E.Name.find("occupancy") != std::string::npos)
        SawOccupancy = true;
      if (E.Name == "fabric.in_flight")
        SawInFlight = true;
      break;
    case 's':
      ++Starts;
      break;
    case 'f':
      ++Finishes;
      break;
    case 'X':
      ++Slices;
      if (E.Pid == 0)
        SawFabric = true;
      break;
    default:
      break;
    }
  }
  EXPECT_GT(Counters, 0);
  EXPECT_GT(Slices, 0);
  EXPECT_TRUE(SawOccupancy);
  EXPECT_TRUE(SawInFlight);
  EXPECT_TRUE(SawFabric);
  // Every dispatched work token was delivered, so flows pair exactly.
  EXPECT_GT(Starts, 0);
  EXPECT_EQ(Starts, Finishes);

  // The report layer digests the same events: the flow latencies it
  // aggregates are exactly the matched pairs.
  TraceReport Report = TraceReport::build(*Events);
  ASSERT_EQ(Report.flows().size(), 1u);
  EXPECT_EQ(Report.flows()[0].Name, "work-dispatch");
  EXPECT_EQ(static_cast<int>(Report.flows()[0].Latencies.size()), Finishes);
  EXPECT_FALSE(Report.tracks().empty());
  EXPECT_FALSE(Report.counters().empty());
  std::ostringstream Text, Html;
  Report.renderText(Text);
  Report.renderHTML(Html);
  EXPECT_NE(Text.str().find("work-dispatch"), std::string::npos);
  EXPECT_NE(Html.str().find("work-dispatch"), std::string::npos);
}

TEST(CycleTraceTest, SamplerFiresOnPeriodGridIntoTraceAndRing) {
  CycleTrace CT;
  TelemetryRing Ring(8);
  TelemetrySampler Sampler(10, &CT, &Ring);
  EXPECT_EQ(Sampler.nextDue(), 10);
  EXPECT_FALSE(Sampler.due(9));
  EXPECT_TRUE(Sampler.due(10));
  Sampler.beginSample(Sampler.nextDue());
  Sampler.value(1, "sim.occupancy", 3);
  Sampler.endSample(10);
  EXPECT_EQ(Sampler.nextDue(), 20);
  // A big jump lands the next due strictly after the reached cycle, on the
  // period grid — one sample per check, no burst of catch-up samples.
  EXPECT_TRUE(Sampler.due(57));
  Sampler.beginSample(Sampler.nextDue());
  Sampler.value(1, "sim.occupancy", 2);
  Sampler.endSample(57);
  EXPECT_EQ(Sampler.nextDue(), 60);
  ASSERT_EQ(Ring.size(), 2u);
  // Sample timestamps sit on the period grid (the due cycle, not the cycle
  // the check happened to run at).
  EXPECT_EQ(Ring.at(0).Cycle, 10);
  EXPECT_EQ(Ring.at(1).Cycle, 20);
  ASSERT_EQ(CT.eventCount(), 2);
  EXPECT_EQ(CT.events()[0].Ph, 'C');
  EXPECT_EQ(CT.events()[0].Ts, 10);
  EXPECT_EQ(CT.events()[0].Args.front().second, 3);
}

TEST(CycleTraceTest, RingBufferWrapsOldestFirst) {
  TelemetryRing Ring(4);
  for (int64_t I = 0; I < 6; ++I) {
    TelemetrySample S;
    S.Cycle = I;
    Ring.push(std::move(S));
  }
  EXPECT_EQ(Ring.capacity(), 4u);
  EXPECT_EQ(Ring.size(), 4u);
  EXPECT_EQ(Ring.totalPushed(), 6);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Ring.at(I).Cycle, static_cast<int64_t>(I + 2));
  std::vector<TelemetrySample> Snap = Ring.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  EXPECT_EQ(Snap.front().Cycle, 2);
  EXPECT_EQ(Snap.back().Cycle, 5);
  Ring.clear();
  EXPECT_EQ(Ring.size(), 0u);
}

TEST(CycleTraceTest, GridRunFillsTheTelemetryRing) {
  GridOptions Opts;
  Opts.NumEngines = 2;
  Opts.Sim = defaultExperimentConfig();
  Opts.Sim.TargetIterations = 10;
  TelemetryRing Ring(256);
  Opts.Ring = &Ring;
  Opts.SampleCycles = 64;
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("s1", 2, Pool));
  GridReport Report = runKernelPoolGrid("s1", Pool, Opts);
  ASSERT_TRUE(Report.Success) << Report.FailReason;
  ASSERT_GT(Ring.size(), 0u);
  // Samples land on the period grid, strictly increasing.
  int64_t Prev = 0;
  for (size_t I = 0; I < Ring.size(); ++I) {
    EXPECT_EQ(Ring.at(I).Cycle % 64, 0);
    EXPECT_GT(Ring.at(I).Cycle, Prev);
    Prev = Ring.at(I).Cycle;
    EXPECT_FALSE(Ring.at(I).Values.empty());
  }
}

TEST(CycleTraceValidatorTest, AcceptsCounterAndFlowPhases) {
  const std::string Good =
      "[{\"ph\": \"C\", \"name\": \"occ\", \"ts\": 10, \"pid\": 1, "
      "\"tid\": 0, \"args\": {\"value\": 3}},\n"
      " {\"ph\": \"s\", \"name\": \"w\", \"ts\": 12, \"pid\": 0, "
      "\"tid\": 1, \"id\": 7},\n"
      " {\"ph\": \"C\", \"name\": \"occ\", \"ts\": 20, \"pid\": 1, "
      "\"tid\": 0, \"args\": {\"value\": 2}},\n"
      " {\"ph\": \"f\", \"name\": \"w\", \"ts\": 16, \"pid\": 2, "
      "\"tid\": 0, \"id\": 7, \"bp\": \"e\"}]";
  Status S = validateChromeTrace(Good);
  EXPECT_TRUE(S.ok()) << S.str();
}

TEST(CycleTraceValidatorTest, RejectsMalformedCountersAndFlows) {
  // Counter without a value arg.
  EXPECT_FALSE(validateChromeTrace("[{\"ph\": \"C\", \"name\": \"c\", "
                                   "\"ts\": 1, \"pid\": 1, \"tid\": 0}]")
                   .ok());
  // Counter series going backwards in time.
  EXPECT_FALSE(
      validateChromeTrace(
          "[{\"ph\": \"C\", \"name\": \"c\", \"ts\": 5, \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"value\": 1}},\n"
          " {\"ph\": \"C\", \"name\": \"c\", \"ts\": 4, \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"value\": 1}}]")
          .ok());
  // Duplicate flow start.
  EXPECT_FALSE(
      validateChromeTrace(
          "[{\"ph\": \"s\", \"name\": \"w\", \"ts\": 1, \"pid\": 0, "
          "\"tid\": 0, \"id\": 3},\n"
          " {\"ph\": \"s\", \"name\": \"w\", \"ts\": 2, \"pid\": 0, "
          "\"tid\": 0, \"id\": 3}]")
          .ok());
  // Finish with no start.
  EXPECT_FALSE(validateChromeTrace("[{\"ph\": \"f\", \"name\": \"w\", "
                                   "\"ts\": 2, \"pid\": 0, \"tid\": 0, "
                                   "\"id\": 9}]")
                   .ok());
  // Finish before its start.
  EXPECT_FALSE(
      validateChromeTrace(
          "[{\"ph\": \"s\", \"name\": \"w\", \"ts\": 10, \"pid\": 0, "
          "\"tid\": 0, \"id\": 3},\n"
          " {\"ph\": \"f\", \"name\": \"w\", \"ts\": 6, \"pid\": 0, "
          "\"tid\": 0, \"id\": 3}]")
          .ok());
  // Unclosed flow at end of document.
  Status Unclosed = validateChromeTrace(
      "[{\"ph\": \"s\", \"name\": \"w\", \"ts\": 1, \"pid\": 0, "
      "\"tid\": 0, \"id\": 3}]");
  EXPECT_FALSE(Unclosed.ok());
  EXPECT_NE(Unclosed.str().find("never finishes"), std::string::npos);
  // Flow events must carry an id.
  EXPECT_FALSE(validateChromeTrace("[{\"ph\": \"s\", \"name\": \"w\", "
                                   "\"ts\": 1, \"pid\": 0, \"tid\": 0}]")
                   .ok());
  // Unknown phases are still a hard failure.
  EXPECT_FALSE(validateChromeTrace("[{\"ph\": \"q\", \"name\": \"w\", "
                                   "\"ts\": 1, \"pid\": 0, \"tid\": 0}]")
                   .ok());
}

TEST(CycleTraceValidatorTest, ErrorsCarryLineOffsetAndKey) {
  // The broken value sits on line 2, under the "ts" key.
  Status S = validateChromeTrace("[{\"ph\": \"i\", \"name\": \"a\",\n"
                                 "  \"ts\": oops, \"pid\": 0, \"tid\": 0}]");
  ASSERT_FALSE(S.ok());
  const std::string Msg = S.str();
  EXPECT_NE(Msg.find("line 2"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("offset"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("\"ts\""), std::string::npos) << Msg;
}

TEST(TraceReportTest, NearestRankPercentilesAndSparklines) {
  // Hand-built events: one track with two states, one counter series.
  std::vector<ParsedTraceEvent> Events;
  for (int I = 0; I < 10; ++I) {
    ParsedTraceEvent E;
    E.Ph = 'X';
    E.Name = I < 7 ? "Run" : "MemStall";
    E.Ts = I * 10;
    E.Dur = I < 7 ? 8 : 2;
    E.Pid = 1;
    E.Tid = 0;
    Events.push_back(E);
  }
  for (int I = 0; I < 5; ++I) {
    ParsedTraceEvent E;
    E.Ph = 'C';
    E.Name = "sim.occupancy";
    E.Ts = I * 16;
    E.Pid = 1;
    E.Args.emplace_back("value", std::to_string(I));
    Events.push_back(E);
  }
  TraceReport R = TraceReport::build(Events);
  ASSERT_EQ(R.tracks().size(), 1u);
  const TrackReport &T = R.tracks()[0];
  EXPECT_EQ(T.TotalDur, 7 * 8 + 3 * 2);
  ASSERT_EQ(T.ByName.count("Run"), 1u);
  EXPECT_EQ(T.ByName.at("Run").Count, 7);
  EXPECT_EQ(T.ByName.at("Run").p(50), 8);
  ASSERT_EQ(R.counters().size(), 1u);
  EXPECT_EQ(R.counters()[0].Min, 0);
  EXPECT_EQ(R.counters()[0].Max, 4);
  EXPECT_EQ(R.counters()[0].Last, 4);
  std::ostringstream OS;
  R.renderText(OS);
  const std::string Text = OS.str();
  EXPECT_NE(Text.find("Run"), std::string::npos);
  EXPECT_NE(Text.find("sim.occupancy"), std::string::npos);
  EXPECT_NE(Text.find("90.3%"), std::string::npos);
}
