//===- BatchPipelineTest.cpp - Batch driver unit tests --------------------===//
//
// Covers the batch allocation pipeline: result ordering, worker-count
// independence, cache hit accounting (within a run and across runs sharing
// one AnalysisCache), failure isolation, and the stats renderers.
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisCache.h"
#include "driver/BatchPipeline.h"
#include "ir/IRPrinter.h"
#include "trace/MetricsRegistry.h"
#include "workloads/ProgramGenerator.h"

#include "gtest/gtest.h"

#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

/// A two-thread in-memory batch job from generator seeds.
BatchJob makeGeneratedJob(uint64_t Seed, const std::string &Name) {
  BatchJob Job;
  Job.Name = Name;
  for (int T = 0; T < 2; ++T) {
    GeneratorConfig Config;
    Config.TargetInstructions = 60;
    Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
    Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
    Program P = generateRandomProgram(Seed * 10 + static_cast<uint64_t>(T),
                                      Config);
    P.Name = "gen" + std::to_string(T);
    Job.Program.Threads.push_back(std::move(P));
  }
  return Job;
}

std::vector<BatchJob> makeCorpus(int N) {
  std::vector<BatchJob> Jobs;
  for (int I = 0; I < N; ++I)
    Jobs.push_back(makeGeneratedJob(static_cast<uint64_t>(I) + 1,
                                    "job" + std::to_string(I)));
  return Jobs;
}

std::string examplePath(const char *File) {
  return std::string(NPRAL_EXAMPLES_ASM_DIR) + "/" + File;
}

} // namespace

TEST(BatchPipelineTest, ResultsInInputOrderAndSucceed) {
  std::vector<BatchJob> Jobs = makeCorpus(6);
  BatchOptions Opts;
  Opts.Jobs = 4;
  BatchResult R = runBatch(Jobs, Opts);

  ASSERT_EQ(R.Results.size(), Jobs.size());
  EXPECT_TRUE(R.allSucceeded());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_EQ(R.Results[I].Name, Jobs[I].Name);
    EXPECT_EQ(R.Results[I].NumThreads, 2);
    EXPECT_GT(R.Results[I].RegistersUsed, 0);
    EXPECT_LE(R.Results[I].RegistersUsed, Opts.Nreg);
  }
  EXPECT_EQ(R.Stats.Programs, 6);
  EXPECT_EQ(R.Stats.Succeeded, 6);
  EXPECT_EQ(R.Stats.Failed, 0);
  EXPECT_GT(R.Stats.WallNs, 0);
  EXPECT_GT(R.Stats.throughput(), 0.0);
}

TEST(BatchPipelineTest, FileInputsParseAndAllocate) {
  std::vector<BatchJob> Jobs;
  for (const char *File :
       {"two_threads.s", "fig3_paper.s", "modular_kernel.s"}) {
    BatchJob Job;
    Job.Path = examplePath(File);
    Jobs.push_back(std::move(Job));
  }
  BatchResult R = runBatch(Jobs, BatchOptions{});
  ASSERT_EQ(R.Results.size(), 3u);
  for (const BatchJobResult &Res : R.Results)
    EXPECT_TRUE(Res.Success) << Res.Name << ": " << Res.FailReason;
}

TEST(BatchPipelineTest, MissingFileFailsItsJobOnly) {
  std::vector<BatchJob> Jobs = makeCorpus(2);
  BatchJob Bad;
  Bad.Path = examplePath("does_not_exist.s");
  Jobs.insert(Jobs.begin() + 1, Bad);

  BatchResult R = runBatch(Jobs, BatchOptions{});
  ASSERT_EQ(R.Results.size(), 3u);
  EXPECT_TRUE(R.Results[0].Success);
  EXPECT_FALSE(R.Results[1].Success);
  EXPECT_FALSE(R.Results[1].FailReason.empty());
  EXPECT_TRUE(R.Results[2].Success);
  EXPECT_EQ(R.Stats.Failed, 1);
  EXPECT_FALSE(R.allSucceeded());
}

TEST(BatchPipelineTest, DuplicateInputsHitTheCache) {
  std::vector<BatchJob> Jobs = makeCorpus(3);
  Jobs.push_back(makeGeneratedJob(1, "job0-again")); // same seed as job0
  BatchOptions Opts;
  Opts.UseCache = true;
  BatchResult R = runBatch(Jobs, Opts);

  EXPECT_TRUE(R.allSucceeded());
  EXPECT_TRUE(R.Stats.CacheEnabled);
  // job0-again's two threads are byte-identical to job0's.
  EXPECT_GE(R.Stats.CacheHits, 2);
  EXPECT_GT(R.Stats.CacheMisses, 0);
  EXPECT_GT(R.Stats.cacheHitRate(), 0.0);
}

TEST(BatchPipelineTest, WarmSharedCacheHitsOnEveryThread) {
  std::vector<BatchJob> Jobs = makeCorpus(4);
  AnalysisCache Cache;
  BatchOptions Opts;
  Opts.UseCache = true;

  BatchResult Cold = runBatch(Jobs, Opts, &Cache);
  EXPECT_TRUE(Cold.allSucceeded());
  EXPECT_EQ(Cold.Stats.CacheHits, 0);
  EXPECT_EQ(Cold.Stats.CacheMisses, 8); // 4 jobs x 2 threads

  BatchResult Warm = runBatch(Jobs, Opts, &Cache);
  EXPECT_TRUE(Warm.allSucceeded());
  EXPECT_EQ(Warm.Stats.CacheHits, 8);
  EXPECT_EQ(Warm.Stats.CacheMisses, 0);
  EXPECT_EQ(Warm.Stats.cacheHitRate(), 1.0);

  // Warm results are identical to cold ones.
  for (size_t I = 0; I < Jobs.size(); ++I) {
    EXPECT_EQ(Warm.Results[I].RegistersUsed, Cold.Results[I].RegistersUsed);
    EXPECT_EQ(Warm.Results[I].SGR, Cold.Results[I].SGR);
    EXPECT_EQ(Warm.Results[I].TotalMoveCost, Cold.Results[I].TotalMoveCost);
  }
}

TEST(BatchPipelineTest, WorkerCountDoesNotChangeResults) {
  std::vector<BatchJob> Jobs = makeCorpus(8);
  BatchOptions Serial;
  Serial.Jobs = 1;
  Serial.KeepPhysical = true;
  BatchOptions Parallel;
  Parallel.Jobs = 4;
  Parallel.KeepPhysical = true;
  Parallel.UseCache = true;

  BatchResult A = runBatch(Jobs, Serial);
  BatchResult B = runBatch(Jobs, Parallel);
  ASSERT_EQ(A.Results.size(), B.Results.size());
  for (size_t I = 0; I < A.Results.size(); ++I) {
    EXPECT_EQ(A.Results[I].Success, B.Results[I].Success);
    EXPECT_EQ(A.Results[I].RegistersUsed, B.Results[I].RegistersUsed);
    EXPECT_EQ(A.Results[I].SGR, B.Results[I].SGR);
    EXPECT_EQ(A.Results[I].TotalMoveCost, B.Results[I].TotalMoveCost);
    ASSERT_EQ(A.Results[I].Physical.getNumThreads(),
              B.Results[I].Physical.getNumThreads());
    for (size_t T = 0; T < A.Results[I].Physical.Threads.size(); ++T)
      EXPECT_EQ(programToString(A.Results[I].Physical.Threads[T]),
                programToString(B.Results[I].Physical.Threads[T]))
          << "job " << I << " thread " << T;
  }
}

TEST(BatchPipelineTest, StatsRenderersEmitExpectedKeys) {
  std::vector<BatchJob> Jobs = makeCorpus(2);
  BatchOptions Opts;
  Opts.UseCache = true;
  Opts.Jobs = 2;
  BatchResult R = runBatch(Jobs, Opts);

  std::ostringstream Text;
  R.Stats.renderText(Text);
  EXPECT_NE(Text.str().find("programs"), std::string::npos);
  EXPECT_NE(Text.str().find("cache:"), std::string::npos);
  EXPECT_NE(Text.str().find("wall:"), std::string::npos);

  std::ostringstream JSON;
  R.Stats.renderJSON(JSON);
  const std::string S = JSON.str();
  for (const char *Key :
       {"\"programs\"", "\"succeeded\"", "\"failed\"", "\"jobs\"",
        "\"cache\"", "\"hit_rate\"", "\"stages_ns\"", "\"wall_ns\"",
        "\"throughput_programs_per_sec\""})
    EXPECT_NE(S.find(Key), std::string::npos) << "missing " << Key << " in\n"
                                              << S;
}

TEST(BatchPipelineTest, ValidateProvesJobsAndFillsStats) {
  std::vector<BatchJob> Jobs = makeCorpus(4);
  BatchOptions Opts;
  Opts.Jobs = 2;
  Opts.Validate = true;
  BatchResult R = runBatch(Jobs, Opts);

  ASSERT_TRUE(R.allSucceeded());
  for (const BatchJobResult &Res : R.Results) {
    EXPECT_TRUE(Res.Validated) << Res.Name;
    EXPECT_GT(Res.ValidateNs, 0) << Res.Name;
  }
  EXPECT_EQ(R.Stats.Validated, 4);
  EXPECT_EQ(R.Stats.ValidateFailed, 0);
  EXPECT_GT(R.Stats.ValidateNs, 0);

  // The validate line is rendered by both renderers...
  std::ostringstream Text;
  R.Stats.renderText(Text);
  EXPECT_NE(Text.str().find("validate: 4 proved, 0 refuted"),
            std::string::npos)
      << Text.str();
  std::ostringstream JSON;
  R.Stats.renderJSON(JSON);
  EXPECT_NE(JSON.str().find("\"validate\": {\"proved\": 4"),
            std::string::npos)
      << JSON.str();

  // ...and round-trips through the metrics registry adapters.
  MetricsRegistry MR;
  R.Stats.toRegistry(MR);
  PipelineStats Back = PipelineStats::fromRegistry(MR);
  EXPECT_EQ(Back.Validated, R.Stats.Validated);
  EXPECT_EQ(Back.ValidateFailed, R.Stats.ValidateFailed);
  EXPECT_EQ(Back.ValidateNs, R.Stats.ValidateNs);
}

TEST(BatchPipelineTest, ValidateOffKeepsStatsOutputByteStable) {
  std::vector<BatchJob> Jobs = makeCorpus(2);
  BatchResult R = runBatch(Jobs, BatchOptions{});
  EXPECT_EQ(R.Stats.Validated, 0);
  EXPECT_EQ(R.Stats.ValidateFailed, 0);
  std::ostringstream Text, JSON;
  R.Stats.renderText(Text);
  R.Stats.renderJSON(JSON);
  EXPECT_EQ(Text.str().find("validate"), std::string::npos) << Text.str();
  EXPECT_EQ(JSON.str().find("\"validate\""), std::string::npos) << JSON.str();
}

TEST(AnalysisCacheTest, HashDistinguishesPrograms) {
  GeneratorConfig Config;
  Program A = generateRandomProgram(1, Config);
  Program B = generateRandomProgram(2, Config);
  Program A2 = generateRandomProgram(1, Config);
  EXPECT_EQ(hashProgramContent(A), hashProgramContent(A2));
  EXPECT_NE(hashProgramContent(A), hashProgramContent(B));
  // The thread name is part of the content.
  A2.Name = "renamed";
  EXPECT_NE(hashProgramContent(A), hashProgramContent(A2));
}

TEST(AnalysisCacheTest, FirstInsertWins) {
  AnalysisCache Cache;
  GeneratorConfig Config;
  Program P = generateRandomProgram(7, Config);
  const std::string Text = programToString(P);

  EXPECT_EQ(Cache.lookup(42, Text), nullptr);
  EXPECT_EQ(Cache.misses(), 1);

  auto B1 = std::make_shared<const ThreadAnalysisBundle>(
      computeThreadAnalysisBundle(P));
  auto B2 = std::make_shared<const ThreadAnalysisBundle>(
      computeThreadAnalysisBundle(P));
  EXPECT_EQ(Cache.insert(42, Text, B1), B1);
  EXPECT_EQ(Cache.insert(42, Text, B2), B1); // loser dropped, entry kept
  EXPECT_EQ(Cache.lookup(42, Text), B1);
  EXPECT_EQ(Cache.hits(), 1);
  EXPECT_EQ(Cache.size(), 1u);
}

// Soundness under a forced 64-bit hash collision: two different programs
// deliberately inserted under the SAME key must never be served for each
// other. The byte comparison — not the hash — is what decides a hit.
TEST(AnalysisCacheTest, ForcedCollisionIsNeverServed) {
  AnalysisCache Cache;
  GeneratorConfig Config;
  Program A = generateRandomProgram(11, Config);
  Program B = generateRandomProgram(12, Config);
  const std::string TextA = programToString(A);
  const std::string TextB = programToString(B);
  ASSERT_NE(TextA, TextB);

  const uint64_t Key = 0xdeadbeef; // both programs "hash" to this
  auto BundleA = std::make_shared<const ThreadAnalysisBundle>(
      computeThreadAnalysisBundle(A));
  auto BundleB = std::make_shared<const ThreadAnalysisBundle>(
      computeThreadAnalysisBundle(B));

  EXPECT_EQ(Cache.insert(Key, TextA, BundleA), BundleA);

  // Lookup with B's text must miss even though the key is present, and the
  // collision must be observable in the stats.
  EXPECT_EQ(Cache.lookup(Key, TextB), nullptr);
  EXPECT_EQ(Cache.collisions(), 1);
  EXPECT_EQ(Cache.misses(), 1);
  EXPECT_EQ(Cache.hits(), 0);

  // Inserting B under the occupied key must not evict or poison A's entry;
  // the caller keeps its own bundle.
  EXPECT_EQ(Cache.insert(Key, TextB, BundleB), BundleB);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.lookup(Key, TextA), BundleA);
  EXPECT_EQ(Cache.hits(), 1);
  EXPECT_EQ(Cache.lookup(Key, TextB), nullptr);
  EXPECT_EQ(Cache.collisions(), 2);
}
