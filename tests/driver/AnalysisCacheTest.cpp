//===- AnalysisCacheTest.cpp - Bounded-cache unit tests -------------------===//
//
// Covers the AnalysisCache byte budget: LRU eviction order, recency updates
// on hit, the protect-the-fresh-insert rule, the eviction/bytes counters,
// and — end to end — that a batch forced through a tiny cache recomputes
// evicted bundles and still produces output identical to an unbounded run.
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisCache.h"
#include "driver/BatchPipeline.h"
#include "trace/MetricsRegistry.h"
#include "workloads/ProgramGenerator.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>
#include <vector>

using namespace npral;

namespace {

std::shared_ptr<const ThreadAnalysisBundle> emptyBundle() {
  return std::make_shared<ThreadAnalysisBundle>();
}

/// Synthetic entry text of a controlled size; the cache charges an entry
/// Text.size()-proportional cost, so sizes translate to budget pressure.
std::string textOfSize(size_t N, char Fill) { return std::string(N, Fill); }

BatchJob makeGeneratedJob(uint64_t Seed, const std::string &Name) {
  BatchJob Job;
  Job.Name = Name;
  for (int T = 0; T < 2; ++T) {
    GeneratorConfig Config;
    Config.TargetInstructions = 60;
    Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
    Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
    Program P = generateRandomProgram(Seed * 10 + static_cast<uint64_t>(T),
                                      Config);
    P.Name = "gen" + std::to_string(T);
    Job.Program.Threads.push_back(std::move(P));
  }
  return Job;
}

} // namespace

TEST(AnalysisCacheTest, UnboundedCacheNeverEvicts) {
  AnalysisCache Cache; // MaxBytes = 0
  for (uint64_t K = 1; K <= 50; ++K)
    Cache.insert(K, textOfSize(1000, 'a'), emptyBundle());
  EXPECT_EQ(Cache.size(), 50u);
  EXPECT_EQ(Cache.evictions(), 0);
  EXPECT_GT(Cache.bytes(), 0);
  EXPECT_EQ(Cache.maxBytes(), 0);
}

TEST(AnalysisCacheTest, InsertOverBudgetEvictsLeastRecentlyUsed) {
  // Each 250-byte entry costs ~1.5 KiB; a 3 KiB budget holds two at most.
  AnalysisCache Cache(3000);
  const std::string TA = textOfSize(250, 'a');
  const std::string TB = textOfSize(250, 'b');
  const std::string TC = textOfSize(250, 'c');
  Cache.insert(1, TA, emptyBundle());
  Cache.insert(2, TB, emptyBundle());
  EXPECT_GT(Cache.evictions(), 0); // Two entries already exceed 3000.
  Cache.insert(3, TC, emptyBundle());
  // Key 3 was just inserted (protected); older keys were evicted in LRU
  // order, so key 1 must be gone.
  EXPECT_EQ(Cache.lookup(1, TA), nullptr);
  EXPECT_NE(Cache.lookup(3, TC), nullptr);
  EXPECT_LE(Cache.bytes(), Cache.maxBytes());
}

TEST(AnalysisCacheTest, LookupRefreshesRecency) {
  // Budget for two entries: insert A and B, touch A, insert C — the LRU
  // victim must now be B, not A.
  AnalysisCache Cache(4000);
  const std::string TA = textOfSize(250, 'a');
  const std::string TB = textOfSize(250, 'b');
  const std::string TC = textOfSize(250, 'c');
  Cache.insert(1, TA, emptyBundle());
  Cache.insert(2, TB, emptyBundle());
  EXPECT_EQ(Cache.evictions(), 0);
  EXPECT_NE(Cache.lookup(1, TA), nullptr); // A becomes most recent.
  Cache.insert(3, TC, emptyBundle());
  EXPECT_GT(Cache.evictions(), 0);
  EXPECT_NE(Cache.lookup(1, TA), nullptr);
  EXPECT_EQ(Cache.lookup(2, TB), nullptr);
  EXPECT_NE(Cache.lookup(3, TC), nullptr);
}

TEST(AnalysisCacheTest, OversizedEntrySurvivesUntilNextInsert) {
  // The protect rule: an entry larger than the whole budget is kept until
  // the next insert (one oversized compute is served once rather than
  // evicted before its own lookup can hit).
  AnalysisCache Cache(1000);
  const std::string Big = textOfSize(5000, 'x');
  Cache.insert(1, Big, emptyBundle());
  EXPECT_NE(Cache.lookup(1, Big), nullptr);
  const std::string Small = textOfSize(10, 'y');
  Cache.insert(2, Small, emptyBundle());
  EXPECT_EQ(Cache.lookup(1, Big), nullptr);
  EXPECT_NE(Cache.lookup(2, Small), nullptr);
}

TEST(AnalysisCacheTest, EvictionBumpsGlobalMetrics) {
  const int64_t Before =
      MetricsRegistry::global().counterValue("cache.evictions");
  AnalysisCache Cache(1500);
  for (uint64_t K = 1; K <= 8; ++K)
    Cache.insert(K, textOfSize(200, static_cast<char>('a' + K)),
                 emptyBundle());
  EXPECT_GT(Cache.evictions(), 0);
  EXPECT_EQ(MetricsRegistry::global().counterValue("cache.evictions"),
            Before + Cache.evictions());
  EXPECT_GE(MetricsRegistry::global().gaugeValue("cache.bytes"), 0);
}

TEST(AnalysisCacheTest, BatchThroughTinyCacheRecomputesCorrectly) {
  // Force constant eviction traffic with a budget far below the working
  // set, and verify the pipeline's results are identical to an unbounded
  // run: eviction may cost recomputation, never correctness.
  std::vector<BatchJob> Jobs;
  for (int I = 0; I < 6; ++I)
    Jobs.push_back(makeGeneratedJob(static_cast<uint64_t>(I) + 1,
                                    "job" + std::to_string(I)));
  // Repeat the corpus so evicted entries get re-requested.
  for (int I = 0; I < 6; ++I)
    Jobs.push_back(makeGeneratedJob(static_cast<uint64_t>(I) + 1,
                                    "again" + std::to_string(I)));

  BatchOptions Opts;
  Opts.Jobs = 2;
  AnalysisCache Tiny(2000);
  BatchResult Bounded = runBatch(Jobs, Opts, &Tiny);
  AnalysisCache Unbounded;
  BatchResult Reference = runBatch(Jobs, Opts, &Unbounded);

  EXPECT_GT(Tiny.evictions(), 0);
  EXPECT_EQ(Unbounded.evictions(), 0);
  ASSERT_EQ(Bounded.Results.size(), Reference.Results.size());
  for (size_t I = 0; I < Bounded.Results.size(); ++I) {
    EXPECT_TRUE(Bounded.Results[I].Success);
    EXPECT_EQ(Bounded.Results[I].RegistersUsed,
              Reference.Results[I].RegistersUsed);
    EXPECT_EQ(Bounded.Results[I].SGR, Reference.Results[I].SGR);
    EXPECT_EQ(Bounded.Results[I].TotalMoveCost,
              Reference.Results[I].TotalMoveCost);
  }
}

TEST(AnalysisCacheTest, BatchOptionCacheBytesBoundsTheRunLocalCache) {
  std::vector<BatchJob> Jobs;
  for (int I = 0; I < 8; ++I)
    Jobs.push_back(makeGeneratedJob(static_cast<uint64_t>(I) + 1,
                                    "job" + std::to_string(I)));
  const int64_t EvBefore =
      MetricsRegistry::global().counterValue("cache.evictions");
  BatchOptions Opts;
  Opts.UseCache = true;
  Opts.CacheBytes = 2000;
  BatchResult R = runBatch(Jobs, Opts);
  EXPECT_TRUE(R.allSucceeded());
  // The run-local cache was bounded, so the tiny budget forced evictions.
  EXPECT_GT(MetricsRegistry::global().counterValue("cache.evictions"),
            EvBefore);
}
