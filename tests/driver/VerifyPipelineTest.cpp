//===- VerifyPipelineTest.cpp - Verify driver unit tests ------------------===//
//
// Covers the `npralc verify` pipeline library: allocate-mode proofs over
// the example corpus, paired-mode rejection of the bad_swap fixture, error
// isolation, and the satellite determinism pin — the rendered JSON report
// must be byte-identical between --jobs 1 and --jobs 8.
//
//===----------------------------------------------------------------------===//

#include "driver/VerifyPipeline.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

std::string examplePath(const char *File) {
  return std::string(NPRAL_EXAMPLES_ASM_DIR) + "/" + File;
}

/// All example .s files in sorted order (deterministic input list).
std::vector<std::string> allExamples() {
  std::vector<std::string> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(NPRAL_EXAMPLES_ASM_DIR))
    if (Entry.path().extension() == ".s")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

std::string renderJSON(const VerifyResult &R) {
  std::ostringstream OS;
  R.renderJSON(OS);
  return OS.str();
}

} // namespace

TEST(VerifyPipelineTest, ProvesAllExamplesInAllocateMode) {
  // In allocate mode even bad_swap.s proves: the allocator re-allocates
  // its threads correctly; the planted miscompile only exists in the
  // hand-written physical half that --paired checks.
  std::vector<std::string> Paths = allExamples();
  ASSERT_GE(Paths.size(), 12u);
  VerifyOptions Opts;
  Opts.Jobs = 4;
  VerifyResult R = runVerify(Paths, Opts);
  EXPECT_EQ(R.Rejected, 0);
  EXPECT_EQ(R.Errors, 0);
  EXPECT_EQ(R.Proved, static_cast<int>(Paths.size()));
  EXPECT_TRUE(R.allProved());
  for (const VerifyFileResult &F : R.Files) {
    EXPECT_TRUE(F.Proved) << F.Name << ": " << F.FailReason;
    EXPECT_GT(F.ThreadsProved, 0) << F.Name;
    EXPECT_GT(F.InstructionsMatched, 0) << F.Name;
  }
}

TEST(VerifyPipelineTest, PairedModeRejectsBadSwapWithWitness) {
  VerifyOptions Opts;
  Opts.Paired = true;
  VerifyResult R = runVerify({examplePath("bad_swap.s")}, Opts);
  ASSERT_EQ(R.Files.size(), 1u);
  EXPECT_EQ(R.Rejected, 1);
  EXPECT_FALSE(R.Files[0].Proved);
  ASSERT_FALSE(R.Files[0].Diags.empty());
  const Diagnostic &D = R.Files[0].Diags.front();
  EXPECT_EQ(D.Check, "translation-validation");
  EXPECT_NE(D.Message.find("does not carry the value"), std::string::npos)
      << D.Message;
  EXPECT_NE(D.Witness.find("path:"), std::string::npos) << D.Witness;
}

TEST(VerifyPipelineTest, SpillDegradedOutputStillProves) {
  // A budget far below two_threads.s's requirement forces the spill
  // fallback; the degraded output must prove against the pre-spill input.
  VerifyOptions Opts;
  Opts.AllowSpill = true;
  bool SawDegradedProof = false;
  for (int Nreg = 6; Nreg >= 2 && !SawDegradedProof; --Nreg) {
    Opts.Nreg = Nreg;
    VerifyResult R = runVerify({examplePath("two_threads.s")}, Opts);
    ASSERT_EQ(R.Files.size(), 1u);
    if (!R.Files[0].UsedSpilling)
      continue;
    EXPECT_TRUE(R.Files[0].Proved)
        << "degraded output rejected at Nreg=" << Nreg;
    SawDegradedProof = R.Files[0].Proved;
  }
  EXPECT_TRUE(SawDegradedProof)
      << "no budget in [2,6] forced the spill fallback";
}

TEST(VerifyPipelineTest, UnreadableFileIsAnErrorNotARejection) {
  VerifyResult R =
      runVerify({examplePath("two_threads.s"), "/nonexistent/nope.s"},
                VerifyOptions{});
  ASSERT_EQ(R.Files.size(), 2u);
  EXPECT_EQ(R.Proved, 1);
  EXPECT_EQ(R.Rejected, 0);
  EXPECT_EQ(R.Errors, 1);
  EXPECT_FALSE(R.allProved());
  EXPECT_FALSE(R.Files[1].FailReason.empty());
}

TEST(VerifyPipelineTest, ReportIsByteIdenticalAcrossWorkerCounts) {
  // The satellite determinism pin: diagnostics are sorted by program
  // position and every job writes only its own slot, so the rendered JSON
  // must not depend on worker scheduling. Include a rejection (paired
  // bad_swap would need a separate run, so squeeze budgets instead) to
  // make sure diagnostic-carrying results are covered too.
  std::vector<std::string> Paths = allExamples();
  VerifyOptions Serial;
  Serial.Jobs = 1;
  VerifyOptions Parallel;
  Parallel.Jobs = 8;
  const std::string A = renderJSON(runVerify(Paths, Serial));
  const std::string B = renderJSON(runVerify(Paths, Parallel));
  EXPECT_EQ(A, B);

  // Same pin for paired mode, where rejections carry witness diagnostics.
  Serial.Paired = Parallel.Paired = true;
  const std::vector<std::string> Pair{examplePath("bad_swap.s"),
                                      examplePath("bad_swap.s"),
                                      examplePath("bad_swap.s")};
  const std::string PA = renderJSON(runVerify(Pair, Serial));
  const std::string PB = renderJSON(runVerify(Pair, Parallel));
  EXPECT_EQ(PA, PB);
}
