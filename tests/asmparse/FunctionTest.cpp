//===- FunctionTest.cpp - .func / call / ret inline expansion -------------===//
//
// Assembler-level functions: the machine has no call stack (only the PC is
// saved on a context switch), so calls are expanded inline with shared
// register names — which also realises the paper's remark that NSRs and
// interference graphs "can be constructed inter-procedurally": after
// expansion the caller and callee are one CFG.
//
//===----------------------------------------------------------------------===//

#include "alloc/InterAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "asmparse/AsmParser.h"
#include "ir/IRVerifier.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

TEST(FunctionTest, SimpleCallExpandsAndRuns) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  x, 5
    call double_x
    imm  o, 0x200
    store [o+0], x
    halt

.func double_x
body:
    add  x, x, x
    ret
)");
  ASSERT_TRUE(verifyProgram(P).ok());
  // No call/ret survives expansion.
  for (const BasicBlock &BB : P.Blocks)
    for (const Instruction &I : BB.Instrs) {
      EXPECT_NE(I.Op, Opcode::Call);
      EXPECT_NE(I.Op, Opcode::Ret);
    }
  auto Run = runSingle(P, {}, 0x200, 4);
  ASSERT_TRUE(Run.Result.Completed) << Run.Result.FailReason;
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x200), 10u);
}

TEST(FunctionTest, FunctionDefinedBeforeUse) {
  Program P = parseOrDie(R"(
.func inc
body:
    addi v, v, 1
    ret

.thread t
main:
    imm  v, 1
    call inc
    call inc
    imm  o, 0x200
    store [o+0], v
    halt
)");
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x200), 3u);
}

TEST(FunctionTest, EachCallSiteGetsItsOwnCopy) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  v, 1
    call twice
    call twice
    call twice
    imm  o, 0x200
    store [o+0], v
    halt
.func twice
body:
    add v, v, v
    ret
)");
  // Three expansions: the body's add appears three times.
  int Adds = 0;
  for (const BasicBlock &BB : P.Blocks)
    for (const Instruction &I : BB.Instrs)
      if (I.Op == Opcode::Add)
        ++Adds;
  EXPECT_EQ(Adds, 3);
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x200), 8u);
}

TEST(FunctionTest, BranchesAndMultipleRets) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  v, 7
    call absdiff10
    imm  o, 0x200
    store [o+0], v
    imm  v, 13
    call absdiff10
    store [o+1], v
    halt
.func absdiff10
body:
    imm  ten, 10
    blt  v, ten, below
    sub  v, v, ten
    ret
below:
    sub  v, ten, v
    ret
)");
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x200), 3u);
  EXPECT_EQ(Sim.readMemoryWord(0x201), 3u);
}

TEST(FunctionTest, NestedCalls) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  v, 2
    call quad
    imm  o, 0x200
    store [o+0], v
    halt
.func quad
body:
    call twice
    call twice
    ret
.func twice
body:
    add v, v, v
    ret
)");
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x200), 8u);
}

TEST(FunctionTest, FunctionWithLoadIsACSBInCaller) {
  // Inter-procedural NSRs: a memory read inside the callee splits the
  // caller's regions, and caller values live over the call cross it.
  Program P = parseOrDie(R"(
.thread t
.entrylive buf
main:
    imm  keep, 42
    call fetch
    add  keep, keep, got
    imm  o, 0x200
    store [o+0], keep
    halt
.func fetch
body:
    load got, [buf+0]
    ret
)");
  ThreadAnalysis TA = analyzeThread(P);
  // keep crosses the load inside the expanded callee.
  Reg Keep = NoReg;
  for (Reg R = 0; R < P.NumRegs; ++R)
    if (P.getRegName(R) == "keep")
      Keep = R;
  ASSERT_NE(Keep, NoReg);
  EXPECT_TRUE(TA.BoundaryNodes.test(Keep));
}

TEST(FunctionTest, RecursionRejected) {
  auto R = parseSingleProgram(R"(
.thread t
main:
    call forever
    halt
.func forever
body:
    call forever
    ret
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.status().str().find("recursive"), std::string::npos);
}

TEST(FunctionTest, UndefinedFunctionRejected) {
  auto R = parseSingleProgram(R"(
.thread t
main:
    call ghost
    halt
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.status().str().find("undefined function"), std::string::npos);
}

TEST(FunctionTest, DuplicateFunctionRejected) {
  auto R = parseAssembly(R"(
.func f
body:
    ret
.func f
body:
    ret
.thread t
main:
    halt
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.status().str().find("duplicate function"), std::string::npos);
}

TEST(FunctionTest, StrayRetInThreadRejected) {
  auto R = parseSingleProgram(R"(
.thread t
main:
    ret
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.status().str().find("expanded"), std::string::npos);
}

TEST(FunctionTest, CallInLoopBody) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  v, 0
    imm  n, 5
loop:
    call bump
    subi n, n, 1
    bnz  n, loop
    imm  o, 0x200
    store [o+0], v
    halt
.func bump
body:
    addi v, v, 3
    ret
)");
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  Simulator Sim(MTP, SimConfig());
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x200), 15u);
}

TEST(FunctionTest, AllocatableAfterExpansion) {
  // The whole pipeline works on expanded programs.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread worker
.entrylive buf
main:
    imm  acc, 0
    imm  n, 4
loop:
    call step
    subi n, n, 1
    bnz  n, loop
    imm  o, 0x200
    store [o+0], acc
    loopend
    halt
.func step
body:
    load w, [buf+0]
    muli w, w, 3
    add  acc, acc, w
    addi buf, buf, 1
    ret
)");
  ASSERT_TRUE(MTP.ok()) << MTP.status().str();
  InterThreadResult R = allocateInterThread(*MTP, 16);
  ASSERT_TRUE(R.Success) << R.FailReason;
  Simulator Ref(*MTP, SimConfig());
  Ref.writeMemory(0x100, {1, 2, 3, 4});
  Ref.setEntryValues(0, {0x100});
  ASSERT_TRUE(Ref.run().Completed);
  Simulator Sim(R.Physical, SimConfig());
  Sim.writeMemory(0x100, {1, 2, 3, 4});
  Sim.setEntryValues(0, {0x100});
  ASSERT_TRUE(Sim.run().Completed);
  EXPECT_EQ(Sim.readMemoryWord(0x200), Ref.readMemoryWord(0x200));
  EXPECT_EQ(Sim.readMemoryWord(0x200), 30u);
}
