//===- AsmParserTest.cpp --------------------------------------------------===//

#include "asmparse/AsmParser.h"

#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

TEST(AsmParserTest, MinimalProgram) {
  Program P = parseOrDie(".thread t\nmain:\n  halt\n");
  EXPECT_EQ(P.Name, "t");
  EXPECT_EQ(P.getNumBlocks(), 1);
  EXPECT_EQ(P.block(0).Instrs.size(), 1u);
}

TEST(AsmParserTest, ImplicitEntryBlock) {
  Program P = parseOrDie(".thread t\n  imm a, 1\n  halt\n");
  EXPECT_EQ(P.blockName(0), "entry");
}

TEST(AsmParserTest, RegistersAreImplicitlyDeclared) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    add  b, a, a
    halt
)");
  EXPECT_EQ(P.NumRegs, 2);
  EXPECT_EQ(P.getRegName(0), "a");
  EXPECT_EQ(P.getRegName(1), "b");
}

TEST(AsmParserTest, EntryLiveDirective) {
  Program P = parseOrDie(R"(
.thread t
.entrylive buf, len
main:
    add  x, buf, len
    halt
)");
  ASSERT_EQ(P.EntryLiveRegs.size(), 2u);
  EXPECT_EQ(P.getRegName(P.EntryLiveRegs[0]), "buf");
  EXPECT_EQ(P.getRegName(P.EntryLiveRegs[1]), "len");
}

TEST(AsmParserTest, MemOperands) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm   b, 0x100
    load  a, [b+4]
    load  c, [b]
    store [b+8], a
    storea 256, c
    loada d, 257
    store [b+0], d
    halt
)");
  const auto &I = P.block(0).Instrs;
  EXPECT_EQ(I[1].Imm, 4);
  EXPECT_EQ(I[2].Imm, 0);
  EXPECT_EQ(I[3].Imm, 8);
  EXPECT_EQ(I[4].Imm, 256);
  EXPECT_EQ(I[5].Imm, 257);
}

TEST(AsmParserTest, BranchTargetsResolveForwardAndBack) {
  Program P = parseOrDie(R"(
.thread t
top:
    imm  a, 3
loop:
    subi a, a, 1
    bnz  a, loop
    bz   a, done
    br   top
done:
    halt
)");
  ASSERT_TRUE(verifyProgram(P).ok());
  // bnz targets 'loop'.
  bool SawBack = false, SawFwd = false;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    for (const Instruction &I : P.block(B).Instrs) {
      if (I.Op == Opcode::BrNz)
        SawBack = P.blockName(I.Target) == "loop";
      if (I.Op == Opcode::BrZ)
        SawFwd = P.blockName(I.Target) == "done";
    }
  EXPECT_TRUE(SawBack);
  EXPECT_TRUE(SawFwd);
}

TEST(AsmParserTest, MidStreamConditionalSplitsBlock) {
  Program P = parseOrDie(R"(
.thread t
main:
    imm  a, 1
    bz   a, out
    addi a, a, 1
out:
    halt
)");
  // The addi after the bz must live in its own (fallthrough) block.
  EXPECT_GE(P.getNumBlocks(), 3);
  ASSERT_TRUE(verifyProgram(P).ok());
}

TEST(AsmParserTest, CommentsAndBlankLines) {
  Program P = parseOrDie(R"(
; leading comment
.thread t    ; trailing comment

main:        # hash comment
    imm a, 1 ; mid-line
    halt
)");
  EXPECT_EQ(P.countInstructions(), 2);
}

TEST(AsmParserTest, MultipleThreads) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(R"(
.thread one
main:
    halt
.thread two
main:
    imm a, 1
    halt
)");
  ASSERT_TRUE(MTP.ok()) << MTP.status().str();
  ASSERT_EQ(MTP->Threads.size(), 2u);
  EXPECT_EQ(MTP->Threads[0].Name, "one");
  EXPECT_EQ(MTP->Threads[1].Name, "two");
  EXPECT_EQ(MTP->Threads[1].NumRegs, 1);
}

TEST(AsmParserTest, ErrorUnknownMnemonic) {
  auto R = parseSingleProgram(".thread t\nmain:\n  frobnicate a, b\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.status().str().find("unknown mnemonic"), std::string::npos);
}

TEST(AsmParserTest, ErrorUndefinedLabel) {
  auto R = parseSingleProgram(".thread t\nmain:\n  br nowhere\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.status().str().find("undefined label"), std::string::npos);
}

TEST(AsmParserTest, ErrorDuplicateLabel) {
  auto R = parseSingleProgram(".thread t\na:\n  halt\na:\n  halt\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.status().str().find("duplicate label"), std::string::npos);
}

TEST(AsmParserTest, ErrorMissingOperand) {
  auto R = parseSingleProgram(".thread t\nmain:\n  add a, b\n  halt\n");
  ASSERT_FALSE(R.ok());
}

TEST(AsmParserTest, ErrorTrailingTokens) {
  auto R = parseSingleProgram(".thread t\nmain:\n  ctx extra\n  halt\n");
  ASSERT_FALSE(R.ok());
}

TEST(AsmParserTest, EntryLiveDeclaresRegister) {
  // .entrylive declares registers even when nothing references them (they
  // may be consumed only inside expanded .func bodies).
  auto R = parseSingleProgram(R"(
.thread t
.entrylive ghost
main:
    halt
)");
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_EQ(R->EntryLiveRegs.size(), 1u);
  EXPECT_EQ(R->getRegName(R->EntryLiveRegs[0]), "ghost");
}

TEST(AsmParserTest, ErrorLocationsAreReported) {
  auto R = parseSingleProgram(".thread t\nmain:\n  imm a\n");
  ASSERT_FALSE(R.ok());
  EXPECT_GT(R.status().loc().Line, 0);
}

TEST(AsmParserTest, PrintParseRoundTrip) {
  Program P = parseOrDie(R"(
.thread round
.entrylive buf
main:
    imm  sum, 0
    imm  cnt, 3
loop:
    load w, [buf+0]
    add  sum, sum, w
    addi buf, buf, 1
    subi cnt, cnt, 1
    bnz  cnt, loop
    store [buf+100], sum
    ctx
    loopend
    halt
)");
  std::string Printed = programToString(P);
  Program P2 = parseOrDie(Printed);
  // Same structure.
  EXPECT_EQ(P2.getNumBlocks(), P.getNumBlocks());
  EXPECT_EQ(P2.countInstructions(), P.countInstructions());
  EXPECT_EQ(P2.NumRegs, P.NumRegs);
  // Same behaviour.
  auto R1 = runSingle(P, {0x1000}, 0x1000, 128,
                      std::vector<uint32_t>{7, 8, 9});
  auto R2 = runSingle(P2, {0x1000}, 0x1000, 128,
                      std::vector<uint32_t>{7, 8, 9});
  ASSERT_TRUE(R1.Result.Completed);
  ASSERT_TRUE(R2.Result.Completed);
  EXPECT_EQ(R1.OutputHash, R2.OutputHash);
}
