//===- FuzzTest.cpp - Parser robustness on hostile input ------------------===//
//
// The parser must never crash and must return a Status for any byte soup:
// random printable garbage, truncations of valid programs, and random
// line-level mutations. When it does accept an input, the result must
// verify.
//
//===----------------------------------------------------------------------===//

#include "asmparse/AsmParser.h"

#include "ir/IRVerifier.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <string>

using namespace npral;

namespace {

const char *ValidBase = R"(
.thread base
.entrylive buf
main:
    imm  sum, 0
    imm  cnt, 4
loop:
    load w, [buf+0]
    add  sum, sum, w
    addi buf, buf, 1
    subi cnt, cnt, 1
    bnz  cnt, loop
    store [buf+1], sum
    ctx
    loopend
    halt
)";

void expectNoCrashAndConsistent(const std::string &Input) {
  ErrorOr<MultiThreadProgram> R = parseAssembly(Input);
  if (!R.ok())
    return; // a rejection with a message is always acceptable
  for (const Program &T : R->Threads)
    EXPECT_TRUE(verifyProgram(T).ok())
        << "parser accepted a program that does not verify";
}

} // namespace

TEST(ParserFuzzTest, RandomPrintableGarbage) {
  Rng R(77);
  const char Alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ,:[]+-.;#\n\t";
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Input;
    size_t Len = R.nextBelow(400);
    for (size_t I = 0; I < Len; ++I)
      Input += Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
    expectNoCrashAndConsistent(Input);
  }
}

TEST(ParserFuzzTest, TruncationsOfValidProgram) {
  std::string Base = ValidBase;
  for (size_t Cut = 0; Cut < Base.size(); Cut += 3)
    expectNoCrashAndConsistent(Base.substr(0, Cut));
}

TEST(ParserFuzzTest, LineLevelMutations) {
  Rng R(88);
  std::string Base = ValidBase;
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Mutated = Base;
    size_t Pos = R.nextBelow(Mutated.size());
    switch (R.nextBelow(3)) {
    case 0:
      Mutated[Pos] = static_cast<char>('!' + R.nextBelow(90));
      break;
    case 1:
      Mutated.erase(Pos, 1 + R.nextBelow(5));
      break;
    default:
      Mutated.insert(Pos, std::string(1 + R.nextBelow(3),
                                      static_cast<char>('0' + R.nextBelow(75))));
      break;
    }
    expectNoCrashAndConsistent(Mutated);
  }
}

TEST(ParserFuzzTest, DeterministicAcceptance) {
  // Parsing is a pure function of the input.
  ErrorOr<MultiThreadProgram> A = parseAssembly(ValidBase);
  ErrorOr<MultiThreadProgram> B = parseAssembly(ValidBase);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(A->Threads[0].countInstructions(),
            B->Threads[0].countInstructions());
  EXPECT_EQ(A->Threads[0].NumRegs, B->Threads[0].NumRegs);
}
