//===- SoakTest.cpp - Multi-client serve soak driver ----------------------===//
//
// The acceptance soak for the serve daemon: many concurrent clients push a
// large mixed workload — valid allocations over a repeating corpus (cache
// hits), infeasible budgets, malformed payloads, deterministically
// injected faults, health and metrics probes — through one in-process
// server, then the suite asserts the robustness contract:
//
//   * zero lost responses: every request that was sent received a
//     classified response (ok, structured error, or shed);
//   * load shedding engaged under the oversubscribed burst (shed > 0)
//     and every shed response carried the retry-after hint;
//   * the shared analysis cache ran at a nonzero hit rate;
//   * process memory stayed bounded: RSS after the full run is within a
//     fixed factor of the RSS after warm-up.
//
// Request count: NPRAL_SOAK_REQUESTS (default 100000, the acceptance
// floor; CI's sanitizer lane lowers it to keep wall clock sane).
//
//===----------------------------------------------------------------------===//

#include "harden/FaultInjector.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Socket.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace npral;

namespace {

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

int soakRequests() {
  if (const char *Env = std::getenv("NPRAL_SOAK_REQUESTS"))
    if (int N = std::atoi(Env); N > 0)
      return N;
  return 100000;
}

struct ClientTally {
  int64_t Sent = 0;
  int64_t Ok = 0;
  int64_t StructuredErrors = 0;
  int64_t Shed = 0;
  int64_t ShedWithoutHint = 0;
  int64_t TransportErrors = 0;
  int64_t BodyMismatches = 0;
};

} // namespace

TEST(ServeSoakTest, MixedBurstStaysBoundedAndLosesNothing) {
  const int Total = soakRequests();
  const int NumClients = 16;

  ServeOptions Opts;
  Opts.SocketPath = "/tmp/npral-serve-soak-" + std::to_string(getpid()) +
                    ".sock";
  // Oversubscribed on purpose: few workers, small queue, many clients —
  // the burst must hit the admission bound and shed.
  Opts.Workers = 4;
  Opts.QueueCapacity = 4;
  Opts.CacheBytes = 32 << 20;
  // Inject alloc faults into ~10% of requests. Job names are the
  // server-global sequence, so the verdicts are deterministic; seed 1 is
  // chosen so the four golden warm-up requests (request-1..4) never fire.
  {
    ErrorOr<FaultInjector> FI = FaultInjector::parse("alloc@10#1");
    ASSERT_TRUE(FI.ok());
    Opts.Faults = FI.take();
  }
  Server S(std::move(Opts));
  ASSERT_TRUE(S.start().ok());

  // The request corpus: valid inputs (repeating, so the shared cache gets
  // hits), plus deliberate failures mixed in.
  std::vector<std::string> Valid;
  for (const char *F :
       {"two_threads.s", "fig3_paper.s", "modular_kernel.s",
        "packet_filter.s"})
    Valid.push_back(readFileOrDie(std::string(NPRAL_EXAMPLES_ASM_DIR) + "/" +
                                  F));
  // Expected bodies, computed once through the same pipeline entry the
  // server uses — every later ok response must match byte for byte.
  std::vector<std::string> Golden(Valid.size());
  for (size_t I = 0; I < Valid.size(); ++I) {
    ErrorOr<ServeClient> Conn =
        ServeClient::connectTo(S.options().SocketPath);
    ASSERT_TRUE(Conn.ok()) << Conn.status().str();
    ServeClient &C = *Conn;
    AllocRequest Req;
    Req.Assembly = Valid[I];
    ErrorOr<ServeResponse> R = C.alloc(Req);
    ASSERT_TRUE(R.ok() && R->Ok) << "golden " << I;
    Golden[I] = R->Body;
  }

  // Warm-up complete; the memory bound is measured from here.
  const int64_t WarmRSS = currentRSSBytes();
  ASSERT_GT(WarmRSS, 0);

  const int PerClient = Total / NumClients;
  std::vector<ClientTally> Tallies(NumClients);
  std::vector<std::thread> Clients;
  Clients.reserve(NumClients);
  for (int CI = 0; CI < NumClients; ++CI) {
    Clients.emplace_back([&, CI] {
      ClientTally &T = Tallies[static_cast<size_t>(CI)];
      ErrorOr<ServeClient> Conn =
          ServeClient::connectTo(S.options().SocketPath);
      if (!Conn.ok()) {
        T.TransportErrors = PerClient; // Count the whole share as lost.
        return;
      }
      ServeClient &C = *Conn;
      for (int I = 0; I < PerClient; ++I) {
        ++T.Sent;
        const int Kind = (CI * 7919 + I) % 20;
        if (Kind == 18) { // Health probe.
          ErrorOr<ServeResponse> R = C.health();
          if (R.ok() && R->Ok)
            ++T.Ok;
          else
            ++T.TransportErrors;
          continue;
        }
        if (Kind == 19) { // Metrics probe.
          ErrorOr<ServeResponse> R = C.metrics();
          if (R.ok() && R->Ok)
            ++T.Ok;
          else
            ++T.TransportErrors;
          continue;
        }
        AllocRequest Req;
        const size_t V = static_cast<size_t>(I) % Valid.size();
        Req.Assembly = Valid[V];
        bool ExpectBody = true;
        if (Kind == 16) { // Infeasible budget: classified failure.
          Req.Nreg = 2;
          ExpectBody = false;
        } else if (Kind == 17) { // Malformed assembly: parse failure.
          Req.Assembly = "this is not npral assembly\n";
          ExpectBody = false;
        }
        ErrorOr<ServeResponse> R = C.alloc(Req);
        if (!R.ok()) {
          ++T.TransportErrors;
          continue;
        }
        if (R->Ok) {
          ++T.Ok;
          if (ExpectBody && R->Body != Golden[V])
            ++T.BodyMismatches;
        } else if (R->Code == "unavailable") {
          ++T.Shed;
          if (R->RetryAfterMs <= 0)
            ++T.ShedWithoutHint;
        } else {
          ++T.StructuredErrors;
        }
      }
    });
  }
  for (std::thread &C : Clients)
    C.join();

  ClientTally Sum;
  for (const ClientTally &T : Tallies) {
    Sum.Sent += T.Sent;
    Sum.Ok += T.Ok;
    Sum.StructuredErrors += T.StructuredErrors;
    Sum.Shed += T.Shed;
    Sum.ShedWithoutHint += T.ShedWithoutHint;
    Sum.TransportErrors += T.TransportErrors;
    Sum.BodyMismatches += T.BodyMismatches;
  }

  // Zero lost responses: every sent request came back classified.
  EXPECT_EQ(Sum.Sent, static_cast<int64_t>(PerClient) * NumClients);
  EXPECT_EQ(Sum.TransportErrors, 0);
  EXPECT_EQ(Sum.Ok + Sum.StructuredErrors + Sum.Shed, Sum.Sent);
  // The oversubscribed burst hit the admission bound.
  EXPECT_GT(Sum.Shed, 0);
  EXPECT_EQ(Sum.ShedWithoutHint, 0);
  // Successful allocations stayed byte-identical throughout.
  EXPECT_EQ(Sum.BodyMismatches, 0);
  // The repeating corpus kept the shared cache warm.
  EXPECT_GT(S.cache().hits(), 0);
  const double HitRate =
      static_cast<double>(S.cache().hits()) /
      static_cast<double>(S.cache().hits() + S.cache().misses());
  EXPECT_GT(HitRate, 0.0);
  // Server-side accounting agrees there were failures of both kinds but
  // no unclassified outcomes and no dropped writes.
  EXPECT_EQ(S.stats().DroppedResponses.load(), 0);
  EXPECT_GT(S.stats().Shed.load(), 0);
  // The armed injector fired and every fault stayed a classified,
  // request-scoped failure.
  EXPECT_GT(S.stats().FaultsInjected.load(), 0);

  // Bounded memory: after the whole soak, RSS stays within a fixed factor
  // of the warm baseline (generous slack absorbs allocator noise, but a
  // real per-request leak at 10^5 requests would blow far past it).
  const int64_t FinalRSS = currentRSSBytes();
  ASSERT_GT(FinalRSS, 0);
  EXPECT_LT(FinalRSS, WarmRSS * 3 + (96ll << 20))
      << "warm RSS " << WarmRSS << ", final RSS " << FinalRSS;

  S.requestShutdown();
  EXPECT_EQ(S.wait(), 0);
}
