//===- ServeTest.cpp - Allocation-service daemon tests --------------------===//
//
// Covers the npral-serve daemon end to end over a real Unix socket: alloc
// round trips (byte-identical to the batch pipeline's output), health and
// metrics introspection, strict protocol rejection (oversized, truncated,
// garbage and fuzzed frames), admission-control load shedding, per-request
// fault isolation, and the graceful drain (in-flight requests finish,
// queued ones answer Cancelled, repeated start/shutdown cycles stay clean —
// this suite is in the TSan CI matrix).
//
//===----------------------------------------------------------------------===//

#include "driver/BatchPipeline.h"
#include "ir/IRPrinter.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "trace/MetricsRegistry.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace npral;
using namespace npral::protocol;

namespace {

std::string examplePath(const char *File) {
  return std::string(NPRAL_EXAMPLES_ASM_DIR) + "/" + File;
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// A fresh socket path per test; sun_path is short, so stay in /tmp.
std::string freshSocketPath() {
  static std::atomic<int> Counter{0};
  return "/tmp/npral-serve-test-" + std::to_string(getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// Start a server with \p Opts (filling in the socket path) and return it;
/// asserts the bind worked.
std::unique_ptr<Server> startServer(ServeOptions Opts) {
  Opts.SocketPath = freshSocketPath();
  auto S = std::make_unique<Server>(std::move(Opts));
  Status St = S->start();
  EXPECT_TRUE(St.ok()) << St.str();
  return S;
}

ServeClient connectOrDie(const Server &S) {
  ErrorOr<ServeClient> C = ServeClient::connectTo(S.options().SocketPath);
  EXPECT_TRUE(C.ok()) << C.status().str();
  return C.take();
}

/// A gate the TestStallHook blocks on, to hold worker threads at a known
/// point and fill the admission queue deterministically.
struct WorkerGate {
  std::mutex M;
  std::condition_variable CV;
  bool Open = false;
  int Waiting = 0;

  std::function<void()> hook() {
    return [this] {
      std::unique_lock<std::mutex> Lock(M);
      ++Waiting;
      CV.notify_all();
      CV.wait(Lock, [this] { return Open; });
    };
  }
  void waitForStalled(int N) {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Waiting >= N; });
  }
  void release() {
    std::lock_guard<std::mutex> Lock(M);
    Open = true;
    CV.notify_all();
  }
};

} // namespace

TEST(ServeTest, AllocRoundTripMatchesPipelineByteForByte) {
  auto S = startServer(ServeOptions{});
  ServeClient C = connectOrDie(*S);

  const std::string Asm = readFileOrDie(examplePath("two_threads.s"));
  AllocRequest Req;
  Req.Assembly = Asm;
  ErrorOr<ServeResponse> R = C.alloc(Req);
  ASSERT_TRUE(R.ok()) << R.status().str();
  ASSERT_TRUE(R->Ok) << R->Message;
  EXPECT_GT(R->RegistersUsed, 0);
  EXPECT_FALSE(R->Degraded);

  // The served body must be byte-identical to what the pipeline produces
  // locally for the same input (and hence to `npralc alloc`'s print
  // section, which composes the same way).
  BatchJob Job;
  Job.Text = Asm;
  BatchOptions BO;
  BO.KeepPhysical = true;
  BatchJobResult Local = runSingleJob(Job, BO);
  ASSERT_TRUE(Local.Success) << Local.FailReason;
  std::string Expected;
  for (const Program &T : Local.Physical.Threads) {
    Expected += programToString(T);
    Expected += "\n";
  }
  EXPECT_EQ(R->Body, Expected);
  EXPECT_EQ(R->RegistersUsed, Local.RegistersUsed);
  EXPECT_EQ(R->SGR, Local.SGR);
  EXPECT_EQ(R->TotalMoveCost, Local.TotalMoveCost);

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, HealthAndMetricsAnswerInline) {
  auto S = startServer(ServeOptions{});
  ServeClient C = connectOrDie(*S);

  ErrorOr<ServeResponse> H = C.health();
  ASSERT_TRUE(H.ok()) << H.status().str();
  ASSERT_TRUE(H->Ok);
  EXPECT_NE(H->Body.find("state=serving\n"), std::string::npos);
  EXPECT_NE(H->Body.find("queue-depth=0\n"), std::string::npos);
  EXPECT_NE(H->Body.find("rss-bytes="), std::string::npos);

  ErrorOr<ServeResponse> M = C.metrics();
  ASSERT_TRUE(M.ok()) << M.status().str();
  ASSERT_TRUE(M->Ok);
  // The serve.* instruments are pre-registered at startup, so the metrics
  // body always renders the full stable key set — even before traffic.
  for (const char *Key :
       {"serve.admitted", "serve.shed", "serve.deadline_exceeded",
        "serve.isolated_failures", "serve.requests", "serve.ok",
        "serve.failed", "serve.cancelled", "serve.protocol_errors"})
    EXPECT_NE(M->Body.find(std::string("\"") + Key + "\""),
              std::string::npos)
        << Key;

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, MalformedPayloadGetsStructuredErrorAndConnectionSurvives) {
  auto S = startServer(ServeOptions{});
  ServeClient C = connectOrDie(*S);

  // A well-framed Alloc whose payload violates the request grammar.
  Frame F{static_cast<uint16_t>(FrameType::Alloc), 42,
          "nreg=not-a-number\n\nbody"};
  ASSERT_TRUE(writeFrame(C.socket(), F).ok());
  Frame In;
  ASSERT_TRUE(C.readRawFrame(In).ok());
  EXPECT_EQ(In.Type, static_cast<uint16_t>(FrameType::Error));
  EXPECT_EQ(In.RequestId, 42u);
  ErrorOr<ServeResponse> R = parseResponse(In.Type, In.Payload);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Code, "parse-error");
  EXPECT_EQ(R->Stage, "protocol");

  // The framing stayed in sync, so the same connection still serves.
  AllocRequest Req;
  Req.Assembly = readFileOrDie(examplePath("two_threads.s"));
  ErrorOr<ServeResponse> Ok = C.alloc(Req);
  ASSERT_TRUE(Ok.ok()) << Ok.status().str();
  EXPECT_TRUE(Ok->Ok);

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, OversizedFrameIsRejectedWithStructuredError) {
  ServeOptions Opts;
  Opts.MaxRequestBytes = 1024;
  auto S = startServer(std::move(Opts));
  ServeClient C = connectOrDie(*S);

  // Header declares a payload over the server's cap; the server must
  // reject from the length field alone, never allocating or reading it.
  std::string Big(4096, 'x');
  Frame F{static_cast<uint16_t>(FrameType::Alloc), 7, Big};
  ASSERT_TRUE(writeFrame(C.socket(), F).ok());
  Frame In;
  ASSERT_TRUE(C.readRawFrame(In).ok());
  EXPECT_EQ(In.Type, static_cast<uint16_t>(FrameType::Error));
  EXPECT_EQ(In.RequestId, 7u);
  ErrorOr<ServeResponse> R = parseResponse(In.Type, In.Payload);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Code, "parse-error");
  EXPECT_NE(R->Message.find("exceeds"), std::string::npos);

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, GarbageAndTruncatedFramesNeverKillTheServer) {
  auto S = startServer(ServeOptions{});

  {
    // Garbage magic: structured error (id unreadable -> whatever the
    // header bytes decoded to), then the server closes the stream.
    ServeClient C = connectOrDie(*S);
    const char Garbage[] = "this is definitely not a frame header.....";
    ASSERT_TRUE(C.sendRaw(Garbage, sizeof(Garbage)).ok());
    Frame In;
    Status St = C.readRawFrame(In);
    if (St.ok())
      EXPECT_EQ(In.Type, static_cast<uint16_t>(FrameType::Error));
  }
  {
    // Truncated header: client disappears mid-frame; no response owed.
    ServeClient C = connectOrDie(*S);
    ASSERT_TRUE(C.sendRaw("NPRS", 4).ok());
  } // Socket closes here.
  {
    // Truncated payload: a full header promising 512 bytes, then only 100
    // of them before the close. Hand-build the 20 header bytes
    // (little-endian) for surgical truncation.
    ServeClient C = connectOrDie(*S);
    char H[20] = {};
    std::memcpy(H, "NPRS", 4);
    H[4] = 1;        // version 1
    H[6] = 1;        // type = Alloc
    H[8] = 9;        // request id 9
    H[16] = 0x00;    // payload length 512 = 0x200
    H[17] = 0x02;
    std::string Wire(H, 20);
    Wire += std::string(100, 'p');
    ASSERT_TRUE(C.sendRaw(Wire.data(), Wire.size()).ok());
  } // Close with 412 bytes still owed.

  // After all that abuse the server still allocates.
  ServeClient C = connectOrDie(*S);
  AllocRequest Req;
  Req.Assembly = readFileOrDie(examplePath("two_threads.s"));
  ErrorOr<ServeResponse> R = C.alloc(Req);
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_TRUE(R->Ok);
  EXPECT_GT(S->stats().ProtocolErrors.load() +
                S->stats().Connections.load(),
            0);

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, FuzzedFramesAlwaysGetClassifiedOutcomes) {
  auto S = startServer(ServeOptions{});

  // 200 seeded malformed frames: random bytes, random lengths, sometimes
  // with a valid magic prefix to reach deeper validation layers. The
  // server must survive all of them; each connection either receives a
  // structured Error frame or a clean close, never a hang or a crash.
  std::mt19937_64 Rng(0xF00DF00Du);
  for (int I = 0; I < 200; ++I) {
    ServeClient C = connectOrDie(*S);
    std::string Bytes;
    const size_t Len = 1 + Rng() % 64;
    for (size_t B = 0; B < Len; ++B)
      Bytes.push_back(static_cast<char>(Rng() & 0xFF));
    if (I % 3 == 0)
      Bytes.replace(0, std::min<size_t>(4, Bytes.size()), "NPRS");
    ASSERT_TRUE(C.sendRaw(Bytes.data(), Bytes.size()).ok()) << "frame " << I;
    C.socket().shutdownBoth();
  }

  // Still serving.
  ServeClient C = connectOrDie(*S);
  AllocRequest Req;
  Req.Assembly = readFileOrDie(examplePath("fig3_paper.s"));
  ErrorOr<ServeResponse> R = C.alloc(Req);
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_TRUE(R->Ok);

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, FullQueueShedsWithRetryHint) {
  WorkerGate Gate;
  ServeOptions Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 1;
  Opts.RetryAfterMs = 25;
  Opts.TestStallHook = Gate.hook();
  auto S = startServer(std::move(Opts));

  const std::string Asm = readFileOrDie(examplePath("two_threads.s"));
  AllocRequest Req;
  Req.Assembly = Asm;

  // First request occupies the only worker (stalled at the gate)...
  ServeClient C1 = connectOrDie(*S);
  ASSERT_TRUE(writeFrame(C1.socket(),
                         Frame{static_cast<uint16_t>(FrameType::Alloc), 1,
                               encodeAllocRequest(Req)})
                  .ok());
  Gate.waitForStalled(1);
  // ...the second fills the queue (admission is asynchronous on the
  // connection's reader thread, so wait for the counter to prove it)...
  ServeClient C2 = connectOrDie(*S);
  ASSERT_TRUE(writeFrame(C2.socket(),
                         Frame{static_cast<uint16_t>(FrameType::Alloc), 2,
                               encodeAllocRequest(Req)})
                  .ok());
  while (S->stats().Admitted.load() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // ...and the third must be shed immediately with the structured
  // Unavailable rejection.
  ServeClient C3 = connectOrDie(*S);
  ErrorOr<ServeResponse> ShedR = C3.alloc(Req);
  ASSERT_TRUE(ShedR.ok()) << ShedR.status().str();
  ASSERT_FALSE(ShedR->Ok);
  const ServeResponse Shed = *ShedR;
  EXPECT_EQ(Shed.Code, "unavailable");
  EXPECT_EQ(Shed.Stage, "admission");
  EXPECT_EQ(Shed.RetryAfterMs, 25);
  EXPECT_GT(S->stats().Shed.load(), 0);

  // Release the gate; the stalled and queued requests complete normally.
  Gate.release();
  Frame In1, In2;
  ASSERT_TRUE(C1.readRawFrame(In1).ok());
  EXPECT_EQ(In1.Type, static_cast<uint16_t>(FrameType::Ok));
  ASSERT_TRUE(C2.readRawFrame(In2).ok());
  EXPECT_EQ(In2.Type, static_cast<uint16_t>(FrameType::Ok));

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
  EXPECT_EQ(S->stats().Admitted.load(), 2);
}

TEST(ServeTest, DrainFinishesInFlightAndCancelsQueued) {
  WorkerGate Gate;
  ServeOptions Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 8;
  Opts.TestStallHook = Gate.hook();
  auto S = startServer(std::move(Opts));

  const std::string Asm = readFileOrDie(examplePath("two_threads.s"));
  AllocRequest Req;
  Req.Assembly = Asm;

  // A: picked up by the worker (in flight, stalled at the gate).
  ServeClient CA = connectOrDie(*S);
  ASSERT_TRUE(writeFrame(CA.socket(),
                         Frame{static_cast<uint16_t>(FrameType::Alloc), 1,
                               encodeAllocRequest(Req)})
                  .ok());
  Gate.waitForStalled(1);
  // B: sits in the queue behind A.
  ServeClient CB = connectOrDie(*S);
  ASSERT_TRUE(writeFrame(CB.socket(),
                         Frame{static_cast<uint16_t>(FrameType::Alloc), 2,
                               encodeAllocRequest(Req)})
                  .ok());
  // B's admission happens on its reader thread; only drain once it is
  // provably in the queue, so the Cancelled outcome is deterministic.
  while (S->stats().Admitted.load() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  S->requestShutdown();
  Gate.release();

  // A was in flight when the drain began: it completes normally.
  Frame InA;
  ASSERT_TRUE(CA.readRawFrame(InA).ok());
  EXPECT_EQ(InA.Type, static_cast<uint16_t>(FrameType::Ok));
  // B was still queued: it answers Cancelled.
  Frame InB;
  ASSERT_TRUE(CB.readRawFrame(InB).ok());
  EXPECT_EQ(InB.Type, static_cast<uint16_t>(FrameType::Error));
  ErrorOr<ServeResponse> RB = parseResponse(InB.Type, InB.Payload);
  ASSERT_TRUE(RB.ok());
  EXPECT_EQ(RB->Code, "cancelled");

  EXPECT_EQ(S->wait(), 0);
  EXPECT_EQ(S->stats().Cancelled.load(), 1);
  // A drained server refuses new connections (socket file is gone).
  EXPECT_FALSE(ServeClient::connectTo(S->options().SocketPath).ok());
}

TEST(ServeTest, RepeatedStartShutdownCyclesStayClean) {
  // Exercised under TSan in CI: start, serve one request, drain, five
  // times over — no leaked threads, no racy teardown.
  const std::string Asm = readFileOrDie(examplePath("two_threads.s"));
  for (int Cycle = 0; Cycle < 5; ++Cycle) {
    auto S = startServer(ServeOptions{});
    ServeClient C = connectOrDie(*S);
    AllocRequest Req;
    Req.Assembly = Asm;
    ErrorOr<ServeResponse> R = C.alloc(Req);
    ASSERT_TRUE(R.ok()) << "cycle " << Cycle << ": " << R.status().str();
    EXPECT_TRUE(R->Ok);
    S->requestShutdown();
    EXPECT_EQ(S->wait(), 0) << "cycle " << Cycle;
  }
}

TEST(ServeTest, SigtermDrainsAndWaitReturnsZero) {
  auto S = startServer(ServeOptions{});
  S->installSignalHandlers();
  ServeClient C = connectOrDie(*S);
  AllocRequest Req;
  Req.Assembly = readFileOrDie(examplePath("two_threads.s"));
  ErrorOr<ServeResponse> R = C.alloc(Req);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->Ok);

  raise(SIGTERM);
  EXPECT_EQ(S->wait(), 0);
  EXPECT_FALSE(ServeClient::connectTo(S->options().SocketPath).ok());
}

TEST(ServeTest, InfeasibleBudgetReturnsClassifiedErrorAndSpillDegrades) {
  auto S = startServer(ServeOptions{});
  ServeClient C = connectOrDie(*S);
  const std::string Asm = readFileOrDie(examplePath("two_threads.s"));

  AllocRequest Strict;
  Strict.Assembly = Asm;
  Strict.Nreg = 2; // Far below any feasible budget for this input.
  ErrorOr<ServeResponse> R = C.alloc(Strict);
  ASSERT_TRUE(R.ok()) << R.status().str();
  ASSERT_FALSE(R->Ok);
  EXPECT_EQ(R->Code, "infeasible");
  EXPECT_EQ(R->Stage, "alloc");

  // The process survived the failure; the same server keeps serving, and
  // graceful degradation is per-request opt-in.
  AllocRequest Degrade = Strict;
  Degrade.Nreg = 6;
  Degrade.AllowSpill = true;
  ErrorOr<ServeResponse> D = C.alloc(Degrade);
  ASSERT_TRUE(D.ok()) << D.status().str();
  if (D->Ok)
    EXPECT_GE(D->SpilledRanges + (D->Degraded ? 1 : 0), 0);

  EXPECT_GT(S->stats().Failed.load(), 0);
  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, InjectedFaultsAreIsolatedAndCounted) {
  ServeOptions Opts;
  ErrorOr<FaultInjector> FI = FaultInjector::parse("all@100#7");
  ASSERT_TRUE(FI.ok());
  Opts.Faults = FI.take();
  auto S = startServer(std::move(Opts));
  ServeClient C = connectOrDie(*S);

  AllocRequest Req;
  Req.Assembly = readFileOrDie(examplePath("two_threads.s"));
  ErrorOr<ServeResponse> R = C.alloc(Req);
  ASSERT_TRUE(R.ok()) << R.status().str();
  ASSERT_FALSE(R->Ok);
  EXPECT_EQ(R->Code, "fault-injected");
  EXPECT_GT(S->stats().FaultsInjected.load(), 0);

  // Health still answers: the fault poisoned the request, not the server.
  ErrorOr<ServeResponse> H = C.health();
  ASSERT_TRUE(H.ok());
  EXPECT_TRUE(H->Ok);

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}

TEST(ServeTest, SharedCacheServesRepeatedRequests) {
  ServeOptions Opts;
  Opts.CacheBytes = 16 << 20;
  auto S = startServer(std::move(Opts));
  ServeClient C = connectOrDie(*S);

  AllocRequest Req;
  Req.Assembly = readFileOrDie(examplePath("two_threads.s"));
  for (int I = 0; I < 3; ++I) {
    ErrorOr<ServeResponse> R = C.alloc(Req);
    ASSERT_TRUE(R.ok()) << R.status().str();
    EXPECT_TRUE(R->Ok);
  }
  EXPECT_GT(S->stats().CacheHits.load(), 0);
  EXPECT_GT(S->cache().hits(), 0);
  EXPECT_LE(S->cache().bytes(), S->cache().maxBytes());

  S->requestShutdown();
  EXPECT_EQ(S->wait(), 0);
}
