//===- HardenTest.cpp - Robustness layer tests -----------------------------===//
//
// Tests for the hardening layer: spill-based graceful degradation on
// infeasible budgets (verifier-clean, race-free, and simulator-correct),
// bit-identical output for feasible inputs, deterministic fault injection
// through the batch pipeline, watchdog deadlines, cache corruption
// recovery, and the FragmentAllocator's graceful handling of inputs that
// skipped the structural checkers.
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/BoundsEstimator.h"
#include "alloc/FragmentAllocator.h"
#include "alloc/InterAllocator.h"
#include "alloc/IntraAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "analysis/Liveness.h"
#include "asmparse/AsmParser.h"
#include "driver/AnalysisCache.h"
#include "driver/BatchPipeline.h"
#include "harden/FaultInjector.h"
#include "harden/SpillFallback.h"
#include "harden/Watchdog.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "support/StringUtils.h"
#include "trace/MetricsRegistry.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

using namespace npral;
using namespace npral::test;

namespace {

std::string examplePath(const std::string &Name) {
  return std::string(NPRAL_EXAMPLES_ASM_DIR) + "/" + Name;
}

const std::vector<std::string> &allExamples() {
  static const std::vector<std::string> Files = {
      "bad_alloc.s", "fig3_paper.s", "lint_buggy.s", "modular_kernel.s",
      "two_threads.s"};
  return Files;
}

/// Parse and rename an example file; nullopt when unreadable.
std::optional<MultiThreadProgram> loadExample(const std::string &Name) {
  std::ifstream In(examplePath(Name));
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Buf.str());
  if (!MTP.ok())
    return std::nullopt;
  for (Program &T : MTP->Threads)
    T = renameLiveRanges(T);
  return MTP.take();
}

/// True when every thread passes the structural checkers the pipeline runs
/// before allocation (lint_buggy.s deliberately does not).
bool passesStructuralChecks(const MultiThreadProgram &MTP) {
  for (const Program &T : MTP.Threads) {
    if (!verifyProgram(T).ok())
      return false;
    LivenessInfo LI = computeLiveness(T);
    if (!checkNoUseOfUndef(T, LI).ok())
      return false;
  }
  return true;
}

int sumMinPR(const MultiThreadProgram &MTP) {
  int Sum = 0;
  for (const Program &T : MTP.Threads)
    Sum += estimateRegBounds(analyzeThread(T)).MinPR;
  return Sum;
}

/// Simulate \p MTP (virtual or physical) with zero-seeded entry values and
/// hash the low memory window, which holds every example's outputs but not
/// the spill scratch region at 0xE0000.
struct HardenRun {
  SimResult Result;
  uint64_t OutputHash = 0;
  int64_t AbsMemOps = 0;
};

HardenRun simulateHashed(const MultiThreadProgram &MTP) {
  SimConfig Config;
  Config.TargetIterations = 3;
  Config.HaltAtTarget = true;
  Simulator Sim(MTP, Config);
  // Seed each thread's entry registers (pointers in the examples) with a
  // disjoint window so two threads never race on the same output word —
  // bad_alloc.s aims both stores at its entry pointer, and a racy word's
  // final value would legitimately shift with spill-code timing.
  for (int T = 0; T < MTP.getNumThreads(); ++T)
    Sim.setEntryValues(
        T, std::vector<uint32_t>(
               MTP.Threads[static_cast<size_t>(T)].EntryLiveRegs.size(),
               0x100u * static_cast<uint32_t>(T + 1)));
  HardenRun Run;
  Run.Result = Sim.run();
  Run.OutputHash = Sim.hashMemoryRange(0x0, 0x1000);
  for (const ThreadStats &TS : Run.Result.Threads)
    Run.AbsMemOps += TS.AbsMemOps;
  return Run;
}

} // namespace

//===----------------------------------------------------------------------===//
// Infeasible-budget grid: below Sigma MinPR the strict allocator must fail
// and the spill fallback must degrade into a verifier-clean, race-free,
// simulator-correct allocation.
//===----------------------------------------------------------------------===//

class InfeasibleBudgetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InfeasibleBudgetTest, SpillFallbackRecoversTightBudgets) {
  std::optional<MultiThreadProgram> MTP = loadExample(GetParam());
  ASSERT_TRUE(MTP) << "cannot load " << GetParam();
  if (!passesStructuralChecks(*MTP))
    GTEST_SKIP() << GetParam() << " is a deliberately malformed example";

  const int SumPR = sumMinPR(*MTP);
  int Recovered = 0;
  // 3 is the machine minimum (a three-operand instruction needs three
  // simultaneously-live registers); 6 exceeds the strict feasibility floor
  // of some examples, so both branches below are exercised.
  for (int Nreg = 3; Nreg <= 6; ++Nreg) {
    InterThreadResult Strict = allocateInterThread(*MTP, Nreg);
    if (Nreg < SumPR)
      ASSERT_FALSE(Strict.Success)
          << GetParam() << " Nreg=" << Nreg << " below Sigma MinPR";
    if (Strict.Success)
      continue; // feasible budgets are covered by the differential test
    EXPECT_EQ(Strict.FailCode, StatusCode::Infeasible)
        << GetParam() << " Nreg=" << Nreg;

    SpillFallbackResult SF = allocateWithSpillFallback(
        *MTP, Nreg, {}, {}, nullptr, InterAllocLimits());
    ASSERT_TRUE(SF.Inter.Success)
        << GetParam() << " Nreg=" << Nreg << ": " << SF.Inter.FailReason;
    EXPECT_TRUE(SF.UsedSpilling);
    EXPECT_GT(SF.SpilledRanges, 0);
    EXPECT_LE(SF.Inter.RegistersUsed, Nreg);
    ++Recovered;

    // Verifier-clean and race-free, including the spill scratch region:
    // per-thread windows are disjoint, so the cross-thread-abs-overlap
    // check must stay silent.
    DiagnosticEngine Engine;
    collectAllocationSafety(SF.Inter.Physical, Engine);
    EXPECT_FALSE(Engine.hasErrors()) << GetParam() << " Nreg=" << Nreg;
    for (const Diagnostic &D : Engine.diagnostics())
      EXPECT_NE(D.Check, "cross-thread-abs-overlap")
          << GetParam() << " Nreg=" << Nreg << ": " << D.Message;

    // Simulator-correct: the degraded physical program computes the same
    // low-memory outputs as the virtual reference, and its extra memory
    // traffic is exactly the absolute-addressed spill accesses.
    HardenRun Ref = simulateHashed(*MTP);
    HardenRun Deg = simulateHashed(SF.Inter.Physical);
    ASSERT_TRUE(Ref.Result.Completed) << Ref.Result.FailReason;
    ASSERT_TRUE(Deg.Result.Completed) << Deg.Result.FailReason;
    EXPECT_EQ(Deg.OutputHash, Ref.OutputHash) << GetParam() << " Nreg=" << Nreg;
    EXPECT_EQ(Ref.AbsMemOps, 0);
    EXPECT_GT(Deg.AbsMemOps, 0);
  }
  // Examples whose Sigma MinPR exceeds the machine minimum must have hit
  // the fallback at least once (fig3_paper fits strictly everywhere).
  if (SumPR > 3)
    EXPECT_GT(Recovered, 0) << "grid never exercised the spill fallback";
}

INSTANTIATE_TEST_SUITE_P(Examples, InfeasibleBudgetTest,
                         ::testing::ValuesIn(allExamples()),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.size() - 2);
                         });

//===----------------------------------------------------------------------===//
// Differential: a feasible input allocates bit-identically with and without
// the fallback enabled.
//===----------------------------------------------------------------------===//

TEST(SpillDifferentialTest, FeasibleInputsAreBitIdentical) {
  for (const std::string &Name : allExamples()) {
    std::optional<MultiThreadProgram> MTP = loadExample(Name);
    ASSERT_TRUE(MTP);
    InterThreadResult Strict = allocateInterThread(*MTP, 128);
    if (!Strict.Success)
      continue; // infeasible/malformed inputs are covered elsewhere
    SpillFallbackResult SF = allocateWithSpillFallback(
        *MTP, 128, {}, {}, nullptr, InterAllocLimits());
    ASSERT_TRUE(SF.Inter.Success) << Name;
    EXPECT_FALSE(SF.UsedSpilling) << Name;
    EXPECT_EQ(SF.Attempts, 1) << Name;
    EXPECT_EQ(SF.Inter.SGR, Strict.SGR);
    EXPECT_EQ(SF.Inter.RegistersUsed, Strict.RegistersUsed);
    ASSERT_EQ(SF.Inter.Physical.getNumThreads(),
              Strict.Physical.getNumThreads());
    for (int T = 0; T < Strict.Physical.getNumThreads(); ++T)
      EXPECT_EQ(programToString(SF.Inter.Physical.Threads[static_cast<size_t>(
                    T)]),
                programToString(
                    Strict.Physical.Threads[static_cast<size_t>(T)]))
          << Name << " thread " << T;
  }
}

//===----------------------------------------------------------------------===//
// Fault injection through the batch pipeline.
//===----------------------------------------------------------------------===//

namespace {

std::vector<BatchJob> allExampleJobs() {
  std::vector<BatchJob> Jobs;
  for (const std::string &Name : allExamples()) {
    BatchJob Job;
    Job.Path = examplePath(Name);
    Job.Name = Name;
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

} // namespace

TEST(FaultInjectionTest, SpecParsing) {
  ErrorOr<FaultInjector> FI = FaultInjector::parse("parse,alloc@50#9");
  ASSERT_TRUE(FI.ok()) << FI.status().str();
  EXPECT_EQ(FI->rate(), 50);
  EXPECT_EQ(FI->seed(), 9u);
  EXPECT_TRUE(FI->enabled());

  EXPECT_FALSE(FaultInjector::parse("bogus@50#9").ok());
  EXPECT_FALSE(FaultInjector::parse("parse@101#9").ok());
  EXPECT_FALSE(FaultInjector::parse("parse@-1#9").ok());
  EXPECT_FALSE(FaultInjector::parse("").ok());

  ErrorOr<FaultInjector> All = FaultInjector::parse("all@100#1");
  ASSERT_TRUE(All.ok());
  EXPECT_EQ(All->sites().size(), FaultInjector::allSites().size());
}

TEST(FaultInjectionTest, DeterministicPerSiteAndItem) {
  ErrorOr<FaultInjector> FI = FaultInjector::parse("all@50#42");
  ASSERT_TRUE(FI.ok());
  // Same (site, item) always produces the same verdict; different seeds
  // produce a different pattern somewhere across a modest key set.
  ErrorOr<FaultInjector> FI2 = FaultInjector::parse("all@50#43");
  ASSERT_TRUE(FI2.ok());
  bool Differs = false;
  for (const std::string &Site : FaultInjector::allSites())
    for (int K = 0; K < 16; ++K) {
      const std::string Item = "job" + std::to_string(K);
      EXPECT_EQ(FI->shouldFail(Site, Item), FI->shouldFail(Site, Item));
      if (FI->shouldFail(Site, Item) != FI2->shouldFail(Site, Item))
        Differs = true;
    }
  EXPECT_TRUE(Differs) << "seed does not influence the fault pattern";
}

TEST(FaultInjectionTest, BatchNeverAbortsAndReportsAccurately) {
  for (const std::string &Site : FaultInjector::allSites()) {
    for (uint64_t Seed : {1u, 2u}) {
      BatchOptions Opts;
      Opts.Nreg = 128;
      Opts.Jobs = 3;
      Opts.UseCache = true; // give the "cache" probe a stage to fire in
      ErrorOr<FaultInjector> FI =
          FaultInjector::parse(Site + "@100#" + std::to_string(Seed));
      ASSERT_TRUE(FI.ok());
      Opts.Faults = FI.take();

      BatchResult Batch = runBatch(allExampleJobs(), Opts);
      ASSERT_EQ(Batch.Results.size(), allExamples().size());

      // failed() must be accurate: exactly the unsuccessful results, in
      // input order, each carrying its stage and code.
      auto Failed = Batch.failed();
      size_t NumFailed = 0;
      for (const BatchJobResult &R : Batch.Results)
        if (!R.Success)
          ++NumFailed;
      EXPECT_EQ(Failed.size(), NumFailed);
      EXPECT_EQ(static_cast<int>(NumFailed), Batch.Stats.Failed);
      for (const BatchJobResult *R : Failed) {
        EXPECT_FALSE(R->FailStage.empty()) << R->Name;
        EXPECT_NE(R->FailCode, StatusCode::Ok) << R->Name;
      }

      // At 100% every job dies at the probed site — except sites later in
      // the pipeline than a job's natural failure (lint_buggy fails the
      // analysis checkers before reaching "alloc").
      int Injected = 0;
      for (const BatchJobResult &R : Batch.Results)
        if (R.FailCode == StatusCode::FaultInjected) {
          ++Injected;
          EXPECT_EQ(R.FailStage, Site == "cache" ? "analysis" : Site)
              << R.Name;
        }
      EXPECT_GT(Injected, 0) << "site " << Site << " never fired";
      EXPECT_EQ(Batch.Stats.FaultsInjected, Injected);
      if (Site == "parse")
        EXPECT_EQ(static_cast<size_t>(Injected), Batch.Results.size());
    }
  }
}

TEST(FaultInjectionTest, PartialRateIsDeterministicAcrossRuns) {
  BatchOptions Opts;
  Opts.Nreg = 128;
  Opts.Jobs = 4;
  ErrorOr<FaultInjector> FI = FaultInjector::parse("all@50#7");
  ASSERT_TRUE(FI.ok());
  Opts.Faults = FI.take();
  BatchResult A = runBatch(allExampleJobs(), Opts);
  BatchResult B = runBatch(allExampleJobs(), Opts);
  ASSERT_EQ(A.Results.size(), B.Results.size());
  for (size_t I = 0; I < A.Results.size(); ++I) {
    EXPECT_EQ(A.Results[I].Success, B.Results[I].Success) << I;
    EXPECT_EQ(A.Results[I].FailStage, B.Results[I].FailStage) << I;
    EXPECT_EQ(A.Results[I].FailReason, B.Results[I].FailReason) << I;
  }
}

//===----------------------------------------------------------------------===//
// Degraded batch: tight budgets succeed with AllowSpill, and the bounded
// RetryDegraded path recovers strict-mode failures.
//===----------------------------------------------------------------------===//

TEST(DegradedBatchTest, AllowSpillRecoversTightBudgets) {
  BatchOptions Opts;
  Opts.Nreg = 4; // below Sigma MinPR for every multi-thread example
  Opts.Jobs = 2;
  Opts.AllowSpill = true;
  BatchResult Batch = runBatch(allExampleJobs(), Opts);
  int Degraded = 0;
  for (const BatchJobResult &R : Batch.Results) {
    if (R.Name == "lint_buggy.s") {
      EXPECT_FALSE(R.Success);
      EXPECT_EQ(R.FailStage, "analysis");
      continue;
    }
    EXPECT_TRUE(R.Success) << R.Name << ": " << R.FailReason;
    if (R.UsedSpilling) {
      ++Degraded;
      EXPECT_GT(R.SpilledRanges, 0) << R.Name;
    }
  }
  EXPECT_GT(Degraded, 0);
  EXPECT_EQ(Batch.Stats.Degraded, Degraded);

  // The stats renderers only mention the harden counters when nonzero.
  std::ostringstream Text;
  Batch.Stats.renderText(Text);
  EXPECT_NE(Text.str().find("degraded"), std::string::npos);
}

TEST(DegradedBatchTest, RetryDegradedIsBoundedAndMarked) {
  BatchOptions Opts;
  Opts.Nreg = 4;
  Opts.Jobs = 2;
  Opts.AllowSpill = false;
  Opts.RetryDegraded = true;
  BatchResult Batch = runBatch(allExampleJobs(), Opts);
  int Retried = 0;
  for (const BatchJobResult &R : Batch.Results)
    if (R.Retried) {
      ++Retried;
      EXPECT_TRUE(R.Success) << R.Name << ": " << R.FailReason;
      EXPECT_TRUE(R.UsedSpilling) << R.Name;
    }
  EXPECT_GT(Retried, 0);
  EXPECT_EQ(Batch.Stats.Retried, Retried);
}

//===----------------------------------------------------------------------===//
// Watchdog and cooperative cancellation.
//===----------------------------------------------------------------------===//

TEST(WatchdogTest, FiresAfterDeadline) {
  Watchdog Dog(10);
  const std::atomic<bool> *Flag = Dog.cancelFlag();
  for (int I = 0; I < 500 && !Flag->load(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(Dog.fired());
  Dog.disarm();
}

TEST(WatchdogTest, DisarmBeforeDeadlineNeverFires) {
  Watchdog Dog(60000);
  Dog.disarm();
  EXPECT_FALSE(Dog.fired());
  Dog.disarm(); // idempotent
}

TEST(WatchdogTest, ZeroDeadlineIsDisabled) {
  Watchdog Dog(0);
  EXPECT_FALSE(Dog.fired());
  Dog.disarm();
}

TEST(WatchdogTest, CancelledAllocationFailsWithDeadlineExceeded) {
  std::optional<MultiThreadProgram> MTP = loadExample("two_threads.s");
  ASSERT_TRUE(MTP);
  std::atomic<bool> Cancel{true};
  InterAllocLimits Limits;
  Limits.Cancel = &Cancel;
  // Nreg=5 sits below Sigma MaxPR + max SR, forcing the Fig. 8 reduction
  // loop to run — where the flag is polled.
  InterThreadResult R = allocateInterThread(*MTP, 5, {}, {}, nullptr, Limits);
  ASSERT_FALSE(R.Success);
  EXPECT_EQ(R.FailCode, StatusCode::DeadlineExceeded);

  // The spill fallback honours cancellation too instead of degrading.
  SpillFallbackResult SF =
      allocateWithSpillFallback(*MTP, 4, {}, {}, nullptr, Limits);
  EXPECT_FALSE(SF.Inter.Success);
  EXPECT_EQ(SF.Inter.FailCode, StatusCode::DeadlineExceeded);
}

//===----------------------------------------------------------------------===//
// Analysis-cache corruption: a damaged entry is evicted, counted, and
// treated as a miss — never served.
//===----------------------------------------------------------------------===//

TEST(CacheCorruptionTest, CorruptEntryIsEvictedAndRecounted) {
  Program P = renameLiveRanges(makeTinyProgram());
  const std::string Text = programToString(P);
  const uint64_t Key = fnv1aHash(Text);
  auto Bundle =
      std::make_shared<const ThreadAnalysisBundle>(computeThreadAnalysisBundle(P));

  AnalysisCache Cache;
  Cache.insert(Key, Text, Bundle);
  ASSERT_NE(Cache.lookup(Key, Text), nullptr);
  EXPECT_EQ(Cache.hits(), 1);

  const int64_t CounterBefore =
      MetricsRegistry::global().counterValue("cache.corrupt_entries");
  ASSERT_TRUE(Cache.corruptEntryForTesting(Key));
  const int64_t MissesBefore = Cache.misses();
  EXPECT_EQ(Cache.lookup(Key, Text), nullptr); // miss, not a wrong hit
  EXPECT_EQ(Cache.corruptions(), 1);
  EXPECT_EQ(Cache.misses(), MissesBefore + 1);
  EXPECT_EQ(Cache.size(), 0u); // evicted
  EXPECT_EQ(MetricsRegistry::global().counterValue("cache.corrupt_entries"),
            CounterBefore + 1);

  // The cache heals: reinserting restores normal service.
  Cache.insert(Key, Text, Bundle);
  EXPECT_NE(Cache.lookup(Key, Text), nullptr);

  // Corrupting a missing key reports failure.
  EXPECT_FALSE(Cache.corruptEntryForTesting(Key + 1));
}

TEST(CacheCorruptionTest, BatchRecomputesThroughSharedCorruptedCache) {
  AnalysisCache Cache;
  BatchOptions Opts;
  Opts.Nreg = 128;
  Opts.Jobs = 2;
  BatchResult Warm = runBatch(allExampleJobs(), Opts, &Cache);
  ASSERT_GT(Cache.size(), 0u);

  // Damage every entry the pipeline inserted. Keys are reconstructible:
  // fnv1aCombine(flat content hash of the renamed thread, 0) with no
  // profile — the same derivation processOne uses.
  int Corrupted = 0;
  for (const std::string &Name : allExamples()) {
    std::optional<MultiThreadProgram> MTP = loadExample(Name);
    if (!MTP)
      continue;
    for (const Program &T : MTP->Threads) {
      if (!verifyProgram(T).ok())
        continue; // the pipeline never renamed or cached this thread
      const uint64_t Key =
          fnv1aCombine(hashProgramContent(renameLiveRanges(T)), 0);
      if (Cache.corruptEntryForTesting(Key))
        ++Corrupted;
    }
  }
  ASSERT_GT(Corrupted, 0) << "reconstructed no cache keys";

  // The corrupted entries surface as counted misses, never wrong bundles:
  // the rerun recomputes and succeeds job-for-job like the warm run.
  BatchResult Again = runBatch(allExampleJobs(), Opts, &Cache);
  ASSERT_EQ(Warm.Results.size(), Again.Results.size());
  for (size_t I = 0; I < Warm.Results.size(); ++I)
    EXPECT_EQ(Warm.Results[I].Success, Again.Results[I].Success) << I;
  EXPECT_EQ(Cache.corruptions(), Corrupted);
}

//===----------------------------------------------------------------------===//
// FragmentAllocator under contract violations: analyses that do not match
// the program (a stale or corrupt cache bundle) fail gracefully instead of
// tripping an assert.
//===----------------------------------------------------------------------===//

TEST(FragmentRobustnessTest, MismatchedAnalysisFailsGracefully) {
  // Same shape and register set, but A stores the summed register while B
  // stores the base pointer, so B's liveness kills `c` immediately after
  // its definition.
  Program A = parseOrDie(R"(
.thread victim
entry:
    imm  outp, 0x2000
    imm  a, 1
    imm  b, 2
    add  c, a, b
    store [outp+0], c
    halt
)");
  Program B = parseOrDie(R"(
.thread victim
entry:
    imm  outp, 0x2000
    imm  a, 1
    imm  b, 2
    add  c, a, b
    store [outp+0], outp
    halt
)");
  A = renameLiveRanges(A);
  B = renameLiveRanges(B);
  ASSERT_EQ(A.NumRegs, B.NumRegs);
  ThreadAnalysis Stale = analyzeThread(B);
  ColorAllocation R =
      allocateByFragments(A, Stale, Stale.getRegPCSBmax() + 2, 4, CostModel());
  EXPECT_FALSE(R.Feasible);
  EXPECT_FALSE(R.FailReason.empty());
}
