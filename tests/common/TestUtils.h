//===- TestUtils.h - Shared helpers for NPRAL tests -------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the unit, integration and property tests: assembling
/// programs from string literals, running single programs on the simulator,
/// and checking full allocation pipelines for semantic equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TESTS_COMMON_TESTUTILS_H
#define NPRAL_TESTS_COMMON_TESTUTILS_H

#include "asmparse/AsmParser.h"
#include "ir/IRVerifier.h"
#include "ir/Program.h"
#include "sim/Simulator.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

namespace npral {
namespace test {

/// Assemble a single-thread program; fails the test on parse errors.
inline Program parseOrDie(const std::string &Asm) {
  ErrorOr<Program> P = parseSingleProgram(Asm);
  EXPECT_TRUE(P.ok()) << P.status().str();
  if (!P.ok()) {
    // Keep downstream code runnable so one parse failure doesn't cascade
    // into crashes: a single halting block.
    Program Fallback;
    Fallback.addBlock("entry");
    Fallback.block(0).Instrs.push_back(Instruction::makeHalt());
    return Fallback;
  }
  return P.take();
}

/// Run a single program to completion (virtual registers, halting) with
/// optional entry values; returns the simulator for memory inspection.
struct SingleRun {
  SimResult Result;
  uint64_t OutputHash = 0;
};

inline SingleRun runSingle(const Program &P,
                           const std::vector<uint32_t> &EntryValues = {},
                           uint32_t HashBase = 0x2000, uint32_t HashLen = 64,
                           const std::vector<uint32_t> &MemInit = {},
                           uint32_t MemInitBase = 0x1000,
                           int64_t TargetIterations = 0) {
  MultiThreadProgram MTP;
  MTP.Threads.push_back(P);
  SimConfig Config;
  Config.TargetIterations = TargetIterations;
  Config.HaltAtTarget = TargetIterations > 0;
  Simulator Sim(MTP, Config);
  if (!MemInit.empty())
    Sim.writeMemory(MemInitBase, MemInit);
  if (!EntryValues.empty())
    Sim.setEntryValues(0, EntryValues);
  SingleRun Run;
  Run.Result = Sim.run();
  Run.OutputHash = Sim.hashMemoryRange(HashBase, HashLen);
  return Run;
}

/// A tiny two-block straight-line program for structural tests:
///   entry: imm a, 1 / imm b, 2 / add c, a, b / store [outp+0], c / halt
inline Program makeTinyProgram() {
  return parseOrDie(R"(
.thread tiny
entry:
    imm  outp, 0x2000
    imm  a, 1
    imm  b, 2
    add  c, a, b
    store [outp+0], c
    halt
)");
}

} // namespace test
} // namespace npral

#endif // NPRAL_TESTS_COMMON_TESTUTILS_H
