//===- DataflowTest.cpp - Generic worklist dataflow solver tests ----------===//
//
// The solver must reproduce a naive independently-written fixpoint for the
// gen/kill instances (liveness, maybe-uninit) and must accept custom value
// types beyond BitVector.
//
//===----------------------------------------------------------------------===//

#include "lint/dataflow/GenKill.h"

#include "analysis/Liveness.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

// A diamond feeding a loop: enough shape to exercise joins in both
// directions, including a register live around the back edge.
const char *BranchyAsm = R"(
.thread branchy
.entrylive seed
entry:
    imm  acc, 0
    bz   seed, left
right:
    imm  step, 2
    br   loop
left:
    imm  step, 3
loop:
    add  acc, acc, step
    subi seed, seed, 1
    bnz  seed, loop
    store [acc+0], acc
    halt
)";

/// Naive reference liveness: iterate over all blocks until stable, no
/// worklist, recomputing use/def locally.
void naiveLiveness(const Program &P, std::vector<BitVector> &In,
                   std::vector<BitVector> &Out) {
  const int NB = P.getNumBlocks();
  std::vector<BitVector> Use(static_cast<size_t>(NB), BitVector(P.NumRegs));
  std::vector<BitVector> Def(static_cast<size_t>(NB), BitVector(P.NumRegs));
  for (int B = 0; B < NB; ++B)
    for (const Instruction &I : P.block(B).Instrs) {
      std::array<Reg, 2> Uses;
      int N = I.getUses(Uses);
      for (int U = 0; U < N; ++U)
        if (!Def[static_cast<size_t>(B)].test(Uses[static_cast<size_t>(U)]))
          Use[static_cast<size_t>(B)].set(Uses[static_cast<size_t>(U)]);
      if (I.Def != NoReg)
        Def[static_cast<size_t>(B)].set(I.Def);
    }
  In.assign(static_cast<size_t>(NB), BitVector(P.NumRegs));
  Out.assign(static_cast<size_t>(NB), BitVector(P.NumRegs));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B = 0; B < NB; ++B) {
      BitVector NewOut(P.NumRegs);
      for (int S : P.successors(B))
        NewOut.unionWith(In[static_cast<size_t>(S)]);
      BitVector NewIn = NewOut;
      NewIn.subtract(Def[static_cast<size_t>(B)]);
      NewIn.unionWith(Use[static_cast<size_t>(B)]);
      if (!(NewIn == In[static_cast<size_t>(B)]) ||
          !(NewOut == Out[static_cast<size_t>(B)])) {
        In[static_cast<size_t>(B)] = NewIn;
        Out[static_cast<size_t>(B)] = NewOut;
        Changed = true;
      }
    }
  }
}

TEST(Dataflow, LivenessMatchesNaiveReference) {
  Program P = parseOrDie(BranchyAsm);
  DataflowResult<BitVector> Solved = solveDataflow(P, makeLivenessProblem(P));

  std::vector<BitVector> RefIn, RefOut;
  naiveLiveness(P, RefIn, RefOut);
  ASSERT_EQ(Solved.In.size(), RefIn.size());
  for (size_t B = 0; B < RefIn.size(); ++B) {
    EXPECT_TRUE(Solved.In[B] == RefIn[B]) << "live-in of block " << B;
    EXPECT_TRUE(Solved.Out[B] == RefOut[B]) << "live-out of block " << B;
  }
}

TEST(Dataflow, LivenessSeesLoopCarriedValue) {
  Program P = parseOrDie(BranchyAsm);
  DataflowResult<BitVector> Solved = solveDataflow(P, makeLivenessProblem(P));

  // 'acc' and 'step' are live around the loop back edge: both must be in
  // the loop header's live-in. Find the header by name.
  int Loop = -1;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    if (P.blockName(B) == "loop")
      Loop = B;
  ASSERT_GE(Loop, 0);
  int LiveIn = Solved.In[static_cast<size_t>(Loop)].count();
  EXPECT_GE(LiveIn, 3) << "acc, step and seed all reach the loop header";
}

TEST(Dataflow, MaybeUninitBoundaryExcludesEntryLive) {
  Program P = parseOrDie(BranchyAsm);
  GenKillProblem Prob = makeMaybeUninitProblem(P);
  DataflowResult<BitVector> Solved = solveDataflow(P, Prob);

  const BitVector &EntryIn =
      Solved.In[static_cast<size_t>(P.getEntryBlock())];
  for (Reg R = 0; R < P.NumRegs; ++R) {
    bool IsEntryLive = false;
    for (Reg E : P.EntryLiveRegs)
      IsEntryLive |= E == R;
    EXPECT_EQ(EntryIn.test(R), !IsEntryLive)
        << "register " << P.getRegName(R);
  }
}

TEST(Dataflow, MaybeUninitKilledByDominatingDef) {
  Program P = parseOrDie(BranchyAsm);
  DataflowResult<BitVector> Solved =
      solveDataflow(P, makeMaybeUninitProblem(P));

  // 'step' is defined on both diamond arms, so it is defined on every path
  // into the loop header; 'acc' is defined in the entry block itself.
  int Loop = -1;
  for (int B = 0; B < P.getNumBlocks(); ++B)
    if (P.blockName(B) == "loop")
      Loop = B;
  ASSERT_GE(Loop, 0);
  Reg Step = NoReg, Acc = NoReg;
  for (Reg R = 0; R < P.NumRegs; ++R) {
    if (P.getRegName(R) == "step")
      Step = R;
    if (P.getRegName(R) == "acc")
      Acc = R;
  }
  ASSERT_NE(Step, NoReg);
  ASSERT_NE(Acc, NoReg);
  EXPECT_FALSE(Solved.In[static_cast<size_t>(Loop)].test(Step));
  EXPECT_FALSE(Solved.In[static_cast<size_t>(Loop)].test(Acc));
}

/// A custom non-BitVector problem: forward boolean reachability from entry.
struct ReachabilityProblem {
  using Value = char;
  DataflowDirection direction() const { return DataflowDirection::Forward; }
  Value boundary(const Program &) const { return 1; }
  Value bottom(const Program &) const { return 0; }
  bool join(Value &Into, const Value &From) const {
    if (From && !Into) {
      Into = 1;
      return true;
    }
    return false;
  }
  void transfer(const Program &, int, Value &) const {}
};

TEST(Dataflow, CustomValueTypeReachability) {
  // Block 'dead' is only reachable from itself: never from entry.
  Program P = parseOrDie(R"(
.thread reach
entry:
    imm a, 1
    br  exit
dead:
    addi a, a, 1
    br  dead
exit:
    halt
)");
  DataflowResult<char> R = solveDataflow(P, ReachabilityProblem());
  int Dead = -1, Exit = -1;
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    if (P.blockName(B) == "dead")
      Dead = B;
    if (P.blockName(B) == "exit")
      Exit = B;
  }
  ASSERT_GE(Dead, 0);
  ASSERT_GE(Exit, 0);
  EXPECT_EQ(R.In[static_cast<size_t>(P.getEntryBlock())], 1);
  EXPECT_EQ(R.In[static_cast<size_t>(Exit)], 1);
  EXPECT_EQ(R.In[static_cast<size_t>(Dead)], 0);
}

TEST(Dataflow, LivenessAgreesWithComputeLiveness) {
  // The migrated computeLiveness must expose exactly the solver's facts.
  Program P = parseOrDie(BranchyAsm);
  LivenessInfo LI = computeLiveness(P);
  DataflowResult<BitVector> Solved = solveDataflow(P, makeLivenessProblem(P));
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    EXPECT_TRUE(LI.blockLiveIn(B) == Solved.In[static_cast<size_t>(B)]);
    EXPECT_TRUE(LI.blockLiveOut(B) == Solved.Out[static_cast<size_t>(B)]);
  }
}

} // namespace
