//===- LintTest.cpp - positive/negative coverage for every lint checker ---===//

#include "lint/Lint.h"

#include "asmparse/AsmParser.h"
#include "support/DiagnosticEngine.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

MultiThreadProgram parseMT(const std::string &Asm) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Asm);
  EXPECT_TRUE(MTP.ok()) << MTP.status().str();
  return MTP.ok() ? MTP.take() : MultiThreadProgram();
}

/// Diagnostics produced by check \p Name.
std::vector<Diagnostic> byCheck(const DiagnosticEngine &Engine,
                                const std::string &Name) {
  std::vector<Diagnostic> Out;
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.Check == Name)
      Out.push_back(D);
  return Out;
}

/// A single well-formed thread: every register initialized and used, and
/// nothing but the base pointer live across a CSB (so even the advisory
/// over-private checker stays silent — 'w' is the load's own def, which
/// LiveAcross excludes, and 'buf' has only one reference per NSR).
const char *CleanAsm = R"(
.thread clean
.entrylive buf
main:
    load w, [buf+0]
    addi w, w, 1
    store [buf+0], w
    halt
)";

/// The deliberately-bad physical allocation from examples/asm/bad_alloc.s:
/// alpha keeps p1/p2 live across its load CSBs; beta clobbers both.
const char *BadAllocAsm = R"(
.thread alpha
.entrylive p0
main:
    imm  p1, 1
    imm  p2, 2
    load p3, [p0+0]
    add  p1, p1, p3
    load p4, [p0+1]
    add  p2, p2, p4
    add  p1, p1, p2
    store [p0+0], p1
    halt

.thread beta
.entrylive p6
main:
    imm  p1, 7
    imm  p2, 9
    add  p5, p1, p2
    store [p6+0], p5
    halt
)";

// --- registry ------------------------------------------------------------

TEST(LintRegistryTest, LooksUpEveryRegisteredChecker) {
  EXPECT_GE(getCheckerRegistry().size(), 8u);
  for (const CheckerInfo &C : getCheckerRegistry()) {
    const CheckerInfo *Found = findChecker(C.Name);
    ASSERT_NE(Found, nullptr);
    EXPECT_EQ(Found->Name, C.Name);
    EXPECT_FALSE(Found->Description.empty());
    EXPECT_NE(Found->Run, nullptr);
  }
  EXPECT_EQ(findChecker("no-such-checker"), nullptr);
}

TEST(LintRegistryTest, CleanProgramProducesNoFindings) {
  DiagnosticEngine Engine;
  int Errors = runAllCheckers(parseMT(CleanAsm), Engine);
  EXPECT_EQ(Errors, 0);
  EXPECT_TRUE(Engine.empty()) << [&] {
    std::ostringstream OS;
    Engine.renderText(OS);
    return OS.str();
  }();
}

// --- structure -----------------------------------------------------------

TEST(LintStructureTest, ReportsEmptyProgram) {
  DiagnosticEngine Engine;
  MultiThreadProgram Empty;
  EXPECT_EQ(runAllCheckers(Empty, Engine), 1);
  std::vector<Diagnostic> Diags = byCheck(Engine, "structure");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Message, "program has no threads");
}

TEST(LintStructureTest, ReportsMalformedThreadButStillChecksOthers) {
  MultiThreadProgram MTP = parseMT(CleanAsm);
  // Break a copy of the thread: dangling branch target.
  Program Broken = MTP.Threads[0];
  Broken.Name = "broken";
  Broken.block(0).Instrs.back() = Instruction::makeBr(9);
  MTP.Threads.push_back(Broken);

  DiagnosticEngine Engine;
  runAllCheckers(MTP, Engine);
  std::vector<Diagnostic> Diags = byCheck(Engine, "structure");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Sev, Severity::Error);
  EXPECT_EQ(Diags[0].Thread, "broken");
  EXPECT_NE(Diags[0].Message.find("branch target out of range"),
            std::string::npos)
      << Diags[0].Message;
}

TEST(LintStructureTest, ReportsMixedPhysicalAndVirtualThreads) {
  MultiThreadProgram MTP = parseMT(CleanAsm);
  Program Phys = MTP.Threads[0];
  Phys.Name = "phys";
  Phys.IsPhysical = true;
  Phys.clearRegNames();
  MTP.Threads.push_back(Phys);

  DiagnosticEngine Engine;
  runAllCheckers(MTP, Engine);
  std::vector<Diagnostic> Diags = byCheck(Engine, "structure");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Message, "program mixes physical and virtual threads");
}

// --- maybe-uninit --------------------------------------------------------

TEST(LintMaybeUninitTest, CleanWhenEveryPathDefines) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(CleanAsm), Engine);
  EXPECT_TRUE(byCheck(Engine, "maybe-uninit").empty());
}

TEST(LintMaybeUninitTest, FlagsReadReachedByDefFreePath) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread worker
main:
    imm  c, 1
    bnz  c, join
init:
    imm  x, 42
join:
    add  y, x, x
    storea 0x100, y
    halt
)"),
                 Engine);
  std::vector<Diagnostic> Diags = byCheck(Engine, "maybe-uninit");
  ASSERT_EQ(Diags.size(), 1u); // same register in both slots: one report
  EXPECT_EQ(Diags[0].Sev, Severity::Warning);
  EXPECT_NE(Diags[0].Message.find("'x'"), std::string::npos);
  EXPECT_NE(Diags[0].Witness.find("add y, x, x"), std::string::npos);
}

// --- dead-store and dead-range -------------------------------------------

TEST(LintDeadTest, CleanWhenEveryValueIsRead) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(CleanAsm), Engine);
  EXPECT_TRUE(byCheck(Engine, "dead-store").empty());
  EXPECT_TRUE(byCheck(Engine, "dead-range").empty());
}

TEST(LintDeadTest, FlagsUnusedDefinitionAndUnreadRegister) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread worker
.entrylive buf
main:
    imm  t, 5
    imm  a, 1
    store [buf+0], a
    halt
)"),
                 Engine);
  std::vector<Diagnostic> Stores = byCheck(Engine, "dead-store");
  ASSERT_EQ(Stores.size(), 1u);
  EXPECT_NE(Stores[0].Message.find("'t'"), std::string::npos);
  EXPECT_EQ(Stores[0].Block, 0);
  EXPECT_EQ(Stores[0].Instr, 0);

  std::vector<Diagnostic> Ranges = byCheck(Engine, "dead-range");
  ASSERT_EQ(Ranges.size(), 1u);
  EXPECT_NE(Ranges[0].Message.find("written but never read"),
            std::string::npos);
}

TEST(LintDeadTest, DeadLoadKeepsItsContextSwitchCaveat) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread worker
.entrylive buf
main:
    load w, [buf+0]
    imm  a, 1
    store [buf+0], a
    halt
)"),
                 Engine);
  std::vector<Diagnostic> Stores = byCheck(Engine, "dead-store");
  ASSERT_EQ(Stores.size(), 1u);
  EXPECT_NE(Stores[0].Message.find("memory access itself still executes"),
            std::string::npos)
      << Stores[0].Message;
}

// --- unreachable-block ---------------------------------------------------

TEST(LintUnreachableTest, CleanWhenAllBlocksReachable) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(CleanAsm), Engine);
  EXPECT_TRUE(byCheck(Engine, "unreachable-block").empty());
}

TEST(LintUnreachableTest, FlagsOrphanBlock) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread worker
main:
    imm  a, 1
    storea 0x100, a
    halt
orphan:
    imm  b, 2
    storea 0x104, b
    halt
)"),
                 Engine);
  std::vector<Diagnostic> Diags = byCheck(Engine, "unreachable-block");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].Message.find("'orphan'"), std::string::npos);
  EXPECT_EQ(Diags[0].Instr, -1);
}

// --- redundant-move ------------------------------------------------------

TEST(LintRedundantMoveTest, CleanOnUsefulMoves) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread worker
main:
    imm  a, 1
    mov  b, a
    storea 0x100, b
    halt
)"),
                 Engine);
  EXPECT_TRUE(byCheck(Engine, "redundant-move").empty());
}

TEST(LintRedundantMoveTest, FlagsSelfMoveAndCancelledPair) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread worker
main:
    imm  a, 1
    mov  a, a
    mov  b, a
    mov  a, b
    storea 0x100, a
    storea 0x104, b
    halt
)"),
                 Engine);
  std::vector<Diagnostic> Diags = byCheck(Engine, "redundant-move");
  ASSERT_EQ(Diags.size(), 2u);
  EXPECT_NE(Diags[0].Message.find("self-move"), std::string::npos);
  EXPECT_EQ(Diags[0].Instr, 1);
  EXPECT_NE(Diags[1].Message.find("back onto itself"), std::string::npos);
  EXPECT_EQ(Diags[1].Instr, 3);
}

// --- cross-thread-race ---------------------------------------------------

TEST(LintRaceTest, CleanOnSafeAllocation) {
  MultiThreadProgram MTP = parseMT(R"(
.thread alpha
.entrylive p0
main:
    imm  p1, 1
    load p2, [p0+0]
    add  p1, p1, p2
    store [p0+0], p1
    halt

.thread beta
.entrylive p8
main:
    imm  p9, 7
    store [p8+0], p9
    halt
)");
  ASSERT_TRUE(mapNamedPhysicalRegisters(MTP).ok());
  DiagnosticEngine Engine;
  EXPECT_EQ(runAllCheckers(MTP, Engine), 0);
  EXPECT_TRUE(byCheck(Engine, "cross-thread-race").empty());
}

TEST(LintRaceTest, ReportsEveryViolationInOneRun) {
  MultiThreadProgram MTP = parseMT(BadAllocAsm);
  ASSERT_TRUE(mapNamedPhysicalRegisters(MTP).ok());
  DiagnosticEngine Engine;
  int Errors = runAllCheckers(MTP, Engine);
  std::vector<Diagnostic> Races = byCheck(Engine, "cross-thread-race");

  // Both clobbered registers must surface in a single run — the old
  // verifier stopped at the first one.
  ASSERT_EQ(Races.size(), 2u);
  EXPECT_EQ(Errors, static_cast<int>(Races.size()));
  bool SawP1 = false, SawP2 = false;
  for (const Diagnostic &D : Races) {
    EXPECT_EQ(D.Sev, Severity::Error);
    EXPECT_EQ(D.Thread, "alpha");
    EXPECT_NE(D.Message.find("live across"), std::string::npos);
    EXPECT_NE(D.Message.find("thread 'beta'"), std::string::npos);
    EXPECT_NE(D.Witness.find("CSB"), std::string::npos);
    SawP1 |= D.Message.find("register p1 ") != std::string::npos;
    SawP2 |= D.Message.find("register p2 ") != std::string::npos;
  }
  EXPECT_TRUE(SawP1);
  EXPECT_TRUE(SawP2);
}

TEST(LintRaceTest, SkippedOnVirtualPrograms) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(BadAllocAsm), Engine); // not mapped: still virtual
  EXPECT_TRUE(byCheck(Engine, "cross-thread-race").empty());
}

// --- over-private advisor ------------------------------------------------

TEST(LintAdvisorTest, SuggestsNSRExclusionForClusteredReferences) {
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread accum
.entrylive buf
main:
    imm  acc, 1
    load w, [buf+0]
    add  acc, acc, w
    add  acc, acc, acc
    store [buf+0], acc
    halt
)"),
                 Engine);
  std::vector<Diagnostic> Notes = byCheck(Engine, "over-private");
  ASSERT_EQ(Notes.size(), 1u);
  EXPECT_EQ(Notes[0].Sev, Severity::Note);
  EXPECT_NE(Notes[0].Message.find("'acc'"), std::string::npos)
      << Notes[0].Message;
  EXPECT_NE(Notes[0].Message.find("NSR exclusion"), std::string::npos);
}

TEST(LintAdvisorTest, SilentWhenNoCheapSplitExists) {
  // buf crosses the load CSB but has only one reference per NSR, so a
  // split would not pay for its reconciling moves.
  DiagnosticEngine Engine;
  runAllCheckers(parseMT(R"(
.thread passthru
.entrylive buf
main:
    load w, [buf+0]
    store [buf+0], w
    halt
)"),
                 Engine);
  EXPECT_TRUE(byCheck(Engine, "over-private").empty());
}

TEST(LintAdvisorTest, AdvisoryGatingFollowsOptions) {
  MultiThreadProgram MTP = parseMT(R"(
.thread accum
.entrylive buf
main:
    imm  acc, 1
    load w, [buf+0]
    add  acc, acc, w
    add  acc, acc, acc
    store [buf+0], acc
    halt
)");
  {
    DiagnosticEngine Engine;
    LintOptions Opts;
    Opts.IncludeAdvice = false;
    runAllCheckers(MTP, Engine, Opts);
    EXPECT_TRUE(byCheck(Engine, "over-private").empty());
  }
  {
    // Naming an advisory checker runs it even with advice off.
    DiagnosticEngine Engine;
    LintOptions Opts;
    Opts.IncludeAdvice = false;
    Opts.OnlyChecks = {"over-private"};
    runAllCheckers(MTP, Engine, Opts);
    EXPECT_EQ(byCheck(Engine, "over-private").size(), 1u);
    EXPECT_EQ(Engine.size(), 1); // nothing else ran
  }
}

// --- options and driver --------------------------------------------------

TEST(LintDriverTest, OnlyChecksRestrictsTheRun) {
  MultiThreadProgram MTP = parseMT(R"(
.thread worker
main:
    imm  t, 5
    imm  a, 1
    mov  a, a
    storea 0x100, a
    halt
)");
  DiagnosticEngine Engine;
  LintOptions Opts;
  Opts.OnlyChecks = {"redundant-move"};
  runAllCheckers(MTP, Engine, Opts);
  ASSERT_EQ(Engine.size(), 1);
  EXPECT_EQ(Engine.diagnostics()[0].Check, "redundant-move");
}

TEST(LintDriverTest, JSONRoundTripsALintRun) {
  MultiThreadProgram MTP = parseMT(BadAllocAsm);
  ASSERT_TRUE(mapNamedPhysicalRegisters(MTP).ok());
  DiagnosticEngine Engine;
  runAllCheckers(MTP, Engine);
  ASSERT_GE(Engine.size(), 2);

  std::ostringstream OS;
  Engine.renderJSON(OS);
  ErrorOr<std::vector<Diagnostic>> Parsed = parseDiagnosticsJSON(OS.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().str();
  ASSERT_EQ(static_cast<int>(Parsed->size()), Engine.size());
  for (size_t I = 0; I < Parsed->size(); ++I) {
    const Diagnostic &A = Engine.diagnostics()[I];
    const Diagnostic &B = (*Parsed)[I];
    EXPECT_EQ(A.Sev, B.Sev);
    EXPECT_EQ(A.Check, B.Check);
    EXPECT_EQ(A.Thread, B.Thread);
    EXPECT_EQ(A.Block, B.Block);
    EXPECT_EQ(A.Instr, B.Instr);
    EXPECT_EQ(A.Message, B.Message);
    EXPECT_EQ(A.Witness, B.Witness);
  }
}

// --- mapNamedPhysicalRegisters -------------------------------------------

TEST(MapPhysicalTest, MapsWellFormedNamesToIndices) {
  MultiThreadProgram MTP = parseMT(R"(
.thread t0
.entrylive p4
main:
    imm  p2, 1
    store [p4+0], p2
    halt
)");
  ASSERT_TRUE(mapNamedPhysicalRegisters(MTP).ok());
  const Program &P = MTP.Threads[0];
  EXPECT_TRUE(P.IsPhysical);
  EXPECT_EQ(P.NumRegs, 5); // p4 is the highest index
  EXPECT_EQ(P.block(0).Instrs[0].Def, 2);
  EXPECT_EQ(P.block(0).Instrs[1].Use1, 4);
  ASSERT_EQ(P.EntryLiveRegs.size(), 1u);
  EXPECT_EQ(P.EntryLiveRegs[0], 4);
  EXPECT_EQ(P.getRegName(2), "p2");
}

TEST(MapPhysicalTest, RejectsNonPhysicalNames) {
  MultiThreadProgram MTP = parseMT(R"(
.thread t0
main:
    imm  p1, 1
    imm  sum, 2
    add  p1, p1, sum
    storea 0x100, p1
    halt
)");
  Status S = mapNamedPhysicalRegisters(MTP);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("'sum'"), std::string::npos) << S.str();
  EXPECT_NE(S.str().find("p<N>"), std::string::npos) << S.str();
}

TEST(MapPhysicalTest, RejectsAbsurdIndices) {
  MultiThreadProgram MTP = parseMT(R"(
.thread t0
main:
    imm  p99999, 1
    storea 0x100, p99999
    halt
)");
  Status S = mapNamedPhysicalRegisters(MTP);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("out of range"), std::string::npos) << S.str();
}

} // namespace
