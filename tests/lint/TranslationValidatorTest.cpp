//===- TranslationValidatorTest.cpp - Translation validation tests --------===//
//
// The translation validator must prove every allocator output over the
// shipped example programs — unit-cost, profile-guided, and spill-degraded
// paths alike — and must reject hand-miscompiled physical programs with a
// witness that names the offending instruction pair.
//
//===----------------------------------------------------------------------===//

#include "lint/TranslationValidator.h"

#include "alloc/MoveElimination.h"
#include "analysis/LiveRangeRenaming.h"
#include "asmparse/AsmParser.h"
#include "harden/SpillFallback.h"
#include "lint/Lint.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace npral;
using namespace npral::test;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

MultiThreadProgram parseMT(const std::string &Asm) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Asm);
  EXPECT_TRUE(MTP.ok()) << MTP.status().str();
  return MTP.ok() ? MTP.take() : MultiThreadProgram();
}

MultiThreadProgram renameAll(const MultiThreadProgram &MTP) {
  MultiThreadProgram Renamed;
  Renamed.Name = MTP.Name;
  for (const Program &T : MTP.Threads)
    Renamed.Threads.push_back(renameLiveRanges(T));
  return Renamed;
}

/// Diagnostics rendered as text, for failure messages.
std::string renderDiags(DiagnosticEngine &Engine) {
  std::ostringstream OS;
  Engine.renderText(OS);
  return OS.str();
}

const char *TwoThreadsAsm = R"(
.thread checksum
.entrylive buf, out
main:
    imm  sum, 0
    imm  cnt, 8
loop:
    load w, [buf+0]
    add  sum, sum, w
    addi buf, buf, 1
    subi cnt, cnt, 1
    bnz  cnt, loop
    store [out+0], sum
    loopend
    halt

.thread counter
main:
    imm  n, 16
loop:
    ctx
    subi n, n, 1
    bnz  n, loop
    imm  addr, 0x300
    store [addr+0], n
    loopend
    halt
)";

TEST(TranslationValidator, ProvesUnitAllocation) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  InterThreadResult R = allocateInterThread(Renamed, 8);
  ASSERT_TRUE(R.Success) << R.FailReason;

  DiagnosticEngine Engine;
  ValidationResult V = validateTranslation(Renamed, R.Physical, Engine);
  EXPECT_TRUE(V.Proved) << renderDiags(Engine);
  EXPECT_EQ(V.ThreadsProved, 2);
  EXPECT_GT(V.InstructionsMatched, 0);
  EXPECT_TRUE(Engine.empty()) << renderDiags(Engine);
}

TEST(TranslationValidator, CountsThreadsAndUpdatesMetrics) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  InterThreadResult R = allocateInterThread(Renamed, 8);
  ASSERT_TRUE(R.Success);

  MetricsRegistry Metrics;
  DiagnosticEngine Engine;
  ValidationResult V = validateTranslation(Renamed, R.Physical, Engine,
                                           &Metrics);
  ASSERT_TRUE(V.Proved) << renderDiags(Engine);
  EXPECT_EQ(Metrics.counterValue("validator.proved"), 1);
  EXPECT_EQ(Metrics.counterValue("validator.rejected"), 0);
  EXPECT_EQ(Metrics.counterValue("validator.instructions_matched"),
            V.InstructionsMatched);
  EXPECT_EQ(Metrics.counterValue("validator.copies_interpreted"),
            V.CopiesInterpreted);
}

TEST(TranslationValidator, RejectsSwappedOperand) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  InterThreadResult R = allocateInterThread(Renamed, 8);
  ASSERT_TRUE(R.Success);

  // Miscompile: make the checksum accumulate the counter register instead
  // of the loaded word (swap one operand of the add).
  MultiThreadProgram Bad = R.Physical;
  bool Mutated = false;
  for (BasicBlock &BB : Bad.Threads[0].Blocks)
    for (Instruction &I : BB.Instrs)
      if (!Mutated && I.Op == Opcode::Add && I.Use1 != I.Use2) {
        std::swap(I.Use1, I.Use2);
        Mutated = I.Use1 != I.Use2;
      }
  ASSERT_TRUE(Mutated);

  DiagnosticEngine Engine;
  ValidationResult V = validateTranslation(Renamed, Bad, Engine);
  // Either the swap is caught as an operand mismatch, or the operands
  // happened to carry equal values (impossible here: sum != w).
  EXPECT_FALSE(V.Proved);
  ASSERT_TRUE(Engine.hasErrors());
  EXPECT_EQ(Engine.firstError()->Check, "translation-validation");
  EXPECT_NE(Engine.firstError()->Witness.find("physical `"),
            std::string::npos)
      << "witness must quote the offending physical instruction";
  EXPECT_NE(Engine.firstError()->Witness.find("path: "), std::string::npos)
      << "witness must carry a block path from entry";
}

TEST(TranslationValidator, RejectsChangedImmediate) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  InterThreadResult R = allocateInterThread(Renamed, 8);
  ASSERT_TRUE(R.Success);

  MultiThreadProgram Bad = R.Physical;
  bool Mutated = false;
  for (BasicBlock &BB : Bad.Threads[0].Blocks)
    for (Instruction &I : BB.Instrs)
      if (!Mutated && I.Op == Opcode::Imm) {
        I.Imm += 1;
        Mutated = true;
      }
  ASSERT_TRUE(Mutated);

  DiagnosticEngine Engine;
  ValidationResult V = validateTranslation(Renamed, Bad, Engine);
  EXPECT_FALSE(V.Proved);
  EXPECT_TRUE(Engine.hasErrors());
}

TEST(TranslationValidator, RejectsDroppedInstruction) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  InterThreadResult R = allocateInterThread(Renamed, 8);
  ASSERT_TRUE(R.Success);

  MultiThreadProgram Bad = R.Physical;
  // Drop the store that publishes the checksum.
  bool Mutated = false;
  for (BasicBlock &BB : Bad.Threads[0].Blocks)
    for (size_t I = 0; I < BB.Instrs.size(); ++I)
      if (!Mutated && BB.Instrs[I].Op == Opcode::Store) {
        BB.Instrs.erase(BB.Instrs.begin() + static_cast<long>(I));
        Mutated = true;
        break;
      }
  ASSERT_TRUE(Mutated);

  DiagnosticEngine Engine;
  ValidationResult V = validateTranslation(Renamed, Bad, Engine);
  EXPECT_FALSE(V.Proved);
  EXPECT_TRUE(Engine.hasErrors());
}

TEST(TranslationValidator, RejectsThreadCountMismatch) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  InterThreadResult R = allocateInterThread(Renamed, 8);
  ASSERT_TRUE(R.Success);
  MultiThreadProgram Bad = R.Physical;
  Bad.Threads.pop_back();

  DiagnosticEngine Engine;
  MetricsRegistry Metrics;
  ValidationResult V = validateTranslation(Renamed, Bad, Engine, &Metrics);
  EXPECT_FALSE(V.Proved);
  EXPECT_TRUE(Engine.hasErrors());
  EXPECT_EQ(Metrics.counterValue("validator.rejected"), 1);
}

TEST(TranslationValidator, ProvesSpillDegradedAllocation) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
  std::vector<CostModel> Models;

  // Squeeze until the plain allocator gives up and the fallback spills.
  SpillFallbackResult SF;
  bool Spilled = false;
  for (int Nreg = 6; Nreg >= 2 && !Spilled; --Nreg) {
    SF = allocateWithSpillFallback(Renamed, Nreg, Bundles, Models, nullptr,
                                   InterAllocLimits());
    Spilled = SF.Inter.Success && SF.UsedSpilling;
  }
  ASSERT_TRUE(Spilled) << "no budget forced the spill fallback";

  // The reference is the *pre-spill* renamed program: spill code must be
  // recognised as inserted scratch traffic, including the pre-entry block.
  DiagnosticEngine Engine;
  ValidationResult V =
      validateTranslation(Renamed, SF.Inter.Physical, Engine);
  EXPECT_TRUE(V.Proved) << renderDiags(Engine);
  EXPECT_GT(V.CopiesInterpreted, 0)
      << "spill loads/stores must be interpreted, not matched";
}

TEST(TranslationValidator, ProvesAllExampleProgramsAllPaths) {
  int Provable = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(NPRAL_EXAMPLES_ASM_DIR)) {
    if (Entry.path().extension() != ".s")
      continue;
    const std::string Name = Entry.path().filename().string();
    if (Name == "bad_swap.s")
      continue; // the deliberately-miscompiled fixture
    ErrorOr<MultiThreadProgram> Parsed =
        parseAssembly(readFile(Entry.path().string()));
    ASSERT_TRUE(Parsed.ok()) << Name << ": " << Parsed.status().str();
    MultiThreadProgram Renamed = renameAll(Parsed.take());

    std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
    std::vector<CostModel> Models;
    SpillFallbackResult SF = allocateWithSpillFallback(
        Renamed, 128, Bundles, Models, nullptr, InterAllocLimits());
    if (!SF.Inter.Success)
      continue; // not allocatable even with spilling (counted below)

    DiagnosticEngine Engine;
    ValidationResult V =
        validateTranslation(Renamed, SF.Inter.Physical, Engine);
    EXPECT_TRUE(V.Proved) << Name << ":\n" << renderDiags(Engine);
    if (V.Proved)
      ++Provable;
  }
  // The shipped example set must keep at least 12 programs that allocate
  // and prove (ISSUE acceptance); growing the set is fine.
  EXPECT_GE(Provable, 12);
}

TEST(TranslationValidator, RejectsBadSwapFixture) {
  const std::string Path =
      std::string(NPRAL_EXAMPLES_ASM_DIR) + "/bad_swap.s";
  ErrorOr<MultiThreadProgram> Parsed = parseAssembly(readFile(Path));
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().str();
  MultiThreadProgram All = Parsed.take();
  ASSERT_EQ(All.getNumThreads() % 2, 0)
      << "paired fixture needs equal halves";
  const int Half = All.getNumThreads() / 2;

  MultiThreadProgram Virt, Phys;
  Virt.Name = All.Name;
  Phys.Name = All.Name;
  for (int T = 0; T < Half; ++T)
    Virt.Threads.push_back(All.Threads[static_cast<size_t>(T)]);
  for (int T = Half; T < All.getNumThreads(); ++T)
    Phys.Threads.push_back(All.Threads[static_cast<size_t>(T)]);
  ASSERT_TRUE(mapNamedPhysicalRegisters(Phys).ok());

  DiagnosticEngine Engine;
  ValidationResult V = validateTranslation(Virt, Phys, Engine);
  EXPECT_FALSE(V.Proved);
  ASSERT_TRUE(Engine.hasErrors());
  const Diagnostic *D = Engine.firstError();
  EXPECT_EQ(D->Check, "translation-validation");
  EXPECT_NE(D->Message.find("does not carry the value"), std::string::npos)
      << "bad_swap must fail as an operand value mismatch, got: "
      << D->Message;
}

TEST(TranslationValidator, MoveEliminationOutputStillProves) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  InterThreadResult R = allocateInterThread(Renamed, 8);
  ASSERT_TRUE(R.Success);
  for (Program &T : R.Physical.Threads)
    eliminateRedundantMoves(T);

  DiagnosticEngine Engine;
  ValidationResult V = validateTranslation(Renamed, R.Physical, Engine);
  EXPECT_TRUE(V.Proved) << renderDiags(Engine);
}

TEST(CrossCheckDecisionLog, ConsistentLogPasses) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
  std::vector<CostModel> Models;
  AllocationDecisionLog Log;
  InterThreadResult R =
      allocateInterThread(Renamed, 6, Bundles, Models, &Log);
  ASSERT_TRUE(R.Success) << R.FailReason;

  DiagnosticEngine Engine;
  MetricsRegistry Metrics;
  EXPECT_EQ(crossCheckDecisionLog(Log, R, Engine, &Metrics), 0)
      << renderDiags(Engine);
  EXPECT_TRUE(Engine.empty());
  EXPECT_EQ(Metrics.counterValue("validator.log_crosschecks"), 1);
  EXPECT_EQ(Metrics.counterValue("validator.log_mismatches"), 0);
}

TEST(CrossCheckDecisionLog, TamperedLogIsCaught) {
  MultiThreadProgram Renamed = renameAll(parseMT(TwoThreadsAsm));
  std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
  std::vector<CostModel> Models;
  AllocationDecisionLog Log;
  InterThreadResult R =
      allocateInterThread(Renamed, 6, Bundles, Models, &Log);
  ASSERT_TRUE(R.Success);

  AllocationDecisionLog Tampered = Log;
  Tampered.RegistersUsed += 1;
  if (!Tampered.FinalPR.empty())
    Tampered.FinalPR[0] += 1;

  DiagnosticEngine Engine;
  EXPECT_GT(crossCheckDecisionLog(Tampered, R, Engine), 0);
  EXPECT_TRUE(Engine.hasErrors());
  EXPECT_EQ(Engine.firstError()->Check, "validator-log");
}

} // namespace
