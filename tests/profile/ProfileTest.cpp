//===- ProfileTest.cpp - Execution profile subsystem ----------------------===//
//
// Covers the profile subsystem end to end: exact collector counts on a
// program with known trip counts, the .npprof fixed-point guarantee
// (print(parse(T)) == T), merge semantics (two runs merged == both runs
// observed by one collector), parser error handling, the profile-to-cost-
// model conversion, and the static loop-nesting estimator.
//
//===----------------------------------------------------------------------===//

#include "profile/ExecutionProfile.h"
#include "profile/ProfileCollector.h"
#include "profile/StaticFrequencyEstimator.h"

#include "ir/IRPrinter.h"
#include "sim/Simulator.h"
#include "support/StringUtils.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

/// A thread with one entry block, a loop that runs exactly eight times
/// (with a ctx inside), and an exit block.
const char *LoopAsm = R"(
.thread looper
main:
    imm  o, 0x3000
    imm  cnt, 8
    imm  sum, 0
loop:
    ctx
    add  sum, sum, cnt
    subi cnt, cnt, 1
    bnz  cnt, loop
    store [o+0], sum
    halt
)";

MultiThreadProgram loopProgram() {
  MultiThreadProgram MTP;
  MTP.Name = "profile_test";
  MTP.Threads.push_back(parseOrDie(LoopAsm));
  return MTP;
}

int blockIdByName(const Program &P, const std::string &Name) {
  for (int B = 0; B < P.getNumBlocks(); ++B)
    if (P.blockName(B) == Name)
      return B;
  return -1;
}

ExecutionProfile collectOnce(const MultiThreadProgram &MTP) {
  ProfileCollector Collector(MTP);
  Simulator Sim(MTP, SimConfig());
  Sim.setObserver(&Collector);
  SimResult R = Sim.run();
  EXPECT_TRUE(R.Completed) << R.FailReason;
  return Collector.takeProfile();
}

} // namespace

TEST(ProfileCollectorTest, ExactCountsOnKnownTripCounts) {
  MultiThreadProgram MTP = loopProgram();
  ExecutionProfile Prof = collectOnce(MTP);

  ASSERT_EQ(Prof.getNumThreads(), 1);
  const ThreadProfile &TP = Prof.Threads[0];
  EXPECT_EQ(TP.Name, "looper");
  EXPECT_EQ(TP.CodeHash, fnv1aHash(programToString(MTP.Threads[0])));

  const int Entry = blockIdByName(MTP.Threads[0], "main");
  const int Loop = blockIdByName(MTP.Threads[0], "loop");
  ASSERT_GE(Entry, 0);
  ASSERT_GE(Loop, 0);
  EXPECT_EQ(TP.blockCount(Entry), 1);
  EXPECT_EQ(TP.blockCount(Loop), 8);
  // The ctx at the top of the loop body executed once per loop entry.
  // (Other switch points exist — the final halt also yields the engine —
  // so only the loop block's total is pinned.)
  int64_t LoopSwitches = 0;
  for (const auto &KV : TP.SwitchCounts)
    if (KV.first.first == Loop)
      LoopSwitches += KV.second;
  EXPECT_EQ(LoopSwitches, 8);
}

TEST(ProfileFormatTest, PrintParseIsFixedPoint) {
  ExecutionProfile Prof = collectOnce(loopProgram());
  const std::string Text = Prof.print();

  std::string Error;
  std::optional<ExecutionProfile> Parsed = ExecutionProfile::parse(Text, Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->print(), Text);
  EXPECT_EQ(Parsed->contentHash(), Prof.contentHash());

  ASSERT_EQ(Parsed->getNumThreads(), Prof.getNumThreads());
  EXPECT_EQ(Parsed->Threads[0].CodeHash, Prof.Threads[0].CodeHash);
  EXPECT_EQ(Parsed->Threads[0].BlockCounts, Prof.Threads[0].BlockCounts);
  EXPECT_EQ(Parsed->Threads[0].SwitchCounts, Prof.Threads[0].SwitchCounts);
}

TEST(ProfileFormatTest, ParseRejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(ExecutionProfile::parse("not a profile", Error).has_value());
  EXPECT_FALSE(Error.empty());

  // block line before any thread line.
  Error.clear();
  EXPECT_FALSE(
      ExecutionProfile::parse("npprof 1\nblock 0 5\nend\n", Error)
          .has_value());
  EXPECT_FALSE(Error.empty());

  // Garbage where a count should be.
  Error.clear();
  EXPECT_FALSE(
      ExecutionProfile::parse(
          "npprof 1\nprogram p\nthread 0 0 t\nblock zero five\nend\n", Error)
          .has_value());
  EXPECT_FALSE(Error.empty());
}

TEST(ProfileMergeTest, MergeOfTwoRunsEqualsOneCollectorOverBothRuns) {
  MultiThreadProgram MTP = loopProgram();

  // One collector observing two complete runs...
  ProfileCollector Both(MTP);
  for (int Run = 0; Run < 2; ++Run) {
    Simulator Sim(MTP, SimConfig());
    Sim.setObserver(&Both);
    ASSERT_TRUE(Sim.run().Completed);
  }

  // ...must equal two single-run profiles merged.
  ExecutionProfile A = collectOnce(MTP);
  ExecutionProfile B = collectOnce(MTP);
  std::string Error;
  ASSERT_TRUE(A.merge(B, Error)) << Error;

  EXPECT_EQ(A.print(), Both.getProfile().print());
}

TEST(ProfileMergeTest, MergeRejectsShapeMismatch) {
  ExecutionProfile A = collectOnce(loopProgram());

  MultiThreadProgram Other;
  Other.Name = "profile_test";
  Other.Threads.push_back(parseOrDie(R"(
.thread different
main:
    halt
)"));
  ExecutionProfile B = collectOnce(Other);

  std::string Error;
  EXPECT_FALSE(A.merge(B, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ProfileCostModelTest, WeightsAreExecutionCounts) {
  MultiThreadProgram MTP = loopProgram();
  ExecutionProfile Prof = collectOnce(MTP);
  const Program &P = MTP.Threads[0];

  CostModel CM = Prof.costModel(0, P.getNumBlocks());
  EXPECT_FALSE(CM.isUnit());
  for (int B = 0; B < P.getNumBlocks(); ++B)
    EXPECT_EQ(CM.blockWeight(B), Prof.Threads[0].blockCount(B))
        << "block " << B;

  // Out-of-range thread index degrades to the unit model.
  EXPECT_TRUE(Prof.costModel(7, P.getNumBlocks()).isUnit());
}

TEST(ProfileCostModelTest, FindByCodeHashMatchesContent) {
  MultiThreadProgram MTP = loopProgram();
  ExecutionProfile Prof = collectOnce(MTP);
  const uint64_t Hash = fnv1aHash(programToString(MTP.Threads[0]));
  const ThreadProfile *TP = Prof.findByCodeHash(Hash);
  ASSERT_NE(TP, nullptr);
  EXPECT_EQ(TP->Index, 0);
  EXPECT_EQ(Prof.findByCodeHash(Hash + 1), nullptr);
}

TEST(CostModelTest, UnitModelAndExplicitWeights) {
  CostModel CM;
  EXPECT_TRUE(CM.isUnit());
  EXPECT_EQ(CM.blockWeight(0), 1);
  EXPECT_EQ(CM.blockWeight(123), 1);

  CM.setBlockWeight(2, 50);
  EXPECT_FALSE(CM.isUnit());
  EXPECT_EQ(CM.blockWeight(2), 50);
  // Slots grown on the way default to 1, out-of-range stays 1.
  EXPECT_EQ(CM.blockWeight(0), 1);
  EXPECT_EQ(CM.blockWeight(3), 1);
}

TEST(StaticFrequencyEstimatorTest, LoopNestingWeights) {
  Program P = parseOrDie(R"(
.thread nest
main:
    imm  i, 3
outer:
    imm  j, 3
inner:
    subi j, j, 1
    bnz  j, inner
    subi i, i, 1
    bnz  i, outer
    halt
)");
  std::vector<int64_t> W = estimateBlockFrequencies(P);
  ASSERT_EQ(static_cast<int>(W.size()), P.getNumBlocks());
  EXPECT_EQ(W[static_cast<size_t>(blockIdByName(P, "main"))], 1);
  EXPECT_EQ(W[static_cast<size_t>(blockIdByName(P, "outer"))], 10);
  EXPECT_EQ(W[static_cast<size_t>(blockIdByName(P, "inner"))], 100);

  CostModel CM = estimateCostModel(P);
  EXPECT_FALSE(CM.isUnit());
  EXPECT_EQ(CM.blockWeight(blockIdByName(P, "inner")), 100);

  // Even a loop-free program yields a non-unit (frequency-aware) model.
  Program Flat = parseOrDie(R"(
.thread flat
main:
    halt
)");
  EXPECT_FALSE(estimateCostModel(Flat).isUnit());
}
