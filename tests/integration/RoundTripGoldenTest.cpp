//===- RoundTripGoldenTest.cpp - Parser/printer fixed-point goldens -------===//
//
// Guards the invariants the analysis cache's content hashing rests on: the
// printer's output is byte-stable, print -> parse is a fixed point, and
// parsing the same text twice yields the same flat content hash (the cache
// key is computed from the IR a job actually analyses, so equal input text
// must mean equal keys). The hash may legitimately differ across a
// print -> parse round trip: function expansion leaves fall-through edges
// to non-adjacent blocks, which the printer materialises as explicit `br`
// instructions, and the two forms are different analysis inputs (different
// instruction counts index different per-instruction live sets). One round
// trip normalises; after that the hash is a fixed point too.
//
//===----------------------------------------------------------------------===//

#include "asmparse/AsmParser.h"
#include "driver/AnalysisCache.h"
#include "ir/IRPrinter.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

namespace {

std::vector<std::string> collectFixtures() {
  std::vector<std::string> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(NPRAL_EXAMPLES_ASM_DIR))
    if (Entry.path().extension() == ".s")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

} // namespace

class RoundTripGoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripGoldenTest, PrintParseFixedPoint) {
  const std::string Path = GetParam();
  ErrorOr<MultiThreadProgram> First = parseAssembly(readFile(Path));
  ASSERT_TRUE(First.ok()) << Path << ": " << First.status().message();

  for (const Program &P : (*First).Threads) {
    const std::string Printed = programToString(P);
    // Byte stability: printing the same program twice is identical.
    EXPECT_EQ(Printed, programToString(P)) << Path << " thread " << P.Name;

    ErrorOr<Program> Second = parseSingleProgram(Printed);
    ASSERT_TRUE(Second.ok())
        << Path << " thread " << P.Name
        << ": printed form does not reparse: " << Second.status().message()
        << "\n" << Printed;
    // Fixed point: one print normalises; further round trips are identity.
    EXPECT_EQ(programToString((*Second)), Printed)
        << Path << " thread " << P.Name;
    // Equal text parses to equal content: two jobs reading the same file
    // derive the same cache key.
    ErrorOr<Program> SecondAgain = parseSingleProgram(Printed);
    ASSERT_TRUE(SecondAgain.ok()) << Path << " thread " << P.Name;
    EXPECT_EQ(hashProgramContent((*SecondAgain)), hashProgramContent((*Second)))
        << Path << " thread " << P.Name;
    // After the normalising round trip the content hash is a fixed point.
    ErrorOr<Program> Third = parseSingleProgram(programToString((*Second)));
    ASSERT_TRUE(Third.ok()) << Path << " thread " << P.Name;
    EXPECT_EQ(hashProgramContent((*Third)), hashProgramContent((*Second)))
        << Path << " thread " << P.Name;
  }
}

TEST_P(RoundTripGoldenTest, WholeFileReassembles) {
  const std::string Path = GetParam();
  ErrorOr<MultiThreadProgram> First = parseAssembly(readFile(Path));
  ASSERT_TRUE(First.ok()) << Path << ": " << First.status().message();

  // Concatenate every thread's printed form and reparse the whole file.
  std::ostringstream Whole;
  for (const Program &P : (*First).Threads)
    printProgram(Whole, P);
  ErrorOr<MultiThreadProgram> Again = parseAssembly(Whole.str());
  ASSERT_TRUE(Again.ok()) << Path << ": " << Again.status().message();
  ASSERT_EQ((*Again).getNumThreads(),
            (*First).getNumThreads());
  for (size_t T = 0; T < (*First).Threads.size(); ++T)
    EXPECT_EQ(programToString((*Again).Threads[T]),
              programToString((*First).Threads[T]))
        << Path << " thread " << T;
}

TEST(RoundTripGoldenCorpus, FindsAllFixtures) {
  // Keep the glob honest: the shipped corpus has at least these fixtures.
  EXPECT_GE(collectFixtures().size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(ExamplesAsm, RoundTripGoldenTest,
                         ::testing::ValuesIn(collectFixtures()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           std::string Name =
                               std::filesystem::path(I.param).stem().string();
                           std::replace_if(
                               Name.begin(), Name.end(),
                               [](char C) { return !std::isalnum(C); }, '_');
                           return Name;
                         });
