//===- FuzzCaseFactory.h - Shared fuzz-case construction --------*- C++ -*-===//
///
/// \file
/// The seeded case factory shared by `alloc_fuzz_test` and the golden
/// recorder tool (`record_alloc_goldens`). Keeping both on one definition is
/// what makes the pre-rewrite goldens meaningful: the recorder and the test
/// must derive the exact same programs, budgets and allocator calls from a
/// seed, or byte-equality would compare apples to oranges.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_TESTS_INTEGRATION_FUZZCASEFACTORY_H
#define NPRAL_TESTS_INTEGRATION_FUZZCASEFACTORY_H

#include "alloc/InterAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "harden/SpillFallback.h"
#include "ir/IRPrinter.h"
#include "profile/StaticFrequencyEstimator.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "workloads/ProgramGenerator.h"

#include <algorithm>
#include <string>
#include <vector>

namespace npral {
namespace fuzzcase {

/// One fuzz case: Nthd generated threads (each with its own memory regions)
/// plus the register file size to allocate into.
struct FuzzCase {
  int Nthd = 0;
  int Nreg = 0;
  MultiThreadProgram Virtual;
  MultiThreadProgram Renamed;
};

/// \p SmallPrograms caps every thread at the smallest generator size. The
/// spill-fallback property re-runs the full allocator once per demoted
/// range, so full-size threads would cost seconds per seed; small threads
/// keep the 200-seed sweep fast while preserving structural variety.
inline FuzzCase makeCase(uint64_t Seed, bool SmallPrograms = false) {
  Rng R(Seed * 0x9E3779B97F4A7C15ULL + 0xFC5Eull);
  FuzzCase C;
  C.Nthd = static_cast<int>(2 + R.nextBelow(3)); // 2..4 threads
  static const int NregChoices[] = {32, 48, 64, 96, 128};
  C.Nreg = NregChoices[R.nextBelow(5)];
  static const int CtxRates[] = {40, 140, 280}; // CSB density per mille
  static const int Sizes[] = {40, 90, 150};

  for (int T = 0; T < C.Nthd; ++T) {
    GeneratorConfig Config;
    Config.TargetInstructions = SmallPrograms ? 40 : Sizes[R.nextBelow(3)];
    Config.CtxRatePerMille = CtxRates[R.nextBelow(3)];
    Config.NumLongLived = static_cast<int>(4 + R.nextBelow(5));
    Config.MaxDepth = static_cast<int>(2 + R.nextBelow(3));
    Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
    Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
    Program P = generateRandomProgram(Seed * 31 + static_cast<uint64_t>(T),
                                      Config);
    P.Name = "fuzz" + std::to_string(T);
    C.Virtual.Threads.push_back(P);
    C.Renamed.Threads.push_back(renameLiveRanges(P));
  }
  return C;
}

/// The printed assembly of every physical thread, concatenated. This is the
/// byte string the bit-identity goldens are hashes of.
inline std::string printPhysicalThreads(const MultiThreadProgram &MTP) {
  std::string S;
  for (const Program &T : MTP.Threads) {
    S += "=== ";
    S += T.Name;
    S += "\n";
    S += programToString(T);
  }
  return S;
}

/// One golden record: `ok:<fnv64-hex of printed assembly>`, `infeasible`
/// (allocator reported an infeasible budget), or `skip` (the seed has no
/// squeezable gap for the spill mode).
inline std::string goldenOutcome(uint64_t Seed, const std::string &Mode) {
  auto hashed = [](const MultiThreadProgram &Physical) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "ok:%016llx",
             static_cast<unsigned long long>(
                 fnv1aHash(printPhysicalThreads(Physical))));
    return std::string(Buf);
  };

  if (Mode == "plain" || Mode == "pgo") {
    FuzzCase C = makeCase(Seed);
    std::vector<CostModel> Models;
    if (Mode == "pgo")
      for (const Program &P : C.Renamed.Threads)
        Models.push_back(estimateCostModel(P));
    InterThreadResult R = allocateInterThread(C.Renamed, C.Nreg, {}, Models);
    return R.Success ? hashed(R.Physical) : "infeasible";
  }

  // Spill mode: squeeze the budget below the feasibility lower bound, as in
  // AllocFuzzTest.SpillFallbackRecoversInfeasibleBudgets.
  FuzzCase C = makeCase(Seed, /*SmallPrograms=*/true);
  int SumMinPR = 0, MaxMinSRGap = 0;
  for (const Program &P : C.Renamed.Threads) {
    const RegBounds B = estimateRegBounds(analyzeThread(P));
    SumMinPR += B.MinPR;
    MaxMinSRGap = std::max(MaxMinSRGap, B.MinR - B.MinPR);
  }
  const int LowerBound = SumMinPR + MaxMinSRGap;
  const int Squeeze = 1 + static_cast<int>(Seed % 4);
  const int Tight = std::max(4 * C.Nthd, LowerBound - Squeeze);
  if (Tight >= LowerBound)
    return "skip";
  SpillFallbackOptions Opts;
  Opts.MaxSpills = 256;
  SpillFallbackResult SF = allocateWithSpillFallback(
      C.Renamed, Tight, {}, {}, nullptr, InterAllocLimits(), Opts);
  return SF.Inter.Success ? hashed(SF.Inter.Physical) : "infeasible";
}

} // namespace fuzzcase
} // namespace npral

#endif // NPRAL_TESTS_INTEGRATION_FUZZCASEFACTORY_H
