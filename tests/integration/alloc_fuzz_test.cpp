//===- alloc_fuzz_test.cpp - Property-based fuzz + differential tests -----===//
//
// Randomised hardening of the full inter+intra allocation stack, run over a
// seeded corpus of >= 200 generated multi-thread programs spanning varied
// thread counts, register file sizes and context-switch densities:
//
//  * Fuzz: every successful allocation must pass the independent
//    AllocationVerifier and the lint cross-thread race checker with zero
//    error findings.
//  * Differential invariants: per-thread bounds always satisfy
//    MinPR <= MaxPR <= MaxR and MinR <= MaxR; and whenever the Chaitin
//    baseline colors every thread inside its fixed Nreg/Nthd partition
//    without spilling, the balancing allocator must also fit Nreg with
//    finite move overhead (the partitioned allocation is one of its
//    feasible points). Any divergence dumps both allocations.
//
// Every assertion message carries the failing seed. Each test's gtest
// parameter IS the seed, so a failure like "AllocFuzz/AllocFuzzTest.X/137"
// reproduces with --gtest_filter='*AllocFuzzTest*/137'.
//
//===----------------------------------------------------------------------===//

#include "FuzzCaseFactory.h"

#include "alloc/AllocationVerifier.h"
#include "baseline/ChaitinAllocator.h"
#include "lint/Lint.h"
#include "lint/TranslationValidator.h"

#include "gtest/gtest.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;
using fuzzcase::FuzzCase;
using fuzzcase::makeCase;

namespace {

std::string dumpNpralAllocation(const InterThreadResult &R) {
  std::ostringstream OS;
  if (!R.Success)
    return "npral: failed (" + R.FailReason + ")";
  OS << "npral: regs=" << R.RegistersUsed << " SGR=" << R.SGR
     << " moves=" << R.TotalMoveCost;
  for (size_t T = 0; T < R.Threads.size(); ++T)
    OS << " | t" << T << " PR=" << R.Threads[T].PR
       << " SR=" << R.Threads[T].SR << " moves=" << R.Threads[T].MoveCost
       << " " << R.Threads[T].Strategy;
  return OS.str();
}

std::string dumpChaitinAllocation(const std::vector<ChaitinResult> &Rs) {
  std::ostringstream OS;
  OS << "chaitin:";
  for (size_t T = 0; T < Rs.size(); ++T) {
    OS << " | t" << T;
    if (Rs[T].Success)
      OS << " colors=" << Rs[T].ColorsUsed << " spilled=" << Rs[T].SpilledRanges;
    else
      OS << " failed (" << Rs[T].FailReason << ")";
  }
  return OS.str();
}

std::string dumpDiagnostics(const DiagnosticEngine &Engine) {
  std::ostringstream OS;
  Engine.renderText(OS);
  return OS.str();
}

} // namespace

class AllocFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocFuzzTest, AllocationVerifiesAndRaceFree) {
  const uint64_t Seed = GetParam();
  FuzzCase C = makeCase(Seed);

  // Per-thread bounds and the feasibility lower bound
  // LB = sum MinPR_i + max_i (MinR_i - MinPR_i): the fragment fallback
  // guarantees an allocation whenever LB <= Nreg.
  int SumMinPR = 0, MaxMinSRGap = 0;
  std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
  for (const Program &P : C.Renamed.Threads) {
    auto Bundle =
        std::make_shared<const ThreadAnalysisBundle>(computeThreadAnalysisBundle(P));
    const RegBounds &B = Bundle->Bounds;
    // Differential invariants on the bounds themselves.
    EXPECT_LE(B.MinPR, B.MaxPR) << "seed " << Seed;
    EXPECT_LE(B.MaxPR, B.MaxR) << "seed " << Seed;
    EXPECT_LE(B.MinR, B.MaxR) << "seed " << Seed;
    EXPECT_LE(B.MinPR, B.MinR) << "seed " << Seed;
    SumMinPR += B.MinPR;
    MaxMinSRGap = std::max(MaxMinSRGap, B.MinR - B.MinPR);
    Bundles.push_back(std::move(Bundle));
  }
  const int LowerBound = SumMinPR + MaxMinSRGap;

  InterThreadResult R = allocateInterThread(C.Renamed, C.Nreg, Bundles);
  if (LowerBound <= C.Nreg)
    ASSERT_TRUE(R.Success)
        << "seed " << Seed << ": allocator failed although LB=" << LowerBound
        << " fits Nreg=" << C.Nreg << ": " << R.FailReason;
  if (!R.Success)
    return; // genuinely infeasible budget; nothing to verify

  EXPECT_LE(R.RegistersUsed, C.Nreg) << "seed " << Seed;

  // Zero defects from the independent safety verifier...
  DiagnosticEngine Safety;
  collectAllocationSafety(R.Physical, Safety);
  EXPECT_EQ(Safety.errorCount(), 0)
      << "seed " << Seed << "\n" << dumpDiagnostics(Safety) << "\n"
      << dumpNpralAllocation(R);

  // ...and from the lint cross-thread race checker.
  DiagnosticEngine Races;
  LintOptions Opts;
  Opts.OnlyChecks = {"cross-thread-race"};
  runAllCheckers(R.Physical, Races, Opts);
  EXPECT_EQ(Races.errorCount(), 0)
      << "seed " << Seed << "\n" << dumpDiagnostics(Races) << "\n"
      << dumpNpralAllocation(R);
}

TEST_P(AllocFuzzTest, DominatesSpillFreeChaitinPartition) {
  const uint64_t Seed = GetParam();
  FuzzCase C = makeCase(Seed);

  // The production-compiler layout: each thread confined to a fixed
  // Nreg/Nthd partition, no sharing.
  const int Partition = C.Nreg / C.Nthd;
  std::vector<ChaitinResult> Baseline;
  bool SpillFree = true;
  for (size_t T = 0; T < C.Virtual.Threads.size(); ++T) {
    ChaitinConfig Config;
    Config.NumColors = Partition;
    Config.SpillBase = 0xF000 + 0x100 * static_cast<int64_t>(T);
    Baseline.push_back(runChaitinAllocator(C.Virtual.Threads[T], Config));
    if (!Baseline.back().Success || Baseline.back().SpilledRanges > 0)
      SpillFree = false;
  }
  if (!SpillFree)
    return; // the baseline needed spills; no dominance claim to check

  // A spill-free partitioned coloring is a feasible point of the balancing
  // allocator's search space, so it must fit Nreg with finite move cost.
  InterThreadResult R = allocateInterThread(C.Renamed, C.Nreg);
  ASSERT_TRUE(R.Success)
      << "seed " << Seed << ": Chaitin colors every " << Partition
      << "-register partition spill-free but npral cannot fit Nreg="
      << C.Nreg << "\n" << dumpNpralAllocation(R) << "\n"
      << dumpChaitinAllocation(Baseline);
  EXPECT_LE(R.RegistersUsed, C.Nreg)
      << "seed " << Seed << "\n" << dumpNpralAllocation(R) << "\n"
      << dumpChaitinAllocation(Baseline);
  EXPECT_GE(R.TotalMoveCost, 0) << "seed " << Seed;
}

TEST_P(AllocFuzzTest, SpillFallbackRecoversInfeasibleBudgets) {
  const uint64_t Seed = GetParam();
  FuzzCase C = makeCase(Seed, /*SmallPrograms=*/true);

  // Squeeze the budget below the feasibility lower bound so the strict
  // allocator must report Infeasible, then require the spill fallback to
  // produce a safe, race-free allocation anyway. The squeeze is shallow
  // (1..4 registers below LB, varied by seed) — each demoted range costs a
  // full re-analysis round, so deep squeezes would dominate suite runtime
  // without strengthening the property. Generated programs have
  // three-operand instructions, so 4 registers is the practical floor.
  int SumMinPR = 0, MaxMinSRGap = 0;
  for (const Program &P : C.Renamed.Threads) {
    const RegBounds B = estimateRegBounds(analyzeThread(P));
    SumMinPR += B.MinPR;
    MaxMinSRGap = std::max(MaxMinSRGap, B.MinR - B.MinPR);
  }
  const int LowerBound = SumMinPR + MaxMinSRGap;
  const int Squeeze = 1 + static_cast<int>(Seed % 4);
  const int Tight = std::max(4 * C.Nthd, LowerBound - Squeeze);
  if (Tight >= LowerBound)
    return; // this corpus entry has no squeezable gap

  InterThreadResult Strict = allocateInterThread(C.Renamed, Tight);
  ASSERT_FALSE(Strict.Success) << "seed " << Seed << ": Nreg=" << Tight
                               << " below LB=" << LowerBound;
  EXPECT_EQ(Strict.FailCode, StatusCode::Infeasible) << "seed " << Seed;

  SpillFallbackOptions Opts;
  Opts.MaxSpills = 256;
  SpillFallbackResult SF = allocateWithSpillFallback(
      C.Renamed, Tight, {}, {}, nullptr, InterAllocLimits(), Opts);
  ASSERT_TRUE(SF.Inter.Success)
      << "seed " << Seed << ": spill fallback failed at Nreg=" << Tight
      << " (LB=" << LowerBound << "): " << SF.Inter.FailReason;
  EXPECT_TRUE(SF.UsedSpilling) << "seed " << Seed;
  EXPECT_LE(SF.Inter.RegistersUsed, Tight) << "seed " << Seed;

  DiagnosticEngine Safety;
  collectAllocationSafety(SF.Inter.Physical, Safety);
  EXPECT_FALSE(Safety.hasErrors())
      << "seed " << Seed << "\n" << dumpDiagnostics(Safety) << "\n"
      << dumpNpralAllocation(SF.Inter);
  for (const Diagnostic &D : Safety.diagnostics())
    EXPECT_NE(D.Check, "cross-thread-abs-overlap")
        << "seed " << Seed << ": spill scratch windows overlap: "
        << D.Message;
}

TEST_P(AllocFuzzTest, TranslationValidationHolds) {
  const uint64_t Seed = GetParam();
  // Small programs: this property runs the allocator three times (unit,
  // PGO-weighted, spill-degraded) and the validator's fixpoint after each.
  FuzzCase C = makeCase(Seed, /*SmallPrograms=*/true);

  // Unit-weighted allocation: every successful output must be provably
  // equivalent to the renamed virtual program.
  InterThreadResult Unit = allocateInterThread(C.Renamed, C.Nreg);
  if (Unit.Success) {
    DiagnosticEngine Engine;
    ValidationResult V = validateTranslation(C.Renamed, Unit.Physical, Engine);
    EXPECT_TRUE(V.Proved)
        << "seed " << Seed << ": unit allocation refuted\n"
        << dumpDiagnostics(Engine) << "\n" << dumpNpralAllocation(Unit);
  }

  // Static-PGO weights change which copies the allocator places, never
  // what the program computes — the proof must still go through.
  std::vector<CostModel> Models;
  for (const Program &P : C.Renamed.Threads)
    Models.push_back(estimateCostModel(P));
  InterThreadResult Pgo = allocateInterThread(C.Renamed, C.Nreg, {}, Models);
  if (Pgo.Success) {
    DiagnosticEngine Engine;
    ValidationResult V = validateTranslation(C.Renamed, Pgo.Physical, Engine);
    EXPECT_TRUE(V.Proved)
        << "seed " << Seed << ": static-PGO allocation refuted\n"
        << dumpDiagnostics(Engine) << "\n" << dumpNpralAllocation(Pgo);
  }

  // Spill-degraded output: squeeze the budget below the feasibility lower
  // bound so the fallback must demote ranges, then prove the degraded
  // program (spill code, pre-entry blocks and all) against the same
  // pre-spill reference.
  int SumMinPR = 0, MaxMinSRGap = 0;
  for (const Program &P : C.Renamed.Threads) {
    const RegBounds B = estimateRegBounds(analyzeThread(P));
    SumMinPR += B.MinPR;
    MaxMinSRGap = std::max(MaxMinSRGap, B.MinR - B.MinPR);
  }
  const int LowerBound = SumMinPR + MaxMinSRGap;
  const int Tight = std::max(4 * C.Nthd, LowerBound - 1 -
                                             static_cast<int>(Seed % 4));
  if (Tight >= LowerBound)
    return; // no squeezable gap in this corpus entry
  SpillFallbackOptions Opts;
  Opts.MaxSpills = 256;
  SpillFallbackResult SF = allocateWithSpillFallback(
      C.Renamed, Tight, {}, {}, nullptr, InterAllocLimits(), Opts);
  if (!SF.Inter.Success)
    return; // recovery itself is SpillFallbackRecoversInfeasibleBudgets' job
  DiagnosticEngine Engine;
  ValidationResult V =
      validateTranslation(C.Renamed, SF.Inter.Physical, Engine);
  EXPECT_TRUE(V.Proved)
      << "seed " << Seed << ": spill-degraded allocation at Nreg=" << Tight
      << " refuted\n" << dumpDiagnostics(Engine) << "\n"
      << dumpNpralAllocation(SF.Inter);
  if (SF.UsedSpilling)
    EXPECT_GT(V.CopiesInterpreted, 0)
        << "seed " << Seed
        << ": degraded output proved without interpreting any spill code";
}

namespace {

/// Lazily loaded golden map: (seed, mode) -> outcome string, recorded by
/// `record_alloc_goldens` on the pre-rewrite build (see the file header in
/// alloc_goldens.txt).
const std::map<std::pair<uint64_t, std::string>, std::string> &goldens() {
  static const auto *Map = [] {
    auto *M = new std::map<std::pair<uint64_t, std::string>, std::string>();
    std::ifstream In(NPRAL_ALLOC_GOLDENS_FILE);
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty() || Line[0] == '#')
        continue;
      std::istringstream LS(Line);
      uint64_t Seed;
      std::string Mode, Outcome;
      if (LS >> Seed >> Mode >> Outcome)
        (*M)[{Seed, Mode}] = Outcome;
    }
    return M;
  }();
  return *Map;
}

} // namespace

// Bit-identity clause: the printed assembly of every allocation (plain,
// static-PGO-weighted, and spill-degraded) must be byte-equal to what the
// pre-rewrite allocator produced — goldens carry an FNV-64 of the full
// text, so any drift in analysis results, elimination orders, tie-breaks or
// copy placement fails here with the seed and mode in hand.
TEST_P(AllocFuzzTest, BitIdenticalToPreRewriteGoldens) {
  const uint64_t Seed = GetParam();
  for (const char *Mode : {"plain", "pgo", "spill"}) {
    auto It = goldens().find({Seed, Mode});
    ASSERT_NE(It, goldens().end())
        << "no golden for seed " << Seed << " mode " << Mode
        << " — run record_alloc_goldens";
    EXPECT_EQ(fuzzcase::goldenOutcome(Seed, Mode), It->second)
        << "seed " << Seed << " mode " << Mode
        << ": allocation diverged from the pre-rewrite golden";
  }
}

// 5 tests x 200 seeds = 1000 randomized cases over varied (Nthd, Nreg, CSB
// density). The parameter is the seed itself; rerun one case with
// --gtest_filter='*AllocFuzzTest*/<seed>'.
INSTANTIATE_TEST_SUITE_P(AllocFuzz, AllocFuzzTest,
                         ::testing::Range<uint64_t>(0, 200));
