//===- PgoDifferentialTest.cpp - PGO on/off differential ------------------===//
//
// The profile subsystem's central compatibility promise: under unit
// weights the allocator is bit-identical to the pre-profile allocator —
// passing a vector of default CostModels must produce byte-for-byte the
// same physical program as passing no models at all, on every example
// fixture and every workload scenario. And with real (collected) weights
// the allocation may differ but must stay safe and semantically
// equivalent to the virtual-register reference.
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "asmparse/AsmParser.h"
#include "ir/IRPrinter.h"
#include "profile/ProfileCollector.h"
#include "profile/StaticFrequencyEstimator.h"
#include "workloads/Harness.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace npral;
using namespace npral::test;

namespace {

std::string printPhysical(const InterThreadResult &R) {
  std::string Out;
  for (const Program &T : R.Physical.Threads)
    Out += programToString(T);
  return Out;
}

MultiThreadProgram loadFixture(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(SS.str());
  EXPECT_TRUE(MTP.ok()) << MTP.status().str();
  MultiThreadProgram Out = MTP.take();
  for (Program &T : Out.Threads)
    T = renameLiveRanges(T);
  return Out;
}

/// Budgets to compare at: generous, and squeezed to where moves appear.
std::vector<int> interestingBudgets(const MultiThreadProgram &MTP) {
  std::vector<int> Budgets;
  for (int Nreg : {128, 64, 48, 32, 24, 16, 12, 8}) {
    if (allocateInterThread(MTP, Nreg).Success)
      Budgets.push_back(Nreg);
  }
  return Budgets;
}

} // namespace

TEST(PgoDifferentialTest, UnitModelsAreBitIdenticalOnFixtures) {
  int Compared = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(NPRAL_EXAMPLES_ASM_DIR)) {
    if (Entry.path().extension() != ".s")
      continue;
    MultiThreadProgram MTP = loadFixture(Entry.path().string());
    std::vector<CostModel> UnitModels(
        static_cast<size_t>(MTP.getNumThreads()));
    for (int Nreg : interestingBudgets(MTP)) {
      InterThreadResult Plain = allocateInterThread(MTP, Nreg);
      InterThreadResult Unit = allocateInterThread(MTP, Nreg, {}, UnitModels);
      ASSERT_TRUE(Plain.Success && Unit.Success);
      EXPECT_EQ(printPhysical(Plain), printPhysical(Unit))
          << Entry.path().filename() << " Nreg=" << Nreg;
      EXPECT_EQ(Plain.TotalMoveCost, Unit.TotalMoveCost);
      EXPECT_EQ(Unit.TotalWeightedCost, Unit.TotalMoveCost)
          << "unit weighted cost must equal the raw move count";
      ++Compared;
    }
  }
  EXPECT_GT(Compared, 0);
}

TEST(PgoDifferentialTest, UnitModelsAreBitIdenticalOnScenarios) {
  for (const Scenario &S : getAraScenarios()) {
    std::vector<Workload> Workloads = buildScenarioWorkloads(S);
    MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);
    std::vector<CostModel> UnitModels(
        static_cast<size_t>(Virtual.getNumThreads()));
    InterThreadResult Plain = allocateInterThread(Virtual, 128);
    InterThreadResult Unit = allocateInterThread(Virtual, 128, {}, UnitModels);
    ASSERT_TRUE(Plain.Success && Unit.Success) << S.Name;
    EXPECT_EQ(printPhysical(Plain), printPhysical(Unit)) << S.Name;
  }
}

TEST(PgoDifferentialTest, WeightedAllocationsStaySafeAndEquivalent) {
  for (const Scenario &S : getAraScenarios()) {
    std::vector<Workload> Workloads = buildScenarioWorkloads(S);
    MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);

    // Collect a real profile in reference mode.
    ProfileCollector Collector(Virtual);
    SimConfig Config = equivalenceConfig();
    ScenarioRun ProfRun =
        simulateWithWorkloads(Workloads, Virtual, Config, &Collector);
    ASSERT_TRUE(ProfRun.Success) << S.Name << ": " << ProfRun.FailReason;
    const ExecutionProfile &Prof = Collector.getProfile();

    std::vector<CostModel> Models;
    for (int T = 0; T < Virtual.getNumThreads(); ++T)
      Models.push_back(Prof.costModel(
          T, Virtual.Threads[static_cast<size_t>(T)].getNumBlocks()));

    // Squeeze to force moves, then check the weighted allocation.
    for (int Nreg : interestingBudgets(Virtual)) {
      InterThreadResult R = allocateInterThread(Virtual, Nreg, {}, Models);
      ASSERT_TRUE(R.Success) << S.Name << " Nreg=" << Nreg;
      ASSERT_TRUE(verifyAllocationSafety(R.Physical).ok())
          << S.Name << " Nreg=" << Nreg;

      ScenarioRun Run =
          simulateWithWorkloads(Workloads, R.Physical, Config);
      ASSERT_TRUE(Run.Success) << S.Name << " Nreg=" << Nreg << ": "
                               << Run.FailReason;
      ScenarioRun Ref = simulateWithWorkloads(Workloads, Virtual, Config);
      ASSERT_TRUE(Ref.Success);
      for (size_t T = 0; T < Workloads.size(); ++T)
        EXPECT_EQ(Run.Threads[T].OutputHash, Ref.Threads[T].OutputHash)
            << S.Name << " Nreg=" << Nreg << " thread " << T;
    }
  }
}

TEST(PgoDifferentialTest, StaticEstimatorAllocationsStaySafe) {
  for (const Scenario &S : getAraScenarios()) {
    std::vector<Workload> Workloads = buildScenarioWorkloads(S);
    MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);
    std::vector<CostModel> Models;
    for (const Program &T : Virtual.Threads)
      Models.push_back(estimateCostModel(T));
    InterThreadResult R = allocateInterThread(Virtual, 128, {}, Models);
    ASSERT_TRUE(R.Success) << S.Name;
    EXPECT_TRUE(verifyAllocationSafety(R.Physical).ok()) << S.Name;
  }
}
