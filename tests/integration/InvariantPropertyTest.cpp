//===- InvariantPropertyTest.cpp - Structural invariants, randomised ------===//
//
// Parameterised sweeps checking the paper's structural claims on random
// programs and on the benchmark kernels:
//
//   * NSR decomposition invariants (§3.1);
//   * BIG edges are a subset of GIG edges (boundary interference implies
//     co-liveness);
//   * Claim 2: internal nodes of different NSRs never interfere;
//   * bounds ordering MinPR <= {MinR, MaxPR} <= MaxR and MinR = RegPmax;
//   * web renaming is idempotent and behaviour-preserving;
//   * print -> parse round trips preserve behaviour for every benchmark;
//   * minimal-budget allocation of every benchmark is behaviour-preserving.
//
//===----------------------------------------------------------------------===//

#include "alloc/BoundsEstimator.h"
#include "alloc/IntraAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "analysis/LiveRangeRenaming.h"
#include "ir/IRPrinter.h"
#include "workloads/Harness.h"
#include "workloads/ProgramGenerator.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

GeneratorConfig invariantConfig() {
  GeneratorConfig Config;
  Config.TargetInstructions = 90;
  Config.NumLongLived = 6;
  Config.CtxRatePerMille = 180;
  return Config;
}

} // namespace

class StructuralInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StructuralInvariantTest, NSRDecomposition) {
  Program P = generateRandomProgram(GetParam(), invariantConfig());
  LivenessInfo LI = computeLiveness(P);
  NSRInfo N = computeNSRs(P, LI);

  // Sizes sum to the instruction count.
  int Total = 0;
  for (int Size : N.getNSRSizes())
    Total += Size;
  EXPECT_EQ(Total, P.countInstructions());

  // Pre/post regions are identical at non-switching instructions. (At a
  // CSB they *may* still coincide: the paper's own Fig. 4 example notes
  // that both sides of a boundary can rejoin into one NSR around a loop.)
  // The CSB list covers exactly the context-switching instructions.
  size_t NumCtx = 0;
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      bool Ctx = BB.Instrs[static_cast<size_t>(I)].causesCtxSwitch();
      if (Ctx)
        ++NumCtx;
      else
        EXPECT_EQ(N.instrPreNSR(B, I), N.instrPostNSR(B, I));
    }
  }
  EXPECT_EQ(N.getCSBs().size(), NumCtx);

  // Live-across sets are live-out minus the def, and bound RegPCSBmax.
  int MaxCross = 0;
  for (const CSB &Boundary : N.getCSBs()) {
    const Instruction &I =
        P.block(Boundary.Block)
            .Instrs[static_cast<size_t>(Boundary.InstrIndex)];
    BitVector Expected = LI.instrLiveOut(Boundary.Block, Boundary.InstrIndex);
    if (I.Def != NoReg)
      Expected.reset(I.Def);
    EXPECT_TRUE(Boundary.LiveAcross == Expected);
    MaxCross = std::max(MaxCross, Boundary.LiveAcross.count());
  }
  EXPECT_EQ(N.getRegPCSBmax(), MaxCross);
}

TEST_P(StructuralInvariantTest, GraphClaims) {
  Program P =
      renameLiveRanges(generateRandomProgram(GetParam(), invariantConfig()));
  ThreadAnalysis TA = analyzeThread(P);

  // BIG edges are a subset of GIG edges.
  for (int A = 0; A < TA.BIG.getNumNodes(); ++A)
    TA.BIG.neighbors(A).forEach([&](int B) {
      EXPECT_TRUE(TA.GIG.hasEdge(A, B))
          << "BIG edge (" << A << "," << B << ") missing from GIG";
    });

  // Claim 2: internal nodes with different home NSRs never interfere.
  std::vector<int> Internals = TA.InternalNodes.toVector();
  for (size_t I = 0; I < Internals.size(); ++I)
    for (size_t J = I + 1; J < Internals.size(); ++J) {
      int A = Internals[I], B = Internals[J];
      if (TA.HomeNSR[static_cast<size_t>(A)] !=
          TA.HomeNSR[static_cast<size_t>(B)]) {
        EXPECT_FALSE(TA.GIG.hasEdge(A, B))
            << "cross-NSR internal interference " << A << "," << B;
      }
    }

  // Boundary/internal partition referenced nodes exactly.
  BitVector Union = TA.BoundaryNodes;
  EXPECT_FALSE(TA.BoundaryNodes.intersects(TA.InternalNodes));
  Union.unionWith(TA.InternalNodes);
  EXPECT_TRUE(Union == TA.ReferencedNodes);
}

TEST_P(StructuralInvariantTest, BoundsOrdering) {
  Program P =
      renameLiveRanges(generateRandomProgram(GetParam(), invariantConfig()));
  ThreadAnalysis TA = analyzeThread(P);
  RegBounds B = estimateRegBounds(TA);
  EXPECT_EQ(B.MinR, TA.getRegPmax());
  EXPECT_EQ(B.MinPR, TA.getRegPCSBmax());
  EXPECT_LE(B.MinPR, B.MinR);
  EXPECT_LE(B.MinPR, B.MaxPR);
  EXPECT_LE(B.MinR, B.MaxR);
  EXPECT_LE(B.MaxPR, B.MaxR);
  // The estimator's coloring realises its own bounds.
  TA.BoundaryNodes.forEach([&](int Node) {
    EXPECT_LT(B.Colors[static_cast<size_t>(Node)], B.MaxPR);
  });
  TA.ReferencedNodes.forEach([&](int Node) {
    EXPECT_GE(B.Colors[static_cast<size_t>(Node)], 0);
    EXPECT_LT(B.Colors[static_cast<size_t>(Node)], B.MaxR);
  });
}

TEST_P(StructuralInvariantTest, RenamingIdempotentAndEquivalent) {
  GeneratorConfig Config = invariantConfig();
  Program P = generateRandomProgram(GetParam(), Config);
  Program R1 = renameLiveRanges(P);
  Program R2 = renameLiveRanges(R1);
  EXPECT_EQ(R1.NumRegs, R2.NumRegs) << "renaming must be idempotent";
  EXPECT_GE(R1.NumRegs, P.NumRegs);

  std::vector<uint32_t> Data(Config.MemLen, 0xBEEF);
  auto A = runSingle(P, {}, Config.OutBase, Config.OutLen, Data,
                     Config.MemBase);
  auto B = runSingle(R1, {}, Config.OutBase, Config.OutLen, Data,
                     Config.MemBase);
  ASSERT_TRUE(A.Result.Completed && B.Result.Completed);
  EXPECT_EQ(A.OutputHash, B.OutputHash);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralInvariantTest,
                         ::testing::Range<uint64_t>(100, 125));

class StressInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressInvariantTest, LargeProgramFullPipeline) {
  // Bigger, deeper programs than the regular sweep: the whole pipeline
  // (renaming, analysis, bounds, minimal allocation, equivalence) on a
  // few hundred instructions.
  GeneratorConfig Config;
  Config.TargetInstructions = 260;
  Config.NumLongLived = 10;
  Config.CtxRatePerMille = 140;
  Config.MaxDepth = 4;
  Program P = generateRandomProgram(GetParam(), Config);

  IntraThreadAllocator Intra(P);
  const IntraResult &Min =
      Intra.allocate(Intra.getMinPR(), Intra.getMinR() - Intra.getMinPR());
  ASSERT_TRUE(Min.Feasible) << "seed " << GetParam() << ": "
                            << Min.FailReason;
  std::vector<uint32_t> Data(Config.MemLen, 0x5A5A);
  auto A = runSingle(P, {}, Config.OutBase, Config.OutLen, Data,
                     Config.MemBase);
  auto B = runSingle(Min.ColorProgram, {}, Config.OutBase, Config.OutLen,
                     Data, Config.MemBase);
  ASSERT_TRUE(A.Result.Completed && B.Result.Completed);
  EXPECT_EQ(A.OutputHash, B.OutputHash) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressInvariantTest,
                         ::testing::Range<uint64_t>(500, 508));

class WorkloadRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRoundTripTest, PrintParsePreservesBehaviour) {
  ErrorOr<Workload> W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok());
  std::string Printed = programToString(W->Code);
  Program Reparsed = parseOrDie(Printed);

  Workload W2 = *W;
  W2.Code = Reparsed;
  std::vector<Workload> A = {*W}, B = {W2};
  SimConfig Config = equivalenceConfig();
  Config.TargetIterations = 2;
  ScenarioRun R1 =
      simulateWithWorkloads(A, toMultiThreadProgram(A, "orig"), Config);
  ScenarioRun R2 =
      simulateWithWorkloads(B, toMultiThreadProgram(B, "reparsed"), Config);
  ASSERT_TRUE(R1.Success) << R1.FailReason;
  ASSERT_TRUE(R2.Success) << R2.FailReason;
  EXPECT_EQ(R1.Threads[0].OutputHash, R2.Threads[0].OutputHash);
}

TEST_P(WorkloadRoundTripTest, MinimalAllocationPreservesBehaviour) {
  ErrorOr<Workload> W = buildWorkload(GetParam(), 0);
  ASSERT_TRUE(W.ok());
  IntraThreadAllocator Intra(W->Code);
  const IntraResult &R =
      Intra.allocate(Intra.getMinPR(), Intra.getMinR() - Intra.getMinPR());
  ASSERT_TRUE(R.Feasible) << R.FailReason;

  Workload W2 = *W;
  W2.Code = R.ColorProgram;
  std::vector<Workload> A = {*W}, B = {W2};
  SimConfig Config = equivalenceConfig();
  Config.TargetIterations = 2;
  ScenarioRun R1 =
      simulateWithWorkloads(A, toMultiThreadProgram(A, "orig"), Config);
  ScenarioRun R2 =
      simulateWithWorkloads(B, toMultiThreadProgram(B, "minalloc"), Config);
  ASSERT_TRUE(R1.Success) << R1.FailReason;
  ASSERT_TRUE(R2.Success) << R2.FailReason;
  EXPECT_EQ(R1.Threads[0].OutputHash, R2.Threads[0].OutputHash)
      << GetParam() << " diverges at (MinPR, MinR)";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadRoundTripTest,
                         ::testing::ValuesIn(getWorkloadNames()),
                         [](const auto &Info) { return Info.param; });
