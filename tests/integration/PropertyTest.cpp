//===- PropertyTest.cpp - Randomised allocation properties ----------------===//
//
// Property-based testing over generated programs. For every random program
// and register budget we check the paper's core invariants end to end:
//
//  P1. Feasibility: the intra-thread allocator succeeds whenever
//      PR >= RegPCSBmax and PR+SR >= RegPmax (Lemma 1 and its extension).
//  P2. Band safety: in the produced color program, every value live across
//      a CSB occupies a private color (< PR).
//  P3. Semantic equivalence: original and allocated programs write the same
//      memory.
//  P4. Cross-thread safety: multi-thread physical programs pass the
//      independent safety verifier.
//  P5. Spill correctness: the Chaitin baseline under harsh budgets is still
//      semantically equivalent.
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "alloc/IntraAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "baseline/ChaitinAllocator.h"
#include "workloads/ProgramGenerator.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

GeneratorConfig propertyConfig() {
  GeneratorConfig Config;
  Config.TargetInstructions = 70;
  Config.NumLongLived = 7;
  Config.CtxRatePerMille = 160;
  return Config;
}

uint64_t runHash(const Program &P, const GeneratorConfig &Config) {
  auto Run = runSingle(P, {}, Config.OutBase, Config.OutLen,
                       std::vector<uint32_t>(Config.MemLen, 0x1234),
                       Config.MemBase);
  EXPECT_TRUE(Run.Result.Completed) << Run.Result.FailReason;
  return Run.OutputHash;
}

/// Band safety (P2) on a color program.
void expectBandSafety(const Program &CP, int PR) {
  LivenessInfo LI = computeLiveness(CP);
  NSRInfo N = computeNSRs(CP, LI);
  for (const CSB &Boundary : N.getCSBs())
    Boundary.LiveAcross.forEach(
        [&](int Color) { EXPECT_LT(Color, PR) << "shared color crosses CSB"; });
}

} // namespace

class IntraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntraPropertyTest, LowerBoundAllocationIsSoundAndEquivalent) {
  GeneratorConfig Config = propertyConfig();
  Program P = generateRandomProgram(GetParam(), Config);
  uint64_t Expected = runHash(P, Config);

  IntraThreadAllocator Intra(P);
  // P1: feasible exactly at the lower bounds.
  const IntraResult &Min =
      Intra.allocate(Intra.getMinPR(), Intra.getMinR() - Intra.getMinPR());
  ASSERT_TRUE(Min.Feasible) << "seed " << GetParam() << ": " << Min.FailReason;
  // P2.
  expectBandSafety(Min.ColorProgram, Intra.getMinPR());
  // P3.
  EXPECT_EQ(runHash(Min.ColorProgram, Config), Expected)
      << "seed " << GetParam() << " (minimal budget)";
}

TEST_P(IntraPropertyTest, MidBudgetAllocationIsSoundAndEquivalent) {
  GeneratorConfig Config = propertyConfig();
  Program P = generateRandomProgram(GetParam(), Config);
  uint64_t Expected = runHash(P, Config);

  IntraThreadAllocator Intra(P);
  int PR = (Intra.getMinPR() + Intra.getMaxPR() + 1) / 2;
  int R = (Intra.getMinR() + Intra.getMaxR() + 1) / 2;
  if (R < PR)
    R = PR;
  const IntraResult &Mid = Intra.allocate(PR, R - PR);
  ASSERT_TRUE(Mid.Feasible) << "seed " << GetParam() << ": " << Mid.FailReason;
  expectBandSafety(Mid.ColorProgram, PR);
  EXPECT_EQ(runHash(Mid.ColorProgram, Config), Expected)
      << "seed " << GetParam() << " (mid budget)";
}

TEST_P(IntraPropertyTest, ChaitinSpillingIsEquivalent) {
  GeneratorConfig Config = propertyConfig();
  Program P = generateRandomProgram(GetParam(), Config);
  uint64_t Expected = runHash(P, Config);

  // Budget well below the long-lived pool size forces spilling. Keep at
  // least 4 colors so reload temps always fit.
  ChaitinConfig CC;
  CC.NumColors = 6;
  CC.SpillBase = Config.OutBase + Config.OutLen + 16;
  ChaitinResult R = runChaitinAllocator(P, CC);
  ASSERT_TRUE(R.Success) << "seed " << GetParam() << ": " << R.FailReason;
  EXPECT_EQ(runHash(R.Allocated, Config), Expected) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntraPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

class InterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterPropertyTest, FourThreadAllocationSafeAndEquivalent) {
  // Four different random threads on one engine; each gets its own memory
  // regions so outputs are independently checkable.
  GeneratorConfig Configs[4];
  MultiThreadProgram MTP;
  for (int T = 0; T < 4; ++T) {
    Configs[T] = propertyConfig();
    Configs[T].MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
    Configs[T].OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
    Program P =
        generateRandomProgram(GetParam() * 10 + static_cast<uint64_t>(T),
                              Configs[T]);
    P.Name = "rand" + std::to_string(T);
    MTP.Threads.push_back(P);
  }

  // Pick a budget between the global lower and upper requirements so the
  // reduction loop has real work but success is guaranteed.
  int SumMinPR = 0, MaxMinSR = 0, SumMaxPR = 0, MaxMaxSR = 0;
  for (const Program &P : MTP.Threads) {
    IntraThreadAllocator Probe(P);
    SumMinPR += Probe.getMinPR();
    MaxMinSR = std::max(MaxMinSR, Probe.getMinR() - Probe.getMinPR());
    SumMaxPR += Probe.getMaxPR();
    MaxMaxSR = std::max(MaxMaxSR, Probe.getMaxR() - Probe.getMaxPR());
  }
  int Nreg = (SumMinPR + MaxMinSR + SumMaxPR + MaxMaxSR) / 2 + 1;

  InterThreadResult R = allocateInterThread(MTP, Nreg);
  ASSERT_TRUE(R.Success) << "seed " << GetParam() << ": " << R.FailReason;
  EXPECT_LE(R.RegistersUsed, Nreg);
  // P4: independent safety check.
  Status S = verifyAllocationSafety(R.Physical);
  EXPECT_TRUE(S.ok()) << S.str();

  // P3 per thread: run all four threads together and compare each output
  // region against the single-thread reference.
  SimConfig SC;
  Simulator Sim(R.Physical, SC);
  for (int T = 0; T < 4; ++T)
    Sim.writeMemory(Configs[T].MemBase,
                    std::vector<uint32_t>(Configs[T].MemLen, 0x1234));
  SimResult SR = Sim.run();
  ASSERT_TRUE(SR.Completed) << SR.FailReason;
  for (int T = 0; T < 4; ++T) {
    uint64_t Got =
        Sim.hashMemoryRange(Configs[T].OutBase, Configs[T].OutLen);
    uint64_t Expected = runHash(MTP.Threads[static_cast<size_t>(T)],
                                Configs[T]);
    EXPECT_EQ(Got, Expected) << "seed " << GetParam() << " thread " << T;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));
