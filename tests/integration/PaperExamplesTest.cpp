//===- PaperExamplesTest.cpp - The paper's worked examples as tests -------===//
//
// The three worked examples from the paper, pinned as regression tests:
//
//   * Figure 3(a-b): two threads share registers — thread 1 needs one
//     private register (only `a` crosses its switches), thread 2 none, and
//     the pair fits in 3 registers instead of 4.
//   * Figure 3(c): live range splitting brings the pair down to 2.
//   * Figure 4/5: the frag checksum CFG decomposes into 3 NSRs with
//     sum/buf/len on the BIG and the tmp values internal.
//   * Figure 9: MinPR=2 < MaxPR=3 and splitting reaches the lower bound.
//     (Covered in ColoringTest/AllocatorTest; re-checked end to end here.)
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "asmparse/AsmParser.h"
#include "sim/Simulator.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

const char *Fig3Asm = R"(
.thread fig3_thread1
main:
    imm  a, 1
    ctx
    bz   a, l1
    imm  b, 2
    add  t, a, b
    imm  c, 3
    br   l2
l1:
    imm  c, 4
    add  t, a, c
    imm  b, 5
l2:
    add  u, b, c
    store [u+0], u
    loopend
    halt

.thread fig3_thread2
main:
    ctx
    imm  d, 7
    addi e, d, 1
    store [e+0], e
    loopend
    halt
)";

uint64_t runPair(const MultiThreadProgram &MTP) {
  Simulator Sim(MTP, SimConfig());
  SimResult R = Sim.run();
  EXPECT_TRUE(R.Completed) << R.FailReason;
  // Both threads write to low memory; hash a window covering them.
  return Sim.hashMemoryRange(0, 64);
}

} // namespace

TEST(PaperExamplesTest, Figure3SharingUsesThreeRegisters) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Fig3Asm);
  ASSERT_TRUE(MTP.ok());
  InterThreadResult R = allocateInterThread(*MTP, 4);
  ASSERT_TRUE(R.Success) << R.FailReason;
  // Paper: "lowering total register requirements from four to three".
  EXPECT_EQ(R.Threads[0].PR, 1) << "only `a` crosses thread 1's switches";
  EXPECT_EQ(R.Threads[1].PR, 0) << "thread 2 holds nothing across switches";
  EXPECT_EQ(R.RegistersUsed, 3);
  EXPECT_EQ(R.TotalMoveCost, 0);
  EXPECT_TRUE(verifyAllocationSafety(R.Physical).ok());
  EXPECT_EQ(runPair(R.Physical), runPair(*MTP));
}

TEST(PaperExamplesTest, Figure3cSplittingReachesTwoRegisters) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Fig3Asm);
  ASSERT_TRUE(MTP.ok());
  InterThreadResult R = allocateInterThread(*MTP, 2);
  ASSERT_TRUE(R.Success) << R.FailReason;
  // Paper Fig. 3(c): move insertion brings the pair down to two registers.
  EXPECT_EQ(R.RegistersUsed, 2);
  EXPECT_GT(R.TotalMoveCost, 0) << "two registers require split moves";
  EXPECT_TRUE(verifyAllocationSafety(R.Physical).ok());
  EXPECT_EQ(runPair(R.Physical), runPair(*MTP));
}

TEST(PaperExamplesTest, Figure3InfeasibleBelowTheBound) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Fig3Asm);
  ASSERT_TRUE(MTP.ok());
  EXPECT_FALSE(allocateInterThread(*MTP, 1).Success)
      << "thread 1 alone needs two co-live values";
}

TEST(PaperExamplesTest, Figure4FragDecomposition) {
  // The paper's frag fragment (Fig. 4): a checksum loop bounded by memory
  // reads and programmer-inserted ctx_switch instructions. sum/buf/len are
  // boundary; the tmp loads are internal; the regions number three.
  Program P = parseOrDie(R"(
.thread frag4
.entrylive buf, len
main:
    imm  sum, 0
loop:
    bz   len, out
    load tmp1, [buf+0]
    add  sum, sum, tmp1
    addi buf, buf, 1
    subi len, len, 1
    ctx
    br   loop
out:
    load tmp2, [buf+0]
    andi tmp2, tmp2, 0xFFFF
    add  sum, sum, tmp2
    store [buf+1], sum
    halt
)");
  ThreadAnalysis TA = analyzeThread(P);
  EXPECT_EQ(TA.BoundaryNodes.count(), 3) << "sum, buf, len";
  EXPECT_EQ(TA.InternalNodes.count(), 2) << "tmp1, tmp2";
  // BIG: the boundary trio forms a triangle (they cross the loop's
  // boundaries together).
  std::vector<int> Boundary = TA.BoundaryNodes.toVector();
  for (size_t I = 0; I < Boundary.size(); ++I)
    for (size_t J = I + 1; J < Boundary.size(); ++J)
      EXPECT_TRUE(TA.BIG.hasEdge(Boundary[I], Boundary[J]));
  // The two tmp values never interfere (different NSRs).
  std::vector<int> Internal = TA.InternalNodes.toVector();
  ASSERT_EQ(Internal.size(), 2u);
  EXPECT_FALSE(TA.GIG.hasEdge(Internal[0], Internal[1]));
}

TEST(PaperExamplesTest, SharedRegisterActuallySharedAcrossThreads) {
  // The crux of the paper: with the Fig. 3 pair in 3 registers, one
  // physical register is referenced by both threads. Verify that directly.
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Fig3Asm);
  ASSERT_TRUE(MTP.ok());
  InterThreadResult R = allocateInterThread(*MTP, 4);
  ASSERT_TRUE(R.Success);
  AllocationSafetyStats Stats;
  ASSERT_TRUE(verifyAllocationSafety(R.Physical, &Stats).ok());
  EXPECT_GE(Stats.SharedRegCount, 1)
      << "at least one physical register serves both threads";
}
