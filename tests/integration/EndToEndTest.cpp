//===- EndToEndTest.cpp - Full scenario pipelines --------------------------===//
//
// Integration tests over the paper's ARA scenarios: allocate with both the
// inter-thread allocator and the spilling baseline, verify safety, simulate
// and compare outputs, and check the headline performance directions.
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "workloads/Harness.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

struct ScenarioFixture {
  std::vector<Workload> Workloads;
  MultiThreadProgram Virtual;
  InterThreadResult Sharing;
  BaselineAllocationOutcome Baseline;

  explicit ScenarioFixture(const Scenario &S) {
    Workloads = buildScenarioWorkloads(S);
    Virtual = toMultiThreadProgram(Workloads, S.Name);
    Sharing = allocateInterThread(Virtual, 128);
    Baseline = allocateScenarioBaseline(Workloads, 32);
  }
};

} // namespace

class AraScenarioTest : public ::testing::TestWithParam<int> {};

TEST_P(AraScenarioTest, BothAllocatorsSucceedAndAreSafe) {
  ScenarioFixture F(getAraScenarios()[static_cast<size_t>(GetParam())]);
  ASSERT_TRUE(F.Sharing.Success) << F.Sharing.FailReason;
  ASSERT_TRUE(F.Baseline.Success) << F.Baseline.FailReason;
  EXPECT_TRUE(verifyAllocationSafety(F.Sharing.Physical).ok());
  EXPECT_TRUE(verifyAllocationSafety(F.Baseline.Physical).ok());
  EXPECT_LE(F.Sharing.RegistersUsed, 128);
}

TEST_P(AraScenarioTest, OutputsMatchReference) {
  ScenarioFixture F(getAraScenarios()[static_cast<size_t>(GetParam())]);
  ASSERT_TRUE(F.Sharing.Success && F.Baseline.Success);
  SimConfig Config = equivalenceConfig();
  Config.TargetIterations = 5;
  ScenarioRun Ref = simulateWithWorkloads(F.Workloads, F.Virtual, Config);
  ScenarioRun Spill =
      simulateWithWorkloads(F.Workloads, F.Baseline.Physical, Config);
  ScenarioRun Share =
      simulateWithWorkloads(F.Workloads, F.Sharing.Physical, Config);
  ASSERT_TRUE(Ref.Success && Spill.Success && Share.Success);
  for (size_t T = 0; T < F.Workloads.size(); ++T) {
    EXPECT_EQ(Spill.Threads[T].OutputHash, Ref.Threads[T].OutputHash)
        << "spill output diverges, thread " << T;
    EXPECT_EQ(Share.Threads[T].OutputHash, Ref.Threads[T].OutputHash)
        << "sharing output diverges, thread " << T;
  }
}

TEST_P(AraScenarioTest, SharingNeverUsesMoreRegistersThanFile) {
  ScenarioFixture F(getAraScenarios()[static_cast<size_t>(GetParam())]);
  ASSERT_TRUE(F.Sharing.Success);
  int SumPR = 0;
  for (const ThreadAllocation &T : F.Sharing.Threads)
    SumPR += T.PR;
  EXPECT_EQ(F.Sharing.SharedBase, SumPR);
  EXPECT_EQ(F.Sharing.RegistersUsed, SumPR + F.Sharing.SGR);
  EXPECT_LE(F.Sharing.RegistersUsed, 128);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, AraScenarioTest, ::testing::Values(0, 1, 2),
                         [](const auto &Info) {
                           return getAraScenarios()[static_cast<size_t>(
                                                        Info.param)]
                               .Name;
                         });

TEST(HeadlineTest, CriticalThreadsSpeedUpWithSharing) {
  // The paper's headline: performance-critical threads (md5, wraps) gain
  // substantially from register sharing versus the spilling baseline.
  SimConfig Config = defaultExperimentConfig();
  Config.TargetIterations = 20;
  for (const Scenario &S : getAraScenarios()) {
    ScenarioFixture F(S);
    ASSERT_TRUE(F.Sharing.Success && F.Baseline.Success);
    ScenarioRun Spill =
        simulateWithWorkloads(F.Workloads, F.Baseline.Physical, Config);
    ScenarioRun Share =
        simulateWithWorkloads(F.Workloads, F.Sharing.Physical, Config);
    ASSERT_TRUE(Spill.Success && Share.Success);
    for (int T : S.CriticalThreads) {
      double SpillCyc = Spill.Threads[static_cast<size_t>(T)].CyclesPerIter;
      double ShareCyc = Share.Threads[static_cast<size_t>(T)].CyclesPerIter;
      EXPECT_LT(ShareCyc, SpillCyc)
          << S.Name << ": critical thread " << T << " must speed up";
      EXPECT_GT((SpillCyc - ShareCyc) / SpillCyc, 0.05)
          << S.Name << ": speedup should be substantial";
    }
  }
}

TEST(HeadlineTest, SharingRemovesSpillTraffic) {
  for (const Scenario &S : getAraScenarios()) {
    ScenarioFixture F(S);
    ASSERT_TRUE(F.Sharing.Success && F.Baseline.Success);
    int SpillOps = 0;
    for (const ChaitinResult &R : F.Baseline.PerThread)
      SpillOps += R.SpillLoads + R.SpillStores;
    EXPECT_GT(SpillOps, 0) << S.Name << ": baseline must actually spill";
    EXPECT_EQ(F.Sharing.TotalMoveCost, 0)
        << S.Name << ": at Nreg=128 the sharing allocator needs no moves";
  }
}
