//===- record_alloc_goldens.cpp - Golden recorder tool --------------------===//
//
// Writes tests/integration/alloc_goldens.txt: for each pinned seed and each
// allocation mode (plain / static-PGO / spill-degraded), the FNV-64 hash of
// the printed physical assembly. The file committed to the repository was
// produced by the build *preceding* the word-parallel analysis rewrite;
// AllocFuzzTest.BitIdenticalToPreRewriteGoldens replays the same cases on
// the current build and requires byte-identical output.
//
// Usage: record_alloc_goldens <output-file> [num-seeds]
//
//===----------------------------------------------------------------------===//

#include "FuzzCaseFactory.h"

#include <cstdio>
#include <cstdlib>

using namespace npral;

int main(int argc, char **argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s <output-file> [num-seeds]\n", argv[0]);
    return 2;
  }
  const int NumSeeds = argc > 2 ? atoi(argv[2]) : 200;
  FILE *Out = fopen(argv[1], "w");
  if (!Out) {
    fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  fprintf(Out, "# alloc bit-identity goldens: <seed> <mode> <outcome>\n");
  fprintf(Out, "# recorded from the pre-rewrite allocator; do not refresh\n");
  fprintf(Out, "# without understanding why the output changed.\n");
  static const char *Modes[] = {"plain", "pgo", "spill"};
  for (uint64_t Seed = 0; Seed < static_cast<uint64_t>(NumSeeds); ++Seed)
    for (const char *Mode : Modes)
      fprintf(Out, "%llu %s %s\n", static_cast<unsigned long long>(Seed),
              Mode, fuzzcase::goldenOutcome(Seed, Mode).c_str());
  fclose(Out);
  fprintf(stderr, "wrote %d seeds x 3 modes to %s\n", NumSeeds, argv[1]);
  return 0;
}
