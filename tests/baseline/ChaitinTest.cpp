//===- ChaitinTest.cpp - Spilling baseline allocator ----------------------===//

#include "baseline/ChaitinAllocator.h"

#include "workloads/Workload.h"

#include "alloc/AllocationVerifier.h"
#include "analysis/InterferenceGraph.h"
#include "ir/IRVerifier.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

namespace {

const char *PressureAsm = R"(
.thread pressure
.entrylive buf
main:
    imm  o, 0x2000
    imm  a, 1
    imm  b, 2
    imm  c, 3
    imm  d, 4
    imm  e, 5
    add  s, a, b
    add  s, s, c
    add  s, s, d
    add  s, s, e
    add  s, s, buf
    store [o+0], s
    store [o+1], a
    store [o+2], e
    loopend
    halt
)";

} // namespace

TEST(ChaitinTest, NoSpillWhenEnoughColors) {
  Program P = parseOrDie(PressureAsm);
  ChaitinConfig Config;
  Config.NumColors = 16;
  Config.SpillBase = 0x3000;
  ChaitinResult R = runChaitinAllocator(P, Config);
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_EQ(R.SpilledRanges, 0);
  EXPECT_LE(R.ColorsUsed, 16);
  ASSERT_TRUE(verifyProgram(R.Allocated).ok());
}

TEST(ChaitinTest, SpillsUnderPressureAndStaysCorrect) {
  Program P = parseOrDie(PressureAsm);
  ChaitinConfig Config;
  Config.NumColors = 4;
  Config.SpillBase = 0x3000;
  ChaitinResult R = runChaitinAllocator(P, Config);
  ASSERT_TRUE(R.Success) << R.FailReason;
  EXPECT_GT(R.SpilledRanges, 0);
  EXPECT_GT(R.SpillLoads + R.SpillStores, 0);
  ASSERT_TRUE(verifyProgram(R.Allocated).ok());
  // Behaviour preserved.
  auto Orig = runSingle(P, {7}, 0x2000, 8);
  auto Spilled = runSingle(R.Allocated, {7}, 0x2000, 8);
  ASSERT_TRUE(Orig.Result.Completed);
  ASSERT_TRUE(Spilled.Result.Completed) << Spilled.Result.FailReason;
  EXPECT_EQ(Orig.OutputHash, Spilled.OutputHash);
}

TEST(ChaitinTest, SpilledProgramHasMoreCtxEvents) {
  Program P = parseOrDie(PressureAsm);
  ChaitinConfig Tight;
  Tight.NumColors = 4;
  Tight.SpillBase = 0x3000;
  ChaitinResult R = runChaitinAllocator(P, Tight);
  ASSERT_TRUE(R.Success);
  EXPECT_GT(R.Allocated.countCtxInstructions(), P.countCtxInstructions())
      << "spill code adds context-switching memory operations";
}

TEST(ChaitinTest, EntryLiveSpillStoredOnce) {
  // Force the entry-live register to spill; its initial store must execute
  // exactly once even though the kernel loops (regression test for the
  // loop-header entry-store bug).
  Program P = parseOrDie(R"(
.thread entryspill
.entrylive buf
main:
    imm  o, 0x2000
    imm  n, 3
loop:
    imm  a, 1
    imm  b, 2
    imm  c, 3
    add  s, a, b
    add  s, s, c
    add  s, s, buf
    store [o+0], s
    subi n, n, 1
    bnz  n, loop
    loopend
    halt
)");
  ChaitinConfig Config;
  Config.NumColors = 4;
  Config.SpillBase = 0x3000;
  ChaitinResult R = runChaitinAllocator(P, Config);
  ASSERT_TRUE(R.Success) << R.FailReason;
  auto Orig = runSingle(P, {9}, 0x2000, 4);
  auto Spilled = runSingle(R.Allocated, {9}, 0x2000, 4);
  ASSERT_TRUE(Spilled.Result.Completed) << Spilled.Result.FailReason;
  EXPECT_EQ(Orig.OutputHash, Spilled.OutputHash);
}

TEST(ChaitinTest, AllBenchmarksConvergeAt32) {
  for (const std::string &Name : getWorkloadNames()) {
    auto W = buildWorkload(Name, 0);
    ASSERT_TRUE(W.ok());
    ChaitinConfig Config;
    Config.NumColors = 32;
    Config.SpillBase = W->SpillBase;
    ChaitinResult R = runChaitinAllocator(W->Code, Config);
    EXPECT_TRUE(R.Success) << Name << ": " << R.FailReason;
  }
}

TEST(ChaitinTest, MaterializeBaselineUsesDisjointPartitions) {
  Program P = parseOrDie(PressureAsm);
  ChaitinConfig Config;
  Config.NumColors = 8;
  Config.SpillBase = 0x3000;
  ChaitinResult R = runChaitinAllocator(P, Config);
  ASSERT_TRUE(R.Success);
  MultiThreadProgram Phys =
      materializeBaseline({R.Allocated, R.Allocated}, 8, "pair");
  ASSERT_EQ(Phys.Threads.size(), 2u);
  AllocationSafetyStats Stats;
  EXPECT_TRUE(verifyAllocationSafety(Phys, &Stats).ok());
  EXPECT_EQ(Stats.SharedRegCount, 0) << "fixed partitions never share";
}
