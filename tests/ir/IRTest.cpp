//===- IRTest.cpp - Opcode, Instruction, Program, CFG ---------------------===//

#include "ir/CFGUtils.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "ir/Opcode.h"
#include "ir/Program.h"

#include "../common/TestUtils.h"
#include "gtest/gtest.h"

using namespace npral;
using namespace npral::test;

TEST(OpcodeTest, MnemonicRoundTrip) {
  for (int I = 0; I < getNumOpcodes(); ++I) {
    Opcode Op = static_cast<Opcode>(I);
    Opcode Parsed;
    ASSERT_TRUE(parseOpcode(getOpcodeInfo(Op).Mnemonic, Parsed))
        << "mnemonic of opcode " << I;
    EXPECT_EQ(Parsed, Op);
  }
}

TEST(OpcodeTest, UnknownMnemonicRejected) {
  Opcode Op;
  EXPECT_FALSE(parseOpcode("bogus", Op));
  EXPECT_FALSE(parseOpcode("", Op));
}

TEST(OpcodeTest, CtxSwitchClassification) {
  EXPECT_TRUE(getOpcodeInfo(Opcode::Load).CausesCtxSwitch);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Store).CausesCtxSwitch);
  EXPECT_TRUE(getOpcodeInfo(Opcode::LoadA).CausesCtxSwitch);
  EXPECT_TRUE(getOpcodeInfo(Opcode::StoreA).CausesCtxSwitch);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Ctx).CausesCtxSwitch);
  EXPECT_FALSE(getOpcodeInfo(Opcode::Add).CausesCtxSwitch);
  EXPECT_FALSE(getOpcodeInfo(Opcode::Br).CausesCtxSwitch);
}

TEST(InstructionTest, FactoriesFillSlots) {
  Instruction I = Instruction::makeBinary(Opcode::Add, 1, 2, 3);
  EXPECT_EQ(I.Def, 1);
  EXPECT_EQ(I.Use1, 2);
  EXPECT_EQ(I.Use2, 3);
  std::array<Reg, 2> Uses;
  EXPECT_EQ(I.getUses(Uses), 2);

  Instruction L = Instruction::makeLoad(4, 5, 16);
  EXPECT_EQ(L.Def, 4);
  EXPECT_EQ(L.Use1, 5);
  EXPECT_EQ(L.Imm, 16);
  EXPECT_TRUE(L.causesCtxSwitch());

  Instruction S = Instruction::makeStore(6, -4, 7);
  EXPECT_EQ(S.Def, NoReg);
  EXPECT_EQ(S.Use1, 6);
  EXPECT_EQ(S.Use2, 7);
  EXPECT_EQ(S.Imm, -4);

  Instruction Br = Instruction::makeBr(3);
  EXPECT_TRUE(Br.isTerminator());
  EXPECT_EQ(Br.Target, 3);
}

TEST(ProgramTest, SuccessorsOfBranchShapes) {
  Program P;
  P.Name = "succ";
  int B0 = P.addBlock();
  int B1 = P.addBlock();
  int B2 = P.addBlock();
  Reg R = P.addReg();
  // B0: cond-br to B2, fallthrough B1.
  P.block(B0).Instrs.push_back(Instruction::makeImm(R, 0));
  P.block(B0).Instrs.push_back(Instruction::makeCondBrZ(Opcode::BrZ, R, B2));
  P.block(B0).FallThrough = B1;
  // B1: br B2.
  P.block(B1).Instrs.push_back(Instruction::makeBr(B2));
  // B2: halt.
  P.block(B2).Instrs.push_back(Instruction::makeHalt());

  EXPECT_EQ(P.successors(B0), (std::vector<int>{B2, B1}));
  EXPECT_EQ(P.successors(B1), (std::vector<int>{B2}));
  EXPECT_TRUE(P.successors(B2).empty());
  ASSERT_TRUE(verifyProgram(P).ok());
}

TEST(ProgramTest, CondBrPlusFinalBrPattern) {
  Program P;
  int B0 = P.addBlock();
  int B1 = P.addBlock();
  int B2 = P.addBlock();
  Reg R = P.addReg();
  P.block(B0).Instrs.push_back(Instruction::makeImm(R, 0));
  P.block(B0).Instrs.push_back(Instruction::makeCondBrZ(Opcode::BrNz, R, B1));
  P.block(B0).Instrs.push_back(Instruction::makeBr(B2));
  P.block(B1).Instrs.push_back(Instruction::makeHalt());
  P.block(B2).Instrs.push_back(Instruction::makeHalt());
  EXPECT_EQ(P.successors(B0), (std::vector<int>{B1, B2}));
  EXPECT_TRUE(verifyProgram(P).ok());
}

TEST(ProgramTest, RPOStartsAtEntryAndCoversReachable) {
  Program P = parseOrDie(R"(
.thread rpo
a:
    imm x, 1
    bz  x, c
b:
    addi x, x, 1
c:
    halt
)");
  std::vector<int> RPO = P.computeRPO();
  ASSERT_EQ(RPO.size(), 3u);
  EXPECT_EQ(RPO.front(), P.getEntryBlock());
}

TEST(ProgramTest, CountsInstructionsAndCtx) {
  Program P = parseOrDie(R"(
.thread counts
main:
    imm  a, 1
    load b, [a+0]
    ctx
    mov  c, b
    store [a+1], c
    halt
)");
  EXPECT_EQ(P.countInstructions(), 6);
  EXPECT_EQ(P.countCtxInstructions(), 3);
  EXPECT_EQ(P.countMoves(), 1);
}

TEST(IRVerifierTest, RejectsBadOperandShape) {
  Program P;
  P.addBlock();
  P.addReg();
  Instruction I(Opcode::Add); // missing operands
  P.block(0).Instrs.push_back(I);
  P.block(0).Instrs.push_back(Instruction::makeHalt());
  EXPECT_FALSE(verifyProgram(P).ok());
}

TEST(IRVerifierTest, RejectsOutOfRangeRegister) {
  Program P;
  P.addBlock();
  P.NumRegs = 1;
  P.block(0).Instrs.push_back(Instruction::makeMov(0, 5));
  P.block(0).Instrs.push_back(Instruction::makeHalt());
  EXPECT_FALSE(verifyProgram(P).ok());
}

TEST(IRVerifierTest, RejectsMissingExit) {
  Program P;
  P.addBlock();
  Reg R = P.addReg();
  P.block(0).Instrs.push_back(Instruction::makeImm(R, 1));
  // No terminator, no fallthrough.
  EXPECT_FALSE(verifyProgram(P).ok());
}

TEST(IRVerifierTest, RejectsBranchInMiddle) {
  Program P;
  int B0 = P.addBlock();
  int B1 = P.addBlock();
  Reg R = P.addReg();
  P.block(B0).Instrs.push_back(Instruction::makeBr(B1));
  P.block(B0).Instrs.push_back(Instruction::makeImm(R, 1)); // dead, illegal
  P.block(B0).FallThrough = B1;
  P.block(B1).Instrs.push_back(Instruction::makeHalt());
  EXPECT_FALSE(verifyProgram(P).ok());
}

TEST(IRVerifierTest, RejectsBadEntryBlock) {
  Program P = makeTinyProgram();
  P.EntryBlock = 99;
  EXPECT_FALSE(verifyProgram(P).ok());
}

TEST(CFGUtilsTest, SplitEdgeRedirectsBranch) {
  Program P = parseOrDie(R"(
.thread split
a:
    imm x, 1
    bz  x, c
b:
    addi x, x, 1
c:
    halt
)");
  // Find block ids by name.
  int A = -1, C = -1;
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    if (P.blockName(B) == "a")
      A = B;
    if (P.blockName(B) == "c")
      C = B;
  }
  ASSERT_GE(A, 0);
  ASSERT_GE(C, 0);
  int NewBlock = splitEdge(P, A, C);
  EXPECT_TRUE(verifyProgram(P).ok());
  // a no longer branches straight to c.
  for (const Instruction &I : P.block(A).Instrs)
    if (I.isBranch()) {
      EXPECT_EQ(I.Target, NewBlock);
    }
  // The new block falls straight to c.
  EXPECT_EQ(P.successors(NewBlock), (std::vector<int>{C}));
}

TEST(CFGUtilsTest, TerminatorGroupBegin) {
  Program P;
  int B0 = P.addBlock();
  int B1 = P.addBlock();
  Reg R = P.addReg();
  BasicBlock &BB = P.block(B0);
  BB.Instrs.push_back(Instruction::makeImm(R, 1));
  EXPECT_EQ(getTerminatorGroupBegin(BB), 1) << "no branch -> block size";
  BB.Instrs.push_back(Instruction::makeCondBrZ(Opcode::BrZ, R, B1));
  BB.Instrs.push_back(Instruction::makeBr(B1));
  EXPECT_EQ(getTerminatorGroupBegin(BB), 1) << "cond-br + br pair";
}

TEST(CFGUtilsTest, InsertAtClampsPastTerminator) {
  Program P;
  int B0 = P.addBlock();
  int B1 = P.addBlock();
  Reg R = P.addReg();
  P.block(B0).Instrs.push_back(Instruction::makeImm(R, 1));
  P.block(B0).Instrs.push_back(Instruction::makeBr(B1));
  P.block(B1).Instrs.push_back(Instruction::makeHalt());
  insertAt(P, ProgramPoint{B0, 99}, Instruction::makeImm(R, 2));
  ASSERT_EQ(P.block(B0).Instrs.size(), 3u);
  EXPECT_EQ(P.block(B0).Instrs[1].Op, Opcode::Imm)
      << "insertion lands before the terminator";
  EXPECT_TRUE(verifyProgram(P).ok());
}

TEST(IRPrinterTest, FormatsAllShapes) {
  Program P;
  P.addBlock("bb0");
  Reg A = P.addReg("a"), B = P.addReg("b"), C = P.addReg("c");
  EXPECT_EQ(formatInstruction(P, Instruction::makeImm(A, 42)), "imm a, 42");
  EXPECT_EQ(formatInstruction(P, Instruction::makeBinary(Opcode::Add, C, A, B)),
            "add c, a, b");
  EXPECT_EQ(formatInstruction(P, Instruction::makeLoad(A, B, 4)),
            "load a, [b+4]");
  EXPECT_EQ(formatInstruction(P, Instruction::makeStore(B, 2, C)),
            "store [b+2], c");
  EXPECT_EQ(formatInstruction(P, Instruction::makeStoreAbs(100, A)),
            "storea 100, a");
  EXPECT_EQ(formatInstruction(P, Instruction::makeLoadAbs(A, 100)),
            "loada a, 100");
  EXPECT_EQ(formatInstruction(P, Instruction::makeBr(0)), "br bb0");
  EXPECT_EQ(formatInstruction(P, Instruction::makeCtx()), "ctx");
}

TEST(IRBuilderTest, BuildsVerifiableProgram) {
  Program P;
  P.Name = "built";
  IRBuilder B(P);
  B.startBlock("entry");
  Reg X = B.immNew(5, "x");
  Reg Y = B.immNew(7, "y");
  Reg Z = B.binopNew(Opcode::Mul, X, Y, "z");
  Reg Addr = B.immNew(0x2000, "addr");
  B.store(Addr, 0, Z);
  B.halt();
  ASSERT_TRUE(verifyProgram(P).ok());
  auto Run = npral::test::runSingle(P);
  ASSERT_TRUE(Run.Result.Completed) << Run.Result.FailReason;
}
