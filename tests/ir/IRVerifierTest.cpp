//===- IRVerifierTest.cpp - negative coverage for the IR verifier ---------===//
//
// The verifier's happy path is exercised everywhere; these tests pin down
// its rejection behavior by hand-building malformed programs the parser
// would never produce.
//
//===----------------------------------------------------------------------===//

#include "ir/IRVerifier.h"
#include "ir/Program.h"

#include "gtest/gtest.h"

using namespace npral;

namespace {

/// A minimal well-formed single-block program: imm a, 1 / halt.
Program makeValidProgram() {
  Program P;
  P.Name = "valid";
  P.NumRegs = 4;
  int B = P.addBlock("entry");
  P.block(B).Instrs.push_back(Instruction::makeImm(0, 1));
  P.block(B).Instrs.push_back(Instruction::makeHalt());
  return P;
}

TEST(IRVerifierTest, AcceptsValidProgram) {
  Program P = makeValidProgram();
  Status S = verifyProgram(P);
  EXPECT_TRUE(S.ok()) << S.str();
}

TEST(IRVerifierTest, RejectsProgramWithNoBlocks) {
  Program P;
  P.Name = "empty";
  Status S = verifyProgram(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("no blocks"), std::string::npos) << S.str();
}

TEST(IRVerifierTest, RejectsOutOfRangeEntryBlock) {
  Program P = makeValidProgram();
  P.EntryBlock = 7;
  Status S = verifyProgram(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("entry block out of range"), std::string::npos)
      << S.str();

  P.EntryBlock = -1;
  S = verifyProgram(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("entry block out of range"), std::string::npos)
      << S.str();
}

TEST(IRVerifierTest, RejectsBranchTargetOutOfRange) {
  Program P = makeValidProgram();
  // Replace the halt with a branch to a block that does not exist.
  P.block(0).Instrs.back() = Instruction::makeBr(5);
  Status S = verifyProgram(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("branch target out of range"), std::string::npos)
      << S.str();
}

TEST(IRVerifierTest, RejectsBranchInNonTerminatorPosition) {
  Program P;
  P.Name = "midbranch";
  P.NumRegs = 4;
  int B = P.addBlock("entry");
  P.addBlock("other");
  P.block(1).Instrs.push_back(Instruction::makeHalt());
  // An unconditional branch followed by more instructions is malformed.
  P.block(B).Instrs.push_back(Instruction::makeBr(1));
  P.block(B).Instrs.push_back(Instruction::makeImm(0, 1));
  P.block(B).Instrs.push_back(Instruction::makeHalt());
  Status S = verifyProgram(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("not in terminator position"), std::string::npos)
      << S.str();
}

TEST(IRVerifierTest, AllowsCondBranchDirectlyBeforeFinalBr) {
  Program P;
  P.Name = "diamond";
  P.NumRegs = 4;
  int B = P.addBlock("entry");
  P.addBlock("left");
  P.addBlock("right");
  P.block(1).Instrs.push_back(Instruction::makeHalt());
  P.block(2).Instrs.push_back(Instruction::makeHalt());
  P.block(B).Instrs.push_back(Instruction::makeImm(0, 1));
  P.block(B).Instrs.push_back(
      Instruction::makeCondBrZ(Opcode::BrNz, 0, 1));
  P.block(B).Instrs.push_back(Instruction::makeBr(2));
  Status S = verifyProgram(P);
  EXPECT_TRUE(S.ok()) << S.str();
}

TEST(IRVerifierTest, RejectsOutOfRangeRegisterIds) {
  {
    Program P = makeValidProgram();
    P.block(0).Instrs[0] = Instruction::makeImm(9, 1); // def >= NumRegs
    Status S = verifyProgram(P);
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.str().find("def register out of range"), std::string::npos)
        << S.str();
  }
  {
    Program P = makeValidProgram();
    P.block(0).Instrs[0] = Instruction::makeMov(0, 9); // use >= NumRegs
    Status S = verifyProgram(P);
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.str().find("use register out of range"), std::string::npos)
        << S.str();
  }
  {
    Program P = makeValidProgram();
    P.EntryLiveRegs.push_back(42);
    Status S = verifyProgram(P);
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.str().find("entry-live register out of range"),
              std::string::npos)
        << S.str();
  }
}

TEST(IRVerifierTest, RejectsOperandShapeMismatch) {
  Program P = makeValidProgram();
  Instruction Bad(Opcode::Imm); // imm requires a def; leave it empty
  P.block(0).Instrs[0] = Bad;
  Status S = verifyProgram(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("def slot does not match operand shape"),
            std::string::npos)
      << S.str();
}

TEST(IRVerifierTest, RejectsBlockWithoutExit) {
  Program P;
  P.Name = "openblock";
  P.NumRegs = 4;
  int B = P.addBlock("entry");
  P.block(B).Instrs.push_back(Instruction::makeImm(0, 1));
  // No terminator and FallThrough is NoBlock.
  Status S = verifyProgram(P);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.str().find("no terminator and no valid"), std::string::npos)
      << S.str();
}

} // namespace
