//===- PlacementTest.cpp - Thread-to-engine placement ---------------------===//
//
// Placement invariants: every policy produces a permutation of the pool
// with exactly ThreadsPerEngine threads per bin; the bounds policy never
// over-commits an engine's register file when the pool is feasible; search
// never does worse than its bounds seed under the shared cost; and on the
// paper's Table-3 mixes the bounds-driven policies beat naive round-robin
// dealing on aggregate throughput.
//
//===----------------------------------------------------------------------===//

#include "grid/GridHarness.h"
#include "grid/Placement.h"

#include "support/Random.h"
#include "workloads/Harness.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace npral;

namespace {

/// Every bin has exactly ThreadsPerEngine entries and the bins partition
/// the pool's index set.
void expectValidAssignment(const PlacementInput &In,
                           const PlacementResult &R) {
  ASSERT_EQ(R.Bins.size(), static_cast<size_t>(In.NumEngines));
  std::vector<int> Seen;
  for (const std::vector<int> &Bin : R.Bins) {
    EXPECT_EQ(Bin.size(), static_cast<size_t>(In.ThreadsPerEngine));
    Seen.insert(Seen.end(), Bin.begin(), Bin.end());
  }
  std::sort(Seen.begin(), Seen.end());
  ASSERT_EQ(Seen.size(), In.Pool.size());
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I], static_cast<int>(I));
}

int binMinPRSum(const PlacementInput &In, const std::vector<int> &Bin) {
  int Sum = 0;
  for (int Idx : Bin)
    Sum += In.Traits[static_cast<size_t>(In.Pool[static_cast<size_t>(Idx)])]
               .MinPR;
  return Sum;
}

/// A random feasible pool: MinPR <= EngineRegs / ThreadsPerEngine, so any
/// bin of any assignment fits and "never over-commit" is testable.
PlacementInput randomFeasibleInput(uint64_t Seed, int NumEngines) {
  Rng R(Seed);
  PlacementInput In;
  In.NumEngines = NumEngines;
  In.ThreadsPerEngine = 4;
  In.EngineRegs = 128;
  const int Kinds = 3 + static_cast<int>(R.nextBelow(5));
  for (int K = 0; K < Kinds; ++K) {
    KernelTraits T;
    T.Name = "k" + std::to_string(K);
    T.MinPR = 4 + static_cast<int>(R.nextBelow(28)); // <= 32 = 128/4
    T.MaxPR = T.MinPR + static_cast<int>(R.nextBelow(16));
    T.MaxR = T.MaxPR + static_cast<int>(R.nextBelow(8));
    T.CtxPerMille = static_cast<int>(R.nextBelow(400));
    In.Traits.push_back(T);
  }
  for (int I = 0; I < NumEngines * 4; ++I)
    In.Pool.push_back(static_cast<int>(R.nextBelow(
        static_cast<uint64_t>(Kinds))));
  return In;
}

} // namespace

TEST(PlacementTest, PolicyNamesRoundTrip) {
  for (PlacementPolicy P : {PlacementPolicy::RoundRobin,
                            PlacementPolicy::Bounds,
                            PlacementPolicy::Search}) {
    PlacementPolicy Out;
    ASSERT_TRUE(parsePlacementPolicy(placementPolicyName(P), Out));
    EXPECT_EQ(Out, P);
  }
  PlacementPolicy Out;
  EXPECT_FALSE(parsePlacementPolicy("optimal", Out));
  EXPECT_FALSE(parsePlacementPolicy("", Out));
}

TEST(PlacementTest, RoundRobinDealsByIndex) {
  PlacementInput In = randomFeasibleInput(1, 4);
  PlacementResult R = placeThreads(In, PlacementPolicy::RoundRobin);
  expectValidAssignment(In, R);
  for (int E = 0; E < In.NumEngines; ++E)
    for (int S = 0; S < In.ThreadsPerEngine; ++S)
      EXPECT_EQ(R.Bins[static_cast<size_t>(E)][static_cast<size_t>(S)],
                E + S * In.NumEngines);
}

TEST(PlacementTest, BoundsNeverOverCommitsAFeasiblePool) {
  // Property over random feasible pools and engine counts: no bin's MinPR
  // sum may exceed the engine's register file.
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    const int NumEngines = 2 + static_cast<int>(Seed % 7);
    PlacementInput In = randomFeasibleInput(Seed, NumEngines);
    for (PlacementPolicy P :
         {PlacementPolicy::Bounds, PlacementPolicy::Search}) {
      PlacementResult R = placeThreads(In, P);
      expectValidAssignment(In, R);
      for (const std::vector<int> &Bin : R.Bins)
        EXPECT_LE(binMinPRSum(In, Bin), In.EngineRegs)
            << "seed " << Seed << " policy " << placementPolicyName(P);
    }
  }
}

TEST(PlacementTest, SearchNeverWorseThanItsBoundsSeed) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    PlacementInput In = randomFeasibleInput(Seed, 4);
    PlacementResult Bounds = placeThreads(In, PlacementPolicy::Bounds);
    PlacementResult Search = placeThreads(In, PlacementPolicy::Search);
    EXPECT_LE(Search.Cost, Bounds.Cost) << "seed " << Seed;
    EXPECT_EQ(Search.Cost, placementCost(In, Search.Bins));
  }
}

TEST(PlacementTest, OverflowDominatesTheCost) {
  // Two kernel kinds, one heavy: the segregated assignment overflows one
  // engine and must cost at least the overflow penalty; the interleaved
  // assignment fits and must be cheaper.
  PlacementInput In;
  In.NumEngines = 2;
  In.ThreadsPerEngine = 4;
  In.EngineRegs = 128;
  KernelTraits Heavy;
  Heavy.Name = "heavy";
  Heavy.MinPR = 40;
  Heavy.CtxPerMille = 100;
  KernelTraits Light;
  Light.Name = "light";
  Light.MinPR = 10;
  Light.CtxPerMille = 300;
  In.Traits = {Heavy, Light};
  In.Pool = {0, 0, 0, 0, 1, 1, 1, 1};

  std::vector<std::vector<int>> Segregated = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  std::vector<std::vector<int>> Interleaved = {{0, 4, 1, 5}, {2, 6, 3, 7}};
  EXPECT_GE(placementCost(In, Segregated), 1'000'000'000);
  EXPECT_LT(placementCost(In, Interleaved), 1'000'000'000);
  EXPECT_LT(placementCost(In, Interleaved), placementCost(In, Segregated));

  // And the bounds policy actually lands on a non-overflowing assignment.
  PlacementResult R = placeThreads(In, PlacementPolicy::Bounds);
  for (const std::vector<int> &Bin : R.Bins)
    EXPECT_LE(binMinPRSum(In, Bin), In.EngineRegs);
}

TEST(PlacementTest, RealKernelTraitsAreFeasiblePerEngine) {
  // The workload kernels' MinPR bounds must allow four-per-engine packing
  // into the 128-register file — the premise of the grid experiments.
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("mixed", 3, Pool));
  int MaxMinPR = 0;
  for (const std::string &Kernel :
       std::vector<std::string>(Pool.begin(), Pool.begin() + 12)) {
    KernelTraits T = computeKernelTraits(Kernel);
    EXPECT_GT(T.MinPR, 0) << Kernel;
    EXPECT_LE(T.MinPR, T.MaxPR) << Kernel;
    EXPECT_LE(T.MaxPR, T.MaxR) << Kernel;
    MaxMinPR = std::max(MaxMinPR, T.MinPR);
  }
  EXPECT_LE(4 * MaxMinPR, 128);
}

TEST(PlacementTest, BoundsBeatsRoundRobinOnSegregatingMixes) {
  // Golden from the Table-3 experiments: at N=4 round-robin segregates
  // S1's {md5, md5, fir2dim, fir2dim} template into homogeneous engines
  // (the period divides the engine count) and the slowest engine drags the
  // grid; bounds interleaves and wins on aggregate throughput, and search
  // never undoes that.
  GridOptions Opts;
  Opts.NumEngines = 4;
  Opts.Sim = defaultExperimentConfig();
  Opts.Sim.TargetIterations = 10;
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("s1", 4, Pool));

  Opts.Policy = PlacementPolicy::RoundRobin;
  GridReport RR = runKernelPoolGrid("s1", Pool, Opts);
  Opts.Policy = PlacementPolicy::Bounds;
  GridReport Bounds = runKernelPoolGrid("s1", Pool, Opts);
  Opts.Policy = PlacementPolicy::Search;
  GridReport Search = runKernelPoolGrid("s1", Pool, Opts);
  ASSERT_TRUE(RR.Success) << RR.FailReason;
  ASSERT_TRUE(Bounds.Success) << Bounds.FailReason;
  ASSERT_TRUE(Search.Success) << Search.FailReason;

  EXPECT_GT(Bounds.IterationsPerKilocycle, RR.IterationsPerKilocycle);
  EXPECT_GE(Search.IterationsPerKilocycle, Bounds.IterationsPerKilocycle);
  EXPECT_LE(Bounds.Placement.Cost, RR.Placement.Cost);
}
