//===- GridTest.cpp - Multi-engine grid simulation ------------------------===//
//
// The grid's contracts: a single-engine grid is the plain simulator (cycle
// identical, zero interconnect traffic); multi-engine runs are
// deterministic; a credit window tighter than the interconnect round trip
// surfaces as InterconnectStall cycles that keep the seven-bucket identity
// intact; and dispatches racing a thread's halt bounce back as credits
// instead of leaking.
//
//===----------------------------------------------------------------------===//

#include "grid/GridHarness.h"

#include "analysis/LiveRangeRenaming.h"
#include "harden/SpillFallback.h"
#include "support/Diagnostics.h"
#include "workloads/Harness.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace npral;

namespace {

GridOptions fastOptions() {
  GridOptions Opts;
  Opts.Sim = defaultExperimentConfig();
  Opts.Sim.TargetIterations = 10;
  return Opts;
}

void expectBucketsAccount(const GridReport &Report) {
  for (const GridEngineReport &ER : Report.Engines)
    for (const ThreadStats &TS : ER.Result.Threads)
      EXPECT_EQ(TS.accountedCycles(), ER.Result.TotalCycles);
}

} // namespace

TEST(GridTest, SingleEngineIsCycleIdenticalToPlainSimulator) {
  // NumEngines=1 with roundrobin keeps the pool order, so the grid's one
  // bin is exactly the scenario the plain harness would run; the grid path
  // must not perturb a single cycle.
  GridOptions Opts = fastOptions();
  Opts.NumEngines = 1;
  Opts.Policy = PlacementPolicy::RoundRobin;
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("s1", 1, Pool));
  GridReport Report = runKernelPoolGrid("s1", Pool, Opts);
  ASSERT_TRUE(Report.Success) << Report.FailReason;
  EXPECT_EQ(Report.MessagesSent, 0);
  EXPECT_EQ(Report.TotalInterconnectStall, 0);

  // The same bin through the plain (non-grid) pipeline.
  std::vector<Workload> Workloads;
  for (size_t Slot = 0; Slot < Pool.size(); ++Slot) {
    auto W = buildWorkload(Pool[Slot], static_cast<int>(Slot));
    ASSERT_TRUE(W.ok());
    Workloads.push_back(W.take());
  }
  MultiThreadProgram MTP = toMultiThreadProgram(Workloads, "s1_plain");
  for (Program &T : MTP.Threads)
    T = renameLiveRanges(T);
  SpillFallbackResult SF = allocateWithSpillFallback(
      MTP, Opts.Nreg, {}, {}, /*Log=*/nullptr, InterAllocLimits());
  ASSERT_TRUE(SF.Inter.Success) << SF.Inter.FailReason;
  ScenarioRun Plain =
      simulateWithWorkloads(Workloads, SF.Inter.Physical, Opts.Sim);
  ASSERT_TRUE(Plain.Success) << Plain.FailReason;

  EXPECT_EQ(Report.MaxEngineCycles, Plain.TotalCycles);
  ASSERT_EQ(Report.Engines.size(), 1u);
  const SimResult &R = Report.Engines[0].Result;
  ASSERT_EQ(R.Threads.size(), Plain.Threads.size());
  for (size_t T = 0; T < R.Threads.size(); ++T) {
    EXPECT_EQ(R.Threads[T].Iterations, Plain.Threads[T].Iterations);
    EXPECT_EQ(R.Threads[T].InstrsExecuted, Plain.Threads[T].InstrsExecuted);
    EXPECT_EQ(R.Threads[T].CtxEvents, Plain.Threads[T].CtxEvents);
    EXPECT_EQ(R.Threads[T].InterconnectStallCycles, 0);
  }
  expectBucketsAccount(Report);
}

TEST(GridTest, MultiEngineRunsAreDeterministic) {
  GridOptions Opts = fastOptions();
  Opts.NumEngines = 4;
  Opts.Policy = PlacementPolicy::Search;
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("mixed", 4, Pool));
  GridReport A = runKernelPoolGrid("mixed", Pool, Opts);
  GridReport B = runKernelPoolGrid("mixed", Pool, Opts);
  ASSERT_TRUE(A.Success) << A.FailReason;
  ASSERT_TRUE(B.Success) << B.FailReason;
  EXPECT_EQ(A.MaxEngineCycles, B.MaxEngineCycles);
  EXPECT_EQ(A.TotalIterations, B.TotalIterations);
  EXPECT_EQ(A.TotalInterconnectStall, B.TotalInterconnectStall);
  EXPECT_EQ(A.MessagesSent, B.MessagesSent);
  EXPECT_EQ(A.MessagesDelivered, B.MessagesDelivered);
  EXPECT_EQ(A.Placement.Bins, B.Placement.Bins);
  ASSERT_EQ(A.Engines.size(), B.Engines.size());
  for (size_t E = 0; E < A.Engines.size(); ++E) {
    EXPECT_EQ(A.Engines[E].Kernels, B.Engines[E].Kernels);
    EXPECT_EQ(A.Engines[E].Result.TotalCycles, B.Engines[E].Result.TotalCycles);
    EXPECT_EQ(A.Engines[E].Iterations, B.Engines[E].Iterations);
    EXPECT_EQ(A.Engines[E].InterconnectStallCycles,
              B.Engines[E].InterconnectStallCycles);
  }
  // Multi-engine work protocol actually ran: one completion per iteration
  // reached the ingress and every message eventually arrived.
  EXPECT_GT(A.MessagesSent, 0);
  EXPECT_EQ(A.MessagesDelivered, A.MessagesSent);
  expectBucketsAccount(A);
}

TEST(GridTest, TightCreditsSurfaceAsInterconnectStall) {
  // One credit per thread and a hop latency far beyond the per-iteration
  // cycle gap: every `loopend` has to wait for its completion's round trip,
  // so the InterconnectStall bucket must light up — and it must grow with
  // hop distance from the ingress (engine 0 is one hop away, engine 3
  // four).
  GridOptions Opts = fastOptions();
  Opts.NumEngines = 4;
  Opts.Policy = PlacementPolicy::Bounds;
  Opts.InitialCredits = 1;
  Opts.HopLatency = 3000;
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("s1", 4, Pool));
  GridReport Report = runKernelPoolGrid("s1", Pool, Opts);
  ASSERT_TRUE(Report.Success) << Report.FailReason;
  EXPECT_GT(Report.TotalInterconnectStall, 0);
  for (const GridEngineReport &ER : Report.Engines)
    EXPECT_GT(ER.InterconnectStallCycles, 0);
  EXPECT_GT(Report.Engines.back().InterconnectStallCycles,
            Report.Engines.front().InterconnectStallCycles);
  // Stalled or not, the seven buckets still tile every engine's timeline.
  expectBucketsAccount(Report);
  // The stall is pure interconnect wait: with generous credits the same
  // grid finishes in fewer wall-clock cycles.
  GridOptions Loose = Opts;
  Loose.InitialCredits = 64;
  GridReport Fast = runKernelPoolGrid("s1", Pool, Loose);
  ASSERT_TRUE(Fast.Success) << Fast.FailReason;
  EXPECT_LT(Fast.MaxEngineCycles, Report.MaxEngineCycles);
  EXPECT_GT(Fast.IterationsPerKilocycle, Report.IterationsPerKilocycle);
}

TEST(GridTest, HaltAtTargetBouncesLateDispatchesAsCredits) {
  // Under HaltAtTarget threads halt the instant they hit the target, so
  // dispatches answering their final completions arrive at halted threads
  // and must bounce back to the ingress as Credit messages — not wake
  // anything and not get lost.
  GridOptions Opts = fastOptions();
  Opts.NumEngines = 2;
  Opts.Sim = equivalenceConfig();
  Opts.Sim.TargetIterations = 5;
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("s2", 2, Pool));
  GridReport Report = runKernelPoolGrid("s2", Pool, Opts);
  ASSERT_TRUE(Report.Success) << Report.FailReason;
  EXPECT_GT(Report.CreditsReturned, 0);
  for (const GridEngineReport &ER : Report.Engines)
    for (const ThreadStats &TS : ER.Result.Threads)
      EXPECT_EQ(TS.Iterations, 5);
  expectBucketsAccount(Report);
}

TEST(GridTest, BuildGridPoolShapesAndRejects) {
  std::vector<std::string> Pool;
  ASSERT_TRUE(buildGridPool("s3", 8, Pool));
  EXPECT_EQ(Pool.size(), 32u);
  // Replication is cyclic over the 4-kernel template.
  for (size_t I = 4; I < Pool.size(); ++I)
    EXPECT_EQ(Pool[I], Pool[I - 4]);
  ASSERT_TRUE(buildGridPool("mixed", 2, Pool));
  EXPECT_EQ(Pool.size(), 8u);
  EXPECT_FALSE(buildGridPool("s9", 4, Pool));
  EXPECT_FALSE(buildGridPool("nonesuch", 4, Pool));
}
