#!/usr/bin/env python3
"""Perf-regression gate for the committed bench baselines.

Two report schemas are understood, detected from the current report's keys:

* Google Benchmark native JSON (``batch_throughput --json`` writes
  ``BENCH_batch_throughput.json``): throughput is derived from per-batch
  ``real_time`` (64 programs per batch iteration), NOT from the report's
  ``programs_per_sec`` counter — that counter averages the pipeline's
  wall-clock throughput sample over iterations and so drifts with iteration
  count; ``real_time`` is the number the benchmark actually measures.

* BenchReport scalar JSON (``grid_throughput --json`` writes
  ``BENCH_grid_throughput.json`` with a ``scalars`` map): every numeric
  scalar is compared directly as a higher-is-better value. The grid
  simulator is deterministic, so these gates can run tight tolerances.
  Scalars named in ``--lower-is-better`` flip direction: they regress when
  they *grow* past the tolerance (wall clocks, overhead bounds,
  instrumentation-site counts — ``trace_overhead`` is gated this way).

Usage:
  check_bench_regression.py --baseline bench/baseline_batch_throughput.json \
      --current BENCH_batch_throughput.json [--tolerance-pct 15]
  check_bench_regression.py --current ... --baseline ... --update
      # rewrite the baseline from the current report (deliberate refresh)
"""

import argparse
import json
import sys

CORPUS_PROGRAMS = 64

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load_current(path):
    """Detect the schema of a fresh report and extract {name: value} where
    value is higher-is-better. Returns (kind, values): kind "gb" values are
    programs/sec derived from real_time; kind "scalars" values are the
    BenchReport scalars (non-numeric scalars are skipped)."""
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" in doc:
        entries = doc.get("benchmarks", [])
        medians = [e for e in entries if e.get("aggregate_name") == "median"]
        if medians:
            chosen = medians
        else:
            chosen = [e for e in entries
                      if e.get("run_type", "iteration") == "iteration"]
        seconds = {}
        for e in chosen:
            name = e.get("run_name") or e["name"]
            # A repeated benchmark contributes several iteration entries
            # under the same run_name; keep the fastest (least-noise)
            # sample.
            sec = e["real_time"] * _TIME_UNIT_SECONDS[e.get("time_unit",
                                                            "ns")]
            if name not in seconds or sec < seconds[name]:
                seconds[name] = sec
        return "gb", {name: CORPUS_PROGRAMS / sec
                      for name, sec in seconds.items()}
    if "scalars" in doc:
        values = {}
        for name, raw in doc["scalars"].items():
            try:
                values[name] = float(raw)
            except (TypeError, ValueError):
                continue
        return "scalars", values
    return "unknown", {}


def write_baseline(path, kind, current):
    if kind == "gb":
        doc = {
            "corpus_programs": CORPUS_PROGRAMS,
            "note": "programs_per_sec = corpus_programs / per-batch "
                    "real_time; refresh with "
                    "scripts/check_bench_regression.py --update",
            "benchmarks": {
                name: {
                    "real_time_ms": round(CORPUS_PROGRAMS / pps * 1e3, 3),
                    "programs_per_sec": round(pps, 1),
                }
                for name, pps in sorted(current.items())
            },
        }
    else:
        doc = {
            "note": "higher-is-better BenchReport scalars; refresh with "
                    "scripts/check_bench_regression.py --update",
            "scalars": {name: round(v, 6)
                        for name, v in sorted(current.items())},
        }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote baseline {path} ({len(current)} entries)")


def load_baseline(path):
    with open(path) as f:
        baseline = json.load(f)
    if "benchmarks" in baseline:
        return "gb", {name: b["programs_per_sec"]
                      for name, b in baseline["benchmarks"].items()}
    if "scalars" in baseline:
        return "scalars", dict(baseline["scalars"])
    return "unknown", {}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (reduced schema)")
    ap.add_argument("--current", required=True,
                    help="fresh bench JSON report (GB native or BenchReport)")
    ap.add_argument("--tolerance-pct", type=float, default=15.0,
                    help="max allowed regression in percent (default 15)")
    ap.add_argument("--lower-is-better", default="",
                    help="comma-separated scalar names where a smaller "
                         "value is better; these regress when they grow "
                         "past the tolerance")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current report")
    args = ap.parse_args()
    lower_is_better = {name.strip()
                       for name in args.lower_is_better.split(",")
                       if name.strip()}

    kind, current = load_current(args.current)
    if not current:
        print(f"error: no comparable entries in {args.current}",
              file=sys.stderr)
        return 2

    if args.update:
        write_baseline(args.baseline, kind, current)
        return 0

    base_kind, base = load_baseline(args.baseline)
    if not base:
        print(f"error: no entries in baseline {args.baseline}",
              file=sys.stderr)
        return 2
    if base_kind != kind:
        print(f"error: baseline schema '{base_kind}' does not match current "
              f"report schema '{kind}'", file=sys.stderr)
        return 2

    unit = "p/s" if kind == "gb" else "value"
    failures = []
    missing = []
    compared = 0
    print(f"{'benchmark':40} {'base ' + unit:>12} {'now ' + unit:>12} "
          f"{'delta':>8}")
    for name, base_val in sorted(base.items()):
        if name not in current:
            missing.append(name)
            continue
        compared += 1
        cur_val = current[name]
        delta_pct = (cur_val - base_val) / base_val * 100.0
        marker = ""
        # For a higher-is-better value a drop past the tolerance regresses;
        # a lower-is-better value regresses when it grows past it.
        signed = -delta_pct if name in lower_is_better else delta_pct
        if signed < -args.tolerance_pct:
            failures.append(name)
            marker = "  << REGRESSION"
        print(f"{name:40} {base_val:12.3f} {cur_val:12.3f} "
              f"{delta_pct:+7.1f}%{marker}")
    for name in sorted(set(current) - set(base)):
        print(f"{name:40} {'-':>12} {current[name]:12.3f}   "
              f"(new, no baseline)")

    if missing:
        print(f"error: baseline entries missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 2
    if compared == 0:
        print("error: no entries compared", file=sys.stderr)
        return 2
    if failures:
        print(f"FAIL: regressed >{args.tolerance_pct:g}% on: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"OK: {compared} entries within {args.tolerance_pct:g}% "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
