#!/usr/bin/env python3
"""Perf-regression gate for bench/batch_throughput.

Compares a fresh Google-Benchmark JSON report (``batch_throughput --json``
writes ``BENCH_batch_throughput.json``) against the committed baseline in
``bench/baseline_batch_throughput.json`` and fails when corpus throughput
regresses by more than the tolerance.

Throughput is derived from per-batch ``real_time`` (64 programs per batch
iteration), NOT from the report's ``programs_per_sec`` counter: that counter
averages the pipeline's wall-clock throughput sample over iterations and so
drifts with iteration count; ``real_time`` is the number the benchmark
actually measures.

Usage:
  check_bench_regression.py --baseline bench/baseline_batch_throughput.json \
      --current BENCH_batch_throughput.json [--tolerance-pct 15]
  check_bench_regression.py --current ... --baseline ... --update
      # rewrite the baseline from the current report (deliberate refresh)
"""

import argparse
import json
import sys

CORPUS_PROGRAMS = 64

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load_current(path):
    """Extract {benchmark name: real_time seconds} from a Google Benchmark
    native JSON report. Prefers median aggregates when --benchmark_repetitions
    was used; otherwise takes plain iteration entries."""
    with open(path) as f:
        doc = json.load(f)
    entries = doc.get("benchmarks", [])
    medians = [e for e in entries if e.get("aggregate_name") == "median"]
    if medians:
        chosen = medians
    else:
        chosen = [e for e in entries
                  if e.get("run_type", "iteration") == "iteration"]
    result = {}
    for e in chosen:
        name = e.get("run_name") or e["name"]
        # A repeated benchmark contributes several iteration entries under
        # the same run_name; keep the fastest (least-noise) sample.
        seconds = e["real_time"] * _TIME_UNIT_SECONDS[e.get("time_unit", "ns")]
        if name not in result or seconds < result[name]:
            result[name] = seconds
    return result


def programs_per_sec(seconds):
    return CORPUS_PROGRAMS / seconds


def write_baseline(path, current):
    doc = {
        "corpus_programs": CORPUS_PROGRAMS,
        "note": "programs_per_sec = corpus_programs / per-batch real_time; "
                "refresh with scripts/check_bench_regression.py --update",
        "benchmarks": {
            name: {
                "real_time_ms": round(sec * 1e3, 3),
                "programs_per_sec": round(programs_per_sec(sec), 1),
            }
            for name, sec in sorted(current.items())
        },
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote baseline {path} ({len(current)} benchmarks)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (reduced schema)")
    ap.add_argument("--current", required=True,
                    help="fresh Google Benchmark JSON report")
    ap.add_argument("--tolerance-pct", type=float, default=15.0,
                    help="max allowed programs/sec regression (default 15)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current report")
    args = ap.parse_args()

    current = load_current(args.current)
    if not current:
        print(f"error: no benchmark entries in {args.current}",
              file=sys.stderr)
        return 2

    if args.update:
        write_baseline(args.baseline, current)
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    base_benchmarks = baseline.get("benchmarks", {})
    if not base_benchmarks:
        print(f"error: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    failures = []
    missing = []
    compared = 0
    print(f"{'benchmark':32} {'base p/s':>10} {'now p/s':>10} {'delta':>8}")
    for name, base in sorted(base_benchmarks.items()):
        if name not in current:
            missing.append(name)
            continue
        compared += 1
        base_pps = base["programs_per_sec"]
        cur_pps = programs_per_sec(current[name])
        delta_pct = (cur_pps - base_pps) / base_pps * 100.0
        marker = ""
        if delta_pct < -args.tolerance_pct:
            failures.append(name)
            marker = "  << REGRESSION"
        print(f"{name:32} {base_pps:10.1f} {cur_pps:10.1f} "
              f"{delta_pct:+7.1f}%{marker}")
    for name in sorted(set(current) - set(base_benchmarks)):
        print(f"{name:32} {'-':>10} "
              f"{programs_per_sec(current[name]):10.1f}   (new, no baseline)")

    if missing:
        print(f"error: baseline benchmarks missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 2
    if compared == 0:
        print("error: no benchmarks compared", file=sys.stderr)
        return 2
    if failures:
        print(f"FAIL: throughput regressed >{args.tolerance_pct:g}% on: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"OK: {compared} benchmarks within {args.tolerance_pct:g}% "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
