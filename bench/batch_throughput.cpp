//===- batch_throughput.cpp - Batch driver scaling ------------------------===//
//
// google-benchmark timings of the batch allocation pipeline over a fixed
// 64-program generated corpus, swept across worker counts from 1 up to the
// hardware concurrency (so the scaling curve is visible wherever the bench
// runs) and across cold/warm/duplicate cache configurations. Each run
// reports programs/s as a counter, so 2x speedup at --jobs 4 reads directly
// off the `programs_per_sec` column.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "driver/AnalysisCache.h"
#include "driver/BatchPipeline.h"
#include "support/Diagnostics.h"
#include "support/ThreadPool.h"
#include "workloads/ProgramGenerator.h"

#include "benchmark/benchmark.h"

#include <string>
#include <vector>

using namespace npral;

namespace {

constexpr int CorpusSize = 64;

/// The fixed benchmark corpus: 64 two-thread programs. With \p Duplicated,
/// every program appears twice in a 64-entry corpus (32 distinct), the
/// shared-kernel case the cache is built for.
std::vector<BatchJob> makeCorpus(bool Duplicated) {
  std::vector<BatchJob> Jobs;
  const int Distinct = Duplicated ? CorpusSize / 2 : CorpusSize;
  for (int I = 0; I < CorpusSize; ++I) {
    const uint64_t Seed = static_cast<uint64_t>(I % Distinct) + 1;
    BatchJob Job;
    Job.Name = "p" + std::to_string(I);
    for (int T = 0; T < 2; ++T) {
      GeneratorConfig Config;
      Config.TargetInstructions = 90;
      Config.CtxRatePerMille = 160;
      Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
      Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
      Program P = generateRandomProgram(Seed * 10 + static_cast<uint64_t>(T),
                                        Config);
      P.Name = "t" + std::to_string(T);
      Job.Program.Threads.push_back(std::move(P));
    }
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

void reportStats(benchmark::State &State, const PipelineStats &Stats) {
  State.counters["programs_per_sec"] = benchmark::Counter(
      Stats.throughput(), benchmark::Counter::kAvgIterations);
  State.counters["cache_hit_rate"] = Stats.cacheHitRate();
}

/// Cold pipeline at a given worker count: every iteration allocates the
/// full corpus from scratch.
void BM_BatchJobs(benchmark::State &State, int Jobs, bool UseCache) {
  std::vector<BatchJob> Corpus = makeCorpus(/*Duplicated=*/false);
  BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.UseCache = UseCache;
  PipelineStats Last;
  for (auto _ : State) {
    BatchResult R = runBatch(Corpus, Opts);
    if (!R.allSucceeded())
      reportFatalError("batch corpus failed to allocate");
    Last = R.Stats;
    benchmark::DoNotOptimize(R.Results.data());
  }
  reportStats(State, Last);
}

/// Duplicate-heavy corpus with an intra-run cache: half the analysis work
/// is redundant and should be absorbed by hits.
void BM_BatchDuplicates(benchmark::State &State, int Jobs) {
  std::vector<BatchJob> Corpus = makeCorpus(/*Duplicated=*/true);
  BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.UseCache = true;
  PipelineStats Last;
  for (auto _ : State) {
    BatchResult R = runBatch(Corpus, Opts);
    if (!R.allSucceeded())
      reportFatalError("batch corpus failed to allocate");
    Last = R.Stats;
    benchmark::DoNotOptimize(R.Results.data());
  }
  reportStats(State, Last);
}

/// Warm shared cache: the first batch fills it, timed iterations hit on
/// every thread (the recompile/CI loop).
void BM_BatchWarmCache(benchmark::State &State, int Jobs) {
  std::vector<BatchJob> Corpus = makeCorpus(/*Duplicated=*/false);
  BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.UseCache = true;
  AnalysisCache Cache;
  runBatch(Corpus, Opts, &Cache); // warm-up, untimed
  PipelineStats Last;
  for (auto _ : State) {
    BatchResult R = runBatch(Corpus, Opts, &Cache);
    if (!R.allSucceeded())
      reportFatalError("batch corpus failed to allocate");
    Last = R.Stats;
    benchmark::DoNotOptimize(R.Results.data());
  }
  reportStats(State, Last);
}

} // namespace

int main(int argc, char **argv) {
  std::vector<int> JobCounts = {1, 2, 4};
  const int HW = ThreadPool::hardwareConcurrency();
  if (HW > 4)
    JobCounts.push_back(HW);

  for (int Jobs : JobCounts) {
    benchmark::RegisterBenchmark(
        ("batch_cold/jobs" + std::to_string(Jobs)).c_str(), BM_BatchJobs,
        Jobs, /*UseCache=*/false);
    benchmark::RegisterBenchmark(
        ("batch_cached/jobs" + std::to_string(Jobs)).c_str(), BM_BatchJobs,
        Jobs, /*UseCache=*/true);
    benchmark::RegisterBenchmark(
        ("batch_duplicates/jobs" + std::to_string(Jobs)).c_str(),
        BM_BatchDuplicates, Jobs);
    benchmark::RegisterBenchmark(
        ("batch_warm/jobs" + std::to_string(Jobs)).c_str(), BM_BatchWarmCache,
        Jobs);
  }

  std::vector<std::string> ArgStorage;
  std::vector<char *> ArgPtrs;
  argv = rewriteJsonFlagForGoogleBenchmark("batch_throughput", argc, argv, ArgStorage,
                                           ArgPtrs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
