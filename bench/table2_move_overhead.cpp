//===- table2_move_overhead.cpp - Reproduce paper Table 2 -----------------===//
//
// Table 2 measures the extreme case of live range splitting: force each
// benchmark down to its minimal register numbers (PR = RegPCSBmax,
// R = RegPmax) and count the move instructions the intra-thread allocator
// must insert. The paper reports the overhead staying mostly within 10 % of
// the instruction count — far cheaper than spilling.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/IntraAllocator.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("table2_move_overhead", argc, argv);
  TableFormatter Table({"Benchmark", "#Instr", "MinPR", "MinR", "Moves",
                        "Moves/Instr%", "Strategy"});

  for (const std::string &Name : getWorkloadNames()) {
    ErrorOr<Workload> WOr = buildWorkload(Name, 0);
    if (!WOr.ok()) {
      std::cerr << "error: " << WOr.status().str() << "\n";
      return 1;
    }

    IntraThreadAllocator Intra(WOr->Code);
    const int MinPR = Intra.getMinPR();
    const int MinR = Intra.getMinR();
    const IntraResult &Result = Intra.allocate(MinPR, MinR - MinPR);
    if (!Result.Feasible) {
      std::cerr << "error: minimal allocation infeasible for '" << Name
                << "': " << Result.FailReason << "\n";
      return 1;
    }

    int NumInstr = WOr->Code.countInstructions();
    Table.row()
        .cell(Name)
        .cell(NumInstr)
        .cell(MinPR)
        .cell(MinR)
        .cell(Result.MoveCost)
        .cell(100.0 * Result.MoveCost / NumInstr, 1)
        .cell(Result.Strategy);
  }

  std::cout << "Table 2: move instructions inserted at the minimal register "
            << "numbers\n"
            << "(paper: overhead mostly within 10% of total instructions)\n\n";
  Table.print(std::cout);
  Report.addTable("move_overhead", Table);
  return Report.finish();
}
