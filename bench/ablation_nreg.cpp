//===- ablation_nreg.cpp - Register file size sweep (A2) ------------------===//
//
// Shrink the register file under scenario S1 (2x md5 + 2x fir2dim) and
// watch the inter-thread allocator work: with plenty of registers the
// allocation is move-free; as Nreg falls toward the lower bound the Fig. 8
// reduction loop (plus the SGR-sweep completion) trades private registers
// for shared ones and starts inserting moves — the paper's "graceful"
// degradation, in contrast to the spilling cliff of fixed partitions.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "support/TableFormatter.h"
#include "workloads/Harness.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("ablation_nreg", argc, argv);
  const Scenario &S = getAraScenarios()[0];
  std::vector<Workload> Workloads = buildScenarioWorkloads(S);
  MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);

  TableFormatter Table({"Nreg", "Feasible", "RegsUsed", "SGR", "TotalMoves",
                        "PR(md5)", "PR(fir2dim)", "Crit cyc/iter"});
  SimConfig Config = defaultExperimentConfig();

  // The feasibility frontier is narrow: the md5 threads' RegPCSBmax pins
  // Sum(MinPR) at 108 and md5's internal pressure needs SGR >= 8, so
  // anything below 116 is provably infeasible (without spilling, which
  // this allocator never does).
  for (int Nreg : {128, 124, 122, 120, 119, 118, 117, 116, 115, 114}) {
    InterThreadResult R = allocateInterThread(Virtual, Nreg);
    Table.row().cell(Nreg).cell(R.Success ? "yes" : "no");
    if (!R.Success) {
      Table.cell("-").cell("-").cell("-").cell("-").cell("-").cell("-");
      continue;
    }
    if (Status St = verifyAllocationSafety(R.Physical); !St.ok()) {
      std::cerr << "unsafe allocation at Nreg=" << Nreg << ": " << St.str()
                << "\n";
      return 1;
    }
    ScenarioRun Run = simulateWithWorkloads(Workloads, R.Physical, Config);
    if (!Run.Success) {
      std::cerr << "simulation failed at Nreg=" << Nreg << ": "
                << Run.FailReason << "\n";
      return 1;
    }
    Table.cell(R.RegistersUsed)
        .cell(R.SGR)
        .cell(R.TotalMoveCost)
        .cell(R.Threads[0].PR)
        .cell(R.Threads[2].PR)
        .cell(Run.Threads[0].CyclesPerIter, 1);
  }

  std::cout << "Ablation A2: register-file size sweep (scenario " << S.Name
            << ")\n\n";
  Table.print(std::cout);
  std::cout << "\nAs Nreg shrinks the allocator first spends its bound "
               "slack, then inserts\nmoves; below the lower bound it "
               "reports infeasible rather than spilling.\n";
  Report.addTable("nreg_sweep", Table);
  return Report.finish();
}
