//===- grid_throughput.cpp - 2-16 engine Table 3 sweep --------------------===//
//
// The grid scale-out experiment (docs/grid.md): run every Table 3 scenario
// across 2, 4, 8 and 16 engines under each placement policy and report
// aggregate packet throughput (iterations per kilocycle, summed over all
// threads, clocked by the slowest engine). The simulator is deterministic,
// so every number here is exactly reproducible; --json writes
// BENCH_grid_throughput.json and scripts/check_bench_regression.py gates
// the committed baseline (bench/baseline_grid_throughput.json) against it.
//
// The interesting contrast is roundrobin vs the bounds-driven policies at
// engine counts that divide the scenario template period: dealing threads
// i mod N then segregates kernels (all-md5 engines serialise on the ALU
// while all-fir2dim engines idle on memory), which the MinPR-LPT packing
// of `bounds` and the ctx-balance local search of `search` avoid.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "grid/GridHarness.h"
#include "support/TableFormatter.h"

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("grid_throughput", argc, argv);

  const std::vector<std::string> Scenarios = {"s1", "s2", "s3"};
  const std::vector<int> EngineCounts = {2, 4, 8, 16};
  const std::vector<PlacementPolicy> Policies = {PlacementPolicy::RoundRobin,
                                                 PlacementPolicy::Bounds,
                                                 PlacementPolicy::Search};

  TableFormatter Table({"Scenario", "Engines", "roundrobin", "bounds",
                        "search", "best/rr"});
  for (const std::string &Scenario : Scenarios) {
    for (int Engines : EngineCounts) {
      Table.row().cell(Scenario).cell(Engines);
      double RoundRobin = 0.0, Best = 0.0;
      for (PlacementPolicy Policy : Policies) {
        GridOptions Opts;
        Opts.NumEngines = Engines;
        Opts.Policy = Policy;
        std::vector<std::string> Pool;
        buildGridPool(Scenario, Engines, Pool);
        GridReport R = runKernelPoolGrid(Scenario, Pool, Opts);
        if (!R.Success) {
          std::cerr << "grid run failed (" << Scenario << ", " << Engines
                    << " engines, " << placementPolicyName(Policy)
                    << "): " << R.FailReason << "\n";
          return Report.finish(1);
        }
        Table.cell(R.IterationsPerKilocycle, 3);
        std::ostringstream Key;
        Key << "ipk_" << Scenario << "_e" << Engines << "_"
            << placementPolicyName(Policy);
        std::ostringstream Val;
        Val.precision(6);
        Val << R.IterationsPerKilocycle;
        Report.addScalar(Key.str(), Val.str());
        if (Policy == PlacementPolicy::RoundRobin)
          RoundRobin = R.IterationsPerKilocycle;
        if (R.IterationsPerKilocycle > Best)
          Best = R.IterationsPerKilocycle;
      }
      Table.cell(RoundRobin > 0 ? Best / RoundRobin : 0.0, 3);
    }
  }
  std::cout << "Aggregate throughput (iterations/kilocycle), Table 3 "
               "scenarios across the engine grid\n";
  Table.print(std::cout);
  Report.addTable("grid_throughput", Table);
  return Report.finish(0);
}
