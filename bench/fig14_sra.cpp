//===- fig14_sra.cpp - Reproduce paper Figure 14 --------------------------===//
//
// Figure 14 evaluates the inter-thread allocator for SRA (all four threads
// of a micro-engine run the same benchmark): for each benchmark it shows
//
//   * the register count a single-thread Chaitin-style allocator needs
//     (first bar),
//   * the private (PR) and shared (SR) register counts our inter-thread
//     allocator converges to at zero move cost (second/third bars).
//
// The paper reports an average total register saving of 24 % versus
// 4 * (single-thread count) with no sharing.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/InterAllocator.h"
#include "baseline/ChaitinAllocator.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("fig14_sra", argc, argv);
  const int Nthd = 4;
  const int Nreg = 128;

  TableFormatter Table({"Benchmark", "Chaitin(1thd)", "PR", "SR",
                        "4*PR+SR", "4*Chaitin", "Saving%"});
  double TotalSaving = 0;
  int Counted = 0;

  for (const std::string &Name : getWorkloadNames()) {
    ErrorOr<Workload> WOr = buildWorkload(Name, 0);
    if (!WOr.ok()) {
      std::cerr << "error: " << WOr.status().str() << "\n";
      return 1;
    }

    // Single-thread baseline register count: Chaitin with an unconstrained
    // budget reports how many colors it actually needs without spilling.
    ChaitinConfig CC;
    CC.NumColors = 128;
    CC.SpillBase = WOr->SpillBase;
    ChaitinResult CR = runChaitinAllocator(WOr->Code, CC);
    if (!CR.Success) {
      std::cerr << "error: Chaitin failed on '" << Name
                << "': " << CR.FailReason << "\n";
      return 1;
    }

    // SRA: minimal total registers at zero move cost (paper methodology:
    // "the algorithm continues until the cost returned is non-zero").
    SRAResult SRA = solveSRA(WOr->Code, Nthd, Nreg, /*RequireZeroCost=*/true);
    if (!SRA.Success) {
      std::cerr << "error: SRA failed on '" << Name << "': " << SRA.FailReason
                << "\n";
      return 1;
    }

    int Unshared = Nthd * CR.ColorsUsed;
    double Saving =
        1.0 - static_cast<double>(SRA.TotalRegisters) / Unshared;
    TotalSaving += Saving;
    ++Counted;

    Table.row()
        .cell(Name)
        .cell(CR.ColorsUsed)
        .cell(SRA.PR)
        .cell(SRA.SR)
        .cell(SRA.TotalRegisters)
        .cell(Unshared)
        .cell(100.0 * Saving, 1);
  }

  std::cout << "Figure 14: SRA register allocation (4 identical threads, "
            << "Nreg=128)\n"
            << "(paper reports ~24% average total register saving)\n\n";
  Table.print(std::cout);
  std::cout << "\nAverage saving: " << (100.0 * TotalSaving / Counted)
            << "%\n";
  Report.addScalar("average_saving_pct", 100.0 * TotalSaving / Counted);
  Report.addTable("sra_register_use", Table);
  return Report.finish();
}
