//===- BenchSupport.h - Shared --json reporting for bench binaries --------===//
//
// Every bench binary accepts --json: alongside the normal text report it
// then writes BENCH_<name>.json into the working directory, so experiment
// sweeps can be archived and diffed mechanically. The document shape is
//
//   {
//     "bench":   "<name>",
//     "scalars": { "<key>": "<value>", ... },
//     "tables":  [ { "title":  "<title>",
//                    "header": ["<col>", ...],
//                    "rows":   [["<cell>", ...], ...] }, ... ]
//   }
//
// Cells are the exact strings the text table prints (numbers included), so
// the JSON and text outputs can never disagree. Schema is documented in
// EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#ifndef NPRAL_BENCH_BENCHSUPPORT_H
#define NPRAL_BENCH_BENCHSUPPORT_H

#include "support/TableFormatter.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace npral {

class BenchReport {
public:
  /// Scans argv for --json; unknown flags are left for the bench to reject
  /// (none of the plain benches take other options today).
  BenchReport(std::string Name, int Argc, char **Argv)
      : Name(std::move(Name)) {
    for (int I = 1; I < Argc; ++I)
      if (std::string(Argv[I]) == "--json")
        Enabled = true;
  }

  bool enabled() const { return Enabled; }

  /// Record a table snapshot (copy; call after the last row is added).
  void addTable(const std::string &Title, const TableFormatter &Table) {
    if (!Enabled)
      return;
    std::ostringstream OS;
    Table.printJSON(OS, "    ");
    Tables.emplace_back(Title, OS.str());
  }

  /// Record a one-off key/value (parameters, totals, verdicts).
  void addScalar(const std::string &Key, const std::string &Value) {
    if (Enabled)
      Scalars.emplace_back(Key, Value);
  }
  void addScalar(const std::string &Key, int64_t Value) {
    addScalar(Key, std::to_string(Value));
  }
  void addScalar(const std::string &Key, double Value) {
    std::ostringstream OS;
    OS << Value;
    addScalar(Key, OS.str());
  }

  /// Write BENCH_<name>.json when --json was given. Returns \p ExitCode
  /// unchanged so benches can `return Report.finish(rc);`.
  int finish(int ExitCode = 0) {
    if (!Enabled || Written)
      return ExitCode;
    Written = true;
    const std::string Path = "BENCH_" + Name + ".json";
    std::ofstream Out(Path);
    if (!Out) {
      std::cerr << "cannot write " << Path << "\n";
      return ExitCode ? ExitCode : 1;
    }
    Out << "{\n  \"bench\": \"" << Name << "\",\n";
    Out << "  \"scalars\": {";
    for (size_t I = 0; I < Scalars.size(); ++I) {
      Out << (I ? ",\n    " : "\n    ");
      Out << "\"" << escape(Scalars[I].first) << "\": \""
          << escape(Scalars[I].second) << "\"";
    }
    Out << (Scalars.empty() ? "}" : "\n  }") << ",\n";
    Out << "  \"tables\": [";
    for (size_t I = 0; I < Tables.size(); ++I) {
      Out << (I ? ",\n    {" : "\n    {") << "\"title\": \""
          << escape(Tables[I].first) << "\", \"table\": "
          << Tables[I].second << "}";
    }
    Out << (Tables.empty() ? "]" : "\n  ]") << "\n}\n";
    std::cerr << "wrote " << Path << "\n";
    return ExitCode;
  }

private:
  static std::string escape(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out;
  }

  std::string Name;
  bool Enabled = false;
  bool Written = false;
  std::vector<std::pair<std::string, std::string>> Scalars;
  /// (title, pre-rendered table JSON) in insertion order.
  std::vector<std::pair<std::string, std::string>> Tables;
};

/// --json adapter for the Google-Benchmark-based timing benches: rewrites
/// the flag into --benchmark_out=BENCH_<name>.json and
/// --benchmark_out_format=json before benchmark::Initialize consumes argv.
/// Those binaries emit Google Benchmark's native JSON document rather than
/// the table schema above (EXPERIMENTS.md documents both).
/// \p Storage must outlive the returned argv (it owns the strings).
inline char **rewriteJsonFlagForGoogleBenchmark(
    const std::string &Name, int &Argc, char **Argv,
    std::vector<std::string> &Storage, std::vector<char *> &Ptrs) {
  Storage.clear();
  for (int I = 0; I < Argc; ++I) {
    if (I > 0 && std::string(Argv[I]) == "--json") {
      Storage.push_back("--benchmark_out=BENCH_" + Name + ".json");
      Storage.push_back("--benchmark_out_format=json");
    } else {
      Storage.push_back(Argv[I]);
    }
  }
  Ptrs.clear();
  for (std::string &S : Storage)
    Ptrs.push_back(S.data());
  Ptrs.push_back(nullptr);
  Argc = static_cast<int>(Storage.size());
  return Ptrs.data();
}

} // namespace npral

#endif // NPRAL_BENCH_BENCHSUPPORT_H
