//===- pgo_cycles.cpp - Profile-guided vs unweighted allocation -----------===//
//
// The payoff experiment for the profile subsystem: pair a hot kernel (many
// executed blocks per packet) with a cold one on the same engine, collect
// an execution profile from the virtual program, then squeeze the register
// file until the allocator must insert moves and compare the unweighted
// allocation against the profile-guided one on the cycle-level simulator.
//
// Both allocations see the same programs, bounds, and register budget; the
// only difference is the move-cost objective. Unweighted, a mov in drr's
// 64x-per-packet scheduling loop costs the same 1 as a mov in l2l3fwd's
// straight-line epilogue, so the Fig. 8 reduction loop is indifferent to
// which thread it squeezes. Profile-guided, each mov costs its execution
// count, so the reduction loop, the splitting transforms, and fragment
// relocation all steer moves into the cold thread or cold blocks. The
// metric that falls is dynamic: instructions executed per iteration.
// Mixed thread loads are the realistic case for a network processor (the
// paper's ARA scenarios all pair heavy and light kernels).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "profile/ProfileCollector.h"
#include "support/TableFormatter.h"
#include "workloads/Harness.h"

#include <iostream>

using namespace npral;

namespace {

/// One four-slot mix of kernels. The interesting mixes pair kernels with
/// very different per-iteration block counts, so a move costs far more in
/// one thread than another.
struct Mix {
  std::string Name;
  std::array<std::string, 4> Kernels;
};

std::vector<Workload> buildMix(const Mix &M) {
  std::vector<Workload> Out;
  for (int Slot = 0; Slot < 4; ++Slot) {
    ErrorOr<Workload> W = buildWorkload(M.Kernels[static_cast<size_t>(Slot)],
                                        Slot);
    if (!W.ok()) {
      std::cerr << "cannot build '" << M.Kernels[static_cast<size_t>(Slot)]
                << "': " << W.status().str() << "\n";
      std::exit(1);
    }
    Out.push_back(W.take());
  }
  return Out;
}

/// Smallest feasible Nreg in [8, 128] for the unweighted allocator.
int findMinFeasibleNreg(const MultiThreadProgram &Virtual) {
  int Lo = 8, Hi = 128;
  if (!allocateInterThread(Virtual, Hi).Success)
    return -1;
  while (Lo < Hi) {
    int Mid = (Lo + Hi) / 2;
    if (allocateInterThread(Virtual, Mid).Success)
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Lo;
}

struct RunOutcome {
  bool Ok = false;
  int StaticMoves = 0;
  int64_t WeightedMoves = 0;
  int64_t InstrsExecuted = 0;
  double MeanCyclesPerIter = 0;
};

bool Verbose = false;

RunOutcome allocateAndRun(const std::vector<Workload> &Workloads,
                          const MultiThreadProgram &Virtual, int Nreg,
                          const std::vector<CostModel> &Models,
                          const SimConfig &Config) {
  RunOutcome Out;
  InterThreadResult R = allocateInterThread(Virtual, Nreg, {}, Models);
  if (!R.Success)
    return Out;
  if (Verbose) {
    std::cerr << "  Nreg=" << Nreg
              << (Models.empty() ? " [unit]" : " [pgo]");
    for (size_t T = 0; T < R.Threads.size(); ++T)
      std::cerr << "  " << Virtual.Threads[T].Name << ": PR="
                << R.Threads[T].PR << " SR=" << R.Threads[T].SR << " "
                << R.Threads[T].Strategy << " moves="
                << R.Threads[T].MoveCost << " w=" << R.Threads[T].WeightedCost;
    std::cerr << "\n";
  }
  if (Status S = verifyAllocationSafety(R.Physical); !S.ok()) {
    std::cerr << "unsafe allocation at Nreg=" << Nreg << ": " << S.str()
              << "\n";
    std::exit(1);
  }
  ScenarioRun Run = simulateWithWorkloads(Workloads, R.Physical, Config);
  if (!Run.Success) {
    std::cerr << "simulation failed at Nreg=" << Nreg << ": " << Run.FailReason
              << "\n";
    std::exit(1);
  }
  Out.Ok = true;
  Out.StaticMoves = R.TotalMoveCost;
  Out.WeightedMoves = R.TotalWeightedCost;
  for (const ThreadRunMetrics &M : Run.Threads) {
    Out.InstrsExecuted += M.InstrsExecuted;
    Out.MeanCyclesPerIter += M.CyclesPerIter / 4.0;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("pgo_cycles", argc, argv);
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "-v")
      Verbose = true;
  SimConfig Config = defaultExperimentConfig();

  // Hot/cold pairings chosen from the kernels' measured per-iteration
  // weights, plus the paper's own mixed scenarios.
  std::vector<Mix> Mixes = {
      {"drr4", {"drr", "drr", "drr", "drr"}},
      {"url4", {"url", "url", "url", "url"}},
      {"frag4", {"frag", "frag", "frag", "frag"}},
      {"wraps_rx4", {"wraps_rx", "wraps_rx", "wraps_rx", "wraps_rx"}},
      {"drr+l2l3tx", {"drr", "drr", "l2l3fwd_tx", "l2l3fwd_tx"}},
      {"fir2dim+l2l3tx", {"fir2dim", "fir2dim", "l2l3fwd_tx", "l2l3fwd_tx"}},
      {"drr+cast", {"drr", "drr", "cast", "cast"}},
      {"url+l2l3tx", {"url", "url", "l2l3fwd_tx", "l2l3fwd_tx"}},
      {"fir2dim+cast", {"fir2dim", "fir2dim", "cast", "cast"}},
  };
  for (const Scenario &S : getAraScenarios())
    Mixes.push_back({S.Name, S.Kernels});

  TableFormatter Table({"Mix", "Nreg", "Moves(u)", "Moves(p)", "WCost(u)",
                        "WCost(p)", "Cyc/iter(u)", "Cyc/iter(p)", "Delta"});
  int Improved = 0, Compared = 0;

  for (const Mix &M : Mixes) {
    std::vector<Workload> Workloads = buildMix(M);
    MultiThreadProgram Virtual =
        toMultiThreadProgram(Workloads, "pgo_" + M.Name);

    // Collect the execution profile on the virtual program (reference
    // mode): block IDs in the profile are the allocator's block IDs.
    ProfileCollector Collector(Virtual);
    ScenarioRun ProfRun =
        simulateWithWorkloads(Workloads, Virtual, Config, &Collector);
    if (!ProfRun.Success) {
      std::cerr << M.Name << ": profiling run failed: " << ProfRun.FailReason
                << "\n";
      return 1;
    }
    const ExecutionProfile &Prof = Collector.getProfile();
    std::vector<CostModel> Models;
    for (size_t T = 0; T < Virtual.Threads.size(); ++T)
      Models.push_back(Prof.costModel(
          static_cast<int>(T), Virtual.Threads[T].getNumBlocks()));

    const int MinNreg = findMinFeasibleNreg(Virtual);
    if (MinNreg < 0)
      continue;

    // Walk up from the feasibility floor and benchmark every budget where
    // the unweighted allocator actually pays moves. The most interesting
    // budgets are the partially-squeezed ones near the top of the range,
    // where the reduction loop has a genuine choice of which thread to
    // squeeze; near the floor every thread is squeezed and the allocations
    // are forced.
    for (int Nreg = MinNreg; Nreg <= MinNreg + 24; ++Nreg) {
      RunOutcome U =
          allocateAndRun(Workloads, Virtual, Nreg, {}, Config);
      if (!U.Ok)
        continue;
      if (U.StaticMoves == 0)
        break;
      RunOutcome P = allocateAndRun(Workloads, Virtual, Nreg, Models, Config);
      if (!P.Ok)
        continue;
      ++Compared;
      const double Delta = U.MeanCyclesPerIter - P.MeanCyclesPerIter;
      if (Delta > 0)
        ++Improved;
      Table.row()
          .cell(M.Name)
          .cell(Nreg)
          .cell(U.StaticMoves)
          .cell(P.StaticMoves)
          .cell(U.WeightedMoves)
          .cell(P.WeightedMoves)
          .cell(U.MeanCyclesPerIter, 2)
          .cell(P.MeanCyclesPerIter, 2)
          .cell(Delta, 2);
    }
  }

  std::cout << "Profile-guided vs unweighted allocation (mixed 4-thread "
               "loads, budgets where moves are required)\n\n";
  Table.print(std::cout);
  std::cout << "\n(u) = unit move costs, (p) = profile-guided. Delta > 0: "
               "PGO reduced mean cycles/iteration.\n";
  std::cout << Improved << "/" << Compared
            << " configurations improved under PGO\n";

  Report.addScalar("configurations_compared", static_cast<int64_t>(Compared));
  Report.addScalar("configurations_improved", static_cast<int64_t>(Improved));
  Report.addTable("pgo_vs_unweighted", Table);
  return Report.finish();
}
