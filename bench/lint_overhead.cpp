//===- lint_overhead.cpp - npral-lint cost on the paper workloads ---------===//
//
// google-benchmark timings of runAllCheckers over the workload kernels,
// before and after allocation, so lint can be judged as an always-on part
// of the pipeline: the virtual-program run measures the source lints, the
// physical-program run adds the cross-thread race sweep over a real
// allocation of an ARA scenario.
//
// The validator column measures translation validation the same way:
// `validate_scenario` times a single validateTranslation proof over an
// allocated ARA scenario, and `batch_validate/{off,on}` runs the batch
// pipeline over the batch_throughput 64-program corpus with and without
// --validate, so the end-to-end overhead of proving every allocation
// reads directly off the two rows (EXPERIMENTS.md pins it under 10%).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/InterAllocator.h"
#include "driver/BatchPipeline.h"
#include "lint/Lint.h"
#include "lint/TranslationValidator.h"
#include "support/DiagnosticEngine.h"
#include "workloads/Harness.h"
#include "workloads/ProgramGenerator.h"

#include "benchmark/benchmark.h"

#include <string>
#include <vector>

using namespace npral;

namespace {

MultiThreadProgram scenarioVirtual(int Index) {
  const Scenario &S = getAraScenarios()[static_cast<size_t>(Index)];
  std::vector<Workload> Workloads = buildScenarioWorkloads(S);
  return toMultiThreadProgram(Workloads, S.Name);
}

void BM_LintVirtual(benchmark::State &State, int Index) {
  MultiThreadProgram Virtual = scenarioVirtual(Index);
  for (auto _ : State) {
    DiagnosticEngine Engine;
    benchmark::DoNotOptimize(runAllCheckers(Virtual, Engine));
  }
}

void BM_LintPhysical(benchmark::State &State, int Index) {
  MultiThreadProgram Virtual = scenarioVirtual(Index);
  InterThreadResult R = allocateInterThread(Virtual, 128);
  if (!R.Success)
    reportFatalError("allocation failed: " + R.FailReason);
  for (auto _ : State) {
    DiagnosticEngine Engine;
    benchmark::DoNotOptimize(runAllCheckers(R.Physical, Engine));
  }
}

void BM_LintSingleKernel(benchmark::State &State, const std::string &Name) {
  ErrorOr<Workload> W = buildWorkload(Name, 0);
  if (!W.ok())
    reportFatalError(W.status().str());
  MultiThreadProgram MTP;
  MTP.Threads.push_back(W->Code);
  for (auto _ : State) {
    DiagnosticEngine Engine;
    benchmark::DoNotOptimize(runAllCheckers(MTP, Engine));
  }
}

void BM_ValidateScenario(benchmark::State &State, int Index) {
  MultiThreadProgram Virtual = scenarioVirtual(Index);
  InterThreadResult R = allocateInterThread(Virtual, 128);
  if (!R.Success)
    reportFatalError("allocation failed: " + R.FailReason);
  for (auto _ : State) {
    DiagnosticEngine Engine;
    ValidationResult V = validateTranslation(Virtual, R.Physical, Engine);
    if (!V.Proved)
      reportFatalError("validator refuted a correct allocation");
    benchmark::DoNotOptimize(V.InstructionsMatched);
  }
}

/// The batch_throughput corpus: 64 distinct two-thread generated programs,
/// so the --validate overhead is measured on the same workload the batch
/// scaling numbers come from.
std::vector<BatchJob> makeBatchCorpus() {
  constexpr int CorpusSize = 64;
  std::vector<BatchJob> Jobs;
  for (int I = 0; I < CorpusSize; ++I) {
    const uint64_t Seed = static_cast<uint64_t>(I) + 1;
    BatchJob Job;
    Job.Name = "p" + std::to_string(I);
    for (int T = 0; T < 2; ++T) {
      GeneratorConfig Config;
      Config.TargetInstructions = 90;
      Config.CtxRatePerMille = 160;
      Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
      Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
      Program P = generateRandomProgram(Seed * 10 + static_cast<uint64_t>(T),
                                        Config);
      P.Name = "t" + std::to_string(T);
      Job.Program.Threads.push_back(std::move(P));
    }
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

void BM_BatchValidate(benchmark::State &State, bool Validate) {
  std::vector<BatchJob> Corpus = makeBatchCorpus();
  BatchOptions Opts;
  Opts.Jobs = 1; // serial, so the overhead is not hidden by idle workers
  Opts.Validate = Validate;
  PipelineStats Last;
  for (auto _ : State) {
    BatchResult R = runBatch(Corpus, Opts);
    if (!R.allSucceeded())
      reportFatalError("batch corpus failed to allocate");
    Last = R.Stats;
    benchmark::DoNotOptimize(R.Results.data());
  }
  State.counters["programs_per_sec"] = benchmark::Counter(
      Last.throughput(), benchmark::Counter::kAvgIterations);
  if (Validate)
    State.counters["validate_ms"] =
        static_cast<double>(Last.ValidateNs) / 1e6;
}

} // namespace

int main(int argc, char **argv) {
  for (const char *Name : {"frag", "md5", "wraps_rx"})
    benchmark::RegisterBenchmark(("lint_kernel/" + std::string(Name)).c_str(),
                                 BM_LintSingleKernel, Name);
  for (int I = 0; I < 3; ++I) {
    benchmark::RegisterBenchmark(
        ("lint_virtual/S" + std::to_string(I + 1)).c_str(), BM_LintVirtual,
        I);
    benchmark::RegisterBenchmark(
        ("lint_physical/S" + std::to_string(I + 1)).c_str(), BM_LintPhysical,
        I);
    benchmark::RegisterBenchmark(
        ("validate_scenario/S" + std::to_string(I + 1)).c_str(),
        BM_ValidateScenario, I);
  }
  benchmark::RegisterBenchmark("batch_validate/off", BM_BatchValidate, false);
  benchmark::RegisterBenchmark("batch_validate/on", BM_BatchValidate, true);

  std::vector<std::string> ArgStorage;
  std::vector<char *> ArgPtrs;
  argv = rewriteJsonFlagForGoogleBenchmark("lint_overhead", argc, argv, ArgStorage,
                                           ArgPtrs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
