//===- lint_overhead.cpp - npral-lint cost on the paper workloads ---------===//
//
// google-benchmark timings of runAllCheckers over the workload kernels,
// before and after allocation, so lint can be judged as an always-on part
// of the pipeline: the virtual-program run measures the source lints, the
// physical-program run adds the cross-thread race sweep over a real
// allocation of an ARA scenario.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/InterAllocator.h"
#include "lint/Lint.h"
#include "support/DiagnosticEngine.h"
#include "workloads/Harness.h"

#include "benchmark/benchmark.h"

using namespace npral;

namespace {

MultiThreadProgram scenarioVirtual(int Index) {
  const Scenario &S = getAraScenarios()[static_cast<size_t>(Index)];
  std::vector<Workload> Workloads = buildScenarioWorkloads(S);
  return toMultiThreadProgram(Workloads, S.Name);
}

void BM_LintVirtual(benchmark::State &State, int Index) {
  MultiThreadProgram Virtual = scenarioVirtual(Index);
  for (auto _ : State) {
    DiagnosticEngine Engine;
    benchmark::DoNotOptimize(runAllCheckers(Virtual, Engine));
  }
}

void BM_LintPhysical(benchmark::State &State, int Index) {
  MultiThreadProgram Virtual = scenarioVirtual(Index);
  InterThreadResult R = allocateInterThread(Virtual, 128);
  if (!R.Success)
    reportFatalError("allocation failed: " + R.FailReason);
  for (auto _ : State) {
    DiagnosticEngine Engine;
    benchmark::DoNotOptimize(runAllCheckers(R.Physical, Engine));
  }
}

void BM_LintSingleKernel(benchmark::State &State, const std::string &Name) {
  ErrorOr<Workload> W = buildWorkload(Name, 0);
  if (!W.ok())
    reportFatalError(W.status().str());
  MultiThreadProgram MTP;
  MTP.Threads.push_back(W->Code);
  for (auto _ : State) {
    DiagnosticEngine Engine;
    benchmark::DoNotOptimize(runAllCheckers(MTP, Engine));
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const char *Name : {"frag", "md5", "wraps_rx"})
    benchmark::RegisterBenchmark(("lint_kernel/" + std::string(Name)).c_str(),
                                 BM_LintSingleKernel, Name);
  for (int I = 0; I < 3; ++I) {
    benchmark::RegisterBenchmark(
        ("lint_virtual/S" + std::to_string(I + 1)).c_str(), BM_LintVirtual,
        I);
    benchmark::RegisterBenchmark(
        ("lint_physical/S" + std::to_string(I + 1)).c_str(), BM_LintPhysical,
        I);
  }

  std::vector<std::string> ArgStorage;
  std::vector<char *> ArgPtrs;
  argv = rewriteJsonFlagForGoogleBenchmark("lint_overhead", argc, argv, ArgStorage,
                                           ArgPtrs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
