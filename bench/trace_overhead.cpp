//===- trace_overhead.cpp - Cost of disabled tracing on the pipeline ------===//
//
// Pins the observability layer's core promise: instrumentation left in the
// shipping binary costs (nearly) nothing while tracing is off.
//
// A disabled instrumentation site is one relaxed atomic load plus a
// branch, so the overhead of a whole run is
//
//   sites_executed x guard_cost / wall_time
//
// Both factors are measured here: the guard cost by timing a tight loop of
// disabled spans, and sites_executed by running the workload once with
// tracing enabled and counting the recorded events (an overestimate of the
// site count — a span's two events share one guarded constructor — so the
// reported overhead is an upper bound). The verdict asserts the bound
// stays under 2% of the batch pipeline's disabled-tracing wall clock.
//
//   bench/trace_overhead [--json]
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "driver/BatchPipeline.h"
#include "sim/Simulator.h"
#include "trace/CycleTrace.h"
#include "trace/TraceEngine.h"
#include "workloads/ProgramGenerator.h"

#include "benchmark/benchmark.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

using namespace npral;

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nanoseconds per disabled NPRAL_TRACE_SPAN site, from a tight loop long
/// enough to drown the clock overhead.
double measureGuardNs() {
  constexpr int64_t Iters = 5'000'000;
  TraceEngine::global().setEnabled(false);
  // Warm-up so the first-call path (lazy engine construction) is off the
  // clock.
  for (int I = 0; I < 1000; ++I) {
    NPRAL_TRACE_SPAN("bench", "warmup");
  }
  double Best = 1e18;
  for (int Round = 0; Round < 3; ++Round) {
    const int64_t T0 = nowNs();
    for (int64_t I = 0; I < Iters; ++I) {
      NPRAL_TRACE_SPAN("bench", "probe");
    }
    const int64_t T1 = nowNs();
    Best = std::min(Best, static_cast<double>(T1 - T0) /
                              static_cast<double>(Iters));
  }
  return Best;
}

/// The batch_throughput corpus: 64 generated two-thread programs with the
/// same generator parameters, so the overhead bound is measured on the
/// workload the throughput numbers come from.
std::vector<BatchJob> corpusJobs() {
  constexpr int CorpusSize = 64;
  std::vector<BatchJob> Jobs;
  for (int I = 0; I < CorpusSize; ++I) {
    const uint64_t Seed = static_cast<uint64_t>(I) + 1;
    BatchJob Job;
    Job.Name = "p" + std::to_string(I);
    for (int T = 0; T < 2; ++T) {
      GeneratorConfig Config;
      Config.TargetInstructions = 90;
      Config.CtxRatePerMille = 160;
      Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
      Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
      Program P = generateRandomProgram(Seed * 10 + static_cast<uint64_t>(T),
                                        Config);
      P.Name = "t" + std::to_string(T);
      Job.Program.Threads.push_back(std::move(P));
    }
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

/// Wall clock of one sequential batch run; best of \p Rounds.
int64_t measureBatchNs(const std::vector<BatchJob> &Jobs, int Rounds) {
  BatchOptions Opts;
  Opts.Jobs = 1;
  int64_t Best = INT64_MAX;
  for (int R = 0; R < Rounds; ++R) {
    const int64_t T0 = nowNs();
    BatchResult Result = runBatch(Jobs, Opts);
    const int64_t T1 = nowNs();
    benchmark::DoNotOptimize(Result);
    if (!Result.allSucceeded())
      reportFatalError("batch failed during trace overhead measurement");
    Best = std::min(Best, T1 - T0);
  }
  return Best;
}

/// Cost of the cycle-domain tracing guard: a null member-pointer test.
/// The volatile load forces the pointer to be re-read each iteration, so
/// this upper-bounds the real guard (which keeps the pointer in a
/// register across account()'s thread loop).
double measurePointerGuardNs() {
  constexpr int64_t Iters = 50'000'000;
  CycleTrace *volatile Ptr = nullptr;
  int64_t Sink = 0;
  double Best = 1e18;
  for (int Round = 0; Round < 3; ++Round) {
    const int64_t T0 = nowNs();
    for (int64_t I = 0; I < Iters; ++I)
      if (Ptr != nullptr)
        ++Sink;
    const int64_t T1 = nowNs();
    benchmark::DoNotOptimize(Sink);
    Best = std::min(Best, static_cast<double>(T1 - T0) /
                              static_cast<double>(Iters));
  }
  return Best;
}

/// The simulator workload for the cycle-domain overhead bound: four
/// generated compute-heavy threads (long ALU runs between memory ops,
/// like the paper's packet kernels), simulated virtual so only the
/// simulator is on the clock.
MultiThreadProgram simCorpus() {
  MultiThreadProgram MTP;
  for (int T = 0; T < 4; ++T) {
    GeneratorConfig Config;
    Config.TargetInstructions = 400;
    Config.CtxRatePerMille = 10;
    Config.MemBase = 0x1000 + 0x800 * static_cast<uint32_t>(T);
    Config.OutBase = 0x5000 + 0x100 * static_cast<uint32_t>(T);
    Program P =
        generateRandomProgram(static_cast<uint64_t>(T) + 21, Config);
    P.Name = "s" + std::to_string(T);
    MTP.Threads.push_back(std::move(P));
  }
  return MTP;
}

SimConfig simCorpusConfig() {
  SimConfig Config;
  Config.TargetIterations = 400;
  return Config;
}

/// Wall clock of one untraced simulator run; best of \p Rounds.
int64_t measureSimNs(const MultiThreadProgram &MTP, int Rounds) {
  int64_t Best = INT64_MAX;
  for (int R = 0; R < Rounds; ++R) {
    Simulator Sim(MTP, simCorpusConfig());
    const int64_t T0 = nowNs();
    SimResult Result = Sim.run();
    const int64_t T1 = nowNs();
    benchmark::DoNotOptimize(Result);
    if (!Result.Completed)
      reportFatalError("sim failed during trace overhead measurement");
    Best = std::min(Best, T1 - T0);
  }
  return Best;
}

/// Guard checks a tracing-disabled simulator run would execute, counted on
/// a traced run of the same workload. Per account() call the disabled path
/// evaluates one trace-pointer guard per thread, and the interval counter
/// ticks at least Nthd times per call (every thread lands in a phase; a
/// split memory interval ticks once more), so the interval count alone
/// covers those. The sampler-pointer guard at the scheduler loop head runs
/// at most once per account() call, i.e. at most intervals/Nthd more.
int64_t countSimGuardSites(const MultiThreadProgram &MTP) {
  Simulator Sim(MTP, simCorpusConfig());
  CycleTrace CT;
  Sim.setCycleTrace(&CT, /*Pid=*/1);
  SimResult Result = Sim.run();
  if (!Result.Completed)
    reportFatalError("traced sim failed");
  const int64_t Intervals = CT.intervalCount();
  const int64_t Nthd = std::max(1, MTP.getNumThreads());
  return Intervals + (Intervals + Nthd - 1) / Nthd;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("trace_overhead", argc, argv);
  const std::vector<BatchJob> Jobs = corpusJobs();

  // Factor 1: cost of one disabled instrumentation site.
  const double GuardNs = measureGuardNs();

  // Factor 2: sites executed per run, counted on a traced run.
  TraceEngine::global().clear();
  TraceEngine::global().setEnabled(true);
  {
    BatchOptions Opts;
    Opts.Jobs = 1;
    BatchResult Traced = runBatch(Jobs, Opts);
    if (!Traced.allSucceeded())
      reportFatalError("traced batch failed");
  }
  TraceEngine::global().setEnabled(false);
  const int64_t Events = TraceEngine::global().eventCount();
  TraceEngine::global().clear();

  // Factor 3: the run itself, tracing disabled.
  const int64_t WallNs = measureBatchNs(Jobs, /*Rounds=*/5);

  const double OverheadNs = static_cast<double>(Events) * GuardNs;
  const double OverheadPct =
      WallNs > 0 ? 100.0 * OverheadNs / static_cast<double>(WallNs) : 0.0;

  // The cycle-domain (virtual-time) tracing path: its disabled guard is a
  // plain null-pointer test, measured on its own — the atomic span guard
  // above costs an order of magnitude more and would turn this bound into
  // noise about the wrong code.
  const double SimGuardNs = measurePointerGuardNs();
  const MultiThreadProgram SimMTP = simCorpus();
  const int64_t SimSites = countSimGuardSites(SimMTP);
  const int64_t SimWallNs = measureSimNs(SimMTP, /*Rounds=*/5);
  const double SimOverheadNs = static_cast<double>(SimSites) * SimGuardNs;
  const double SimOverheadPct =
      SimWallNs > 0 ? 100.0 * SimOverheadNs / static_cast<double>(SimWallNs)
                    : 0.0;

  const bool Pass = OverheadPct < 2.0 && SimOverheadPct < 2.0;

  TableFormatter Table({"Metric", "Value"});
  Table.row().cell("guard ns/site").cell(GuardNs, 3);
  Table.row().cell("events/run").cell(Events);
  Table.row().cell("batch wall ms (disabled)")
      .cell(static_cast<double>(WallNs) / 1e6, 3);
  Table.row().cell("disabled overhead ms (bound)")
      .cell(OverheadNs / 1e6, 4);
  Table.row().cell("disabled overhead % (bound)").cell(OverheadPct, 4);
  Table.row().cell("sim guard ns/site").cell(SimGuardNs, 3);
  Table.row().cell("sim guard sites/run").cell(SimSites);
  Table.row().cell("sim wall ms (disabled)")
      .cell(static_cast<double>(SimWallNs) / 1e6, 3);
  Table.row().cell("sim overhead % (bound)").cell(SimOverheadPct, 4);
  Table.print(std::cout);
  std::cout << "verdict: " << (Pass ? "PASS" : "FAIL")
            << " (both bounds < 2% required)\n";

  Report.addScalar("guard_ns_per_site", GuardNs);
  Report.addScalar("events_per_run", Events);
  Report.addScalar("batch_wall_ns_disabled", WallNs);
  Report.addScalar("overhead_pct_bound", OverheadPct);
  Report.addScalar("sim_guard_ns_per_site", SimGuardNs);
  Report.addScalar("sim_guard_sites_per_run", SimSites);
  Report.addScalar("sim_wall_ns_disabled", SimWallNs);
  Report.addScalar("sim_overhead_pct_bound", SimOverheadPct);
  Report.addScalar("verdict", Pass ? "PASS" : "FAIL");
  Report.addTable("trace overhead", Table);
  return Report.finish(Pass ? 0 : 1);
}
