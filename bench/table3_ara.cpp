//===- table3_ara.cpp - Reproduce paper Table 3 ---------------------------===//
//
// Table 3 is the paper's headline experiment: three asymmetric (ARA)
// scenarios of four threads on one micro-engine, comparing
//
//   * "Reg Spill":   the production layout — every thread gets a fixed
//                    32-register partition, excess pressure spills; and
//   * "Reg Sharing": the paper's inter-thread allocator over all 128 GPRs
//                    with compiler-managed shared registers.
//
// For each thread we report PR/SR, live ranges, context-switch events and
// cycles per iteration under both allocators, plus the percentage change.
// The paper reports 18-24 % speedups for the performance-critical threads
// and only 1-4 % degradation for the others.
//
// Both allocations are safety-verified and their simulated memory outputs
// are checked for equality against the virtual-register reference run.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/AllocationVerifier.h"
#include "alloc/InterAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "support/TableFormatter.h"
#include "workloads/Harness.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("table3_ara", argc, argv);
  const int Nreg = 128;
  const int RegsPerThread = 32;
  SimConfig Config = defaultExperimentConfig();

  for (const Scenario &S : getAraScenarios()) {
    std::vector<Workload> Workloads = buildScenarioWorkloads(S);
    MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);

    // Reference run (virtual registers, per-thread file).
    ScenarioRun Reference = simulateWithWorkloads(Workloads, Virtual, Config);
    if (!Reference.Success) {
      std::cerr << "error: reference run failed for " << S.Name << ": "
                << Reference.FailReason << "\n";
      return 1;
    }

    // Baseline: fixed partitions with spilling.
    BaselineAllocationOutcome Baseline =
        allocateScenarioBaseline(Workloads, RegsPerThread);
    if (!Baseline.Success) {
      std::cerr << "error: " << Baseline.FailReason << "\n";
      return 1;
    }
    if (Status St = verifyAllocationSafety(Baseline.Physical); !St.ok()) {
      std::cerr << "error: baseline allocation unsafe: " << St.str() << "\n";
      return 1;
    }
    ScenarioRun SpillRun =
        simulateWithWorkloads(Workloads, Baseline.Physical, Config);
    if (!SpillRun.Success) {
      std::cerr << "error: spill run failed: " << SpillRun.FailReason << "\n";
      return 1;
    }

    // Paper allocator: inter-thread balancing with shared registers.
    InterThreadResult Sharing = allocateInterThread(Virtual, Nreg);
    if (!Sharing.Success) {
      std::cerr << "error: inter-thread allocation failed: "
                << Sharing.FailReason << "\n";
      return 1;
    }
    if (Status St = verifyAllocationSafety(Sharing.Physical); !St.ok()) {
      std::cerr << "error: sharing allocation unsafe: " << St.str() << "\n";
      return 1;
    }
    ScenarioRun ShareRun =
        simulateWithWorkloads(Workloads, Sharing.Physical, Config);
    if (!ShareRun.Success) {
      std::cerr << "error: sharing run failed: " << ShareRun.FailReason
                << "\n";
      return 1;
    }

    // Semantic equivalence against the reference: separate runs in which
    // every thread halts exactly at its target iteration, so the memory
    // image does not depend on the interleaving.
    SimConfig EqConfig = equivalenceConfig();
    ScenarioRun EqRef = simulateWithWorkloads(Workloads, Virtual, EqConfig);
    ScenarioRun EqSpill =
        simulateWithWorkloads(Workloads, Baseline.Physical, EqConfig);
    ScenarioRun EqShare =
        simulateWithWorkloads(Workloads, Sharing.Physical, EqConfig);
    if (!EqRef.Success || !EqSpill.Success || !EqShare.Success) {
      std::cerr << "error: equivalence run failed in scenario " << S.Name
                << "\n";
      return 1;
    }
    for (size_t T = 0; T < Workloads.size(); ++T) {
      if (EqSpill.Threads[T].OutputHash != EqRef.Threads[T].OutputHash ||
          EqShare.Threads[T].OutputHash != EqRef.Threads[T].OutputHash) {
        std::cerr << "error: output mismatch in scenario " << S.Name
                  << ", thread " << T << "\n";
        return 1;
      }
    }

    TableFormatter Table({"Thd", "Benchmark", "PR", "SR", "Moves",
                          "#LiveRanges", "CTX/iter spill", "CTX/iter share",
                          "Cyc/iter spill", "Cyc/iter share", "Change"});
    for (size_t T = 0; T < Workloads.size(); ++T) {
      const ThreadAllocation &TAl = Sharing.Threads[T];
      ThreadAnalysis TA = analyzeThread(Workloads[T].Code);
      double Spill = SpillRun.Threads[T].CyclesPerIter;
      double Share = ShareRun.Threads[T].CyclesPerIter;
      double Change = Spill > 0 ? (Spill - Share) / Spill : 0;
      Table.row()
          .cell(T)
          .cell(Workloads[T].Name)
          .cell(TAl.PR)
          .cell(TAl.SR)
          .cell(TAl.MoveCost)
          .cell(TA.getNumLiveRanges())
          .cell(static_cast<double>(SpillRun.Threads[T].CtxEvents) /
                    SpillRun.Threads[T].Iterations,
                1)
          .cell(static_cast<double>(ShareRun.Threads[T].CtxEvents) /
                    ShareRun.Threads[T].Iterations,
                1)
          .cell(Spill, 1)
          .cell(Share, 1)
          .percentCell(Change);
    }
    std::cout << "Scenario " << S.Name << "  (SGR=" << Sharing.SGR
              << ", registers used=" << Sharing.RegistersUsed << "/" << Nreg
              << ")\n";
    std::cout << "  baseline spills:";
    for (size_t T = 0; T < Baseline.PerThread.size(); ++T)
      std::cout << " " << Workloads[T].Name << "="
                << Baseline.PerThread[T].SpilledRanges << "rng/"
                << (Baseline.PerThread[T].SpillLoads +
                    Baseline.PerThread[T].SpillStores)
                << "ops";
    std::cout << "\n\n";
    Table.print(std::cout);
    std::cout << "\n('Change' is cycle reduction of sharing vs spill; "
              << "positive = faster with register sharing.)\n\n";
    Report.addTable(S.Name, Table);
  }
  return Report.finish();
}
