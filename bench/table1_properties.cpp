//===- table1_properties.cpp - Reproduce paper Table 1 --------------------===//
//
// Table 1 of the paper lists the static and dynamic properties of the 11
// benchmark programs: code size, cycles per main-loop iteration, number of
// context-switch instructions, live ranges, the lower bounds RegPmax and
// RegPCSBmax, the upper bounds MaxR / MaxPR (Fig. 7 estimation), and the
// NSR structure. This binary regenerates the table for our reconstructed
// kernels.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/BoundsEstimator.h"
#include "analysis/InterferenceGraph.h"
#include "support/TableFormatter.h"
#include "workloads/Harness.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("table1_properties", argc, argv);
  TableFormatter Table({"Benchmark", "#Instr", "Cyc/iter", "#CTX", "CTX%",
                        "#LiveRanges", "RegPmax", "RegPCSBmax", "MaxR",
                        "MaxPR", "#NSR", "AvgNSRSize"});

  for (const std::string &Name : getWorkloadNames()) {
    ErrorOr<Workload> WOr = buildWorkload(Name, 0);
    if (!WOr.ok()) {
      std::cerr << "error: " << WOr.status().str() << "\n";
      return 1;
    }
    Workload W = WOr.take();

    ThreadAnalysis TA = analyzeThread(W.Code);
    RegBounds Bounds = estimateRegBounds(TA);

    int NumInstr = W.Code.countInstructions();
    int NumCtx = W.Code.countCtxInstructions();
    int NumNSR = TA.NSRs.getNumNSRs();
    double AvgNSR = NumNSR ? static_cast<double>(NumInstr) / NumNSR : 0;

    // Standalone dynamic cycle count: the kernel alone on the engine.
    std::vector<Workload> Single;
    Single.push_back(W);
    MultiThreadProgram MTP = toMultiThreadProgram(Single, Name);
    SimConfig Config = defaultExperimentConfig();
    ScenarioRun Run = simulateWithWorkloads(Single, MTP, Config);
    if (!Run.Success) {
      std::cerr << "error: simulation of '" << Name
                << "' failed: " << Run.FailReason << "\n";
      return 1;
    }

    Table.row()
        .cell(Name)
        .cell(NumInstr)
        .cell(Run.Threads[0].CyclesPerIter, 1)
        .cell(NumCtx)
        .cell(100.0 * NumCtx / NumInstr, 1)
        .cell(TA.getNumLiveRanges())
        .cell(TA.getRegPmax())
        .cell(TA.getRegPCSBmax())
        .cell(Bounds.MaxR)
        .cell(Bounds.MaxPR)
        .cell(NumNSR)
        .cell(AvgNSR, 1);
  }

  std::cout << "Table 1: benchmark application properties\n"
            << "(paper: Zhuang & Pande, PLDI'04, Table 1)\n\n";
  Table.print(std::cout);
  Report.addTable("benchmark_properties", Table);
  return Report.finish();
}
