//===- ablation_sra_nthd.cpp - SRA across thread counts (A5) --------------===//
//
// The paper's machine model is parameterised over Nthd ("Nreg registers
// that can be used by Nthd threads"); the IXP1200 uses 4. This ablation
// sweeps the symmetric allocation over 2/4/6/8 identical threads per
// engine: total register use scales as Nthd*PR + SR, so the shared window
// is amortised ever more strongly — and the sweep shows which benchmarks
// stop fitting in 128 registers as the engine gets wider.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/InterAllocator.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("ablation_sra_nthd", argc, argv);
  const int Nreg = 128;
  TableFormatter Table({"Benchmark", "Nthd=2", "Nthd=4", "Nthd=6", "Nthd=8"});
  for (const std::string &Name : getWorkloadNames()) {
    ErrorOr<Workload> W = buildWorkload(Name, 0);
    if (!W.ok()) {
      std::cerr << "error: " << W.status().str() << "\n";
      return 1;
    }
    Table.row().cell(Name);
    for (int Nthd : {2, 4, 6, 8}) {
      SRAResult R = solveSRA(W->Code, Nthd, Nreg, /*RequireZeroCost=*/false);
      if (!R.Success) {
        Table.cell("infeasible");
        continue;
      }
      Table.cell(std::to_string(R.TotalRegisters) + " (" +
                 std::to_string(R.PR) + "p+" + std::to_string(R.SR) + "s" +
                 (R.MoveCost ? "," + std::to_string(R.MoveCost) + "mv" : "") +
                 ")");
    }
  }
  std::cout << "Ablation A5: SRA total register use (PR/SR split) vs thread "
               "count, Nreg=128\n\n";
  Table.print(std::cout);
  Report.addTable("sra_vs_nthd", Table);
  return Report.finish();
}
