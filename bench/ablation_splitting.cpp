//===- ablation_splitting.cpp - Intra-thread strategy comparison (A3) -----===//
//
// DESIGN.md calls out three intra-thread strategies: move-free constrained
// coloring ("direct"), greedy NSR-exclusion/block splitting ("split", the
// paper's Fig. 10 mechanism), and the constructive Lemma-1 fallback
// ("fragment"). This ablation forces each benchmark to its minimal register
// numbers and compares the move counts of the greedy path and the fallback
// in isolation — quantifying how much the targeted splitting of Fig. 10
// saves over blunt split-everywhere allocation.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/FragmentAllocator.h"
#include "alloc/IntraAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "support/TableFormatter.h"
#include "workloads/Workload.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("ablation_splitting", argc, argv);
  TableFormatter Table({"Benchmark", "MinPR", "MinR", "Combined", "Strategy",
                        "FragmentOnly", "Overhead%"});
  for (const std::string &Name : getWorkloadNames()) {
    ErrorOr<Workload> W = buildWorkload(Name, 0);
    if (!W.ok()) {
      std::cerr << "error: " << W.status().str() << "\n";
      return 1;
    }
    IntraThreadAllocator Intra(W->Code);
    int MinPR = Intra.getMinPR();
    int MinR = Intra.getMinR();
    const IntraResult &Best = Intra.allocate(MinPR, MinR - MinPR);

    // Fallback in isolation.
    ThreadAnalysis TA = analyzeThread(Intra.getProgram());
    ColorAllocation Fragment =
        allocateByFragments(Intra.getProgram(), TA, MinPR, MinR - MinPR);

    Table.row().cell(Name).cell(MinPR).cell(MinR);
    if (Best.Feasible)
      Table.cell(Best.MoveCost).cell(Best.Strategy);
    else
      Table.cell("-").cell("infeasible");
    if (Fragment.Feasible) {
      Table.cell(Fragment.MoveCost);
      double Overhead =
          100.0 * Fragment.MoveCost /
          static_cast<double>(W->Code.countInstructions());
      Table.cell(Overhead, 1);
    } else {
      Table.cell("-").cell("-");
    }
  }

  std::cout << "Ablation A3: intra-thread strategies at the minimal register "
               "numbers\n"
            << "('Combined' = best of direct/split/fragment, as the "
               "allocator ships)\n\n";
  Table.print(std::cout);
  Report.addTable("strategy_comparison", Table);
  return Report.finish();
}
