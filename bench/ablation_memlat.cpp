//===- ablation_memlat.cpp - Memory latency sensitivity (A1) --------------===//
//
// How does the sharing-vs-spilling gap depend on memory latency? The paper
// quotes "at least 20 cycles" per access; IXP1200 SDRAM is closer to 40.
// We sweep the latency on scenario S3 (wraps rx/tx + fir2dim + frag): the
// critical threads' speedup grows with latency (each avoided spill saves a
// full round trip) while the companions' contention penalty shrinks (the
// engine has more idle slack to absorb redistribution).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/InterAllocator.h"
#include "support/TableFormatter.h"
#include "workloads/Harness.h"

#include <iostream>

using namespace npral;

int main(int argc, char **argv) {
  BenchReport Report("ablation_memlat", argc, argv);
  const Scenario &S = getAraScenarios()[2];
  std::vector<Workload> Workloads = buildScenarioWorkloads(S);
  MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);

  BaselineAllocationOutcome Baseline = allocateScenarioBaseline(Workloads, 32);
  InterThreadResult Sharing = allocateInterThread(Virtual, 128);
  if (!Baseline.Success || !Sharing.Success) {
    std::cerr << "allocation failed\n";
    return 1;
  }

  TableFormatter Table({"MemLatency", "wraps_rx", "wraps_tx", "fir2dim",
                        "frag"});
  for (int Latency : {10, 15, 20, 25, 30, 40, 50, 60}) {
    SimConfig Config = defaultExperimentConfig();
    Config.MemLatency = Latency;
    ScenarioRun Spill =
        simulateWithWorkloads(Workloads, Baseline.Physical, Config);
    ScenarioRun Share =
        simulateWithWorkloads(Workloads, Sharing.Physical, Config);
    if (!Spill.Success || !Share.Success) {
      std::cerr << "simulation failed at latency " << Latency << "\n";
      return 1;
    }
    Table.row().cell(Latency);
    for (size_t T = 0; T < Workloads.size(); ++T) {
      double A = Spill.Threads[T].CyclesPerIter;
      double B = Share.Threads[T].CyclesPerIter;
      Table.percentCell(A > 0 ? (A - B) / A : 0);
    }
  }

  std::cout << "Ablation A1: sharing speedup vs memory latency (scenario "
            << S.Name << ")\n"
            << "(positive = faster with register sharing)\n\n";
  Table.print(std::cout);
  Report.addTable("sharing_speedup_vs_memlat", Table);
  return Report.finish();
}
