//===- alloc_compile_time.cpp - Allocator performance (A4) ----------------===//
//
// google-benchmark timings of the compiler-side machinery: analysis,
// bounds estimation, intra-thread allocation at both ends of the budget
// range, the full inter-thread allocation of an ARA scenario, and the
// Chaitin baseline. The paper claims "almost negligible compilation time";
// this bench quantifies ours.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "alloc/BoundsEstimator.h"
#include "alloc/InterAllocator.h"
#include "alloc/IntraAllocator.h"
#include "analysis/InterferenceGraph.h"
#include "baseline/ChaitinAllocator.h"
#include "workloads/Harness.h"

#include "benchmark/benchmark.h"

using namespace npral;

namespace {

Program kernelProgram(const std::string &Name) {
  ErrorOr<Workload> W = buildWorkload(Name, 0);
  if (!W.ok())
    reportFatalError(W.status().str());
  return W->Code;
}

void BM_AnalyzeThread(benchmark::State &State, const std::string &Name) {
  Program P = kernelProgram(Name);
  for (auto _ : State) {
    ThreadAnalysis TA = analyzeThread(P);
    benchmark::DoNotOptimize(TA.GIG.getNumEdges());
  }
}

void BM_EstimateBounds(benchmark::State &State, const std::string &Name) {
  Program P = kernelProgram(Name);
  ThreadAnalysis TA = analyzeThread(P);
  for (auto _ : State) {
    RegBounds B = estimateRegBounds(TA);
    benchmark::DoNotOptimize(B.MaxR);
  }
}

void BM_IntraAtUpperBound(benchmark::State &State, const std::string &Name) {
  Program P = kernelProgram(Name);
  for (auto _ : State) {
    IntraThreadAllocator Intra(P);
    const IntraResult &R = Intra.allocate(
        Intra.getMaxPR(), Intra.getMaxR() - Intra.getMaxPR());
    benchmark::DoNotOptimize(R.Feasible);
  }
}

void BM_IntraAtLowerBound(benchmark::State &State, const std::string &Name) {
  Program P = kernelProgram(Name);
  for (auto _ : State) {
    IntraThreadAllocator Intra(P);
    const IntraResult &R = Intra.allocate(
        Intra.getMinPR(), Intra.getMinR() - Intra.getMinPR());
    benchmark::DoNotOptimize(R.MoveCost);
  }
}

void BM_Chaitin32(benchmark::State &State, const std::string &Name) {
  ErrorOr<Workload> W = buildWorkload(Name, 0);
  if (!W.ok())
    reportFatalError(W.status().str());
  for (auto _ : State) {
    ChaitinConfig Config;
    Config.NumColors = 32;
    Config.SpillBase = W->SpillBase;
    ChaitinResult R = runChaitinAllocator(W->Code, Config);
    benchmark::DoNotOptimize(R.Success);
  }
}

void BM_InterThreadScenario(benchmark::State &State, int Index) {
  const Scenario &S = getAraScenarios()[static_cast<size_t>(Index)];
  std::vector<Workload> Workloads = buildScenarioWorkloads(S);
  MultiThreadProgram Virtual = toMultiThreadProgram(Workloads, S.Name);
  for (auto _ : State) {
    InterThreadResult R = allocateInterThread(Virtual, 128);
    benchmark::DoNotOptimize(R.RegistersUsed);
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const char *Name : {"frag", "md5", "wraps_rx"}) {
    benchmark::RegisterBenchmark(("analyze/" + std::string(Name)).c_str(),
                                 BM_AnalyzeThread, Name);
    benchmark::RegisterBenchmark(("bounds/" + std::string(Name)).c_str(),
                                 BM_EstimateBounds, Name);
    benchmark::RegisterBenchmark(("intra_upper/" + std::string(Name)).c_str(),
                                 BM_IntraAtUpperBound, Name);
    benchmark::RegisterBenchmark(("intra_lower/" + std::string(Name)).c_str(),
                                 BM_IntraAtLowerBound, Name);
    benchmark::RegisterBenchmark(("chaitin32/" + std::string(Name)).c_str(),
                                 BM_Chaitin32, Name);
  }
  for (int I = 0; I < 3; ++I)
    benchmark::RegisterBenchmark(
        ("inter_thread/S" + std::to_string(I + 1)).c_str(),
        BM_InterThreadScenario, I);

  std::vector<std::string> ArgStorage;
  std::vector<char *> ArgPtrs;
  argv = rewriteJsonFlagForGoogleBenchmark("alloc_compile_time", argc, argv, ArgStorage,
                                           ArgPtrs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
