//===- BatchPipeline.cpp --------------------------------------------------===//

#include "driver/BatchPipeline.h"

#include "alloc/AllocationVerifier.h"
#include "analysis/LiveRangeRenaming.h"
#include "asmparse/AsmParser.h"
#include "driver/AnalysisCache.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "profile/StaticFrequencyEstimator.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <fstream>
#include <sstream>

using namespace npral;

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Run one input through the full pipeline. Touches only its own result
/// (and the shared AnalysisCache, which synchronises internally).
/// \p ProfileHash is the content hash of Opts.Profile (0 when absent),
/// computed once by runBatch and folded into every cache key.
BatchJobResult processOne(const BatchJob &In, const BatchOptions &Opts,
                          AnalysisCache *Cache, uint64_t ProfileHash) {
  BatchJobResult R;
  R.Name = In.Name.empty() ? In.Path : In.Name;

  // Stage 1: parse (or adopt the in-memory program).
  MultiThreadProgram MTP;
  {
    const int64_t T0 = nowNs();
    if (!In.Path.empty()) {
      std::ifstream Stream(In.Path);
      if (!Stream) {
        R.FailReason = "cannot open '" + In.Path + "'";
        return R;
      }
      std::ostringstream Buf;
      Buf << Stream.rdbuf();
      ErrorOr<MultiThreadProgram> Parsed = parseAssembly(Buf.str());
      if (!Parsed.ok()) {
        R.ParseNs = nowNs() - T0;
        R.FailReason = Parsed.status().str();
        return R;
      }
      MTP = Parsed.take();
    } else {
      MTP = In.Program;
    }
    R.ParseNs = nowNs() - T0;
  }
  R.NumThreads = MTP.getNumThreads();
  if (R.NumThreads == 0) {
    R.FailReason = "no threads";
    return R;
  }

  // Stage 2+3: per-thread rename, analysis and bounds, through the cache.
  // Alongside, resolve each thread's cost model: a collected profile wins
  // (matched by code hash), then the static estimator, then unit weights.
  std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
  std::vector<CostModel> Models;
  Bundles.reserve(MTP.Threads.size());
  Models.reserve(MTP.Threads.size());
  for (Program &T : MTP.Threads) {
    if (Status S = verifyProgram(T); !S.ok()) {
      R.FailReason = "thread '" + T.Name + "': " + S.str();
      return R;
    }
    const int64_t T0 = nowNs();
    T = renameLiveRanges(T);
    const std::string Text = programToString(T);
    const uint64_t ContentHash = fnv1aHash(Text);

    CostModel CM;
    const ThreadProfile *TP =
        Opts.Profile ? Opts.Profile->findByCodeHash(ContentHash) : nullptr;
    if (TP) {
      ++R.ProfiledThreads;
      const int ProfIdx =
          static_cast<int>(TP - Opts.Profile->Threads.data());
      CM = Opts.Profile->costModel(ProfIdx, T.getNumBlocks());
    } else if (Opts.StaticPGO) {
      CM = estimateCostModel(T);
    }
    Models.push_back(std::move(CM));

    std::shared_ptr<const ThreadAnalysisBundle> Bundle;
    if (Cache) {
      // The bundle itself is weight-independent, but folding the profile
      // hash keeps the cache partitioned per (program, profile) pair so a
      // long-lived shared cache never crosses PGO configurations.
      const uint64_t Key = fnv1aCombine(ContentHash, ProfileHash);
      Bundle = Cache->lookup(Key, Text);
      if (Bundle) {
        ++R.CacheHits;
        R.AnalysisNs += nowNs() - T0;
      } else {
        ++R.CacheMisses;
        auto Fresh = std::make_shared<ThreadAnalysisBundle>();
        Fresh->TA = analyzeThread(T);
        const int64_t T1 = nowNs();
        R.AnalysisNs += T1 - T0;
        Fresh->Bounds = estimateRegBounds(Fresh->TA);
        R.BoundsNs += nowNs() - T1;
        Bundle = Cache->insert(Key, Text, std::move(Fresh));
      }
    } else {
      auto Fresh = std::make_shared<ThreadAnalysisBundle>();
      Fresh->TA = analyzeThread(T);
      const int64_t T1 = nowNs();
      R.AnalysisNs += T1 - T0;
      Fresh->Bounds = estimateRegBounds(Fresh->TA);
      R.BoundsNs += nowNs() - T1;
      Bundle = std::move(Fresh);
    }
    // Analysis precondition: no path may read an undefined register. The
    // bundle's liveness answers this without extra dataflow.
    if (Status S = checkNoUseOfUndef(T, Bundle->TA.Liveness); !S.ok()) {
      R.FailReason = "thread '" + T.Name + "': " + S.str();
      return R;
    }
    Bundles.push_back(std::move(Bundle));
  }

  // Stage 4: inter/intra allocation.
  InterThreadResult Alloc;
  {
    const int64_t T0 = nowNs();
    Alloc = allocateInterThread(MTP, Opts.Nreg, Bundles, Models);
    R.AllocNs = nowNs() - T0;
  }
  if (!Alloc.Success) {
    R.FailReason = "allocation failed: " + Alloc.FailReason;
    return R;
  }
  R.RegistersUsed = Alloc.RegistersUsed;
  R.SGR = Alloc.SGR;
  R.TotalMoveCost = Alloc.TotalMoveCost;
  R.TotalWeightedCost = Alloc.TotalWeightedCost;

  // Stage 5: independent cross-thread safety verification.
  if (Opts.Verify) {
    const int64_t T0 = nowNs();
    Status Safety = verifyAllocationSafety(Alloc.Physical);
    R.VerifyNs = nowNs() - T0;
    if (!Safety.ok()) {
      R.FailReason = "unsafe allocation: " + Safety.str();
      return R;
    }
  }

  if (Opts.KeepPhysical)
    R.Physical = std::move(Alloc.Physical);
  R.Success = true;
  return R;
}

} // namespace

BatchResult npral::runBatch(const std::vector<BatchJob> &Inputs,
                            const BatchOptions &Opts, AnalysisCache *Cache) {
  BatchResult Out;
  Out.Results.resize(Inputs.size());

  AnalysisCache LocalCache;
  if (!Cache && Opts.UseCache)
    Cache = &LocalCache;

  // One hash per batch, not per job: the profile is immutable for the run.
  // A distinct constant tag separates static-PGO runs from unweighted ones
  // in a shared cache (the bundles are identical, but keeping the key
  // spaces apart makes hit/miss accounting per configuration exact).
  uint64_t ProfileHash = 0;
  if (Opts.Profile)
    ProfileHash = Opts.Profile->contentHash();
  else if (Opts.StaticPGO)
    ProfileHash = fnv1aHash("static-pgo");

  const int64_t Wall0 = nowNs();
  {
    ThreadPool Pool(Opts.Jobs);
    parallelFor(Pool, static_cast<int>(Inputs.size()), [&](int I) {
      Out.Results[static_cast<size_t>(I)] =
          processOne(Inputs[static_cast<size_t>(I)], Opts, Cache, ProfileHash);
    });
  }
  Out.Stats.WallNs = nowNs() - Wall0;

  Out.Stats.Programs = static_cast<int>(Inputs.size());
  Out.Stats.Jobs = std::max(1, Opts.Jobs);
  Out.Stats.CacheEnabled = Cache != nullptr;
  for (const BatchJobResult &R : Out.Results) {
    (R.Success ? Out.Stats.Succeeded : Out.Stats.Failed) += 1;
    Out.Stats.CacheHits += R.CacheHits;
    Out.Stats.CacheMisses += R.CacheMisses;
    Out.Stats.ParseNs += R.ParseNs;
    Out.Stats.AnalysisNs += R.AnalysisNs;
    Out.Stats.BoundsNs += R.BoundsNs;
    Out.Stats.AllocNs += R.AllocNs;
    Out.Stats.VerifyNs += R.VerifyNs;
  }
  return Out;
}

void PipelineStats::renderText(std::ostream &OS) const {
  auto ms = [](int64_t Ns) { return static_cast<double>(Ns) / 1e6; };
  OS << formatString("batch: %d programs, %d ok, %d failed, jobs=%d\n",
                     Programs, Succeeded, Failed, Jobs);
  OS << formatString(
      "stages (ms): parse %.2f  analysis %.2f  bounds %.2f  alloc %.2f  "
      "verify %.2f\n",
      ms(ParseNs), ms(AnalysisNs), ms(BoundsNs), ms(AllocNs), ms(VerifyNs));
  if (CacheEnabled)
    OS << formatString("cache: %lld hits, %lld misses (%.1f%% hit rate)\n",
                       static_cast<long long>(CacheHits),
                       static_cast<long long>(CacheMisses),
                       cacheHitRate() * 100.0);
  else
    OS << "cache: disabled\n";
  OS << formatString("wall: %.2f ms (%.1f programs/s)\n", ms(WallNs),
                     throughput());
}

void PipelineStats::renderJSON(std::ostream &OS) const {
  OS << "{\n";
  OS << "  \"programs\": " << Programs << ",\n";
  OS << "  \"succeeded\": " << Succeeded << ",\n";
  OS << "  \"failed\": " << Failed << ",\n";
  OS << "  \"jobs\": " << Jobs << ",\n";
  OS << "  \"cache\": {\"enabled\": " << (CacheEnabled ? "true" : "false")
     << ", \"hits\": " << CacheHits << ", \"misses\": " << CacheMisses
     << formatString(", \"hit_rate\": %.4f}", cacheHitRate()) << ",\n";
  OS << "  \"stages_ns\": {\"parse\": " << ParseNs
     << ", \"analysis\": " << AnalysisNs << ", \"bounds\": " << BoundsNs
     << ", \"alloc\": " << AllocNs << ", \"verify\": " << VerifyNs << "},\n";
  OS << "  \"wall_ns\": " << WallNs << ",\n";
  OS << formatString("  \"throughput_programs_per_sec\": %.2f\n",
                     throughput());
  OS << "}\n";
}
