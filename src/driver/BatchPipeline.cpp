//===- BatchPipeline.cpp --------------------------------------------------===//

#include "driver/BatchPipeline.h"

#include "alloc/AllocationVerifier.h"
#include "analysis/LiveRangeRenaming.h"
#include "asmparse/AsmParser.h"
#include "driver/AnalysisCache.h"
#include "harden/SpillFallback.h"
#include "harden/Watchdog.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "lint/TranslationValidator.h"
#include "profile/StaticFrequencyEstimator.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "trace/MetricsRegistry.h"
#include "trace/TraceEngine.h"

#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>

using namespace npral;

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Run one input through the full pipeline. Touches only its own result
/// (and the shared AnalysisCache, which synchronises internally).
/// \p ProfileHash is the content hash of Opts.Profile (0 when absent),
/// computed once by runBatch and folded into every cache key.
/// \p AllowSpill overrides Opts.AllowSpill so the degraded retry can
/// re-run a strict job in spill-permitted mode.
BatchJobResult processOne(const BatchJob &In, const BatchOptions &Opts,
                          AnalysisCache *Cache, uint64_t ProfileHash,
                          bool AllowSpill) {
  BatchJobResult R;
  R.Name = In.Name.empty() ? In.Path : In.Name;
  NPRAL_TRACE_SPAN_ARGS("batch", "job", {"name", R.Name});

  // Every early return below fills FailStage + FailCode so the failed[]
  // report can say *where* and *why* without parsing the message.
  auto fail = [&R](const char *Stage, StatusCode Code,
                   std::string Reason) -> BatchJobResult & {
    R.FailStage = Stage;
    R.FailCode = Code;
    R.FailReason = std::move(Reason);
    return R;
  };

  // Stage 1: parse (or adopt the in-memory program).
  MultiThreadProgram MTP;
  {
    NPRAL_TRACE_SPAN_ARGS("batch", "parse", {"name", R.Name});
    const int64_t T0 = nowNs();
    if (Status F = Opts.Faults.check("parse", R.Name); !F.ok())
      return fail("parse", F.code(), F.str());
    if (!In.Path.empty()) {
      std::ifstream Stream(In.Path);
      if (!Stream)
        return fail("parse", StatusCode::IOError,
                    "cannot open '" + In.Path + "'");
      std::ostringstream Buf;
      Buf << Stream.rdbuf();
      ErrorOr<MultiThreadProgram> Parsed = parseAssembly(Buf.str());
      if (!Parsed.ok()) {
        R.ParseNs = nowNs() - T0;
        return fail("parse", Parsed.status().code(), Parsed.status().str());
      }
      MTP = Parsed.take();
    } else if (!In.Text.empty()) {
      ErrorOr<MultiThreadProgram> Parsed = parseAssembly(In.Text);
      if (!Parsed.ok()) {
        R.ParseNs = nowNs() - T0;
        return fail("parse", Parsed.status().code(), Parsed.status().str());
      }
      MTP = Parsed.take();
    } else {
      MTP = In.Program;
    }
    R.ParseNs = nowNs() - T0;
  }
  R.NumThreads = MTP.getNumThreads();
  if (R.NumThreads == 0)
    return fail("parse", StatusCode::InvalidIR, "no threads");

  // Stage 2+3: per-thread rename, analysis and bounds, through the cache.
  // Alongside, resolve each thread's cost model: a collected profile wins
  // (matched by code hash), then the static estimator, then unit weights.
  std::vector<std::shared_ptr<const ThreadAnalysisBundle>> Bundles;
  std::vector<CostModel> Models;
  Bundles.reserve(MTP.Threads.size());
  Models.reserve(MTP.Threads.size());
  if (Status F = Opts.Faults.check("analysis", R.Name); !F.ok())
    return fail("analysis", F.code(), F.str());
  for (Program &T : MTP.Threads) {
    NPRAL_TRACE_SPAN_ARGS("batch", "analysis", {"name", R.Name},
                          {"thread", T.Name});
    if (Status S = verifyProgram(T); !S.ok())
      return fail("analysis", S.code(), "thread '" + T.Name + "': " + S.str());
    const int64_t T0 = nowNs();
    T = renameLiveRanges(T);
    // Cache keying runs on the flat binary encoding — no assembly print in
    // the hot path. Collected profiles are keyed by printed-text hash (the
    // collector's convention), so only profile-carrying runs pay for one.
    const std::string Text = encodeProgram(T);
    const uint64_t ContentHash = fnv1aHash(Text);

    CostModel CM;
    const ThreadProfile *TP =
        Opts.Profile
            ? Opts.Profile->findByCodeHash(fnv1aHash(programToString(T)))
            : nullptr;
    if (TP) {
      ++R.ProfiledThreads;
      const int ProfIdx =
          static_cast<int>(TP - Opts.Profile->Threads.data());
      CM = Opts.Profile->costModel(ProfIdx, T.getNumBlocks());
    } else if (Opts.StaticPGO) {
      CM = estimateCostModel(T);
    }
    Models.push_back(std::move(CM));

    std::shared_ptr<const ThreadAnalysisBundle> Bundle;
    if (Cache) {
      if (Status F = Opts.Faults.check("cache", R.Name); !F.ok())
        return fail("analysis", F.code(), F.str());
      // The bundle itself is weight-independent, but folding the profile
      // hash keeps the cache partitioned per (program, profile) pair so a
      // long-lived shared cache never crosses PGO configurations.
      const uint64_t Key = fnv1aCombine(ContentHash, ProfileHash);
      Bundle = Cache->lookup(Key, Text);
      if (Bundle) {
        ++R.CacheHits;
        R.AnalysisNs += nowNs() - T0;
        NPRAL_TRACE_INSTANT("batch", "cache-hit", {{"thread", T.Name}});
      } else {
        ++R.CacheMisses;
        NPRAL_TRACE_INSTANT("batch", "cache-miss", {{"thread", T.Name}});
        auto Fresh = std::make_shared<ThreadAnalysisBundle>();
        Fresh->TA = analyzeThread(T);
        const int64_t T1 = nowNs();
        R.AnalysisNs += T1 - T0;
        Fresh->Bounds = estimateRegBounds(Fresh->TA);
        R.BoundsNs += nowNs() - T1;
        Bundle = Cache->insert(Key, Text, std::move(Fresh));
      }
    } else {
      auto Fresh = std::make_shared<ThreadAnalysisBundle>();
      Fresh->TA = analyzeThread(T);
      const int64_t T1 = nowNs();
      R.AnalysisNs += T1 - T0;
      Fresh->Bounds = estimateRegBounds(Fresh->TA);
      R.BoundsNs += nowNs() - T1;
      Bundle = std::move(Fresh);
    }
    // Analysis precondition: no path may read an undefined register. The
    // bundle's liveness answers this without extra dataflow.
    if (Status S = checkNoUseOfUndef(T, Bundle->TA.Liveness); !S.ok())
      return fail("analysis", S.code(), "thread '" + T.Name + "': " + S.str());
    Bundles.push_back(std::move(Bundle));
  }

  // Stage 4: inter/intra allocation, under the per-job watchdog. The
  // deadline cancels the Fig. 8 loop cooperatively; an expired job fails
  // with DeadlineExceeded instead of wedging its worker.
  InterThreadResult Alloc;
  {
    NPRAL_TRACE_SPAN_ARGS("batch", "alloc", {"name", R.Name});
    if (Status F = Opts.Faults.check("alloc", R.Name); !F.ok())
      return fail("alloc", F.code(), F.str());
    const int64_t T0 = nowNs();
    Watchdog Dog(Opts.DeadlineMs);
    InterAllocLimits Limits;
    Limits.Cancel = Dog.cancelFlag();
    if (AllowSpill) {
      SpillFallbackOptions SpillOpts;
      SpillOpts.MaxSpills = Opts.MaxSpills;
      SpillFallbackResult SF = allocateWithSpillFallback(
          MTP, Opts.Nreg, Bundles, Models, nullptr, Limits, SpillOpts);
      Alloc = std::move(SF.Inter);
      R.UsedSpilling = SF.UsedSpilling;
      R.SpilledRanges = SF.SpilledRanges;
    } else {
      Alloc = allocateInterThread(MTP, Opts.Nreg, Bundles, Models, nullptr,
                                  Limits);
    }
    R.AllocNs = nowNs() - T0;
    R.WatchdogFired = Dog.fired();
  }
  if (!Alloc.Success)
    return fail("alloc",
                Alloc.FailCode == StatusCode::Ok ? StatusCode::Generic
                                                 : Alloc.FailCode,
                "allocation failed: " + Alloc.FailReason);
  R.RegistersUsed = Alloc.RegistersUsed;
  R.SGR = Alloc.SGR;
  R.TotalMoveCost = Alloc.TotalMoveCost;
  R.TotalWeightedCost = Alloc.TotalWeightedCost;

  // Stage 5: independent cross-thread safety verification.
  if (Opts.Verify) {
    NPRAL_TRACE_SPAN_ARGS("batch", "verify", {"name", R.Name});
    const int64_t T0 = nowNs();
    Status Safety = verifyAllocationSafety(Alloc.Physical);
    R.VerifyNs = nowNs() - T0;
    if (!Safety.ok())
      return fail("verify", StatusCode::Internal,
                  "unsafe allocation: " + Safety.str());
  }

  // Stage 6: translation validation — prove the physical output computes
  // exactly what the renamed virtual program (still held in MTP; allocation
  // does not mutate its input) computes. Spill-degraded outputs are proved
  // against the same pre-spill reference.
  if (Opts.Validate) {
    NPRAL_TRACE_SPAN_ARGS("batch", "validate", {"name", R.Name});
    const int64_t T0 = nowNs();
    DiagnosticEngine Diags;
    ValidationResult V = validateTranslation(MTP, Alloc.Physical, Diags);
    R.ValidateNs = nowNs() - T0;
    if (!V.Proved) {
      const Diagnostic *First = Diags.firstError();
      return fail("validate", StatusCode::Internal,
                  "translation validation refuted the allocation: " +
                      (First ? First->Message
                             : std::string("program shape mismatch")));
    }
    R.Validated = true;
  }

  if (Opts.KeepPhysical)
    R.Physical = std::move(Alloc.Physical);
  R.Success = true;
  return R;
}

/// The fault-isolation wrapper both entry points share: processOne with an
/// exception net and the bounded degraded retry. Whatever the job does
/// lands in its returned result, never in the caller's control flow.
BatchJobResult runIsolated(const BatchJob &In, const BatchOptions &Opts,
                           AnalysisCache *Cache, uint64_t ProfileHash) {
  try {
    BatchJobResult R =
        processOne(In, Opts, Cache, ProfileHash, Opts.AllowSpill);
    if (!R.Success && !Opts.AllowSpill && Opts.RetryDegraded &&
        R.FailCode == StatusCode::Infeasible) {
      // One bounded retry in degraded mode: only for budget failures
      // (a deadline or parse error would fail identically again).
      BatchJobResult Retry =
          processOne(In, Opts, Cache, ProfileHash, /*AllowSpill=*/true);
      Retry.Retried = true;
      return Retry;
    }
    return R;
  } catch (const std::exception &E) {
    BatchJobResult R;
    R.Name = In.Name.empty() ? In.Path : In.Name;
    R.FailStage = "internal";
    R.FailCode = StatusCode::Internal;
    R.FailReason = std::string("uncaught exception: ") + E.what();
    return R;
  }
}

/// The cache-key partition tag for a run: a loaded profile's content hash
/// wins, then the static-PGO constant, then the caller's override.
uint64_t resolveProfileHash(const BatchOptions &Opts, uint64_t Override) {
  if (Opts.Profile)
    return Opts.Profile->contentHash();
  if (Opts.StaticPGO)
    return fnv1aHash("static-pgo");
  return Override;
}

} // namespace

BatchJobResult npral::runSingleJob(const BatchJob &In,
                                   const BatchOptions &Opts,
                                   AnalysisCache *Cache,
                                   uint64_t ProfileHash) {
  return runIsolated(In, Opts, Cache, resolveProfileHash(Opts, ProfileHash));
}

BatchResult npral::runBatch(const std::vector<BatchJob> &Inputs,
                            const BatchOptions &Opts, AnalysisCache *Cache) {
  NPRAL_TRACE_SPAN_ARGS("batch", "runBatch",
                        {"programs", std::to_string(Inputs.size())},
                        {"jobs", std::to_string(std::max(1, Opts.Jobs))});
  BatchResult Out;
  Out.Results.resize(Inputs.size());

  AnalysisCache LocalCache(Opts.CacheBytes);
  if (!Cache && Opts.UseCache)
    Cache = &LocalCache;

  // One hash per batch, not per job: the profile is immutable for the run.
  // A distinct constant tag separates static-PGO runs from unweighted ones
  // in a shared cache (the bundles are identical, but keeping the key
  // spaces apart makes hit/miss accounting per configuration exact).
  const uint64_t ProfileHash = resolveProfileHash(Opts, 0);

  // The per-run registry is the source of truth for batch counters; the
  // legacy PipelineStats struct is reconstructed from it below and the
  // instruments then fold into the process-wide registry.
  MetricsRegistry RunMetrics;

  const int64_t Wall0 = nowNs();
  {
    ThreadPool Pool(Opts.Jobs);
    parallelFor(Pool, static_cast<int>(Inputs.size()), [&](int I) {
      const BatchJob &In = Inputs[static_cast<size_t>(I)];
      BatchJobResult &Slot = Out.Results[static_cast<size_t>(I)];
      const int64_t Job0 = nowNs();
      // Fault isolation: whatever one item does — fail a stage, blow a
      // deadline, or throw — lands in its own result slot; the batch and
      // its siblings continue.
      Slot = runIsolated(In, Opts, Cache, ProfileHash);
      RunMetrics.histogram("batch.job_wall_ns").observe(nowNs() - Job0);
    });
  }

  RunMetrics.counter("batch.programs")
      .add(static_cast<int64_t>(Inputs.size()));
  RunMetrics.gauge("batch.jobs").set(std::max(1, Opts.Jobs));
  RunMetrics.gauge("batch.cache.enabled").set(Cache != nullptr ? 1 : 0);
  for (const BatchJobResult &R : Out.Results) {
    RunMetrics.counter(R.Success ? "batch.succeeded" : "batch.failed")
        .increment();
    if (R.UsedSpilling)
      RunMetrics.counter("batch.degraded").increment();
    if (R.Retried)
      RunMetrics.counter("batch.retried").increment();
    if (R.WatchdogFired || R.FailCode == StatusCode::DeadlineExceeded)
      RunMetrics.counter("batch.deadline_exceeded").increment();
    if (R.FailCode == StatusCode::FaultInjected)
      RunMetrics.counter("batch.faults_injected").increment();
    if (R.Validated)
      RunMetrics.counter("batch.validated").increment();
    if (R.FailStage == "validate")
      RunMetrics.counter("batch.validate_failed").increment();
    RunMetrics.counter("batch.cache.hits").add(R.CacheHits);
    RunMetrics.counter("batch.cache.misses").add(R.CacheMisses);
    RunMetrics.counter("batch.stage.parse_ns").add(R.ParseNs);
    RunMetrics.counter("batch.stage.analysis_ns").add(R.AnalysisNs);
    RunMetrics.counter("batch.stage.bounds_ns").add(R.BoundsNs);
    RunMetrics.counter("batch.stage.alloc_ns").add(R.AllocNs);
    RunMetrics.counter("batch.stage.verify_ns").add(R.VerifyNs);
    RunMetrics.counter("batch.stage.validate_ns").add(R.ValidateNs);
  }
  RunMetrics.counter("batch.wall_ns").add(nowNs() - Wall0);

  Out.Stats = PipelineStats::fromRegistry(RunMetrics);
  MetricsRegistry::global().merge(RunMetrics);
  return Out;
}

void PipelineStats::toRegistry(MetricsRegistry &MR) const {
  MR.counter("batch.programs").add(Programs);
  MR.counter("batch.succeeded").add(Succeeded);
  MR.counter("batch.failed").add(Failed);
  MR.gauge("batch.jobs").set(Jobs);
  MR.gauge("batch.cache.enabled").set(CacheEnabled ? 1 : 0);
  MR.counter("batch.cache.hits").add(CacheHits);
  MR.counter("batch.cache.misses").add(CacheMisses);
  MR.counter("batch.stage.parse_ns").add(ParseNs);
  MR.counter("batch.stage.analysis_ns").add(AnalysisNs);
  MR.counter("batch.stage.bounds_ns").add(BoundsNs);
  MR.counter("batch.stage.alloc_ns").add(AllocNs);
  MR.counter("batch.stage.verify_ns").add(VerifyNs);
  MR.counter("batch.wall_ns").add(WallNs);
  MR.counter("batch.degraded").add(Degraded);
  MR.counter("batch.retried").add(Retried);
  MR.counter("batch.deadline_exceeded").add(DeadlineExceeded);
  MR.counter("batch.faults_injected").add(FaultsInjected);
  MR.counter("batch.validated").add(Validated);
  MR.counter("batch.validate_failed").add(ValidateFailed);
  MR.counter("batch.stage.validate_ns").add(ValidateNs);
}

PipelineStats PipelineStats::fromRegistry(const MetricsRegistry &MR) {
  PipelineStats S;
  S.Programs = static_cast<int>(MR.counterValue("batch.programs"));
  S.Succeeded = static_cast<int>(MR.counterValue("batch.succeeded"));
  S.Failed = static_cast<int>(MR.counterValue("batch.failed"));
  S.Jobs = std::max<int>(1, static_cast<int>(MR.gaugeValue("batch.jobs")));
  S.CacheEnabled = MR.gaugeValue("batch.cache.enabled") != 0;
  S.CacheHits = MR.counterValue("batch.cache.hits");
  S.CacheMisses = MR.counterValue("batch.cache.misses");
  S.ParseNs = MR.counterValue("batch.stage.parse_ns");
  S.AnalysisNs = MR.counterValue("batch.stage.analysis_ns");
  S.BoundsNs = MR.counterValue("batch.stage.bounds_ns");
  S.AllocNs = MR.counterValue("batch.stage.alloc_ns");
  S.VerifyNs = MR.counterValue("batch.stage.verify_ns");
  S.WallNs = MR.counterValue("batch.wall_ns");
  S.Degraded = static_cast<int>(MR.counterValue("batch.degraded"));
  S.Retried = static_cast<int>(MR.counterValue("batch.retried"));
  S.DeadlineExceeded =
      static_cast<int>(MR.counterValue("batch.deadline_exceeded"));
  S.FaultsInjected =
      static_cast<int>(MR.counterValue("batch.faults_injected"));
  S.Validated = static_cast<int>(MR.counterValue("batch.validated"));
  S.ValidateFailed =
      static_cast<int>(MR.counterValue("batch.validate_failed"));
  S.ValidateNs = MR.counterValue("batch.stage.validate_ns");
  if (const Histogram *H = MR.findHistogram("batch.job_wall_ns")) {
    S.JobWallCount = H->count();
    S.JobWallP50Ns = H->percentile(50);
    S.JobWallP95Ns = H->percentile(95);
    S.JobWallP99Ns = H->percentile(99);
  }
  return S;
}

void PipelineStats::renderText(std::ostream &OS) const {
  auto ms = [](int64_t Ns) { return static_cast<double>(Ns) / 1e6; };
  OS << formatString("batch: %d programs, %d ok, %d failed, jobs=%d\n",
                     Programs, Succeeded, Failed, Jobs);
  OS << formatString(
      "stages (ms): parse %.2f  analysis %.2f  bounds %.2f  alloc %.2f  "
      "verify %.2f\n",
      ms(ParseNs), ms(AnalysisNs), ms(BoundsNs), ms(AllocNs), ms(VerifyNs));
  if (CacheEnabled)
    OS << formatString("cache: %lld hits, %lld misses (%.1f%% hit rate)\n",
                       static_cast<long long>(CacheHits),
                       static_cast<long long>(CacheMisses),
                       cacheHitRate() * 100.0);
  else
    OS << "cache: disabled\n";
  // Robustness line only when something robustness-related happened, so
  // healthy runs keep their historical byte-stable output.
  if (Degraded || Retried || DeadlineExceeded || FaultsInjected)
    OS << formatString(
        "harden: %d degraded, %d retried, %d deadline-exceeded, "
        "%d faults injected\n",
        Degraded, Retried, DeadlineExceeded, FaultsInjected);
  // Same convention for the validation line: only --validate runs have
  // nonzero counters, so plain runs keep their historical output.
  if (Validated || ValidateFailed)
    OS << formatString("validate: %d proved, %d refuted (%.2f ms)\n",
                       Validated, ValidateFailed, ms(ValidateNs));
  OS << formatString("wall: %.2f ms (%.1f programs/s)\n", ms(WallNs),
                     throughput());
}

void PipelineStats::renderJSON(std::ostream &OS) const {
  OS << "{\n";
  OS << "  \"programs\": " << Programs << ",\n";
  OS << "  \"succeeded\": " << Succeeded << ",\n";
  OS << "  \"failed\": " << Failed << ",\n";
  OS << "  \"jobs\": " << Jobs << ",\n";
  OS << "  \"cache\": {\"enabled\": " << (CacheEnabled ? "true" : "false")
     << ", \"hits\": " << CacheHits << ", \"misses\": " << CacheMisses
     << formatString(", \"hit_rate\": %.4f}", cacheHitRate()) << ",\n";
  OS << "  \"stages_ns\": {\"parse\": " << ParseNs
     << ", \"analysis\": " << AnalysisNs << ", \"bounds\": " << BoundsNs
     << ", \"alloc\": " << AllocNs << ", \"verify\": " << VerifyNs << "},\n";
  if (Degraded || Retried || DeadlineExceeded || FaultsInjected)
    OS << "  \"harden\": {\"degraded\": " << Degraded
       << ", \"retried\": " << Retried
       << ", \"deadline_exceeded\": " << DeadlineExceeded
       << ", \"faults_injected\": " << FaultsInjected << "},\n";
  if (Validated || ValidateFailed)
    OS << "  \"validate\": {\"proved\": " << Validated
       << ", \"refuted\": " << ValidateFailed
       << ", \"ns\": " << ValidateNs << "},\n";
  // Job-latency percentiles come from the batch.job_wall_ns histogram and
  // only exist for real runs; synthetic stats keep their golden output.
  if (JobWallCount > 0)
    OS << "  \"job_wall_ns\": {\"count\": " << JobWallCount
       << ", \"p50\": " << JobWallP50Ns << ", \"p95\": " << JobWallP95Ns
       << ", \"p99\": " << JobWallP99Ns << "},\n";
  OS << "  \"wall_ns\": " << WallNs << ",\n";
  OS << formatString("  \"throughput_programs_per_sec\": %.2f\n",
                     throughput());
  OS << "}\n";
}
