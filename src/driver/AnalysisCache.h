//===- AnalysisCache.h - Content-addressed analysis artifacts ---*- C++ -*-===//
///
/// \file
/// A concurrent, content-hash-keyed store of per-thread analysis bundles
/// (liveness, NSR decomposition, GIG/BIG/IIG, register bounds). The batch
/// pipeline keys each renamed thread by an FNV-1a hash of its flat binary
/// encoding (encodeProgram below): fixed-width words covering every field
/// that analysis can observe, byte-stable by construction, so equal bytes
/// mean equal analysis input. Repeated programs and shared kernels across
/// batch jobs then reuse one immutable bundle instead of re-running the
/// dataflow — and keying never pays for an assembly print.
///
/// Soundness against hash collisions: a 64-bit content hash can collide,
/// and serving another program's bundle would silently corrupt allocation.
/// Every entry therefore stores the encoding it was computed from;
/// lookup() compares it against the caller's bytes and treats a mismatch as
/// a miss (counted separately as a collision). The hash is only an index —
/// correctness rests on the byte comparison.
///
/// Integrity against corruption: each entry also records a checksum of its
/// stored assembly at insert time. A lookup that finds the stored text no
/// longer matching its own checksum — truncation or bit-rot of the entry
/// itself, as opposed to a key collision — evicts the entry, counts a miss,
/// and bumps the corruption counter (`cache.corrupt_entries` in the global
/// registry), so a damaged entry costs one recomputation instead of
/// poisoning every later hit. corruptEntryForTesting() plants such damage
/// deliberately for the forced-corruption test.
///
/// Thread safety: lookup and insert are individually atomic. Two workers
/// that miss on the same key may both compute the bundle; the first insert
/// wins and the loser's copy is dropped — wasted work, never wrong results,
/// because bundles for equal content are identical.
///
/// Bounding: an optional byte budget (constructor argument) turns
/// the store into an LRU cache. Every entry is charged an approximate
/// footprint (stored encoding + an estimate of the analysis bundle, which
/// scales with the encoding); when an insert pushes the total past the
/// budget, least-recently-used entries are evicted until it fits. Eviction
/// only ever costs a recomputation — a bundle handed out by lookup() is a
/// shared_ptr, so in-flight users keep their copy alive. The default budget
/// of 0 means unbounded, keeping one-shot batch behavior identical; the
/// long-running serve daemon always sets a budget. `cache.evictions` and
/// `cache.bytes` in the global MetricsRegistry track the bound's activity.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_DRIVER_ANALYSISCACHE_H
#define NPRAL_DRIVER_ANALYSISCACHE_H

#include "alloc/IntraAllocator.h"
#include "ir/Program.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace npral {

/// Flat binary encoding of \p P's analysis-relevant content: thread name,
/// register count, entry block, entry-live list, block structure (fall-
/// throughs) and every instruction field, all as fixed-width little-endian
/// words. Two programs encode equally iff their printed assembly parses to
/// the same IR modulo debug names (register and block labels are excluded —
/// analysis bundles are ID-based and never look at names). Encoding is a
/// straight sweep over the IR with no string formatting, so keying the
/// cache costs memcpy-speed instead of a full assembly print.
std::string encodeProgram(const Program &P);

/// FNV-1a hash of \p P's flat encoding — the cache key. Any difference in
/// thread name, structure or instruction bytes changes the key; debug
/// names do not (they do not affect analysis results).
uint64_t hashProgramContent(const Program &P);

class AnalysisCache {
public:
  /// \p MaxBytes caps the approximate footprint of stored entries; 0 (the
  /// default) keeps the cache unbounded.
  explicit AnalysisCache(int64_t MaxBytes = 0) : MaxBytes(MaxBytes) {}

  /// Bundle for \p Key, or null on a miss. \p Text must be the flat
  /// encoding the key was hashed from; an entry whose stored bytes differ
  /// is a hash collision — it is never served, counts as a miss, and bumps
  /// the collision counter.
  std::shared_ptr<const ThreadAnalysisBundle>
  lookup(uint64_t Key, std::string_view Text) const;

  /// Store \p Bundle (computed from the program encoded as \p Text) under
  /// \p Key. If another worker inserted the key first, that entry is kept
  /// and returned instead — even when it holds a colliding program's
  /// bundle, in which case the caller's fresh bundle is handed back
  /// unshared rather than poisoning the table.
  std::shared_ptr<const ThreadAnalysisBundle>
  insert(uint64_t Key, std::string Text,
         std::shared_ptr<const ThreadAnalysisBundle> Bundle);

  int64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  int64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  /// Entries dropped to keep the store under its byte budget.
  int64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  /// Approximate footprint of the stored entries, in bytes.
  int64_t bytes() const { return Bytes.load(std::memory_order_relaxed); }
  /// The byte budget; 0 = unbounded.
  int64_t maxBytes() const { return MaxBytes; }
  /// Lookups whose key matched an entry with different program text.
  int64_t collisions() const {
    return Collisions.load(std::memory_order_relaxed);
  }
  /// Entries evicted because their stored text failed its checksum.
  int64_t corruptions() const {
    return Corruptions.load(std::memory_order_relaxed);
  }
  size_t size() const;

  /// Damage the stored text of the entry under \p Key (truncating it
  /// without refreshing the checksum) so the next lookup exercises the
  /// corruption path. Returns false when the key has no entry. Test hook;
  /// production code never mutates stored entries.
  bool corruptEntryForTesting(uint64_t Key);

private:
  struct Entry {
    std::string Text;
    /// FNV-1a of Text at insert time; revalidated on every lookup.
    uint64_t TextSum = 0;
    std::shared_ptr<const ThreadAnalysisBundle> Bundle;
    /// Approximate footprint charged against the byte budget.
    int64_t Cost = 0;
    /// This entry's position in Lru (most recent at the front).
    std::list<uint64_t>::iterator LruIt;
  };

  /// Remove the entry at \p It, uncharging its cost. Caller holds Mutex.
  void eraseLocked(std::unordered_map<uint64_t, Entry>::iterator It) const;
  /// Evict LRU entries until the footprint fits MaxBytes. Caller holds
  /// Mutex. Entries named in \p Protect (the one just inserted) survive
  /// even when they alone exceed the budget — an oversized entry lives
  /// until the next insert rather than thrashing every lookup.
  void enforceBudgetLocked(uint64_t Protect) const;

  const int64_t MaxBytes;
  mutable std::mutex Mutex;
  mutable std::unordered_map<uint64_t, Entry> Entries;
  /// LRU order over Entries' keys; front = most recently used.
  mutable std::list<uint64_t> Lru;
  mutable std::atomic<int64_t> Hits{0};
  mutable std::atomic<int64_t> Misses{0};
  mutable std::atomic<int64_t> Collisions{0};
  mutable std::atomic<int64_t> Corruptions{0};
  mutable std::atomic<int64_t> Evictions{0};
  mutable std::atomic<int64_t> Bytes{0};
};

} // namespace npral

#endif // NPRAL_DRIVER_ANALYSISCACHE_H
