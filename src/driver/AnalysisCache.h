//===- AnalysisCache.h - Content-addressed analysis artifacts ---*- C++ -*-===//
///
/// \file
/// A concurrent, content-hash-keyed store of per-thread analysis bundles
/// (liveness, NSR decomposition, GIG/BIG/IIG, register bounds). The batch
/// pipeline keys each renamed thread by an FNV-1a hash of its printed
/// assembly: the printer is byte-stable and print -> parse is a fixed
/// point (both guarded by the round-trip golden tests), so equal text means
/// equal analysis input. Repeated programs and shared kernels across batch
/// jobs then reuse one immutable bundle instead of re-running the dataflow.
///
/// Thread safety: lookup and insert are individually atomic. Two workers
/// that miss on the same key may both compute the bundle; the first insert
/// wins and the loser's copy is dropped — wasted work, never wrong results,
/// because bundles for equal content are identical.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_DRIVER_ANALYSISCACHE_H
#define NPRAL_DRIVER_ANALYSISCACHE_H

#include "alloc/IntraAllocator.h"
#include "ir/Program.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace npral {

/// FNV-1a hash of \p P's printed assembly — the cache key. Includes the
/// thread name, entry-live list, block structure and every instruction, so
/// any observable difference between programs changes the key.
uint64_t hashProgramContent(const Program &P);

class AnalysisCache {
public:
  /// Bundle for \p Key, or null on a miss. Bumps the hit/miss counters.
  std::shared_ptr<const ThreadAnalysisBundle> lookup(uint64_t Key) const;

  /// Store \p Bundle under \p Key. If another worker inserted the key
  /// first, that entry is kept and returned instead.
  std::shared_ptr<const ThreadAnalysisBundle>
  insert(uint64_t Key, std::shared_ptr<const ThreadAnalysisBundle> Bundle);

  int64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  int64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::unordered_map<uint64_t, std::shared_ptr<const ThreadAnalysisBundle>>
      Entries;
  mutable std::atomic<int64_t> Hits{0};
  mutable std::atomic<int64_t> Misses{0};
};

} // namespace npral

#endif // NPRAL_DRIVER_ANALYSISCACHE_H
