//===- AnalysisCache.cpp --------------------------------------------------===//

#include "driver/AnalysisCache.h"

#include "support/StringUtils.h"
#include "trace/MetricsRegistry.h"

#include <cstring>

using namespace npral;

namespace {

void append64(std::string &Out, uint64_t V) {
  char Buf[8];
  for (int I = 0; I < 8; ++I)
    Buf[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  Out.append(Buf, 8);
}

/// Approximate footprint of an entry holding \p Text plus its analysis
/// bundle. The bundle's liveness bitvectors, interference rows and NSR
/// tables all scale with the program's instruction count, which the flat
/// encoding tracks linearly — a small multiple of the encoding plus a
/// fixed overhead is a sound working estimate for budget enforcement (the
/// bound is a resource guard, not an accountant's ledger).
int64_t entryCost(const std::string &Text) {
  return static_cast<int64_t>(Text.size()) * 4 + 512;
}

} // namespace

std::string npral::encodeProgram(const Program &P) {
  std::string Out;
  // Rough sizing: 4 words per instruction + small per-block overhead.
  Out.reserve(64 + P.Name.size() +
              static_cast<size_t>(P.countInstructions()) * 32 +
              P.Blocks.size() * 16);
  append64(Out, P.Name.size());
  Out += P.Name;
  append64(Out, static_cast<uint64_t>(static_cast<uint32_t>(P.NumRegs)) |
                    (static_cast<uint64_t>(P.IsPhysical) << 32));
  append64(Out, static_cast<uint64_t>(static_cast<uint32_t>(P.EntryBlock)));
  append64(Out, P.EntryLiveRegs.size());
  for (Reg R : P.EntryLiveRegs)
    append64(Out, static_cast<uint64_t>(static_cast<uint32_t>(R)));
  append64(Out, P.Blocks.size());
  for (const BasicBlock &BB : P.Blocks) {
    append64(Out,
             static_cast<uint64_t>(static_cast<uint32_t>(BB.FallThrough)) |
                 (static_cast<uint64_t>(BB.Instrs.size()) << 32));
    for (const Instruction &I : BB.Instrs) {
      append64(Out, static_cast<uint64_t>(static_cast<uint32_t>(I.Op)) |
                        (static_cast<uint64_t>(static_cast<uint32_t>(I.Def))
                         << 32));
      append64(Out, static_cast<uint64_t>(static_cast<uint32_t>(I.Use1)) |
                        (static_cast<uint64_t>(static_cast<uint32_t>(I.Use2))
                         << 32));
      append64(Out, static_cast<uint64_t>(I.Imm));
      append64(Out, static_cast<uint64_t>(static_cast<uint32_t>(I.Target)));
    }
  }
  return Out;
}

uint64_t npral::hashProgramContent(const Program &P) {
  return fnv1aHash(encodeProgram(P));
}

void AnalysisCache::eraseLocked(
    std::unordered_map<uint64_t, Entry>::iterator It) const {
  Bytes.fetch_sub(It->second.Cost, std::memory_order_relaxed);
  Lru.erase(It->second.LruIt);
  Entries.erase(It);
  if (MaxBytes > 0)
    MetricsRegistry::global().gauge("cache.bytes").set(
        Bytes.load(std::memory_order_relaxed));
}

void AnalysisCache::enforceBudgetLocked(uint64_t Protect) const {
  if (MaxBytes <= 0)
    return;
  while (Bytes.load(std::memory_order_relaxed) > MaxBytes && !Lru.empty()) {
    uint64_t Victim = Lru.back();
    if (Victim == Protect) {
      // The protected (just-inserted) entry is the oldest one left; the
      // budget is simply smaller than one entry. Keep it — evicting the
      // entry its own insert paid for would make every insert a no-op.
      break;
    }
    auto It = Entries.find(Victim);
    eraseLocked(It);
    Evictions.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("cache.evictions").increment();
  }
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::lookup(uint64_t Key, std::string_view Text) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (fnv1aHash(It->second.Text) != It->second.TextSum) {
    // The entry itself is damaged (truncated or bit-rotted after insert):
    // serving it — or even comparing against it — is meaningless. Evict so
    // the caller recomputes and reinserts a sound entry.
    eraseLocked(It);
    Corruptions.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("cache.corrupt_entries").increment();
    return nullptr;
  }
  if (It->second.Text != Text) {
    // Same 64-bit hash, different program: serving the stored bundle would
    // be unsound. Report a miss so the caller recomputes.
    Collisions.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  // A hit is a use: move to the LRU front so hot kernels outlive one-off
  // programs under a byte budget.
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Bundle;
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::insert(uint64_t Key, std::string Text,
                      std::shared_ptr<const ThreadAnalysisBundle> Bundle) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    if (It->second.Text != Text)
      // The slot is occupied by a colliding program; keep the table as-is
      // and let the caller proceed with its own (correct) bundle.
      return Bundle;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return It->second.Bundle;
  }
  const uint64_t Sum = fnv1aHash(Text);
  const int64_t Cost = entryCost(Text);
  Lru.push_front(Key);
  Entries.emplace(Key, Entry{std::move(Text), Sum, Bundle, Cost,
                             Lru.begin()});
  Bytes.fetch_add(Cost, std::memory_order_relaxed);
  if (MaxBytes > 0) {
    enforceBudgetLocked(Key);
    MetricsRegistry::global().gauge("cache.bytes").set(
        Bytes.load(std::memory_order_relaxed));
  }
  return Bundle;
}

bool AnalysisCache::corruptEntryForTesting(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return false;
  It->second.Text.resize(It->second.Text.size() / 2);
  return true;
}

size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}
