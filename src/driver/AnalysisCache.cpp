//===- AnalysisCache.cpp --------------------------------------------------===//

#include "driver/AnalysisCache.h"

#include "ir/IRPrinter.h"

using namespace npral;

uint64_t npral::hashProgramContent(const Program &P) {
  const std::string Text = programToString(P);
  uint64_t Hash = 1469598103934665603ULL;
  for (char C : Text) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::lookup(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::insert(uint64_t Key,
                      std::shared_ptr<const ThreadAnalysisBundle> Bundle) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Entries.emplace(Key, std::move(Bundle));
  return It->second;
}

size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}
