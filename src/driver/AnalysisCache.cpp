//===- AnalysisCache.cpp --------------------------------------------------===//

#include "driver/AnalysisCache.h"

#include "ir/IRPrinter.h"
#include "support/StringUtils.h"

using namespace npral;

uint64_t npral::hashProgramContent(const Program &P) {
  return fnv1aHash(programToString(P));
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::lookup(uint64_t Key, std::string_view Text) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (It->second.Text != Text) {
    // Same 64-bit hash, different program: serving the stored bundle would
    // be unsound. Report a miss so the caller recomputes.
    Collisions.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second.Bundle;
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::insert(uint64_t Key, std::string Text,
                      std::shared_ptr<const ThreadAnalysisBundle> Bundle) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    if (It->second.Text != Text)
      // The slot is occupied by a colliding program; keep the table as-is
      // and let the caller proceed with its own (correct) bundle.
      return Bundle;
    return It->second.Bundle;
  }
  Entries.emplace(Key, Entry{std::move(Text), Bundle});
  return Bundle;
}

size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}
