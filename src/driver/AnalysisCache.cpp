//===- AnalysisCache.cpp --------------------------------------------------===//

#include "driver/AnalysisCache.h"

#include "ir/IRPrinter.h"
#include "support/StringUtils.h"
#include "trace/MetricsRegistry.h"

using namespace npral;

uint64_t npral::hashProgramContent(const Program &P) {
  return fnv1aHash(programToString(P));
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::lookup(uint64_t Key, std::string_view Text) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (fnv1aHash(It->second.Text) != It->second.TextSum) {
    // The entry itself is damaged (truncated or bit-rotted after insert):
    // serving it — or even comparing against it — is meaningless. Evict so
    // the caller recomputes and reinserts a sound entry.
    Entries.erase(It);
    Corruptions.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("cache.corrupt_entries").increment();
    return nullptr;
  }
  if (It->second.Text != Text) {
    // Same 64-bit hash, different program: serving the stored bundle would
    // be unsound. Report a miss so the caller recomputes.
    Collisions.fetch_add(1, std::memory_order_relaxed);
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second.Bundle;
}

std::shared_ptr<const ThreadAnalysisBundle>
AnalysisCache::insert(uint64_t Key, std::string Text,
                      std::shared_ptr<const ThreadAnalysisBundle> Bundle) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    if (It->second.Text != Text)
      // The slot is occupied by a colliding program; keep the table as-is
      // and let the caller proceed with its own (correct) bundle.
      return Bundle;
    return It->second.Bundle;
  }
  const uint64_t Sum = fnv1aHash(Text);
  Entries.emplace(Key, Entry{std::move(Text), Sum, Bundle});
  return Bundle;
}

bool AnalysisCache::corruptEntryForTesting(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return false;
  It->second.Text.resize(It->second.Text.size() / 2);
  return true;
}

size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}
