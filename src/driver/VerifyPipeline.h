//===- VerifyPipeline.h - Batched translation validation --------*- C++ -*-===//
///
/// \file
/// The `npralc verify` pipeline as a library: for each input file, run the
/// allocator and then the translation validator
/// (lint/TranslationValidator.h), which proves — or refutes, with a
/// structured witness — that the physical output computes exactly what the
/// renamed virtual program computes.
///
/// Two modes per file:
///   - allocate mode (default): parse, rename live ranges, allocate (with
///     optional spill fallback and PGO weighting), validate the allocator's
///     own output against the renamed input;
///   - paired mode: the file itself carries both halves of the proof
///     obligation — the first half of its threads is the virtual program,
///     the second half a hand-written physical program (registers named
///     p<N>, mapped by mapNamedPhysicalRegisters). This is how deliberate
///     miscompiles like examples/asm/bad_swap.s are checked.
///
/// Files are distributed over a ThreadPool; each job writes only its own
/// result slot and its diagnostics are sorted by program position, so the
/// rendered report is byte-identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_DRIVER_VERIFYPIPELINE_H
#define NPRAL_DRIVER_VERIFYPIPELINE_H

#include "profile/ExecutionProfile.h"
#include "support/DiagnosticEngine.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace npral {

struct VerifyOptions {
  /// Register file size handed to the allocator (allocate mode).
  int Nreg = 128;
  /// Worker threads in the pool (clamped to >= 1).
  int Jobs = 1;
  /// Permit spill-based graceful degradation for infeasible budgets; the
  /// degraded output is still proved against the pre-spill reference.
  bool AllowSpill = false;
  /// Live ranges the spill fallback may demote per file.
  int MaxSpills = 64;
  /// Weight move costs by 10^loop-depth for threads no profile covers.
  bool StaticPGO = false;
  /// Execution profile applied database-style (threads matched by code
  /// hash, like the batch pipeline); must outlive the run.
  const ExecutionProfile *Profile = nullptr;
  /// Paired mode: split each file's threads in half and check the second
  /// (physical, p<N>-named) half against the first instead of allocating.
  bool Paired = false;
};

/// Outcome of one input file.
struct VerifyFileResult {
  std::string Name;
  /// True when the validator proved the translation.
  bool Proved = false;
  /// Nonempty when the file never reached the validator (I/O, parse or
  /// allocation failure); such a file counts as an error, not a rejection.
  std::string FailReason;
  int ThreadsProved = 0;
  int64_t InstructionsMatched = 0;
  int64_t CopiesInterpreted = 0;
  /// True when the allocation came from the spill fallback.
  bool UsedSpilling = false;
  /// Validator diagnostics, sorted by program position (deterministic
  /// across worker counts). Empty on a proof.
  std::vector<Diagnostic> Diags;
};

struct VerifyResult {
  /// One entry per input, in input order regardless of worker scheduling.
  std::vector<VerifyFileResult> Files;
  int Proved = 0;   ///< Files whose translation the validator proved.
  int Rejected = 0; ///< Files the validator refuted.
  int Errors = 0;   ///< Files that never reached the validator.

  bool allProved() const { return Rejected == 0 && Errors == 0; }
  /// Warning-severity diagnostics across all files (for --Werror).
  int warningCount() const;

  /// Render one section per file plus a trailing summary line.
  void renderText(std::ostream &OS) const;
  /// Render the whole report as a JSON object with stable key order;
  /// byte-identical for any VerifyOptions::Jobs.
  void renderJSON(std::ostream &OS) const;
};

/// Run the verify pipeline over \p Paths with \p Opts.
VerifyResult runVerify(const std::vector<std::string> &Paths,
                       const VerifyOptions &Opts);

} // namespace npral

#endif // NPRAL_DRIVER_VERIFYPIPELINE_H
