//===- VerifyPipeline.cpp -------------------------------------------------===//

#include "driver/VerifyPipeline.h"

#include "alloc/InterAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "asmparse/AsmParser.h"
#include "harden/SpillFallback.h"
#include "ir/IRPrinter.h"
#include "lint/Lint.h"
#include "lint/TranslationValidator.h"
#include "profile/StaticFrequencyEstimator.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "trace/MetricsRegistry.h"
#include "trace/TraceEngine.h"

#include <exception>
#include <fstream>
#include <sstream>

using namespace npral;

namespace {

/// Check one file; writes only \p Out. Diagnostics end up sorted by
/// program position so the result is independent of worker scheduling.
void verifyOne(const std::string &Path, const VerifyOptions &Opts,
               VerifyFileResult &Out) {
  Out.Name = Path;
  NPRAL_TRACE_SPAN_ARGS("verify", "file", {"name", Path});

  std::ifstream Stream(Path);
  if (!Stream) {
    Out.FailReason = "cannot open '" + Path + "'";
    return;
  }
  std::ostringstream Buf;
  Buf << Stream.rdbuf();
  ErrorOr<MultiThreadProgram> Parsed = parseAssembly(Buf.str());
  if (!Parsed.ok()) {
    Out.FailReason = Parsed.status().str();
    return;
  }
  MultiThreadProgram MTP = Parsed.take();

  MultiThreadProgram Virt, Phys;
  if (Opts.Paired) {
    // The file carries both sides of the proof obligation: virtual threads
    // first, then the same number of hand-written physical threads.
    if (MTP.getNumThreads() < 2 || MTP.getNumThreads() % 2 != 0) {
      Out.FailReason = "paired mode needs an even number of threads "
                       "(virtual half followed by physical half)";
      return;
    }
    const int Half = MTP.getNumThreads() / 2;
    Virt.Name = MTP.Name;
    Phys.Name = MTP.Name;
    for (int T = 0; T < Half; ++T)
      Virt.Threads.push_back(MTP.Threads[static_cast<size_t>(T)]);
    for (int T = Half; T < MTP.getNumThreads(); ++T)
      Phys.Threads.push_back(MTP.Threads[static_cast<size_t>(T)]);
    if (Status S = mapNamedPhysicalRegisters(Phys); !S.ok()) {
      Out.FailReason = S.str();
      return;
    }
  } else {
    // Allocate mode: the validator checks the allocator's own output
    // against the renamed input, exactly as the batch pipeline would.
    for (Program &T : MTP.Threads)
      T = renameLiveRanges(T);
    std::vector<CostModel> Models;
    if (Opts.Profile || Opts.StaticPGO) {
      Models.reserve(MTP.Threads.size());
      for (const Program &T : MTP.Threads) {
        CostModel CM;
        const ThreadProfile *TP =
            Opts.Profile
                ? Opts.Profile->findByCodeHash(fnv1aHash(programToString(T)))
                : nullptr;
        if (TP) {
          const int ProfIdx =
              static_cast<int>(TP - Opts.Profile->Threads.data());
          CM = Opts.Profile->costModel(ProfIdx, T.getNumBlocks());
        } else if (Opts.StaticPGO) {
          CM = estimateCostModel(T);
        }
        Models.push_back(std::move(CM));
      }
    }
    InterThreadResult Alloc;
    if (Opts.AllowSpill) {
      SpillFallbackOptions SpillOpts;
      SpillOpts.MaxSpills = Opts.MaxSpills;
      SpillFallbackResult SF = allocateWithSpillFallback(
          MTP, Opts.Nreg, {}, Models, nullptr, InterAllocLimits(), SpillOpts);
      Alloc = std::move(SF.Inter);
      Out.UsedSpilling = SF.UsedSpilling;
    } else {
      Alloc = allocateInterThread(MTP, Opts.Nreg, {}, Models, nullptr);
    }
    if (!Alloc.Success) {
      Out.FailReason = "allocation failed: " + Alloc.FailReason;
      return;
    }
    Virt = std::move(MTP);
    Phys = std::move(Alloc.Physical);
  }

  DiagnosticEngine Engine;
  ValidationResult V =
      validateTranslation(Virt, Phys, Engine, &MetricsRegistry::global());
  Engine.sortByPosition();
  Out.Proved = V.Proved;
  Out.ThreadsProved = V.ThreadsProved;
  Out.InstructionsMatched = V.InstructionsMatched;
  Out.CopiesInterpreted = V.CopiesInterpreted;
  Out.Diags = Engine.diagnostics();
}

} // namespace

VerifyResult npral::runVerify(const std::vector<std::string> &Paths,
                              const VerifyOptions &Opts) {
  NPRAL_TRACE_SPAN_ARGS("verify", "runVerify",
                        {"files", std::to_string(Paths.size())},
                        {"jobs", std::to_string(std::max(1, Opts.Jobs))});
  VerifyResult Out;
  Out.Files.resize(Paths.size());
  {
    ThreadPool Pool(Opts.Jobs);
    parallelFor(Pool, static_cast<int>(Paths.size()), [&](int I) {
      VerifyFileResult &Slot = Out.Files[static_cast<size_t>(I)];
      try {
        verifyOne(Paths[static_cast<size_t>(I)], Opts, Slot);
      } catch (const std::exception &E) {
        Slot = VerifyFileResult();
        Slot.Name = Paths[static_cast<size_t>(I)];
        Slot.FailReason = std::string("uncaught exception: ") + E.what();
      }
    });
  }
  for (const VerifyFileResult &F : Out.Files) {
    if (!F.FailReason.empty())
      ++Out.Errors;
    else if (F.Proved)
      ++Out.Proved;
    else
      ++Out.Rejected;
  }
  return Out;
}

int VerifyResult::warningCount() const {
  int N = 0;
  for (const VerifyFileResult &F : Files)
    for (const Diagnostic &D : F.Diags)
      if (D.Sev == Severity::Warning)
        ++N;
  return N;
}

void VerifyResult::renderText(std::ostream &OS) const {
  for (const VerifyFileResult &F : Files) {
    if (!F.FailReason.empty()) {
      OS << F.Name << ": error: " << F.FailReason << "\n";
      continue;
    }
    if (F.Proved) {
      OS << F.Name << ": proved (" << F.ThreadsProved << " thread(s), "
         << F.InstructionsMatched << " instruction(s) matched, "
         << F.CopiesInterpreted << " copies interpreted)"
         << (F.UsedSpilling ? " [degraded]" : "") << "\n";
      continue;
    }
    OS << F.Name << ": REJECTED\n";
    for (const Diagnostic &D : F.Diags) {
      OS << "  " << formatDiagnostic(D) << "\n";
      if (!D.Witness.empty())
        OS << "      witness: " << D.Witness << "\n";
    }
  }
  OS << Proved << " proved, " << Rejected << " rejected, " << Errors
     << " error(s)\n";
}

void VerifyResult::renderJSON(std::ostream &OS) const {
  OS << "{\n  \"files\": [";
  for (size_t I = 0; I < Files.size(); ++I) {
    const VerifyFileResult &F = Files[I];
    OS << (I ? ",\n    {" : "\n    {");
    OS << "\"name\": ";
    writeJSONString(OS, F.Name);
    OS << ", \"status\": ";
    writeJSONString(OS, !F.FailReason.empty() ? "error"
                        : F.Proved            ? "proved"
                                              : "rejected");
    OS << ", \"fail_reason\": ";
    writeJSONString(OS, F.FailReason);
    OS << ", \"threads_proved\": " << F.ThreadsProved;
    OS << ", \"instructions_matched\": " << F.InstructionsMatched;
    OS << ", \"copies_interpreted\": " << F.CopiesInterpreted;
    OS << ", \"degraded\": " << (F.UsedSpilling ? "true" : "false");
    OS << ", \"diagnostics\": [";
    for (size_t J = 0; J < F.Diags.size(); ++J) {
      const Diagnostic &D = F.Diags[J];
      OS << (J ? ", {" : "{");
      OS << "\"severity\": ";
      writeJSONString(OS, getSeverityName(D.Sev));
      OS << ", \"check\": ";
      writeJSONString(OS, D.Check);
      OS << ", \"thread\": ";
      writeJSONString(OS, D.Thread);
      OS << ", \"block\": " << D.Block;
      OS << ", \"instr\": " << D.Instr;
      OS << ", \"message\": ";
      writeJSONString(OS, D.Message);
      OS << ", \"witness\": ";
      writeJSONString(OS, D.Witness);
      OS << "}";
    }
    OS << "]}";
  }
  OS << (Files.empty() ? "]" : "\n  ]");
  OS << ",\n  \"proved\": " << Proved << ",\n  \"rejected\": " << Rejected
     << ",\n  \"errors\": " << Errors << "\n}\n";
}
