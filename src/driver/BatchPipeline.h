//===- BatchPipeline.h - Parallel batched allocation ------------*- C++ -*-===//
///
/// \file
/// The batch allocation pipeline: N input programs (assembly files or
/// in-memory MultiThreadPrograms) each run
///
///   parse -> live-range renaming -> liveness/NSR/interference ->
///   bounds estimation -> inter/intra allocation -> safety verification
///
/// across a fixed-size ThreadPool. Jobs are independent — each writes only
/// its own result slot — so the output is bit-identical for any worker
/// count. Per-thread analysis artifacts are memoised in a content-hash
/// keyed AnalysisCache, so repeated inputs and shared kernels skip the
/// dataflow recomputation.
///
/// Per-stage wall-clock and cache hit/miss counters are aggregated into a
/// PipelineStats, rendered as text or as JSON following the
/// DiagnosticEngine's conventions (stable key order, FNV-style escaping).
///
/// Fault isolation: one failing input never aborts the batch. Every
/// per-item error — malformed assembly, infeasible budget, expired
/// deadline, injected fault, even a C++ exception escaping a stage — is
/// captured in that item's BatchJobResult (stage, StatusCode, reason) and
/// the remaining items run to completion; BatchResult::failed() is the
/// resulting failed[] report. Optional per-job hardening: a watchdog
/// deadline over the allocation stage, spill-based graceful degradation
/// for infeasible budgets, and one bounded retry in degraded mode.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_DRIVER_BATCHPIPELINE_H
#define NPRAL_DRIVER_BATCHPIPELINE_H

#include "alloc/InterAllocator.h"
#include "harden/FaultInjector.h"
#include "ir/Program.h"
#include "profile/ExecutionProfile.h"
#include "support/Status.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace npral {

class AnalysisCache;
class MetricsRegistry;

struct BatchOptions {
  /// Register file size handed to the inter-thread allocator.
  int Nreg = 128;
  /// Worker threads in the pool (clamped to >= 1).
  int Jobs = 1;
  /// Memoise per-thread analyses in the AnalysisCache.
  bool UseCache = false;
  /// Byte budget for the run-local cache created when UseCache is set and
  /// no cache is supplied; 0 = unbounded (the historical batch behavior).
  /// Callers passing their own AnalysisCache configure the bound on it
  /// directly.
  int64_t CacheBytes = 0;
  /// Run the AllocationVerifier over every successful allocation.
  bool Verify = true;
  /// Run the translation validator over every successful allocation: a
  /// symbolic value-flow proof that the physical program computes exactly
  /// what the renamed virtual program computes (lint/TranslationValidator.h).
  /// Strictly stronger than Verify's safety check — it catches miscompiles,
  /// not just cross-thread clobbers — at roughly one extra dataflow pass
  /// per job. A refuted job fails in stage "validate".
  bool Validate = false;
  /// Retain each job's physical program in its result (costs memory; the
  /// CLI leaves it off, tests and the determinism suite turn it on).
  bool KeepPhysical = false;
  /// Execution profile to guide allocation (must outlive the batch).
  /// Threads are matched by code hash — a profile acts as a database: any
  /// job thread whose renamed program hashes to a profiled thread gets
  /// that thread's frequency weights; unmatched threads fall back to the
  /// static estimator when StaticPGO is set, else to the unit model. The
  /// profile's content hash is folded into every analysis-cache key so a
  /// shared cache never mixes runs with different profiles.
  const ExecutionProfile *Profile = nullptr;
  /// Weight blocks by 10^loop-depth (StaticFrequencyEstimator) when no
  /// collected profile covers a thread.
  bool StaticPGO = false;
  /// Permit spill-based graceful degradation: when the Fig. 8 loop reports
  /// an infeasible budget, demote cheap live ranges to scratch memory and
  /// retry (harden/SpillFallback.h). Feasible inputs are unaffected — their
  /// output is bit-identical with this on or off.
  bool AllowSpill = false;
  /// Live ranges the spill fallback may demote per job.
  int MaxSpills = 64;
  /// Retry a job that failed with an infeasible budget once more in
  /// degraded (spill-permitted) mode. Meaningful when AllowSpill is off:
  /// the first attempt stays strict and only the retry may degrade.
  bool RetryDegraded = false;
  /// Per-job allocation deadline in milliseconds; 0 disables the watchdog.
  /// An expired deadline cancels the Fig. 8 loop cooperatively and fails
  /// the job with StatusCode::DeadlineExceeded.
  int DeadlineMs = 0;
  /// Deterministic fault injection (disabled by default). Probes fire at
  /// the parse/analysis/cache/alloc stage entries of each job; an injected
  /// fault fails that job like any other input-dependent error — captured
  /// in its result slot, never aborting the batch.
  FaultInjector Faults;
};

/// One batch input: a path to an assembly file, in-memory assembly text
/// (the serve daemon's wire format), or an in-memory program (generated
/// workloads, tests). Precedence: Path, then Text, then Program.
struct BatchJob {
  /// Display name; defaults to Path when empty.
  std::string Name;
  /// Assembly file to parse; when empty, Text or Program is used.
  std::string Path;
  /// Assembly text to parse; when empty too, Program is used directly.
  std::string Text;
  MultiThreadProgram Program;
};

/// Outcome of one job.
struct BatchJobResult {
  std::string Name;
  bool Success = false;
  std::string FailReason;
  /// Pipeline stage that failed: "parse", "analysis", "bounds", "alloc",
  /// "verify", or "internal" for a captured exception. Empty on success.
  std::string FailStage;
  /// Classification of the failure; Ok on success.
  StatusCode FailCode = StatusCode::Ok;
  /// True when the job went through the bounded degraded retry (whether or
  /// not the retry then succeeded).
  bool Retried = false;
  /// True when the allocation deadline expired for this job.
  bool WatchdogFired = false;
  /// True when the job's allocation came from the spill fallback.
  bool UsedSpilling = false;
  /// True when translation validation ran and proved the job's output.
  bool Validated = false;
  /// Live ranges demoted to memory by the spill fallback.
  int SpilledRanges = 0;
  int NumThreads = 0;
  int RegistersUsed = 0;
  int SGR = 0;
  int TotalMoveCost = 0;
  /// Frequency-weighted total (== TotalMoveCost without PGO).
  int64_t TotalWeightedCost = 0;
  /// Threads whose code hash matched a profiled thread.
  int ProfiledThreads = 0;
  /// Analysis-cache hits/misses attributed to this job's threads.
  int64_t CacheHits = 0;
  int64_t CacheMisses = 0;
  /// Per-stage wall clock, nanoseconds.
  int64_t ParseNs = 0;
  int64_t AnalysisNs = 0;
  int64_t BoundsNs = 0;
  int64_t AllocNs = 0;
  int64_t VerifyNs = 0;
  int64_t ValidateNs = 0;
  /// Filled when BatchOptions::KeepPhysical.
  MultiThreadProgram Physical;
};

/// Aggregated batch counters.
struct PipelineStats {
  int Programs = 0;
  int Succeeded = 0;
  int Failed = 0;
  int Jobs = 1;
  bool CacheEnabled = false;
  int64_t CacheHits = 0;
  int64_t CacheMisses = 0;
  /// Per-stage wall clock summed over all jobs, nanoseconds. Stages on
  /// different workers overlap, so the sum can exceed WallNs.
  int64_t ParseNs = 0;
  int64_t AnalysisNs = 0;
  int64_t BoundsNs = 0;
  int64_t AllocNs = 0;
  int64_t VerifyNs = 0;
  /// End-to-end wall clock of the whole batch, nanoseconds.
  int64_t WallNs = 0;
  /// Robustness counters; all stay zero on a healthy run with hardening
  /// features off, and the renderers only mention them when nonzero, so
  /// the byte-stable golden outputs of plain runs are unchanged.
  int Degraded = 0;        ///< Jobs whose allocation used the spill fallback.
  int Retried = 0;         ///< Jobs sent through the degraded retry.
  int DeadlineExceeded = 0; ///< Jobs cancelled by the watchdog.
  int FaultsInjected = 0;  ///< Jobs failed by an injected fault.
  /// Translation-validation counters; like the robustness counters they
  /// stay zero (and unrendered) unless BatchOptions::Validate was on.
  int Validated = 0;       ///< Jobs whose output the validator proved.
  int ValidateFailed = 0;  ///< Jobs the validator refuted.
  int64_t ValidateNs = 0;  ///< Wall clock of the validate stage, summed.
  /// Per-job latency percentiles from the batch.job_wall_ns histogram
  /// (MetricsRegistry::Histogram::percentile). Rendered in the JSON output
  /// only when JobWallCount > 0, keeping synthetic stats (and their golden
  /// renders) unchanged.
  int64_t JobWallCount = 0;
  int64_t JobWallP50Ns = 0;
  int64_t JobWallP95Ns = 0;
  int64_t JobWallP99Ns = 0;

  /// Hits / (hits + misses); 0 when the cache saw no traffic.
  double cacheHitRate() const {
    const int64_t Total = CacheHits + CacheMisses;
    return Total > 0 ? static_cast<double>(CacheHits) / Total : 0.0;
  }
  /// Programs per second of end-to-end wall clock.
  double throughput() const {
    return WallNs > 0 ? Programs * 1e9 / static_cast<double>(WallNs) : 0.0;
  }

  void renderText(std::ostream &OS) const;
  void renderJSON(std::ostream &OS) const;

  /// Write every field into \p MR under the stable `batch.*` metric names
  /// (counters for additive fields, gauges for per-run configuration).
  void toRegistry(MetricsRegistry &MR) const;
  /// Reconstruct a PipelineStats from the `batch.*` instruments of \p MR —
  /// the inverse of toRegistry. runBatch aggregates into a per-run
  /// MetricsRegistry first (which then merges into the global registry);
  /// this adapter keeps the legacy struct and its byte-stable renderers on
  /// top of that source of truth.
  static PipelineStats fromRegistry(const MetricsRegistry &MR);
};

struct BatchResult {
  /// One entry per input, in input order regardless of worker scheduling.
  std::vector<BatchJobResult> Results;
  PipelineStats Stats;

  bool allSucceeded() const {
    for (const BatchJobResult &R : Results)
      if (!R.Success)
        return false;
    return true;
  }

  /// The failed jobs in input order — the batch's failed[] report. Each
  /// entry carries the stage, status code and reason of its failure.
  std::vector<const BatchJobResult *> failed() const {
    std::vector<const BatchJobResult *> Out;
    for (const BatchJobResult &R : Results)
      if (!R.Success)
        Out.push_back(&R);
    return Out;
  }
};

/// Run the pipeline over \p Inputs with \p Opts. When \p Cache is non-null
/// it is used (and warmed) regardless of BatchOptions::UseCache, which lets
/// callers share a warm cache across runs; with UseCache set and no cache
/// supplied, a run-local cache is created.
BatchResult runBatch(const std::vector<BatchJob> &Inputs,
                     const BatchOptions &Opts, AnalysisCache *Cache = nullptr);

/// Run ONE job through the pipeline with the full per-job fault-isolation
/// contract of runBatch: every failure — malformed input, infeasible
/// budget, expired deadline, injected fault, an escaping C++ exception —
/// is captured and classified in the returned BatchJobResult, never
/// thrown; the degraded retry applies under Opts.RetryDegraded. This is
/// the serve daemon's per-request entry point: one request, one isolated
/// result, a shared long-lived \p Cache across requests.
///
/// \p ProfileHash partitions a shared cache's key space the way a loaded
/// profile's content hash does in runBatch (serve clients pass an opaque
/// hash; 0 = the unpartitioned default). Opts.Profile / Opts.StaticPGO,
/// when set, take precedence exactly as in runBatch.
BatchJobResult runSingleJob(const BatchJob &In, const BatchOptions &Opts,
                            AnalysisCache *Cache = nullptr,
                            uint64_t ProfileHash = 0);

} // namespace npral

#endif // NPRAL_DRIVER_BATCHPIPELINE_H
