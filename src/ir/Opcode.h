//===- Opcode.h - NPRAL instruction set -------------------------*- C++ -*-===//
///
/// \file
/// The instruction set of the NPRAL target: a small RISC ISA modelled on the
/// ~40-instruction Intel IXP micro-engine ISA described in the paper. The
/// properties the register allocator depends on are:
///
///  * ALU instructions complete in one cycle;
///  * `load`/`store` take the memory latency (~20 cycles) and cause a
///    context switch (the thread yields the CPU while waiting);
///  * `ctx` voluntarily yields the CPU (1 cycle);
///  * a `load`'s destination value materialises only after the thread
///    resumes (transfer-register semantics), so the definition is *not*
///    live across the instruction's own context switch boundary.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_IR_OPCODE_H
#define NPRAL_IR_OPCODE_H

#include <string_view>

namespace npral {

enum class Opcode {
  // Data movement.
  Imm,  ///< rd = imm
  Mov,  ///< rd = rs

  // Three-address ALU.
  Add,
  Sub,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Mul,

  // Two-address ALU with immediate.
  AddI,
  SubI,
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI,
  MulI,

  // Unary ALU.
  Not, ///< rd = ~rs
  Neg, ///< rd = -rs

  // Memory (context-switching).
  Load,   ///< rd = mem[rs + imm]
  Store,  ///< mem[rs + imm] = rv
  LoadA,  ///< rd = mem[imm]    (absolute; used by spill code)
  StoreA, ///< mem[imm] = rv    (absolute; used by spill code)

  // Thread control.
  Ctx,    ///< voluntary context switch
  Signal, ///< post one token on channel #imm (1 cycle, yields)
  Wait,   ///< consume one token from channel #imm; blocks until available

  // Control flow.
  Br,   ///< unconditional branch to Target
  BrEq, ///< if rs1 == rs2 goto Target
  BrNe,
  BrLt, ///< signed <
  BrGe, ///< signed >=
  BrZ,  ///< if rs == 0 goto Target
  BrNz,

  // Functions (assembler level only: the machine has no call stack, so
  // `call` sites are expanded inline by the front end; neither opcode may
  // survive into a verified program).
  Call, ///< expand function #Target-name inline (front-end placeholder)
  Ret,  ///< return from a function body (replaced by a branch on expansion)

  // Program structure.
  Halt,    ///< thread finished
  LoopEnd, ///< zero-cost marker: one main-loop iteration completed
  Nop,
};

/// How an opcode's operands are laid out in Instruction fields.
enum class OperandShape {
  None,       ///< ctx, halt, loopend, nop
  DefImm,     ///< imm rd, #k
  DefUse,     ///< mov/not/neg rd, rs
  DefUseUse,  ///< add rd, rs1, rs2
  DefUseImm,  ///< addi rd, rs, #k;  load rd, [rs + #k]
  UseUseImm,  ///< store [rs + #k], rv
  UseImm,     ///< storea #k, rv
  ImmOnly,    ///< signal #k / wait #k
  Target,     ///< br label
  UseUseTarget, ///< beq rs1, rs2, label
  UseTarget,    ///< bz rs, label
};

/// Static per-opcode properties.
struct OpcodeInfo {
  std::string_view Mnemonic;
  OperandShape Shape;
  bool CausesCtxSwitch;
  bool IsBranch;     ///< transfers control to an explicit target
  bool IsTerminator; ///< ends the block with no fallthrough (br, halt)
};

/// Table lookup for \p Op; total over the enum.
const OpcodeInfo &getOpcodeInfo(Opcode Op);

/// Reverse lookup from mnemonic; returns true and sets \p Op on success.
bool parseOpcode(std::string_view Mnemonic, Opcode &Op);

/// Number of opcodes (for iteration in tests).
int getNumOpcodes();

} // namespace npral

#endif // NPRAL_IR_OPCODE_H
