//===- IRPrinter.cpp ------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include <sstream>

using namespace npral;

static std::string blockLabel(const Program &P, int BlockId) {
  if (BlockId == NoBlock)
    return "<none>";
  // The verifier formats malformed instructions, so a dangling target must
  // render instead of indexing out of range.
  if (BlockId < 0 || BlockId >= P.getNumBlocks())
    return "<invalid:" + std::to_string(BlockId) + ">";
  return std::string(P.blockName(BlockId));
}

std::string npral::formatInstruction(const Program &P, const Instruction &I) {
  const OpcodeInfo &Info = I.info();
  std::ostringstream OS;
  OS << Info.Mnemonic;

  auto reg = [&](Reg R) { return P.getRegName(R); };

  switch (Info.Shape) {
  case OperandShape::None:
    break;
  case OperandShape::DefImm:
    OS << ' ' << reg(I.Def) << ", " << I.Imm;
    break;
  case OperandShape::DefUse:
    OS << ' ' << reg(I.Def) << ", " << reg(I.Use1);
    break;
  case OperandShape::DefUseUse:
    OS << ' ' << reg(I.Def) << ", " << reg(I.Use1) << ", " << reg(I.Use2);
    break;
  case OperandShape::DefUseImm:
    if (I.Op == Opcode::Load)
      OS << ' ' << reg(I.Def) << ", [" << reg(I.Use1) << '+' << I.Imm << ']';
    else
      OS << ' ' << reg(I.Def) << ", " << reg(I.Use1) << ", " << I.Imm;
    break;
  case OperandShape::UseUseImm:
    OS << " [" << reg(I.Use1) << '+' << I.Imm << "], " << reg(I.Use2);
    break;
  case OperandShape::UseImm:
    OS << ' ' << I.Imm << ", " << reg(I.Use1);
    break;
  case OperandShape::ImmOnly:
    OS << ' ' << I.Imm;
    break;
  case OperandShape::Target:
    OS << ' ' << blockLabel(P, I.Target);
    break;
  case OperandShape::UseUseTarget:
    OS << ' ' << reg(I.Use1) << ", " << reg(I.Use2) << ", "
       << blockLabel(P, I.Target);
    break;
  case OperandShape::UseTarget:
    OS << ' ' << reg(I.Use1) << ", " << blockLabel(P, I.Target);
    break;
  }
  return OS.str();
}

void npral::printProgram(std::ostream &OS, const Program &P) {
  OS << ".thread " << (P.Name.empty() ? "unnamed" : P.Name) << '\n';
  if (!P.EntryLiveRegs.empty()) {
    OS << ".entrylive";
    for (size_t I = 0; I < P.EntryLiveRegs.size(); ++I)
      OS << (I ? ", " : " ") << P.getRegName(P.EntryLiveRegs[I]);
    OS << '\n';
  }
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    OS << P.blockName(B) << ":\n";
    for (const Instruction &I : BB.Instrs)
      OS << "    " << formatInstruction(P, I) << '\n';
    // Make fallthrough explicit when it is not the next block in layout
    // order; the parser re-derives implicit fallthrough from layout.
    bool EndsWithTerm = !BB.Instrs.empty() && BB.Instrs.back().isTerminator();
    if (!EndsWithTerm && BB.FallThrough != NoBlock && BB.FallThrough != B + 1)
      OS << "    br " << P.blockName(BB.FallThrough) << '\n';
  }
}

std::string npral::programToString(const Program &P) {
  std::ostringstream OS;
  printProgram(OS, P);
  return OS.str();
}
