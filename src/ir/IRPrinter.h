//===- IRPrinter.h - Textual form of programs -------------------*- C++ -*-===//
///
/// \file
/// Prints Programs in the assembly dialect accepted by the parser so that
/// print -> parse round trips are identity (modulo register renumbering).
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_IR_IRPRINTER_H
#define NPRAL_IR_IRPRINTER_H

#include "ir/Program.h"

#include <ostream>
#include <string>

namespace npral {

/// Render one instruction (no trailing newline). Branch targets are printed
/// as block names.
std::string formatInstruction(const Program &P, const Instruction &I);

/// Print a whole program in parseable assembly.
void printProgram(std::ostream &OS, const Program &P);

/// Convenience: printProgram into a string.
std::string programToString(const Program &P);

} // namespace npral

#endif // NPRAL_IR_IRPRINTER_H
