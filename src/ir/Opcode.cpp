//===- Opcode.cpp ---------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace npral;

namespace {

constexpr OpcodeInfo OpcodeTable[] = {
    // Mnemonic  Shape                       Ctx    Branch Term
    {"imm", OperandShape::DefImm, false, false, false},
    {"mov", OperandShape::DefUse, false, false, false},
    {"add", OperandShape::DefUseUse, false, false, false},
    {"sub", OperandShape::DefUseUse, false, false, false},
    {"and", OperandShape::DefUseUse, false, false, false},
    {"or", OperandShape::DefUseUse, false, false, false},
    {"xor", OperandShape::DefUseUse, false, false, false},
    {"shl", OperandShape::DefUseUse, false, false, false},
    {"shr", OperandShape::DefUseUse, false, false, false},
    {"mul", OperandShape::DefUseUse, false, false, false},
    {"addi", OperandShape::DefUseImm, false, false, false},
    {"subi", OperandShape::DefUseImm, false, false, false},
    {"andi", OperandShape::DefUseImm, false, false, false},
    {"ori", OperandShape::DefUseImm, false, false, false},
    {"xori", OperandShape::DefUseImm, false, false, false},
    {"shli", OperandShape::DefUseImm, false, false, false},
    {"shri", OperandShape::DefUseImm, false, false, false},
    {"muli", OperandShape::DefUseImm, false, false, false},
    {"not", OperandShape::DefUse, false, false, false},
    {"neg", OperandShape::DefUse, false, false, false},
    {"load", OperandShape::DefUseImm, true, false, false},
    {"store", OperandShape::UseUseImm, true, false, false},
    {"loada", OperandShape::DefImm, true, false, false},
    {"storea", OperandShape::UseImm, true, false, false},
    {"ctx", OperandShape::None, true, false, false},
    {"signal", OperandShape::ImmOnly, true, false, false},
    {"wait", OperandShape::ImmOnly, true, false, false},
    {"br", OperandShape::Target, false, true, true},
    {"beq", OperandShape::UseUseTarget, false, true, false},
    {"bne", OperandShape::UseUseTarget, false, true, false},
    {"blt", OperandShape::UseUseTarget, false, true, false},
    {"bge", OperandShape::UseUseTarget, false, true, false},
    {"bz", OperandShape::UseTarget, false, true, false},
    {"bnz", OperandShape::UseTarget, false, true, false},
    {"call", OperandShape::None, false, false, false},
    {"ret", OperandShape::None, false, false, true},
    {"halt", OperandShape::None, false, false, true},
    {"loopend", OperandShape::None, false, false, false},
    {"nop", OperandShape::None, false, false, false},
};

constexpr int NumOpcodes = sizeof(OpcodeTable) / sizeof(OpcodeTable[0]);

} // namespace

const OpcodeInfo &npral::getOpcodeInfo(Opcode Op) {
  int Index = static_cast<int>(Op);
  assert(Index >= 0 && Index < NumOpcodes && "opcode out of range");
  return OpcodeTable[Index];
}

bool npral::parseOpcode(std::string_view Mnemonic, Opcode &Op) {
  for (int I = 0; I < NumOpcodes; ++I) {
    if (OpcodeTable[I].Mnemonic == Mnemonic) {
      Op = static_cast<Opcode>(I);
      return true;
    }
  }
  return false;
}

int npral::getNumOpcodes() { return NumOpcodes; }
