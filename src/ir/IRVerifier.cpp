//===- IRVerifier.cpp -----------------------------------------------------===//

#include "ir/IRVerifier.h"

#include "ir/IRPrinter.h"
#include "support/StringUtils.h"

using namespace npral;

namespace {

class Verifier {
public:
  explicit Verifier(const Program &P) : P(P) {}

  Status run() {
    if (P.Blocks.empty())
      return fail("program has no blocks");
    if (P.EntryBlock < 0 || P.EntryBlock >= P.getNumBlocks())
      return fail("entry block out of range");
    for (int B = 0; B < P.getNumBlocks(); ++B) {
      if (Status S = checkBlock(B); !S.ok())
        return S;
    }
    for (Reg R : P.EntryLiveRegs)
      if (!regOk(R))
        return fail("entry-live register out of range");
    return Status::success();
  }

private:
  const Program &P;

  Status fail(const std::string &Message) const {
    return Status::error(StatusCode::InvalidIR,
                         "program '" + P.Name + "': " + Message);
  }

  bool regOk(Reg R) const { return R >= 0 && R < P.NumRegs; }
  bool blockOk(int B) const { return B >= 0 && B < P.getNumBlocks(); }

  Status checkBlock(int B) {
    const BasicBlock &BB = P.block(B);
    if (BB.Id != B)
      return fail("block ID mismatch at index " + std::to_string(B));

    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &Inst = BB.Instrs[I];
      if (Status S = checkInstruction(BB, Inst); !S.ok())
        return S;
      if (Status S = checkPosition(BB, I); !S.ok())
        return S;
    }

    // Every block needs an exit.
    bool EndsClosed = !BB.Instrs.empty() && (BB.Instrs.back().isTerminator());
    if (!EndsClosed && !blockOk(BB.FallThrough))
      return fail("block '" + std::string(P.blockName(B)) +
                  "' has no terminator and no valid "
                  "fallthrough");
    if (EndsClosed && BB.FallThrough != NoBlock)
      return fail("block '" + std::string(P.blockName(B)) +
                  "' has both a terminator and a "
                  "fallthrough");
    return Status::success();
  }

  Status checkInstruction(const BasicBlock &BB, const Instruction &I) {
    if (I.Op == Opcode::Call || I.Op == Opcode::Ret)
      return fail("in block '" + std::string(P.blockName(BB.Id)) + "': '" +
                  std::string(I.info().Mnemonic) +
                  "' must be expanded by the assembler and cannot appear in "
                  "a final program");
    const OpcodeInfo &Info = I.info();
    auto badShape = [&](const char *What) {
      return fail("in block '" + std::string(P.blockName(BB.Id)) +
                  "', instruction '" +
                  formatInstruction(P, I) + "': " + What);
    };

    bool NeedDef = false, NeedUse1 = false, NeedUse2 = false,
         NeedTarget = false;
    switch (Info.Shape) {
    case OperandShape::None:
      break;
    case OperandShape::DefImm:
      NeedDef = true;
      break;
    case OperandShape::DefUse:
      NeedDef = NeedUse1 = true;
      break;
    case OperandShape::DefUseUse:
      NeedDef = NeedUse1 = NeedUse2 = true;
      break;
    case OperandShape::DefUseImm:
      NeedDef = NeedUse1 = true;
      break;
    case OperandShape::UseUseImm:
      NeedUse1 = NeedUse2 = true;
      break;
    case OperandShape::UseImm:
      NeedUse1 = true;
      break;
    case OperandShape::ImmOnly:
      break;
    case OperandShape::Target:
      NeedTarget = true;
      break;
    case OperandShape::UseUseTarget:
      NeedUse1 = NeedUse2 = NeedTarget = true;
      break;
    case OperandShape::UseTarget:
      NeedUse1 = NeedTarget = true;
      break;
    }

    if (NeedDef != (I.Def != NoReg))
      return badShape("def slot does not match operand shape");
    if (NeedUse1 != (I.Use1 != NoReg))
      return badShape("use1 slot does not match operand shape");
    if (NeedUse2 != (I.Use2 != NoReg))
      return badShape("use2 slot does not match operand shape");
    if (NeedTarget != (I.Target != NoBlock))
      return badShape("target slot does not match operand shape");

    if (I.Def != NoReg && !regOk(I.Def))
      return badShape("def register out of range");
    if (I.Use1 != NoReg && !regOk(I.Use1))
      return badShape("use register out of range");
    if (I.Use2 != NoReg && !regOk(I.Use2))
      return badShape("use register out of range");
    if (I.Target != NoBlock && !blockOk(I.Target))
      return badShape("branch target out of range");
    return Status::success();
  }

  /// Branches and halt may only appear in terminator position; the single
  /// allowed exception is a conditional branch immediately followed by the
  /// block's final unconditional `br`.
  Status checkPosition(const BasicBlock &BB, size_t Index) {
    const Instruction &I = BB.Instrs[Index];
    bool IsControl = I.isBranch() || I.Op == Opcode::Halt;
    if (!IsControl)
      return Status::success();
    if (Index + 1 == BB.Instrs.size())
      return Status::success();
    bool CondBeforeFinalBr = I.isBranch() && I.Op != Opcode::Br &&
                             Index + 2 == BB.Instrs.size() &&
                             BB.Instrs.back().Op == Opcode::Br;
    if (CondBeforeFinalBr)
      return Status::success();
    return fail("control-flow instruction '" + formatInstruction(P, I) +
                "' in block '" + std::string(P.blockName(BB.Id)) +
                "' is not in terminator position");
  }
};

} // namespace

Status npral::verifyProgram(const Program &P) { return Verifier(P).run(); }

Status npral::verifyMultiThreadProgram(const MultiThreadProgram &MTP) {
  for (const Program &P : MTP.Threads)
    if (Status S = verifyProgram(P); !S.ok())
      return S;
  return Status::success();
}
