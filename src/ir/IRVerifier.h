//===- IRVerifier.h - Structural IR checks ----------------------*- C++ -*-===//
///
/// \file
/// Structural well-formedness checks for Programs. Analyses and the
/// allocators assume a verified program; tests call this after every
/// construction and transformation.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_IR_IRVERIFIER_H
#define NPRAL_IR_IRVERIFIER_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

namespace npral {

/// Check structural invariants of \p P:
///  * register IDs are in [0, NumRegs) and match the opcode's operand shape;
///  * branch targets and fallthroughs reference existing blocks;
///  * branches appear only in terminator position (a conditional branch may
///    be followed by one unconditional `br`);
///  * every block has an exit: a `br`/`halt` terminator or a fallthrough;
///  * the entry block exists.
Status verifyProgram(const Program &P);

/// Verify every thread of \p MTP.
Status verifyMultiThreadProgram(const MultiThreadProgram &MTP);

} // namespace npral

#endif // NPRAL_IR_IRVERIFIER_H
