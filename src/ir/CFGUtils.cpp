//===- CFGUtils.cpp -------------------------------------------------------===//

#include "ir/CFGUtils.h"

#include <algorithm>
#include <cassert>

using namespace npral;

std::vector<int> npral::computeImmediateDominators(const Program &P) {
  const int N = P.getNumBlocks();
  std::vector<int> Idom(static_cast<size_t>(N), -1);
  if (N == 0)
    return Idom;

  // RPO position of each block; unreachable blocks keep position -1 and are
  // skipped (computeRPO appends them after the reachable prefix).
  std::vector<int> Order = P.computeRPO();
  std::vector<int> Pos(static_cast<size_t>(N), -1);
  std::vector<bool> Reachable(static_cast<size_t>(N), false);
  {
    // computeRPO appends unreachable blocks; mark the truly reachable set
    // with a flood fill from the entry.
    std::vector<int> Stack{P.getEntryBlock()};
    while (!Stack.empty()) {
      int B = Stack.back();
      Stack.pop_back();
      if (Reachable[static_cast<size_t>(B)])
        continue;
      Reachable[static_cast<size_t>(B)] = true;
      for (int S : P.successors(B))
        Stack.push_back(S);
    }
  }
  for (int I = 0; I < N; ++I)
    Pos[static_cast<size_t>(Order[static_cast<size_t>(I)])] = I;

  std::vector<std::vector<int>> Preds = P.computePredecessors();
  Idom[static_cast<size_t>(P.getEntryBlock())] = P.getEntryBlock();

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (Pos[static_cast<size_t>(A)] > Pos[static_cast<size_t>(B)])
        A = Idom[static_cast<size_t>(A)];
      while (Pos[static_cast<size_t>(B)] > Pos[static_cast<size_t>(A)])
        B = Idom[static_cast<size_t>(B)];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B : Order) {
      if (B == P.getEntryBlock() || !Reachable[static_cast<size_t>(B)])
        continue;
      int NewIdom = -1;
      for (int Pred : Preds[static_cast<size_t>(B)]) {
        if (Idom[static_cast<size_t>(Pred)] < 0)
          continue; // not yet processed or unreachable
        NewIdom = NewIdom < 0 ? Pred : intersect(NewIdom, Pred);
      }
      if (NewIdom >= 0 && Idom[static_cast<size_t>(B)] != NewIdom) {
        Idom[static_cast<size_t>(B)] = NewIdom;
        Changed = true;
      }
    }
  }
  return Idom;
}

std::vector<std::pair<int, int>> npral::findBackEdges(const Program &P) {
  std::vector<int> Idom = computeImmediateDominators(P);
  auto dominates = [&](int A, int B) {
    // Walk B's dominator chain up to the entry looking for A.
    if (Idom[static_cast<size_t>(B)] < 0)
      return false; // B unreachable
    for (;;) {
      if (B == A)
        return true;
      int Up = Idom[static_cast<size_t>(B)];
      if (Up == B)
        return false; // reached the entry
      B = Up;
    }
  };
  std::vector<std::pair<int, int>> BackEdges;
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    if (Idom[static_cast<size_t>(B)] < 0)
      continue;
    for (int S : P.successors(B))
      if (dominates(S, B))
        BackEdges.push_back({B, S});
  }
  return BackEdges;
}

std::vector<int> npral::computeLoopDepths(const Program &P) {
  const int N = P.getNumBlocks();
  std::vector<int> Depth(static_cast<size_t>(N), 0);
  std::vector<std::vector<int>> Preds = P.computePredecessors();

  // Natural loop of back edge (Latch, Header): Header plus everything that
  // reaches Latch without passing through Header. Loops sharing a header
  // are merged into one body so the depth counts distinct loops.
  std::vector<std::pair<int, std::vector<bool>>> Loops; // (header, body)
  for (auto [Latch, Header] : findBackEdges(P)) {
    auto It = std::find_if(Loops.begin(), Loops.end(), [&](const auto &L) {
      return L.first == Header;
    });
    if (It == Loops.end()) {
      Loops.push_back({Header, std::vector<bool>(static_cast<size_t>(N))});
      It = Loops.end() - 1;
      It->second[static_cast<size_t>(Header)] = true;
    }
    std::vector<bool> &Body = It->second;
    std::vector<int> Stack;
    if (!Body[static_cast<size_t>(Latch)]) {
      Body[static_cast<size_t>(Latch)] = true;
      Stack.push_back(Latch);
    }
    while (!Stack.empty()) {
      int B = Stack.back();
      Stack.pop_back();
      for (int Pred : Preds[static_cast<size_t>(B)])
        if (!Body[static_cast<size_t>(Pred)]) {
          Body[static_cast<size_t>(Pred)] = true;
          Stack.push_back(Pred);
        }
    }
  }
  for (const auto &[Header, Body] : Loops)
    for (int B = 0; B < N; ++B)
      if (Body[static_cast<size_t>(B)])
        ++Depth[static_cast<size_t>(B)];
  return Depth;
}

int npral::getTerminatorGroupBegin(const BasicBlock &BB) {
  int N = static_cast<int>(BB.Instrs.size());
  if (N == 0)
    return 0;
  const Instruction &Last = BB.Instrs[static_cast<size_t>(N - 1)];
  bool LastIsControl = Last.isBranch() || Last.Op == Opcode::Halt;
  if (!LastIsControl)
    return N;
  if (N >= 2) {
    const Instruction &Prev = BB.Instrs[static_cast<size_t>(N - 2)];
    if (Prev.isBranch() && Prev.Op != Opcode::Br && Last.Op == Opcode::Br)
      return N - 2;
  }
  return N - 1;
}

int npral::splitEdge(Program &P, int Pred, int Succ) {
  assert(Pred >= 0 && Pred < P.getNumBlocks() && "bad pred");
  assert(Succ >= 0 && Succ < P.getNumBlocks() && "bad succ");

  int NewBlock = P.addBlock(std::string(P.blockName(Pred)) + ".split." +
                            std::to_string(Succ));
  P.block(NewBlock).Instrs.push_back(Instruction::makeBr(Succ));

  BasicBlock &PredBB = P.block(Pred);
  bool Redirected = false;
  // Redirect every explicit branch from Pred to Succ.
  for (Instruction &I : PredBB.Instrs) {
    if (I.isBranch() && I.Target == Succ) {
      I.Target = NewBlock;
      Redirected = true;
    }
  }
  // Redirect the fallthrough edge.
  if (PredBB.FallThrough == Succ) {
    PredBB.FallThrough = NewBlock;
    Redirected = true;
  }
  assert(Redirected && "splitEdge called on a non-edge");
  (void)Redirected;
  return NewBlock;
}

void npral::insertAt(Program &P, ProgramPoint Point, const Instruction &I) {
  assert(Point.Block >= 0 && Point.Block < P.getNumBlocks() && "bad block");
  BasicBlock &BB = P.block(Point.Block);
  int Index = Point.Index;
  int Limit = getTerminatorGroupBegin(BB);
  if (Index > Limit)
    Index = Limit;
  assert(Index >= 0 && Index <= static_cast<int>(BB.Instrs.size()) &&
         "bad index");
  BB.Instrs.insert(BB.Instrs.begin() + Index, I);
}
