//===- CFGUtils.cpp -------------------------------------------------------===//

#include "ir/CFGUtils.h"

#include <cassert>

using namespace npral;

int npral::getTerminatorGroupBegin(const BasicBlock &BB) {
  int N = static_cast<int>(BB.Instrs.size());
  if (N == 0)
    return 0;
  const Instruction &Last = BB.Instrs[static_cast<size_t>(N - 1)];
  bool LastIsControl = Last.isBranch() || Last.Op == Opcode::Halt;
  if (!LastIsControl)
    return N;
  if (N >= 2) {
    const Instruction &Prev = BB.Instrs[static_cast<size_t>(N - 2)];
    if (Prev.isBranch() && Prev.Op != Opcode::Br && Last.Op == Opcode::Br)
      return N - 2;
  }
  return N - 1;
}

int npral::splitEdge(Program &P, int Pred, int Succ) {
  assert(Pred >= 0 && Pred < P.getNumBlocks() && "bad pred");
  assert(Succ >= 0 && Succ < P.getNumBlocks() && "bad succ");

  int NewBlock = P.addBlock(P.block(Pred).Name + ".split." +
                            std::to_string(Succ));
  P.block(NewBlock).Instrs.push_back(Instruction::makeBr(Succ));

  BasicBlock &PredBB = P.block(Pred);
  bool Redirected = false;
  // Redirect every explicit branch from Pred to Succ.
  for (Instruction &I : PredBB.Instrs) {
    if (I.isBranch() && I.Target == Succ) {
      I.Target = NewBlock;
      Redirected = true;
    }
  }
  // Redirect the fallthrough edge.
  if (PredBB.FallThrough == Succ) {
    PredBB.FallThrough = NewBlock;
    Redirected = true;
  }
  assert(Redirected && "splitEdge called on a non-edge");
  (void)Redirected;
  return NewBlock;
}

void npral::insertAt(Program &P, ProgramPoint Point, const Instruction &I) {
  assert(Point.Block >= 0 && Point.Block < P.getNumBlocks() && "bad block");
  BasicBlock &BB = P.block(Point.Block);
  int Index = Point.Index;
  int Limit = getTerminatorGroupBegin(BB);
  if (Index > Limit)
    Index = Limit;
  assert(Index >= 0 && Index <= static_cast<int>(BB.Instrs.size()) &&
         "bad index");
  BB.Instrs.insert(BB.Instrs.begin() + Index, I);
}
