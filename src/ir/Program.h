//===- Program.h - Thread program and basic blocks --------------*- C++ -*-===//
///
/// \file
/// A Program is the code that one hardware thread executes: a CFG of basic
/// blocks over a dense virtual (or, after allocation, physical) register
/// space. A MultiThreadProgram is the assignment of Nthd Programs to one
/// micro-engine, the unit the inter-thread allocator works on.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_IR_PROGRAM_H
#define NPRAL_IR_PROGRAM_H

#include "ir/Instruction.h"
#include "support/Arena.h"

#include <string>
#include <string_view>
#include <vector>

namespace npral {

/// A basic block: straight-line instructions plus explicit control flow.
///
/// Successor rules:
///  * last instruction `br L`    -> successors {L};
///  * last instruction `halt`    -> no successors;
///  * last instruction cond-br   -> successors {Target, FallThrough};
///  * otherwise                  -> successors {FallThrough}.
struct BasicBlock {
  int Id = NoBlock;
  /// Label id in the owning Program's string arena (NoStr when unnamed);
  /// resolve with Program::blockName().
  int32_t NameId = NoStr;
  std::vector<Instruction> Instrs;
  /// Block executed when control falls off the end (NoBlock for br/halt
  /// terminated blocks).
  int FallThrough = NoBlock;

  bool empty() const { return Instrs.empty(); }
  size_t size() const { return Instrs.size(); }
};

/// One thread's code.
///
/// All debug labels (block names, register names) live in one per-program
/// string arena and are referenced by int32 ids, so copying a Program —
/// the renaming pass and the batch pipeline do this per thread — moves a
/// handful of flat vectors instead of a string per label, and the analysis
/// passes never touch a string at all.
class Program {
public:
  std::string Name;
  std::vector<BasicBlock> Blocks;
  /// Number of registers referenced (virtual before allocation, physical
  /// after). Register IDs are dense in [0, NumRegs).
  int NumRegs = 0;
  /// Arena for block and register labels.
  StringInterner Strings;
  /// Optional debug-name ids per register ID (may be shorter than NumRegs;
  /// NoStr = unnamed).
  std::vector<int32_t> RegNameIds;
  /// True once registers denote physical registers.
  bool IsPhysical = false;
  /// Registers live at program entry (e.g. packet buffer pointer handed to
  /// the thread). These behave as if defined at a virtual entry point.
  std::vector<Reg> EntryLiveRegs;

  /// Entry block ID. Usually 0 (the first parsed/built block); transforms
  /// that need setup code executed exactly once (e.g. baseline spill stores
  /// for entry-live registers) may prepend a dedicated entry block and
  /// repoint this.
  int EntryBlock = 0;

  int getEntryBlock() const { return EntryBlock; }
  int getNumBlocks() const { return static_cast<int>(Blocks.size()); }

  BasicBlock &block(int Id) { return Blocks[static_cast<size_t>(Id)]; }
  const BasicBlock &block(int Id) const {
    return Blocks[static_cast<size_t>(Id)];
  }

  /// Append a new block; returns its ID. An empty \p Name becomes
  /// "bb<id>".
  int addBlock(std::string_view Name = {});

  /// Allocate a fresh register ID; \p Name is a debug label.
  Reg addReg(std::string_view Name = {});

  /// Debug name of \p R ("r<N>" when unnamed).
  std::string getRegName(Reg R) const;

  /// Label of block \p B (view into the program's arena).
  std::string_view blockName(int B) const {
    const BasicBlock &BB = block(B);
    return BB.NameId == NoStr ? std::string_view() : Strings.view(BB.NameId);
  }

  /// Drop all register debug names (labels of a physical program are
  /// meaningless once registers are renumbered).
  void clearRegNames() { RegNameIds.clear(); }

  /// Successor block IDs of \p BlockId under the rules above.
  std::vector<int> successors(int BlockId) const;

  /// Predecessor lists for all blocks (index = block ID).
  std::vector<std::vector<int>> computePredecessors() const;

  /// Blocks in reverse post order from the entry block. Unreachable blocks
  /// are appended after the reachable ones in ID order.
  std::vector<int> computeRPO() const;

  /// Total instruction count over all blocks.
  int countInstructions() const;

  /// Number of instructions that cause a context switch.
  int countCtxInstructions() const;

  /// Number of `mov` instructions (used to report move-insertion overhead).
  int countMoves() const;
};

/// The set of threads sharing one micro-engine (processing unit).
struct MultiThreadProgram {
  std::string Name;
  std::vector<Program> Threads;

  int getNumThreads() const { return static_cast<int>(Threads.size()); }
};

} // namespace npral

#endif // NPRAL_IR_PROGRAM_H
