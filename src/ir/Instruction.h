//===- Instruction.h - NPRAL instruction ------------------------*- C++ -*-===//
///
/// \file
/// A single three-address instruction. Register operands are dense integer
/// IDs; whether they denote virtual or physical registers is a property of
/// the containing Program.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_IR_INSTRUCTION_H
#define NPRAL_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <array>
#include <cstdint>

namespace npral {

/// Register operand: an index into the program's register space.
using Reg = int32_t;

/// Sentinel for "no register in this slot".
constexpr Reg NoReg = -1;

/// Sentinel for "no branch target".
constexpr int NoBlock = -1;

/// One instruction. Fields not used by the opcode's OperandShape hold the
/// sentinel values.
struct Instruction {
  Opcode Op = Opcode::Nop;
  Reg Def = NoReg;
  Reg Use1 = NoReg;
  Reg Use2 = NoReg;
  int64_t Imm = 0;
  int Target = NoBlock; ///< Branch target block ID.

  Instruction() = default;
  explicit Instruction(Opcode Op) : Op(Op) {}

  const OpcodeInfo &info() const { return getOpcodeInfo(Op); }

  bool causesCtxSwitch() const { return info().CausesCtxSwitch; }
  bool isBranch() const { return info().IsBranch; }
  bool isTerminator() const { return info().IsTerminator; }

  bool hasDef() const { return Def != NoReg; }

  /// Collect the (up to two) used registers into \p Out; returns the count.
  int getUses(std::array<Reg, 2> &Out) const {
    int N = 0;
    if (Use1 != NoReg)
      Out[N++] = Use1;
    if (Use2 != NoReg)
      Out[N++] = Use2;
    return N;
  }

  /// True if \p R appears in a use slot.
  bool usesReg(Reg R) const { return Use1 == R || Use2 == R; }

  // Convenience factories -------------------------------------------------

  static Instruction makeImm(Reg Rd, int64_t Value) {
    Instruction I(Opcode::Imm);
    I.Def = Rd;
    I.Imm = Value;
    return I;
  }
  static Instruction makeMov(Reg Rd, Reg Rs) {
    Instruction I(Opcode::Mov);
    I.Def = Rd;
    I.Use1 = Rs;
    return I;
  }
  static Instruction makeBinary(Opcode Op, Reg Rd, Reg Rs1, Reg Rs2) {
    Instruction I(Op);
    I.Def = Rd;
    I.Use1 = Rs1;
    I.Use2 = Rs2;
    return I;
  }
  static Instruction makeBinaryImm(Opcode Op, Reg Rd, Reg Rs, int64_t Value) {
    Instruction I(Op);
    I.Def = Rd;
    I.Use1 = Rs;
    I.Imm = Value;
    return I;
  }
  static Instruction makeUnary(Opcode Op, Reg Rd, Reg Rs) {
    Instruction I(Op);
    I.Def = Rd;
    I.Use1 = Rs;
    return I;
  }
  static Instruction makeLoad(Reg Rd, Reg Base, int64_t Offset) {
    Instruction I(Opcode::Load);
    I.Def = Rd;
    I.Use1 = Base;
    I.Imm = Offset;
    return I;
  }
  static Instruction makeStore(Reg Base, int64_t Offset, Reg Value) {
    Instruction I(Opcode::Store);
    I.Use1 = Base;
    I.Use2 = Value;
    I.Imm = Offset;
    return I;
  }
  static Instruction makeLoadAbs(Reg Rd, int64_t Address) {
    Instruction I(Opcode::LoadA);
    I.Def = Rd;
    I.Imm = Address;
    return I;
  }
  static Instruction makeStoreAbs(int64_t Address, Reg Value) {
    Instruction I(Opcode::StoreA);
    I.Use1 = Value;
    I.Imm = Address;
    return I;
  }
  static Instruction makeCtx() { return Instruction(Opcode::Ctx); }
  static Instruction makeSignal(int64_t Channel) {
    Instruction I(Opcode::Signal);
    I.Imm = Channel;
    return I;
  }
  static Instruction makeWait(int64_t Channel) {
    Instruction I(Opcode::Wait);
    I.Imm = Channel;
    return I;
  }
  static Instruction makeBr(int Target) {
    Instruction I(Opcode::Br);
    I.Target = Target;
    return I;
  }
  static Instruction makeCondBr(Opcode Op, Reg Rs1, Reg Rs2, int Target) {
    Instruction I(Op);
    I.Use1 = Rs1;
    I.Use2 = Rs2;
    I.Target = Target;
    return I;
  }
  static Instruction makeCondBrZ(Opcode Op, Reg Rs, int Target) {
    Instruction I(Op);
    I.Use1 = Rs;
    I.Target = Target;
    return I;
  }
  static Instruction makeHalt() { return Instruction(Opcode::Halt); }
  static Instruction makeLoopEnd() { return Instruction(Opcode::LoopEnd); }
  static Instruction makeNop() { return Instruction(Opcode::Nop); }
};

} // namespace npral

#endif // NPRAL_IR_INSTRUCTION_H
