//===- Program.cpp --------------------------------------------------------===//

#include "ir/Program.h"

#include <cassert>

using namespace npral;

int Program::addBlock(std::string Name) {
  int Id = getNumBlocks();
  BasicBlock BB;
  BB.Id = Id;
  BB.Name = Name.empty() ? "bb" + std::to_string(Id) : std::move(Name);
  Blocks.push_back(std::move(BB));
  return Id;
}

Reg Program::addReg(std::string Name) {
  Reg R = NumRegs++;
  if (!Name.empty()) {
    RegNames.resize(static_cast<size_t>(NumRegs));
    RegNames[static_cast<size_t>(R)] = std::move(Name);
  }
  return R;
}

std::string Program::getRegName(Reg R) const {
  if (R == NoReg)
    return "<none>";
  if (static_cast<size_t>(R) < RegNames.size() &&
      !RegNames[static_cast<size_t>(R)].empty())
    return RegNames[static_cast<size_t>(R)];
  return (IsPhysical ? "p" : "r") + std::to_string(R);
}

std::vector<int> Program::successors(int BlockId) const {
  const BasicBlock &BB = block(BlockId);
  std::vector<int> Succs;
  auto addUnique = [&](int S) {
    for (int Existing : Succs)
      if (Existing == S)
        return;
    Succs.push_back(S);
  };
  if (!BB.Instrs.empty()) {
    const Instruction &Last = BB.Instrs.back();
    if (Last.Op == Opcode::Br) {
      // A conditional branch may sit just before an unconditional one (the
      // "cond-br + br" pattern the printer emits for non-layout
      // fallthrough); the conditional target comes first.
      if (BB.Instrs.size() >= 2) {
        const Instruction &Prev = BB.Instrs[BB.Instrs.size() - 2];
        if (Prev.isBranch() && Prev.Op != Opcode::Br)
          addUnique(Prev.Target);
      }
      addUnique(Last.Target);
      return Succs;
    }
    if (Last.Op == Opcode::Halt)
      return Succs;
    if (Last.isBranch()) {
      addUnique(Last.Target);
      if (BB.FallThrough != NoBlock)
        addUnique(BB.FallThrough);
      return Succs;
    }
  }
  if (BB.FallThrough != NoBlock)
    Succs.push_back(BB.FallThrough);
  return Succs;
}

std::vector<std::vector<int>> Program::computePredecessors() const {
  std::vector<std::vector<int>> Preds(Blocks.size());
  for (int B = 0; B < getNumBlocks(); ++B)
    for (int S : successors(B))
      Preds[static_cast<size_t>(S)].push_back(B);
  return Preds;
}

std::vector<int> Program::computeRPO() const {
  std::vector<int> PostOrder;
  std::vector<char> Visited(Blocks.size(), 0);

  // Iterative DFS producing post order.
  struct Frame {
    int Block;
    std::vector<int> Succs;
    size_t Next;
  };
  std::vector<Frame> Stack;
  auto push = [&](int B) {
    Visited[static_cast<size_t>(B)] = 1;
    Stack.push_back({B, successors(B), 0});
  };
  if (!Blocks.empty())
    push(getEntryBlock());
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.Next < F.Succs.size()) {
      int S = F.Succs[F.Next++];
      if (!Visited[static_cast<size_t>(S)])
        push(S);
      continue;
    }
    PostOrder.push_back(F.Block);
    Stack.pop_back();
  }

  std::vector<int> RPO(PostOrder.rbegin(), PostOrder.rend());
  for (int B = 0; B < getNumBlocks(); ++B)
    if (!Visited[static_cast<size_t>(B)])
      RPO.push_back(B);
  return RPO;
}

int Program::countInstructions() const {
  int N = 0;
  for (const BasicBlock &BB : Blocks)
    N += static_cast<int>(BB.Instrs.size());
  return N;
}

int Program::countCtxInstructions() const {
  int N = 0;
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &I : BB.Instrs)
      if (I.causesCtxSwitch())
        ++N;
  return N;
}

int Program::countMoves() const {
  int N = 0;
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &I : BB.Instrs)
      if (I.Op == Opcode::Mov)
        ++N;
  return N;
}
