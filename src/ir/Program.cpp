//===- Program.cpp --------------------------------------------------------===//

#include "ir/Program.h"

#include <cassert>

using namespace npral;

int Program::addBlock(std::string_view Name) {
  int Id = getNumBlocks();
  BasicBlock BB;
  BB.Id = Id;
  BB.NameId = Name.empty() ? Strings.intern("bb" + std::to_string(Id))
                           : Strings.intern(Name);
  Blocks.push_back(std::move(BB));
  return Id;
}

/// True when \p Name is exactly what getRegName() synthesizes for an
/// unnamed register \p R ("r<R>"/"p<R>", no leading zeros). Such names need
/// no arena slot — most programs (generated corpora, renamed outputs whose
/// webs kept their ids) name every register this way, so skipping them
/// keeps parse and renaming off the interner entirely.
static bool isDefaultRegName(std::string_view Name, bool IsPhysical, Reg R) {
  if (Name.size() < 2 || Name.size() > 11 ||
      Name[0] != (IsPhysical ? 'p' : 'r'))
    return false;
  if (Name[1] == '0' && Name.size() > 2)
    return false;
  uint32_t V = 0;
  for (size_t I = 1; I < Name.size(); ++I) {
    char C = Name[I];
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint32_t>(C - '0');
  }
  return V == static_cast<uint32_t>(R);
}

Reg Program::addReg(std::string_view Name) {
  Reg R = NumRegs++;
  if (!Name.empty() && !isDefaultRegName(Name, IsPhysical, R)) {
    RegNameIds.resize(static_cast<size_t>(NumRegs), NoStr);
    RegNameIds[static_cast<size_t>(R)] = Strings.intern(Name);
  }
  return R;
}

std::string Program::getRegName(Reg R) const {
  if (R == NoReg)
    return "<none>";
  if (static_cast<size_t>(R) < RegNameIds.size() &&
      RegNameIds[static_cast<size_t>(R)] != NoStr)
    return std::string(Strings.view(RegNameIds[static_cast<size_t>(R)]));
  return (IsPhysical ? "p" : "r") + std::to_string(R);
}

std::vector<int> Program::successors(int BlockId) const {
  const BasicBlock &BB = block(BlockId);
  std::vector<int> Succs;
  auto addUnique = [&](int S) {
    for (int Existing : Succs)
      if (Existing == S)
        return;
    Succs.push_back(S);
  };
  if (!BB.Instrs.empty()) {
    const Instruction &Last = BB.Instrs.back();
    if (Last.Op == Opcode::Br) {
      // A conditional branch may sit just before an unconditional one (the
      // "cond-br + br" pattern the printer emits for non-layout
      // fallthrough); the conditional target comes first.
      if (BB.Instrs.size() >= 2) {
        const Instruction &Prev = BB.Instrs[BB.Instrs.size() - 2];
        if (Prev.isBranch() && Prev.Op != Opcode::Br)
          addUnique(Prev.Target);
      }
      addUnique(Last.Target);
      return Succs;
    }
    if (Last.Op == Opcode::Halt)
      return Succs;
    if (Last.isBranch()) {
      addUnique(Last.Target);
      if (BB.FallThrough != NoBlock)
        addUnique(BB.FallThrough);
      return Succs;
    }
  }
  if (BB.FallThrough != NoBlock)
    Succs.push_back(BB.FallThrough);
  return Succs;
}

std::vector<std::vector<int>> Program::computePredecessors() const {
  std::vector<std::vector<int>> Preds(Blocks.size());
  for (int B = 0; B < getNumBlocks(); ++B)
    for (int S : successors(B))
      Preds[static_cast<size_t>(S)].push_back(B);
  return Preds;
}

std::vector<int> Program::computeRPO() const {
  std::vector<int> PostOrder;
  std::vector<char> Visited(Blocks.size(), 0);

  // Iterative DFS producing post order.
  struct Frame {
    int Block;
    std::vector<int> Succs;
    size_t Next;
  };
  std::vector<Frame> Stack;
  auto push = [&](int B) {
    Visited[static_cast<size_t>(B)] = 1;
    Stack.push_back({B, successors(B), 0});
  };
  if (!Blocks.empty())
    push(getEntryBlock());
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.Next < F.Succs.size()) {
      int S = F.Succs[F.Next++];
      if (!Visited[static_cast<size_t>(S)])
        push(S);
      continue;
    }
    PostOrder.push_back(F.Block);
    Stack.pop_back();
  }

  std::vector<int> RPO(PostOrder.rbegin(), PostOrder.rend());
  for (int B = 0; B < getNumBlocks(); ++B)
    if (!Visited[static_cast<size_t>(B)])
      RPO.push_back(B);
  return RPO;
}

int Program::countInstructions() const {
  int N = 0;
  for (const BasicBlock &BB : Blocks)
    N += static_cast<int>(BB.Instrs.size());
  return N;
}

int Program::countCtxInstructions() const {
  int N = 0;
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &I : BB.Instrs)
      if (I.causesCtxSwitch())
        ++N;
  return N;
}

int Program::countMoves() const {
  int N = 0;
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &I : BB.Instrs)
      if (I.Op == Opcode::Mov)
        ++N;
  return N;
}
