//===- IRBuilder.h - Programmatic IR construction ---------------*- C++ -*-===//
///
/// \file
/// Convenience layer for building Programs from C++ (used by the generated
/// workloads such as md5, by tests, and by the random program generator).
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_IR_IRBUILDER_H
#define NPRAL_IR_IRBUILDER_H

#include "ir/Program.h"

#include <cassert>
#include <string>

namespace npral {

/// Builds one Program block by block. The builder keeps an insertion point
/// (always the end of the current block) and exposes one method per opcode
/// family.
class IRBuilder {
public:
  explicit IRBuilder(Program &P) : P(P) {}

  Program &program() { return P; }

  /// Create a register with an optional debug name.
  Reg reg(const std::string &Name = std::string()) { return P.addReg(Name); }

  /// Create a block but do not switch to it.
  int createBlock(const std::string &Name = std::string()) {
    return P.addBlock(Name);
  }

  /// Switch the insertion point to \p BlockId.
  void setInsertBlock(int BlockId) {
    assert(BlockId >= 0 && BlockId < P.getNumBlocks() && "bad block");
    CurBlock = BlockId;
  }

  int getInsertBlock() const { return CurBlock; }

  /// Create a block and switch to it.
  int startBlock(const std::string &Name = std::string()) {
    int B = createBlock(Name);
    setInsertBlock(B);
    return B;
  }

  /// Set the fallthrough successor of the current block.
  void setFallThrough(int BlockId) { P.block(CurBlock).FallThrough = BlockId; }

  /// Append an already-formed instruction.
  void insert(const Instruction &I) { P.block(CurBlock).Instrs.push_back(I); }

  // Per-opcode helpers. Each returns the defined register where applicable.

  Reg imm(Reg Rd, int64_t V) {
    insert(Instruction::makeImm(Rd, V));
    return Rd;
  }
  Reg immNew(int64_t V, const std::string &Name = std::string()) {
    return imm(reg(Name), V);
  }
  Reg mov(Reg Rd, Reg Rs) {
    insert(Instruction::makeMov(Rd, Rs));
    return Rd;
  }
  Reg binop(Opcode Op, Reg Rd, Reg Rs1, Reg Rs2) {
    insert(Instruction::makeBinary(Op, Rd, Rs1, Rs2));
    return Rd;
  }
  Reg binopNew(Opcode Op, Reg Rs1, Reg Rs2,
               const std::string &Name = std::string()) {
    return binop(Op, reg(Name), Rs1, Rs2);
  }
  Reg binopImm(Opcode Op, Reg Rd, Reg Rs, int64_t V) {
    insert(Instruction::makeBinaryImm(Op, Rd, Rs, V));
    return Rd;
  }
  Reg unop(Opcode Op, Reg Rd, Reg Rs) {
    insert(Instruction::makeUnary(Op, Rd, Rs));
    return Rd;
  }
  Reg load(Reg Rd, Reg Base, int64_t Offset) {
    insert(Instruction::makeLoad(Rd, Base, Offset));
    return Rd;
  }
  void store(Reg Base, int64_t Offset, Reg Value) {
    insert(Instruction::makeStore(Base, Offset, Value));
  }
  void ctx() { insert(Instruction::makeCtx()); }
  void br(int Target) { insert(Instruction::makeBr(Target)); }
  void condBr(Opcode Op, Reg Rs1, Reg Rs2, int Target) {
    insert(Instruction::makeCondBr(Op, Rs1, Rs2, Target));
  }
  void condBrZ(Opcode Op, Reg Rs, int Target) {
    insert(Instruction::makeCondBrZ(Op, Rs, Target));
  }
  void halt() { insert(Instruction::makeHalt()); }
  void loopEnd() { insert(Instruction::makeLoopEnd()); }
  void nop() { insert(Instruction::makeNop()); }

private:
  Program &P;
  int CurBlock = 0;
};

} // namespace npral

#endif // NPRAL_IR_IRBUILDER_H
