//===- CFGUtils.h - CFG surgery helpers -------------------------*- C++ -*-===//
///
/// \file
/// CFG mutation utilities used by the allocators when inserting move
/// instructions: edge splitting (for moves that must execute on exactly one
/// CFG edge) and point-wise instruction insertion. Also the CFG *analysis*
/// helpers the profile subsystem builds on: dominators, back edges and loop
/// nesting depths.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_IR_CFGUTILS_H
#define NPRAL_IR_CFGUTILS_H

#include "ir/Program.h"

#include <utility>
#include <vector>

namespace npral {

/// A program point: just before instruction \p Index of block \p Block.
/// Index == block size denotes the end-of-block point.
struct ProgramPoint {
  int Block = NoBlock;
  int Index = 0;

  bool operator==(const ProgramPoint &O) const = default;
};

/// Split the CFG edge \p Pred -> \p Succ by inserting a fresh empty block
/// (terminated by `br Succ`) between them. All control transfers from Pred
/// to Succ are redirected; other predecessors of Succ are unaffected.
/// Returns the new block's ID.
int splitEdge(Program &P, int Pred, int Succ);

/// Insert \p I at \p Point. Both branch-position rules and fallthroughs are
/// respected: insertion past a terminator is clamped to before it.
void insertAt(Program &P, ProgramPoint Point, const Instruction &I);

/// Return the index of the first control-flow instruction of the block's
/// terminator group (the conditional of a cond+br pair, else the final
/// br/halt), or the block size when the block ends by fallthrough. Useful
/// for "append at end but before branches" insertions.
int getTerminatorGroupBegin(const BasicBlock &BB);

/// Immediate dominator of every block (Cooper-Harvey-Kennedy over the RPO).
/// The entry block's idom is itself; blocks unreachable from the entry get
/// -1.
std::vector<int> computeImmediateDominators(const Program &P);

/// Back edges of the CFG: every edge Latch -> Header where Header dominates
/// Latch. These are exactly the loop-closing edges of reducible CFGs (the
/// only kind the parser and builders produce).
std::vector<std::pair<int, int>> findBackEdges(const Program &P);

/// Loop nesting depth per block: the number of distinct natural loops
/// (back edges merged per header) whose body contains the block. Blocks
/// outside every loop — and unreachable blocks — get depth 0.
std::vector<int> computeLoopDepths(const Program &P);

} // namespace npral

#endif // NPRAL_IR_CFGUTILS_H
