//===- AsmParser.cpp ------------------------------------------------------===//

#include "asmparse/AsmParser.h"

#include "asmparse/FunctionExpansion.h"

#include "ir/IRVerifier.h"
#include "support/StringUtils.h"

#include <cassert>
#include <map>
#include <memory>
#include <vector>

using namespace npral;

namespace {

/// Token kinds produced by the per-line lexer.
enum class TokKind { Ident, Integer, Comma, Colon, LBracket, RBracket, Plus,
                     End };

struct Token {
  TokKind Kind = TokKind::End;
  std::string_view Text;
  int64_t Value = 0;
  int Column = 0;
};

/// Lexes one source line into tokens. Comments start with ';' or '#'.
class LineLexer {
public:
  LineLexer(std::string_view Line, int LineNo) : Line(Line), LineNo(LineNo) {
    advance();
  }

  const Token &peek() const { return Cur; }
  Token take() {
    Token T = Cur;
    advance();
    return T;
  }
  bool atEnd() const { return Cur.Kind == TokKind::End; }
  SourceLoc loc() const { return SourceLoc{LineNo, Cur.Column + 1}; }

  Status error(const std::string &Message) const {
    return Status::error(StatusCode::ParseError, Message, loc());
  }

private:
  std::string_view Line;
  int LineNo;
  size_t Pos = 0;
  Token Cur;

  void advance() {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    Cur = Token();
    Cur.Column = static_cast<int>(Pos);
    if (Pos >= Line.size() || Line[Pos] == ';' || Line[Pos] == '#') {
      Cur.Kind = TokKind::End;
      return;
    }
    char C = Line[Pos];
    switch (C) {
    case ',':
      Cur.Kind = TokKind::Comma;
      ++Pos;
      return;
    case ':':
      Cur.Kind = TokKind::Colon;
      ++Pos;
      return;
    case '[':
      Cur.Kind = TokKind::LBracket;
      ++Pos;
      return;
    case ']':
      Cur.Kind = TokKind::RBracket;
      ++Pos;
      return;
    case '+':
      Cur.Kind = TokKind::Plus;
      ++Pos;
      return;
    default:
      break;
    }
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      ++Pos;
      while (Pos < Line.size() &&
             (std::isalnum(static_cast<unsigned char>(Line[Pos]))))
        ++Pos;
      Cur.Text = Line.substr(Start, Pos - Start);
      if (auto V = parseInteger(Cur.Text)) {
        Cur.Kind = TokKind::Integer;
        Cur.Value = *V;
      } else {
        // Malformed number; surface as an identifier so the caller reports a
        // shape error with context.
        Cur.Kind = TokKind::Ident;
      }
      return;
    }
    // Identifier.
    size_t Start = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_' || Line[Pos] == '.'))
      ++Pos;
    if (Pos == Start) {
      // Unknown character: consume it so we do not loop.
      ++Pos;
    }
    Cur.Kind = TokKind::Ident;
    Cur.Text = Line.substr(Start, Pos - Start);
  }
};

/// Parses one thread section into a Program, resolving branch labels after
/// all blocks are known.
class ThreadParser {
public:
  /// \p CallNames is the file-wide table `call` sites index into.
  /// Functions (\p IsFunction) skip thread-only checks; their bodies are
  /// verified after inline expansion into a thread.
  ThreadParser(std::string Name, std::vector<std::string> *CallNames,
               bool IsFunction)
      : CallNames(CallNames), IsFunction(IsFunction) {
    P.Name = std::move(Name);
  }

  Status parseLine(LineLexer &Lex);
  ErrorOr<Program> finish();

private:
  Program P;
  std::vector<std::string> *CallNames;
  bool IsFunction;
  std::map<std::string, Reg, std::less<>> RegByName;
  std::map<std::string, int, std::less<>> BlockByName;
  /// Branch fixups: (block, instr index, label, loc).
  struct Fixup {
    int Block;
    int Instr;
    std::string Label;
    SourceLoc Loc;
  };
  std::vector<Fixup> Fixups;
  bool SawInstruction = false;
  /// Set after a control-flow instruction: the next instruction (if no
  /// label intervenes) opens a fresh block, so conditional branches may
  /// appear mid-stream in the source.
  bool NeedNewBlock = false;

  int currentBlock() {
    if (P.Blocks.empty())
      startBlock("entry");
    return P.getNumBlocks() - 1;
  }

  int startBlock(const std::string &Name) {
    int NewBlock = P.addBlock(Name);
    BlockByName.emplace(Name, NewBlock);
    // Layout fallthrough: the previous block falls into this one unless it
    // already ends closed.
    if (NewBlock > 0) {
      BasicBlock &PrevBB = P.block(NewBlock - 1);
      bool Closed =
          !PrevBB.Instrs.empty() && PrevBB.Instrs.back().isTerminator();
      if (!Closed)
        PrevBB.FallThrough = NewBlock;
    }
    return NewBlock;
  }

  Reg getReg(std::string_view Name) {
    auto It = RegByName.find(Name);
    if (It != RegByName.end())
      return It->second;
    Reg R = P.addReg(std::string(Name));
    RegByName.emplace(std::string(Name), R);
    return R;
  }

  Status expect(LineLexer &Lex, TokKind Kind, const char *What) {
    if (Lex.peek().Kind != Kind)
      return Lex.error(std::string("expected ") + What);
    Lex.take();
    return Status::success();
  }

  Status parseReg(LineLexer &Lex, Reg &Out) {
    if (Lex.peek().Kind != TokKind::Ident)
      return Lex.error("expected register name");
    Out = getReg(Lex.take().Text);
    return Status::success();
  }

  Status parseImm(LineLexer &Lex, int64_t &Out) {
    if (Lex.peek().Kind != TokKind::Integer)
      return Lex.error("expected integer immediate");
    Out = Lex.take().Value;
    return Status::success();
  }

  /// Parse "[base]" or "[base+off]" (off may be negative).
  Status parseMemOperand(LineLexer &Lex, Reg &Base, int64_t &Offset) {
    if (Status S = expect(Lex, TokKind::LBracket, "'['"); !S.ok())
      return S;
    if (Status S = parseReg(Lex, Base); !S.ok())
      return S;
    Offset = 0;
    if (Lex.peek().Kind == TokKind::Plus) {
      Lex.take();
      if (Status S = parseImm(Lex, Offset); !S.ok())
        return S;
    } else if (Lex.peek().Kind == TokKind::Integer && Lex.peek().Value < 0) {
      Offset = Lex.take().Value;
    }
    return expect(Lex, TokKind::RBracket, "']'");
  }

  Status parseLabelOperand(LineLexer &Lex, std::string &Out) {
    if (Lex.peek().Kind != TokKind::Ident)
      return Lex.error("expected label");
    Out = std::string(Lex.take().Text);
    return Status::success();
  }

  Status parseDirective(LineLexer &Lex, std::string_view Directive);
  Status parseInstruction(LineLexer &Lex, Opcode Op);
};

Status ThreadParser::parseDirective(LineLexer &Lex, std::string_view Dir) {
  if (Dir == ".entrylive") {
    // Entry-live names declare their registers immediately: they are input
    // bindings and may be referenced only inside expanded .func bodies (or
    // not at all).
    for (;;) {
      if (Lex.peek().Kind != TokKind::Ident)
        return Lex.error("expected register name in .entrylive");
      P.EntryLiveRegs.push_back(getReg(Lex.take().Text));
      if (Lex.peek().Kind != TokKind::Comma)
        break;
      Lex.take();
    }
    return Status::success();
  }
  return Lex.error("unknown directive '" + std::string(Dir) + "'");
}

Status ThreadParser::parseInstruction(LineLexer &Lex, Opcode Op) {
  SawInstruction = true;
  if (NeedNewBlock) {
    startBlock("bb" + std::to_string(P.getNumBlocks()));
    NeedNewBlock = false;
  }
  const OpcodeInfo &Info = getOpcodeInfo(Op);
  Instruction I(Op);
  std::string Label;
  SourceLoc Loc = Lex.loc();
  (void)Loc;

  // `call f` carries the function name via the file-wide name table; the
  // site is expanded inline after the whole file is parsed.
  if (Op == Opcode::Call) {
    std::string FuncName;
    if (Status S = parseLabelOperand(Lex, FuncName); !S.ok())
      return S;
    if (!Lex.atEnd())
      return Lex.error("trailing tokens after instruction");
    I.Imm = static_cast<int64_t>(CallNames->size());
    CallNames->push_back(FuncName);
    P.block(currentBlock()).Instrs.push_back(I);
    return Status::success();
  }

  auto comma = [&]() { return expect(Lex, TokKind::Comma, "','"); };

  switch (Info.Shape) {
  case OperandShape::None:
    break;
  case OperandShape::DefImm:
    if (Status S = parseReg(Lex, I.Def); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseImm(Lex, I.Imm); !S.ok())
      return S;
    break;
  case OperandShape::DefUse:
    if (Status S = parseReg(Lex, I.Def); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseReg(Lex, I.Use1); !S.ok())
      return S;
    break;
  case OperandShape::DefUseUse:
    if (Status S = parseReg(Lex, I.Def); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseReg(Lex, I.Use1); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseReg(Lex, I.Use2); !S.ok())
      return S;
    break;
  case OperandShape::DefUseImm:
    if (Status S = parseReg(Lex, I.Def); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Op == Opcode::Load) {
      if (Status S = parseMemOperand(Lex, I.Use1, I.Imm); !S.ok())
        return S;
    } else {
      if (Status S = parseReg(Lex, I.Use1); !S.ok())
        return S;
      if (Status S = comma(); !S.ok())
        return S;
      if (Status S = parseImm(Lex, I.Imm); !S.ok())
        return S;
    }
    break;
  case OperandShape::UseUseImm: // store [base+off], value
    if (Status S = parseMemOperand(Lex, I.Use1, I.Imm); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseReg(Lex, I.Use2); !S.ok())
      return S;
    break;
  case OperandShape::UseImm: // storea addr, value
    if (Status S = parseImm(Lex, I.Imm); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseReg(Lex, I.Use1); !S.ok())
      return S;
    break;
  case OperandShape::ImmOnly: // signal ch / wait ch
    if (Status S = parseImm(Lex, I.Imm); !S.ok())
      return S;
    break;
  case OperandShape::Target:
    if (Status S = parseLabelOperand(Lex, Label); !S.ok())
      return S;
    break;
  case OperandShape::UseUseTarget:
    if (Status S = parseReg(Lex, I.Use1); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseReg(Lex, I.Use2); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseLabelOperand(Lex, Label); !S.ok())
      return S;
    break;
  case OperandShape::UseTarget:
    if (Status S = parseReg(Lex, I.Use1); !S.ok())
      return S;
    if (Status S = comma(); !S.ok())
      return S;
    if (Status S = parseLabelOperand(Lex, Label); !S.ok())
      return S;
    break;
  }

  if (!Lex.atEnd())
    return Lex.error("trailing tokens after instruction");

  int B = currentBlock();
  P.block(B).Instrs.push_back(I);
  if (!Label.empty())
    Fixups.push_back(
        {B, static_cast<int>(P.block(B).Instrs.size()) - 1, Label, Loc});
  if (I.isBranch() || I.Op == Opcode::Halt || I.Op == Opcode::Ret)
    NeedNewBlock = true;
  return Status::success();
}

Status ThreadParser::parseLine(LineLexer &Lex) {
  if (Lex.atEnd())
    return Status::success();

  Token First = Lex.take();
  if (First.Kind != TokKind::Ident)
    return Lex.error("expected label, directive, or instruction");

  // Directive?
  if (!First.Text.empty() && First.Text.front() == '.')
    return parseDirective(Lex, First.Text);

  // Label?
  if (Lex.peek().Kind == TokKind::Colon) {
    Lex.take();
    std::string Name(First.Text);
    if (BlockByName.count(Name))
      return Lex.error("duplicate label '" + Name + "'");
    startBlock(Name);
    NeedNewBlock = false;
    if (!Lex.atEnd())
      return Lex.error("unexpected tokens after label");
    return Status::success();
  }

  // Instruction.
  Opcode Op;
  if (!parseOpcode(First.Text, Op))
    return Lex.error("unknown mnemonic '" + std::string(First.Text) + "'");
  return parseInstruction(Lex, Op);
}

ErrorOr<Program> ThreadParser::finish() {
  if (!SawInstruction)
    return Status::error(StatusCode::ParseError,
                         "thread '" + P.Name + "' has no instructions");

  for (const Fixup &F : Fixups) {
    auto It = BlockByName.find(F.Label);
    if (It == BlockByName.end())
      return Status::error(StatusCode::ParseError,
                           "undefined label '" + F.Label + "'", F.Loc);
    P.block(F.Block).Instrs[static_cast<size_t>(F.Instr)].Target = It->second;
  }

  // Threads are verified by the caller after call expansion; function
  // bodies are verified as part of the threads they expand into.
  return std::move(P);
}

} // namespace

ErrorOr<MultiThreadProgram> npral::parseAssembly(std::string_view Source) {
  MultiThreadProgram MTP;
  std::map<std::string, Program> Functions;
  std::vector<std::string> CallNames;
  std::unique_ptr<ThreadParser> Cur;
  bool CurIsFunction = false;
  std::string CurFuncName;

  auto finishCurrent = [&]() -> Status {
    if (!Cur)
      return Status::success();
    ErrorOr<Program> P = Cur->finish();
    if (!P.ok())
      return P.status();
    if (CurIsFunction) {
      if (Functions.count(CurFuncName))
        return Status::error(StatusCode::ParseError,
                             "duplicate function '" + CurFuncName + "'");
      Functions.emplace(CurFuncName, P.take());
    } else {
      MTP.Threads.push_back(P.take());
    }
    Cur.reset();
    return Status::success();
  };

  int LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    std::string_view Line = Source.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    ++LineNo;

    LineLexer Lex(Line, LineNo);
    if (!Lex.atEnd()) {
      bool IsThread = Lex.peek().Kind == TokKind::Ident &&
                      Lex.peek().Text == ".thread";
      bool IsFunc = Lex.peek().Kind == TokKind::Ident &&
                    Lex.peek().Text == ".func";
      if (IsThread || IsFunc) {
        if (Status S = finishCurrent(); !S.ok())
          return S;
        Lex.take();
        if (Lex.peek().Kind != TokKind::Ident)
          return Status::error(StatusCode::ParseError,
                               IsFunc ? "expected function name after .func"
                                      : "expected thread name after .thread",
                               Lex.loc());
        std::string Name(Lex.take().Text);
        CurIsFunction = IsFunc;
        CurFuncName = Name;
        Cur = std::make_unique<ThreadParser>(Name, &CallNames, IsFunc);
      } else {
        if (!Cur) {
          Cur = std::make_unique<ThreadParser>("main", &CallNames, false);
          CurIsFunction = false;
        }
        if (Status S = Cur->parseLine(Lex); !S.ok())
          return S;
      }
    }

    if (Eol == std::string_view::npos)
      break;
    Pos = Eol + 1;
  }

  if (Status S = finishCurrent(); !S.ok())
    return S;
  if (MTP.Threads.empty())
    return Status::error(StatusCode::ParseError, "no threads in input");
  for (Program &T : MTP.Threads) {
    if (Status S = expandCalls(T, CallNames, Functions); !S.ok())
      return S;
    if (Status S = verifyProgram(T); !S.ok())
      return S;
  }
  return MTP;
}

ErrorOr<Program> npral::parseSingleProgram(std::string_view Source) {
  ErrorOr<MultiThreadProgram> MTP = parseAssembly(Source);
  if (!MTP.ok())
    return MTP.status();
  if (MTP->Threads.size() != 1)
    return Status::error(StatusCode::ParseError,
                         "expected exactly one thread, found " +
                         std::to_string(MTP->Threads.size()));
  return std::move(MTP->Threads.front());
}
