//===- FunctionExpansion.cpp ----------------------------------------------===//

#include "asmparse/FunctionExpansion.h"

#include <cassert>

using namespace npral;

namespace {

/// Find the first unexpanded call; returns false when none remain.
bool findCall(const Program &P, int &Block, int &Index) {
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I)
      if (BB.Instrs[static_cast<size_t>(I)].Op == Opcode::Call) {
        Block = B;
        Index = I;
        return true;
      }
  }
  return false;
}

/// Splice one copy of \p F into \p P at call site (Block, Index).
void spliceFunction(Program &P, int Block, int Index, const Program &F,
                    int ExpansionId) {
  // Registers are matched by name (macro semantics); unseen names become
  // fresh registers of the thread.
  std::vector<Reg> RegMap(static_cast<size_t>(F.NumRegs), NoReg);
  for (Reg R = 0; R < F.NumRegs; ++R) {
    std::string Name = F.getRegName(R);
    Reg Found = NoReg;
    for (Reg PR = 0; PR < P.NumRegs; ++PR)
      if (P.getRegName(PR) == Name) {
        Found = PR;
        break;
      }
    RegMap[static_cast<size_t>(R)] = Found == NoReg ? P.addReg(Name) : Found;
  }

  // Split the call block: everything after the call moves to a
  // continuation block that inherits the original fallthrough.
  int Cont = P.addBlock(std::string(P.blockName(Block)) + ".ret" +
                        std::to_string(ExpansionId));
  {
    BasicBlock &ContBB = P.block(Cont);
    BasicBlock &Caller = P.block(Block); // re-take: addBlock reallocates
    ContBB.Instrs.assign(Caller.Instrs.begin() + Index + 1,
                         Caller.Instrs.end());
    ContBB.FallThrough = Caller.FallThrough;
    Caller.Instrs.erase(Caller.Instrs.begin() + Index, Caller.Instrs.end());
  }

  // Copy the function body with registers and branch targets remapped.
  int Base = P.getNumBlocks();
  for (int FB = 0; FB < F.getNumBlocks(); ++FB) {
    int NewB = P.addBlock("f" + std::to_string(ExpansionId) + "." +
                          std::string(F.blockName(FB)));
    BasicBlock &NewBB = P.block(NewB);
    const BasicBlock &Body = F.block(FB);
    NewBB.FallThrough =
        Body.FallThrough == NoBlock ? NoBlock : Base + Body.FallThrough;
    for (Instruction I : Body.Instrs) {
      if (I.Op == Opcode::Ret) {
        NewBB.Instrs.push_back(Instruction::makeBr(Cont));
        continue;
      }
      if (I.Def != NoReg)
        I.Def = RegMap[static_cast<size_t>(I.Def)];
      if (I.Use1 != NoReg)
        I.Use1 = RegMap[static_cast<size_t>(I.Use1)];
      if (I.Use2 != NoReg)
        I.Use2 = RegMap[static_cast<size_t>(I.Use2)];
      if (I.Target != NoBlock)
        I.Target = Base + I.Target;
      NewBB.Instrs.push_back(I);
    }
  }

  // Control enters the body where the call was.
  P.block(Block).FallThrough = Base + F.getEntryBlock();
}

} // namespace

Status npral::expandCalls(Program &P,
                          const std::vector<std::string> &CallNames,
                          const std::map<std::string, Program> &Functions) {
  // Generous cap: legitimate nesting is shallow; only recursion runs away.
  const int MaxExpansions = 256;
  for (int Count = 0; ; ++Count) {
    int Block, Index;
    if (!findCall(P, Block, Index))
      return Status::success();
    if (Count >= MaxExpansions)
      return Status::error(StatusCode::ParseError, "thread '" + P.Name +
                           "': call expansion exceeded " +
                           std::to_string(MaxExpansions) +
                           " sites — recursive function?");
    const Instruction &Call =
        P.block(Block).Instrs[static_cast<size_t>(Index)];
    assert(Call.Imm >= 0 &&
           Call.Imm < static_cast<int64_t>(CallNames.size()) &&
           "call without a registered name");
    const std::string &Name = CallNames[static_cast<size_t>(Call.Imm)];
    auto It = Functions.find(Name);
    if (It == Functions.end())
      return Status::error(StatusCode::ParseError, "thread '" + P.Name + "': call to undefined "
                           "function '" + Name + "'");
    spliceFunction(P, Block, Index, It->second, Count);
  }
}
