//===- AsmParser.h - Assembly front end -------------------------*- C++ -*-===//
///
/// \file
/// Parser for the NPRAL assembly dialect. A file holds one or more thread
/// sections:
///
/// \code
///   ; comment (also: # comment)
///   .thread checksum
///   .entrylive buf, len          ; registers live at thread entry
///   entry:
///       imm   sum, 0
///   loop:
///       load  tmp, [buf+0]       ; context-switching memory read
///       add   sum, sum, tmp
///       addi  buf, buf, 1
///       subi  len, len, 1
///       bnz   len, loop
///       store [out+0], sum
///       ctx                      ; voluntary yield
///       loopend
///       br    entry
/// \endcode
///
/// Labels open basic blocks; layout order defines implicit fallthrough.
/// Registers are declared implicitly on first use. Instructions before the
/// first label go into an implicit "entry" block.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ASMPARSE_ASMPARSER_H
#define NPRAL_ASMPARSE_ASMPARSER_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace npral {

/// Parse a file with any number of `.thread` sections.
ErrorOr<MultiThreadProgram> parseAssembly(std::string_view Source);

/// Parse a file that must contain exactly one thread.
ErrorOr<Program> parseSingleProgram(std::string_view Source);

} // namespace npral

#endif // NPRAL_ASMPARSE_ASMPARSER_H
