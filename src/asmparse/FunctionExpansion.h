//===- FunctionExpansion.h - Inline expansion of .func calls ----*- C++ -*-===//
///
/// \file
/// Assembler-level functions. The IXP-style machine has no call stack (a
/// context switch saves only the PC), so microcode "functions" are expanded
/// inline at each call site — which is also what makes the paper's remark
/// that "NSRs and interference graphs can be constructed
/// inter-procedurally" concrete here: after expansion the caller and callee
/// share one CFG and one register namespace.
///
/// Semantics: a `.func` body shares the calling thread's register names
/// (macro-style — arguments and results are passed in agreed registers);
/// every `call f` splices a fresh copy of f's blocks into the CFG, and each
/// `ret` becomes a branch to the instruction after the call.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ASMPARSE_FUNCTIONEXPANSION_H
#define NPRAL_ASMPARSE_FUNCTIONEXPANSION_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace npral {

/// Expand every `call` in \p P. `call` instructions carry an index into
/// \p CallNames (shared across the file); \p Functions maps function names
/// to their parsed bodies (which may themselves contain calls). Fails on
/// unknown functions and on unbounded (recursive) expansion.
Status expandCalls(Program &P, const std::vector<std::string> &CallNames,
                   const std::map<std::string, Program> &Functions);

} // namespace npral

#endif // NPRAL_ASMPARSE_FUNCTIONEXPANSION_H
