//===- Simulator.h - IXP-style micro-engine simulator -----------*- C++ -*-===//
///
/// \file
/// A cycle-level simulator of one micro-engine in the paper's machine model
/// (§1.1/§2):
///
///  * Nthd non-preemptive threads share the CPU and (in physical mode) one
///    register file; a thread yields only at `ctx` or a memory operation.
///  * ALU/branch/move instructions complete in 1 cycle.
///  * `load`/`store` block the issuing thread for the full memory latency
///    (default 20 cycles) and yield the CPU; the scheduler runs another
///    ready thread meanwhile.
///  * Switching to a different thread costs CtxSwitchPenalty (default 1)
///    cycles — only the PC is saved, nothing else.
///  * A `load`'s destination register is written when the thread *resumes*,
///    modelling the IXP's transfer registers: while the thread is blocked
///    the destination GPR still holds its old value, so other threads may
///    safely use it if it is a shared register.
///
/// Threads count main-loop iterations via `loopend` markers; the standard
/// experiment runs every thread to a target iteration count and reports
/// cycles/iteration, mirroring the paper's per-iteration cycle counts.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SIM_SIMULATOR_H
#define NPRAL_SIM_SIMULATOR_H

#include "ir/Program.h"

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace npral {

class CycleTrace;
class TelemetrySampler;

struct SimConfig {
  /// Cycles until a memory operation completes (paper: ~20).
  int MemLatency = 20;
  /// Extra cycles charged when the CPU switches to a different thread.
  int CtxSwitchPenalty = 1;
  /// Size of the word-addressed memory.
  uint32_t MemWords = 1u << 20;
  /// Abort the run after this many cycles.
  int64_t MaxCycles = 200'000'000;
  /// Number of inter-thread signal channels (`signal`/`wait` operands must
  /// be below this).
  int NumChannels = 16;
  /// Stop once every thread has completed this many `loopend` iterations
  /// (threads keep running while others catch up). 0 = run until all halt.
  int64_t TargetIterations = 0;
  /// Halt each thread exactly at its target iteration instead of letting it
  /// keep running while other threads catch up. Timing runs want the
  /// steady-state contention of false; semantic-equivalence runs want true,
  /// so the final memory image is independent of thread interleaving.
  bool HaltAtTarget = false;
  /// Record every dispatch of a thread different from the previous one into
  /// SimResult::CtxTrace (the determinism tests compare traces run-to-run).
  bool RecordCtxTrace = false;
};

/// Execution observer interface. The simulator reports control-flow events
/// to an attached observer; `src/profile`'s ProfileCollector implements it
/// to build per-thread block/CSB execution profiles. Callbacks fire on the
/// simulator's thread, in deterministic execution order.
class SimObserver {
public:
  virtual ~SimObserver() = default;
  /// Control of thread \p Thread transferred to block \p Block (initial
  /// dispatch, branch, or fallthrough) of that thread's program.
  virtual void onBlockEntered(int Thread, int Block) = 0;
  /// Thread \p Thread executed the context-switch-causing instruction at
  /// (\p Block, \p Index) — a ctx, memory operation, signal or wait.
  virtual void onCtxSwitchPoint(int Thread, int Block, int Index) = 0;
};

/// Work-source interface for multi-engine grids (src/grid). When a port is
/// attached, every main-loop iteration consumes one work token: at each
/// `loopend` the simulator reports the completed iteration and asks for the
/// next token. A thread with no token available blocks — those cycles land
/// in the ThreadStats::InterconnectStallCycles bucket — until the port
/// owner wakes it with Simulator::grantWork(). Without a port (the default,
/// and any single-engine run) none of this is consulted and behaviour is
/// bit-identical to the pre-grid simulator.
class GridPort {
public:
  virtual ~GridPort() = default;
  /// Thread \p Thread finished a main-loop iteration at \p Cycle (its
  /// `loopend` retired). Typically sends a completion message upstream.
  virtual void onIterationComplete(int Thread, int64_t Cycle) = 0;
  /// Consume a work token for thread \p Thread's next iteration. Returning
  /// false blocks the thread on the interconnect; the owner must later call
  /// Simulator::grantWork(Thread, cycle) when a token arrives.
  virtual bool tryAcquireWork(int Thread, int64_t Cycle) = 0;
};

/// One recorded context switch: at \p Cycle the CPU started running
/// \p Thread (after any switch penalty was charged).
struct CtxSwitchEvent {
  int64_t Cycle = 0;
  int Thread = -1;

  bool operator==(const CtxSwitchEvent &O) const {
    return Cycle == O.Cycle && Thread == O.Thread;
  }
};

struct ThreadStats {
  int64_t Iterations = 0;
  /// Cycle at which the target iteration count was reached (-1 if never).
  int64_t CyclesAtTarget = -1;
  int64_t InstrsExecuted = 0;
  /// Times this thread yielded the CPU (ctx + memory ops).
  int64_t CtxEvents = 0;
  int64_t MemOps = 0;
  /// Absolute-address memory ops (`loada`/`storea`) executed — the spill
  /// traffic a degraded (spill-fallback) allocation adds. Subset of MemOps;
  /// 0 for programs with no absolute accesses.
  int64_t AbsMemOps = 0;
  bool Halted = false;

  /// Cycle breakdown: every simulated cycle lands in exactly one bucket per
  /// thread, so for a completed run the seven buckets sum to
  /// SimResult::TotalCycles (asserted by the simulator). A cycle interval
  /// is classified by the thread's state at its start:
  ///  * RunCycles          — this thread was executing on the CPU;
  ///  * SwitchPenaltyCycles— the CPU charged the context-switch penalty to
  ///                         dispatch this thread;
  ///  * MemStallCycles     — blocked waiting for a memory operation
  ///                         (latency not yet elapsed);
  ///  * ChannelWaitCycles  — blocked on a `wait` for a signal channel;
  ///  * InterconnectStallCycles — blocked at a `loopend` waiting for a work
  ///                         token from the engine grid's interconnect
  ///                         (always 0 without an attached GridPort, in
  ///                         particular for every single-engine run);
  ///  * ReadyWaitCycles    — runnable, but another thread held the CPU
  ///                         (the paper's switch-wait component);
  ///  * HaltedCycles       — already halted while others kept running.
  int64_t RunCycles = 0;
  int64_t SwitchPenaltyCycles = 0;
  int64_t MemStallCycles = 0;
  int64_t ChannelWaitCycles = 0;
  int64_t InterconnectStallCycles = 0;
  int64_t ReadyWaitCycles = 0;
  int64_t HaltedCycles = 0;

  /// Sum of the seven cycle buckets; equals the run's TotalCycles once the
  /// run completed.
  int64_t accountedCycles() const {
    return RunCycles + SwitchPenaltyCycles + MemStallCycles +
           ChannelWaitCycles + InterconnectStallCycles + ReadyWaitCycles +
           HaltedCycles;
  }

  /// Average cycles per main-loop iteration up to the target.
  double cyclesPerIteration(int64_t Target) const {
    if (Target <= 0 || CyclesAtTarget < 0)
      return 0.0;
    return static_cast<double>(CyclesAtTarget) / static_cast<double>(Target);
  }
};

struct SimResult {
  bool Completed = false;
  std::string FailReason;
  int64_t TotalCycles = 0;
  /// Cycles during which no thread was runnable (all blocked on memory).
  int64_t IdleCycles = 0;
  std::vector<ThreadStats> Threads;
  /// Context-switch trace, including the first dispatch; only filled when
  /// SimConfig::RecordCtxTrace is set.
  std::vector<CtxSwitchEvent> CtxTrace;

  double cpuUtilisation() const {
    return TotalCycles > 0
               ? 1.0 - static_cast<double>(IdleCycles) / TotalCycles
               : 0.0;
  }
};

class Simulator {
public:
  /// \p MTP's threads must verify. Physical threads share one register
  /// file; virtual threads each get a private file (reference mode).
  Simulator(const MultiThreadProgram &MTP, SimConfig Config);

  /// Provide initial values for thread \p T's entry-live registers, aligned
  /// with its Program::EntryLiveRegs.
  void setEntryValues(int T, const std::vector<uint32_t> &Values);

  /// Bulk-initialise memory starting at word address \p Base.
  void writeMemory(uint32_t Base, const std::vector<uint32_t> &Words);

  /// Attach \p O to receive execution events (null detaches). The observer
  /// must outlive every subsequent run().
  void setObserver(SimObserver *O) { Observer = O; }

  /// Attach \p P as the work source consulted at every `loopend` (null
  /// detaches; the default). The port must outlive every subsequent run.
  void setGridPort(GridPort *P) { Port = P; }

  /// Attach a cycle-domain trace (trace/CycleTrace.h): every accounted
  /// cycle interval is mirrored as a thread-state slice on process track
  /// \p Pid (tid = thread index), so per-thread slice durations sum to the
  /// seven cycle buckets by construction. Null detaches; the default.
  /// Disabled cost is one branch per thread per accounting interval
  /// (bounded by bench/trace_overhead).
  void setCycleTrace(CycleTrace *T, int64_t Pid) {
    Trace = T;
    TracePid = Pid;
  }

  /// Attach a telemetry sampler driven from the scheduler loop: when a
  /// sample comes due it records occupancy (non-halted threads) and
  /// ready-queue depth as `<Prefix>occupancy` / `<Prefix>ready` on the
  /// cycle-trace pid. Null detaches. Engine grids sample at their lockstep
  /// boundaries instead and leave this unset.
  void setSampler(TelemetrySampler *S, std::string Prefix) {
    Sampler = S;
    SamplePrefix = std::move(Prefix);
  }

  /// Threads that have not halted.
  int liveThreadCount() const;
  /// Threads that could be dispatched right now: not halted, not blocked on
  /// the grid port or an empty channel, memory latency elapsed.
  int readyThreadCount() const;

  SimResult run();

  //===--- Incremental interface (engine grids) ---------------------------===//
  //
  // run() is exactly beginRun() + advanceUntil(forever) + takeResult(); the
  // split exists so src/grid can step many engines in lockstep time slices
  // and deliver interconnect messages between slices.

  /// Reset per-run state (clock, result accumulators) and arm the run.
  void beginRun();
  /// Advance the run until every thread is done, a simulation error occurs,
  /// or the clock reaches \p StopAt. Returns true while the run is still in
  /// progress (clock hit StopAt), false once it ended either way.
  bool advanceUntil(int64_t StopAt);
  /// Wake thread \p T, blocked on the grid port, with a work token that
  /// arrived at \p Cycle. Only legal between advanceUntil() calls.
  void grantWork(int T, int64_t Cycle);
  /// True once the run ended (completed or failed).
  bool runEnded() const { return Ended; }
  /// True once thread \p T halted (grids bounce work for halted threads
  /// back to the ingress as credits).
  bool threadHalted(int T) const {
    return Threads[static_cast<size_t>(T)].Halted;
  }
  /// Current simulation clock of an in-progress run.
  int64_t currentCycle() const { return RunClock; }
  /// Finalise and return the run's result. Call after advanceUntil()
  /// returned false.
  SimResult takeResult();

  uint32_t readMemoryWord(uint32_t Address) const;
  /// FNV-1a hash of [Base, Base+Len) — used for output equivalence checks.
  uint64_t hashMemoryRange(uint32_t Base, uint32_t Len) const;

private:
  struct ThreadState {
    const Program *Prog = nullptr;
    int Block = 0;
    int Index = 0;
    /// Cycle at which the thread becomes runnable again.
    int64_t ReadyAt = 0;
    /// Channel this thread is blocked on (-1 when not waiting).
    int WaitingChannel = -1;
    /// Blocked at a `loopend` until the grid port delivers a work token.
    bool GridBlocked = false;
    bool Halted = false;
    /// Entry-block dispatch already reported to the observer.
    bool EntryReported = false;
    /// Pending transfer-register write applied on resume.
    bool HasPendingWrite = false;
    Reg PendingReg = NoReg;
    uint32_t PendingValue = 0;
    /// Register file: shared (all threads alias one) or private.
    std::vector<uint32_t> *Regs = nullptr;
  };

  const MultiThreadProgram &MTP;
  SimConfig Config;
  std::vector<uint32_t> Memory;
  std::vector<uint32_t> SharedRegs;
  std::vector<std::vector<uint32_t>> PrivateRegs;
  std::vector<ThreadState> Threads;
  std::vector<ThreadStats> Stats;
  std::vector<int64_t> Channels;
  bool UseSharedFile = false;
  SimObserver *Observer = nullptr;
  GridPort *Port = nullptr;
  CycleTrace *Trace = nullptr;
  int64_t TracePid = 1;
  TelemetrySampler *Sampler = nullptr;
  std::string SamplePrefix = "sim.";

  //===--- Per-run state (between beginRun and takeResult) ----------------===//
  SimResult RunResult;
  int64_t RunClock = 0;
  int RunLastThread = -1;
  bool Active = false;
  bool Ended = false;

  /// Run thread \p T from \p Clock until it yields/halts; returns false on
  /// a simulation error (\p Error set).
  bool step(int T, int64_t &Clock, std::string &Error);

  /// Attribute the cycle interval [C0, C1) to one breakdown bucket of every
  /// thread (\p Running holds the CPU; -1 = idle interval).
  void account(int Running, int64_t C0, int64_t C1, bool Penalty);
  bool allDone() const;
  /// Terminate the run with \p Reason (Completed stays false).
  void failRun(const std::string &Reason);
  /// Terminate the run successfully: asserts the breakdown invariant and
  /// publishes the sim.thread<T>.* metrics.
  void completeRun();
};

} // namespace npral

#endif // NPRAL_SIM_SIMULATOR_H
