//===- Simulator.cpp ------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/StringUtils.h"
#include "trace/CycleTrace.h"
#include "trace/MetricsRegistry.h"
#include "trace/Telemetry.h"
#include "trace/TraceEngine.h"

#include <algorithm>
#include <cassert>

using namespace npral;

Simulator::Simulator(const MultiThreadProgram &MTP, SimConfig Config)
    : MTP(MTP), Config(Config) {
  Memory.assign(Config.MemWords, 0);
  Channels.assign(static_cast<size_t>(Config.NumChannels), 0);
  const int Nthd = MTP.getNumThreads();
  Stats.assign(static_cast<size_t>(Nthd), ThreadStats());
  Threads.assign(static_cast<size_t>(Nthd), ThreadState());

  UseSharedFile = true;
  for (const Program &P : MTP.Threads)
    if (!P.IsPhysical)
      UseSharedFile = false;

  if (UseSharedFile) {
    int FileSize = 0;
    for (const Program &P : MTP.Threads)
      FileSize = std::max(FileSize, P.NumRegs);
    SharedRegs.assign(static_cast<size_t>(FileSize), 0);
  } else {
    PrivateRegs.resize(static_cast<size_t>(Nthd));
    for (int T = 0; T < Nthd; ++T)
      PrivateRegs[static_cast<size_t>(T)].assign(
          static_cast<size_t>(MTP.Threads[static_cast<size_t>(T)].NumRegs), 0);
  }

  for (int T = 0; T < Nthd; ++T) {
    ThreadState &TS = Threads[static_cast<size_t>(T)];
    TS.Prog = &MTP.Threads[static_cast<size_t>(T)];
    TS.Block = TS.Prog->getEntryBlock();
    TS.Index = 0;
    TS.Regs = UseSharedFile ? &SharedRegs : &PrivateRegs[static_cast<size_t>(T)];
  }
}

void Simulator::setEntryValues(int T, const std::vector<uint32_t> &Values) {
  ThreadState &TS = Threads[static_cast<size_t>(T)];
  const std::vector<Reg> &EntryRegs = TS.Prog->EntryLiveRegs;
  assert(Values.size() == EntryRegs.size() &&
         "entry value count does not match EntryLiveRegs");
  for (size_t I = 0; I < Values.size(); ++I)
    (*TS.Regs)[static_cast<size_t>(EntryRegs[I])] = Values[I];
}

void Simulator::writeMemory(uint32_t Base, const std::vector<uint32_t> &Words) {
  assert(static_cast<size_t>(Base) + Words.size() <= Memory.size() &&
         "memory initialisation out of range");
  std::copy(Words.begin(), Words.end(), Memory.begin() + Base);
}

uint32_t Simulator::readMemoryWord(uint32_t Address) const {
  assert(Address < Memory.size() && "memory read out of range");
  return Memory[Address];
}

uint64_t Simulator::hashMemoryRange(uint32_t Base, uint32_t Len) const {
  assert(static_cast<size_t>(Base) + Len <= Memory.size() && "range oob");
  uint64_t Hash = 1469598103934665603ULL;
  for (uint32_t I = 0; I < Len; ++I) {
    uint32_t W = Memory[Base + I];
    for (int Byte = 0; Byte < 4; ++Byte) {
      Hash ^= (W >> (8 * Byte)) & 0xFF;
      Hash *= 1099511628211ULL;
    }
  }
  return Hash;
}

bool Simulator::step(int T, int64_t &Clock, std::string &Error) {
  ThreadState &TS = Threads[static_cast<size_t>(T)];
  ThreadStats &TSt = Stats[static_cast<size_t>(T)];
  std::vector<uint32_t> &R = *TS.Regs;
  const Program &P = *TS.Prog;

  if (TS.HasPendingWrite) {
    R[static_cast<size_t>(TS.PendingReg)] = TS.PendingValue;
    TS.HasPendingWrite = false;
  }

  if (Observer && !TS.EntryReported) {
    TS.EntryReported = true;
    Observer->onBlockEntered(T, TS.Block);
  }

  auto oob = [&](uint64_t Address) {
    Error = formatString("thread %d: memory access out of range (0x%llx)", T,
                         static_cast<unsigned long long>(Address));
    return false;
  };

  for (;;) {
    if (Clock >= Config.MaxCycles) {
      Error = "cycle budget exhausted";
      return false;
    }
    const BasicBlock &BB = P.block(TS.Block);
    if (TS.Index >= static_cast<int>(BB.Instrs.size())) {
      if (BB.FallThrough == NoBlock) {
        Error = formatString("thread %d: fell off block '%s'", T,
                             std::string(P.blockName(TS.Block)).c_str());
        return false;
      }
      TS.Block = BB.FallThrough;
      TS.Index = 0;
      if (Observer)
        Observer->onBlockEntered(T, TS.Block);
      continue;
    }
    const Instruction &I = BB.Instrs[static_cast<size_t>(TS.Index)];
    ++TS.Index;
    ++TSt.InstrsExecuted;
    if (Observer && I.causesCtxSwitch())
      Observer->onCtxSwitchPoint(T, TS.Block, TS.Index - 1);

    auto u32 = [&](Reg Slot) { return R[static_cast<size_t>(Slot)]; };
    auto setReg = [&](Reg Slot, uint32_t V) {
      R[static_cast<size_t>(Slot)] = V;
    };
    auto branchTo = [&](int Target) {
      TS.Block = Target;
      TS.Index = 0;
      if (Observer)
        Observer->onBlockEntered(T, TS.Block);
    };

    switch (I.Op) {
    case Opcode::Imm:
      setReg(I.Def, static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::Mov:
      setReg(I.Def, u32(I.Use1));
      break;
    case Opcode::Add:
      setReg(I.Def, u32(I.Use1) + u32(I.Use2));
      break;
    case Opcode::Sub:
      setReg(I.Def, u32(I.Use1) - u32(I.Use2));
      break;
    case Opcode::And:
      setReg(I.Def, u32(I.Use1) & u32(I.Use2));
      break;
    case Opcode::Or:
      setReg(I.Def, u32(I.Use1) | u32(I.Use2));
      break;
    case Opcode::Xor:
      setReg(I.Def, u32(I.Use1) ^ u32(I.Use2));
      break;
    case Opcode::Shl:
      setReg(I.Def, u32(I.Use1) << (u32(I.Use2) & 31));
      break;
    case Opcode::Shr:
      setReg(I.Def, u32(I.Use1) >> (u32(I.Use2) & 31));
      break;
    case Opcode::Mul:
      setReg(I.Def, u32(I.Use1) * u32(I.Use2));
      break;
    case Opcode::AddI:
      setReg(I.Def, u32(I.Use1) + static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::SubI:
      setReg(I.Def, u32(I.Use1) - static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::AndI:
      setReg(I.Def, u32(I.Use1) & static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::OrI:
      setReg(I.Def, u32(I.Use1) | static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::XorI:
      setReg(I.Def, u32(I.Use1) ^ static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::ShlI:
      setReg(I.Def, u32(I.Use1) << (static_cast<uint32_t>(I.Imm) & 31));
      break;
    case Opcode::ShrI:
      setReg(I.Def, u32(I.Use1) >> (static_cast<uint32_t>(I.Imm) & 31));
      break;
    case Opcode::MulI:
      setReg(I.Def, u32(I.Use1) * static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::Not:
      setReg(I.Def, ~u32(I.Use1));
      break;
    case Opcode::Neg:
      setReg(I.Def, 0u - u32(I.Use1));
      break;

    case Opcode::Load:
    case Opcode::LoadA: {
      uint64_t Address =
          I.Op == Opcode::Load
              ? static_cast<uint64_t>(u32(I.Use1)) +
                    static_cast<uint64_t>(static_cast<int64_t>(I.Imm))
              : static_cast<uint64_t>(I.Imm);
      if (Address >= Memory.size())
        return oob(Address);
      TS.HasPendingWrite = true;
      TS.PendingReg = I.Def;
      TS.PendingValue = Memory[static_cast<size_t>(Address)];
      ++Clock;
      ++TSt.MemOps;
      if (I.Op == Opcode::LoadA)
        ++TSt.AbsMemOps;
      ++TSt.CtxEvents;
      TS.ReadyAt = Clock + Config.MemLatency;
      return true;
    }
    case Opcode::Store:
    case Opcode::StoreA: {
      uint64_t Address =
          I.Op == Opcode::Store
              ? static_cast<uint64_t>(u32(I.Use1)) +
                    static_cast<uint64_t>(static_cast<int64_t>(I.Imm))
              : static_cast<uint64_t>(I.Imm);
      if (Address >= Memory.size())
        return oob(Address);
      Reg Value = I.Op == Opcode::Store ? I.Use2 : I.Use1;
      Memory[static_cast<size_t>(Address)] = u32(Value);
      ++Clock;
      ++TSt.MemOps;
      if (I.Op == Opcode::StoreA)
        ++TSt.AbsMemOps;
      ++TSt.CtxEvents;
      TS.ReadyAt = Clock + Config.MemLatency;
      return true;
    }

    case Opcode::Ctx:
      ++Clock;
      ++TSt.CtxEvents;
      TS.ReadyAt = Clock;
      return true;

    case Opcode::Signal: {
      if (I.Imm < 0 || I.Imm >= Config.NumChannels) {
        Error = formatString("thread %d: signal channel %lld out of range", T,
                             static_cast<long long>(I.Imm));
        return false;
      }
      ++Channels[static_cast<size_t>(I.Imm)];
      ++Clock;
      ++TSt.CtxEvents;
      TS.ReadyAt = Clock;
      return true;
    }
    case Opcode::Wait: {
      if (I.Imm < 0 || I.Imm >= Config.NumChannels) {
        Error = formatString("thread %d: wait channel %lld out of range", T,
                             static_cast<long long>(I.Imm));
        return false;
      }
      ++Clock;
      ++TSt.CtxEvents;
      // The token is consumed by the scheduler when it finds the channel
      // non-empty and wakes this thread.
      TS.WaitingChannel = static_cast<int>(I.Imm);
      TS.ReadyAt = Clock;
      return true;
    }

    case Opcode::Br:
      ++Clock;
      branchTo(I.Target);
      continue;
    case Opcode::BrEq:
      ++Clock;
      if (u32(I.Use1) == u32(I.Use2))
        branchTo(I.Target);
      continue;
    case Opcode::BrNe:
      ++Clock;
      if (u32(I.Use1) != u32(I.Use2))
        branchTo(I.Target);
      continue;
    case Opcode::BrLt:
      ++Clock;
      if (static_cast<int32_t>(u32(I.Use1)) <
          static_cast<int32_t>(u32(I.Use2)))
        branchTo(I.Target);
      continue;
    case Opcode::BrGe:
      ++Clock;
      if (static_cast<int32_t>(u32(I.Use1)) >=
          static_cast<int32_t>(u32(I.Use2)))
        branchTo(I.Target);
      continue;
    case Opcode::BrZ:
      ++Clock;
      if (u32(I.Use1) == 0)
        branchTo(I.Target);
      continue;
    case Opcode::BrNz:
      ++Clock;
      if (u32(I.Use1) != 0)
        branchTo(I.Target);
      continue;

    case Opcode::Call:
    case Opcode::Ret:
      Error = formatString("thread %d: unexpanded call/ret reached the "
                           "simulator", T);
      return false;

    case Opcode::Halt:
      TS.Halted = true;
      Stats[static_cast<size_t>(T)].Halted = true;
      return true;

    case Opcode::LoopEnd: {
      ++TSt.Iterations;
      if (Port)
        Port->onIterationComplete(T, Clock);
      const bool AtTarget = Config.TargetIterations > 0 &&
                            TSt.Iterations == Config.TargetIterations;
      if (AtTarget) {
        TSt.CyclesAtTarget = Clock;
        if (Config.HaltAtTarget) {
          TS.Halted = true;
          TSt.Halted = true;
          return true;
        }
      }
      // With a grid port attached, the next iteration consumes one work
      // token; a thread with no token yields and blocks on the
      // interconnect (InterconnectStall bucket) until grantWork().
      if (Port && !Port->tryAcquireWork(T, Clock)) {
        TS.GridBlocked = true;
        TS.ReadyAt = Clock;
        ++TSt.CtxEvents;
        return true;
      }
      if (AtTarget) {
        // Yield (at no cost) so the scheduler can notice that every thread
        // has reached its target even when this thread never touches
        // memory.
        TS.ReadyAt = Clock;
        return true;
      }
      continue;
    }

    case Opcode::Nop:
      ++Clock;
      continue;
    }
    // Non-control instructions cost one cycle and fall through here.
    ++Clock;
  }
}

// Attribute the interval [C0, C1) to one cycle bucket of every thread:
// the running thread gets Run (or SwitchPenalty), each other thread is
// classified by its state at C0 — halted, grid-blocked, channel-blocked,
// memory-blocked up to its ReadyAt (the remainder of the interval counts as
// ready-wait), or simply waiting for the CPU. Every RunClock advance in
// advanceUntil() and in step() flows through here exactly once, so per
// thread the buckets sum to TotalCycles.
void Simulator::account(int Running, int64_t C0, int64_t C1, bool Penalty) {
  if (C1 <= C0)
    return;
  const int64_t Span = C1 - C0;
  const int Nthd = MTP.getNumThreads();
  for (int T = 0; T < Nthd; ++T) {
    ThreadStats &S = Stats[static_cast<size_t>(T)];
    const ThreadState &TS = Threads[static_cast<size_t>(T)];
    if (T == Running) {
      (Penalty ? S.SwitchPenaltyCycles : S.RunCycles) += Span;
      if (Trace)
        Trace->extendPhase(TracePid, T,
                           Penalty ? ThreadPhase::SwitchPenalty
                                   : ThreadPhase::Run,
                           C0, C1);
      continue;
    }
    if (TS.Halted) {
      S.HaltedCycles += Span;
      if (Trace)
        Trace->extendPhase(TracePid, T, ThreadPhase::Halted, C0, C1);
      continue;
    }
    if (TS.GridBlocked) {
      S.InterconnectStallCycles += Span;
      if (Trace)
        Trace->extendPhase(TracePid, T, ThreadPhase::InterconnectStall, C0,
                           C1);
      continue;
    }
    if (TS.WaitingChannel >= 0) {
      S.ChannelWaitCycles += Span;
      if (Trace)
        Trace->extendPhase(TracePid, T, ThreadPhase::ChannelWait, C0, C1);
      continue;
    }
    const int64_t Mem = std::min(C1, std::max(TS.ReadyAt, C0)) - C0;
    S.MemStallCycles += Mem;
    S.ReadyWaitCycles += Span - Mem;
    if (Trace) {
      if (Mem > 0)
        Trace->extendPhase(TracePid, T, ThreadPhase::MemStall, C0, C0 + Mem);
      if (Span - Mem > 0)
        Trace->extendPhase(TracePid, T, ThreadPhase::ReadyWait, C0 + Mem, C1);
    }
  }
}

int Simulator::liveThreadCount() const {
  int N = 0;
  for (const ThreadState &TS : Threads)
    N += TS.Halted ? 0 : 1;
  return N;
}

int Simulator::readyThreadCount() const {
  int N = 0;
  for (const ThreadState &TS : Threads) {
    if (TS.Halted || TS.GridBlocked)
      continue;
    if (TS.WaitingChannel >= 0 &&
        Channels[static_cast<size_t>(TS.WaitingChannel)] == 0)
      continue;
    if (TS.ReadyAt <= RunClock)
      ++N;
  }
  return N;
}

bool Simulator::allDone() const {
  for (const ThreadStats &TSt : Stats) {
    bool Done = TSt.Halted ||
                (Config.TargetIterations > 0 && TSt.CyclesAtTarget >= 0);
    if (!Done)
      return false;
  }
  return true;
}

void Simulator::failRun(const std::string &Reason) {
  RunResult.FailReason = Reason;
  RunResult.TotalCycles = RunClock;
  RunResult.Threads = Stats;
  Ended = true;
  if (Trace)
    Trace->closeTrack(TracePid);
}

void Simulator::completeRun() {
  RunResult.Completed = true;
  RunResult.TotalCycles = RunClock;
  RunResult.Threads = Stats;
  Ended = true;
  if (Trace)
    Trace->closeTrack(TracePid);
  for (int T = 0; T < MTP.getNumThreads(); ++T) {
    assert(Stats[static_cast<size_t>(T)].accountedCycles() == RunClock &&
           "cycle breakdown does not sum to total cycles");
    const std::string Prefix = "sim.thread" + std::to_string(T) + ".";
    MetricsRegistry &MR = MetricsRegistry::global();
    const ThreadStats &S = Stats[static_cast<size_t>(T)];
    MR.counter(Prefix + "run_cycles").add(S.RunCycles);
    MR.counter(Prefix + "switch_penalty_cycles").add(S.SwitchPenaltyCycles);
    MR.counter(Prefix + "mem_stall_cycles").add(S.MemStallCycles);
    MR.counter(Prefix + "channel_wait_cycles").add(S.ChannelWaitCycles);
    if (S.InterconnectStallCycles > 0)
      MR.counter(Prefix + "interconnect_stall_cycles")
          .add(S.InterconnectStallCycles);
    MR.counter(Prefix + "ready_wait_cycles").add(S.ReadyWaitCycles);
    MR.counter(Prefix + "halted_cycles").add(S.HaltedCycles);
    MR.counter(Prefix + "ctx_events").add(S.CtxEvents);
  }
}

void Simulator::beginRun() {
  RunResult = SimResult();
  RunClock = 0;
  RunLastThread = -1;
  Active = true;
  Ended = false;
}

void Simulator::grantWork(int T, int64_t Cycle) {
  ThreadState &TS = Threads[static_cast<size_t>(T)];
  assert(TS.GridBlocked && "grantWork on a thread not blocked on the grid");
  TS.GridBlocked = false;
  TS.ReadyAt = Cycle;
}

bool Simulator::advanceUntil(int64_t StopAt) {
  assert(Active && "advanceUntil without beginRun");
  if (Ended)
    return false;
  const int Nthd = MTP.getNumThreads();
  std::string Error;
  while (!allDone()) {
    if (Sampler && Sampler->due(RunClock)) {
      // Sample on the period grid (ts = the due cycle) with the machine
      // state the scheduler sees now, then skip past any periods the last
      // step jumped over — one sample per loop iteration at most.
      Sampler->beginSample(Sampler->nextDue());
      Sampler->value(TracePid, SamplePrefix + "occupancy", liveThreadCount());
      Sampler->value(TracePid, SamplePrefix + "ready", readyThreadCount());
      Sampler->endSample(RunClock);
    }
    if (RunClock >= StopAt)
      return true;
    if (RunClock >= Config.MaxCycles) {
      failRun("cycle budget exhausted");
      return false;
    }
    // Round-robin pick of the next ready thread.
    int Chosen = -1;
    int64_t EarliestReady = -1;
    bool AnyGridBlocked = false;
    for (int Off = 1; Off <= Nthd; ++Off) {
      int T = (RunLastThread + Off) % Nthd;
      const ThreadState &TS = Threads[static_cast<size_t>(T)];
      if (TS.Halted)
        continue;
      if (TS.GridBlocked) {
        AnyGridBlocked = true;
        continue; // wakes only via grantWork between slices
      }
      if (TS.WaitingChannel >= 0 &&
          Channels[static_cast<size_t>(TS.WaitingChannel)] == 0)
        continue; // blocked on an empty channel
      if (TS.ReadyAt <= RunClock) {
        Chosen = T;
        break;
      }
      if (EarliestReady < 0 || TS.ReadyAt < EarliestReady)
        EarliestReady = TS.ReadyAt;
    }
    if (Chosen < 0) {
      if (EarliestReady < 0 && !AnyGridBlocked) {
        // Every live thread is blocked on an empty channel (or the run
        // state is corrupt): with no memory op pending nothing can wake
        // anyone again.
        failRun("deadlock: all runnable threads are waiting on "
                "empty channels");
        return false;
      }
      // CPU idles until a memory op completes or, when only grid-blocked
      // threads remain, until control returns to the grid (which may then
      // deliver a token). Clamp to the slice boundary so interconnect
      // deliveries are observed; with StopAt = forever this is the
      // pre-grid jump to EarliestReady.
      int64_t Until = EarliestReady >= 0 ? std::min(EarliestReady, StopAt)
                                         : StopAt;
      Until = std::min(Until, Config.MaxCycles);
      if (Until <= RunClock) {
        failRun("deadlock: all runnable threads are blocked on the "
                "interconnect");
        return false;
      }
      RunResult.IdleCycles += Until - RunClock;
      account(-1, RunClock, Until, false);
      RunClock = Until;
      continue;
    }
    {
      ThreadState &TS = Threads[static_cast<size_t>(Chosen)];
      if (TS.WaitingChannel >= 0) {
        --Channels[static_cast<size_t>(TS.WaitingChannel)];
        TS.WaitingChannel = -1;
      }
    }
    if (RunLastThread >= 0 && Chosen != RunLastThread) {
      const int64_t PenaltyStart = RunClock;
      RunClock += Config.CtxSwitchPenalty;
      account(Chosen, PenaltyStart, RunClock, true);
    }
    if (Chosen != RunLastThread) {
      if (Config.RecordCtxTrace)
        RunResult.CtxTrace.push_back({RunClock, Chosen});
      NPRAL_TRACE_INSTANT("sim", "ctx-switch",
                          {{"thread", std::to_string(Chosen)},
                           {"cycle", std::to_string(RunClock)}});
    }
    RunLastThread = Chosen;
    const int64_t StepStart = RunClock;
    const bool StepOk = step(Chosen, RunClock, Error);
    account(Chosen, StepStart, RunClock, false);
    if (!StepOk) {
      failRun(Error);
      return false;
    }
  }
  completeRun();
  return false;
}

SimResult Simulator::takeResult() {
  assert(Ended && "takeResult before the run ended");
  Active = false;
  return std::move(RunResult);
}

SimResult Simulator::run() {
  NPRAL_TRACE_SPAN_ARGS("sim", "Simulator::run", {"program", MTP.Name},
                        {"threads", std::to_string(MTP.getNumThreads())});
  beginRun();
  advanceUntil(std::numeric_limits<int64_t>::max());
  return takeResult();
}
