//===- GridHarness.cpp ----------------------------------------------------===//

#include "grid/GridHarness.h"

#include "alloc/IntraAllocator.h"
#include "analysis/LiveRangeRenaming.h"
#include "harden/SpillFallback.h"
#include "support/Diagnostics.h"
#include "trace/CycleTrace.h"
#include "trace/MetricsRegistry.h"
#include "trace/TraceEngine.h"

#include <cassert>
#include <optional>

using namespace npral;

KernelTraits npral::computeKernelTraits(const std::string &Name) {
  ErrorOr<Workload> W = buildWorkload(Name, /*Slot=*/0);
  if (!W.ok())
    reportFatalError("grid: unknown kernel '" + Name + "': " +
                     W.status().str());
  Program Renamed = renameLiveRanges(W->Code);
  ThreadAnalysisBundle Bundle = computeThreadAnalysisBundle(Renamed);

  KernelTraits T;
  T.Name = Name;
  T.MinPR = Bundle.Bounds.MinPR;
  T.MaxPR = Bundle.Bounds.MaxPR;
  T.MaxR = Bundle.Bounds.MaxR;
  T.BoundaryNodes = Bundle.TA.BoundaryNodes.count();
  int64_t Instrs = 0, CtxPoints = 0;
  for (const BasicBlock &B : Renamed.Blocks)
    for (const Instruction &I : B.Instrs) {
      ++Instrs;
      if (getOpcodeInfo(I.Op).CausesCtxSwitch)
        ++CtxPoints;
    }
  T.CtxPerMille =
      Instrs > 0 ? static_cast<int>(CtxPoints * 1000 / Instrs) : 0;
  return T;
}

bool npral::buildGridPool(const std::string &ScenarioName, int NumEngines,
                          std::vector<std::string> &Pool) {
  const std::vector<Scenario> &Scen = getAraScenarios();
  std::vector<std::string> Template;
  if (ScenarioName == "s1" || ScenarioName == "s2" || ScenarioName == "s3") {
    const Scenario &S = Scen[static_cast<size_t>(ScenarioName[1] - '1')];
    Template.assign(S.Kernels.begin(), S.Kernels.end());
  } else if (ScenarioName == "mixed") {
    for (const Scenario &S : Scen)
      Template.insert(Template.end(), S.Kernels.begin(), S.Kernels.end());
  } else {
    return false;
  }
  Pool.clear();
  const size_t Want = static_cast<size_t>(NumEngines) * 4;
  for (size_t I = 0; I < Want; ++I)
    Pool.push_back(Template[I % Template.size()]);
  return true;
}

GridReport npral::runScenarioGrid(const Scenario &S, const GridOptions &Opts) {
  std::vector<std::string> Pool;
  const size_t Want = static_cast<size_t>(Opts.NumEngines) * 4;
  for (size_t I = 0; I < Want; ++I)
    Pool.push_back(S.Kernels[I % S.Kernels.size()]);
  return runKernelPoolGrid(S.Name, Pool, Opts);
}

GridReport npral::runKernelPoolGrid(const std::string &Name,
                                    const std::vector<std::string> &Pool,
                                    const GridOptions &Opts) {
  NPRAL_TRACE_SPAN_ARGS("grid", "runKernelPoolGrid", {"name", Name},
                        {"engines", std::to_string(Opts.NumEngines)},
                        {"policy", placementPolicyName(Opts.Policy)});
  GridReport Report;
  Report.Name = Name;
  Report.Policy = placementPolicyName(Opts.Policy);
  Report.NumEngines = Opts.NumEngines;
  assert(Pool.size() == static_cast<size_t>(Opts.NumEngines) * 4 &&
         "pool must provide four threads per engine");

  // Traits once per distinct kernel, in first-appearance order so the
  // trait indices (and everything downstream) are deterministic.
  PlacementInput In;
  In.NumEngines = Opts.NumEngines;
  In.ThreadsPerEngine = 4;
  In.EngineRegs = Opts.Nreg;
  for (const std::string &Kernel : Pool) {
    int TraitIdx = -1;
    for (size_t T = 0; T < In.Traits.size(); ++T)
      if (In.Traits[T].Name == Kernel)
        TraitIdx = static_cast<int>(T);
    if (TraitIdx < 0) {
      In.Traits.push_back(computeKernelTraits(Kernel));
      TraitIdx = static_cast<int>(In.Traits.size()) - 1;
    }
    In.Pool.push_back(TraitIdx);
  }
  Report.Placement = placeThreads(In, Opts.Policy);

  // Per-engine inter-thread allocation: each engine is an independent
  // register file, so each bin gets its own Fig. 8 run (with the spill
  // fallback as the safety net for tight budgets).
  EngineGrid Grid(Opts.HopLatency, Opts.InitialCredits);
  for (int E = 0; E < Opts.NumEngines; ++E) {
    const std::vector<int> &Bin = Report.Placement.Bins[static_cast<size_t>(E)];
    GridEngineReport ER;
    std::vector<Workload> Workloads;
    for (size_t Slot = 0; Slot < Bin.size(); ++Slot) {
      const std::string &Kernel = Pool[static_cast<size_t>(Bin[Slot])];
      ER.Kernels.push_back(Kernel);
      ErrorOr<Workload> W = buildWorkload(Kernel, static_cast<int>(Slot));
      if (!W.ok())
        reportFatalError("grid: " + W.status().str());
      Workloads.push_back(W.take());
    }
    MultiThreadProgram MTP =
        toMultiThreadProgram(Workloads, Name + "_e" + std::to_string(E));
    for (Program &T : MTP.Threads)
      T = renameLiveRanges(T);
    SpillFallbackResult SF = allocateWithSpillFallback(
        MTP, Opts.Nreg, {}, {}, /*Log=*/nullptr, InterAllocLimits());
    if (!SF.Inter.Success) {
      Report.FailReason = "engine " + std::to_string(E) +
                          " allocation failed: " + SF.Inter.FailReason;
      return Report;
    }
    ER.RegistersUsed = SF.Inter.RegistersUsed;
    ER.Spilled = SF.UsedSpilling;
    ER.SpilledRanges = SF.SpilledRanges;
    Report.Engines.push_back(std::move(ER));

    MicroEngine &ME = Grid.addEngine(std::move(SF.Inter.Physical), Opts.Sim);
    for (size_t T = 0; T < Workloads.size(); ++T) {
      const Workload &W = Workloads[T];
      for (const Workload::MemRegion &Region : W.InitMemory)
        ME.sim().writeMemory(Region.Base, Region.Words);
      ME.sim().setEntryValues(static_cast<int>(T), W.EntryValues);
    }
    // Engine E records its thread-state slices on process track E + 1
    // (track 0 is the fabric).
    if (Opts.Trace)
      ME.sim().setCycleTrace(Opts.Trace, E + 1);
  }

  std::optional<TelemetrySampler> Sampler;
  if (Opts.SampleCycles > 0 && (Opts.Trace || Opts.Ring))
    Sampler.emplace(Opts.SampleCycles, Opts.Trace, Opts.Ring);
  Grid.setTelemetry(Opts.Trace, Sampler ? &*Sampler : nullptr);

  GridRunResult Run = Grid.run();
  Report.MaxEngineCycles = Run.MaxEngineCycles;
  Report.MessagesSent = Run.MessagesSent;
  Report.MessagesDelivered = Run.MessagesDelivered;
  Report.CreditsReturned = Run.CreditsReturned;
  for (int E = 0; E < Opts.NumEngines; ++E) {
    GridEngineReport &ER = Report.Engines[static_cast<size_t>(E)];
    ER.Result = std::move(Run.Engines[static_cast<size_t>(E)]);
    for (const ThreadStats &TS : ER.Result.Threads) {
      ER.Iterations += TS.Iterations;
      ER.InterconnectStallCycles += TS.InterconnectStallCycles;
    }
    Report.TotalIterations += ER.Iterations;
    Report.TotalInterconnectStall += ER.InterconnectStallCycles;
  }
  if (!Run.Completed) {
    Report.FailReason = Run.FailReason;
    return Report;
  }
  if (Report.MaxEngineCycles > 0)
    Report.IterationsPerKilocycle =
        static_cast<double>(Report.TotalIterations) * 1000.0 /
        static_cast<double>(Report.MaxEngineCycles);

  MetricsRegistry &MR = MetricsRegistry::global();
  MR.counter("grid.engines").add(Report.NumEngines);
  MR.counter("grid.iterations").add(Report.TotalIterations);
  MR.counter("grid.interconnect_stall_cycles")
      .add(Report.TotalInterconnectStall);
  for (int E = 0; E < Opts.NumEngines; ++E) {
    const GridEngineReport &ER = Report.Engines[static_cast<size_t>(E)];
    const std::string Prefix = "grid.engine" + std::to_string(E) + ".";
    MR.counter(Prefix + "iterations").add(ER.Iterations);
    if (ER.InterconnectStallCycles > 0)
      MR.counter(Prefix + "interconnect_stall_cycles")
          .add(ER.InterconnectStallCycles);
  }
  Report.Success = true;
  return Report;
}
