//===- Interconnect.cpp ---------------------------------------------------===//

#include "grid/Interconnect.h"

#include "trace/CycleTrace.h"

#include <algorithm>
#include <cassert>

using namespace npral;

const char *npral::msgTypeName(MsgType T) {
  switch (T) {
  case MsgType::WorkDispatch:
    return "work-dispatch";
  case MsgType::Completion:
    return "completion";
  case MsgType::Credit:
    return "credit";
  }
  return "?";
}

Interconnect::Interconnect(int HopLatency) : HopLatency(HopLatency) {
  assert(HopLatency >= 1 && "hop latency must be at least one cycle");
}

void Interconnect::send(MsgType Type, int SrcNode, int DstNode, int Engine,
                        int Thread, int64_t Cycle) {
  assert(SrcNode != DstNode && "loopback traffic never enters the fabric");
  Message M;
  M.Type = Type;
  M.SrcNode = SrcNode;
  M.DstNode = DstNode;
  M.Engine = Engine;
  M.Thread = Thread;
  M.SendCycle = Cycle;
  M.ArriveCycle = Cycle + latency(SrcNode, DstNode);
  M.Seq = NextSeq++;
  InFlight.push_back(M);
  ++Sent;
  if (Trace) {
    // Fabric track: pid 0, one lane per engine; the slice spans the
    // modeled in-flight time. WorkDispatches also start a flow, finished
    // at delivery in deliverUpTo().
    Trace->completeSlice(/*Pid=*/0, /*Tid=*/M.Engine, msgTypeName(Type),
                         "grid", M.SendCycle, M.ArriveCycle - M.SendCycle);
    if (Type == MsgType::WorkDispatch)
      Trace->flowStart(M.Seq, /*Pid=*/0, /*Tid=*/M.Engine, "work-dispatch",
                       M.SendCycle);
  }
}

std::vector<Message> Interconnect::deliverUpTo(int64_t Now) {
  std::vector<Message> Due;
  auto Split = std::partition(
      InFlight.begin(), InFlight.end(),
      [Now](const Message &M) { return M.ArriveCycle > Now; });
  Due.assign(Split, InFlight.end());
  InFlight.erase(Split, InFlight.end());
  std::sort(Due.begin(), Due.end(), [](const Message &A, const Message &B) {
    return A.ArriveCycle != B.ArriveCycle ? A.ArriveCycle < B.ArriveCycle
                                          : A.Seq < B.Seq;
  });
  Delivered += static_cast<int64_t>(Due.size());
  if (Trace)
    for (const Message &M : Due)
      if (M.Type == MsgType::WorkDispatch)
        Trace->flowFinish(M.Seq, /*Pid=*/M.DstNode, /*Tid=*/M.Thread,
                          "work-dispatch", M.ArriveCycle);
  return Due;
}

int64_t Interconnect::nextArrival() const {
  int64_t Earliest = -1;
  for (const Message &M : InFlight)
    if (Earliest < 0 || M.ArriveCycle < Earliest)
      Earliest = M.ArriveCycle;
  return Earliest;
}
