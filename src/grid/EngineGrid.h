//===- EngineGrid.h - Lockstep multi-micro-engine grid ----------*- C++ -*-===//
///
/// \file
/// Scale-out of the single-micro-engine model: an EngineGrid steps 2-16
/// MicroEngines in lockstep time slices, exchanging typed messages over a
/// modeled Interconnect (mgsim's Processor grid + Network is the design
/// exemplar). Each MicroEngine owns one complete Simulator — its own GPR
/// file, memory image, thread set and SimResult — and implements the
/// simulator's GridPort: every main-loop iteration consumes one work
/// credit, completions flow to the ingress node, and the ingress answers
/// each completion with the next work dispatch. A thread that outruns its
/// credit window blocks at its `loopend` and the wait is booked in the
/// InterconnectStall cycle bucket.
///
/// Lockstep safety: the slice length equals the interconnect hop latency,
/// so a message sent during slice K (arrival >= send + HopLatency) can
/// never be due before the boundary that ends slice K. Delivering all
/// arrived messages at each boundary, with engines stepped in fixed index
/// order, therefore never violates causality and is fully deterministic.
///
/// A single-engine grid attaches no GridPort at all: the engine's run is
/// the plain Simulator::run() sequence and its result is cycle-identical
/// to the non-grid path.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_GRID_ENGINEGRID_H
#define NPRAL_GRID_ENGINEGRID_H

#include "grid/Interconnect.h"
#include "sim/Simulator.h"

#include <memory>
#include <string>
#include <vector>

namespace npral {

class CycleTrace;
class TelemetrySampler;

/// One micro-engine of the grid: wraps a Simulator over its own program,
/// register file and memory, plus the per-thread credit state of the work
/// protocol. Owns the MultiThreadProgram so the Simulator's reference stays
/// valid for the engine's lifetime.
class MicroEngine : public GridPort {
public:
  MicroEngine(int Id, MultiThreadProgram Program, const SimConfig &Config,
              int InitialCredits);
  MicroEngine(const MicroEngine &) = delete;
  MicroEngine &operator=(const MicroEngine &) = delete;

  int id() const { return Id; }
  int numThreads() const { return static_cast<int>(Credits.size()); }
  Simulator &sim() { return Sim; }
  const Simulator &sim() const { return Sim; }

  /// Join the fabric as chain node \p NodeId (ingress = \p IngressNode) and
  /// start consuming work credits. Must be called before the run begins;
  /// never called for a single-engine grid.
  void attach(Interconnect *Fabric, int IngressNode, int NodeId);

  /// A WorkDispatch for \p Thread arrived at \p ArriveCycle: wake the
  /// thread if it blocked on the interconnect, bank a credit otherwise. A
  /// dispatch for an already-halted thread bounces back to the ingress as a
  /// Credit message.
  void deliverWork(int Thread, int64_t ArriveCycle);

  // GridPort: called by the owned Simulator during advanceUntil().
  void onIterationComplete(int Thread, int64_t Cycle) override;
  bool tryAcquireWork(int Thread, int64_t Cycle) override;

  /// Work tokens currently banked across all threads — the telemetry
  /// sampler's per-engine credit gauge.
  int64_t creditsInHand() const;

private:
  int Id;
  MultiThreadProgram MTP;
  Simulator Sim;
  Interconnect *Fabric = nullptr;
  int IngressNode = 0;
  int NodeId = -1;
  /// Work tokens in hand per thread; `loopend` consumes one.
  std::vector<int> Credits;
  /// Threads blocked at a `loopend` with no token (mirrors the simulator's
  /// GridBlocked state so deliverWork knows whether to wake or to bank).
  std::vector<char> Blocked;
};

/// Aggregate outcome of one grid run.
struct GridRunResult {
  /// True when every engine's run completed (no failure anywhere).
  bool Completed = false;
  /// First failing engine's reason, prefixed with its id.
  std::string FailReason;
  /// Per-engine simulation results, indexed by engine id.
  std::vector<SimResult> Engines;
  /// Max over engines of TotalCycles — the grid's wall-clock.
  int64_t MaxEngineCycles = 0;
  int64_t MessagesSent = 0;
  int64_t MessagesDelivered = 0;
  /// Work tokens bounced back to the ingress by halted threads.
  int64_t CreditsReturned = 0;

  /// Per-engine fabric traffic, indexed by engine id (empty for a
  /// single-engine grid, which has no fabric). Also published as the
  /// grid.engine<E>.* metrics.
  struct EngineTraffic {
    /// Messages the engine sent to the ingress (completions + credits).
    int64_t MessagesSent = 0;
    /// WorkDispatches delivered to the engine.
    int64_t MessagesReceived = 0;
    /// Credits this engine bounced back off halted threads.
    int64_t CreditsReturned = 0;
  };
  std::vector<EngineTraffic> Traffic;
};

/// Steps N engines in lockstep over a shared Interconnect. Engines are
/// added fully configured (program, SimConfig, initial credits); memory and
/// entry values are seeded through engine.sim() before run().
class EngineGrid {
public:
  /// \p HopLatency is both the per-hop message latency and the lockstep
  /// slice length; \p InitialCredits is each thread's work window.
  EngineGrid(int HopLatency, int InitialCredits);

  MicroEngine &addEngine(MultiThreadProgram Program, const SimConfig &Config);

  int numEngines() const { return static_cast<int>(Engines.size()); }
  MicroEngine &engine(int Id) { return *Engines[static_cast<size_t>(Id)]; }

  /// Attach cycle-domain telemetry for the next run(): \p Trace receives
  /// the fabric's message slices and dispatch->delivery flow events, and
  /// \p Sampler (optional) is driven at every lockstep slice boundary with
  /// per-engine occupancy / ready depth / credits plus the fabric's
  /// in-flight message count. Either may be null. For a single-engine grid
  /// (no fabric, no boundaries) the sampler is delegated to the engine's
  /// own scheduler loop under the same grid.engine0.* counter names.
  void setTelemetry(CycleTrace *Trace, TelemetrySampler *Sampler);

  /// Run every engine to completion. Single engine: plain simulator run, no
  /// fabric. Multiple engines: lockstep slices of HopLatency cycles with
  /// boundary message delivery.
  GridRunResult run();

private:
  Interconnect Fabric;
  int InitialCredits;
  std::vector<std::unique_ptr<MicroEngine>> Engines;
  CycleTrace *Trace = nullptr;
  TelemetrySampler *Sampler = nullptr;
};

} // namespace npral

#endif // NPRAL_GRID_ENGINEGRID_H
