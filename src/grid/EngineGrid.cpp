//===- EngineGrid.cpp -----------------------------------------------------===//

#include "grid/EngineGrid.h"

#include "trace/CycleTrace.h"
#include "trace/MetricsRegistry.h"
#include "trace/Telemetry.h"
#include "trace/TraceEngine.h"

#include <cassert>
#include <limits>
#include <string>

using namespace npral;

MicroEngine::MicroEngine(int Id, MultiThreadProgram Program,
                         const SimConfig &Config, int InitialCredits)
    : Id(Id), MTP(std::move(Program)), Sim(MTP, Config),
      Credits(MTP.Threads.size(), InitialCredits),
      Blocked(MTP.Threads.size(), 0) {
  assert(InitialCredits >= 1 && "a thread needs at least one work token");
}

void MicroEngine::attach(Interconnect *F, int Ingress, int Node) {
  Fabric = F;
  IngressNode = Ingress;
  NodeId = Node;
  Sim.setGridPort(this);
}

bool MicroEngine::tryAcquireWork(int Thread, int64_t Cycle) {
  (void)Cycle;
  int &C = Credits[static_cast<size_t>(Thread)];
  if (C > 0) {
    --C;
    return true;
  }
  Blocked[static_cast<size_t>(Thread)] = 1;
  return false;
}

void MicroEngine::onIterationComplete(int Thread, int64_t Cycle) {
  assert(Fabric && "iteration reported without an attached fabric");
  Fabric->send(MsgType::Completion, NodeId, IngressNode, Id, Thread, Cycle);
}

void MicroEngine::deliverWork(int Thread, int64_t ArriveCycle) {
  if (Sim.runEnded())
    return; // the run failed or finished; tokens are moot
  if (Blocked[static_cast<size_t>(Thread)]) {
    Blocked[static_cast<size_t>(Thread)] = 0;
    Sim.grantWork(Thread, ArriveCycle);
    return;
  }
  // A halted thread (equivalence runs halt at target) consumes no further
  // work; return the token to the ingress as backpressure.
  if (Sim.threadHalted(Thread)) {
    Fabric->send(MsgType::Credit, NodeId, IngressNode, Id, Thread,
                 ArriveCycle);
    return;
  }
  ++Credits[static_cast<size_t>(Thread)];
}

int64_t MicroEngine::creditsInHand() const {
  int64_t N = 0;
  for (int C : Credits)
    N += C;
  return N;
}

EngineGrid::EngineGrid(int HopLatency, int InitialCredits)
    : Fabric(HopLatency), InitialCredits(InitialCredits) {}

void EngineGrid::setTelemetry(CycleTrace *T, TelemetrySampler *S) {
  Trace = T;
  Sampler = S;
}

MicroEngine &EngineGrid::addEngine(MultiThreadProgram Program,
                                   const SimConfig &Config) {
  Engines.push_back(std::make_unique<MicroEngine>(
      static_cast<int>(Engines.size()), std::move(Program), Config,
      InitialCredits));
  return *Engines.back();
}

GridRunResult EngineGrid::run() {
  NPRAL_TRACE_SPAN_ARGS("grid", "EngineGrid::run",
                        {"engines", std::to_string(Engines.size())},
                        {"hop_latency",
                         std::to_string(Fabric.hopLatency())});
  assert(!Engines.empty() && "grid needs at least one engine");
  GridRunResult Result;

  if (Engines.size() == 1) {
    // No fabric to cross: the run is the plain Simulator::run() sequence
    // and must stay cycle-identical to it. Without lockstep boundaries the
    // engine's own scheduler drives any sampler.
    Simulator &Sim = Engines[0]->sim();
    if (Sampler)
      Sim.setSampler(Sampler, "grid.engine0.");
    Sim.beginRun();
    Sim.advanceUntil(std::numeric_limits<int64_t>::max());
    Result.Engines.push_back(Sim.takeResult());
    if (Sampler)
      Sim.setSampler(nullptr, "sim.");
  } else {
    const int64_t Slice = Fabric.hopLatency();
    Fabric.setCycleTrace(Trace);
    Result.Traffic.resize(Engines.size());
    for (size_t E = 0; E < Engines.size(); ++E) {
      Engines[E]->attach(&Fabric, /*IngressNode=*/0,
                         /*NodeId=*/static_cast<int>(E) + 1);
      Engines[E]->sim().beginRun();
    }
    // Boundary delivery: the ingress answers each completion with the next
    // work item, stamped at the completion's own arrival cycle so the full
    // round-trip latency is modeled; everything else is engine-bound.
    auto DeliverBoundary = [&](int64_t At) {
      for (const Message &M : Fabric.deliverUpTo(At)) {
        GridRunResult::EngineTraffic &ET =
            Result.Traffic[static_cast<size_t>(M.Engine)];
        if (M.DstNode == 0) {
          ++ET.MessagesSent;
          if (M.Type == MsgType::Completion) {
            Fabric.send(MsgType::WorkDispatch, /*SrcNode=*/0,
                        /*DstNode=*/M.Engine + 1, M.Engine, M.Thread,
                        M.ArriveCycle);
          } else {
            ++Result.CreditsReturned;
            ++ET.CreditsReturned;
          }
          continue;
        }
        ++ET.MessagesReceived;
        Engines[static_cast<size_t>(M.Engine)]->deliverWork(M.Thread,
                                                            M.ArriveCycle);
      }
    };
    int64_t Now = 0;
    for (;;) {
      // Every engine has reached Now; all due traffic is safe to deliver.
      DeliverBoundary(Now);
      if (Sampler && Sampler->due(Now)) {
        // One sample per boundary at most, timestamped on the period grid
        // with the state every engine has reached — virtual time, so the
        // series is identical run to run.
        Sampler->beginSample(Sampler->nextDue());
        for (size_t E = 0; E < Engines.size(); ++E) {
          const std::string P = "grid.engine" + std::to_string(E) + ".";
          const Simulator &Sim = Engines[E]->sim();
          Sampler->value(static_cast<int64_t>(E) + 1, P + "occupancy",
                         Sim.liveThreadCount());
          Sampler->value(static_cast<int64_t>(E) + 1, P + "ready",
                         Sim.readyThreadCount());
          Sampler->value(static_cast<int64_t>(E) + 1, P + "credits",
                         Engines[E]->creditsInHand());
        }
        Sampler->value(/*Pid=*/0, "fabric.in_flight", Fabric.inFlightCount());
        Sampler->endSample(Now);
      }
      bool AnyActive = false;
      for (std::unique_ptr<MicroEngine> &E : Engines) {
        Simulator &Sim = E->sim();
        if (!Sim.runEnded())
          AnyActive |= Sim.advanceUntil(Now + Slice);
      }
      if (!AnyActive)
        break;
      Now += Slice;
    }
    // Drain: the runs have ended but completions, their reply dispatches
    // and returned credits may still be in flight. Deliver them so the
    // fabric accounting balances; dispatches landing on an ended run are
    // dropped by deliverWork, so this converges.
    for (int64_t Next = Fabric.nextArrival(); Next >= 0;
         Next = Fabric.nextArrival())
      DeliverBoundary(Next);
    for (std::unique_ptr<MicroEngine> &E : Engines)
      Result.Engines.push_back(E->sim().takeResult());
  }

  Result.Completed = true;
  for (size_t E = 0; E < Result.Engines.size(); ++E) {
    const SimResult &R = Result.Engines[E];
    if (!R.Completed && Result.Completed) {
      Result.Completed = false;
      Result.FailReason =
          "engine " + std::to_string(E) + ": " + R.FailReason;
    }
    if (R.TotalCycles > Result.MaxEngineCycles)
      Result.MaxEngineCycles = R.TotalCycles;
  }
  Result.MessagesSent = Fabric.messagesSent();
  Result.MessagesDelivered = Fabric.messagesDelivered();

  MetricsRegistry &MR = MetricsRegistry::global();
  MR.counter("grid.runs").add(1);
  MR.counter("grid.messages_sent").add(Result.MessagesSent);
  MR.counter("grid.messages_delivered").add(Result.MessagesDelivered);
  MR.counter("grid.credits_returned").add(Result.CreditsReturned);
  for (size_t E = 0; E < Result.Traffic.size(); ++E) {
    const GridRunResult::EngineTraffic &ET = Result.Traffic[E];
    const std::string Prefix = "grid.engine" + std::to_string(E) + ".";
    MR.counter(Prefix + "messages_sent").add(ET.MessagesSent);
    MR.counter(Prefix + "messages_received").add(ET.MessagesReceived);
    if (ET.CreditsReturned > 0)
      MR.counter(Prefix + "credits_returned").add(ET.CreditsReturned);
  }
  return Result;
}
