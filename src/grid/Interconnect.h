//===- Interconnect.h - Typed message fabric between engines ----*- C++ -*-===//
///
/// \file
/// The modeled interconnect of the engine grid (docs/grid.md). Engines and
/// the ingress node sit on a chain: node 0 is the ingress (packet source /
/// credit sink), engine E occupies node E+1. A message from node S to node
/// D travels |S - D| hops at a fixed per-hop latency, so its arrival cycle
/// is SendCycle + HopLatency * hops — cross-engine traffic therefore costs
/// real simulated cycles, which the simulator books as InterconnectStall
/// when a thread has to wait for them.
///
/// Three message types implement a credit-based work protocol:
///
///  * WorkDispatch — ingress -> engine: one work item (packet) for a
///    specific (engine, thread); arrival adds one credit, waking the
///    thread if it blocked at its `loopend`.
///  * Completion   — engine -> ingress: a thread retired one main-loop
///    iteration; the ingress answers with the next WorkDispatch.
///  * Credit       — engine -> ingress: backpressure return of a work item
///    delivered to a thread that has already halted (the token is recycled
///    instead of being lost).
///
/// Delivery is deterministic: messages are ordered by (ArriveCycle,
/// sequence number), and the grid only delivers at lockstep slice
/// boundaries that all engines have reached.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_GRID_INTERCONNECT_H
#define NPRAL_GRID_INTERCONNECT_H

#include <cstdint>
#include <vector>

namespace npral {

class CycleTrace;

enum class MsgType { WorkDispatch, Completion, Credit };

const char *msgTypeName(MsgType T);

struct Message {
  MsgType Type = MsgType::WorkDispatch;
  /// Chain nodes: 0 = ingress, engine E = node E + 1.
  int SrcNode = 0;
  int DstNode = 0;
  /// The (engine, thread) the message concerns — the destination of a
  /// WorkDispatch, the source of a Completion/Credit.
  int Engine = 0;
  int Thread = 0;
  int64_t SendCycle = 0;
  int64_t ArriveCycle = 0;
  /// Global send order; ties on ArriveCycle deliver in send order.
  uint64_t Seq = 0;
};

class Interconnect {
public:
  /// \p HopLatency must be >= 1: a message can never arrive in the slice
  /// it was sent, which is what makes lockstep delivery conservative.
  explicit Interconnect(int HopLatency);

  int hopLatency() const { return HopLatency; }

  /// Cycles from node \p Src to node \p Dst.
  int64_t latency(int Src, int Dst) const {
    int Hops = Src < Dst ? Dst - Src : Src - Dst;
    return static_cast<int64_t>(HopLatency) * Hops;
  }

  /// Mirror fabric traffic into a cycle-domain trace (null detaches):
  /// every message becomes an 'X' slice on the fabric track (pid 0, tid =
  /// engine lane) spanning its modeled latency, and each WorkDispatch
  /// additionally opens a flow ('s' at the send, 'f' at the delivery on
  /// the destination thread's track, id = the message sequence number), so
  /// dispatch -> delivery renders as arrows in Perfetto.
  void setCycleTrace(CycleTrace *T) { Trace = T; }

  /// Inject a message at \p Cycle; the arrival cycle is stamped from the
  /// node distance.
  void send(MsgType Type, int SrcNode, int DstNode, int Engine, int Thread,
            int64_t Cycle);

  /// Remove and return every message with ArriveCycle <= \p Now, ordered by
  /// (ArriveCycle, Seq).
  std::vector<Message> deliverUpTo(int64_t Now);

  /// Earliest pending arrival cycle, or -1 when the fabric is empty.
  int64_t nextArrival() const;

  int64_t messagesSent() const { return Sent; }
  int64_t messagesDelivered() const { return Delivered; }
  /// Messages currently in the fabric (sent, not yet delivered) — the
  /// telemetry sampler's outstanding-message gauge.
  int64_t inFlightCount() const { return static_cast<int64_t>(InFlight.size()); }

private:
  int HopLatency;
  std::vector<Message> InFlight;
  uint64_t NextSeq = 0;
  int64_t Sent = 0;
  int64_t Delivered = 0;
  CycleTrace *Trace = nullptr;
};

} // namespace npral

#endif // NPRAL_GRID_INTERCONNECT_H
