//===- GridHarness.h - End-to-end multi-engine experiments ------*- C++ -*-===//
///
/// \file
/// Glue from kernel names to a finished grid run: replicate a Table-3
/// scenario template across N engines, extract per-kernel placement traits
/// (register bounds + ctx density), place the pool with a chosen policy,
/// run the paper's inter-thread allocator independently on every engine's
/// bin (spill fallback engaged, as each engine has its own GPR file), and
/// simulate the engines in lockstep over the modeled interconnect.
///
/// The headline number is aggregate throughput in iterations (packets) per
/// kilocycle: total iterations retired across all threads of all engines,
/// divided by the slowest engine's cycle count. The slowest engine is the
/// wall-clock of the grid, which is exactly why placement matters — see
/// docs/grid.md.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_GRID_GRIDHARNESS_H
#define NPRAL_GRID_GRIDHARNESS_H

#include "grid/EngineGrid.h"
#include "grid/Placement.h"
#include "trace/Telemetry.h"
#include "workloads/Harness.h"

#include <string>
#include <vector>

namespace npral {

struct GridOptions {
  int NumEngines = 4;
  PlacementPolicy Policy = PlacementPolicy::Bounds;
  /// GPR file size of each engine.
  int Nreg = 128;
  /// Interconnect per-hop latency (= lockstep slice length), cycles.
  int HopLatency = 4;
  /// Work tokens each thread starts with (its credit window).
  int InitialCredits = 4;
  SimConfig Sim = defaultExperimentConfig();
  /// Cycle-domain trace sink (virtual-time thread-state slices, counter
  /// tracks, dispatch->delivery flows — trace/CycleTrace.h). Null disables;
  /// owned by the caller, who exports it after the run.
  CycleTrace *Trace = nullptr;
  /// Ring buffer receiving telemetry samples (trace/Telemetry.h); null
  /// disables the programmatic sink.
  TelemetryRing *Ring = nullptr;
  /// Telemetry sampling period in cycles; 0 disables sampling (no counter
  /// tracks, no ring samples).
  int64_t SampleCycles = 0;
};

/// One engine's slice of a grid run.
struct GridEngineReport {
  std::vector<std::string> Kernels;
  /// Inter-thread allocation outcome for this engine's bin.
  int RegistersUsed = 0;
  bool Spilled = false;
  int SpilledRanges = 0;
  SimResult Result;
  int64_t Iterations = 0;
  int64_t InterconnectStallCycles = 0;
};

struct GridReport {
  bool Success = false;
  std::string FailReason;
  std::string Name;
  std::string Policy;
  int NumEngines = 0;
  std::vector<GridEngineReport> Engines;
  PlacementResult Placement;
  /// Max over engines of TotalCycles — the grid's wall-clock.
  int64_t MaxEngineCycles = 0;
  int64_t TotalIterations = 0;
  /// Aggregate throughput: TotalIterations * 1000 / MaxEngineCycles.
  double IterationsPerKilocycle = 0.0;
  int64_t TotalInterconnectStall = 0;
  int64_t MessagesSent = 0;
  int64_t MessagesDelivered = 0;
  int64_t CreditsReturned = 0;
};

/// Extract the placement traits of kernel \p Name (built at slot 0,
/// live-range renamed, analysed). Fatal on unknown kernels.
KernelTraits computeKernelTraits(const std::string &Name);

/// Run a grid over an explicit kernel-name pool. Pool size must equal
/// NumEngines * 4 (each engine runs the paper's four thread contexts).
GridReport runKernelPoolGrid(const std::string &Name,
                             const std::vector<std::string> &Pool,
                             const GridOptions &Opts);

/// Replicate scenario \p S's 4-kernel template across Opts.NumEngines
/// engines and run the grid.
GridReport runScenarioGrid(const Scenario &S, const GridOptions &Opts);

/// Build the kernel pool for a named grid scenario: "s1"/"s2"/"s3" (the
/// Table-3 scenarios, template replicated) or "mixed" (the three templates
/// concatenated cyclically). Returns false on an unknown name.
bool buildGridPool(const std::string &ScenarioName, int NumEngines,
                   std::vector<std::string> &Pool);

} // namespace npral

#endif // NPRAL_GRID_GRIDHARNESS_H
