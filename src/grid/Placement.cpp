//===- Placement.cpp ------------------------------------------------------===//

#include "grid/Placement.h"

#include "trace/TraceEngine.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace npral;

const char *npral::placementPolicyName(PlacementPolicy P) {
  switch (P) {
  case PlacementPolicy::RoundRobin:
    return "roundrobin";
  case PlacementPolicy::Bounds:
    return "bounds";
  case PlacementPolicy::Search:
    return "search";
  }
  return "?";
}

bool npral::parsePlacementPolicy(const std::string &Name,
                                 PlacementPolicy &Out) {
  if (Name == "roundrobin")
    Out = PlacementPolicy::RoundRobin;
  else if (Name == "bounds")
    Out = PlacementPolicy::Bounds;
  else if (Name == "search")
    Out = PlacementPolicy::Search;
  else
    return false;
  return true;
}

namespace {

struct BinLoad {
  int64_t MinPRSum = 0;
  int64_t CtxSum = 0;
};

std::vector<BinLoad> binLoads(const PlacementInput &In,
                              const std::vector<std::vector<int>> &Bins) {
  std::vector<BinLoad> Loads(Bins.size());
  for (size_t E = 0; E < Bins.size(); ++E)
    for (int P : Bins[E]) {
      const KernelTraits &T =
          In.Traits[static_cast<size_t>(In.Pool[static_cast<size_t>(P)])];
      Loads[E].MinPRSum += T.MinPR;
      Loads[E].CtxSum += T.CtxPerMille;
    }
  return Loads;
}

} // namespace

int64_t npral::placementCost(const PlacementInput &In,
                             const std::vector<std::vector<int>> &Bins) {
  std::vector<BinLoad> Loads = binLoads(In, Bins);
  int64_t Overflow = 0;
  int64_t MinCtx = 0, MaxCtx = 0, MinPR = 0, MaxPR = 0;
  for (size_t E = 0; E < Loads.size(); ++E) {
    Overflow += std::max<int64_t>(0, Loads[E].MinPRSum - In.EngineRegs);
    if (E == 0 || Loads[E].CtxSum < MinCtx)
      MinCtx = Loads[E].CtxSum;
    if (E == 0 || Loads[E].CtxSum > MaxCtx)
      MaxCtx = Loads[E].CtxSum;
    if (E == 0 || Loads[E].MinPRSum < MinPR)
      MinPR = Loads[E].MinPRSum;
    if (E == 0 || Loads[E].MinPRSum > MaxPR)
      MaxPR = Loads[E].MinPRSum;
  }
  // Lexicographic by weight: a single overflowed register outweighs any
  // imbalance; ctx-density spread outweighs the MinPR-balance tiebreak.
  return Overflow * 1'000'000'000 + (MaxCtx - MinCtx) * 1'000 +
         (MaxPR - MinPR);
}

PlacementResult npral::placeThreads(const PlacementInput &In,
                                    PlacementPolicy P) {
  NPRAL_TRACE_SPAN_ARGS("grid", "placeThreads",
                        {"policy", placementPolicyName(P)},
                        {"threads", std::to_string(In.Pool.size())});
  assert(In.NumEngines > 0 && In.ThreadsPerEngine > 0);
  assert(In.Pool.size() == static_cast<size_t>(In.NumEngines) *
                               static_cast<size_t>(In.ThreadsPerEngine) &&
         "pool must fill every engine slot exactly");
  PlacementResult R;
  R.Policy = placementPolicyName(P);
  R.Bins.assign(static_cast<size_t>(In.NumEngines), {});

  const auto TraitsOf = [&](int PoolIdx) -> const KernelTraits & {
    return In.Traits[static_cast<size_t>(
        In.Pool[static_cast<size_t>(PoolIdx)])];
  };

  if (P == PlacementPolicy::RoundRobin) {
    for (size_t I = 0; I < In.Pool.size(); ++I)
      R.Bins[I % static_cast<size_t>(In.NumEngines)].push_back(
          static_cast<int>(I));
    R.Cost = placementCost(In, R.Bins);
    return R;
  }

  // bounds: LPT bin-packing on MinPR. Decreasing MinPR (stable: ties keep
  // pool order), each thread onto the least-loaded engine with a free slot,
  // preferring engines it fits into without overflowing the register file.
  std::vector<int> Order(In.Pool.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](int A, int B) {
    return TraitsOf(A).MinPR > TraitsOf(B).MinPR;
  });
  std::vector<BinLoad> Loads(static_cast<size_t>(In.NumEngines));
  for (int PoolIdx : Order) {
    const KernelTraits &T = TraitsOf(PoolIdx);
    int Best = -1;
    bool BestFits = false;
    for (int E = 0; E < In.NumEngines; ++E) {
      const size_t EU = static_cast<size_t>(E);
      if (static_cast<int>(R.Bins[EU].size()) >= In.ThreadsPerEngine)
        continue;
      bool Fits = Loads[EU].MinPRSum + T.MinPR <= In.EngineRegs;
      // A fitting engine always beats an overflowing one; within a class
      // the smaller MinPR sum wins, ties to the lowest engine id.
      if (Best < 0 || (Fits && !BestFits) ||
          (Fits == BestFits &&
           Loads[EU].MinPRSum < Loads[static_cast<size_t>(Best)].MinPRSum)) {
        Best = E;
        BestFits = Fits;
      }
    }
    assert(Best >= 0 && "pool size guarantees a free slot");
    R.Bins[static_cast<size_t>(Best)].push_back(PoolIdx);
    Loads[static_cast<size_t>(Best)].MinPRSum += T.MinPR;
    Loads[static_cast<size_t>(Best)].CtxSum += T.CtxPerMille;
  }
  R.Cost = placementCost(In, R.Bins);
  if (P == PlacementPolicy::Bounds)
    return R;

  // search: deterministic first-improvement pairwise swaps on the bounds
  // seed, bounded passes. Slot order within a bin is irrelevant to cost, so
  // only cross-bin swaps are tried.
  const int MaxPasses = 8;
  for (int Pass = 0; Pass < MaxPasses; ++Pass) {
    bool Improved = false;
    for (size_t E1 = 0; E1 < R.Bins.size(); ++E1)
      for (size_t E2 = E1 + 1; E2 < R.Bins.size(); ++E2)
        for (size_t I = 0; I < R.Bins[E1].size(); ++I)
          for (size_t J = 0; J < R.Bins[E2].size(); ++J) {
            std::swap(R.Bins[E1][I], R.Bins[E2][J]);
            int64_t C = placementCost(In, R.Bins);
            if (C < R.Cost) {
              R.Cost = C;
              ++R.SwapsApplied;
              Improved = true;
            } else {
              std::swap(R.Bins[E1][I], R.Bins[E2][J]);
            }
          }
    if (!Improved)
      break;
  }
  return R;
}
