//===- Placement.h - Thread-to-engine placement -----------------*- C++ -*-===//
///
/// \file
/// Placement is the grid's outer allocation dimension: which threads
/// co-reside on which engine decides both how tight each engine's
/// inter-thread register allocation gets (Σ MinPR against the engine's GPR
/// file) and how well compute overlaps memory stalls (a mix of
/// context-switch-heavy and compute-heavy kernels keeps the CPU busy; a
/// segregated engine either idles on memory or serialises on the ALU).
///
/// Three policies:
///
///  * roundrobin — thread i goes to engine i mod N; the naive dealing that
///    real assignments start from. On pools built by replicating a 4-kernel
///    template N times this segregates kernels whenever N divides the
///    template period — the case the bounds policies exist to beat.
///  * bounds — greedy bin-packing on the per-thread MinPR bound (LPT:
///    place threads in decreasing MinPR order onto the engine with the
///    smallest MinPR sum that still has a free slot, preferring engines the
///    thread fits into without exceeding the register file). MinPR is the
///    boundary-pressure bound RegPCSBmax computed from the BIG, so this is
///    the interference-aware signal; as a side effect the LPT order
///    interleaves heavy and light kernels across engines.
///  * search — local-search refinement of the bounds seed: deterministic
///    first-improvement pairwise swaps minimising a cost that penalises
///    register overflow first, then imbalance of the per-engine
///    context-switch density (the throughput driver: ctx density is the
///    memory-overlap opportunity), then MinPR imbalance.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_GRID_PLACEMENT_H
#define NPRAL_GRID_PLACEMENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace npral {

enum class PlacementPolicy { RoundRobin, Bounds, Search };

const char *placementPolicyName(PlacementPolicy P);
/// Parses "roundrobin" / "bounds" / "search"; returns false on anything
/// else.
bool parsePlacementPolicy(const std::string &Name, PlacementPolicy &Out);

/// The per-kernel signals placement consumes, extracted once per distinct
/// kernel from its ThreadAnalysisBundle (bounds + interference graphs) and
/// program text.
struct KernelTraits {
  std::string Name;
  /// Register bounds (§5): MinPR = RegPCSBmax from the BIG.
  int MinPR = 0;
  int MaxPR = 0;
  int MaxR = 0;
  /// Live ranges crossing some CSB — the BIG's node count.
  int BoundaryNodes = 0;
  /// Context-switch points (memory ops + ctx) per 1000 instructions — the
  /// kernel's appetite for latency overlap.
  int CtxPerMille = 0;
};

struct PlacementInput {
  /// One entry per thread to place: an index into Traits.
  std::vector<int> Pool;
  std::vector<KernelTraits> Traits;
  int NumEngines = 0;
  int ThreadsPerEngine = 4;
  /// GPR file size of one engine.
  int EngineRegs = 128;
};

struct PlacementResult {
  /// Bins[e] = pool indices assigned to engine e, in slot order.
  std::vector<std::vector<int>> Bins;
  std::string Policy;
  /// Cost of the final assignment under the search objective (comparable
  /// across policies).
  int64_t Cost = 0;
  /// Swaps the local search applied (0 for the other policies).
  int SwapsApplied = 0;
};

/// Cost of an assignment under the search objective (exposed for tests).
int64_t placementCost(const PlacementInput &In,
                      const std::vector<std::vector<int>> &Bins);

/// Assign In.Pool (size NumEngines * ThreadsPerEngine) to engines.
PlacementResult placeThreads(const PlacementInput &In, PlacementPolicy P);

} // namespace npral

#endif // NPRAL_GRID_PLACEMENT_H
