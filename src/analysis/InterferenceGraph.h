//===- InterferenceGraph.h - GIG / BIG / IIG --------------------*- C++ -*-===//
///
/// \file
/// Interference graphs over live ranges (= virtual registers). The paper
/// distinguishes three graphs per thread (§3.2):
///
///  * GIG (global): every live range; an edge whenever two ranges are
///    co-live at some program point;
///  * BIG (boundary): only live ranges that cross some CSB; an edge only
///    when two ranges are co-live across the *same* CSB;
///  * IIG per NSR (internal): live ranges local to one NSR and their
///    interference edges.
///
/// Claim 1: spill-free allocation needs GIG colorable with R colors and BIG
/// with PR colors. Claim 2: distinct IIGs share no edges.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ANALYSIS_INTERFERENCEGRAPH_H
#define NPRAL_ANALYSIS_INTERFERENCEGRAPH_H

#include "analysis/Liveness.h"
#include "analysis/NSR.h"
#include "ir/Program.h"
#include "support/BitVector.h"

#include <vector>

namespace npral {

/// Undirected graph over dense node IDs with bit-matrix adjacency.
class InterferenceGraph {
public:
  InterferenceGraph() = default;
  explicit InterferenceGraph(int NumNodes) { reset(NumNodes); }

  void reset(int NumNodes);

  int getNumNodes() const { return static_cast<int>(Adj.size()); }

  void addEdge(int A, int B);
  bool hasEdge(int A, int B) const {
    return Adj[static_cast<size_t>(A)].test(B);
  }
  int degree(int N) const { return Adj[static_cast<size_t>(N)].count(); }
  const BitVector &neighbors(int N) const {
    return Adj[static_cast<size_t>(N)];
  }
  int getNumEdges() const { return NumEdges; }

  /// Add a node (no edges); returns its ID.
  int addNode();

  /// Smallest-last (degeneracy) elimination order restricted to the nodes
  /// set in \p Members; good orders for greedy coloring.
  std::vector<int> smallestLastOrder(const BitVector &Members) const;

private:
  std::vector<BitVector> Adj;
  int NumEdges = 0;
};

/// Everything the allocators need to know about one thread.
struct ThreadAnalysis {
  LivenessInfo Liveness;
  NSRInfo NSRs;
  InterferenceGraph GIG;
  InterferenceGraph BIG;
  /// Node classification: boundary = live across some CSB.
  BitVector BoundaryNodes;
  /// Internal nodes (referenced, not boundary).
  BitVector InternalNodes;
  /// Home NSR of each internal node (-1 for boundary or unreferenced).
  std::vector<int> HomeNSR;
  /// Members of each IIG: internal nodes per NSR.
  std::vector<BitVector> IIGMembers;
  /// Live ranges that are referenced at all.
  BitVector ReferencedNodes;

  int getRegPmax() const { return Liveness.getRegPmax(); }
  int getRegPCSBmax() const { return NSRs.getRegPCSBmax(); }
  int getNumLiveRanges() const { return ReferencedNodes.count(); }
};

/// Run liveness, NSR construction and interference graph construction.
/// The program must verify and must not use undefined registers.
ThreadAnalysis analyzeThread(const Program &P);

} // namespace npral

#endif // NPRAL_ANALYSIS_INTERFERENCEGRAPH_H
