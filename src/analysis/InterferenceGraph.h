//===- InterferenceGraph.h - GIG / BIG / IIG --------------------*- C++ -*-===//
///
/// \file
/// Interference graphs over live ranges (= virtual registers). The paper
/// distinguishes three graphs per thread (§3.2):
///
///  * GIG (global): every live range; an edge whenever two ranges are
///    co-live at some program point;
///  * BIG (boundary): only live ranges that cross some CSB; an edge only
///    when two ranges are co-live across the *same* CSB;
///  * IIG per NSR (internal): live ranges local to one NSR and their
///    interference edges.
///
/// Claim 1: spill-free allocation needs GIG colorable with R colors and BIG
/// with PR colors. Claim 2: distinct IIGs share no edges.
///
/// Representation: the graph is built word-parallel — a definition point
/// ORs the whole live-out row into the defining node's row; cliques OR the
/// member set into every member's row — into a square bit-matrix scratch,
/// then freeze() converts it into the two query structures the allocators
/// use: a packed lower-triangular bit-matrix for O(1) membership
/// (`hasEdge`) at half the memory, and a CSR adjacency list (int32 ids,
/// ascending) for iteration. The Fig. 8 loop and the coloring primitives
/// only ever iterate frozen graphs, so neighbor walks touch a dense int32
/// slice instead of re-scanning matrix rows bit by bit.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ANALYSIS_INTERFERENCEGRAPH_H
#define NPRAL_ANALYSIS_INTERFERENCEGRAPH_H

#include "analysis/Liveness.h"
#include "analysis/NSR.h"
#include "ir/Program.h"
#include "support/BitVector.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace npral {

/// Undirected graph over dense node IDs. Mutable while building (word-
/// parallel row ORs into a square bit-matrix); freeze() locks it into the
/// triangular-matrix + CSR form all queries run on. Analysis results are
/// shared read-only across batch worker threads, so analyzeThread freezes
/// every graph before publishing it.
class InterferenceGraph {
public:
  InterferenceGraph() = default;
  explicit InterferenceGraph(int NumNodes) { reset(NumNodes); }

  void reset(int NumNodes);

  int getNumNodes() const { return NumNodes; }

  //===--- Construction (before freeze) -----------------------------------===//

  /// OR \p Live into node \p N's adjacency row, word-parallel. The reverse
  /// direction is established at freeze() time, so a build is a plain row
  /// OR with no per-bit test-and-set.
  void markRow(int N, BitSpan Live) {
    assert(!Frozen && "graph already frozen");
    assert(Live.size() == NumNodes && "row size mismatch");
    uint64_t *Row = Build.data() + static_cast<size_t>(N) * WordsPerRow();
    const uint64_t *L = Live.words();
    for (size_t K = 0, W = WordsPerRow(); K < W; ++K)
      Row[K] |= L[K];
  }
  void markRow(int N, const BitVector &Live) { markRow(N, Live.span()); }

  /// Make every pair of set bits in \p Members adjacent (the entry-live
  /// clique and per-CSB cliques): each member's row ORs in the whole set;
  /// self-loops are stripped at freeze().
  void addClique(const BitVector &Members) {
    Members.forEach([&](int N) { markRow(N, Members); });
  }

  /// Add one edge (kept for tests and incremental callers).
  void addEdge(int A, int B) {
    assert(!Frozen && "graph already frozen");
    if (A == B)
      return;
    Build[static_cast<size_t>(A) * WordsPerRow() + static_cast<size_t>(B) / 64]
        |= uint64_t(1) << (B % 64);
    Build[static_cast<size_t>(B) * WordsPerRow() + static_cast<size_t>(A) / 64]
        |= uint64_t(1) << (A % 64);
  }

  /// Symmetrize, strip the diagonal, count edges, and build the packed
  /// triangular matrix + CSR adjacency. Idempotent; queries require it.
  void freeze();

  bool isFrozen() const { return Frozen; }

  //===--- Queries (after freeze) ------------------------------------------===//

  bool hasEdge(int A, int B) const {
    assert(Frozen && "query on unfrozen graph");
    if (A == B)
      return false;
    if (A < B)
      std::swap(A, B);
    // Lower-triangular packing: row A (A > B) starts at bit A*(A-1)/2.
    size_t Bit = static_cast<size_t>(A) * (static_cast<size_t>(A) - 1) / 2 +
                 static_cast<size_t>(B);
    return (Tri[Bit / 64] >> (Bit % 64)) & 1;
  }

  int degree(int N) const {
    assert(Frozen && "query on unfrozen graph");
    return Offsets[static_cast<size_t>(N) + 1] -
           Offsets[static_cast<size_t>(N)];
  }

  /// Ascending neighbor ids of \p N as a contiguous int32 slice.
  class NeighborList {
  public:
    NeighborList(const int32_t *Begin, const int32_t *End)
        : B(Begin), E(End) {}
    const int32_t *begin() const { return B; }
    const int32_t *end() const { return E; }
    int size() const { return static_cast<int>(E - B); }
    template <typename FnT> void forEach(FnT Fn) const {
      for (const int32_t *It = B; It != E; ++It)
        Fn(static_cast<int>(*It));
    }

  private:
    const int32_t *B;
    const int32_t *E;
  };

  NeighborList neighbors(int N) const {
    assert(Frozen && "query on unfrozen graph");
    return {AdjList.data() + Offsets[static_cast<size_t>(N)],
            AdjList.data() + Offsets[static_cast<size_t>(N) + 1]};
  }

  int getNumEdges() const {
    assert(Frozen && "query on unfrozen graph");
    return NumEdges;
  }

  /// Smallest-last (degeneracy) elimination order restricted to the nodes
  /// set in \p Members; good orders for greedy coloring. Ties on residual
  /// degree break toward the lowest node id (bit-compatible with the
  /// pre-rewrite linear-scan implementation).
  std::vector<int> smallestLastOrder(const BitVector &Members) const;

private:
  size_t WordsPerRow() const {
    return static_cast<size_t>((NumNodes + 63) / 64);
  }

  int NumNodes = 0;
  int NumEdges = 0;
  bool Frozen = false;
  /// Square bit-matrix scratch used only between reset() and freeze().
  std::vector<uint64_t> Build;
  /// Packed lower-triangular adjacency bits (frozen).
  std::vector<uint64_t> Tri;
  /// CSR adjacency (frozen): neighbors of N are
  /// AdjList[Offsets[N] .. Offsets[N+1]), ascending.
  std::vector<int32_t> Offsets;
  std::vector<int32_t> AdjList;
};

/// Everything the allocators need to know about one thread.
struct ThreadAnalysis {
  LivenessInfo Liveness;
  NSRInfo NSRs;
  InterferenceGraph GIG;
  InterferenceGraph BIG;
  /// Node classification: boundary = live across some CSB.
  BitVector BoundaryNodes;
  /// Internal nodes (referenced, not boundary).
  BitVector InternalNodes;
  /// Home NSR of each internal node (-1 for boundary or unreferenced).
  std::vector<int> HomeNSR;
  /// Members of each IIG: internal nodes per NSR.
  std::vector<BitVector> IIGMembers;
  /// Live ranges that are referenced at all.
  BitVector ReferencedNodes;

  int getRegPmax() const { return Liveness.getRegPmax(); }
  int getRegPCSBmax() const { return NSRs.getRegPCSBmax(); }
  int getNumLiveRanges() const { return ReferencedNodes.count(); }
};

/// Run liveness, NSR construction and interference graph construction.
/// The program must verify and must not use undefined registers. Both
/// graphs come back frozen.
ThreadAnalysis analyzeThread(const Program &P);

} // namespace npral

#endif // NPRAL_ANALYSIS_INTERFERENCEGRAPH_H
