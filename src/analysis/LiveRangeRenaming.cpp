//===- LiveRangeRenaming.cpp ----------------------------------------------===//

#include "analysis/LiveRangeRenaming.h"

#include "analysis/Liveness.h"

#include <cassert>
#include <numeric>
#include <vector>

using namespace npral;

namespace {

/// Union-find over program points (same layout as NSR construction: block b
/// contributes size(b)+1 points).
class PointUnionFind {
public:
  PointUnionFind(const Program &P) {
    PointBase.resize(static_cast<size_t>(P.getNumBlocks()));
    int Total = 0;
    for (int B = 0; B < P.getNumBlocks(); ++B) {
      PointBase[static_cast<size_t>(B)] = Total;
      Total += static_cast<int>(P.block(B).Instrs.size()) + 1;
    }
    Parent.resize(static_cast<size_t>(Total));
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  int pointId(int B, int I) const {
    return PointBase[static_cast<size_t>(B)] + I;
  }

  int find(int X) {
    while (Parent[static_cast<size_t>(X)] != X) {
      Parent[static_cast<size_t>(X)] =
          Parent[static_cast<size_t>(Parent[static_cast<size_t>(X)])];
      X = Parent[static_cast<size_t>(X)];
    }
    return X;
  }

  void unite(int A, int B) {
    A = find(A);
    B = find(B);
    if (A != B)
      Parent[static_cast<size_t>(A)] = B;
  }

private:
  std::vector<int> PointBase;
  std::vector<int> Parent;
};

} // namespace

Program npral::renameLiveRanges(const Program &P) {
  Program Out = P;
  LivenessInfo LI = computeLiveness(Out);

  // "Live at point (b,i)" means live just before instruction i; the
  // end-of-block point carries block live-out.
  auto liveAt = [&](Reg R, int B, int I) {
    const BasicBlock &BB = Out.block(B);
    if (I == static_cast<int>(BB.Instrs.size()))
      return LI.blockLiveOut(B).test(R);
    if (I == 0)
      return LI.blockLiveIn(B).test(R);
    return LI.instrLiveOut(B, I - 1).test(R);
  };

  const int OrigRegs = P.NumRegs;
  // Fresh register per (web of each original register). Process one
  // original register at a time.
  std::vector<Reg> NewOf; // scratch: component root -> fresh register

  for (Reg R = 0; R < OrigRegs; ++R) {
    PointUnionFind UF(Out);
    // Union adjacent points where R is live.
    for (int B = 0; B < Out.getNumBlocks(); ++B) {
      const BasicBlock &BB = Out.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I)
        if (liveAt(R, B, I) && liveAt(R, B, I + 1))
          UF.unite(UF.pointId(B, I), UF.pointId(B, I + 1));
      int EndPoint = static_cast<int>(BB.Instrs.size());
      for (int S : Out.successors(B))
        if (liveAt(R, B, EndPoint) && liveAt(R, S, 0))
          UF.unite(UF.pointId(B, EndPoint), UF.pointId(S, 0));
    }

    // Map each reference to its component's register. The first component
    // seen keeps the original register so most programs are unchanged.
    std::vector<int> RootToReg;     // parallel arrays
    std::vector<int> Roots;
    bool KeepOriginalUsed = false;
    auto regForRoot = [&](int Root) -> Reg {
      for (size_t K = 0; K < Roots.size(); ++K)
        if (Roots[K] == Root)
          return RootToReg[K];
      Reg Fresh;
      if (!KeepOriginalUsed) {
        Fresh = R;
        KeepOriginalUsed = true;
      } else {
        Fresh = Out.addReg(Out.getRegName(R) + ".w" +
                           std::to_string(Roots.size()));
      }
      Roots.push_back(Root);
      RootToReg.push_back(Fresh);
      return Fresh;
    };

    // Entry component first so entry-live registers keep their identity.
    if (LI.blockLiveIn(Out.getEntryBlock()).test(R))
      (void)regForRoot(UF.find(UF.pointId(Out.getEntryBlock(), 0)));

    for (int B = 0; B < Out.getNumBlocks(); ++B) {
      BasicBlock &BB = Out.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
        Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
        // Uses read the value live at the pre-point.
        if (Inst.Use1 == R || Inst.Use2 == R) {
          assert(liveAt(R, B, I) && "use of dead register");
          Reg NewReg = regForRoot(UF.find(UF.pointId(B, I)));
          if (Inst.Use1 == R)
            Inst.Use1 = NewReg;
          if (Inst.Use2 == R)
            Inst.Use2 = NewReg;
        }
        // Definitions write the value live at the post-point; a dead
        // definition gets its own register.
        if (Inst.Def == R) {
          Reg NewReg;
          if (liveAt(R, B, I + 1)) {
            NewReg = regForRoot(UF.find(UF.pointId(B, I + 1)));
          } else if (!KeepOriginalUsed) {
            NewReg = R;
            KeepOriginalUsed = true;
          } else {
            NewReg = Out.addReg(Out.getRegName(R) + ".dead");
          }
          Inst.Def = NewReg;
        }
      }
    }
  }

  // Entry-live list: regForRoot gave the entry component the original
  // register, so the list stays valid; nothing to rewrite.
  return Out;
}
