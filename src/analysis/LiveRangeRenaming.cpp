//===- LiveRangeRenaming.cpp ----------------------------------------------===//
//
// Web discovery runs word-parallel: one flat union-find over
// (register, program point) pairs, with unions driven by AND-ing the live
// sets of adjacent points and uniting only the co-live bits. Register
// assignment then replays per-register reference events in the exact order
// the original per-register implementation visited them (entry component
// first, uses before defs within an instruction, dead defs last), so fresh
// register numbering and the ".w<k>"/".dead" names are bit-identical to the
// pre-rewrite pass.
//
//===----------------------------------------------------------------------===//

#include "analysis/LiveRangeRenaming.h"

#include "analysis/Liveness.h"

#include <cassert>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

using namespace npral;

namespace {

struct RefEvent {
  int32_t Block;
  int32_t Instr;
  uint8_t IsDef; ///< 0 = use slot(s), 1 = definition.
};

} // namespace

Program npral::renameLiveRanges(const Program &P) {
  Program Out = P;
  LivenessInfo LI = computeLiveness(Out);

  const int NumBlocks = Out.getNumBlocks();
  const int OrigRegs = P.NumRegs;
  const int W = (OrigRegs + 63) / 64;

  // Program points: block b contributes size(b)+1 points; point (b, i) is
  // "just before instruction i", the final point carries block live-out.
  std::vector<int32_t> PointBase(static_cast<size_t>(NumBlocks));
  int TotalPoints = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    PointBase[static_cast<size_t>(B)] = TotalPoints;
    TotalPoints += static_cast<int>(Out.block(B).Instrs.size()) + 1;
  }
  auto pointId = [&](int B, int I) {
    return PointBase[static_cast<size_t>(B)] + I;
  };
  // Words of the live set at point (b, i); live-after-instruction slots in
  // the flat liveness pool double as the interior points.
  auto pointWords = [&](int B, int I) -> const uint64_t * {
    if (I == 0)
      return LI.blockLiveIn(B).words();
    return LI.instrLiveOut(B, I - 1).words();
  };
  auto liveAtPoint = [&](Reg R, int B, int I) {
    return (pointWords(B, I)[static_cast<size_t>(R) / 64] >> (R % 64)) & 1;
  };

  // Flat union-find over (register, point): register R's row occupies ids
  // [R*TotalPoints, (R+1)*TotalPoints).
  std::vector<int32_t> Parent(static_cast<size_t>(OrigRegs) *
                              static_cast<size_t>(TotalPoints));
  std::iota(Parent.begin(), Parent.end(), 0);
  auto find = [&](int32_t X) {
    while (Parent[static_cast<size_t>(X)] != X) {
      Parent[static_cast<size_t>(X)] =
          Parent[static_cast<size_t>(Parent[static_cast<size_t>(X)])];
      X = Parent[static_cast<size_t>(X)];
    }
    return X;
  };
  auto unite = [&](int32_t A, int32_t B) {
    A = find(A);
    B = find(B);
    if (A != B)
      Parent[static_cast<size_t>(A)] = B;
  };

  // Union adjacent points for every register live across the pair, one
  // word-parallel intersection per pair instead of a per-register bit test.
  auto uniteCoLive = [&](const uint64_t *LA, const uint64_t *LB, int PA,
                         int PB) {
    const int32_t BaseA = PA, BaseB = PB;
    for (int WI = 0; WI < W; ++WI) {
      uint64_t Word = LA[WI] & LB[WI];
      while (Word) {
        int R = WI * 64 + __builtin_ctzll(Word);
        Word &= Word - 1;
        unite(R * TotalPoints + BaseA, R * TotalPoints + BaseB);
      }
    }
  };
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = Out.block(B);
    const int N = static_cast<int>(BB.Instrs.size());
    for (int I = 0; I < N; ++I)
      uniteCoLive(pointWords(B, I), pointWords(B, I + 1), pointId(B, I),
                  pointId(B, I + 1));
    for (int S : Out.successors(B))
      uniteCoLive(pointWords(B, N), pointWords(S, 0), pointId(B, N),
                  pointId(S, 0));
  }

  // Reference events per original register, in program order (uses before
  // the def of the same instruction) — counting-sorted into one flat buffer.
  std::vector<int32_t> EventStart(static_cast<size_t>(OrigRegs) + 1, 0);
  for (int B = 0; B < NumBlocks; ++B)
    for (const Instruction &Inst : Out.block(B).Instrs) {
      if (Inst.Use1 != NoReg || Inst.Use2 != NoReg) {
        if (Inst.Use1 != NoReg)
          ++EventStart[static_cast<size_t>(Inst.Use1) + 1];
        if (Inst.Use2 != NoReg && Inst.Use2 != Inst.Use1)
          ++EventStart[static_cast<size_t>(Inst.Use2) + 1];
      }
      if (Inst.Def != NoReg)
        ++EventStart[static_cast<size_t>(Inst.Def) + 1];
    }
  for (int R = 0; R < OrigRegs; ++R)
    EventStart[static_cast<size_t>(R) + 1] += EventStart[static_cast<size_t>(R)];
  std::vector<RefEvent> Events(
      static_cast<size_t>(EventStart[static_cast<size_t>(OrigRegs)]));
  std::vector<int32_t> Cursor(EventStart.begin(), EventStart.end() - 1);
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = Out.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      auto push = [&](Reg R, uint8_t IsDef) {
        Events[static_cast<size_t>(Cursor[static_cast<size_t>(R)]++)] = {
            B, I, IsDef};
      };
      if (Inst.Use1 != NoReg)
        push(Inst.Use1, 0);
      if (Inst.Use2 != NoReg && Inst.Use2 != Inst.Use1)
        push(Inst.Use2, 0);
      if (Inst.Def != NoReg)
        push(Inst.Def, 1);
    }
  }

  // Replay: assign each web a register in first-seen order per original
  // register. The first component keeps the original register so most
  // programs are unchanged; later webs get fresh ".w<k>" registers and dead
  // defs ".dead" ones, numbered in the exact order the events occur.
  std::vector<int32_t> Roots; // scratch: component root -> fresh register
  std::vector<Reg> RootToReg;
  for (Reg R = 0; R < OrigRegs; ++R) {
    Roots.clear();
    RootToReg.clear();
    bool KeepOriginalUsed = false;
    const int32_t Row = R * TotalPoints;
    auto regForRoot = [&](int32_t Root) -> Reg {
      for (size_t K = 0; K < Roots.size(); ++K)
        if (Roots[K] == Root)
          return RootToReg[K];
      Reg Fresh;
      if (!KeepOriginalUsed) {
        Fresh = R;
        KeepOriginalUsed = true;
      } else {
        Fresh = Out.addReg(Out.getRegName(R) + ".w" +
                           std::to_string(Roots.size()));
      }
      Roots.push_back(Root);
      RootToReg.push_back(Fresh);
      return Fresh;
    };

    // Entry component first so entry-live registers keep their identity.
    if (LI.blockLiveIn(Out.getEntryBlock()).test(R))
      (void)regForRoot(find(Row + pointId(Out.getEntryBlock(), 0)));

    const int32_t Begin = EventStart[static_cast<size_t>(R)];
    const int32_t End = EventStart[static_cast<size_t>(R) + 1];
    for (int32_t E = Begin; E < End; ++E) {
      const RefEvent &Ev = Events[static_cast<size_t>(E)];
      const int B = Ev.Block, I = Ev.Instr;
      Instruction &Inst = Out.block(B).Instrs[static_cast<size_t>(I)];
      if (!Ev.IsDef) {
        // Uses read the value live at the pre-point.
        assert(liveAtPoint(R, B, I) && "use of dead register");
        Reg NewReg = regForRoot(find(Row + pointId(B, I)));
        if (Inst.Use1 == R)
          Inst.Use1 = NewReg;
        if (Inst.Use2 == R)
          Inst.Use2 = NewReg;
      } else {
        // Definitions write the value live at the post-point; a dead
        // definition gets its own register.
        Reg NewReg;
        if (liveAtPoint(R, B, I + 1)) {
          NewReg = regForRoot(find(Row + pointId(B, I + 1)));
        } else if (!KeepOriginalUsed) {
          NewReg = R;
          KeepOriginalUsed = true;
        } else {
          NewReg = Out.addReg(Out.getRegName(R) + ".dead");
        }
        Inst.Def = NewReg;
      }
    }
  }

  // Entry-live list: regForRoot gave the entry component the original
  // register, so the list stays valid; nothing to rewrite.
  return Out;
}
