//===- LiveRangeRenaming.h - One register per live range --------*- C++ -*-===//
///
/// \file
/// The paper assumes every live range is its own variable ("we restore the
/// virtual registers so that our register allocator can work on the live
/// ranges from scratch", §9). Source programs routinely reuse a temporary
/// for several disjoint live ranges, so this pass renames each *web* — a
/// connected component of the program points where a register is live,
/// under CFG adjacency — to a fresh register. After renaming, claim 2 of
/// the paper (an internal live range lives inside exactly one NSR) holds
/// structurally and analyzeThread() can rely on it.
///
/// Dead definitions (values never read) each get their own fresh register.
/// Entry-live registers are remapped to their entry component's register
/// and Program::EntryLiveRegs is updated in place (order preserved, so
/// harness entry values stay aligned).
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ANALYSIS_LIVERANGERENAMING_H
#define NPRAL_ANALYSIS_LIVERANGERENAMING_H

#include "ir/Program.h"

namespace npral {

/// Rename every live-range web of \p P to its own register. Idempotent.
/// Returns the renamed copy.
Program renameLiveRanges(const Program &P);

} // namespace npral

#endif // NPRAL_ANALYSIS_LIVERANGERENAMING_H
