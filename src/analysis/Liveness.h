//===- Liveness.h - Dataflow liveness ---------------------------*- C++ -*-===//
///
/// \file
/// Classic backward iterative liveness over the CFG, with per-instruction
/// live-out sets. In NPRAL a live range is a virtual register (the paper
/// assumes one live range per variable), so liveness sets are register sets.
///
/// Transfer-register semantics: a `load`'s destination is modelled like any
/// other definition for liveness; the context-switch-specific rule (the
/// definition is not live *across* the load's own CSB) falls out naturally
/// because "live across the CSB of instruction i" is LiveOut(i) minus
/// Defs(i) — see NSR.h.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ANALYSIS_LIVENESS_H
#define NPRAL_ANALYSIS_LIVENESS_H

#include "ir/Program.h"
#include "support/BitVector.h"
#include "support/Diagnostics.h"

#include <vector>

namespace npral {

/// Result of liveness analysis for one Program.
///
/// Per-instruction live-out sets live in one flat word pool (instruction
/// slots laid out block-major), so computing them is a single backward
/// sweep writing words — no per-instruction heap BitVector — and reading
/// them hands out non-owning BitSpan views.
class LivenessInfo {
public:
  /// Live registers at entry of block \p B.
  const BitVector &blockLiveIn(int B) const {
    return BlockLiveIn[static_cast<size_t>(B)];
  }
  /// Live registers at exit of block \p B.
  const BitVector &blockLiveOut(int B) const {
    return BlockLiveOut[static_cast<size_t>(B)];
  }
  /// Live registers just after instruction \p I of block \p B. The view
  /// borrows the analysis result; copy into a BitVector to keep it longer.
  BitSpan instrLiveOut(int B, int I) const {
    return {InstrPool.data() +
                static_cast<size_t>(InstrBase[static_cast<size_t>(B)] + I) *
                    static_cast<size_t>(WordsPerSet),
            NumRegs};
  }
  /// Live registers just before instruction \p I of block \p B (computed).
  BitVector instrLiveIn(const Program &P, int B, int I) const;

  /// Maximum register pressure over all program points: the paper's RegPmax
  /// (the lower bound MinR). Counts a definition as occupying its register
  /// at the defining instruction even when immediately dead.
  int getRegPmax() const { return RegPmax; }

  /// True if register \p R is live at any point or referenced at all.
  bool isEverReferenced(Reg R) const {
    return EverReferenced[static_cast<size_t>(R)];
  }

  friend LivenessInfo computeLiveness(const Program &P);

private:
  std::vector<BitVector> BlockLiveIn;
  std::vector<BitVector> BlockLiveOut;
  /// Flat live-out pool: instruction (B, I) occupies WordsPerSet words at
  /// index (InstrBase[B] + I) * WordsPerSet.
  std::vector<uint64_t> InstrPool;
  std::vector<int32_t> InstrBase; ///< Per-block first instruction slot.
  int WordsPerSet = 0;
  int NumRegs = 0;
  std::vector<char> EverReferenced;
  int RegPmax = 0;
};

/// Run the analysis. The program must verify.
LivenessInfo computeLiveness(const Program &P);

/// Check that no register is used before being defined on some path: the
/// entry block's live-in must be covered by Program::EntryLiveRegs.
Status checkNoUseOfUndef(const Program &P, const LivenessInfo &LI);

} // namespace npral

#endif // NPRAL_ANALYSIS_LIVENESS_H
