//===- Liveness.cpp -------------------------------------------------------===//

#include "analysis/Liveness.h"

#include <algorithm>
#include <cassert>

using namespace npral;

BitVector LivenessInfo::instrLiveIn(const Program &P, int B, int I) const {
  BitVector Live = instrLiveOut(B, I);
  const Instruction &Inst =
      P.block(B).Instrs[static_cast<size_t>(I)];
  if (Inst.Def != NoReg)
    Live.reset(Inst.Def);
  std::array<Reg, 2> Uses;
  int N = Inst.getUses(Uses);
  for (int U = 0; U < N; ++U)
    Live.set(Uses[static_cast<size_t>(U)]);
  return Live;
}

LivenessInfo npral::computeLiveness(const Program &P) {
  LivenessInfo LI;
  const int NumBlocks = P.getNumBlocks();
  const int NumRegs = P.NumRegs;

  LI.BlockLiveIn.assign(static_cast<size_t>(NumBlocks), BitVector(NumRegs));
  LI.BlockLiveOut.assign(static_cast<size_t>(NumBlocks), BitVector(NumRegs));
  LI.InstrLiveOut.resize(static_cast<size_t>(NumBlocks));
  LI.EverReferenced.assign(static_cast<size_t>(NumRegs), 0);

  // Per-block upward-exposed uses and kills.
  std::vector<BitVector> UEVar(static_cast<size_t>(NumBlocks),
                               BitVector(NumRegs));
  std::vector<BitVector> VarKill(static_cast<size_t>(NumBlocks),
                                 BitVector(NumRegs));
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (const Instruction &I : BB.Instrs) {
      std::array<Reg, 2> Uses;
      int N = I.getUses(Uses);
      for (int U = 0; U < N; ++U) {
        Reg R = Uses[static_cast<size_t>(U)];
        LI.EverReferenced[static_cast<size_t>(R)] = 1;
        if (!VarKill[static_cast<size_t>(B)].test(R))
          UEVar[static_cast<size_t>(B)].set(R);
      }
      if (I.Def != NoReg) {
        LI.EverReferenced[static_cast<size_t>(I.Def)] = 1;
        VarKill[static_cast<size_t>(B)].set(I.Def);
      }
    }
  }

  // Iterate to fixpoint in post order (backward problem).
  std::vector<int> RPO = P.computeRPO();
  std::vector<int> PO(RPO.rbegin(), RPO.rend());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B : PO) {
      BitVector NewOut(NumRegs);
      for (int S : P.successors(B))
        NewOut.unionWith(LI.BlockLiveIn[static_cast<size_t>(S)]);
      if (!(NewOut == LI.BlockLiveOut[static_cast<size_t>(B)])) {
        LI.BlockLiveOut[static_cast<size_t>(B)] = NewOut;
        Changed = true;
      }
      // LiveIn = UEVar | (LiveOut & ~VarKill)
      BitVector NewIn = LI.BlockLiveOut[static_cast<size_t>(B)];
      NewIn.subtract(VarKill[static_cast<size_t>(B)]);
      NewIn.unionWith(UEVar[static_cast<size_t>(B)]);
      if (!(NewIn == LI.BlockLiveIn[static_cast<size_t>(B)])) {
        LI.BlockLiveIn[static_cast<size_t>(B)] = NewIn;
        Changed = true;
      }
    }
  }

  // Per-instruction live-out by a backward scan of each block, and pressure.
  LI.RegPmax = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    const int N = static_cast<int>(BB.Instrs.size());
    LI.InstrLiveOut[static_cast<size_t>(B)].assign(static_cast<size_t>(N),
                                                   BitVector(NumRegs));
    BitVector Live = LI.BlockLiveOut[static_cast<size_t>(B)];
    for (int I = N - 1; I >= 0; --I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      LI.InstrLiveOut[static_cast<size_t>(B)][static_cast<size_t>(I)] = Live;

      // Pressure at the defining moment: live-out plus the def itself (a
      // dead def still occupies a register while executing).
      int OutCount = Live.count();
      if (Inst.Def != NoReg && !Live.test(Inst.Def))
        ++OutCount;
      LI.RegPmax = std::max(LI.RegPmax, OutCount);

      if (Inst.Def != NoReg)
        Live.reset(Inst.Def);
      std::array<Reg, 2> Uses;
      int NU = Inst.getUses(Uses);
      for (int U = 0; U < NU; ++U)
        Live.set(Uses[static_cast<size_t>(U)]);
      LI.RegPmax = std::max(LI.RegPmax, Live.count());
    }
  }
  return LI;
}

Status npral::checkNoUseOfUndef(const Program &P, const LivenessInfo &LI) {
  BitVector EntryLive = LI.blockLiveIn(P.getEntryBlock());
  BitVector Declared(P.NumRegs);
  for (Reg R : P.EntryLiveRegs)
    Declared.set(R);
  EntryLive.subtract(Declared);
  if (EntryLive.none())
    return Status::success();
  std::string Names;
  EntryLive.forEach([&](int R) {
    if (!Names.empty())
      Names += ", ";
    Names += P.getRegName(R);
  });
  return Status::error(StatusCode::UseOfUndef,
                       "program '" + P.Name +
                       "' uses registers that may be undefined: " + Names);
}
