//===- Liveness.cpp -------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "lint/dataflow/GenKill.h"

#include <algorithm>
#include <cassert>

using namespace npral;

BitVector LivenessInfo::instrLiveIn(const Program &P, int B, int I) const {
  BitVector Live(instrLiveOut(B, I));
  const Instruction &Inst =
      P.block(B).Instrs[static_cast<size_t>(I)];
  if (Inst.Def != NoReg)
    Live.reset(Inst.Def);
  std::array<Reg, 2> Uses;
  int N = Inst.getUses(Uses);
  for (int U = 0; U < N; ++U)
    Live.set(Uses[static_cast<size_t>(U)]);
  return Live;
}

LivenessInfo npral::computeLiveness(const Program &P) {
  LivenessInfo LI;
  const int NumBlocks = P.getNumBlocks();
  const int NumRegs = P.NumRegs;

  LI.EverReferenced.assign(static_cast<size_t>(NumRegs), 0);
  LI.NumRegs = NumRegs;
  LI.WordsPerSet = (NumRegs + 63) / 64;

  // Block-level fixpoint through the shared worklist solver: backward
  // may-analysis with Gen = upward-exposed uses, Kill = defs, solved
  // word-parallel over BitVector facts (lint/dataflow/GenKill.h).
  GenKillProblem Prob = makeLivenessProblem(P);
  DataflowResult<BitVector> Solved = solveDataflow(P, Prob);
  LI.BlockLiveIn = std::move(Solved.In);
  LI.BlockLiveOut = std::move(Solved.Out);

  for (int B = 0; B < NumBlocks; ++B)
    for (const Instruction &I : P.block(B).Instrs) {
      std::array<Reg, 2> Uses;
      int N = I.getUses(Uses);
      for (int U = 0; U < N; ++U)
        LI.EverReferenced[static_cast<size_t>(Uses[static_cast<size_t>(U)])] =
            1;
      if (I.Def != NoReg)
        LI.EverReferenced[static_cast<size_t>(I.Def)] = 1;
    }

  // Lay out the flat per-instruction pool: one WordsPerSet-wide slot per
  // instruction, block-major.
  LI.InstrBase.resize(static_cast<size_t>(NumBlocks));
  int TotalInstrs = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    LI.InstrBase[static_cast<size_t>(B)] = TotalInstrs;
    TotalInstrs += static_cast<int>(P.block(B).Instrs.size());
  }
  LI.InstrPool.resize(static_cast<size_t>(TotalInstrs) *
                      static_cast<size_t>(LI.WordsPerSet));

  // Per-instruction live-out by a backward scan of each block, and pressure.
  LI.RegPmax = 0;
  const size_t W = static_cast<size_t>(LI.WordsPerSet);
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    const int N = static_cast<int>(BB.Instrs.size());
    uint64_t *Slot0 =
        LI.InstrPool.data() +
        static_cast<size_t>(LI.InstrBase[static_cast<size_t>(B)]) * W;
    BitVector Live = LI.BlockLiveOut[static_cast<size_t>(B)];
    for (int I = N - 1; I >= 0; --I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      uint64_t *Slot = Slot0 + static_cast<size_t>(I) * W;
      for (size_t K = 0; K < W; ++K)
        Slot[K] = Live.words()[K];

      // Pressure at the defining moment: live-out plus the def itself (a
      // dead def still occupies a register while executing).
      int OutCount = Live.count();
      if (Inst.Def != NoReg && !Live.test(Inst.Def))
        ++OutCount;
      LI.RegPmax = std::max(LI.RegPmax, OutCount);

      if (Inst.Def != NoReg)
        Live.reset(Inst.Def);
      std::array<Reg, 2> Uses;
      int NU = Inst.getUses(Uses);
      for (int U = 0; U < NU; ++U)
        Live.set(Uses[static_cast<size_t>(U)]);
      LI.RegPmax = std::max(LI.RegPmax, Live.count());
    }
  }
  return LI;
}

Status npral::checkNoUseOfUndef(const Program &P, const LivenessInfo &LI) {
  BitVector EntryLive = LI.blockLiveIn(P.getEntryBlock());
  BitVector Declared(P.NumRegs);
  for (Reg R : P.EntryLiveRegs)
    Declared.set(R);
  EntryLive.subtract(Declared);
  if (EntryLive.none())
    return Status::success();
  std::string Names;
  EntryLive.forEach([&](int R) {
    if (!Names.empty())
      Names += ", ";
    Names += P.getRegName(R);
  });
  return Status::error(StatusCode::UseOfUndef,
                       "program '" + P.Name +
                       "' uses registers that may be undefined: " + Names);
}
