//===- InterferenceGraph.cpp ----------------------------------------------===//

#include "analysis/InterferenceGraph.h"

#include <algorithm>
#include <cassert>

using namespace npral;

void InterferenceGraph::reset(int Nodes) {
  NumNodes = Nodes;
  NumEdges = 0;
  Frozen = false;
  Build.assign(static_cast<size_t>(Nodes) * WordsPerRow(), 0);
  Tri.clear();
  Offsets.clear();
  AdjList.clear();
}

void InterferenceGraph::freeze() {
  if (Frozen)
    return;
  const size_t W = WordsPerRow();

  // Strip self-loops (clique ORs set them), then symmetrize. Mirroring
  // (a, b) -> (b, a) while scanning rows in ascending order is safe: a bit
  // added to an earlier row is exactly the mirror of one already present
  // in the row being scanned.
  for (int A = 0; A < NumNodes; ++A)
    Build[static_cast<size_t>(A) * W + static_cast<size_t>(A) / 64] &=
        ~(uint64_t(1) << (A % 64));
  for (int A = 0; A < NumNodes; ++A) {
    const uint64_t *Row = Build.data() + static_cast<size_t>(A) * W;
    for (size_t WI = 0; WI < W; ++WI) {
      uint64_t Word = Row[WI];
      while (Word) {
        int B = static_cast<int>(WI * 64) + __builtin_ctzll(Word);
        Word &= Word - 1;
        Build[static_cast<size_t>(B) * W + static_cast<size_t>(A) / 64] |=
            uint64_t(1) << (A % 64);
      }
    }
  }

  // CSR adjacency: ascending neighbor ids per node.
  Offsets.assign(static_cast<size_t>(NumNodes) + 1, 0);
  int Total = 0;
  for (int A = 0; A < NumNodes; ++A) {
    const uint64_t *Row = Build.data() + static_cast<size_t>(A) * W;
    int D = 0;
    for (size_t WI = 0; WI < W; ++WI)
      D += __builtin_popcountll(Row[WI]);
    Offsets[static_cast<size_t>(A)] = Total;
    Total += D;
  }
  Offsets[static_cast<size_t>(NumNodes)] = Total;
  AdjList.resize(static_cast<size_t>(Total));
  for (int A = 0; A < NumNodes; ++A) {
    const uint64_t *Row = Build.data() + static_cast<size_t>(A) * W;
    int32_t *Out = AdjList.data() + Offsets[static_cast<size_t>(A)];
    for (size_t WI = 0; WI < W; ++WI) {
      uint64_t Word = Row[WI];
      while (Word) {
        *Out++ = static_cast<int32_t>(WI * 64) + __builtin_ctzll(Word);
        Word &= Word - 1;
      }
    }
  }
  NumEdges = Total / 2;

  // Packed lower-triangular membership bits: edge (a, b) with a > b lives
  // at bit a*(a-1)/2 + b.
  const size_t TriBits =
      static_cast<size_t>(NumNodes) * (static_cast<size_t>(NumNodes) + 1) / 2;
  Tri.assign((TriBits + 63) / 64, 0);
  for (int A = 1; A < NumNodes; ++A) {
    const size_t RowBase =
        static_cast<size_t>(A) * (static_cast<size_t>(A) - 1) / 2;
    const uint64_t *Row = Build.data() + static_cast<size_t>(A) * W;
    for (size_t WI = 0; WI <= static_cast<size_t>(A) / 64; ++WI) {
      uint64_t Word = Row[WI];
      while (Word) {
        int B = static_cast<int>(WI * 64) + __builtin_ctzll(Word);
        Word &= Word - 1;
        if (B >= A)
          break;
        size_t Bit = RowBase + static_cast<size_t>(B);
        Tri[Bit / 64] |= uint64_t(1) << (Bit % 64);
      }
    }
  }

  Build.clear();
  Build.shrink_to_fit();
  Frozen = true;
}

std::vector<int>
InterferenceGraph::smallestLastOrder(const BitVector &Members) const {
  assert(Frozen && "ordering an unfrozen graph");
  const int N = getNumNodes();

  // Residual degree = neighbors still present. Selection repeatedly takes
  // the lowest-id node of minimum residual degree — the exact tie-break of
  // the pre-rewrite linear scan, which coloring outputs depend on.
  std::vector<int32_t> ResidualDeg(static_cast<size_t>(N), 0);
  BitVector Remaining(N);
  std::vector<int> MemberList;
  Members.forEach([&](int M) {
    Remaining.set(M);
    MemberList.push_back(M);
  });
  for (int M : MemberList) {
    int D = 0;
    for (int32_t Nb : neighbors(M))
      if (Remaining.test(Nb))
        ++D;
    ResidualDeg[static_cast<size_t>(M)] = D;
  }

  std::vector<int> Removal;
  Removal.reserve(MemberList.size());
  for (size_t Step = 0; Step < MemberList.size(); ++Step) {
    int Best = -1;
    Remaining.forEach([&](int M) {
      if (Best < 0 || ResidualDeg[static_cast<size_t>(M)] <
                          ResidualDeg[static_cast<size_t>(Best)])
        Best = M;
    });
    assert(Best >= 0 && "no removable node");
    Remaining.reset(Best);
    Removal.push_back(Best);
    for (int32_t Nb : neighbors(Best))
      if (Remaining.test(Nb))
        --ResidualDeg[static_cast<size_t>(Nb)];
  }
  std::reverse(Removal.begin(), Removal.end());
  return Removal;
}

ThreadAnalysis npral::analyzeThread(const Program &P) {
  ThreadAnalysis TA;
  TA.Liveness = computeLiveness(P);
  TA.NSRs = computeNSRs(P, TA.Liveness);

  const int NumRegs = P.NumRegs;
  TA.GIG.reset(NumRegs);
  TA.BIG.reset(NumRegs);
  TA.BoundaryNodes.resize(NumRegs);
  TA.InternalNodes.resize(NumRegs);
  TA.ReferencedNodes.resize(NumRegs);
  TA.HomeNSR.assign(static_cast<size_t>(NumRegs), -1);

  for (Reg R = 0; R < NumRegs; ++R)
    if (TA.Liveness.isEverReferenced(R))
      TA.ReferencedNodes.set(R);

  // GIG edges: at every definition point, the defined register interferes
  // with everything live after the instruction — one word-parallel row OR
  // per definition. Entry-live registers act as defined simultaneously at
  // a virtual entry point (a clique).
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      if (Inst.Def == NoReg)
        continue;
      TA.GIG.markRow(Inst.Def, TA.Liveness.instrLiveOut(B, I));
    }
  }
  TA.GIG.addClique(TA.Liveness.blockLiveIn(P.getEntryBlock()));

  // Boundary classification and BIG edges: everything crossing one CSB
  // forms a clique, word-parallel per boundary.
  for (const CSB &Boundary : TA.NSRs.getCSBs()) {
    TA.BoundaryNodes.unionWith(Boundary.LiveAcross);
    TA.BIG.addClique(Boundary.LiveAcross);
  }

  TA.GIG.freeze();
  TA.BIG.freeze();

  TA.InternalNodes = TA.ReferencedNodes;
  TA.InternalNodes.subtract(TA.BoundaryNodes);

  // Home NSR of internal nodes: the NSR of the def side of any defining
  // instruction (Claim 2 guarantees this is unique; assert it).
  TA.IIGMembers.assign(static_cast<size_t>(TA.NSRs.getNumNSRs()),
                       BitVector(NumRegs));
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      auto touch = [&](Reg R, int NSR) {
        if (R == NoReg || !TA.InternalNodes.test(R))
          return;
        int &Home = TA.HomeNSR[static_cast<size_t>(R)];
        if (Home != -1 && Home != NSR)
          reportFatalError("internal live range '" + P.getRegName(R) +
                           "' of program '" + P.Name +
                           "' spans multiple NSRs");
        Home = NSR;
        TA.IIGMembers[static_cast<size_t>(NSR)].set(R);
      };
      touch(Inst.Def, TA.NSRs.instrPostNSR(B, I));
      touch(Inst.Use1, TA.NSRs.instrPreNSR(B, I));
      touch(Inst.Use2, TA.NSRs.instrPreNSR(B, I));
    }
  }
  // Entry-live internal nodes live in the entry NSR.
  TA.Liveness.blockLiveIn(P.getEntryBlock()).forEach([&](int R) {
    if (!TA.InternalNodes.test(R))
      return;
    int &Home = TA.HomeNSR[static_cast<size_t>(R)];
    int EntryNSR = TA.NSRs.pointNSR(P.getEntryBlock(), 0);
    assert((Home == -1 || Home == EntryNSR) &&
           "internal live range spans multiple NSRs");
    Home = EntryNSR;
    TA.IIGMembers[static_cast<size_t>(EntryNSR)].set(R);
  });

  return TA;
}
