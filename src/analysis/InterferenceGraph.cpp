//===- InterferenceGraph.cpp ----------------------------------------------===//

#include "analysis/InterferenceGraph.h"

#include <algorithm>
#include <cassert>

using namespace npral;

void InterferenceGraph::reset(int NumNodes) {
  Adj.assign(static_cast<size_t>(NumNodes), BitVector(NumNodes));
  NumEdges = 0;
}

void InterferenceGraph::addEdge(int A, int B) {
  if (A == B)
    return;
  if (Adj[static_cast<size_t>(A)].test(B))
    return;
  Adj[static_cast<size_t>(A)].set(B);
  Adj[static_cast<size_t>(B)].set(A);
  ++NumEdges;
}

int InterferenceGraph::addNode() {
  int NewId = getNumNodes();
  for (BitVector &Row : Adj)
    Row.resize(NewId + 1);
  Adj.emplace_back(NewId + 1);
  return NewId;
}

std::vector<int>
InterferenceGraph::smallestLastOrder(const BitVector &Members) const {
  // Repeatedly remove the member of minimum residual degree; the reverse
  // removal order is the coloring order.
  const int N = getNumNodes();
  std::vector<int> ResidualDeg(static_cast<size_t>(N), 0);
  std::vector<char> InGraph(static_cast<size_t>(N), 0);
  std::vector<int> MemberList;
  Members.forEach([&](int M) {
    InGraph[static_cast<size_t>(M)] = 1;
    MemberList.push_back(M);
  });
  for (int M : MemberList) {
    int D = 0;
    neighbors(M).forEach([&](int Nb) {
      if (InGraph[static_cast<size_t>(Nb)])
        ++D;
    });
    ResidualDeg[static_cast<size_t>(M)] = D;
  }

  std::vector<int> Removal;
  Removal.reserve(MemberList.size());
  std::vector<char> Removed(static_cast<size_t>(N), 0);
  for (size_t Step = 0; Step < MemberList.size(); ++Step) {
    int Best = -1;
    for (int M : MemberList) {
      if (Removed[static_cast<size_t>(M)])
        continue;
      if (Best < 0 || ResidualDeg[static_cast<size_t>(M)] <
                          ResidualDeg[static_cast<size_t>(Best)])
        Best = M;
    }
    assert(Best >= 0 && "no removable node");
    Removed[static_cast<size_t>(Best)] = 1;
    Removal.push_back(Best);
    neighbors(Best).forEach([&](int Nb) {
      if (InGraph[static_cast<size_t>(Nb)] && !Removed[static_cast<size_t>(Nb)])
        --ResidualDeg[static_cast<size_t>(Nb)];
    });
  }
  std::reverse(Removal.begin(), Removal.end());
  return Removal;
}

ThreadAnalysis npral::analyzeThread(const Program &P) {
  ThreadAnalysis TA;
  TA.Liveness = computeLiveness(P);
  TA.NSRs = computeNSRs(P, TA.Liveness);

  const int NumRegs = P.NumRegs;
  TA.GIG.reset(NumRegs);
  TA.BIG.reset(NumRegs);
  TA.BoundaryNodes.resize(NumRegs);
  TA.InternalNodes.resize(NumRegs);
  TA.ReferencedNodes.resize(NumRegs);
  TA.HomeNSR.assign(static_cast<size_t>(NumRegs), -1);

  for (Reg R = 0; R < NumRegs; ++R)
    if (TA.Liveness.isEverReferenced(R))
      TA.ReferencedNodes.set(R);

  // GIG edges: at every definition point, the defined register interferes
  // with everything live after the instruction. Entry-live registers act as
  // defined simultaneously at a virtual entry point.
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      if (Inst.Def == NoReg)
        continue;
      TA.Liveness.instrLiveOut(B, I).forEach([&](int Live) {
        TA.GIG.addEdge(Inst.Def, Live);
      });
    }
  }
  {
    const BitVector &EntryLive = TA.Liveness.blockLiveIn(P.getEntryBlock());
    std::vector<int> EntryRegs = EntryLive.toVector();
    for (size_t A = 0; A < EntryRegs.size(); ++A)
      for (size_t B2 = A + 1; B2 < EntryRegs.size(); ++B2)
        TA.GIG.addEdge(EntryRegs[A], EntryRegs[B2]);
  }

  // Boundary classification and BIG edges per CSB.
  for (const CSB &Boundary : TA.NSRs.getCSBs()) {
    std::vector<int> Crossing = Boundary.LiveAcross.toVector();
    for (int R : Crossing)
      TA.BoundaryNodes.set(R);
    for (size_t A = 0; A < Crossing.size(); ++A)
      for (size_t B2 = A + 1; B2 < Crossing.size(); ++B2)
        TA.BIG.addEdge(Crossing[A], Crossing[B2]);
  }

  TA.InternalNodes = TA.ReferencedNodes;
  TA.InternalNodes.subtract(TA.BoundaryNodes);

  // Home NSR of internal nodes: the NSR of the def side of any defining
  // instruction (Claim 2 guarantees this is unique; assert it).
  TA.IIGMembers.assign(static_cast<size_t>(TA.NSRs.getNumNSRs()),
                       BitVector(NumRegs));
  for (int B = 0; B < P.getNumBlocks(); ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      auto touch = [&](Reg R, int NSR) {
        if (R == NoReg || !TA.InternalNodes.test(R))
          return;
        int &Home = TA.HomeNSR[static_cast<size_t>(R)];
        if (Home != -1 && Home != NSR)
          reportFatalError("internal live range '" + P.getRegName(R) +
                           "' of program '" + P.Name +
                           "' spans multiple NSRs");
        Home = NSR;
        TA.IIGMembers[static_cast<size_t>(NSR)].set(R);
      };
      touch(Inst.Def, TA.NSRs.instrPostNSR(B, I));
      touch(Inst.Use1, TA.NSRs.instrPreNSR(B, I));
      touch(Inst.Use2, TA.NSRs.instrPreNSR(B, I));
    }
  }
  // Entry-live internal nodes live in the entry NSR.
  TA.Liveness.blockLiveIn(P.getEntryBlock()).forEach([&](int R) {
    if (!TA.InternalNodes.test(R))
      return;
    int &Home = TA.HomeNSR[static_cast<size_t>(R)];
    int EntryNSR = TA.NSRs.pointNSR(P.getEntryBlock(), 0);
    assert((Home == -1 || Home == EntryNSR) &&
           "internal live range spans multiple NSRs");
    Home = EntryNSR;
    TA.IIGMembers[static_cast<size_t>(EntryNSR)].set(R);
  });

  return TA;
}
