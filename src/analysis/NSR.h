//===- NSR.h - Non-Switch Regions and CSBs ----------------------*- C++ -*-===//
///
/// \file
/// Non-Switch Regions (paper §3.1): maximal connected subgraphs of the CFG
/// containing no internal context-switch instruction. The boundaries are
/// Context Switch Boundaries (CSBs) — the program points *at* ctx-switching
/// instructions — and the program entry/exit.
///
/// We realise the construction with a union-find over program points.
/// Block b with n instructions has points (b,0) .. (b,n), where (b,k) is
/// "just before instruction k" and (b,n) is the block end. Consecutive
/// points unify unless the instruction between them causes a context
/// switch; every CFG edge unifies the predecessor's end point with the
/// successor's entry point.
///
/// A value is live across the CSB of instruction i iff it is in
/// LiveOut(i) \ Defs(i): a `load`'s destination materialises only after the
/// thread resumes (transfer-register semantics), so it is not live across
/// its own boundary.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_ANALYSIS_NSR_H
#define NPRAL_ANALYSIS_NSR_H

#include "analysis/Liveness.h"
#include "ir/Program.h"
#include "support/BitVector.h"

#include <vector>

namespace npral {

/// One context switch boundary.
struct CSB {
  int Block = NoBlock;
  int InstrIndex = 0;
  /// NSR the boundary's "before" side belongs to.
  int PreNSR = -1;
  /// NSR the boundary's "after" side belongs to.
  int PostNSR = -1;
  /// Registers live across this boundary.
  BitVector LiveAcross;
};

/// The NSR decomposition of one thread.
class NSRInfo {
public:
  int getNumNSRs() const { return NumNSRs; }
  const std::vector<CSB> &getCSBs() const { return CSBs; }

  /// NSR of the point just before instruction \p I of block \p B
  /// (I == block size gives the end-of-block point).
  int pointNSR(int B, int I) const {
    return PointNSR[static_cast<size_t>(PointBase[static_cast<size_t>(B)] +
                                        I)];
  }

  /// NSR containing the *use* side of instruction (B, I).
  int instrPreNSR(int B, int I) const { return pointNSR(B, I); }
  /// NSR containing the *def* side of instruction (B, I) — differs from the
  /// pre-NSR only for ctx-switching instructions.
  int instrPostNSR(int B, int I) const { return pointNSR(B, I + 1); }

  /// Number of instructions whose pre-point lies in each NSR.
  const std::vector<int> &getNSRSizes() const { return NSRSizes; }

  /// Paper's RegPCSBmax: the maximum number of values live across any one
  /// CSB (the lower bound MinPR). Zero when the thread has no CSBs.
  int getRegPCSBmax() const { return RegPCSBmax; }

  friend NSRInfo computeNSRs(const Program &P, const LivenessInfo &LI);

private:
  int NumNSRs = 0;
  std::vector<CSB> CSBs;
  std::vector<int> PointBase; ///< First point index of each block.
  std::vector<int> PointNSR;  ///< Compacted NSR id per point.
  std::vector<int> NSRSizes;
  int RegPCSBmax = 0;
};

/// Build the NSR decomposition for \p P using liveness \p LI.
NSRInfo computeNSRs(const Program &P, const LivenessInfo &LI);

} // namespace npral

#endif // NPRAL_ANALYSIS_NSR_H
