//===- NSR.cpp ------------------------------------------------------------===//

#include "analysis/NSR.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace npral;

namespace {

/// Minimal union-find.
class UnionFind {
public:
  explicit UnionFind(int N) : Parent(static_cast<size_t>(N)) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  int find(int X) {
    while (Parent[static_cast<size_t>(X)] != X) {
      Parent[static_cast<size_t>(X)] =
          Parent[static_cast<size_t>(Parent[static_cast<size_t>(X)])];
      X = Parent[static_cast<size_t>(X)];
    }
    return X;
  }

  void unite(int A, int B) {
    A = find(A);
    B = find(B);
    if (A != B)
      Parent[static_cast<size_t>(A)] = B;
  }

private:
  std::vector<int> Parent;
};

} // namespace

NSRInfo npral::computeNSRs(const Program &P, const LivenessInfo &LI) {
  NSRInfo Info;
  const int NumBlocks = P.getNumBlocks();

  // Lay out points: block b contributes size(b)+1 points.
  Info.PointBase.resize(static_cast<size_t>(NumBlocks));
  int TotalPoints = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    Info.PointBase[static_cast<size_t>(B)] = TotalPoints;
    TotalPoints += static_cast<int>(P.block(B).Instrs.size()) + 1;
  }

  UnionFind UF(TotalPoints);
  auto pointId = [&](int B, int I) {
    return Info.PointBase[static_cast<size_t>(B)] + I;
  };

  // Unify consecutive points separated by non-ctx instructions.
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I)
      if (!BB.Instrs[static_cast<size_t>(I)].causesCtxSwitch())
        UF.unite(pointId(B, I), pointId(B, I + 1));
  }
  // Unify across CFG edges.
  for (int B = 0; B < NumBlocks; ++B)
    for (int S : P.successors(B))
      UF.unite(pointId(B, static_cast<int>(P.block(B).Instrs.size())),
               pointId(S, 0));

  // Compact roots to dense NSR ids.
  Info.PointNSR.assign(static_cast<size_t>(TotalPoints), -1);
  std::vector<int> RootToNSR(static_cast<size_t>(TotalPoints), -1);
  int NextNSR = 0;
  for (int Pt = 0; Pt < TotalPoints; ++Pt) {
    int Root = UF.find(Pt);
    if (RootToNSR[static_cast<size_t>(Root)] < 0)
      RootToNSR[static_cast<size_t>(Root)] = NextNSR++;
    Info.PointNSR[static_cast<size_t>(Pt)] =
        RootToNSR[static_cast<size_t>(Root)];
  }
  Info.NumNSRs = NextNSR;

  // NSR sizes: instructions counted at their pre-point.
  Info.NSRSizes.assign(static_cast<size_t>(NextNSR), 0);
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I)
      ++Info.NSRSizes[static_cast<size_t>(Info.pointNSR(B, I))];
  }

  // Collect CSBs with their live-across sets.
  Info.RegPCSBmax = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = P.block(B);
    for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
      const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
      if (!Inst.causesCtxSwitch())
        continue;
      CSB Boundary;
      Boundary.Block = B;
      Boundary.InstrIndex = I;
      Boundary.PreNSR = Info.pointNSR(B, I);
      Boundary.PostNSR = Info.pointNSR(B, I + 1);
      Boundary.LiveAcross = LI.instrLiveOut(B, I);
      if (Inst.Def != NoReg)
        Boundary.LiveAcross.reset(Inst.Def);
      Info.RegPCSBmax =
          std::max(Info.RegPCSBmax, Boundary.LiveAcross.count());
      Info.CSBs.push_back(std::move(Boundary));
    }
  }
  return Info;
}
