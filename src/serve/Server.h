//===- Server.h - Allocation-as-a-service daemon ----------------*- C++ -*-===//
///
/// \file
/// The npral-serve daemon: a persistent process accepting allocation
/// requests over a Unix domain socket (serve/Protocol.h) and dispatching
/// them onto the existing ThreadPool through the batch pipeline's
/// per-job fault-isolation entry (runSingleJob). Where the batch driver
/// protects one run, the server protects a process that must survive
/// sustained traffic:
///
///  * Admission control — a bounded FIFO queue in front of the workers.
///    When it is full the request is rejected immediately with a
///    structured Unavailable error carrying a retry-after hint, instead
///    of queueing unboundedly (load shedding, `serve.shed`).
///  * Per-request isolation — a poisoned request (malformed frame, parse
///    error, infeasible budget, injected fault, escaping exception)
///    returns a classified Error response; the process never dies for an
///    input.
///  * Deadlines — every request runs under the harden watchdog; the
///    default deadline is configurable and each request may set its own.
///  * Bounded memory — one shared byte-budgeted LRU AnalysisCache across
///    all requests (driver/AnalysisCache.h), so a hot kernel set stays
///    warm while unbounded input diversity cannot grow the process.
///  * Graceful drain — SIGTERM/SIGINT (or requestShutdown()) stops
///    accepting, lets in-flight requests finish, answers queued ones with
///    Cancelled, then exits 0.
///  * Live introspection — Health and Metrics request types answered on
///    the same protocol; `serve.*` counters in the global MetricsRegistry.
///
/// Threading model: one accept thread, one reader thread per connection
/// (bounded by MaxConnections), W pool workers executing requests. Reader
/// threads parse and admit; workers allocate and respond. Responses carry
/// the request id, so one connection may pipeline requests and receive
/// completions out of order.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SERVE_SERVER_H
#define NPRAL_SERVE_SERVER_H

#include "driver/AnalysisCache.h"
#include "driver/BatchPipeline.h"
#include "serve/Protocol.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace npral {

struct ServeOptions {
  /// Filesystem path of the Unix socket to listen on.
  std::string SocketPath;
  /// Pool workers executing requests; 0 = hardware concurrency.
  int Workers = 0;
  /// Bounded admission queue capacity; a full queue sheds load.
  int QueueCapacity = 64;
  /// Concurrent connections; further connects get an Unavailable frame.
  int MaxConnections = 64;
  /// Cap on request payload bytes; larger frames are rejected with a
  /// structured error before any allocation happens.
  uint32_t MaxRequestBytes = protocol::DefaultMaxRequestBytes;
  /// Watchdog deadline for requests that do not set their own; 0 = none.
  int DefaultDeadlineMs = 0;
  /// Byte budget of the shared LRU AnalysisCache; 0 = unbounded (not
  /// recommended for a long-running process).
  int64_t CacheBytes = 64ll << 20;
  /// Backoff hint carried by shed responses.
  int RetryAfterMs = 10;
  /// SO_SNDTIMEO per connection: a client that stops reading cannot hold
  /// a worker hostage past this bound; the response is then dropped and
  /// counted.
  int SendTimeoutMs = 10000;
  /// Run the safety verifier over every successful allocation.
  bool Verify = true;
  /// Deterministic fault injection, shared by every request (the CLI
  /// wires NPRAL_FAULT_INJECT / --fault-inject through here).
  FaultInjector Faults;
  /// Test-only: invoked by each worker after dequeue, before processing.
  /// Lets tests stall the workers deterministically to fill the admission
  /// queue. Never set in production paths.
  std::function<void()> TestStallHook;
};

/// Monotonic counters describing a server's lifetime. Every field is also
/// mirrored into the global MetricsRegistry under the `serve.*` names
/// documented in docs/serve.md.
struct ServeStats {
  std::atomic<int64_t> Connections{0};
  std::atomic<int64_t> ConnectionsRejected{0};
  std::atomic<int64_t> Requests{0};
  std::atomic<int64_t> Admitted{0};
  std::atomic<int64_t> Shed{0};
  std::atomic<int64_t> Ok{0};
  std::atomic<int64_t> Failed{0};
  std::atomic<int64_t> Cancelled{0};
  std::atomic<int64_t> ProtocolErrors{0};
  std::atomic<int64_t> DeadlineExceeded{0};
  std::atomic<int64_t> IsolatedFailures{0};
  std::atomic<int64_t> FaultsInjected{0};
  std::atomic<int64_t> Degraded{0};
  std::atomic<int64_t> DroppedResponses{0};
  std::atomic<int64_t> CacheHits{0};
  std::atomic<int64_t> CacheMisses{0};
};

class Server {
public:
  explicit Server(ServeOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Bind the socket and spawn the accept thread and worker pool.
  Status start();

  /// Route SIGTERM/SIGINT to this server's graceful shutdown (self-pipe;
  /// the handler is async-signal-safe). At most one server per process
  /// owns the signals at a time.
  void installSignalHandlers();

  /// Trigger the graceful drain: stop accepting, finish in-flight
  /// requests, answer queued ones with Cancelled. Thread-safe and
  /// idempotent; returns immediately (join through wait()).
  void requestShutdown();

  /// Block until the server has fully drained and every thread is joined.
  /// Returns 0 after a graceful (requested) shutdown, 1 when the accept
  /// loop died on a socket error.
  int wait();

  const ServeStats &stats() const { return Stats; }
  const ServeOptions &options() const { return Opts; }
  /// The shared analysis cache (test introspection).
  const AnalysisCache &cache() const { return Cache; }

private:
  struct Connection {
    UnixSocket Sock;
    /// Serializes response frames; readers and workers both write.
    std::mutex WriteMutex;
    std::thread Reader;
    std::atomic<bool> Done{false};
  };
  struct Pending {
    std::shared_ptr<Connection> Conn;
    uint64_t RequestId = 0;
    AllocRequest Req;
  };

  void acceptLoop();
  void connectionLoop(const std::shared_ptr<Connection> &Conn);
  void workerLoop();
  /// Handle one admitted request end to end on a worker.
  void processRequest(Pending &P);
  /// Serve Health/Metrics inline on the reader thread (no admission).
  void respondIntrospection(const std::shared_ptr<Connection> &Conn,
                            const Frame &Request);
  void respondError(const std::shared_ptr<Connection> &Conn, uint64_t Id,
                    StatusCode Code, const std::string &Stage,
                    const std::string &Message, int RetryAfterMs = 0);
  void respond(const std::shared_ptr<Connection> &Conn, const Frame &F);
  /// Join reader threads of connections that have finished.
  void sweepConnections(bool Force);
  void bumpServeCounter(const char *Name, std::atomic<int64_t> &Local,
                        int64_t Delta = 1);

  ServeOptions Opts;
  AnalysisCache Cache;
  ServeStats Stats;

  UnixListener Listener;
  WakePipe Wake;
  std::thread AcceptThread;
  std::unique_ptr<ThreadPool> Pool;

  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<Pending> Queue;
  bool Draining = false;
  int InFlight = 0;

  std::mutex ConnMutex;
  std::list<std::shared_ptr<Connection>> Conns;

  std::atomic<bool> ShutdownRequested{false};
  std::atomic<bool> Started{false};
  std::atomic<bool> AcceptFailed{false};
  /// Server-global request sequence. Job names must be distinct across the
  /// whole process — client request ids are only unique per connection
  /// (one-shot CLI clients all send id 1), and the fault injector keys off
  /// the job name.
  std::atomic<uint64_t> RequestSeq{0};
  bool Waited = false;
  std::mutex WaitMutex;
};

} // namespace npral

#endif // NPRAL_SERVE_SERVER_H
