//===- Server.cpp ---------------------------------------------------------===//

#include "serve/Server.h"

#include "ir/IRPrinter.h"
#include "trace/MetricsRegistry.h"

#include <csignal>
#include <sstream>
#include <utility>

#include <unistd.h>

using namespace npral;
using namespace npral::protocol;

namespace {

/// The server (at most one per process) whose graceful drain the signal
/// handler triggers. The handler itself only performs async-signal-safe
/// work: one atomic load, one atomic store, one write(2) to the wake pipe.
std::atomic<Server *> SignalTarget{nullptr};

/// Fields the signal handler touches, exposed through a POD so the handler
/// never calls a (non-signal-safe) member function.
struct SignalHook {
  std::atomic<bool> *ShutdownRequested = nullptr;
  int WakeFd = -1;
};
SignalHook GSignalHook;

void onTermSignal(int) {
  Server *S = SignalTarget.load(std::memory_order_acquire);
  if (!S)
    return;
  GSignalHook.ShutdownRequested->store(true, std::memory_order_release);
  const char Byte = 1;
  // A full pipe already guarantees a pending wake; EAGAIN is fine.
  (void)!write(GSignalHook.WakeFd, &Byte, 1);
}

} // namespace

Server::Server(ServeOptions O) : Opts(std::move(O)), Cache(Opts.CacheBytes) {}

Server::~Server() {
  if (Started.load()) {
    requestShutdown();
    wait();
  }
  if (SignalTarget.load() == this)
    SignalTarget.store(nullptr);
}

Status Server::start() {
  if (Status S = Listener.listenOn(Opts.SocketPath); !S.ok())
    return S;
  const int W =
      Opts.Workers > 0 ? Opts.Workers : ThreadPool::hardwareConcurrency();
  Pool = std::make_unique<ThreadPool>(W);
  // The pool workers ARE the request executors: each runs workerLoop until
  // the drain completes, so every request executes on the existing
  // ThreadPool rather than an ad-hoc thread.
  for (int I = 0; I < W; ++I)
    Pool->submit([this] { workerLoop(); });
  MetricsRegistry::global().gauge("serve.workers").set(W);
  MetricsRegistry::global()
      .gauge("serve.queue_capacity")
      .set(Opts.QueueCapacity);
  // Pre-register every serve.* counter so the metrics render always
  // carries the full, stable key set — scrapers and the golden-pinned
  // tests see the same keys on an idle server as on a busy one.
  for (const char *Name :
       {"serve.admitted", "serve.cache_hits", "serve.cache_misses",
        "serve.cancelled", "serve.connections",
        "serve.connections_rejected", "serve.deadline_exceeded",
        "serve.degraded", "serve.dropped_responses", "serve.failed",
        "serve.faults_injected", "serve.isolated_failures", "serve.ok",
        "serve.protocol_errors", "serve.requests", "serve.shed"})
    MetricsRegistry::global().counter(Name);
  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return Status::success();
}

void Server::installSignalHandlers() {
  GSignalHook.ShutdownRequested = &ShutdownRequested;
  GSignalHook.WakeFd = Wake.writeFd();
  SignalTarget.store(this, std::memory_order_release);
  struct sigaction SA = {};
  SA.sa_handler = onTermSignal;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
}

void Server::requestShutdown() {
  if (ShutdownRequested.exchange(true))
    return;
  Wake.poke();
}

int Server::wait() {
  std::lock_guard<std::mutex> WL(WaitMutex);
  if (!Started.load() || Waited)
    return AcceptFailed.load() ? 1 : 0;
  if (AcceptThread.joinable())
    AcceptThread.join();
  // The accept loop has set Draining; the pool workers answer what is left
  // in the queue with Cancelled, finish in-flight requests, and return.
  // The pool destructor then joins its threads.
  Pool.reset();
  sweepConnections(/*Force=*/true);
  Waited = true;
  return AcceptFailed.load() ? 1 : 0;
}

void Server::acceptLoop() {
  while (!ShutdownRequested.load()) {
    ErrorOr<UnixSocket> C = Listener.accept(Wake.readFd());
    if (!C.ok()) {
      if (C.status().code() == StatusCode::Unavailable) {
        Wake.drain();
        continue; // Woken; the loop condition decides.
      }
      AcceptFailed.store(true);
      break;
    }
    sweepConnections(/*Force=*/false);
    size_t Live;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      Live = Conns.size();
    }
    if (Live >= static_cast<size_t>(Opts.MaxConnections)) {
      bumpServeCounter("serve.connections_rejected", Stats.ConnectionsRejected);
      ServeResponse R;
      R.Code = statusCodeName(StatusCode::Unavailable);
      R.Stage = "admission";
      R.Message = "connection limit reached";
      R.RetryAfterMs = Opts.RetryAfterMs;
      (void)writeFrame(*C, Frame{static_cast<uint16_t>(FrameType::Error), 0,
                                 encodeResponse(R)});
      continue; // RAII closes the socket.
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Sock = C.take();
    Conn->Sock.setSendTimeoutMs(Opts.SendTimeoutMs);
    bumpServeCounter("serve.connections", Stats.Connections);
    Conn->Reader = std::thread([this, Conn] { connectionLoop(Conn); });
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Conns.push_back(Conn);
  }
  // Refuse new connections (and unlink the socket path) before draining,
  // so a restarting supervisor can bind the path while we finish.
  Listener.close();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Draining = true;
  }
  QueueCV.notify_all();
  // Half-close every connection: readers see EOF and stop admitting; the
  // write side stays open so in-flight responses still get delivered.
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (const auto &Conn : Conns)
    Conn->Sock.shutdownRead();
}

void Server::connectionLoop(const std::shared_ptr<Connection> &Conn) {
  for (;;) {
    Frame F;
    if (Status S = readFrame(Conn->Sock, F, Opts.MaxRequestBytes); !S.ok()) {
      // Clean disconnects and truncated streams end the connection quietly;
      // a decodable-but-invalid frame gets a structured protocol error
      // first. Either way the stream cannot be trusted to be in sync with
      // frame boundaries any more, so the connection ends.
      if (S.code() == StatusCode::ParseError) {
        bumpServeCounter("serve.protocol_errors", Stats.ProtocolErrors);
        respondError(Conn, F.RequestId, StatusCode::ParseError, "protocol",
                     S.message());
      }
      break;
    }
    if (!isRequestType(F.Type)) {
      // The frame itself was well-formed, so the stream is still in sync;
      // answer and keep serving.
      bumpServeCounter("serve.protocol_errors", Stats.ProtocolErrors);
      respondError(Conn, F.RequestId, StatusCode::ParseError, "protocol",
                   "unknown request type " + std::to_string(F.Type));
      continue;
    }
    if (F.Type != static_cast<uint16_t>(FrameType::Alloc)) {
      respondIntrospection(Conn, F);
      continue;
    }
    bumpServeCounter("serve.requests", Stats.Requests);
    ErrorOr<AllocRequest> Req = parseAllocRequest(F.Payload);
    if (!Req.ok()) {
      bumpServeCounter("serve.protocol_errors", Stats.ProtocolErrors);
      respondError(Conn, F.RequestId, StatusCode::ParseError, "protocol",
                   Req.status().message());
      continue;
    }
    // Admission: bounded queue, immediate structured rejection when full
    // or draining. The reader never blocks on a full queue — backpressure
    // is explicit, through the retry-after hint.
    bool Admit = false;
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      if (!Draining &&
          Queue.size() < static_cast<size_t>(Opts.QueueCapacity)) {
        Queue.push_back(Pending{Conn, F.RequestId, Req.take()});
        Admit = true;
      }
    }
    if (!Admit) {
      bumpServeCounter("serve.shed", Stats.Shed);
      respondError(Conn, F.RequestId, StatusCode::Unavailable, "admission",
                   ShutdownRequested.load() ? "server is draining"
                                            : "admission queue is full",
                   Opts.RetryAfterMs);
      continue;
    }
    bumpServeCounter("serve.admitted", Stats.Admitted);
    QueueCV.notify_one();
  }
  Conn->Done.store(true);
}

void Server::workerLoop() {
  for (;;) {
    Pending P;
    bool Cancel = false;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [this] { return Draining || !Queue.empty(); });
      if (Queue.empty())
        return; // Draining and fully drained.
      P = std::move(Queue.front());
      Queue.pop_front();
      // Queued-but-not-started requests are abandoned on drain; only
      // requests already in flight when the drain began run to completion.
      Cancel = Draining;
      if (!Cancel)
        ++InFlight;
    }
    if (Cancel) {
      bumpServeCounter("serve.cancelled", Stats.Cancelled);
      respondError(P.Conn, P.RequestId, StatusCode::Cancelled, "admission",
                   "request abandoned by server drain");
      continue;
    }
    if (Opts.TestStallHook)
      Opts.TestStallHook();
    processRequest(P);
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --InFlight;
    }
  }
}

void Server::processRequest(Pending &P) {
  BatchOptions BO;
  BO.Nreg = P.Req.Nreg;
  BO.Verify = Opts.Verify;
  BO.Validate = P.Req.Validate;
  BO.KeepPhysical = true;
  BO.AllowSpill = P.Req.AllowSpill;
  BO.MaxSpills = P.Req.MaxSpills;
  BO.DeadlineMs = P.Req.DeadlineMs > 0 ? P.Req.DeadlineMs
                                       : Opts.DefaultDeadlineMs;
  BO.Faults = Opts.Faults;
  BatchJob Job;
  Job.Name = "request-" + std::to_string(RequestSeq.fetch_add(1) + 1);
  Job.Text = std::move(P.Req.Assembly);

  // The pipeline's per-job isolation contract: this never throws, every
  // failure comes back classified. A poisoned request cannot take the
  // process down.
  BatchJobResult R = runSingleJob(Job, BO, &Cache, P.Req.ProfileHash);

  bumpServeCounter("serve.cache_hits", Stats.CacheHits, R.CacheHits);
  bumpServeCounter("serve.cache_misses", Stats.CacheMisses, R.CacheMisses);
  if (!R.Success) {
    bumpServeCounter("serve.failed", Stats.Failed);
    if (R.WatchdogFired || R.FailCode == StatusCode::DeadlineExceeded)
      bumpServeCounter("serve.deadline_exceeded", Stats.DeadlineExceeded);
    if (R.FailCode == StatusCode::FaultInjected)
      bumpServeCounter("serve.faults_injected", Stats.FaultsInjected);
    if (R.FailStage == "internal")
      bumpServeCounter("serve.isolated_failures", Stats.IsolatedFailures);
    respondError(P.Conn, P.RequestId, R.FailCode, R.FailStage, R.FailReason);
    return;
  }
  bumpServeCounter("serve.ok", Stats.Ok);
  if (R.UsedSpilling)
    bumpServeCounter("serve.degraded", Stats.Degraded);
  ServeResponse Resp;
  Resp.Ok = true;
  Resp.RegistersUsed = R.RegistersUsed;
  Resp.SGR = R.SGR;
  Resp.TotalMoveCost = R.TotalMoveCost;
  Resp.SpilledRanges = R.SpilledRanges;
  Resp.Degraded = R.UsedSpilling;
  Resp.Validated = R.Validated;
  // Body: the allocated physical assembly, composed exactly as `npralc
  // alloc`'s print section renders it (printProgram per thread, one blank
  // separator after each) — the byte-identity tests depend on this.
  for (const Program &T : R.Physical.Threads) {
    Resp.Body += programToString(T);
    Resp.Body += "\n";
  }
  respond(P.Conn, Frame{static_cast<uint16_t>(FrameType::Ok), P.RequestId,
                        encodeResponse(Resp)});
}

void Server::respondIntrospection(const std::shared_ptr<Connection> &Conn,
                                  const Frame &Request) {
  ServeResponse R;
  R.Ok = true;
  if (Request.Type == static_cast<uint16_t>(FrameType::Health)) {
    size_t Depth;
    int Flight;
    bool Drain;
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      Depth = Queue.size();
      Flight = InFlight;
      Drain = Draining;
    }
    std::ostringstream OS;
    OS << "state=" << (Drain ? "draining" : "serving") << "\n"
       << "queue-depth=" << Depth << "\n"
       << "queue-capacity=" << Opts.QueueCapacity << "\n"
       << "in-flight=" << Flight << "\n"
       << "workers=" << (Pool ? Pool->getNumWorkers() : 0) << "\n"
       << "admitted=" << Stats.Admitted.load() << "\n"
       << "shed=" << Stats.Shed.load() << "\n"
       << "cache-bytes=" << Cache.bytes() << "\n"
       << "cache-evictions=" << Cache.evictions() << "\n"
       << "rss-bytes=" << currentRSSBytes() << "\n";
    R.Body = OS.str();
  } else {
    std::ostringstream OS;
    MetricsRegistry::global().renderJSON(OS);
    R.Body = OS.str();
  }
  respond(Conn, Frame{static_cast<uint16_t>(FrameType::Ok), Request.RequestId,
                      encodeResponse(R)});
}

void Server::respondError(const std::shared_ptr<Connection> &Conn, uint64_t Id,
                          StatusCode Code, const std::string &Stage,
                          const std::string &Message, int RetryAfterMs) {
  ServeResponse R;
  R.Code = statusCodeName(Code);
  R.Stage = Stage;
  R.Message = Message;
  R.RetryAfterMs = RetryAfterMs;
  respond(Conn, Frame{static_cast<uint16_t>(FrameType::Error), Id,
                      encodeResponse(R)});
}

void Server::respond(const std::shared_ptr<Connection> &Conn, const Frame &F) {
  std::lock_guard<std::mutex> Lock(Conn->WriteMutex);
  if (Status S = writeFrame(Conn->Sock, F); !S.ok())
    // The client went away (or wedged past SO_SNDTIMEO). The response is
    // lost to them but accounted for here — "zero lost responses" in the
    // soak sense means every response was either delivered or counted.
    bumpServeCounter("serve.dropped_responses", Stats.DroppedResponses);
}

void Server::sweepConnections(bool Force) {
  std::list<std::shared_ptr<Connection>> Sweep;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto It = Conns.begin(); It != Conns.end();) {
      if (Force || (*It)->Done.load()) {
        Sweep.push_back(*It);
        It = Conns.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (const auto &Conn : Sweep)
    if (Conn->Reader.joinable())
      Conn->Reader.join();
  // Workers may still hold a reference for a pending response; the socket
  // closes when the last shared_ptr drops.
}

void Server::bumpServeCounter(const char *Name, std::atomic<int64_t> &Local,
                              int64_t Delta) {
  Local.fetch_add(Delta, std::memory_order_relaxed);
  if (Delta != 0)
    MetricsRegistry::global().counter(Name).add(Delta);
}
