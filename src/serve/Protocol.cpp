//===- Protocol.cpp -------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

using namespace npral;
using namespace npral::protocol;

namespace {

void put16(char *P, uint16_t V) {
  P[0] = static_cast<char>(V & 0xFF);
  P[1] = static_cast<char>((V >> 8) & 0xFF);
}
void put32(char *P, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    P[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
}
void put64(char *P, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    P[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
}
uint16_t get16(const char *P) {
  return static_cast<uint16_t>(static_cast<uint8_t>(P[0]) |
                               (static_cast<uint8_t>(P[1]) << 8));
}
uint32_t get32(const char *P) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(P[I]);
  return V;
}
uint64_t get64(const char *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(P[I]);
  return V;
}

Status parseError(const std::string &Msg) {
  return Status::error(StatusCode::ParseError, Msg);
}

/// Strict unsigned decimal parse: the whole string, no sign, no blanks.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 20)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    const uint64_t D = static_cast<uint64_t>(C - '0');
    if (V > (std::numeric_limits<uint64_t>::max() - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

bool parseInt(const std::string &S, int &Out) {
  uint64_t V;
  if (!parseU64(S, V) ||
      V > static_cast<uint64_t>(std::numeric_limits<int>::max()))
    return false;
  Out = static_cast<int>(V);
  return true;
}

bool parseBool(const std::string &S, bool &Out) {
  if (S == "0")
    Out = false;
  else if (S == "1")
    Out = true;
  else
    return false;
  return true;
}

/// Split \p Payload into `key=value` header lines and the body after the
/// first blank line. Strict: every header line must contain '='; a missing
/// blank-line terminator is an error when \p RequireBlank.
Status splitPayload(const std::string &Payload,
                    std::vector<std::pair<std::string, std::string>> &KVs,
                    std::string &Body, bool RequireBlank) {
  size_t Pos = 0;
  while (Pos < Payload.size()) {
    size_t End = Payload.find('\n', Pos);
    if (End == std::string::npos)
      return parseError("unterminated header line");
    const std::string Line = Payload.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty()) {
      Body = Payload.substr(Pos);
      return Status::success();
    }
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos || Eq == 0)
      return parseError("malformed header line '" + Line + "'");
    KVs.emplace_back(Line.substr(0, Eq), Line.substr(Eq + 1));
  }
  if (RequireBlank)
    return parseError("missing blank-line terminator");
  Body.clear();
  return Status::success();
}

} // namespace

bool npral::protocol::isRequestType(uint16_t T) {
  return T == static_cast<uint16_t>(FrameType::Alloc) ||
         T == static_cast<uint16_t>(FrameType::Health) ||
         T == static_cast<uint16_t>(FrameType::Metrics);
}

Status npral::writeFrame(const UnixSocket &Sock, const Frame &F) {
  if (F.Payload.size() >
      static_cast<size_t>(std::numeric_limits<uint32_t>::max()))
    return Status::error(StatusCode::Internal, "payload too large to frame");
  char Header[HeaderSize];
  std::memcpy(Header, Magic, 4);
  put16(Header + 4, Version);
  put16(Header + 6, F.Type);
  put64(Header + 8, F.RequestId);
  put32(Header + 16, static_cast<uint32_t>(F.Payload.size()));
  // One buffer, one write: interleaving-safe as long as callers serialize
  // per connection (the server holds a per-connection write mutex).
  std::string Wire;
  Wire.reserve(HeaderSize + F.Payload.size());
  Wire.append(Header, HeaderSize);
  Wire += F.Payload;
  return Sock.writeAll(Wire.data(), Wire.size());
}

Status npral::readFrame(const UnixSocket &Sock, Frame &F,
                        uint32_t MaxPayloadBytes) {
  char Header[HeaderSize];
  bool SawEOF = false;
  if (Status S = Sock.readExact(Header, HeaderSize, &SawEOF); !S.ok())
    return S;
  if (std::memcmp(Header, Magic, 4) != 0)
    return parseError("bad frame magic");
  const uint16_t Ver = get16(Header + 4);
  if (Ver != Version)
    return parseError("unsupported protocol version " + std::to_string(Ver));
  F.Type = get16(Header + 6);
  F.RequestId = get64(Header + 8);
  const uint32_t Len = get32(Header + 16);
  if (Len > MaxPayloadBytes)
    return parseError("frame payload of " + std::to_string(Len) +
                      " bytes exceeds the " +
                      std::to_string(MaxPayloadBytes) + "-byte limit");
  F.Payload.resize(Len);
  if (Len > 0)
    if (Status S = Sock.readExact(F.Payload.data(), Len); !S.ok())
      return S;
  return Status::success();
}

std::string npral::encodeAllocRequest(const AllocRequest &R) {
  std::string Out;
  Out += "nreg=" + std::to_string(R.Nreg) + "\n";
  Out += "allow-spill=" + std::string(R.AllowSpill ? "1" : "0") + "\n";
  Out += "max-spills=" + std::to_string(R.MaxSpills) + "\n";
  Out += "validate=" + std::string(R.Validate ? "1" : "0") + "\n";
  Out += "deadline-ms=" + std::to_string(R.DeadlineMs) + "\n";
  Out += "profile-hash=" + std::to_string(R.ProfileHash) + "\n";
  Out += "\n";
  Out += R.Assembly;
  return Out;
}

ErrorOr<AllocRequest> npral::parseAllocRequest(const std::string &Payload) {
  std::vector<std::pair<std::string, std::string>> KVs;
  AllocRequest R;
  if (Status S = splitPayload(Payload, KVs, R.Assembly,
                              /*RequireBlank=*/true);
      !S.ok())
    return S;
  bool Seen[6] = {};
  for (const auto &[Key, Value] : KVs) {
    int Idx;
    bool OkV;
    if (Key == "nreg") {
      Idx = 0;
      OkV = parseInt(Value, R.Nreg) && R.Nreg > 0;
    } else if (Key == "allow-spill") {
      Idx = 1;
      OkV = parseBool(Value, R.AllowSpill);
    } else if (Key == "max-spills") {
      Idx = 2;
      OkV = parseInt(Value, R.MaxSpills);
    } else if (Key == "validate") {
      Idx = 3;
      OkV = parseBool(Value, R.Validate);
    } else if (Key == "deadline-ms") {
      Idx = 4;
      OkV = parseInt(Value, R.DeadlineMs);
    } else if (Key == "profile-hash") {
      Idx = 5;
      OkV = parseU64(Value, R.ProfileHash);
    } else {
      return parseError("unknown request option '" + Key + "'");
    }
    if (!OkV)
      return parseError("bad value for request option '" + Key + "'");
    if (Seen[Idx])
      return parseError("duplicate request option '" + Key + "'");
    Seen[Idx] = true;
  }
  if (R.Assembly.empty())
    return parseError("empty assembly body");
  return R;
}

std::string npral::encodeResponse(const ServeResponse &R) {
  std::string Out;
  if (R.Ok) {
    Out += "status=ok\n";
    Out += "registers-used=" + std::to_string(R.RegistersUsed) + "\n";
    Out += "sgr=" + std::to_string(R.SGR) + "\n";
    Out += "moves=" + std::to_string(R.TotalMoveCost) + "\n";
    Out += "spilled-ranges=" + std::to_string(R.SpilledRanges) + "\n";
    Out += "degraded=" + std::string(R.Degraded ? "1" : "0") + "\n";
    Out += "validated=" + std::string(R.Validated ? "1" : "0") + "\n";
  } else {
    Out += "status=error\n";
    Out += "code=" + R.Code + "\n";
    Out += "stage=" + R.Stage + "\n";
    Out += "retry-after-ms=" + std::to_string(R.RetryAfterMs) + "\n";
    // The message is a header field, so newlines must not split it; the
    // pipeline's messages are single-line by construction, but a defensive
    // flatten keeps a hostile message from desyncing the frame.
    std::string Msg = R.Message;
    for (char &C : Msg)
      if (C == '\n')
        C = ' ';
    Out += "message=" + Msg + "\n";
  }
  Out += "\n";
  Out += R.Body;
  return Out;
}

ErrorOr<ServeResponse> npral::parseResponse(uint16_t Type,
                                            const std::string &Payload) {
  ServeResponse R;
  std::vector<std::pair<std::string, std::string>> KVs;
  if (Status S = splitPayload(Payload, KVs, R.Body, /*RequireBlank=*/true);
      !S.ok())
    return S;
  R.Ok = Type == static_cast<uint16_t>(FrameType::Ok);
  if (Type != static_cast<uint16_t>(FrameType::Ok) &&
      Type != static_cast<uint16_t>(FrameType::Error))
    return parseError("unexpected response frame type " +
                      std::to_string(Type));
  for (const auto &[Key, Value] : KVs) {
    bool OkV = true;
    if (Key == "status")
      OkV = Value == (R.Ok ? "ok" : "error");
    else if (Key == "registers-used")
      OkV = parseInt(Value, R.RegistersUsed);
    else if (Key == "sgr")
      OkV = parseInt(Value, R.SGR);
    else if (Key == "moves")
      OkV = parseInt(Value, R.TotalMoveCost);
    else if (Key == "spilled-ranges")
      OkV = parseInt(Value, R.SpilledRanges);
    else if (Key == "degraded")
      OkV = parseBool(Value, R.Degraded);
    else if (Key == "validated")
      OkV = parseBool(Value, R.Validated);
    else if (Key == "code")
      R.Code = Value;
    else if (Key == "stage")
      R.Stage = Value;
    else if (Key == "retry-after-ms")
      OkV = parseInt(Value, R.RetryAfterMs);
    else if (Key == "message")
      R.Message = Value;
    else
      return parseError("unknown response field '" + Key + "'");
    if (!OkV)
      return parseError("bad value for response field '" + Key + "'");
  }
  return R;
}
