//===- Protocol.h - Allocation-service wire protocol ------------*- C++ -*-===//
///
/// \file
/// The length-prefixed frame protocol spoken over the npral-serve Unix
/// socket (docs/serve.md is the normative spec). Every message is one
/// frame:
///
///   offset  size  field
///        0     4  magic "NPRS"
///        4     2  version (currently 1), little-endian
///        6     2  type, little-endian
///        8     8  request id (echoed verbatim in the response)
///       16     4  payload length in bytes, little-endian
///       20     N  payload
///
/// Request types: Alloc (an options block + assembly text), Health,
/// Metrics. Response types: Ok and Error. Payloads are line-oriented
/// `key=value` text — debuggable with `socat`, strict to parse: unknown
/// keys, malformed numbers, duplicate keys and missing terminators are
/// all protocol errors, answered with a structured Error frame rather
/// than guessed around.
///
/// Robustness contract (the reason this file exists): readFrame() never
/// allocates more than the configured payload cap, never trusts a length
/// field beyond it, and classifies every way a frame can be wrong —
/// oversized, truncated, bad magic, unsupported version, unknown type —
/// so the server can answer garbage with an error instead of dying or
/// reading unbounded memory.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SERVE_PROTOCOL_H
#define NPRAL_SERVE_PROTOCOL_H

#include "support/Socket.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace npral {

namespace protocol {

inline constexpr char Magic[4] = {'N', 'P', 'R', 'S'};
inline constexpr uint16_t Version = 1;
/// Frame header bytes on the wire.
inline constexpr size_t HeaderSize = 20;
/// Default cap on request payloads; servers may lower or raise it.
inline constexpr uint32_t DefaultMaxRequestBytes = 4u << 20;

enum class FrameType : uint16_t {
  // Requests.
  Alloc = 1,
  Health = 2,
  Metrics = 3,
  // Responses.
  Ok = 128,
  Error = 129,
};

/// True for the request-role frame types a server accepts.
bool isRequestType(uint16_t T);

} // namespace protocol

/// One decoded frame.
struct Frame {
  uint16_t Type = 0;
  uint64_t RequestId = 0;
  std::string Payload;
};

/// Serialize \p F and send it over \p Sock.
Status writeFrame(const UnixSocket &Sock, const Frame &F);

/// Read one frame, enforcing \p MaxPayloadBytes. Failure codes:
///  * IOError with "connection closed" — clean EOF before a frame started
///    (an orderly client disconnect; \p F is untouched).
///  * ParseError — bad magic, unsupported version, or payload length over
///    the cap. F.RequestId carries the id when the header was readable, so
///    the error response can still be correlated.
///  * IOError otherwise — truncated frame or socket error.
Status readFrame(const UnixSocket &Sock, Frame &F, uint32_t MaxPayloadBytes);

/// Options carried by an Alloc request; defaults match `npralc alloc`.
struct AllocRequest {
  int Nreg = 128;
  bool AllowSpill = false;
  int MaxSpills = 64;
  bool Validate = false;
  /// Per-request watchdog deadline in ms; 0 = the server's default.
  int DeadlineMs = 0;
  /// Opaque cache-partition tag (a profile content hash); 0 = none.
  uint64_t ProfileHash = 0;
  /// The assembly to allocate.
  std::string Assembly;
};

/// Render \p R as an Alloc payload: `key=value` option lines, one blank
/// line, then the assembly verbatim.
std::string encodeAllocRequest(const AllocRequest &R);

/// Strictly parse an Alloc payload. Every violation is a ParseError with a
/// message naming the offending line.
ErrorOr<AllocRequest> parseAllocRequest(const std::string &Payload);

/// A decoded Ok/Error response payload. Ok allocation responses carry the
/// result fields plus the physical assembly (byte-identical to the
/// assembly section `npralc alloc` prints for the same input); Error
/// responses carry the classification the failed stage produced.
struct ServeResponse {
  bool Ok = false;
  // --- Error fields ---
  /// statusCodeName() of the failure.
  std::string Code;
  /// Pipeline stage ("parse", "alloc", ...) or serve stage ("admission",
  /// "protocol").
  std::string Stage;
  std::string Message;
  /// Backoff hint for Unavailable rejections, milliseconds; 0 otherwise.
  int RetryAfterMs = 0;
  // --- Ok fields (alloc) ---
  int RegistersUsed = 0;
  int SGR = 0;
  int TotalMoveCost = 0;
  int SpilledRanges = 0;
  bool Degraded = false;
  bool Validated = false;
  /// The allocated physical assembly, or the health/metrics body.
  std::string Body;
};

/// Encode \p R as an Ok or Error payload (field lines, blank line, body).
std::string encodeResponse(const ServeResponse &R);

/// Parse a response payload of frame type \p Type (Ok or Error).
ErrorOr<ServeResponse> parseResponse(uint16_t Type,
                                     const std::string &Payload);

} // namespace npral

#endif // NPRAL_SERVE_PROTOCOL_H
