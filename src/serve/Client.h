//===- Client.h - Allocation-service client ---------------------*- C++ -*-===//
///
/// \file
/// A small synchronous client for the npral-serve protocol: connect to the
/// daemon's Unix socket, send Alloc/Health/Metrics requests, decode the
/// responses. One request in flight per call — the protocol supports
/// pipelining (responses carry request ids), but every current consumer
/// (the `npralc client` subcommand, the tests, the soak driver) is
/// call-and-response, and the raw escape hatches below cover the rest.
///
/// The fuzz tests use sendRaw()/readRawFrame() to push deliberately
/// malformed bytes and observe the server's structured rejections.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_SERVE_CLIENT_H
#define NPRAL_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <string>

namespace npral {

class ServeClient {
public:
  /// Connect to the daemon listening on \p Path.
  static ErrorOr<ServeClient> connectTo(const std::string &Path);

  /// Round-trip one Alloc request. A returned ServeResponse with
  /// Ok == false is a *successful* round trip whose payload is a
  /// structured server-side error (shed, infeasible, parse failure, ...);
  /// an ErrorOr failure means the transport itself broke.
  ErrorOr<ServeResponse> alloc(const AllocRequest &Req);

  /// Round-trip a Health request; the response Body carries the
  /// `key=value` health lines.
  ErrorOr<ServeResponse> health();

  /// Round-trip a Metrics request; the response Body carries the global
  /// MetricsRegistry JSON.
  ErrorOr<ServeResponse> metrics();

  /// Send raw bytes as-is (fuzzing malformed frames).
  Status sendRaw(const void *Buf, size_t Len);
  /// Read one response frame without interpreting the payload.
  Status readRawFrame(Frame &F,
                      uint32_t MaxPayloadBytes = protocol::DefaultMaxRequestBytes);

  const UnixSocket &socket() const { return Sock; }

private:
  explicit ServeClient(UnixSocket S) : Sock(std::move(S)) {}

  ErrorOr<ServeResponse> roundTrip(protocol::FrameType Type,
                                   std::string Payload);

  UnixSocket Sock;
  /// Monotonic request-id source; ids only need to be unique per
  /// connection.
  uint64_t NextId = 1;
};

} // namespace npral

#endif // NPRAL_SERVE_CLIENT_H
