//===- Client.cpp ---------------------------------------------------------===//

#include "serve/Client.h"

#include <utility>

using namespace npral;
using namespace npral::protocol;

ErrorOr<ServeClient> ServeClient::connectTo(const std::string &Path) {
  ErrorOr<UnixSocket> S = UnixSocket::connectTo(Path);
  if (!S.ok())
    return S.status();
  return ServeClient(S.take());
}

ErrorOr<ServeResponse> ServeClient::roundTrip(FrameType Type,
                                              std::string Payload) {
  const uint64_t Id = NextId++;
  Frame Out{static_cast<uint16_t>(Type), Id, std::move(Payload)};
  if (Status S = writeFrame(Sock, Out); !S.ok())
    return S;
  Frame In;
  if (Status S = readFrame(Sock, In, DefaultMaxRequestBytes); !S.ok())
    return S;
  if (In.RequestId != Id)
    return Status::error(StatusCode::ParseError,
                         "response id " + std::to_string(In.RequestId) +
                             " does not match request id " +
                             std::to_string(Id));
  return parseResponse(In.Type, In.Payload);
}

ErrorOr<ServeResponse> ServeClient::alloc(const AllocRequest &Req) {
  return roundTrip(FrameType::Alloc, encodeAllocRequest(Req));
}

ErrorOr<ServeResponse> ServeClient::health() {
  return roundTrip(FrameType::Health, "");
}

ErrorOr<ServeResponse> ServeClient::metrics() {
  return roundTrip(FrameType::Metrics, "");
}

Status ServeClient::sendRaw(const void *Buf, size_t Len) {
  return Sock.writeAll(Buf, Len);
}

Status ServeClient::readRawFrame(Frame &F, uint32_t MaxPayloadBytes) {
  return readFrame(Sock, F, MaxPayloadBytes);
}
