//===- Checkers.h - Checker entry points (internal) -------------*- C++ -*-===//
///
/// \file
/// Entry points of the individual checkers, wired into the registry table
/// in Lint.cpp. Each takes the shared LintContext and emits diagnostics
/// under its registry name; docs/lint.md documents every checker and its
/// paper grounding.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_LINT_CHECKERS_H
#define NPRAL_LINT_CHECKERS_H

namespace npral {

class LintContext;

namespace lintchecks {

// StructureCheckers.cpp
void checkStructure(LintContext &Ctx);
void checkUnreachableBlocks(LintContext &Ctx);
void checkRedundantMoves(LintContext &Ctx);

// DataflowCheckers.cpp
void checkMaybeUninit(LintContext &Ctx);
void checkDeadStores(LintContext &Ctx);
void checkDeadRanges(LintContext &Ctx);

// RaceChecker.cpp
void checkCrossThreadRace(LintContext &Ctx);

// AdvisorChecker.cpp
void adviseOverPrivate(LintContext &Ctx);

} // namespace lintchecks
} // namespace npral

#endif // NPRAL_LINT_CHECKERS_H
