//===- DataflowCheckers.cpp - maybe-uninit, dead-store, dead-range --------===//

#include "ir/IRPrinter.h"
#include "lint/Checkers.h"
#include "lint/Lint.h"
#include "lint/dataflow/GenKill.h"
#include "support/BitVector.h"

#include <array>
#include <vector>

using namespace npral;

void lintchecks::checkMaybeUninit(LintContext &Ctx) {
  for (int T = 0; T < Ctx.getNumThreads(); ++T) {
    if (!Ctx.state(T).HasDataflow)
      continue;
    const Program &P = Ctx.thread(T);
    const int NumBlocks = P.getNumBlocks();

    // Forward may-analysis on the shared worklist solver: a register is
    // maybe-undefined at a point when some path from entry reaches the
    // point without defining it. Defs kill; joins are unions.
    // (checkNoUseOfUndef only looks at the entry live-in — this pinpoints
    // every offending read.)
    DataflowResult<BitVector> Undefness =
        solveDataflow(P, makeMaybeUninitProblem(P));

    // Reporting pass: exact per-instruction walk of each block.
    for (int B = 0; B < NumBlocks; ++B) {
      const BasicBlock &BB = P.block(B);
      BitVector Undef = Undefness.In[static_cast<size_t>(B)];
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
        const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
        std::array<Reg, 2> Uses;
        int N = Inst.getUses(Uses);
        for (int U = 0; U < N; ++U) {
          Reg R = Uses[static_cast<size_t>(U)];
          if (U == 1 && Uses[0] == R)
            continue; // same register in both slots: report once
          if (Undef.test(R))
            Ctx.emit(Severity::Warning, "maybe-uninit", T, B, I,
                     "read of '" + P.getRegName(R) +
                         "' may see an uninitialized register")
                .Witness = formatInstruction(P, Inst);
        }
        if (Inst.Def != NoReg)
          Undef.reset(Inst.Def);
      }
    }
  }
}

void lintchecks::checkDeadStores(LintContext &Ctx) {
  for (int T = 0; T < Ctx.getNumThreads(); ++T) {
    if (!Ctx.state(T).HasDataflow)
      continue;
    const Program &P = Ctx.thread(T);
    const LivenessInfo &LI = Ctx.state(T).Liveness;
    for (int B = 0; B < P.getNumBlocks(); ++B) {
      const BasicBlock &BB = P.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
        const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
        if (Inst.Def == NoReg || LI.instrLiveOut(B, I).test(Inst.Def))
          continue;
        if (Inst.Op == Opcode::Mov && Inst.Def == Inst.Use1)
          continue; // redundant-move reports self-moves
        std::string Message = "value of '" + P.getRegName(Inst.Def) +
                              "' defined here is never used";
        if (Inst.causesCtxSwitch())
          Message += " (the memory access itself still executes)";
        Ctx.emit(Severity::Warning, "dead-store", T, B, I,
                 std::move(Message))
            .Witness = formatInstruction(P, Inst);
      }
    }
  }
}

void lintchecks::checkDeadRanges(LintContext &Ctx) {
  for (int T = 0; T < Ctx.getNumThreads(); ++T) {
    const Program &P = Ctx.thread(T);
    std::vector<int> DefCount(static_cast<size_t>(P.NumRegs), 0);
    std::vector<int> UseCount(static_cast<size_t>(P.NumRegs), 0);
    std::vector<std::pair<int, int>> FirstDef(
        static_cast<size_t>(P.NumRegs), {-1, -1});
    for (int B = 0; B < P.getNumBlocks(); ++B) {
      const BasicBlock &BB = P.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
        const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
        if (Inst.Def != NoReg) {
          if (DefCount[static_cast<size_t>(Inst.Def)]++ == 0)
            FirstDef[static_cast<size_t>(Inst.Def)] = {B, I};
        }
        std::array<Reg, 2> Uses;
        int N = Inst.getUses(Uses);
        for (int U = 0; U < N; ++U)
          ++UseCount[static_cast<size_t>(Uses[U])];
      }
    }
    for (Reg R = 0; R < P.NumRegs; ++R) {
      if (DefCount[static_cast<size_t>(R)] == 0 ||
          UseCount[static_cast<size_t>(R)] > 0)
        continue;
      auto [B, I] = FirstDef[static_cast<size_t>(R)];
      Ctx.emit(Severity::Warning, "dead-range", T, B, I,
               "register '" + P.getRegName(R) +
                   "' is written but never read");
    }
  }
}
