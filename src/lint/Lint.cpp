//===- Lint.cpp - Registry, context and driver ----------------------------===//

#include "lint/Lint.h"

#include "ir/IRVerifier.h"
#include "lint/Checkers.h"
#include "trace/MetricsRegistry.h"
#include "trace/TraceEngine.h"

#include <algorithm>

using namespace npral;

const std::vector<CheckerInfo> &npral::getCheckerRegistry() {
  using namespace lintchecks;
  static const std::vector<CheckerInfo> Registry = {
      {"structure", "per-thread structural well-formedness (IRVerifier)",
       CheckerMode::Both, false, checkStructure},
      {"maybe-uninit", "reads that may see an uninitialized register",
       CheckerMode::Both, false, checkMaybeUninit},
      {"dead-store", "definitions whose value is never used",
       CheckerMode::Both, false, checkDeadStores},
      {"dead-range", "registers that are written but never read",
       CheckerMode::VirtualOnly, false, checkDeadRanges},
      {"unreachable-block", "blocks not reachable from the entry block",
       CheckerMode::Both, false, checkUnreachableBlocks},
      {"redundant-move", "self-moves and immediately cancelled moves",
       CheckerMode::Both, false, checkRedundantMoves},
      {"cross-thread-race",
       "registers live across one thread's context switch but referenced "
       "by another thread (paper §2, property 5)",
       CheckerMode::PhysicalOnly, false, checkCrossThreadRace},
      {"over-private",
       "private live ranges that NSR exclusion could carve into shared "
       "registers",
       CheckerMode::VirtualOnly, true, adviseOverPrivate},
  };
  return Registry;
}

const CheckerInfo *npral::findChecker(std::string_view Name) {
  for (const CheckerInfo &C : getCheckerRegistry())
    if (C.Name == Name)
      return &C;
  return nullptr;
}

LintContext::LintContext(const MultiThreadProgram &MTP,
                         DiagnosticEngine &Engine)
    : MTP(MTP), Engine(Engine) {
  States.resize(MTP.Threads.size());
  Physical = !MTP.Threads.empty();
  for (size_t T = 0; T < MTP.Threads.size(); ++T) {
    const Program &P = MTP.Threads[T];
    if (!P.IsPhysical)
      Physical = false;
    ThreadLintState &S = States[T];
    S.Structure = verifyProgram(P);
    if (S.Structure.ok()) {
      S.Liveness = computeLiveness(P);
      S.NSRs = computeNSRs(P, S.Liveness);
      S.HasDataflow = true;
    }
  }
}

Diagnostic &LintContext::emit(Severity Sev, std::string Check, int T,
                              int Block, int Instr, std::string Message) {
  Diagnostic &D = Engine.report(Sev, std::move(Check), std::move(Message));
  D.Thread = thread(T).Name;
  D.Block = Block;
  D.Instr = Instr;
  return D;
}

int npral::runAllCheckers(const MultiThreadProgram &MTP,
                          DiagnosticEngine &Engine, const LintOptions &Opts) {
  NPRAL_TRACE_SPAN_ARGS("lint", "runAllCheckers",
                        {"program", MTP.Name},
                        {"threads", std::to_string(MTP.getNumThreads())});
  LintContext Ctx(MTP, Engine);
  for (const CheckerInfo &C : getCheckerRegistry()) {
    bool Named =
        std::find(Opts.OnlyChecks.begin(), Opts.OnlyChecks.end(), C.Name) !=
        Opts.OnlyChecks.end();
    if (!Opts.OnlyChecks.empty() && !Named)
      continue;
    if (C.Mode == CheckerMode::VirtualOnly && Ctx.isPhysical())
      continue;
    if (C.Mode == CheckerMode::PhysicalOnly && !Ctx.isPhysical())
      continue;
    if (C.Advisory && !Opts.IncludeAdvice && !Named)
      continue;
    const int Before = Engine.size();
    {
      NPRAL_TRACE_SPAN_ARGS("lint", "checker", {"check", std::string(C.Name)});
      C.Run(Ctx);
    }
    MetricsRegistry::global()
        .counter("lint." + std::string(C.Name) + ".diagnostics")
        .add(Engine.size() - Before);
    MetricsRegistry::global().counter("lint.checkers_run").increment();
  }
  return Engine.errorCount();
}

Status npral::mapNamedPhysicalRegisters(MultiThreadProgram &MTP) {
  if (MTP.Threads.empty())
    return Status::error("no threads to map");

  // Arbitrary ceiling so a typo like p99999 cannot balloon every bit
  // vector in the subsequent analyses.
  constexpr int MaxPhysIndex = 4095;

  std::vector<std::vector<Reg>> Maps;
  int MaxPhys = -1;
  for (const Program &T : MTP.Threads) {
    std::vector<Reg> Map(static_cast<size_t>(T.NumRegs), NoReg);
    for (Reg R = 0; R < T.NumRegs; ++R) {
      std::string Name = T.getRegName(R);
      bool Ok = Name.size() >= 2 && Name[0] == 'p';
      int Value = 0;
      for (size_t I = 1; Ok && I < Name.size(); ++I) {
        if (Name[I] < '0' || Name[I] > '9')
          Ok = false;
        else
          Value = Value * 10 + (Name[I] - '0');
      }
      if (!Ok)
        return Status::error("register '" + Name + "' in thread '" + T.Name +
                             "' is not a physical register name of the form "
                             "p<N>");
      if (Value > MaxPhysIndex)
        return Status::error("physical register index " +
                             std::to_string(Value) + " in thread '" + T.Name +
                             "' is out of range");
      Map[static_cast<size_t>(R)] = Value;
      MaxPhys = std::max(MaxPhys, Value);
    }
    Maps.push_back(std::move(Map));
  }

  const int NumRegs = MaxPhys + 1;
  for (size_t T = 0; T < MTP.Threads.size(); ++T) {
    Program &P = MTP.Threads[T];
    const std::vector<Reg> &Map = Maps[T];
    auto Remap = [&](Reg R) { return R == NoReg ? NoReg : Map[static_cast<size_t>(R)]; };
    for (BasicBlock &BB : P.Blocks)
      for (Instruction &I : BB.Instrs) {
        I.Def = Remap(I.Def);
        I.Use1 = Remap(I.Use1);
        I.Use2 = Remap(I.Use2);
      }
    for (Reg &R : P.EntryLiveRegs)
      R = Remap(R);
    P.NumRegs = NumRegs;
    // getRegName renders p<N> for physical programs on its own.
    P.clearRegNames();
    P.IsPhysical = true;
  }
  return Status::success();
}
