//===- TranslationValidator.cpp -------------------------------------------===//

#include "lint/TranslationValidator.h"

#include "ir/IRPrinter.h"
#include "support/BitVector.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

using namespace npral;

namespace {

/// A symbolic value is the xor-combination of a set of value numbers. To
/// keep states flat (the validator runs on every batch job under
/// --validate, so state copies dominate its cost) each value is stored as
/// one int32 encoding:
///   * kUnknown        — nothing is known about the location;
///   * kZero           — the empty xor-set, i.e. the constant zero;
///   * 0 <= E < kMulti — the singleton set {E} (the overwhelmingly common
///                       case: every fresh definition is a singleton);
///   * E >= kMulti     — a multi-element set (xor swap idioms), interned
///                       in the pool at index E - kMulti.
/// Interning keeps encodings canonical: equal encodings iff equal sets.
constexpr int32_t kUnknown = -1;
constexpr int32_t kZero = -2;
constexpr int32_t kMulti = 1 << 30;

/// Sorted value-number set; only materialised for pooled multi-sets.
using ValueSet = std::vector<int32_t>;

/// Symbolic state at one program point of one thread: what every virtual
/// register, physical register, and spill scratch slot is known to hold.
/// VV and PV are dense arrays indexed by register ID (kUnknown when
/// nothing is known); Slots is sorted by address and only holds known
/// values, so copying a state is three flat vector copies.
struct SymState {
  std::vector<int32_t> VV;                       ///< virtual reg -> value
  std::vector<int32_t> PV;                       ///< physical reg -> value
  std::vector<std::pair<int64_t, int32_t>> Slots; ///< scratch word -> value

  bool operator==(const SymState &O) const = default;

  static std::vector<std::pair<int64_t, int32_t>>::const_iterator
  slotFind(const std::vector<std::pair<int64_t, int32_t>> &Slots,
           int64_t A) {
    return std::lower_bound(
        Slots.begin(), Slots.end(), A,
        [](const std::pair<int64_t, int32_t> &P, int64_t Addr) {
          return P.first < Addr;
        });
  }

  int32_t slotGet(int64_t A) const {
    auto It = slotFind(Slots, A);
    return It != Slots.end() && It->first == A ? It->second : kUnknown;
  }
  void slotSet(int64_t A, int32_t V) {
    auto It = slotFind(Slots, A);
    if (It != Slots.end() && It->first == A)
      Slots[static_cast<size_t>(It - Slots.begin())].second = V;
    else
      Slots.insert(It, {A, V});
  }
  void slotErase(int64_t A) {
    auto It = slotFind(Slots, A);
    if (It != Slots.end() && It->first == A)
      Slots.erase(It);
  }
};

/// Minimal open-addressing hash map from a packed 64-bit key to an int32
/// id, with O(1) epoch-based clear. The validator's two hot maps — join
/// signature groups and two-element xor-set interning — both have keys
/// that pack into one uint64; std::map with vector keys dominated the
/// profile before this.
class FlatMap64 {
public:
  void clear() {
    ++Epoch;
    Count = 0;
  }

  /// Returns the id for \p Key; on a miss, assigns NextId and bumps it.
  int32_t findOrInsert(uint64_t Key, int32_t &NextId) {
    if (Keys.empty())
      rehash(64);
    size_t I = hashKey(Key) & Mask;
    while (Epochs[I] == Epoch) {
      if (Keys[I] == Key)
        return Vals[I];
      I = (I + 1) & Mask;
    }
    int32_t Id = NextId++;
    Epochs[I] = Epoch;
    Keys[I] = Key;
    Vals[I] = Id;
    if (++Count * 2 > Keys.size())
      rehash(Keys.size() * 2);
    return Id;
  }

private:
  static size_t hashKey(uint64_t K) {
    K ^= K >> 33;
    K *= 0xff51afd7ed558ccdULL;
    K ^= K >> 33;
    return static_cast<size_t>(K);
  }

  void rehash(size_t NewCap) {
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<int32_t> OldVals = std::move(Vals);
    std::vector<int64_t> OldEpochs = std::move(Epochs);
    Keys.assign(NewCap, 0);
    Vals.assign(NewCap, 0);
    Epochs.assign(NewCap, 0);
    Mask = NewCap - 1;
    for (size_t I = 0; I < OldKeys.size(); ++I) {
      if (OldEpochs[I] != Epoch)
        continue;
      size_t J = hashKey(OldKeys[I]) & Mask;
      while (Epochs[J] == Epoch)
        J = (J + 1) & Mask;
      Epochs[J] = Epoch;
      Keys[J] = OldKeys[I];
      Vals[J] = OldVals[I];
    }
  }

  std::vector<uint64_t> Keys;
  std::vector<int32_t> Vals;
  std::vector<int64_t> Epochs; ///< slot live iff == Epoch; 0 = never used
  int64_t Epoch = 1;
  size_t Count = 0;
  size_t Mask = 0;
};

/// One thread's proof: fixpoint over the physical CFG, then — only when a
/// block's final transfer failed — a reporting pass in reverse post order.
class ThreadValidator {
public:
  ThreadValidator(const Program &Virt, const Program &Phys,
                  const BitVector &OtherRefs,
                  const std::set<int64_t> &OtherSlotWrites,
                  const std::vector<int64_t> &VirtualAbsAddrs,
                  DiagnosticEngine &Engine)
      : Virt(Virt), Phys(Phys), VirtualAbsAddrs(VirtualAbsAddrs),
        Engine(Engine), NV(Virt.getNumBlocks()),
        VVSize(maxRegPlusOne(Virt)), PVSize(maxRegPlusOne(Phys)) {
    for (int P = 0; P < std::min<int>(PVSize, OtherRefs.size()); ++P)
      if (OtherRefs.test(P))
        ClobberRegs.push_back(P);
    ClobberSlots.assign(OtherSlotWrites.begin(), OtherSlotWrites.end());
  }

  bool run();

  int64_t InstructionsMatched = 0;
  int64_t CopiesInterpreted = 0;

private:
  const Program &Virt;
  const Program &Phys;
  const std::vector<int64_t> &VirtualAbsAddrs; ///< sorted, deduplicated
  DiagnosticEngine &Engine;
  const int NV; ///< virtual block count; physical blocks >= NV are inserted
  const int VVSize;
  const int PVSize;
  std::vector<Reg> ClobberRegs;       ///< physical regs other threads touch
  std::vector<int64_t> ClobberSlots;  ///< scratch words other threads write

  std::vector<std::vector<int>> Succs;     ///< physical successor lists
  std::vector<std::vector<int>> VirtSuccs; ///< virtual successor lists

  /// Per-block outcome of the block's most recent transfer. The worklist
  /// requeues a block whenever its entry state changes, so after the
  /// fixpoint these reflect each block's *final* state — the reporting
  /// pass only runs when one of them failed.
  std::vector<char> BlockFailed;
  std::vector<int64_t> BlockMatched;
  std::vector<int64_t> BlockCopies;

  /// Interned multi-element sets (xor chains); singletons and the empty
  /// set live entirely in their encoding. Two-element sets — the common
  /// case by far — are memoized in the flat PairIds table; MultiIds only
  /// holds the rare larger sets.
  std::vector<ValueSet> MultiSets;
  std::map<ValueSet, int32_t> MultiIds;
  FlatMap64 PairIds;
  FlatMap64 JoinGroups;

  int32_t NextVN = 0;
  int32_t MaxVNEver = 0; ///< upper bound on any value number ever minted
  bool Reporting = false;
  bool Failed = false;

  /// Number of distinct value numbers in the state the last canonicalize /
  /// joinStates call produced (canonical states use VNs 0..k-1, so this is
  /// exactly where the next transfer may start minting).
  int32_t LastVNCount = 0;

  /// Epoch-stamped renumber scratch: O(1) reset per canonicalize call.
  std::vector<int32_t> RenumVal;
  std::vector<int32_t> RenumEpoch;
  int32_t RenumCur = 0;

  /// Epoch-stamped scratch for the diagonal join signature (v, v) — the
  /// common case at a merge, since only values that actually diverge on
  /// the incoming paths have differing signatures.
  std::vector<int32_t> DiagVal;
  std::vector<int32_t> DiagEpoch;
  int32_t DiagCur = 0;

  /// State arrays cover only registers the program actually mentions —
  /// NumRegs may be the full machine budget (e.g. 128) while an allocated
  /// thread touches a couple dozen, and join/canonicalize walk every slot.
  static int maxRegPlusOne(const Program &P) {
    int M = 1;
    for (Reg R : P.EntryLiveRegs)
      M = std::max(M, R + 1);
    for (const BasicBlock &BB : P.Blocks)
      for (const Instruction &I : BB.Instrs) {
        M = std::max(M, I.Def + 1);
        std::array<Reg, 2> Uses;
        int N = I.getUses(Uses);
        for (int U = 0; U < N; ++U)
          M = std::max(M, Uses[static_cast<size_t>(U)] + 1);
      }
    return M;
  }

  int32_t freshVN() {
    MaxVNEver = std::max(MaxVNEver, NextVN + 1);
    return NextVN++;
  }

  const ValueSet &multi(int32_t E) const {
    return MultiSets[static_cast<size_t>(E - kMulti)];
  }
  int32_t internMulti(ValueSet V) {
    if (V.size() == 2) {
      // Elements are value numbers in [0, kMulti) and V is sorted, so the
      // pair packs injectively into one uint64.
      const uint64_t Key =
          static_cast<uint64_t>(static_cast<uint32_t>(V[0])) << 32 |
          static_cast<uint32_t>(V[1]);
      int32_t Next = static_cast<int32_t>(MultiSets.size());
      const int32_t Id = PairIds.findOrInsert(Key, Next);
      if (Id == static_cast<int32_t>(MultiSets.size()))
        MultiSets.push_back(std::move(V));
      return kMulti + Id;
    }
    auto [It, Inserted] =
        MultiIds.emplace(std::move(V), static_cast<int32_t>(MultiSets.size()));
    if (Inserted)
      MultiSets.push_back(It->first);
    return kMulti + It->second;
  }
  int32_t encode(ValueSet V) {
    if (V.empty())
      return kZero;
    if (V.size() == 1)
      return V[0];
    return internMulti(std::move(V));
  }
  void decode(int32_t E, ValueSet &Out) const {
    Out.clear();
    if (E == kZero)
      return;
    if (E < kMulti)
      Out.push_back(E);
    else
      Out = multi(E);
  }

  /// Xor of two known values.
  int32_t symDiffEnc(int32_t A, int32_t B) {
    if (A == kZero)
      return B;
    if (B == kZero)
      return A;
    if (A == B)
      return kZero;
    if (A < kMulti && B < kMulti)
      return internMulti({std::min(A, B), std::max(A, B)});
    ValueSet Av, Bv, R;
    decode(A, Av);
    decode(B, Bv);
    std::set_symmetric_difference(Av.begin(), Av.end(), Bv.begin(), Bv.end(),
                                  std::back_inserter(R));
    return encode(std::move(R));
  }

  /// Renumber the value numbers of \p S to 0..k-1 in first-occurrence
  /// order over the deterministic location iteration (VV index ascending,
  /// then PV, then Slots; within a set, ascending old numbers). Two states
  /// are equivalent up to value-number renaming iff their canonical forms
  /// are equal. Writes into \p C (capacity is reused across calls; \p C
  /// must not alias \p S).
  void canonicalizeInto(const SymState &S, SymState &C) {
    // Flat epoch-stamped renumber table instead of a map: old value
    // numbers are bounded by MaxVNEver.
    if (static_cast<int32_t>(RenumVal.size()) < MaxVNEver) {
      RenumVal.resize(static_cast<size_t>(MaxVNEver));
      RenumEpoch.resize(static_cast<size_t>(MaxVNEver), 0);
    }
    ++RenumCur;
    int32_t Count = 0;
    auto renum = [&](int32_t N) {
      if (RenumEpoch[static_cast<size_t>(N)] != RenumCur) {
        RenumEpoch[static_cast<size_t>(N)] = RenumCur;
        RenumVal[static_cast<size_t>(N)] = Count++;
      }
      return RenumVal[static_cast<size_t>(N)];
    };
    ValueSet Tmp;
    auto mapEnc = [&](int32_t E) -> int32_t {
      if (E == kUnknown || E == kZero)
        return E;
      if (E < kMulti)
        return renum(E);
      Tmp = multi(E);
      for (int32_t &N : Tmp)
        N = renum(N);
      std::sort(Tmp.begin(), Tmp.end());
      return encode(std::move(Tmp));
    };
    C = S; // copy-assign: reuses C's buffers once they are warm
    for (int32_t &E : C.VV)
      E = mapEnc(E);
    for (int32_t &E : C.PV)
      E = mapEnc(E);
    for (auto &KV : C.Slots)
      KV.second = mapEnc(KV.second);
    LastVNCount = Count;
    MaxVNEver = std::max(MaxVNEver, Count);
  }

  SymState makeEntryState();
  void joinStates(const std::vector<const SymState *> &Preds, SymState &R);
  void transfer(SymState &S, int B);

  /// Follow a chain of allocator-inserted blocks (ID >= NV: spill
  /// pre-entry, edge splits holding parallel copies) to the paired block
  /// it eventually reaches. Inserted blocks are pass-through — one
  /// outgoing edge — so a physical branch targeting one realises the
  /// virtual branch to the chain's destination. Returns the first block
  /// that is paired or not pass-through (the caller then reports any
  /// residual mismatch).
  int resolveInserted(int B) const {
    for (int Steps = 0; B >= NV && Steps <= Phys.getNumBlocks(); ++Steps) {
      const std::vector<int> &S = Succs[static_cast<size_t>(B)];
      if (S.size() != 1)
        break;
      B = S[0];
    }
    return B;
  }

  /// Record a failure; diagnostics (and their witness strings) are only
  /// built during the reporting pass.
  template <typename MsgFn, typename WitFn>
  void reportLazy(int Block, int Instr, MsgFn &&Msg, WitFn &&Wit) {
    Failed = true;
    if (Block >= 0 && Block < static_cast<int>(BlockFailed.size()))
      BlockFailed[static_cast<size_t>(Block)] = 1;
    if (!Reporting)
      return;
    Diagnostic &D = Engine.report(Severity::Error, "translation-validation",
                                  Msg());
    D.Thread = Virt.Name;
    D.Block = Block;
    D.Instr = Instr;
    D.Witness = Wit();
  }

  void report(int Block, int Instr, std::string Message,
              std::string Witness) {
    reportLazy(
        Block, Instr, [&] { return std::move(Message); },
        [&] { return std::move(Witness); });
  }

  /// "physical `<I>` | virtual `<J>` | path: b0 -> b2" style witness.
  std::string makeWitness(int Block, const Instruction *PI,
                          const Instruction *VI) const;
  std::string blockPathFromEntry(int Block) const;
};

std::string ThreadValidator::blockPathFromEntry(int Block) const {
  // BFS over the physical CFG for a shortest witness path.
  std::vector<int> Parent(static_cast<size_t>(Phys.getNumBlocks()), -2);
  std::deque<int> Queue;
  Parent[static_cast<size_t>(Phys.getEntryBlock())] = -1;
  Queue.push_back(Phys.getEntryBlock());
  while (!Queue.empty()) {
    int B = Queue.front();
    Queue.pop_front();
    if (B == Block)
      break;
    for (int S : Phys.successors(B))
      if (Parent[static_cast<size_t>(S)] == -2) {
        Parent[static_cast<size_t>(S)] = B;
        Queue.push_back(S);
      }
  }
  if (Parent[static_cast<size_t>(Block)] == -2)
    return "unreachable";
  std::vector<int> Path;
  for (int B = Block; B != -1; B = Parent[static_cast<size_t>(B)])
    Path.push_back(B);
  std::reverse(Path.begin(), Path.end());
  std::string Out;
  for (int B : Path) {
    if (!Out.empty())
      Out += " -> ";
    std::string_view Name = Phys.blockName(B);
    Out += Name.empty() ? "b" + std::to_string(B) : std::string(Name);
  }
  return Out;
}

std::string ThreadValidator::makeWitness(int Block, const Instruction *PI,
                                         const Instruction *VI) const {
  std::string W;
  if (PI)
    W += "physical `" + formatInstruction(Phys, *PI) + "`";
  if (VI) {
    if (!W.empty())
      W += " | ";
    W += "virtual `" + formatInstruction(Virt, *VI) + "`";
  }
  if (!W.empty())
    W += " | ";
  W += "path: " + blockPathFromEntry(Block);
  return W;
}

SymState ThreadValidator::makeEntryState() {
  SymState S;
  S.VV.assign(static_cast<size_t>(VVSize), kUnknown);
  S.PV.assign(static_cast<size_t>(PVSize), kUnknown);
  // Positional pairing of the entry-live lists; pair i shares one value
  // number between the virtual and the physical register. Intra-thread
  // coloring parks *unreferenced* entry-live registers on color 0, so a
  // physical register can appear in several pairs — seed unreferenced
  // pairs first so the referenced pair's value survives the collision.
  BitVector Referenced(Virt.NumRegs);
  for (int B = 0; B < Virt.getNumBlocks(); ++B)
    for (const Instruction &I : Virt.block(B).Instrs) {
      if (I.Def != NoReg)
        Referenced.set(I.Def);
      std::array<Reg, 2> Uses;
      int N = I.getUses(Uses);
      for (int U = 0; U < N; ++U)
        Referenced.set(Uses[static_cast<size_t>(U)]);
    }
  size_t NPairs =
      std::min(Virt.EntryLiveRegs.size(), Phys.EntryLiveRegs.size());
  std::vector<int32_t> PairVN(NPairs);
  for (size_t I = 0; I < NPairs; ++I)
    PairVN[I] = freshVN();
  for (int Pass = 0; Pass < 2; ++Pass)
    for (size_t I = 0; I < NPairs; ++I) {
      Reg V = Virt.EntryLiveRegs[I];
      bool IsRef = V >= 0 && V < Virt.NumRegs && Referenced.test(V);
      if (static_cast<int>(IsRef) != Pass)
        continue;
      if (V >= 0 && V < VVSize)
        S.VV[static_cast<size_t>(V)] = PairVN[I];
      Reg P = Phys.EntryLiveRegs[I];
      if (P >= 0 && P < PVSize)
        S.PV[static_cast<size_t>(P)] = PairVN[I];
    }
  return S;
}

void ThreadValidator::joinStates(const std::vector<const SymState *> &Preds,
                                 SymState &R) {
  // Intersection-style unification: a location survives the join when it is
  // known in every predecessor; locations with identical per-predecessor
  // value signatures share one fresh value. The output is already in
  // canonical form (group numbers in first-occurrence order).
  if (Preds.size() == 1) {
    canonicalizeInto(*Preds[0], R);
    return;
  }
  R.VV.assign(static_cast<size_t>(VVSize), kUnknown);
  R.PV.assign(static_cast<size_t>(PVSize), kUnknown);
  R.Slots.clear();
  if (Preds.size() == 2) {
    // Two predecessors is the overwhelmingly common join shape; the
    // signature is two encodings, which pack into one uint64 keyed into
    // the flat JoinGroups table instead of a map of vectors.
    JoinGroups.clear();
    if (static_cast<int32_t>(DiagVal.size()) < MaxVNEver) {
      DiagVal.resize(static_cast<size_t>(MaxVNEver));
      DiagEpoch.resize(static_cast<size_t>(MaxVNEver), 0);
    }
    ++DiagCur;
    int32_t NumGroups = 0;
    const SymState &A = *Preds[0];
    const SymState &B = *Preds[1];
    auto joinLoc2 = [&](int32_t Av, int32_t Bv) -> int32_t {
      if (Av == kUnknown || Bv == kUnknown)
        return kUnknown;
      if (Av == Bv) {
        if (Av == kZero)
          return kZero; // constant zero everywhere stays constant zero
        if (Av < kMulti) {
          // Diagonal signature: direct table instead of the hash probe.
          const auto I = static_cast<size_t>(Av);
          if (DiagEpoch[I] != DiagCur) {
            DiagEpoch[I] = DiagCur;
            DiagVal[I] = NumGroups++;
          }
          return DiagVal[I];
        }
      }
      const uint64_t Key =
          static_cast<uint64_t>(static_cast<uint32_t>(Av)) << 32 |
          static_cast<uint32_t>(Bv);
      return JoinGroups.findOrInsert(Key, NumGroups);
    };
    for (int I = 0; I < VVSize; ++I)
      R.VV[static_cast<size_t>(I)] = joinLoc2(A.VV[static_cast<size_t>(I)],
                                              B.VV[static_cast<size_t>(I)]);
    for (int I = 0; I < PVSize; ++I)
      R.PV[static_cast<size_t>(I)] = joinLoc2(A.PV[static_cast<size_t>(I)],
                                              B.PV[static_cast<size_t>(I)]);
    for (const auto &[Addr, V] : A.Slots) {
      int32_t J = joinLoc2(V, B.slotGet(Addr));
      if (J != kUnknown)
        R.Slots.push_back({Addr, J}); // sorted: A.Slots is sorted
    }
    LastVNCount = NumGroups;
    MaxVNEver = std::max(MaxVNEver, NumGroups);
    return;
  }
  std::map<std::vector<int32_t>, int32_t> Groups;
  std::vector<int32_t> Sig(Preds.size());
  // Returns the joined encoding for one location; kUnknown when unknown in
  // any predecessor.
  auto joinLoc = [&](int32_t First, auto lookup) -> int32_t {
    if (First == kUnknown)
      return kUnknown;
    Sig[0] = First;
    bool AllZero = First == kZero;
    for (size_t P = 1; P < Preds.size(); ++P) {
      int32_t V = lookup(*Preds[P]);
      if (V == kUnknown)
        return kUnknown;
      Sig[P] = V;
      AllZero = AllZero && V == kZero;
    }
    if (AllZero)
      return kZero; // constant zero everywhere stays constant zero
    auto [It, Inserted] =
        Groups.emplace(Sig, static_cast<int32_t>(Groups.size()));
    (void)Inserted;
    return It->second;
  };
  for (int I = 0; I < VVSize; ++I)
    R.VV[static_cast<size_t>(I)] =
        joinLoc(Preds[0]->VV[static_cast<size_t>(I)],
                [I](const SymState &S) { return S.VV[static_cast<size_t>(I)]; });
  for (int I = 0; I < PVSize; ++I)
    R.PV[static_cast<size_t>(I)] =
        joinLoc(Preds[0]->PV[static_cast<size_t>(I)],
                [I](const SymState &S) { return S.PV[static_cast<size_t>(I)]; });
  for (const auto &[A, V] : Preds[0]->Slots) {
    const int64_t Addr = A;
    int32_t J = joinLoc(V, [Addr](const SymState &S) {
      return S.slotGet(Addr);
    });
    if (J != kUnknown)
      R.Slots.push_back({Addr, J}); // sorted: Preds[0]->Slots is sorted
  }
  LastVNCount = static_cast<int32_t>(Groups.size());
  MaxVNEver = std::max(MaxVNEver, LastVNCount);
}

void ThreadValidator::transfer(SymState &S, int B) {
  const BasicBlock &PB = Phys.block(B);
  const bool Paired = B < NV;
  const BasicBlock *VB = Paired ? &Virt.block(B) : nullptr;
  size_t VI = 0;
  BlockFailed[static_cast<size_t>(B)] = 0;
  BlockMatched[static_cast<size_t>(B)] = 0;
  BlockCopies[static_cast<size_t>(B)] = 0;

  auto vvGet = [&](Reg R) {
    return R >= 0 && R < VVSize ? S.VV[static_cast<size_t>(R)] : kUnknown;
  };
  auto pvGet = [&](Reg R) {
    return R >= 0 && R < PVSize ? S.PV[static_cast<size_t>(R)] : kUnknown;
  };

  // Consume the virtual instructions the allocator is allowed to erase or
  // reshape: moves (MoveElimination deletes them), xors (ParallelCopy's
  // swap idiom realises them algebraically), nops.
  auto drainVirtual = [&] {
    while (VB && VI < VB->Instrs.size()) {
      const Instruction &I = VB->Instrs[VI];
      if (I.Op == Opcode::Nop) {
        ++VI;
      } else if (I.Op == Opcode::Mov) {
        S.VV[static_cast<size_t>(I.Def)] = vvGet(I.Use1);
        ++VI;
      } else if (I.Op == Opcode::Xor) {
        int32_t A = vvGet(I.Use1);
        int32_t Bv = vvGet(I.Use2);
        S.VV[static_cast<size_t>(I.Def)] =
            A != kUnknown && Bv != kUnknown ? symDiffEnc(A, Bv) : kUnknown;
        ++VI;
      } else {
        break;
      }
    }
  };

  // A context-switch boundary hands the register file's shared portion to
  // the other threads: forget every physical register another thread
  // references and every scratch word another thread writes.
  auto clobber = [&] {
    for (Reg P : ClobberRegs)
      S.PV[static_cast<size_t>(P)] = kUnknown;
    for (int64_t A : ClobberSlots)
      S.slotErase(A);
  };

  for (size_t PIdx = 0; PIdx < PB.Instrs.size(); ++PIdx) {
    const Instruction &PI = PB.Instrs[PIdx];
    const int PIdxI = static_cast<int>(PIdx);

    if (PI.Op == Opcode::Nop)
      continue;
    if (PI.Op == Opcode::Mov) {
      S.PV[static_cast<size_t>(PI.Def)] = pvGet(PI.Use1);
      ++BlockCopies[static_cast<size_t>(B)];
      continue;
    }
    if (PI.Op == Opcode::Xor) {
      int32_t A = pvGet(PI.Use1);
      int32_t Bv = pvGet(PI.Use2);
      S.PV[static_cast<size_t>(PI.Def)] =
          A != kUnknown && Bv != kUnknown ? symDiffEnc(A, Bv) : kUnknown;
      ++BlockCopies[static_cast<size_t>(B)];
      continue;
    }
    // Absolute accesses outside every virtual thread's address set are
    // spill code: they move values between registers and scratch slots.
    if (PI.Op == Opcode::LoadA &&
        !std::binary_search(VirtualAbsAddrs.begin(), VirtualAbsAddrs.end(),
                            PI.Imm)) {
      int32_t V = S.slotGet(PI.Imm);
      clobber(); // transfer-register semantics: def lands after the switch
      S.PV[static_cast<size_t>(PI.Def)] = V;
      ++BlockCopies[static_cast<size_t>(B)];
      continue;
    }
    if (PI.Op == Opcode::StoreA &&
        !std::binary_search(VirtualAbsAddrs.begin(), VirtualAbsAddrs.end(),
                            PI.Imm)) {
      int32_t V = pvGet(PI.Use1);
      clobber();
      if (V != kUnknown)
        S.slotSet(PI.Imm, V);
      else
        S.slotErase(PI.Imm);
      ++BlockCopies[static_cast<size_t>(B)];
      continue;
    }

    if (!Paired) {
      // Inserted blocks (spill pre-entry) may only hold interpreted copies
      // and the closing unconditional branch.
      if (PI.Op == Opcode::Br)
        continue;
      reportLazy(
          B, PIdxI,
          [] {
            return std::string("inserted block contains an instruction "
                               "that is not allocator copy code");
          },
          [&] { return makeWitness(B, &PI, nullptr); });
      if (PI.causesCtxSwitch())
        clobber();
      if (PI.Def != NoReg)
        S.PV[static_cast<size_t>(PI.Def)] = freshVN();
      continue;
    }

    drainVirtual();
    if (VI >= VB->Instrs.size()) {
      reportLazy(
          B, PIdxI,
          [] {
            return std::string(
                "physical instruction has no virtual counterpart");
          },
          [&] { return makeWitness(B, &PI, nullptr); });
      if (PI.causesCtxSwitch())
        clobber();
      if (PI.Def != NoReg)
        S.PV[static_cast<size_t>(PI.Def)] = freshVN();
      continue;
    }
    const Instruction &VIn = VB->Instrs[VI];
    // A physical branch may detour through an inserted edge-split block
    // holding parallel copies; it still realises the virtual branch to the
    // chain's destination.
    const bool TargetMatches =
        VIn.Target == PI.Target ||
        (PI.Target >= NV && VIn.Target == resolveInserted(PI.Target));
    if (VIn.Op != PI.Op || VIn.Imm != PI.Imm || !TargetMatches) {
      reportLazy(
          B, PIdxI,
          [] {
            return std::string("physical instruction does not match the "
                               "pending virtual instruction");
          },
          [&] { return makeWitness(B, &PI, &VIn); });
      if (PI.causesCtxSwitch())
        clobber();
      if (VIn.Def != NoReg)
        S.VV[static_cast<size_t>(VIn.Def)] = freshVN();
      if (PI.Def != NoReg)
        S.PV[static_cast<size_t>(PI.Def)] = freshVN();
      ++VI;
      continue;
    }
    auto checkOperand = [&](Reg VR, Reg PR) {
      if (VR == NoReg && PR == NoReg)
        return;
      const int32_t A = VR == NoReg ? kUnknown : vvGet(VR);
      // Refinement: when the *virtual* program reads an undefined value
      // (possible-uninit paths), any physical value refines it — there is
      // nothing to preserve. Only a known virtual value constrains the
      // physical operand.
      if (VR != NoReg && A == kUnknown)
        return;
      const int32_t Bv = PR == NoReg ? kUnknown : pvGet(PR);
      if (A == kUnknown || Bv == kUnknown || A != Bv)
        reportLazy(
            B, PIdxI,
            [&] {
              return "operand '" +
                     (PR == NoReg ? std::string("<none>")
                                  : Phys.getRegName(PR)) +
                     "' does not carry the value of virtual '" +
                     (VR == NoReg ? std::string("<none>")
                                  : Virt.getRegName(VR)) +
                     "'";
            },
            [&] { return makeWitness(B, &PI, &VIn); });
    };
    checkOperand(VIn.Use1, PI.Use1);
    if (!(VIn.Use2 == VIn.Use1 && PI.Use2 == PI.Use1))
      checkOperand(VIn.Use2, PI.Use2); // same pair twice: report once
    ++BlockMatched[static_cast<size_t>(B)];
    if (PI.causesCtxSwitch())
      clobber();
    if (VIn.Def != NoReg || PI.Def != NoReg) {
      int32_t VN = freshVN();
      if (VIn.Def != NoReg)
        S.VV[static_cast<size_t>(VIn.Def)] = VN;
      if (PI.Def != NoReg)
        S.PV[static_cast<size_t>(PI.Def)] = VN;
    }
    ++VI;
  }

  if (Paired) {
    drainVirtual();
    if (VI < VB->Instrs.size()) {
      reportLazy(
          B, static_cast<int>(VI),
          [] {
            return std::string(
                "virtual instruction has no physical counterpart");
          },
          [&] { return makeWitness(B, nullptr, &VB->Instrs[VI]); });
      for (; VI < VB->Instrs.size(); ++VI)
        if (VB->Instrs[VI].Def != NoReg)
          S.VV[static_cast<size_t>(VB->Instrs[VI].Def)] = freshVN();
    }
    const std::vector<int> &PS = Succs[static_cast<size_t>(B)];
    const std::vector<int> &VS = VirtSuccs[static_cast<size_t>(B)];
    bool SuccsMatch = PS.size() == VS.size();
    for (size_t I = 0; SuccsMatch && I < PS.size(); ++I)
      SuccsMatch = resolveInserted(PS[I]) == VS[I];
    if (!SuccsMatch)
      reportLazy(
          B, -1,
          [] {
            return std::string("block successors differ between the "
                               "virtual and the physical program");
          },
          [&] { return makeWitness(B, nullptr, nullptr); });
  }
}

bool ThreadValidator::run() {
  const int NP = Phys.getNumBlocks();
  if (NP < NV) {
    Reporting = true;
    report(-1, -1,
           "physical program has " + std::to_string(NP) +
               " block(s) but the virtual program has " + std::to_string(NV),
           "");
    return false;
  }
  if (Virt.EntryLiveRegs.size() != Phys.EntryLiveRegs.size()) {
    Reporting = true;
    report(-1, -1,
           "entry-live register lists differ in length (" +
               std::to_string(Virt.EntryLiveRegs.size()) + " virtual vs " +
               std::to_string(Phys.EntryLiveRegs.size()) + " physical)",
           "");
    return false;
  }

  Succs.resize(static_cast<size_t>(NP));
  for (int B = 0; B < NP; ++B)
    Succs[static_cast<size_t>(B)] = Phys.successors(B);
  VirtSuccs.resize(static_cast<size_t>(NV));
  for (int B = 0; B < NV; ++B)
    VirtSuccs[static_cast<size_t>(B)] = Virt.successors(B);
  BlockFailed.assign(static_cast<size_t>(NP), 0);
  BlockMatched.assign(static_cast<size_t>(NP), 0);
  BlockCopies.assign(static_cast<size_t>(NP), 0);

  // Fixpoint: per-block symbolic states over the physical CFG. In[] (and
  // its HasIn validity flag) is only materialised at multi-predecessor
  // blocks, where the canonical join is compared against it to detect
  // convergence; chain blocks read their predecessor's Out directly.
  std::vector<SymState> In(static_cast<size_t>(NP));
  std::vector<SymState> Out(static_cast<size_t>(NP));
  std::vector<char> HasIn(static_cast<size_t>(NP), 0);
  std::vector<char> HasOut(static_cast<size_t>(NP), 0);
  std::vector<char> Reached(static_cast<size_t>(NP), 0);
  std::vector<std::vector<int>> Preds = Phys.computePredecessors();

  const std::vector<int> RPO = Phys.computeRPO();
  std::vector<int> RPOPos(static_cast<size_t>(NP), NP);
  for (size_t I = 0; I < RPO.size(); ++I)
    RPOPos[static_cast<size_t>(RPO[I])] = static_cast<int>(I);

  const int Entry = Phys.getEntryBlock();
  // The boundary state acts as a pseudo-predecessor of the entry block so
  // that loops back to entry join against the entry facts instead of
  // overwriting them.
  const SymState BoundaryOut = makeEntryState();
  const int32_t BoundaryVNBound = NextVN;
  // InVNCount[B] is an exclusive upper bound on the value numbers in
  // In[B] — the first number a transfer from In[B] may mint. Multi-pred
  // joins produce canonical states (VNs 0..k-1); chain blocks inherit
  // their predecessor's exit state and bound verbatim.
  std::vector<int32_t> InVNCount(static_cast<size_t>(NP), 0);
  std::vector<int32_t> OutVNBound(static_cast<size_t>(NP), 0);

  // RPO-priority worklist with lazy joins: a popped block recomputes its
  // entry state from its predecessors' *current* exit states, so a merge
  // point is joined once per visit instead of once per incoming edge, and
  // predecessors usually stabilise before their successors. The worklist
  // is a queued bitmap popped in RPO order (block counts are small enough
  // that a linear scan beats any heap), and the join/transfer results go
  // through two scratch states that are swapped into In/Out — after the
  // first lap around the CFG the fixpoint allocates nothing.
  std::vector<char> Queued(static_cast<size_t>(NP), 0);
  int NumQueued = 0;
  auto enqueue = [&](int B) {
    if (!Queued[static_cast<size_t>(B)]) {
      Queued[static_cast<size_t>(B)] = 1;
      ++NumQueued;
    }
  };
  enqueue(Entry);
  std::vector<const SymState *> Ins;
  SymState JoinScratch, OutScratch;
  int PopBudget = 64 * (NP + 1) + 64;
  while (NumQueued > 0) {
    if (--PopBudget < 0) {
      Reporting = true;
      report(-1, -1,
             "translation validator failed to converge (internal iteration "
             "limit reached)",
             "");
      return false;
    }
    int B = -1;
    for (int C : RPO) // RPO covers every block, unreachable ones last
      if (Queued[static_cast<size_t>(C)]) {
        B = C;
        break;
      }
    Queued[static_cast<size_t>(B)] = 0;
    --NumQueued;

    Ins.clear();
    int LastPred = -1;
    if (B == Entry)
      Ins.push_back(&BoundaryOut);
    for (int P : Preds[static_cast<size_t>(B)])
      if (HasOut[static_cast<size_t>(P)]) {
        Ins.push_back(&Out[static_cast<size_t>(P)]);
        LastPred = P;
      }
    if (Ins.empty())
      continue; // no reachable predecessor yet; a later pop requeues us
    if (Ins.size() == 1) {
      // A single incoming state propagates verbatim: canonical renaming is
      // only needed where states merge. A chain block is only ever queued
      // because that one predecessor's exit state changed (or on first
      // visit), so there is nothing to compare — transfer directly from
      // the predecessor's Out. Chain blocks still converge: transfers are
      // deterministic, so a bit-identical entry state yields a
      // bit-identical exit state, and every reachable cycle contains a
      // multi-predecessor join (its header merges the entry edge with the
      // back edge) whose canonical output bounds the cycle's value numbers.
      OutScratch = *Ins[0];
      InVNCount[static_cast<size_t>(B)] =
          LastPred >= 0 ? OutVNBound[static_cast<size_t>(LastPred)]
                        : BoundaryVNBound;
    } else {
      joinStates(Ins, JoinScratch);
      const bool InChanged = !HasIn[static_cast<size_t>(B)] ||
                             !(JoinScratch == In[static_cast<size_t>(B)]);
      if (InChanged) {
        std::swap(In[static_cast<size_t>(B)], JoinScratch);
        InVNCount[static_cast<size_t>(B)] = LastVNCount;
        HasIn[static_cast<size_t>(B)] = 1;
      } else if (HasOut[static_cast<size_t>(B)]) {
        continue; // same entry state as the last transfer: nothing new
      }
      OutScratch = In[static_cast<size_t>(B)];
    }
    Reached[static_cast<size_t>(B)] = 1;

    NextVN = InVNCount[static_cast<size_t>(B)];
    transfer(OutScratch, B);
    OutVNBound[static_cast<size_t>(B)] = NextVN;
    // Transfers are deterministic in the entry state, so an unchanged exit
    // state cannot change any successor's join — skip the requeues.
    if (HasOut[static_cast<size_t>(B)] &&
        OutScratch == Out[static_cast<size_t>(B)])
      continue;
    std::swap(Out[static_cast<size_t>(B)], OutScratch);
    HasOut[static_cast<size_t>(B)] = 1;
    for (int Succ : Succs[static_cast<size_t>(B)])
      enqueue(Succ);
  }

  // Each block's last transfer used its final entry state (the worklist
  // requeues on every change), so the per-block outcomes are already the
  // verdict. The deterministic reporting pass over the stabilised states
  // is only needed to build diagnostics when something failed.
  auto sumCounters = [&] {
    for (int B = 0; B < NP; ++B)
      if (Reached[static_cast<size_t>(B)]) {
        InstructionsMatched += BlockMatched[static_cast<size_t>(B)];
        CopiesInterpreted += BlockCopies[static_cast<size_t>(B)];
      }
  };
  bool AnyFailed = false;
  for (int B = 0; B < NP; ++B)
    AnyFailed = AnyFailed ||
                (Reached[static_cast<size_t>(B)] &&
                 BlockFailed[static_cast<size_t>(B)]);
  if (!AnyFailed) {
    sumCounters();
    return true;
  }

  Reporting = true;
  Failed = false;
  for (int B : RPO) {
    if (!Reached[static_cast<size_t>(B)])
      continue; // unreachable: never executes, nothing to prove
    // Rebuild the block's final entry state the same way the fixpoint
    // did: the stored canonical join at merge blocks, the predecessor's
    // final exit state along chains.
    if (HasIn[static_cast<size_t>(B)]) {
      OutScratch = In[static_cast<size_t>(B)];
    } else {
      const SymState *Single = B == Entry ? &BoundaryOut : nullptr;
      for (int P : Preds[static_cast<size_t>(B)])
        if (HasOut[static_cast<size_t>(P)])
          Single = &Out[static_cast<size_t>(P)];
      if (!Single)
        continue;
      OutScratch = *Single;
    }
    NextVN = InVNCount[static_cast<size_t>(B)];
    transfer(OutScratch, B);
  }
  sumCounters();
  return !Failed;
}

} // namespace

ValidationResult npral::validateTranslation(const MultiThreadProgram &Virt,
                                            const MultiThreadProgram &Phys,
                                            DiagnosticEngine &Engine,
                                            MetricsRegistry *Metrics) {
  ValidationResult R;
  if (Virt.getNumThreads() != Phys.getNumThreads()) {
    Diagnostic &D =
        Engine.report(Severity::Error, "translation-validation",
                      "physical program has " +
                          std::to_string(Phys.getNumThreads()) +
                          " thread(s) but the virtual program has " +
                          std::to_string(Virt.getNumThreads()));
    D.Thread = Phys.Name;
    if (Metrics)
      Metrics->counter("validator.rejected").increment();
    return R;
  }
  const int Nthd = Virt.getNumThreads();

  // Every absolute address any virtual thread touches; physical loada /
  // storea outside this set are spill code. Sorted for the binary search
  // the transfer function does per memory instruction.
  std::vector<int64_t> VirtualAbsAddrs;
  for (const Program &T : Virt.Threads)
    for (const BasicBlock &BB : T.Blocks)
      for (const Instruction &I : BB.Instrs)
        if (I.Op == Opcode::LoadA || I.Op == Opcode::StoreA)
          VirtualAbsAddrs.push_back(I.Imm);
  std::sort(VirtualAbsAddrs.begin(), VirtualAbsAddrs.end());
  VirtualAbsAddrs.erase(
      std::unique(VirtualAbsAddrs.begin(), VirtualAbsAddrs.end()),
      VirtualAbsAddrs.end());

  // Per-thread clobber sets: physical registers the *other* threads
  // reference and scratch words they write.
  int MaxPhysRegs = 1;
  for (const Program &T : Phys.Threads)
    MaxPhysRegs = std::max(MaxPhysRegs, T.NumRegs);
  std::vector<BitVector> Refs(static_cast<size_t>(Nthd),
                              BitVector(MaxPhysRegs));
  std::vector<std::set<int64_t>> SlotWrites(static_cast<size_t>(Nthd));
  for (int T = 0; T < Nthd; ++T)
    for (const BasicBlock &BB : Phys.Threads[static_cast<size_t>(T)].Blocks)
      for (const Instruction &I : BB.Instrs) {
        if (I.Def != NoReg)
          Refs[static_cast<size_t>(T)].set(I.Def);
        std::array<Reg, 2> Uses;
        int N = I.getUses(Uses);
        for (int U = 0; U < N; ++U)
          Refs[static_cast<size_t>(T)].set(Uses[static_cast<size_t>(U)]);
        if (I.Op == Opcode::StoreA)
          SlotWrites[static_cast<size_t>(T)].insert(I.Imm);
      }

  R.Proved = true;
  for (int T = 0; T < Nthd; ++T) {
    BitVector OtherRefs(MaxPhysRegs);
    std::set<int64_t> OtherSlotWrites;
    for (int U = 0; U < Nthd; ++U) {
      if (U == T)
        continue;
      OtherRefs.unionWith(Refs[static_cast<size_t>(U)]);
      OtherSlotWrites.insert(SlotWrites[static_cast<size_t>(U)].begin(),
                             SlotWrites[static_cast<size_t>(U)].end());
    }
    ThreadValidator TV(Virt.Threads[static_cast<size_t>(T)],
                       Phys.Threads[static_cast<size_t>(T)], OtherRefs,
                       OtherSlotWrites, VirtualAbsAddrs, Engine);
    if (TV.run())
      ++R.ThreadsProved;
    else
      R.Proved = false;
    R.InstructionsMatched += TV.InstructionsMatched;
    R.CopiesInterpreted += TV.CopiesInterpreted;
  }

  if (Metrics) {
    Metrics->counter(R.Proved ? "validator.proved" : "validator.rejected")
        .increment();
    Metrics->counter("validator.instructions_matched")
        .add(R.InstructionsMatched);
    Metrics->counter("validator.copies_interpreted")
        .add(R.CopiesInterpreted);
  }
  return R;
}

int npral::crossCheckDecisionLog(const AllocationDecisionLog &Log,
                                 const InterThreadResult &Result,
                                 DiagnosticEngine &Engine,
                                 MetricsRegistry *Metrics) {
  int Mismatches = 0;
  auto bad = [&](std::string Message) {
    ++Mismatches;
    Engine.report(Severity::Error, "validator-log", std::move(Message));
  };

  if (Log.Success != Result.Success)
    bad(std::string("decision log says the allocation ") +
        (Log.Success ? "succeeded" : "failed") +
        " but the result says otherwise");
  if (Result.Success) {
    const int Nthd = static_cast<int>(Result.Threads.size());
    if (static_cast<int>(Log.FinalPR.size()) != Nthd ||
        static_cast<int>(Log.FinalSR.size()) != Nthd) {
      bad("decision log's final budgets cover " +
          std::to_string(Log.FinalPR.size()) + " thread(s) but the result "
          "has " + std::to_string(Nthd));
    } else {
      for (int T = 0; T < Nthd; ++T) {
        const ThreadAllocation &TA = Result.Threads[static_cast<size_t>(T)];
        if (Log.FinalPR[static_cast<size_t>(T)] != TA.PR ||
            Log.FinalSR[static_cast<size_t>(T)] != TA.SR)
          bad("decision log's final (PR, SR) for thread " +
              std::to_string(T) + " is (" +
              std::to_string(Log.FinalPR[static_cast<size_t>(T)]) + ", " +
              std::to_string(Log.FinalSR[static_cast<size_t>(T)]) +
              ") but the result has (" + std::to_string(TA.PR) + ", " +
              std::to_string(TA.SR) + ")");
      }
    }
    if (Log.SGR != Result.SGR)
      bad("decision log records SGR " + std::to_string(Log.SGR) +
          " but the result has " + std::to_string(Result.SGR));
    if (Log.RegistersUsed != Result.RegistersUsed)
      bad("decision log records " + std::to_string(Log.RegistersUsed) +
          " registers used but the result has " +
          std::to_string(Result.RegistersUsed));
    if (Log.TotalWeightedCost != Result.TotalWeightedCost)
      bad("decision log records weighted cost " +
          std::to_string(Log.TotalWeightedCost) + " but the result has " +
          std::to_string(Result.TotalWeightedCost));
  }

  // The greedy-argmin invariant: every reduction step's chosen delta must
  // equal the minimum over the bids it actually priced.
  for (const ReductionStep &Step : Log.Reductions) {
    if (Step.Chosen == ReductionStep::ChoseSweepFallback)
      continue;
    if (Step.Bids.empty()) {
      bad("reduction step " + std::to_string(Step.StepIndex) +
          " chose a candidate without recording any bids");
      continue;
    }
    int64_t MinDelta = Step.Bids.front().Delta;
    for (const ReductionBid &Bid : Step.Bids)
      MinDelta = std::min(MinDelta, Bid.Delta);
    if (Step.ChosenDelta != MinDelta)
      bad("reduction step " + std::to_string(Step.StepIndex) +
          " chose delta " + std::to_string(Step.ChosenDelta) +
          " but the minimum bid was " + std::to_string(MinDelta));
    if (Step.Chosen == ReductionStep::ChosePR && Step.VictimThread < 0)
      bad("reduction step " + std::to_string(Step.StepIndex) +
          " reduced a thread's PR without naming the victim thread");
    if (Step.RequirementAfter != Step.RequirementBefore - 1)
      bad("reduction step " + std::to_string(Step.StepIndex) +
          " moved the requirement from " +
          std::to_string(Step.RequirementBefore) + " to " +
          std::to_string(Step.RequirementAfter) +
          " instead of reducing it by one");
  }

  if (Metrics) {
    Metrics->counter("validator.log_crosschecks").increment();
    Metrics->counter("validator.log_mismatches").add(Mismatches);
  }
  return Mismatches;
}
