//===- AdvisorChecker.cpp - the "over-private" splitting advisor ----------===//
//
// A live range that crosses a CSB must get a private register for its
// whole extent — even the parts that never cross a switch. When such a
// range has its references concentrated inside one NSR, the paper's NSR
// exclusion transform (§7.1, Fig. 12) can carve that portion into a fresh
// internal range eligible for a *shared* register, at the price of a few
// reconciling moves. This advisor flags those opportunities, priced by
// SplitTransforms' cost hint, so a developer (or the allocator's tuning)
// can see where private pressure is buying nothing.
//
//===----------------------------------------------------------------------===//

#include "alloc/SplitTransforms.h"
#include "lint/Checkers.h"
#include "lint/Lint.h"

#include <vector>

using namespace npral;

namespace {

/// A boundary register's reference footprint inside one NSR.
struct NSRRefs {
  int RefCount = 0;
  int FirstBlock = -1;
  int FirstInstr = -1;
};

} // namespace

void lintchecks::adviseOverPrivate(LintContext &Ctx) {
  // Splits cheaper than this many moves are worth pointing out.
  constexpr int MaxAdvisedMoves = 2;

  for (int T = 0; T < Ctx.getNumThreads(); ++T) {
    if (!Ctx.state(T).HasDataflow)
      continue;
    const Program &P = Ctx.thread(T);
    const LivenessInfo &LI = Ctx.state(T).Liveness;
    const NSRInfo &NSRs = Ctx.state(T).NSRs;
    if (NSRs.getCSBs().empty())
      continue;

    // Boundary registers and how many CSBs each crosses. Computed from the
    // CSB sets directly (not analyzeThread) so the advisor also works on
    // programs that have not been live-range renamed.
    BitVector Boundary(P.NumRegs);
    std::vector<int> CrossCount(static_cast<size_t>(P.NumRegs), 0);
    for (const CSB &B : NSRs.getCSBs()) {
      Boundary.unionWith(B.LiveAcross);
      B.LiveAcross.forEach(
          [&](int R) { ++CrossCount[static_cast<size_t>(R)]; });
    }

    Boundary.forEach([&](int V) {
      // Reference counts of V per NSR (uses on the pre side, defs on the
      // post side, matching excludeNSR's renaming rule).
      std::vector<NSRRefs> Refs(static_cast<size_t>(NSRs.getNumNSRs()));
      auto Touch = [&](int NSR, int B, int I) {
        NSRRefs &E = Refs[static_cast<size_t>(NSR)];
        if (E.RefCount++ == 0) {
          E.FirstBlock = B;
          E.FirstInstr = I;
        }
      };
      for (int B = 0; B < P.getNumBlocks(); ++B) {
        const BasicBlock &BB = P.block(B);
        for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
          const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
          if (Inst.usesReg(V))
            Touch(NSRs.instrPreNSR(B, I), B, I);
          if (Inst.Def == V)
            Touch(NSRs.instrPostNSR(B, I), B, I);
        }
      }

      // Advise on the most reference-heavy NSR whose exclusion is cheap.
      int BestNSR = -1;
      int BestMoves = 0;
      for (int N = 0; N < NSRs.getNumNSRs(); ++N) {
        // A single touch is not worth a reconciling move pair.
        if (Refs[static_cast<size_t>(N)].RefCount < 2)
          continue;
        int Moves = estimateExcludeNSRMoves(P, LI, NSRs, V, N);
        if (Moves < 0 || Moves > MaxAdvisedMoves)
          continue;
        if (BestNSR < 0 ||
            Refs[static_cast<size_t>(N)].RefCount >
                Refs[static_cast<size_t>(BestNSR)].RefCount) {
          BestNSR = N;
          BestMoves = Moves;
        }
      }
      if (BestNSR < 0)
        return;
      const NSRRefs &E = Refs[static_cast<size_t>(BestNSR)];
      Ctx.emit(Severity::Note, "over-private", T, E.FirstBlock, E.FirstInstr,
               "live range '" + P.getRegName(V) + "' crosses " +
                   std::to_string(CrossCount[static_cast<size_t>(V)]) +
                   " CSB(s) but has " + std::to_string(E.RefCount) +
                   " reference(s) inside NSR " + std::to_string(BestNSR) +
                   "; NSR exclusion would insert " +
                   std::to_string(BestMoves) +
                   " move(s) and let the carved range use a shared register");
    });
  }
}
