//===- StructureCheckers.cpp - structure, unreachable-block, moves --------===//

#include "ir/IRPrinter.h"
#include "lint/Checkers.h"
#include "lint/Lint.h"

#include <vector>

using namespace npral;

void lintchecks::checkStructure(LintContext &Ctx) {
  if (Ctx.getNumThreads() == 0) {
    Ctx.getEngine().report(Severity::Error, "structure",
                           "program has no threads");
    return;
  }
  for (int T = 0; T < Ctx.getNumThreads(); ++T)
    if (const Status &S = Ctx.state(T).Structure; !S.ok())
      Ctx.emit(Severity::Error, "structure", T, -1, -1, S.message());

  // A MultiThreadProgram mixing virtual and physical threads is malformed
  // regardless of per-thread validity (and silently disables the
  // physical-only checkers, so say it loudly here).
  bool AnyPhysical = false, AnyVirtual = false;
  for (int T = 0; T < Ctx.getNumThreads(); ++T)
    (Ctx.thread(T).IsPhysical ? AnyPhysical : AnyVirtual) = true;
  if (AnyPhysical && AnyVirtual)
    Ctx.getEngine().report(Severity::Error, "structure",
                           "program mixes physical and virtual threads");
}

void lintchecks::checkUnreachableBlocks(LintContext &Ctx) {
  for (int T = 0; T < Ctx.getNumThreads(); ++T) {
    if (!Ctx.state(T).HasDataflow)
      continue;
    const Program &P = Ctx.thread(T);
    std::vector<char> Reached(static_cast<size_t>(P.getNumBlocks()), 0);
    std::vector<int> Worklist{P.getEntryBlock()};
    Reached[static_cast<size_t>(P.getEntryBlock())] = 1;
    while (!Worklist.empty()) {
      int B = Worklist.back();
      Worklist.pop_back();
      for (int S : P.successors(B))
        if (!Reached[static_cast<size_t>(S)]) {
          Reached[static_cast<size_t>(S)] = 1;
          Worklist.push_back(S);
        }
    }
    for (int B = 0; B < P.getNumBlocks(); ++B)
      if (!Reached[static_cast<size_t>(B)])
        Ctx.emit(Severity::Warning, "unreachable-block", T, B, -1,
                 "block '" + std::string(P.blockName(B)) +
                     "' is unreachable from the entry block");
  }
}

void lintchecks::checkRedundantMoves(LintContext &Ctx) {
  for (int T = 0; T < Ctx.getNumThreads(); ++T) {
    const Program &P = Ctx.thread(T);
    for (int B = 0; B < P.getNumBlocks(); ++B) {
      const BasicBlock &BB = P.block(B);
      for (int I = 0; I < static_cast<int>(BB.Instrs.size()); ++I) {
        const Instruction &Inst = BB.Instrs[static_cast<size_t>(I)];
        if (Inst.Op != Opcode::Mov)
          continue;
        if (Inst.Def == Inst.Use1) {
          Ctx.emit(Severity::Warning, "redundant-move", T, B, I,
                   "self-move of '" + P.getRegName(Inst.Def) +
                       "' has no effect")
              .Witness = formatInstruction(P, Inst);
          continue;
        }
        if (I > 0) {
          const Instruction &Prev = BB.Instrs[static_cast<size_t>(I - 1)];
          if (Prev.Op == Opcode::Mov && Prev.Def == Inst.Use1 &&
              Prev.Use1 == Inst.Def)
            Ctx.emit(Severity::Warning, "redundant-move", T, B, I,
                     "move copies '" + P.getRegName(Inst.Def) +
                         "' back onto itself right after '" +
                         formatInstruction(P, Prev) + "'")
                .Witness = formatInstruction(P, Inst);
        }
      }
    }
  }
}
