//===- RaceChecker.cpp - cross-thread register race detection -------------===//
//
// The CSB-privacy invariant (paper §2, property 5): a register live across
// any context-switch boundary of thread i must be private to thread i. The
// accumulating detector itself lives in alloc/AllocationVerifier (where it
// also backs the legacy verifyAllocationSafety wrapper); this checker runs
// it with structural diagnostics off, because the lint driver's own
// structure / maybe-uninit checkers already cover those findings.
//
//===----------------------------------------------------------------------===//

#include "alloc/AllocationVerifier.h"
#include "lint/Checkers.h"
#include "lint/Lint.h"

using namespace npral;

void lintchecks::checkCrossThreadRace(LintContext &Ctx) {
  collectAllocationSafety(Ctx.getProgram(), Ctx.getEngine(),
                          /*Stats=*/nullptr, /*StructuralDiags=*/false);
}
