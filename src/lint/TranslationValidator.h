//===- TranslationValidator.h - Static translation validation --*- C++ -*-===//
///
/// \file
/// Symbolic translation validation for allocator outputs: given the virtual
/// (live-range renamed) input program and the allocated physical output —
/// including degraded spill-fallback outputs — prove that every original
/// instruction, branch, and context-switch boundary observes the same
/// virtual values in the physical program as in the virtual one.
///
/// The checker simulates each thread block-by-block over a symbolic state
/// mapping virtual registers, physical registers, and spill scratch slots
/// to xor-sets of value numbers. Copies the allocator is allowed to insert
/// (`mov`, the 3-`xor` parallel-copy swap idiom, and absolute-addressed
/// spill `loada`/`storea`) are *interpreted* — they transfer symbolic
/// values. Everything else must pair 1:1, in order, with an original
/// virtual instruction of the same opcode/immediate/target whose operands
/// carry identical value sets. Context-switch boundaries clobber physical
/// registers referenced by other threads and scratch slots written by other
/// threads, so a value the allocator wrongly kept in a shared register
/// across a CSB fails the proof exactly where the paper's invariant is
/// violated.
///
/// Loops are handled by a worklist fixpoint over the physical CFG with an
/// intersection-style join (locations agreeing in every predecessor keep a
/// common fresh value); stabilisation is detected by canonical renumbering
/// of value numbers. Diagnostics are emitted only in a final deterministic
/// reverse-post-order reporting pass, each with a witness containing the
/// offending instruction pair and a shortest block path from entry.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_LINT_TRANSLATIONVALIDATOR_H
#define NPRAL_LINT_TRANSLATIONVALIDATOR_H

#include "alloc/InterAllocator.h"
#include "ir/Program.h"
#include "support/DiagnosticEngine.h"
#include "trace/DecisionLog.h"
#include "trace/MetricsRegistry.h"

namespace npral {

/// Outcome of one validateTranslation call.
struct ValidationResult {
  /// True when every thread was proved equivalent.
  bool Proved = false;
  /// Threads that passed the proof.
  int ThreadsProved = 0;
  /// Original instructions paired and proved operand-equivalent.
  int64_t InstructionsMatched = 0;
  /// Allocator-inserted copies interpreted symbolically (moves, swap xors,
  /// spill loads/stores).
  int64_t CopiesInterpreted = 0;
};

/// Prove that \p Phys computes the same values as \p Virt. \p Virt is the
/// allocator's input (live-range renamed, virtual registers); \p Phys is
/// its output over physical registers — the threads must correspond
/// positionally. Mismatches are reported into \p Engine as errors under
/// check "translation-validation" with instruction-pair witnesses; when
/// \p Metrics is non-null the validator.* instruments are updated.
ValidationResult validateTranslation(const MultiThreadProgram &Virt,
                                     const MultiThreadProgram &Phys,
                                     DiagnosticEngine &Engine,
                                     MetricsRegistry *Metrics = nullptr);

/// Cross-check an allocation decision log against the result it claims to
/// describe: outcome flags, final per-thread budgets, register totals, and
/// the greedy-argmin invariant (every reduction step's chosen delta equals
/// the minimum over its recorded bids). Inconsistencies are reported into
/// \p Engine as errors under check "validator-log"; returns the number of
/// mismatches (0 = consistent).
int crossCheckDecisionLog(const AllocationDecisionLog &Log,
                          const InterThreadResult &Result,
                          DiagnosticEngine &Engine,
                          MetricsRegistry *Metrics = nullptr);

} // namespace npral

#endif // NPRAL_LINT_TRANSLATIONVALIDATOR_H
