//===- Dataflow.h - Generic worklist dataflow solver ------------*- C++ -*-===//
///
/// \file
/// One dataflow engine for the whole repo instead of a hand-rolled
/// iterate-until-stable loop per client. A client describes its problem as
/// a *lattice* (the per-block value type with a join), a *direction*, and a
/// *transfer function*; the solver owns the fixpoint iteration over a
/// Program CFG and hands back the per-block boundary values.
///
/// The framework is deliberately small:
///
///  * DataflowProblem<ValueT> — the client contract: direction, the
///    boundary value injected at the entry (forward) or exit (backward)
///    side, a bottom value for all other blocks, `join` (must return
///    whether it changed its accumulator, and must be monotone), and
///    `transfer` over one whole block.
///  * solveDataflow — round-robin worklist iteration in reverse post
///    order (forward) or post order (backward) until no join changes,
///    exactly the schedule the previous ad-hoc loops used, so migrated
///    clients reproduce their old results bit for bit.
///  * GenKill.h builds the word-parallel BitVector gen/kill instance on
///    top of this — the domain every core analysis (liveness,
///    maybe-uninit) runs on, and the prototype for the ROADMAP item 3
///    bitset hot-path rewrite.
///
/// Termination is the client's obligation (finite-height lattice plus a
/// monotone join/transfer); every domain in this repo is a finite bitset
/// or a finite equivalence relation, so the solver needs no widening.
///
//===----------------------------------------------------------------------===//

#ifndef NPRAL_LINT_DATAFLOW_DATAFLOW_H
#define NPRAL_LINT_DATAFLOW_DATAFLOW_H

#include "ir/Program.h"

#include <vector>

namespace npral {

enum class DataflowDirection {
  Forward,  ///< facts flow entry -> exit; In(B) joins preds' Out
  Backward, ///< facts flow exit -> entry; Out(B) joins succs' In
};

/// Per-block fixpoint result. For a forward problem In[B] is the join over
/// predecessors and Out[B] = transfer(B, In[B]); for a backward problem
/// Out[B] is the join over successors and In[B] = transfer(B, Out[B]).
template <typename ValueT> struct DataflowResult {
  std::vector<ValueT> In;
  std::vector<ValueT> Out;
};

/// Solve \p Problem over \p P's CFG. ProblemT must provide:
///
///   using Value = ...;
///   DataflowDirection direction() const;
///   Value boundary(const Program &P) const;  // entry/exit-side seed
///   Value bottom(const Program &P) const;    // identity of join
///   bool join(Value &Into, const Value &From) const;  // true if changed
///   void transfer(const Program &P, int Block, Value &V) const;
///
/// `transfer` mutates the incoming-side value into the outgoing-side value
/// for the whole block. Unreachable blocks keep bottom on their join side
/// (computeRPO appends them, so their transfer still runs — matching the
/// historical per-client loops).
template <typename ProblemT>
DataflowResult<typename ProblemT::Value> solveDataflow(const Program &P,
                                                       const ProblemT &Problem) {
  using Value = typename ProblemT::Value;
  const bool Forward = Problem.direction() == DataflowDirection::Forward;
  const size_t NumBlocks = static_cast<size_t>(P.getNumBlocks());

  DataflowResult<Value> R;
  R.In.assign(NumBlocks, Problem.bottom(P));
  R.Out.assign(NumBlocks, Problem.bottom(P));
  if (NumBlocks == 0)
    return R;

  // Join sides: forward joins into In, backward joins into Out.
  std::vector<Value> &JoinSide = Forward ? R.In : R.Out;
  std::vector<Value> &FlowSide = Forward ? R.Out : R.In;

  if (Forward)
    JoinSide[static_cast<size_t>(P.getEntryBlock())] = Problem.boundary(P);
  // A backward boundary applies to every exit block (no successors); seed
  // all blocks with it joined in once so halt-terminated blocks see it.
  std::vector<std::vector<int>> Preds;
  if (Forward)
    Preds = P.computePredecessors();
  if (!Forward) {
    const Value Boundary = Problem.boundary(P);
    for (size_t B = 0; B < NumBlocks; ++B)
      if (P.successors(static_cast<int>(B)).empty())
        Problem.join(JoinSide[B], Boundary);
  }

  // Iteration order: RPO for forward problems, post order for backward —
  // the schedule that converges in O(loop depth) passes on reducible CFGs.
  std::vector<int> Order = P.computeRPO();
  if (!Forward)
    std::vector<int>(Order.rbegin(), Order.rend()).swap(Order);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B : Order) {
      const size_t BI = static_cast<size_t>(B);
      if (Forward) {
        // In(B) = join over preds' Out (entry keeps its boundary seed).
        for (int Pred : Preds[BI])
          Changed |=
              Problem.join(JoinSide[BI], FlowSide[static_cast<size_t>(Pred)]);
      } else {
        for (int S : P.successors(B))
          Changed |=
              Problem.join(JoinSide[BI], FlowSide[static_cast<size_t>(S)]);
      }
      Value V = JoinSide[BI];
      Problem.transfer(P, B, V);
      // Flow-side updates feed the next round's joins; track change so the
      // loop also terminates when only transfer outputs moved.
      if (!(V == FlowSide[BI])) {
        FlowSide[BI] = std::move(V);
        Changed = true;
      }
    }
  }
  return R;
}

} // namespace npral

#endif // NPRAL_LINT_DATAFLOW_DATAFLOW_H
